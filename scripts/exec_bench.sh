#!/usr/bin/env bash
# exec_bench.sh — measure the predecoded execution core against the
# classical decode loop and publish BENCH_exec.json.
#
# Three layers, old path vs. new path:
#   - Executor.Run instruction throughput (BenchmarkRunDirect/Predecode/
#     Fused/Batch); two gates: predecode over direct (< MIN_SPEEDUP
#     fails) and batch+fusion over the predecode baseline
#     (< MIN_FUSED_SPEEDUP fails).
#   - fuzzer executions/second (BenchmarkFuzzerThroughput[NoPredecode])
#   - compliance cases/second (BenchmarkTableIParallel1 / NoPredecode)
#
# Each number is the best of COUNT runs (min ns/op is robust against
# scheduling noise).
#
# Usage: scripts/exec_bench.sh [out.json]
set -euo pipefail

OUT="${1:-BENCH_exec.json}"
COUNT="${COUNT:-5}"
BENCHTIME="${BENCHTIME:-1s}"
FUZZ_COUNT="${FUZZ_COUNT:-3}"
FUZZ_BENCHTIME="${FUZZ_BENCHTIME:-30000x}"
TABLE_COUNT="${TABLE_COUNT:-3}"
MIN_SPEEDUP="${MIN_SPEEDUP:-1.5}"
MIN_FUSED_SPEEDUP="${MIN_FUSED_SPEEDUP:-2.0}"

cd "$(dirname "$0")/.."

run_raw=$(go test -run '^$' -bench 'BenchmarkRun(Direct|Predecode|Fused|Batch)$' \
  -benchtime "$BENCHTIME" -count "$COUNT" ./internal/exec/)
echo "$run_raw"

fuzz_raw=$(go test -run '^$' -bench 'BenchmarkFuzzerThroughput(NoPredecode)?$' \
  -benchtime "$FUZZ_BENCHTIME" -count "$FUZZ_COUNT" .)
echo "$fuzz_raw"

table_raw=$(go test -run '^$' -bench 'BenchmarkTableI(Parallel1|NoPredecode)$' \
  -benchtime 1x -count "$TABLE_COUNT" .)
echo "$table_raw"

# min_ns NAME_REGEX <<< raw: the best ns/op of all matching lines.
min_ns() {
  awk -v re="$1" '$1 ~ re { if (best == 0 || $3 < best) best = $3 } END { print best+0 }'
}
# max_metric NAME_REGEX UNIT <<< raw: the best value of the named
# per-benchmark metric (the field preceding its unit column).
max_metric() {
  awk -v re="$1" -v unit="$2" '$1 ~ re {
    for (i = 2; i <= NF; i++) if ($i == unit && $(i-1) > best) best = $(i-1)
  } END { print best+0 }'
}

run_direct=$(min_ns '^BenchmarkRunDirect$' <<< "$run_raw")
run_pre=$(min_ns '^BenchmarkRunPredecode$' <<< "$run_raw")
run_fused=$(min_ns '^BenchmarkRunFused$' <<< "$run_raw")
minst_direct=$(max_metric '^BenchmarkRunDirect$' 'Minst/s' <<< "$run_raw")
minst_pre=$(max_metric '^BenchmarkRunPredecode$' 'Minst/s' <<< "$run_raw")
minst_fused=$(max_metric '^BenchmarkRunFused$' 'Minst/s' <<< "$run_raw")
minst_batch=$(max_metric '^BenchmarkRunBatch$' 'Minst/s' <<< "$run_raw")
fuzz_pre=$(max_metric '^BenchmarkFuzzerThroughput$' 'execs/s' <<< "$fuzz_raw")
fuzz_direct=$(max_metric '^BenchmarkFuzzerThroughputNoPredecode$' 'execs/s' <<< "$fuzz_raw")
table_pre=$(max_metric '^BenchmarkTableIParallel1$' 'cases/s' <<< "$table_raw")
table_direct=$(max_metric '^BenchmarkTableINoPredecode$' 'cases/s' <<< "$table_raw")

awk -v d="$run_direct" -v p="$run_pre" -v f="$run_fused" \
    -v md="$minst_direct" -v mp="$minst_pre" -v mf="$minst_fused" -v mb="$minst_batch" \
    -v fd="$fuzz_direct" -v fp="$fuzz_pre" -v td="$table_direct" -v tp="$table_pre" \
    -v gate="$MIN_SPEEDUP" -v fgate="$MIN_FUSED_SPEEDUP" -v out="$OUT" 'BEGIN {
  if (d == 0 || p == 0 || f == 0 || mb == 0 || fd == 0 || fp == 0 || td == 0 || tp == 0) {
    print "error: benchmark output missing" > "/dev/stderr"; exit 1
  }
  speedup = d / p
  fspeedup = p / f
  printf "{\n" \
         "  \"run_ns_direct\": %.1f,\n  \"run_ns_predecode\": %.1f,\n  \"run_ns_fused\": %.1f,\n" \
         "  \"run_minst_per_sec_direct\": %.2f,\n  \"run_minst_per_sec_predecode\": %.2f,\n" \
         "  \"run_minst_per_sec_fused\": %.2f,\n  \"run_minst_per_sec_batch\": %.2f,\n" \
         "  \"run_speedup\": %.3f,\n  \"min_speedup\": %.2f,\n" \
         "  \"fused_speedup\": %.3f,\n  \"min_fused_speedup\": %.2f,\n" \
         "  \"fuzz_execs_per_sec_direct\": %.0f,\n  \"fuzz_execs_per_sec_predecode\": %.0f,\n" \
         "  \"compliance_cases_per_sec_direct\": %.0f,\n  \"compliance_cases_per_sec_predecode\": %.0f\n" \
         "}\n", d, p, f, md, mp, mf, mb, speedup, gate, fspeedup, fgate, fd, fp, td, tp > out
  printf "Executor.Run speedup: %.2fx (direct %.0fns/op -> predecoded %.0fns/op, gate %.2fx)\n", speedup, d, p, gate
  printf "batch+fusion speedup: %.2fx over predecode (%.0fns/op -> %.0fns/op, gate %.2fx; batch %.1f Minst/s)\n", fspeedup, p, f, fgate, mb
  printf "fuzz: %.0f -> %.0f execs/s; compliance: %.0f -> %.0f cases/s\n", fd, fp, td, tp
  if (speedup < gate) { print "error: Executor.Run speedup below gate" > "/dev/stderr"; exit 1 }
  if (fspeedup < fgate) { print "error: batch+fusion speedup below gate" > "/dev/stderr"; exit 1 }
}'

echo "written: $OUT"
