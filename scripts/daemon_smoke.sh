#!/usr/bin/env bash
# daemon_smoke.sh — end-to-end proof of the campaign-as-a-service daemon:
# jobs submitted to rvnegtestd survive a kill -9 mid-job and finish with
# artifacts byte-identical to direct CLI invocations of the same specs.
#
# Flow:
#   1. produce reference artifacts with the CLIs (rvfuzz -checkpoint,
#      rvcompliance -checkpoint) for one fuzz and one compliance spec
#   2. start rvnegtestd, submit both specs as jobs over HTTP
#   3. kill -9 the daemon while the fuzz job runs
#   4. restart the daemon on the same store: jobs resume from their
#      checkpoints, finish, and the daemon records the resume
#   5. fetch the job artifacts over HTTP and cmp against step 1
#
# Usage: scripts/daemon_smoke.sh [execs] [seed]
set -euo pipefail

EXECS="${1:-800000}"
SEED="${2:-7}"
GEN="${GEN:-5000}"       # compliance-job generation budget
KILL_AFTER="${KILL_AFTER:-2}" # seconds before the kill -9

cd "$(dirname "$0")/.."
work=$(mktemp -d)
daemon_pid=""
trap '{ [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" && wait "$daemon_pid"; } 2>/dev/null; rm -rf "$work"' EXIT

go build -o "$work/rvfuzz" ./cmd/rvfuzz
go build -o "$work/rvcompliance" ./cmd/rvcompliance
go build -o "$work/rvnegtestd" ./cmd/rvnegtestd

echo "== reference artifacts via direct CLI runs"
"$work/rvfuzz" -cov v3 -seed "$SEED" -execs "$EXECS" -workers 2 \
    -checkpoint "$work/cli-fuzz-ck" \
    -out "$work/cli-suite.txt" -stats-json "$work/cli-stats.json" > /dev/null
"$work/rvcompliance" -generate "$GEN" -seed "$SEED" -workers 2 \
    -checkpoint "$work/cli-compl-ck" \
    -json > "$work/cli-report.json" || [ $? -eq 2 ] # degraded exit is fine
"$work/rvcompliance" -generate "$GEN" -seed "$SEED" -workers 2 \
    > "$work/cli-report.txt" || [ $? -eq 2 ]

start_daemon() {
    rm -f "$work/addr"
    "$work/rvnegtestd" -data "$work/store" -slots 2 -addr 127.0.0.1:0 \
        -addr-file "$work/addr" -events "$work/events.ndjson" 2>> "$work/daemon.log" &
    daemon_pid=$!
    for _ in $(seq 1 50); do
        [ -s "$work/addr" ] && break
        sleep 0.1
    done
    ADDR=$(cat "$work/addr")
    curl -sf "http://$ADDR/api/v1/healthz" > /dev/null
}

echo "== start daemon, submit fuzz + compliance jobs"
start_daemon
fuzz_spec=$(printf '{"kind":"fuzz","cov":"v3","seed":%d,"execs":%d,"workers":2}' "$SEED" "$EXECS")
compl_spec=$(printf '{"kind":"compliance","seed":%d,"execs":%d,"workers":2}' "$SEED" "$GEN")
fuzz_id=$(curl -sf -X POST "http://$ADDR/api/v1/jobs" -d "$fuzz_spec" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
compl_id=$(curl -sf -X POST "http://$ADDR/api/v1/jobs" -d "$compl_spec" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
echo "   fuzz job $fuzz_id, compliance job $compl_id"

echo "== kill -9 the daemon mid-job"
sleep "$KILL_AFTER"
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

# job.json is written indented, so tolerate whitespace after the colon.
state=$(sed -n 's/.*"state": *"\([a-z]*\)".*/\1/p' "$work/store/$fuzz_id/job.json" | head -1)
echo "   on-disk state after kill: $fuzz_id=$state"

echo "== restart daemon: jobs must resume and finish"
start_daemon
for id in "$fuzz_id" "$compl_id"; do
    final=$(curl -sf "http://$ADDR/api/v1/jobs/$id/wait?timeout_sec=300")
    state=$(printf '%s' "$final" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
    case "$state" in
        done|degraded) echo "   $id finished: $state" ;;
        *) echo "FAIL: job $id ended in state $state"; printf '%s\n' "$final"; exit 1 ;;
    esac
done

resumes=$(sed -n 's/.*"resumes": *\([0-9]*\).*/\1/p' "$work/store/$fuzz_id/job.json" | head -1)
if [ "${resumes:-0}" -lt 1 ]; then
    echo "FAIL: fuzz job recorded no resume after kill -9 (raise EXECS or lower KILL_AFTER)"
    exit 1
fi
echo "   $fuzz_id resumed $resumes time(s) across the kill"

echo "== compare daemon artifacts against the direct CLI runs"
curl -sf "http://$ADDR/api/v1/jobs/$fuzz_id/artifacts/suite.txt" > "$work/d-suite.txt"
curl -sf "http://$ADDR/api/v1/jobs/$fuzz_id/artifacts/stats.json" > "$work/d-stats.json"
curl -sf "http://$ADDR/api/v1/jobs/$compl_id/artifacts/report.json" > "$work/d-report.json"
curl -sf "http://$ADDR/api/v1/jobs/$compl_id/artifacts/report.txt" > "$work/d-report.txt"
cmp "$work/cli-suite.txt" "$work/d-suite.txt"
cmp "$work/cli-stats.json" "$work/d-stats.json"
# The CLI prints a two-line generation banner before the report; the
# daemon artifact is the report alone. Strip the banner, then cmp.
tail -n +3 "$work/cli-report.json" | cmp - "$work/d-report.json"
tail -n +3 "$work/cli-report.txt" | cmp - "$work/d-report.txt"

echo "== per-job event report renders"
go run ./cmd/rvreport -events "$work/events.ndjson" -job "$fuzz_id" | head -4

echo "OK: daemon jobs survived kill -9 and match direct CLI artifacts byte for byte"
