#!/usr/bin/env bash
# sut_smoke.sh — end-to-end smoke of the external SUT adapter fleet.
#
# Flow:
#   1. generate a seeded suite with rvfuzz
#   2. equivalence: an external rvsutadapter column wrapping the built-in
#      Spike model must produce a report byte-identical (after column
#      rename) to the in-process Spike column, for workers 1, 2 and 8
#   3. misbehaviour matrix: hang / crash / kill / garbage / truncate
#      adapters must each degrade gracefully — exit 2, adapter-skipped
#      cells in the report, never a harness crash
#   4. supervision telemetry: a flapping adapter's restart/retry/breaker
#      activity shows up in the NDJSON events and in rvreport's
#      "SUT health" section
#
# Usage: scripts/sut_smoke.sh [execs] [seed]
set -euo pipefail

EXECS="${1:-20000}"
SEED="${2:-7}"

cd "$(dirname "$0")/.."
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

go build -o "$work/rvfuzz" ./cmd/rvfuzz
go build -o "$work/rvcompliance" ./cmd/rvcompliance
go build -o "$work/rvsutadapter" ./cmd/rvsutadapter
go build -o "$work/rvreport" ./cmd/rvreport

echo "== generate suite (execs=$EXECS seed=$SEED)"
"$work/rvfuzz" -cov v3 -seed "$SEED" -execs "$EXECS" -out "$work/suite.txt"

echo "== in-process baseline (Spike)"
"$work/rvcompliance" -suite "$work/suite.txt" -sims Spike -workers 1 -json \
  >"$work/base.json"

echo "== external adapter equivalence (workers 1, 2, 8)"
for w in 1 2 8; do
  "$work/rvcompliance" -suite "$work/suite.txt" -sims '' \
    -sut "ext=$work/rvsutadapter -variant Spike" -workers "$w" -json \
    >"$work/ext-$w.raw"
  # Same cells, different column name: rename and compare byte for byte.
  sed 's/"ext"/"Spike"/' "$work/ext-$w.raw" >"$work/ext-$w.json"
  if ! cmp -s "$work/base.json" "$work/ext-$w.json"; then
    echo "FAIL: external column differs from in-process Spike at workers=$w" >&2
    diff "$work/base.json" "$work/ext-$w.json" | head >&2
    exit 1
  fi
  echo "   workers=$w: byte-identical"
done

echo "== misbehaviour matrix"
for mode in hang crash kill garbage truncate; do
  set +e
  out=$("$work/rvcompliance" -suite "$work/suite.txt" -isa RV32I -sims '' \
    -sut "bad=$work/rvsutadapter -misbehave $mode" \
    -sut-timeout 0.3 -sut-retries -1 -sut-halfopen -1 -workers 1 2>&1)
  status=$?
  set -e
  if [ "$status" -ne 2 ]; then
    echo "FAIL: $mode adapter exited $status, want degraded exit 2" >&2
    echo "$out" >&2
    exit 1
  fi
  if ! grep -q "skipped (adapter)" <<<"$out"; then
    echo "FAIL: $mode report lacks adapter-skipped cases" >&2
    echo "$out" >&2
    exit 1
  fi
  echo "   $mode: degraded exit 2, adapter-skipped cells"
done

echo "== supervision telemetry (flapping adapter, half-open recovery)"
set +e
"$work/rvcompliance" -suite "$work/suite.txt" -isa RV32I -sims '' \
  -sut "flappy=$work/rvsutadapter -misbehave crash -after 1" \
  -sut-retries -1 -breaker 1 -sut-halfopen 2 -workers 1 \
  -events "$work/events.ndjson" >/dev/null 2>&1
status=$?
set -e
if [ "$status" -ne 2 ]; then
  echo "FAIL: flapping adapter exited $status, want 2" >&2
  exit 1
fi
for ev in sut_restart adapter_fault breaker_half_open breaker_close; do
  if ! grep -q "\"type\":\"$ev\"" "$work/events.ndjson"; then
    echo "FAIL: event stream lacks $ev" >&2
    exit 1
  fi
done
health=$("$work/rvreport" -events "$work/events.ndjson")
if ! grep -q "SUT health" <<<"$health"; then
  echo "FAIL: rvreport lacks the SUT health section" >&2
  echo "$health" >&2
  exit 1
fi
echo "$health" | sed -n '/SUT health/,/^$/p'

echo "PASS: external SUT adapter smoke"
