#!/usr/bin/env bash
# kill_resume.sh — end-to-end proof that an interrupted+resumed rvfuzz
# campaign is byte-identical to an uninterrupted one.
#
# Flow:
#   1. run the campaign uninterrupted (seeded, exec-bounded) -> suite A, stats A
#   2. start the same campaign with a checkpoint dir, SIGINT it mid-run
#      (expect exit 130), resume it to completion -> suite B, stats B
#   3. cmp A B byte for byte (suite file and wall-clock-free stats JSON)
#
# Usage: scripts/kill_resume.sh [execs] [workers] [seed]
set -euo pipefail

EXECS="${1:-400000}"
WORKERS="${2:-2}"
SEED="${3:-7}"
KILL_AFTER="${KILL_AFTER:-3}" # seconds before the SIGINT

cd "$(dirname "$0")/.."
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

go build -o "$work/rvfuzz" ./cmd/rvfuzz

common=(-cov v3 -seed "$SEED" -execs "$EXECS" -workers "$WORKERS")
# Checkpoint often enough that the SIGINT almost surely lands mid-campaign
# with at least one checkpoint behind it; correctness does not depend on
# where it lands (before the first checkpoint resume just starts over).
ckpt_every=$((EXECS / 8))

echo "== uninterrupted run"
"$work/rvfuzz" "${common[@]}" \
  -out "$work/suite-straight.txt" -stats-json "$work/stats-straight.json"

echo "== interrupted run (SIGINT after ${KILL_AFTER}s)"
mkdir "$work/ckpt"
set +e
"$work/rvfuzz" "${common[@]}" -checkpoint "$work/ckpt" -checkpoint-every "$ckpt_every" \
  -out "$work/suite-resumed.txt" -stats-json "$work/stats-resumed.json" &
pid=$!
sleep "$KILL_AFTER"
kill -INT "$pid" 2>/dev/null
wait "$pid"
status=$?
set -e

if [ "$status" -eq 0 ]; then
  echo "note: campaign finished before the SIGINT landed; equivalence still checked"
elif [ "$status" -ne 130 ]; then
  echo "error: interrupted run exited $status, want 130" >&2
  exit 1
else
  echo "== resume"
  "$work/rvfuzz" "${common[@]}" -resume "$work/ckpt" \
    -out "$work/suite-resumed.txt" -stats-json "$work/stats-resumed.json"
fi

echo "== compare"
cmp "$work/suite-straight.txt" "$work/suite-resumed.txt"
cmp "$work/stats-straight.json" "$work/stats-resumed.json"
echo "OK: interrupted+resumed campaign is byte-identical to the uninterrupted one"
