#!/usr/bin/env bash
# telemetry_smoke.sh — end-to-end smoke test of the observability layer.
#
# Flow:
#   1. run a short rvfuzz campaign with -telemetry-addr and -events; scrape
#      /metrics mid-run and assert the key series are live and nonzero,
#      and that /debug/vars and /debug/pprof/ answer
#   2. run rvcompliance on the generated suite with the same flags; assert
#      the compliance series are exposed and the event stream carries
#      row_done/cell_done events
#   3. render both event files with `rvreport -events` and assert the
#      stage-time breakdown and per-simulator tables appear
#
# Usage: scripts/telemetry_smoke.sh [execs] [workers] [seed]
set -euo pipefail

EXECS="${1:-200000}"
WORKERS="${2:-2}"
SEED="${3:-7}"
FUZZ_PORT="${FUZZ_PORT:-19673}"
COMP_PORT="${COMP_PORT:-19674}"

cd "$(dirname "$0")/.."
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

go build -o "$work/rvfuzz" ./cmd/rvfuzz
go build -o "$work/rvcompliance" ./cmd/rvcompliance
go build -o "$work/rvreport" ./cmd/rvreport

# scrape URL PATTERN [DEADLINE_S] — poll until the pattern appears in the
# endpoint's output; the matched page lands in $work/scrape.out.
scrape() {
  local url=$1 pattern=$2 deadline=${3:-60} i
  for ((i = 0; i < deadline * 10; i++)); do
    if curl -fsS "$url" > "$work/scrape.out" 2>/dev/null &&
      grep -Eq "$pattern" "$work/scrape.out"; then
      return 0
    fi
    sleep 0.1
  done
  echo "error: $pattern never appeared at $url" >&2
  return 1
}

echo "== rvfuzz with live telemetry"
"$work/rvfuzz" -cov v3 -seed "$SEED" -execs "$EXECS" -workers "$WORKERS" \
  -telemetry-addr "127.0.0.1:$FUZZ_PORT" -events "$work/fuzz-events.ndjson" \
  -out "$work/suite.txt" &
fuzz_pid=$!
# The fuzz counters update per execution, so a mid-run scrape must show
# nonzero totals; [1-9] rejects a scrape that only caught the zero value.
scrape "http://127.0.0.1:$FUZZ_PORT/metrics" 'rvnegtest_fuzz_execs_total [1-9]'
grep -E 'rvnegtest_fuzz_(execs_total|corpus_size)' "$work/scrape.out"
scrape "http://127.0.0.1:$FUZZ_PORT/metrics" 'rvnegtest_stage_duration_seconds_bucket\{stage="execute"'
scrape "http://127.0.0.1:$FUZZ_PORT/debug/vars" '"rvnegtest_fuzz_execs_total"'
curl -fsS -o /dev/null "http://127.0.0.1:$FUZZ_PORT/debug/pprof/"
echo "ok: /metrics, /debug/vars and /debug/pprof/ live mid-campaign"
wait "$fuzz_pid"

for ev in campaign_start corpus_add stage_summary campaign_done; do
  grep -q "\"type\":\"$ev\"" "$work/fuzz-events.ndjson" ||
    { echo "error: no $ev event in fuzz-events.ndjson" >&2; exit 1; }
done
echo "ok: fuzz event stream has the lifecycle events"

echo "== rvcompliance with live telemetry"
"$work/rvcompliance" -suite "$work/suite.txt" -workers "$WORKERS" \
  -telemetry-addr "127.0.0.1:$COMP_PORT" -events "$work/comp-events.ndjson" \
  > "$work/comp.out" &
comp_pid=$!
# Compliance counters are registered up front (value 0, updated per merged
# row), so series presence is the timing-robust mid-run assertion.
scrape "http://127.0.0.1:$COMP_PORT/metrics" 'rvnegtest_compliance_mismatches_total\{sim='
grep -E 'rvnegtest_compliance_(execs|rows)_total' "$work/scrape.out"
set +e
wait "$comp_pid"
comp_status=$?
set -e
# 1 = mismatches found (expected: the SUTs carry seeded defects).
if [ "$comp_status" -ne 0 ] && [ "$comp_status" -ne 1 ]; then
  echo "error: rvcompliance exited $comp_status" >&2
  exit 1
fi
for ev in shard_done cell_done row_done; do
  grep -q "\"type\":\"$ev\"" "$work/comp-events.ndjson" ||
    { echo "error: no $ev event in comp-events.ndjson" >&2; exit 1; }
done
echo "ok: compliance series exposed, event stream has row/cell events"

echo "== rvreport -events"
"$work/rvreport" -events "$work/fuzz-events.ndjson" > "$work/fuzz-report.md"
grep -q '## Stage-time breakdown' "$work/fuzz-report.md" ||
  { echo "error: no stage-time breakdown in the fuzz event report" >&2; exit 1; }
"$work/rvreport" -events "$work/comp-events.ndjson" > "$work/comp-report.md"
grep -q '## Per-simulator cell time' "$work/comp-report.md" ||
  { echo "error: no per-simulator table in the compliance event report" >&2; exit 1; }
echo "ok: rvreport renders both event streams"

echo "OK: telemetry smoke test passed"
