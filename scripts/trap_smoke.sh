#!/usr/bin/env bash
# trap_smoke.sh — end-to-end smoke of the trap-rich suite family.
#
# Flow:
#   1. generate-and-run a trap suite (`rvcompliance -suite trap`) on RV32I
#      and assert every seeded privileged-defect carrier (Spike, VP,
#      sail-riscv, GRIFT) shows at least one trap-record divergence
#   2. generate a trap suite with rvfuzz, assert the `# family: trap`
#      header survives the save, and that a reload through rvcompliance
#      still classifies trap-record divergences
#
# Usage: scripts/trap_smoke.sh [execs] [seed]
set -euo pipefail

EXECS="${1:-20000}"
SEED="${2:-1}"

cd "$(dirname "$0")/.."
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

go build -o "$work/rvfuzz" ./cmd/rvfuzz
go build -o "$work/rvcompliance" ./cmd/rvcompliance

echo "== trap suite: generate + compare (execs=$EXECS seed=$SEED)"
out=$("$work/rvcompliance" -suite trap -generate "$EXECS" -seed "$SEED" -isa RV32I -bugs)
echo "$out"
for s in Spike VP sail-riscv GRIFT; do
  if ! grep -Eq "^$s: .*trap-record" <<<"$out"; then
    echo "FAIL: $s shows no trap-record divergence" >&2
    exit 1
  fi
done

echo "== trap suite: save/load round-trip"
"$work/rvfuzz" -suite trap -execs 5000 -seed "$SEED" -out "$work/trap.txt" >/dev/null
if ! grep -q '^# family: trap$' "$work/trap.txt"; then
  echo "FAIL: saved suite misses the family header" >&2
  exit 1
fi
if ! "$work/rvcompliance" -suite "$work/trap.txt" -isa RV32I -sims Spike -bugs | grep -q 'trap-record'; then
  echo "FAIL: reloaded trap suite shows no trap-record divergence" >&2
  exit 1
fi

echo "trap smoke OK"
