#!/usr/bin/env bash
# telemetry_bench.sh — measure the telemetry layer's overhead on the fuzz
# hot path and publish BENCH_telemetry.json.
#
# Runs BenchmarkStepTelemetryOff/On (one fuzzer Step with telemetry absent
# vs. fully wired: registry + events + stage timers), takes the best of
# COUNT runs each (min is robust against scheduling noise), and fails if
# the enabled path is more than BUDGET_PCT slower.
#
# Usage: scripts/telemetry_bench.sh [out.json]
set -euo pipefail

OUT="${1:-BENCH_telemetry.json}"
COUNT="${COUNT:-5}"
BENCHTIME="${BENCHTIME:-1s}"
BUDGET_PCT="${BUDGET_PCT:-2.0}"

cd "$(dirname "$0")/.."

raw=$(go test -run '^$' -bench 'BenchmarkStepTelemetry(Off|On)$' \
  -benchtime "$BENCHTIME" -count "$COUNT" ./internal/fuzz/)
echo "$raw"

awk -v budget="$BUDGET_PCT" -v out="$OUT" '
/^BenchmarkStepTelemetryOff/ { if (off == 0 || $3 < off) off = $3 }
/^BenchmarkStepTelemetryOn/  { if (on == 0 || $3 < on) on = $3 }
END {
  if (off == 0 || on == 0) { print "error: benchmark output missing" > "/dev/stderr"; exit 1 }
  pct = 100 * (on - off) / off
  printf "{\n  \"step_ns_telemetry_off\": %.1f,\n  \"step_ns_telemetry_on\": %.1f,\n  \"overhead_pct\": %.2f,\n  \"budget_pct\": %.1f\n}\n", off, on, pct, budget > out
  printf "telemetry overhead: %.2f%% (off %.0fns/op, on %.0fns/op, budget %.1f%%)\n", pct, off, on, budget
  if (pct > budget) { print "error: telemetry overhead exceeds budget" > "/dev/stderr"; exit 1 }
}' <<< "$raw"

echo "written: $OUT"
