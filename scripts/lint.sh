#!/usr/bin/env bash
# Static-analysis gate: gofmt, go vet, the repo's own rvlint analyzers
# (determinism + invariant passes) run through the real vet -vettool
# protocol, and — when the tools are installed — staticcheck and
# govulncheck. Any finding fails the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
out=$(gofmt -l .)
if [ -n "$out" ]; then
  echo "unformatted files:"
  echo "$out"
  exit 1
fi

echo "== go vet =="
go vet ./...

echo "== rvlint (go vet -vettool) =="
mkdir -p bin
go build -o bin/rvlint ./cmd/rvlint
go vet -vettool="$PWD/bin/rvlint" ./...

# Optional gates: run when installed (CI installs them; offline dev
# boxes may not have them).
if command -v staticcheck >/dev/null 2>&1; then
  echo "== staticcheck =="
  staticcheck ./...
else
  echo "== staticcheck: not installed, skipping =="
fi

if command -v govulncheck >/dev/null 2>&1; then
  echo "== govulncheck =="
  govulncheck ./...
else
  echo "== govulncheck: not installed, skipping =="
fi

echo "lint: all gates passed"
