package filter

import (
	"math/rand"
	"testing"

	"rvnegtest/internal/isa"
)

// BenchmarkCheckAccepted measures the filter on the Fig. 2 style accepted
// program (forked paths).
func BenchmarkCheckAccepted(b *testing.B) {
	bs := stream(
		enc(isa.Inst{Op: isa.OpADD, Rd: 31, Rs1: 2, Rs2: 3}),
		enc(isa.Inst{Op: isa.OpJAL, Rd: 2, Imm: 20}),
		enc(isa.Inst{Op: isa.OpWFI}),
		enc(isa.Inst{Op: isa.OpADD, Rd: 30, Rs1: 2, Rs2: 3}),
		enc(isa.Inst{Op: isa.OpBLT, Rs1: 30, Rs2: 31, Imm: 12}),
		0xffffffff,
		enc(isa.Inst{Op: isa.OpBEQ, Rs1: 1, Rs2: 2, Imm: -8}),
		enc(isa.Inst{Op: isa.OpLW, Rd: 5, Rs1: 30, Imm: -16}),
	)
	flt := &Filter{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !flt.Check(bs).Accepted {
			b.Fatal("must accept")
		}
	}
}

// BenchmarkCheckRandom measures the filter over random fuzzer-style
// inputs (the actual hot path of a campaign).
func BenchmarkCheckRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	inputs := make([][]byte, 256)
	for i := range inputs {
		bs := make([]byte, 4*(1+rng.Intn(16)))
		rng.Read(bs)
		inputs[i] = bs
	}
	flt := &Filter{MaxLen: 64}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flt.Check(inputs[i%len(inputs)])
	}
}

// denseStream builds a branch-dense input: nForks consecutive conditional
// branches (2^nForks-ish paths) ending in an illegal word. The enumeration
// engine forks at every branch and burns its step budget; the fixpoint
// engine decides it in one pass per block.
func denseStream(nForks int) []byte {
	var words []uint32
	for i := 0; i < nForks; i++ {
		words = append(words, enc(isa.Inst{Op: isa.OpBEQ, Rs1: 1, Rs2: 2, Imm: 8}))
	}
	words = append(words, 0xffffffff)
	return stream(words...)
}

// BenchmarkFilterDense compares the two engines on the branch-dense
// workload that motivated the fixpoint rewrite. The fixpoint engine must
// not be slower — and it accepts the input, where path enumeration gives
// up with ReasonPathBudget.
func BenchmarkFilterDense(b *testing.B) {
	// 21 words (84 bytes): inside the exhaustive engine's 128-byte visited
	// window, beyond any practical fork budget. No MaxLen so the length
	// check does not short-circuit either engine.
	bs := denseStream(20)
	b.Run("fixpoint", func(b *testing.B) {
		flt := &Filter{}
		for i := 0; i < b.N; i++ {
			if !flt.Check(bs).Accepted {
				b.Fatal("fixpoint must accept the branch-dense input")
			}
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		exh := &Exhaustive{}
		for i := 0; i < b.N; i++ {
			if r := exh.Check(bs); r.Reason != ReasonPathBudget {
				b.Fatalf("exhaustive should exhaust its budget, got %v", r)
			}
		}
	})
}

// BenchmarkCheckAcceptedExhaustive is the enumeration-engine baseline for
// BenchmarkCheckAccepted.
func BenchmarkCheckAcceptedExhaustive(b *testing.B) {
	bs := stream(
		enc(isa.Inst{Op: isa.OpADD, Rd: 31, Rs1: 2, Rs2: 3}),
		enc(isa.Inst{Op: isa.OpJAL, Rd: 2, Imm: 20}),
		enc(isa.Inst{Op: isa.OpWFI}),
		enc(isa.Inst{Op: isa.OpADD, Rd: 30, Rs1: 2, Rs2: 3}),
		enc(isa.Inst{Op: isa.OpBLT, Rs1: 30, Rs2: 31, Imm: 12}),
		0xffffffff,
		enc(isa.Inst{Op: isa.OpBEQ, Rs1: 1, Rs2: 2, Imm: -8}),
		enc(isa.Inst{Op: isa.OpLW, Rd: 5, Rs1: 30, Imm: -16}),
	)
	exh := &Exhaustive{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !exh.Check(bs).Accepted {
			b.Fatal("must accept")
		}
	}
}

// BenchmarkCheckRandomExhaustive is the enumeration-engine baseline for
// BenchmarkCheckRandom.
func BenchmarkCheckRandomExhaustive(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	inputs := make([][]byte, 256)
	for i := range inputs {
		bs := make([]byte, 4*(1+rng.Intn(16)))
		rng.Read(bs)
		inputs[i] = bs
	}
	exh := &Exhaustive{MaxLen: 64}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exh.Check(inputs[i%len(inputs)])
	}
}
