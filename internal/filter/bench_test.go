package filter

import (
	"math/rand"
	"testing"

	"rvnegtest/internal/isa"
)

// BenchmarkCheckAccepted measures the filter on the Fig. 2 style accepted
// program (forked paths).
func BenchmarkCheckAccepted(b *testing.B) {
	bs := stream(
		enc(isa.Inst{Op: isa.OpADD, Rd: 31, Rs1: 2, Rs2: 3}),
		enc(isa.Inst{Op: isa.OpJAL, Rd: 2, Imm: 20}),
		enc(isa.Inst{Op: isa.OpWFI}),
		enc(isa.Inst{Op: isa.OpADD, Rd: 30, Rs1: 2, Rs2: 3}),
		enc(isa.Inst{Op: isa.OpBLT, Rs1: 30, Rs2: 31, Imm: 12}),
		0xffffffff,
		enc(isa.Inst{Op: isa.OpBEQ, Rs1: 1, Rs2: 2, Imm: -8}),
		enc(isa.Inst{Op: isa.OpLW, Rd: 5, Rs1: 30, Imm: -16}),
	)
	flt := &Filter{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !flt.Check(bs).Accepted {
			b.Fatal("must accept")
		}
	}
}

// BenchmarkCheckRandom measures the filter over random fuzzer-style
// inputs (the actual hot path of a campaign).
func BenchmarkCheckRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	inputs := make([][]byte, 256)
	for i := range inputs {
		bs := make([]byte, 4*(1+rng.Intn(16)))
		rng.Read(bs)
		inputs[i] = bs
	}
	flt := &Filter{MaxLen: 64}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flt.Check(inputs[i%len(inputs)])
	}
}
