package filter

import (
	"rvnegtest/internal/analysis"
	"rvnegtest/internal/isa"
)

// Exhaustive is the original path-enumeration filter engine: it forks an
// abstract state at every conditional branch and walks every control-flow
// path under a global step budget. It is kept in-tree as the differential
// oracle for the fixpoint engine (Filter): Filter must accept a superset
// of what Exhaustive accepts — Exhaustive is strictly more conservative
// because it cannot fold statically decided branches and drops
// branch-dense inputs when the fork budget runs out (ReasonPathBudget).
type Exhaustive struct {
	// MaxLen, when nonzero, drops bytestreams longer than this many bytes.
	MaxLen int
	// Trap selects the trap-suite family semantics, mirroring
	// Filter.Trap: deliberate traps (illegal encodings, ECALL, EBREAK)
	// resume at (pc&^3)+4 instead of terminating the path, every other
	// instruction forks a conservative trap-resume state (deduplicated
	// against its static successors, exactly as the fixpoint engine
	// dedups its resume edges), the forbidden set shrinks to
	// analysis.TrapForbidden, and only stores keep the clean-base rule.
	// The per-instruction forking is exponential, so trap-mode Exhaustive
	// exhausts its budget on much shorter streams than user mode — that
	// is acceptable for an oracle (ReasonPathBudget drops never count
	// against the superset invariant).
	Trap bool
}

// maxSteps bounds the total abstract-execution work; exceeding it drops
// the bytestream conservatively (a defence against exponential branch
// lattices, which the fuzzer would otherwise be able to construct).
const maxSteps = 1 << 14

// cleanInit marks x30 and x31 as the only clean registers: the test-case
// template initializes them with the data-window address (section IV-B).
const cleanInit = 1<<30 | 1<<31

// state is one abstract execution state of the path enumeration.
type state struct {
	pc      int32
	clean   uint32 // bitmask of clean registers
	visited uint64 // bitmask over pc/2 positions
}

// Check runs the path-enumerating abstract execution over the bytestream.
func (f *Exhaustive) Check(bs []byte) Result {
	if f.MaxLen > 0 && len(bs) > f.MaxLen {
		return Result{Reason: ReasonTooLong, PC: int32(len(bs))}
	}
	// The injection area pads the bytestream to a whole word with zero
	// bytes; analyze what actually executes.
	n := int32(len(bs)+3) &^ 3
	padded := make([]byte, n)
	copy(padded, bs)
	if n/2 > 64 {
		// visited is a 64-bit set over half-word positions; the template
		// injection area (<= 80 bytes = 40 positions) always fits, but
		// guard against misuse.
		return Result{Reason: ReasonOutOfBounds, PC: n}
	}

	work := []state{{pc: 0, clean: cleanInit}}
	paths, steps := 0, 0
	drop := func(r Reason, pc int32, op isa.Op) Result {
		return Result{Reason: r, PC: pc, Op: op}
	}
	for len(work) > 0 {
		st := work[len(work)-1]
		work = work[:len(work)-1]
		for {
			if steps++; steps > maxSteps {
				return drop(ReasonPathBudget, st.pc, isa.OpIllegal)
			}
			if st.pc == n {
				paths++ // fell off the end: the template's jump slots finish the test
				break
			}
			if st.pc < 0 || st.pc > n {
				return drop(ReasonOutOfBounds, st.pc, isa.OpIllegal)
			}
			bit := uint64(1) << uint(st.pc/2)
			if st.visited&bit != 0 {
				return drop(ReasonLoop, st.pc, isa.OpIllegal)
			}
			st.visited |= bit

			lo := uint32(padded[st.pc]) | uint32(padded[st.pc+1])<<8
			var inst isa.Inst
			if lo&3 == 3 {
				if st.pc+4 > n {
					return drop(ReasonStraddle, st.pc, isa.OpIllegal)
				}
				word := lo | uint32(padded[st.pc+2])<<16 | uint32(padded[st.pc+3])<<24
				inst = isa.Ref.Decode32(word)
			} else {
				inst = isa.Ref.DecodeC(uint16(lo))
			}

			info := inst.Info()
			if info == nil {
				if f.Trap {
					// Trap suite: the recording handler resumes one word
					// past the faulting slot.
					st.pc = resumePC(st.pc)
					continue
				}
				// Illegal encoding: execution takes the exception and the
				// trap handler ends the test. The path is accepted.
				paths++
				break
			}
			if f.Trap {
				if analysis.TrapForbidden(inst) {
					return drop(ReasonForbidden, st.pc, inst.Op)
				}
				if inst.Op == isa.OpECALL || inst.Op == isa.OpEBREAK {
					// Deliberate trap: recorded, then resumed.
					st.pc = resumePC(st.pc)
					continue
				}
			} else {
				if info.Flags.Is(isa.FlagForbidden) {
					return drop(ReasonForbidden, st.pc, inst.Op)
				}
				if inst.Op == isa.OpECALL {
					// Deterministic trap into the handler: path accepted.
					paths++
					break
				}
			}

			// Memory access discipline; in trap mode faults are desired
			// events, so only stores keep the clean-base rule.
			if info.Flags.Any(isa.FlagLoad | isa.FlagStore) {
				dirtyBase := st.clean&(1<<inst.Rs1) == 0
				if f.Trap {
					if info.Flags.Is(isa.FlagStore) && dirtyBase {
						return drop(ReasonDirtyAddress, st.pc, inst.Op)
					}
				} else {
					if dirtyBase {
						return drop(ReasonDirtyAddress, st.pc, inst.Op)
					}
					if info.MemSize > 1 && inst.Imm&int32(info.MemSize-1) != 0 {
						return drop(ReasonUnalignedImm, st.pc, inst.Op)
					}
				}
			}

			// forkResume mirrors the fixpoint engine's conservative
			// trap-resume edge: any surviving instruction might still fault
			// (FP without F, CSR errors, misaligned fetch/data), resuming
			// at (pc&^3)+4. The fork is deduplicated against the
			// instruction's static successors with the same rule the
			// fixpoint engine applies, keeping its path counts an upper
			// bound on the fixpoint engine's.
			forkResume := func(succs ...int32) {
				if !f.Trap {
					return
				}
				r := resumePC(st.pc)
				for _, t := range succs {
					if t == r {
						return
					}
				}
				alt := st
				alt.pc = r
				work = append(work, alt)
			}

			switch {
			case inst.Op == isa.OpJAL:
				st.clean &^= regBit(inst.Rd)
				forkResume(st.pc + inst.Imm)
				st.pc += inst.Imm
				continue
			case info.Flags.Is(isa.FlagBranch):
				taken := st
				taken.pc += inst.Imm
				work = append(work, taken)
				forkResume(st.pc+int32(inst.Size), taken.pc)
				st.pc += int32(inst.Size)
				continue
			}

			if info.Flags.Is(isa.FlagWritesRD) {
				st.clean &^= regBit(inst.Rd)
			}
			forkResume(st.pc + int32(inst.Size))
			st.pc += int32(inst.Size)
		}
	}
	return Result{Accepted: true, Paths: paths}
}

// resumePC is where the trap template's handler resumes after a fault at
// pc: mepc masked to its enclosing word, advanced one word. Strictly
// greater than pc and never past the padded end.
func resumePC(pc int32) int32 { return (pc &^ 3) + 4 }

func regBit(r isa.Reg) uint32 {
	if r == 0 {
		return 0
	}
	return 1 << r
}
