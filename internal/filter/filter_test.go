package filter

import (
	"math/rand"
	"testing"

	"rvnegtest/internal/exec"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/template"
)

func enc(inst isa.Inst) uint32 { return isa.MustEncode(inst) }

func stream(words ...uint32) []byte {
	var out []byte
	for _, w := range words {
		out = append(out, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return out
}

var f = &Filter{}

// TestFig2Example is the exact example of the paper's Fig. 2: the program
// must be accepted with three control-flow paths, although it contains a
// WFI (unreachable) and an instruction dirtying x30 (unreachable).
func TestFig2Example(t *testing.T) {
	bs := stream(
		enc(isa.Inst{Op: isa.OpADD, Rd: 31, Rs1: 2, Rs2: 3}),   //  0: mark x31 dirty
		enc(isa.Inst{Op: isa.OpJAL, Rd: 2, Imm: 20}),           //  4: to 24, mark x2 dirty
		enc(isa.Inst{Op: isa.OpWFI}),                           //  8: forbidden but unreachable
		enc(isa.Inst{Op: isa.OpADD, Rd: 30, Rs1: 2, Rs2: 3}),   // 12: would dirty x30; unreachable
		enc(isa.Inst{Op: isa.OpBLT, Rs1: 30, Rs2: 31, Imm: 4}), // 16: fork to 20 / 28... see below
		0xffffffff, // 20: illegal -> accept path
		enc(isa.Inst{Op: isa.OpBEQ, Rs1: 1, Rs2: 2, Imm: -8}), // 24: fork to 16 / 28
		enc(isa.Inst{Op: isa.OpLW, Rd: 5, Rs1: 30, Imm: -16}), // 28: requires x30 clean
	)
	// Adjust the BLT at 16 to fork to 28 (taken) and 20 (fallthrough),
	// matching the figure: offset +12.
	blt := enc(isa.Inst{Op: isa.OpBLT, Rs1: 30, Rs2: 31, Imm: 12})
	copy(bs[16:], stream(blt))
	res := f.Check(bs)
	if !res.Accepted {
		t.Fatalf("Fig. 2 program dropped: %v", res)
	}
	if res.Paths != 3 {
		t.Errorf("paths = %d, want 3", res.Paths)
	}
}

func TestForbiddenInstructions(t *testing.T) {
	cases := map[string]uint32{
		"jalr":       enc(isa.Inst{Op: isa.OpJALR, Rd: 1, Rs1: 2}),
		"mret":       enc(isa.Inst{Op: isa.OpMRET}),
		"sret":       enc(isa.Inst{Op: isa.OpSRET}),
		"uret":       enc(isa.Inst{Op: isa.OpURET}),
		"wfi":        enc(isa.Inst{Op: isa.OpWFI}),
		"ebreak":     enc(isa.Inst{Op: isa.OpEBREAK}),
		"sfence.vma": enc(isa.Inst{Op: isa.OpSFENCEVMA, Rs1: 1, Rs2: 2}),
		"csrrw":      enc(isa.Inst{Op: isa.OpCSRRW, Rd: 1, Rs1: 2, CSR: 0x340}),
		"csrrs":      enc(isa.Inst{Op: isa.OpCSRRS, Rd: 1, Rs1: 2, CSR: 0x340}),
		"csrrc":      enc(isa.Inst{Op: isa.OpCSRRC, Rd: 1, Rs1: 2, CSR: 0x340}),
		"csrrwi":     enc(isa.Inst{Op: isa.OpCSRRWI, Rd: 1, Imm: 3, CSR: 0x340}),
		"csrrsi":     enc(isa.Inst{Op: isa.OpCSRRSI, Rd: 1, Imm: 3, CSR: 0x340}),
		"csrrci":     enc(isa.Inst{Op: isa.OpCSRRCI, Rd: 1, Imm: 3, CSR: 0x340}),
	}
	for name, w := range cases {
		res := f.Check(stream(w))
		if res.Accepted || res.Reason != ReasonForbidden {
			t.Errorf("%s: %v, want forbidden drop", name, res)
		}
	}
	// Compressed forbidden forms: c.jr ra (jalr), c.ebreak.
	for _, h := range []uint16{0x8082, 0x9002} {
		res := f.Check([]byte{byte(h), byte(h >> 8)})
		if res.Accepted || res.Reason != ReasonForbidden {
			t.Errorf("compressed %#04x: %v, want forbidden drop", h, res)
		}
	}
}

func TestEcallAccepted(t *testing.T) {
	res := f.Check(stream(0x00000073))
	if !res.Accepted {
		t.Fatalf("ecall: %v", res)
	}
	// Instructions after the ECALL are unreachable, even forbidden ones.
	res = f.Check(stream(0x00000073, enc(isa.Inst{Op: isa.OpWFI})))
	if !res.Accepted {
		t.Errorf("ecall shadowing wfi: %v", res)
	}
}

func TestIllegalAccepted(t *testing.T) {
	res := f.Check(stream(0xffffffff))
	if !res.Accepted || res.Paths != 1 {
		t.Fatalf("illegal word: %v", res)
	}
	// Reserved compressed encodings count as illegal: accepted (this is
	// what lets the suite expose the reserved-compressed bugs).
	res = f.Check([]byte{0x02, 0x40}) // c.lwsp x0, 0(sp)
	if !res.Accepted {
		t.Errorf("c.lwsp x0: %v", res)
	}
	// Custom-0 opcode: illegal on the reference decoder, accepted (this
	// exposes the riscvOVPsim custom-opcode bug).
	res = f.Check(stream(0x0000400b))
	if !res.Accepted {
		t.Errorf("custom-0: %v", res)
	}
}

func TestLoopDetection(t *testing.T) {
	// jal x0, 0: self loop.
	res := f.Check(stream(enc(isa.Inst{Op: isa.OpJAL, Imm: 0})))
	if res.Accepted || res.Reason != ReasonLoop {
		t.Errorf("self jal: %v", res)
	}
	// Two-instruction loop via backward branch.
	res = f.Check(stream(
		enc(isa.Inst{Op: isa.OpADD, Rd: 1, Rs1: 1, Rs2: 2}),
		enc(isa.Inst{Op: isa.OpBEQ, Rs1: 0, Rs2: 0, Imm: -4}),
	))
	if res.Accepted || res.Reason != ReasonLoop {
		t.Errorf("backward beq: %v", res)
	}
	// A backward branch that cannot loop (lands on an exit path) is fine:
	// beq x0,x0,+8 ; illegal ; illegal <- taken target is end.
	res = f.Check(stream(
		enc(isa.Inst{Op: isa.OpBEQ, Rs1: 1, Rs2: 2, Imm: 8}),
		0xffffffff,
		0xffffffff,
	))
	if !res.Accepted || res.Paths != 2 {
		t.Errorf("forward fork: %v", res)
	}
}

func TestOutOfBounds(t *testing.T) {
	// Jump beyond the end.
	res := f.Check(stream(enc(isa.Inst{Op: isa.OpJAL, Imm: 64})))
	if res.Accepted || res.Reason != ReasonOutOfBounds {
		t.Errorf("far jal: %v", res)
	}
	// Jump before the start.
	res = f.Check(stream(enc(isa.Inst{Op: isa.OpJAL, Imm: -8})))
	if res.Accepted || res.Reason != ReasonOutOfBounds {
		t.Errorf("negative jal: %v", res)
	}
	// Jump to exactly the end: equivalent to falling through.
	res = f.Check(stream(enc(isa.Inst{Op: isa.OpJAL, Imm: 4})))
	if !res.Accepted {
		t.Errorf("jal to end: %v", res)
	}
}

func TestMemoryDiscipline(t *testing.T) {
	// Loads/stores via x30/x31 with aligned immediates are accepted.
	ok := [][]uint32{
		{enc(isa.Inst{Op: isa.OpLW, Rd: 5, Rs1: 30, Imm: -16})},
		{enc(isa.Inst{Op: isa.OpSW, Rs1: 31, Rs2: 7, Imm: 2044})},
		{enc(isa.Inst{Op: isa.OpLB, Rd: 5, Rs1: 30, Imm: 7})}, // byte: any imm
		{enc(isa.Inst{Op: isa.OpLH, Rd: 5, Rs1: 31, Imm: -2})},
		{enc(isa.Inst{Op: isa.OpFLD, Rd: 5, Rs1: 30, Imm: 8})},
		{enc(isa.Inst{Op: isa.OpFSW, Rs1: 31, Rs2: 3, Imm: 4})},
		{enc(isa.Inst{Op: isa.OpLRW, Rd: 5, Rs1: 30})},
		{enc(isa.Inst{Op: isa.OpAMOADDW, Rd: 5, Rs1: 31, Rs2: 2})},
	}
	for _, ws := range ok {
		if res := f.Check(stream(ws...)); !res.Accepted {
			t.Errorf("aligned x30/x31 access dropped: %v", res)
		}
	}
	// Dirty base register.
	res := f.Check(stream(enc(isa.Inst{Op: isa.OpLW, Rd: 5, Rs1: 7, Imm: 0})))
	if res.Accepted || res.Reason != ReasonDirtyAddress {
		t.Errorf("dirty base: %v", res)
	}
	// x30 dirtied then used.
	res = f.Check(stream(
		enc(isa.Inst{Op: isa.OpADD, Rd: 30, Rs1: 1, Rs2: 2}),
		enc(isa.Inst{Op: isa.OpLW, Rd: 5, Rs1: 30, Imm: 0}),
	))
	if res.Accepted || res.Reason != ReasonDirtyAddress {
		t.Errorf("dirtied x30: %v", res)
	}
	// A load into x30 dirties it for later accesses (the loaded value is
	// data, not a guaranteed window address).
	res = f.Check(stream(
		enc(isa.Inst{Op: isa.OpLW, Rd: 30, Rs1: 30, Imm: 0}),
		enc(isa.Inst{Op: isa.OpLW, Rd: 5, Rs1: 30, Imm: 0}),
	))
	if res.Accepted || res.Reason != ReasonDirtyAddress {
		t.Errorf("load-into-x30: %v", res)
	}
	// Unaligned immediates.
	res = f.Check(stream(enc(isa.Inst{Op: isa.OpLW, Rd: 5, Rs1: 30, Imm: 2})))
	if res.Accepted || res.Reason != ReasonUnalignedImm {
		t.Errorf("unaligned lw: %v", res)
	}
	res = f.Check(stream(enc(isa.Inst{Op: isa.OpFLD, Rd: 5, Rs1: 30, Imm: 4})))
	if res.Accepted || res.Reason != ReasonUnalignedImm {
		t.Errorf("unaligned fld: %v", res)
	}
	res = f.Check(stream(enc(isa.Inst{Op: isa.OpSH, Rs1: 31, Rs2: 1, Imm: -3})))
	if res.Accepted || res.Reason != ReasonUnalignedImm {
		t.Errorf("unaligned sh: %v", res)
	}
	// Compressed loads use x8..x15 or sp as base: always dirty.
	res = f.Check([]byte{0x98, 0x43}) // c.lw a4, 0(a5)
	if res.Accepted || res.Reason != ReasonDirtyAddress {
		t.Errorf("c.lw: %v", res)
	}
}

func TestStraddlingEncoding(t *testing.T) {
	// A 32-bit opcode in the last halfword: its upper half would come
	// from the template's jump slots, so the filter refuses to reason
	// about it.
	res := f.Check([]byte{0x13, 0x05}) // addi low half, padded to (0x13, 0x05, 0, 0) = full word
	if !res.Accepted {
		// Padding makes this a complete word: addi a0, x0, 0 then end.
		t.Errorf("padded halfword: %v", res)
	}
	// Six bytes: one full word (nop) + a 32-bit low half at offset 4.
	bs := append(stream(enc(isa.Inst{Op: isa.OpADDI})), 0x13, 0x05)
	// Padding extends to 8 bytes, so the second word is complete too.
	if res := f.Check(bs); !res.Accepted {
		t.Errorf("six bytes: %v", res)
	}
	// Branch into the middle of the final word so a 32-bit encoding
	// starts at n-2.
	bs2 := stream(
		enc(isa.Inst{Op: isa.OpBEQ, Rs1: 0, Rs2: 0, Imm: 10}), // to offset 10
		0x00000001, // halfwords: 0x0001 (c.nop), 0x0000 (illegal)
		0xf3f3f3f3, // offset 8; halfword at 10 = 0xf3f3: 32-bit low half
	)
	res = f.Check(bs2)
	if res.Accepted || res.Reason != ReasonStraddle {
		t.Errorf("straddle: %v", res)
	}
}

func TestWritesDirtyRD(t *testing.T) {
	// Every RD-writing op must dirty its destination; spot-check a few
	// classes via subsequent x30 usage.
	writers := []isa.Inst{
		{Op: isa.OpLUI, Rd: 30, Imm: 4096},
		{Op: isa.OpAUIPC, Rd: 30, Imm: 4096},
		{Op: isa.OpADDI, Rd: 30, Rs1: 30, Imm: 0},
		{Op: isa.OpMUL, Rd: 30, Rs1: 1, Rs2: 2},
		{Op: isa.OpFCVTWS, Rd: 30, Rs1: 1},
	}
	for _, wi := range writers {
		bs := stream(enc(wi), enc(isa.Inst{Op: isa.OpLW, Rd: 5, Rs1: 30}))
		if res := f.Check(bs); res.Accepted {
			t.Errorf("%v did not dirty x30", wi.Op)
		}
	}
	// Writing x31 leaves x30 clean.
	bs := stream(
		enc(isa.Inst{Op: isa.OpLUI, Rd: 31, Imm: 4096}),
		enc(isa.Inst{Op: isa.OpLW, Rd: 5, Rs1: 30}),
	)
	if res := f.Check(bs); !res.Accepted {
		t.Errorf("x31 write affected x30: %v", res)
	}
}

func TestMaxLen(t *testing.T) {
	g := &Filter{MaxLen: 8}
	if res := g.Check(make([]byte, 12)); res.Accepted {
		t.Error("overlong stream accepted")
	}
	if res := g.Check(stream(0xffffffff)); !res.Accepted {
		t.Errorf("short stream: %v", res)
	}
}

// TestMaxLenReason: overlong bytestreams are a distinct drop class, not
// an out-of-bounds control-flow violation.
func TestMaxLenReason(t *testing.T) {
	g := &Filter{MaxLen: 8}
	res := g.Check(make([]byte, 12))
	if res.Reason != ReasonTooLong {
		t.Errorf("overlong drop reason = %v, want ReasonTooLong", res.Reason)
	}
	if res.PC != 12 {
		t.Errorf("overlong drop PC = %d, want the stream length", res.PC)
	}
	e := &Exhaustive{MaxLen: 8}
	if res := e.Check(make([]byte, 12)); res.Reason != ReasonTooLong {
		t.Errorf("exhaustive overlong drop reason = %v, want ReasonTooLong", res.Reason)
	}
	if got := ReasonTooLong.String(); got != "bytestream too long" {
		t.Errorf("ReasonTooLong.String() = %q, want %q", got, "bytestream too long")
	}
	// Exactly MaxLen is fine.
	if res := g.Check(stream(0xffffffff, 0xffffffff)); !res.Accepted {
		t.Errorf("stream at MaxLen: %v", res)
	}
}

// TestFixpointPrecision pins the acceptance gains of the fixpoint engine
// over path enumeration: statically decided branches fold away, so
// infeasible loops, dead forbidden instructions and dead wild targets no
// longer cause drops — and the path budget is gone entirely.
func TestFixpointPrecision(t *testing.T) {
	exh := &Exhaustive{}
	cases := []struct {
		name   string
		bs     []byte
		oldRes Reason // what path enumeration says
	}{
		{
			"infeasible-loop",
			stream(
				enc(isa.Inst{Op: isa.OpADDI, Rd: 5, Rs1: 0, Imm: 0}),
				enc(isa.Inst{Op: isa.OpBNE, Rs1: 5, Rs2: 0, Imm: -4}),
				0xffffffff,
			),
			ReasonLoop,
		},
		{
			"dead-forbidden",
			stream(
				enc(isa.Inst{Op: isa.OpADDI, Rd: 5, Rs1: 0, Imm: 1}),
				enc(isa.Inst{Op: isa.OpBNE, Rs1: 5, Rs2: 0, Imm: 8}),
				enc(isa.Inst{Op: isa.OpWFI}),
				0xffffffff,
			),
			ReasonForbidden,
		},
		{
			"dead-wild-target",
			stream(
				enc(isa.Inst{Op: isa.OpADDI, Rd: 5, Rs1: 0, Imm: 1}),
				enc(isa.Inst{Op: isa.OpBEQ, Rs1: 5, Rs2: 0, Imm: 4000}),
				0xffffffff,
			),
			ReasonOutOfBounds,
		},
	}
	for _, tc := range cases {
		if res := f.Check(tc.bs); !res.Accepted {
			t.Errorf("%s: fixpoint dropped %v", tc.name, res)
		}
		if res := exh.Check(tc.bs); res.Reason != tc.oldRes {
			t.Errorf("%s: exhaustive gave %v, want %v (test premise)", tc.name, res, tc.oldRes)
		}
	}
}

// TestNoPathBudgetDrops: the fixpoint engine never rejects for budget
// reasons, even on inputs engineered to blow up path enumeration.
func TestNoPathBudgetDrops(t *testing.T) {
	var words []uint32
	for i := 0; i < 24; i++ {
		words = append(words, enc(isa.Inst{Op: isa.OpBEQ, Rs1: 1, Rs2: 2, Imm: 8}))
	}
	words = append(words, 0xffffffff)
	bs := stream(words...)
	exh := &Exhaustive{}
	if res := exh.Check(bs); res.Reason != ReasonPathBudget {
		t.Fatalf("exhaustive should exhaust its budget, got %v (test premise)", res)
	}
	if res := f.Check(bs); !res.Accepted || res.Reason == ReasonPathBudget {
		t.Errorf("fixpoint on branch-dense input: %v", res)
	}
}

// TestExhaustiveSubsetRandom: quick random differential between the two
// engines (the fuzz target FuzzFilterDifferential is the deep version).
func TestExhaustiveSubsetRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	flt := &Filter{MaxLen: 64}
	exh := &Exhaustive{MaxLen: 64}
	for i := 0; i < 20000; i++ {
		bs := make([]byte, rng.Intn(65))
		rng.Read(bs)
		// Half the time, seed real opcode patterns for deeper penetration.
		if len(bs) >= 4 && rng.Intn(2) == 0 {
			in := &isa.Instructions[rng.Intn(len(isa.Instructions))]
			w := rng.Uint32()&^in.Mask | in.Match
			bs[0], bs[1], bs[2], bs[3] = byte(w), byte(w>>8), byte(w>>16), byte(w>>24)
		}
		fr := flt.Check(bs)
		if fr.Reason == ReasonPathBudget {
			t.Fatalf("fixpoint path-budget drop on %x", bs)
		}
		if er := exh.Check(bs); er.Accepted && !fr.Accepted {
			t.Fatalf("superset violated on %x: exhaustive accepted, fixpoint %v", bs, fr)
		}
	}
}

func TestEmptyStream(t *testing.T) {
	if res := f.Check(nil); !res.Accepted || res.Paths != 1 {
		t.Errorf("empty: %v", res)
	}
}

// TestAcceptedStreamsAreDeterministicAcrossPlatforms is the paper's core
// soundness claim: any filter-accepted bytestream produces the SAME
// signature on every specification-compliant platform of a given ISA
// configuration, no matter which legal platform behaviours it picks
// (unaligned-access policy, WFI semantics, EBREAK semantics) — so
// automated signature comparison never produces spurious mismatches.
func TestAcceptedStreamsAreDeterministicAcrossPlatforms(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cfgs := []isa.Config{isa.RV32I, isa.RV32IMC, isa.RV32GC}
	flt := &Filter{MaxLen: 64}

	platforms := func(cfg isa.Config) []template.Platform {
		base := template.Platform{Layout: template.DefaultLayout, Cfg: cfg}
		alt := base
		alt.TrapUnaligned = true
		alt2 := base
		alt2.WFIHalts = true
		alt2.EbreakHalts = true
		return []template.Platform{base, alt, alt2}
	}
	// Pre-build the images once per platform.
	imgs := map[isa.Config][]*template.Image{}
	for _, cfg := range cfgs {
		for _, p := range platforms(cfg) {
			img, err := template.Preload(p)
			if err != nil {
				t.Fatal(err)
			}
			imgs[cfg] = append(imgs[cfg], img)
		}
	}

	accepted := 0
	for trial := 0; trial < 3000 && accepted < 300; trial++ {
		// Random streams seeded with real opcode patterns so a useful
		// fraction passes the filter.
		nw := 1 + rng.Intn(8)
		bs := make([]byte, nw*4)
		rng.Read(bs)
		for i := 0; i < nw; i++ {
			if rng.Intn(2) == 0 {
				in := &isa.Instructions[rng.Intn(len(isa.Instructions))]
				w := rng.Uint32()&^in.Mask | in.Match
				bs[i*4], bs[i*4+1], bs[i*4+2], bs[i*4+3] = byte(w), byte(w>>8), byte(w>>16), byte(w>>24)
			}
		}
		if !flt.Check(bs).Accepted {
			continue
		}
		accepted++
		for _, cfg := range cfgs {
			var ref []uint32
			for i, img := range imgs[cfg] {
				if err := img.Inject(bs); err != nil {
					t.Fatal(err)
				}
				e := img.NewExecutor(isa.Ref, exec.Quirks{})
				if err := e.Run(50000); err != nil {
					t.Fatalf("accepted stream %x timed out on %v platform %d: %v", bs, cfg, i, err)
				}
				sig, err := img.Signature()
				if err != nil {
					t.Fatal(err)
				}
				if i == 0 {
					ref = sig
					continue
				}
				for j := range sig {
					if sig[j] != ref[j] {
						t.Fatalf("accepted stream %x: %v signature differs between platforms at word %d: %#x vs %#x",
							bs, cfg, j, ref[j], sig[j])
					}
				}
			}
		}
	}
	if accepted < 50 {
		t.Fatalf("only %d accepted streams generated; test too weak", accepted)
	}
	t.Logf("verified %d accepted streams across %d configs x 3 platforms", accepted, len(cfgs))
}

// TestOverlappingInstructionStreams: a branch to a 2-mod-4 offset makes
// the filter decode a second instruction stream overlapping the first —
// both must be analyzed.
func TestOverlappingInstructionStreams(t *testing.T) {
	// Construct: beq x0,x0,+6 jumps into the middle of the next 32-bit
	// word. The halfword at +6 (the upper half of the ADD below) is
	// 0x00b5 -> low bits 01: a compressed encoding from the overlapping
	// stream.
	bs := stream(
		enc(isa.Inst{Op: isa.OpBEQ, Rs1: 0, Rs2: 0, Imm: 6}),
		enc(isa.Inst{Op: isa.OpADD, Rd: 10, Rs1: 10, Rs2: 11}),
	)
	res := f.Check(bs)
	// Whatever the verdict, the filter must terminate and be
	// deterministic; for this stream both paths are clean.
	res2 := f.Check(bs)
	if res.Accepted != res2.Accepted || res.Reason != res2.Reason {
		t.Fatalf("non-deterministic: %v vs %v", res, res2)
	}
	// A variant where the overlapping stream reaches a forbidden
	// instruction must be dropped even though the aligned stream is fine.
	bs2 := stream(
		enc(isa.Inst{Op: isa.OpBEQ, Rs1: 0, Rs2: 0, Imm: 6}),
		0x8082ffff, // aligned view: illegal; halfword at +6 = 0x8082 = c.jr ra (forbidden!)
	)
	res = f.Check(bs2)
	if res.Accepted || res.Reason != ReasonForbidden {
		t.Errorf("overlapping forbidden stream: %v", res)
	}
	// Without the branch the c.jr is never decoded at +6; the aligned
	// stream ends at the illegal word. Accepted.
	bs3 := stream(
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 1, Imm: 0}),
		0x8082ffff,
	)
	if res := f.Check(bs3); !res.Accepted {
		t.Errorf("aligned-only view: %v", res)
	}
}

// TestFilterIsPureFunction: quick-check that Check never mutates its input
// and stays deterministic over random streams.
func TestFilterIsPureFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	flt := &Filter{MaxLen: 64}
	for i := 0; i < 5000; i++ {
		bs := make([]byte, rng.Intn(65))
		rng.Read(bs)
		orig := append([]byte(nil), bs...)
		r1 := flt.Check(bs)
		r2 := flt.Check(bs)
		if r1 != r2 {
			t.Fatalf("non-deterministic on %x: %v vs %v", bs, r1, r2)
		}
		if string(bs) != string(orig) {
			t.Fatalf("input mutated: %x -> %x", orig, bs)
		}
	}
}

// TestAUIPCLayoutBoundary documents a known boundary of the paper's filter
// (ours and the original): AUIPC is not forbidden, yet it materializes an
// absolute code address, so a filter-accepted stream's signature depends
// on the platform's TEXT base. The compliance flow is sound because every
// compared platform must place the injected body identically (ours do, via
// the shared Layout); this test pins the behaviour so the assumption stays
// explicit.
func TestAUIPCLayoutBoundary(t *testing.T) {
	bs := stream(enc(isa.Inst{Op: isa.OpAUIPC, Rd: 5, Imm: 0}))
	if res := f.Check(bs); !res.Accepted {
		t.Fatalf("auipc must be filter-accepted: %v", res)
	}
	layoutA := template.DefaultLayout
	layoutB := layoutA
	layoutB.TextBase = 0x1000 // hypothetical platform with code elsewhere
	layoutB.MemBase = 0
	run := func(l template.Layout) []uint32 {
		img, err := template.Preload(template.Platform{Layout: l, Cfg: isa.RV32I})
		if err != nil {
			t.Fatal(err)
		}
		if err := img.Inject(bs); err != nil {
			t.Fatal(err)
		}
		e := img.NewExecutor(isa.Ref, exec.Quirks{})
		if err := e.Run(50000); err != nil {
			t.Fatal(err)
		}
		sig, err := img.Signature()
		if err != nil {
			t.Fatal(err)
		}
		return sig
	}
	a, b := run(layoutA), run(layoutB)
	if a[5] == b[5] {
		t.Fatal("expected AUIPC to expose the text base difference (the documented boundary)")
	}
	if a[5]-uint32(layoutA.TextBase) != b[5]-uint32(layoutB.TextBase) {
		t.Errorf("AUIPC results differ by more than the base: %#x vs %#x", a[5], b[5])
	}
}
