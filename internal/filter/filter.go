// Package filter implements the static-analysis filter of the paper
// (section IV-C): an abstract interpretation of a fuzzer-generated
// bytestream that conservatively drops inputs which could loop forever or
// behave differently between platforms, so that compliance testing stays
// fully automatic (no spurious signature mismatches to triage by hand).
//
// The filter drops a bytestream if a forbidden instruction (JALR, xRET,
// WFI, EBREAK, SFENCE.VMA, any CSR instruction) is reachable, control
// flow can leave the local bounds or loop, or a memory access uses a base
// register that no longer holds the data-window address (only x30/x31
// start clean; any write dirties its destination) or an immediate that is
// not access-size aligned.
//
// Since the fixpoint rewrite the decision engine is internal/analysis: a
// basic-block CFG plus a worklist fixpoint over a per-register lattice,
// linear in blocks x registers where the original enumerated control-flow
// paths (exponential in branches, requiring a conservative fork budget).
// The historical path-enumeration engine survives as Exhaustive, serving
// as the differential-testing oracle: Filter accepts a superset of what
// Exhaustive accepts, and never drops for budget reasons.
package filter

import (
	"fmt"

	"rvnegtest/internal/analysis"
	"rvnegtest/internal/isa"
)

// Reason classifies why a bytestream was dropped. It is the analysis
// package's taxonomy; the names below keep the historical filter API.
type Reason = analysis.Reason

const (
	// ReasonNone: the bytestream was accepted.
	ReasonNone = analysis.ReasonNone
	// ReasonForbidden: a forbidden instruction is reachable.
	ReasonForbidden = analysis.ReasonForbidden
	// ReasonLoop: control flow can revisit an instruction.
	ReasonLoop = analysis.ReasonLoop
	// ReasonOutOfBounds: control flow can leave the bytestream.
	ReasonOutOfBounds = analysis.ReasonOutOfBounds
	// ReasonDirtyAddress: a memory access uses a dirty base register.
	ReasonDirtyAddress = analysis.ReasonDirtyAddress
	// ReasonUnalignedImm: a memory access immediate is not size-aligned.
	ReasonUnalignedImm = analysis.ReasonUnalignedImm
	// ReasonStraddle: a 32-bit encoding straddles the bytestream end.
	ReasonStraddle = analysis.ReasonStraddle
	// ReasonPathBudget: the path fork budget was exhausted (only the
	// Exhaustive oracle can report this; Filter never does).
	ReasonPathBudget = analysis.ReasonPathBudget
	// ReasonTooLong: the bytestream exceeds MaxLen.
	ReasonTooLong = analysis.ReasonTooLong
)

// Result reports the filter decision for one bytestream.
type Result struct {
	Accepted bool
	Reason   Reason
	// PC is the local offset of the instruction that caused a drop.
	PC int32
	// Op is the operation at that offset (when meaningful).
	Op isa.Op
	// Paths is the number of accepted control-flow paths.
	Paths int
}

func (r Result) String() string {
	if r.Accepted {
		return fmt.Sprintf("accepted (%d paths)", r.Paths)
	}
	return fmt.Sprintf("dropped at +%d: %s (%v)", r.PC, r.Reason, r.Op)
}

// Filter checks bytestreams with the fixpoint dataflow engine. The zero
// value is ready to use (user-suite semantics).
type Filter struct {
	// MaxLen, when nonzero, drops bytestreams longer than this many bytes
	// (the injection area limit).
	MaxLen int
	// Trap selects the trap-suite family semantics
	// (analysis.AnalyzeMode): deliberate traps resume past the faulting
	// word under the recording handler, the forbidden set shrinks to
	// analysis.TrapForbidden, and only stores keep the clean-base rule.
	Trap bool
}

// Check analyses the bytestream and returns the accept/drop decision.
func (f *Filter) Check(bs []byte) Result {
	if f.MaxLen > 0 && len(bs) > f.MaxLen {
		return Result{Reason: ReasonTooLong, PC: int32(len(bs))}
	}
	v := analysis.AnalyzeMode(bs, f.Trap).Verdict
	return Result{
		Accepted: v.Reason == analysis.ReasonNone,
		Reason:   v.Reason,
		PC:       v.PC,
		Op:       v.Op,
		Paths:    v.Paths,
	}
}
