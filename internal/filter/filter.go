// Package filter implements the static-analysis filter of the paper
// (section IV-C): an abstract local execution of a fuzzer-generated
// bytestream that conservatively drops inputs which could loop forever or
// behave differently between platforms, so that compliance testing stays
// fully automatic (no spurious signature mismatches to triage by hand).
//
// The abstract state is the local program counter, a clean/dirty mark per
// integer register (clean = usable as a memory address; only x30/x31 start
// clean, any write dirties its destination) and the set of visited PCs
// (revisiting one means a potential loop). Conditional branches fork the
// state; a path is accepted when it reaches an illegal instruction (the
// exception ends execution deterministically) or falls off the end of the
// bytestream. The whole bytestream is dropped if any path reaches a
// forbidden instruction (JALR, xRET, WFI, EBREAK, SFENCE.VMA, any CSR
// instruction), leaves the local bounds, loops, or performs a memory
// access whose base register is dirty or whose immediate is not
// access-size aligned.
package filter

import (
	"fmt"

	"rvnegtest/internal/isa"
)

// Reason classifies why a bytestream was dropped.
type Reason uint8

const (
	// ReasonNone: the bytestream was accepted.
	ReasonNone Reason = iota
	// ReasonForbidden: a forbidden instruction is reachable.
	ReasonForbidden
	// ReasonLoop: a PC can be revisited on some path.
	ReasonLoop
	// ReasonOutOfBounds: control flow can leave the bytestream.
	ReasonOutOfBounds
	// ReasonDirtyAddress: a memory access uses a dirty base register.
	ReasonDirtyAddress
	// ReasonUnalignedImm: a memory access immediate is not size-aligned.
	ReasonUnalignedImm
	// ReasonStraddle: a 32-bit encoding straddles the bytestream end (its
	// upper half would come from the template, which the filter does not
	// model).
	ReasonStraddle
	// ReasonPathBudget: the path fork budget was exhausted (conservative).
	ReasonPathBudget
)

var reasonNames = [...]string{
	"accepted", "forbidden instruction", "potential loop", "control flow out of bounds",
	"dirty address register", "unaligned immediate", "straddling encoding", "path budget exhausted",
}

func (r Reason) String() string {
	if int(r) < len(reasonNames) {
		return reasonNames[r]
	}
	return "unknown"
}

// Result reports the filter decision for one bytestream.
type Result struct {
	Accepted bool
	Reason   Reason
	// PC is the local offset of the instruction that caused a drop.
	PC int32
	// Op is the operation at that offset (when meaningful).
	Op isa.Op
	// Paths is the number of accepted control-flow paths.
	Paths int
}

func (r Result) String() string {
	if r.Accepted {
		return fmt.Sprintf("accepted (%d paths)", r.Paths)
	}
	return fmt.Sprintf("dropped at +%d: %s (%v)", r.PC, r.Reason, r.Op)
}

// maxSteps bounds the total abstract-execution work; exceeding it drops
// the bytestream conservatively (a defence against exponential branch
// lattices, which the fuzzer would otherwise be able to construct).
const maxSteps = 1 << 14

// cleanInit marks x30 and x31 as the only clean registers: the test-case
// template initializes them with the data-window address (section IV-B).
const cleanInit = 1<<30 | 1<<31

// state is one abstract execution state.
type state struct {
	pc      int32
	clean   uint32 // bitmask of clean registers
	visited uint64 // bitmask over pc/2 positions
}

// Filter checks bytestreams. The zero value is ready to use.
type Filter struct {
	// MaxLen, when nonzero, drops bytestreams longer than this many bytes
	// (the injection area limit).
	MaxLen int
}

// Check runs the abstract execution over the bytestream.
func (f *Filter) Check(bs []byte) Result {
	if f.MaxLen > 0 && len(bs) > f.MaxLen {
		return Result{Reason: ReasonOutOfBounds, PC: int32(len(bs))}
	}
	// The injection area pads the bytestream to a whole word with zero
	// bytes; analyze what actually executes.
	n := int32(len(bs)+3) &^ 3
	padded := make([]byte, n)
	copy(padded, bs)
	if n/2 > 64 {
		// visited is a 64-bit set over half-word positions; the template
		// injection area (<= 80 bytes = 40 positions) always fits, but
		// guard against misuse.
		return Result{Reason: ReasonOutOfBounds, PC: n}
	}

	work := []state{{pc: 0, clean: cleanInit}}
	paths, steps := 0, 0
	drop := func(r Reason, pc int32, op isa.Op) Result {
		return Result{Reason: r, PC: pc, Op: op}
	}
	for len(work) > 0 {
		st := work[len(work)-1]
		work = work[:len(work)-1]
		for {
			if steps++; steps > maxSteps {
				return drop(ReasonPathBudget, st.pc, isa.OpIllegal)
			}
			if st.pc == n {
				paths++ // fell off the end: the template's jump slots finish the test
				break
			}
			if st.pc < 0 || st.pc > n {
				return drop(ReasonOutOfBounds, st.pc, isa.OpIllegal)
			}
			bit := uint64(1) << uint(st.pc/2)
			if st.visited&bit != 0 {
				return drop(ReasonLoop, st.pc, isa.OpIllegal)
			}
			st.visited |= bit

			lo := uint32(padded[st.pc]) | uint32(padded[st.pc+1])<<8
			var inst isa.Inst
			if lo&3 == 3 {
				if st.pc+4 > n {
					return drop(ReasonStraddle, st.pc, isa.OpIllegal)
				}
				word := lo | uint32(padded[st.pc+2])<<16 | uint32(padded[st.pc+3])<<24
				inst = isa.Ref.Decode32(word)
			} else {
				inst = isa.Ref.DecodeC(uint16(lo))
			}

			info := inst.Info()
			if info == nil {
				// Illegal encoding: execution takes the exception and the
				// trap handler ends the test. The path is accepted.
				paths++
				break
			}
			if info.Flags.Is(isa.FlagForbidden) {
				return drop(ReasonForbidden, st.pc, inst.Op)
			}
			if inst.Op == isa.OpECALL {
				// Deterministic trap into the handler: path accepted.
				paths++
				break
			}

			// Memory access discipline.
			if info.Flags.Any(isa.FlagLoad | isa.FlagStore) {
				if st.clean&(1<<inst.Rs1) == 0 {
					return drop(ReasonDirtyAddress, st.pc, inst.Op)
				}
				if info.MemSize > 1 && inst.Imm&int32(info.MemSize-1) != 0 {
					return drop(ReasonUnalignedImm, st.pc, inst.Op)
				}
			}

			switch {
			case inst.Op == isa.OpJAL:
				st.clean &^= regBit(inst.Rd)
				st.pc += inst.Imm
				continue
			case info.Flags.Is(isa.FlagBranch):
				taken := st
				taken.pc += inst.Imm
				work = append(work, taken)
				st.pc += int32(inst.Size)
				continue
			}

			if info.Flags.Is(isa.FlagWritesRD) {
				st.clean &^= regBit(inst.Rd)
			}
			st.pc += int32(inst.Size)
		}
	}
	return Result{Accepted: true, Paths: paths}
}

func regBit(r isa.Reg) uint32 {
	if r == 0 {
		return 0
	}
	return 1 << r
}
