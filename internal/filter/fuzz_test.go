package filter

import (
	"sync"
	"testing"

	"rvnegtest/internal/isa"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/template"
)

// seedCorpus are bytestreams exercising the interesting filter shapes:
// folded branches, overlapping streams, compressed encodings, memory
// accesses, loops and straddles.
func seedCorpus(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(stream(0xffffffff))
	f.Add(stream(0x00000073)) // ecall
	f.Add([]byte{0x01, 0x00}) // c.nop
	f.Add([]byte{0x02, 0x40}) // c.lwsp x0 (reserved)
	f.Add(stream(
		enc(isa.Inst{Op: isa.OpADD, Rd: 31, Rs1: 2, Rs2: 3}),
		enc(isa.Inst{Op: isa.OpJAL, Rd: 2, Imm: 20}),
		enc(isa.Inst{Op: isa.OpWFI}),
		enc(isa.Inst{Op: isa.OpADD, Rd: 30, Rs1: 2, Rs2: 3}),
		enc(isa.Inst{Op: isa.OpBLT, Rs1: 30, Rs2: 31, Imm: 12}),
		0xffffffff,
		enc(isa.Inst{Op: isa.OpBEQ, Rs1: 1, Rs2: 2, Imm: -8}),
		enc(isa.Inst{Op: isa.OpLW, Rd: 5, Rs1: 30, Imm: -16}),
	)) // the Fig. 2 program
	f.Add(stream(
		enc(isa.Inst{Op: isa.OpADDI, Rd: 5, Rs1: 0, Imm: 0}),
		enc(isa.Inst{Op: isa.OpBNE, Rs1: 5, Rs2: 0, Imm: -4}),
		0xffffffff,
	)) // statically infeasible loop (fixpoint-only acceptance)
	f.Add(stream(
		enc(isa.Inst{Op: isa.OpBEQ, Rs1: 1, Rs2: 2, Imm: 8}),
		enc(isa.Inst{Op: isa.OpBEQ, Rs1: 1, Rs2: 2, Imm: 8}),
		enc(isa.Inst{Op: isa.OpBEQ, Rs1: 1, Rs2: 2, Imm: 8}),
		0xffffffff,
	)) // branch-dense
	f.Add(stream(
		enc(isa.Inst{Op: isa.OpBEQ, Rs1: 0, Rs2: 0, Imm: 6}),
		0x8082ffff,
	)) // overlapping instruction streams
	f.Add(stream(
		enc(isa.Inst{Op: isa.OpBEQ, Rs1: 0, Rs2: 0, Imm: 10}),
		0x00000001,
		0xf3f3f3f3,
	)) // straddling encoding behind a branch
	f.Add(stream(
		enc(isa.Inst{Op: isa.OpLW, Rd: 5, Rs1: 30, Imm: -16}),
		enc(isa.Inst{Op: isa.OpSW, Rs1: 31, Rs2: 7, Imm: 2044}),
	)) // clean memory accesses

	// Trap-mode shapes: both fuzz targets run every seed through both
	// families, so these also exercise the user-mode engines.
	f.Add(stream(
		enc(isa.Inst{Op: isa.OpEBREAK}),
		enc(isa.Inst{Op: isa.OpCSRRS, Rd: 9, Rs1: 0, CSR: 0x342}),
		0xffffffff,
		enc(isa.Inst{Op: isa.OpLW, Rd: 5, Rs1: 9, Imm: 3}),
	)) // deliberate traps, CSR read, dirty/unaligned load
	f.Add(stream(
		enc(isa.Inst{Op: isa.OpCSRRW, Rd: 0, Rs1: 15, CSR: 0x305}),
	)) // mtvec write: forbidden in both families
	f.Add(append([]byte{0x01, 0x00},
		stream(enc(isa.Inst{Op: isa.OpECALL}))...,
	)) // compressed prefix: resume offsets interleave with fall-throughs
}

// FuzzFilterDifferential checks the acceptance-superset invariant against
// the retired path-enumeration engine: anything Exhaustive accepts, the
// fixpoint engine must accept too (the fixpoint only ever prunes
// statically infeasible edges, so it cannot see violations Exhaustive
// missed). It also checks that the fixpoint engine never spends its
// (nonexistent) path budget, and that folding only ever shrinks the
// accepted path count (edges are removed, never added).
func FuzzFilterDifferential(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, bs []byte) {
		for _, trap := range []bool{false, true} {
			flt := &Filter{MaxLen: 64, Trap: trap}
			exh := &Exhaustive{MaxLen: 64, Trap: trap}
			fr := flt.Check(bs)
			er := exh.Check(bs)
			if fr.Reason == ReasonPathBudget {
				t.Fatalf("trap=%v: fixpoint engine reported a path budget drop on %x", trap, bs)
			}
			if er.Accepted && !fr.Accepted {
				t.Fatalf("trap=%v: superset violated on %x: exhaustive accepted, fixpoint dropped %v", trap, bs, fr)
			}
			if er.Accepted && fr.Accepted && fr.Paths > er.Paths {
				t.Fatalf("trap=%v: fixpoint counts more paths on %x: exhaustive %d, fixpoint %d", trap, bs, er.Paths, fr.Paths)
			}
			if er.Reason == ReasonTooLong && fr.Reason != ReasonTooLong {
				t.Fatalf("trap=%v: MaxLen verdicts diverge on %x: %v vs %v", trap, bs, er, fr)
			}
		}
	})
}

// termSims are shared across FuzzAcceptedTerminates iterations, one per
// suite family; the simulators are not concurrency-safe, so runs are
// serialized.
var (
	termSimOnce sync.Once
	termSims    [2]*sim.Simulator // indexed by family (user, trap)
	termSimErr  error
	termSimMu   sync.Mutex
)

// FuzzAcceptedTerminates checks the filter's semantic guarantee in both
// suite families: every accepted bytestream runs to completion on the
// reference simulator under the matching template — no timeouts (loops),
// no crashes. This is what makes filter acceptance safe for automated
// signature comparison.
func FuzzAcceptedTerminates(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, bs []byte) {
		termSimOnce.Do(func() {
			for i, fam := range []template.Family{template.FamilyUser, template.FamilyTrap} {
				termSims[i], termSimErr = sim.New(sim.Reference, template.PlatformFor(fam, isa.RV32GC))
				if termSimErr != nil {
					return
				}
			}
		})
		for i, trap := range []bool{false, true} {
			flt := &Filter{MaxLen: 64, Trap: trap}
			if !flt.Check(bs).Accepted {
				continue
			}
			if termSimErr != nil {
				t.Fatal(termSimErr)
			}
			termSimMu.Lock()
			out := termSims[i].Run(bs)
			termSimMu.Unlock()
			if out.TimedOut {
				t.Fatalf("trap=%v: accepted stream %x did not terminate", trap, bs)
			}
			if out.Crashed {
				t.Fatalf("trap=%v: accepted stream %x crashed the reference simulator: %s", trap, bs, out.CrashMsg)
			}
		}
	})
}
