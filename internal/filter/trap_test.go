package filter

import (
	"testing"

	"rvnegtest/internal/analysis"
	"rvnegtest/internal/isa"
)

// both runs a bytestream through the fixpoint engine and the exhaustive
// oracle in trap mode and checks they agree on the verdict.
func bothTrap(t *testing.T, bs []byte) (Result, Result) {
	t.Helper()
	fr := (&Filter{Trap: true}).Check(bs)
	er := (&Exhaustive{Trap: true}).Check(bs)
	if fr.Accepted != er.Accepted && er.Reason != ReasonPathBudget {
		t.Fatalf("engines disagree: fixpoint %v, exhaustive %v", fr, er)
	}
	return fr, er
}

// TestTrapModeAcceptsDesiredEvents: the trap suite's whole point — the
// events the user filter rejects become recorded, resumable signature
// content.
func TestTrapModeAcceptsDesiredEvents(t *testing.T) {
	cases := []struct {
		name string
		bs   []byte
		user Reason // the user-mode engine's verdict for contrast
	}{
		{"illegal word", stream(0xffffffff), ReasonNone}, // user mode also accepts (exit)
		{"ebreak", stream(enc(isa.Inst{Op: isa.OpEBREAK})), ReasonForbidden},
		{"csr read cycle", stream(enc(isa.Inst{Op: isa.OpCSRRS, Rd: 9, Rs1: 0, CSR: 0x342})), ReasonForbidden},
		{"csr write mscratch", stream(enc(isa.Inst{Op: isa.OpCSRRW, Rd: 0, Rs1: 5, CSR: 0x340})), ReasonForbidden},
		{"mtvec read-only", stream(enc(isa.Inst{Op: isa.OpCSRRS, Rd: 9, Rs1: 0, CSR: 0x305})), ReasonForbidden},
		{"mtvec csrrsi zero imm", stream(enc(isa.Inst{Op: isa.OpCSRRSI, Rd: 9, Imm: 0, CSR: 0x305})), ReasonForbidden},
		{"sfence.vma", stream(enc(isa.Inst{Op: isa.OpSFENCEVMA, Rs1: 1, Rs2: 2})), ReasonForbidden},
		{"unaligned load", stream(enc(isa.Inst{Op: isa.OpLW, Rd: 5, Rs1: 30, Imm: 2})), ReasonUnalignedImm},
		{"dirty-base load", stream(enc(isa.Inst{Op: isa.OpLW, Rd: 5, Rs1: 9, Imm: 0})), ReasonDirtyAddress},
		{"dirty-base lr.w", stream(enc(isa.Inst{Op: isa.OpLRW, Rd: 5, Rs1: 9})), ReasonDirtyAddress},
		{"unaligned store clean base", stream(enc(isa.Inst{Op: isa.OpSW, Rs1: 30, Rs2: 5, Imm: 1})), ReasonUnalignedImm},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fr, _ := bothTrap(t, tc.bs)
			if !fr.Accepted {
				t.Fatalf("trap mode dropped %s: %v", tc.name, fr)
			}
			ur := (&Filter{}).Check(tc.bs)
			if ur.Reason != tc.user {
				t.Fatalf("user-mode contrast for %s: got %v, want reason %v", tc.name, ur, tc.user)
			}
		})
	}
}

// TestTrapModeForbidden: the instructions that escape the recording
// handler's control stay forbidden in both engines.
func TestTrapModeForbidden(t *testing.T) {
	cases := []struct {
		name string
		bs   []byte
	}{
		{"jalr", stream(enc(isa.Inst{Op: isa.OpJALR, Rd: 0, Rs1: 1}))},
		{"wfi", stream(enc(isa.Inst{Op: isa.OpWFI}))},
		{"mret", stream(enc(isa.Inst{Op: isa.OpMRET}))},
		{"sret", stream(enc(isa.Inst{Op: isa.OpSRET}))},
		{"uret", stream(enc(isa.Inst{Op: isa.OpURET}))},
		{"csrrw mtvec", stream(enc(isa.Inst{Op: isa.OpCSRRW, Rd: 0, Rs1: 5, CSR: 0x305}))},
		{"csrrwi mtvec", stream(enc(isa.Inst{Op: isa.OpCSRRWI, Rd: 0, Imm: 0, CSR: 0x305}))},
		{"csrrs mtvec set bits", stream(enc(isa.Inst{Op: isa.OpCSRRS, Rd: 0, Rs1: 5, CSR: 0x305}))},
		{"csrrci mtvec clear bits", stream(enc(isa.Inst{Op: isa.OpCSRRCI, Rd: 0, Imm: 1, CSR: 0x305}))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fr, er := bothTrap(t, tc.bs)
			if fr.Reason != ReasonForbidden {
				t.Fatalf("fixpoint: got %v, want forbidden", fr)
			}
			if er.Reason != ReasonForbidden {
				t.Fatalf("exhaustive: got %v, want forbidden", er)
			}
		})
	}
}

// TestTrapModeDirtyStoreDropped: stores (plain, SC, AMO) keep the
// clean-base rule even in trap mode — a wild store could corrupt the
// code, the handler, or the signature.
func TestTrapModeDirtyStoreDropped(t *testing.T) {
	for _, tc := range []struct {
		name string
		bs   []byte
	}{
		{"sw", stream(enc(isa.Inst{Op: isa.OpSW, Rs1: 9, Rs2: 5, Imm: 0}))},
		{"sc.w", stream(enc(isa.Inst{Op: isa.OpSCW, Rd: 5, Rs1: 9, Rs2: 6}))},
		{"amoadd.w", stream(enc(isa.Inst{Op: isa.OpAMOADDW, Rd: 5, Rs1: 9, Rs2: 6}))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fr, er := bothTrap(t, tc.bs)
			if fr.Reason != ReasonDirtyAddress || er.Reason != ReasonDirtyAddress {
				t.Fatalf("got fixpoint %v, exhaustive %v, want dirty address", fr, er)
			}
		})
	}
}

// TestTrapModeResume: deliberate traps resume at (pc&^3)+4 — a chain of
// illegal words threads through to the exit as exactly one path in both
// engines.
func TestTrapModeResume(t *testing.T) {
	fr, er := bothTrap(t, stream(0xffffffff, 0xffffffff, enc(isa.Inst{Op: isa.OpECALL})))
	if !fr.Accepted || fr.Paths != 1 {
		t.Fatalf("fixpoint: got %v, want accepted with 1 path", fr)
	}
	if !er.Accepted || er.Paths != 1 {
		t.Fatalf("exhaustive: got %v, want accepted with 1 path", er)
	}
}

// TestTrapModeResumeSkipsHalfword: a compressed trap site in the lower
// halfword of a word resumes past its upper halfword, so a forbidden
// instruction there is dead code.
func TestTrapModeResumeSkipsHalfword(t *testing.T) {
	// c.ebreak (0x9002) at +0 traps and resumes at +4; +2 is never decoded.
	bs := []byte{0x02, 0x90, 0xff, 0xff}
	fr, er := bothTrap(t, bs)
	if !fr.Accepted || !er.Accepted {
		t.Fatalf("got fixpoint %v, exhaustive %v, want accepted", fr, er)
	}
}

// TestTrapModeResumeFork: a compressed non-trapping instruction in the
// lower halfword forks fall-through (+2) and conservative resume (+4)
// paths.
func TestTrapModeResumeFork(t *testing.T) {
	// c.nop at +0, c.nop at +2: paths 0→2→4 and 0→4.
	bs := []byte{0x01, 0x00, 0x01, 0x00}
	fr, er := bothTrap(t, bs)
	if !fr.Accepted || fr.Paths != 2 {
		t.Fatalf("fixpoint: got %v, want accepted with 2 paths", fr)
	}
	if !er.Accepted || er.Paths != 2 {
		t.Fatalf("exhaustive: got %v, want accepted with 2 paths", er)
	}
}

// TestTrapModeControlFlowRules: loops and out-of-bounds control flow stay
// dropped in trap mode.
func TestTrapModeControlFlowRules(t *testing.T) {
	fr, _ := bothTrap(t, stream(enc(isa.Inst{Op: isa.OpBEQ, Rs1: 5, Rs2: 6, Imm: 0})))
	if fr.Reason != ReasonLoop {
		t.Fatalf("self-branch: got %v, want loop", fr)
	}
	fr, _ = bothTrap(t, stream(enc(isa.Inst{Op: isa.OpJAL, Rd: 0, Imm: 1 << 12})))
	if fr.Reason != ReasonOutOfBounds {
		t.Fatalf("wild jump: got %v, want out of bounds", fr)
	}
}

// TestTrapForbiddenPredicate pins the analysis-level predicate the
// engines and the mutator share.
func TestTrapForbiddenPredicate(t *testing.T) {
	for _, tc := range []struct {
		inst isa.Inst
		want bool
	}{
		{isa.Inst{Op: isa.OpJALR, Rd: 1, Rs1: 2}, true},
		{isa.Inst{Op: isa.OpWFI}, true},
		{isa.Inst{Op: isa.OpMRET}, true},
		{isa.Inst{Op: isa.OpEBREAK}, false},
		{isa.Inst{Op: isa.OpECALL}, false},
		{isa.Inst{Op: isa.OpCSRRW, Rs1: 1, CSR: 0x305}, true},
		{isa.Inst{Op: isa.OpCSRRW, Rs1: 1, CSR: 0x340}, false},
		{isa.Inst{Op: isa.OpCSRRS, Rs1: 0, CSR: 0x305}, false},
		{isa.Inst{Op: isa.OpCSRRS, Rs1: 3, CSR: 0x305}, true},
		{isa.Inst{Op: isa.OpCSRRSI, Imm: 0, CSR: 0x305}, false},
		{isa.Inst{Op: isa.OpCSRRSI, Imm: 2, CSR: 0x305}, true},
		{isa.Inst{Op: isa.OpSFENCEVMA, Rs1: 1}, false},
	} {
		if got := analysis.TrapForbidden(tc.inst); got != tc.want {
			t.Errorf("TrapForbidden(%v %#x) = %v, want %v", tc.inst.Op, tc.inst.CSR, got, tc.want)
		}
	}
}
