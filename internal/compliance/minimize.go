package compliance

import (
	"rvnegtest/internal/sig"
	"rvnegtest/internal/sim"
)

// failureKind captures what kind of divergence a case produces, so
// minimization preserves the same failure class.
type failureKind uint8

const (
	failNone failureKind = iota
	failMismatch
	failCrash
	failTimeout
)

func classifyRun(ref, sut *sim.Simulator, bs []byte, dc *sig.DontCare) failureKind {
	r := ref.Run(bs)
	if r.Crashed || r.TimedOut {
		return failNone // unusable as a reference
	}
	o := sut.Run(bs)
	switch {
	case o.Crashed:
		return failCrash
	case o.TimedOut:
		return failTimeout
	case len(sig.Compare(sig.Signature(r.Signature), sig.Signature(o.Signature), dc)) != 0:
		return failMismatch
	}
	return failNone
}

// MinimizeCase shrinks a mismatching test case while preserving its
// failure class against the given simulators — the triage helper for
// turning a fuzzer finding into the minimal reproducer (delta debugging
// at 32-bit-word granularity: word removal, tail truncation, then
// overwriting words with NOPs).
func MinimizeCase(bs []byte, ref, sut *sim.Simulator, dc *sig.DontCare) []byte {
	kind := classifyRun(ref, sut, bs, dc)
	if kind == failNone {
		return bs
	}
	cur := append([]byte(nil), bs...)
	still := func(cand []byte) bool { return classifyRun(ref, sut, cand, dc) == kind }

	// Tail truncation first (cheap, often large wins).
	for len(cur) > 4 {
		cand := cur[:len(cur)-4]
		if !still(cand) {
			break
		}
		cur = cand
	}
	// Word removal to a fixed point.
	for changed := true; changed; {
		changed = false
		for i := 0; i+4 <= len(cur); i += 4 {
			cand := append(append([]byte(nil), cur[:i]...), cur[i+4:]...)
			if len(cand) > 0 && still(cand) {
				cur = cand
				changed = true
				break
			}
		}
	}
	// NOP substitution for words that must remain for layout reasons
	// (e.g. branch distance) but whose content is irrelevant.
	const nop = 0x00000013
	for i := 0; i+4 <= len(cur); i += 4 {
		cand := append([]byte(nil), cur...)
		cand[i], cand[i+1], cand[i+2], cand[i+3] = byte(nop), byte(nop>>8), byte(nop>>16), byte(nop>>24)
		if string(cand) != string(cur) && still(cand) {
			cur = cand
		}
	}
	return cur
}
