package compliance

import (
	"fmt"
	"sort"
	"strings"

	"rvnegtest/internal/isa"
)

// SuiteStats summarizes the composition of a test suite: how many cases
// touch each extension, how much of the instruction set is covered, and
// the valid/illegal word mix — the numbers behind "how negative is this
// suite".
type SuiteStats struct {
	Cases int
	// Words partitions every 32-bit-aligned word of the suite.
	ValidWords      int
	IllegalWords    int
	CompressedWords int // halfword pairs decoding as compressed
	// OpsCovered counts distinct operations appearing (statically) in the
	// suite, against the RV32GC total.
	OpsCovered int
	OpsTotal   int
	// CasesWithExt counts cases containing at least one instruction of
	// the extension.
	CasesWithExt map[isa.Ext]int
	// CasesWithIllegal counts cases containing at least one
	// statically-illegal encoding (the negative-testing payload).
	CasesWithIllegal int
}

// AnalyzeSuite computes composition statistics by statically decoding the
// suite's bytestreams (linear scan; control flow is not followed).
func AnalyzeSuite(s *Suite) SuiteStats {
	st := SuiteStats{
		Cases:        len(s.Cases),
		CasesWithExt: map[isa.Ext]int{},
	}
	seen := map[isa.Op]bool{}
	for _, bs := range s.Cases {
		exts := map[isa.Ext]bool{}
		hasIllegal := false
		for pc := 0; pc+2 <= len(bs); {
			lo := uint16(bs[pc]) | uint16(bs[pc+1])<<8
			var inst isa.Inst
			if lo&3 == 3 {
				if pc+4 > len(bs) {
					break
				}
				w := uint32(lo) | uint32(bs[pc+2])<<16 | uint32(bs[pc+3])<<24
				inst = isa.Ref.Decode32(w)
			} else {
				inst = isa.Ref.DecodeC(lo)
				st.CompressedWords++
			}
			if inst.Op == isa.OpIllegal {
				st.IllegalWords++
				hasIllegal = true
				pc += int(inst.Size)
				continue
			}
			st.ValidWords++
			seen[inst.Op] = true
			exts[inst.Info().Ext] = true
			pc += int(inst.Size)
		}
		for e := range exts {
			st.CasesWithExt[e]++
		}
		if hasIllegal {
			st.CasesWithIllegal++
		}
	}
	st.OpsCovered = len(seen)
	st.OpsTotal = len(isa.Instructions)
	return st
}

// String renders a human-readable composition report.
func (st SuiteStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "suite composition: %d cases\n", st.Cases)
	total := st.ValidWords + st.IllegalWords
	if total > 0 {
		fmt.Fprintf(&b, "  words: %d valid, %d illegal (%.1f%% negative payload), %d compressed\n",
			st.ValidWords, st.IllegalWords, 100*float64(st.IllegalWords)/float64(total), st.CompressedWords)
	}
	if st.Cases > 0 {
		fmt.Fprintf(&b, "  cases with an illegal encoding: %d (%.1f%%)\n",
			st.CasesWithIllegal, 100*float64(st.CasesWithIllegal)/float64(st.Cases))
	}
	fmt.Fprintf(&b, "  instructions covered: %d/%d\n", st.OpsCovered, st.OpsTotal)
	names := map[isa.Ext]string{
		isa.ExtI: "I", isa.ExtM: "M", isa.ExtA: "A",
		isa.ExtF: "F", isa.ExtD: "D", isa.ExtZicsr: "Zicsr", isa.ExtPriv: "priv",
	}
	var exts []isa.Ext
	for e := range st.CasesWithExt {
		exts = append(exts, e)
	}
	sort.Slice(exts, func(i, j int) bool { return exts[i] < exts[j] })
	for _, e := range exts {
		n := names[e]
		if n == "" {
			n = fmt.Sprintf("%#x", uint32(e))
		}
		fmt.Fprintf(&b, "  cases with %s instructions: %d\n", n, st.CasesWithExt[e])
	}
	return b.String()
}
