// External SUT columns: out-of-process simulators joining Table I next
// to the built-in behavioural variants.
//
// An external SUT is described by a sut.Spec (command line plus
// supervision knobs) and speaks the adapter protocol of internal/sut.
// The engine treats it as one more report column: each worker owns a
// private Adapter (mirroring the per-worker simulator clones), the
// adapter heals transient failures by kill-and-restart with backoff, and
// failures that survive the retry budget are recorded as adapter-skipped
// cases — infrastructure problems, kept strictly apart from the modeled
// crash/timeout findings. A persistently failing adapter trips the same
// circuit breaker as an in-process simulator, but with half-open
// recovery enabled: external targets can genuinely heal (the operator
// restarts the backend, the machine recovers), so after a cool-down
// counted in skipped runs the breaker re-admits a probe.
package compliance

import (
	"fmt"

	"rvnegtest/internal/isa"
	"rvnegtest/internal/obs"
	"rvnegtest/internal/resilience"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/sut"
	"rvnegtest/internal/template"
)

// DefaultHalfOpenAfter is the number of breaker-skipped runs after which
// an external SUT's open breaker admits a recovery probe when
// Runner.HalfOpenAfter is zero.
const DefaultHalfOpenAfter = 25

// halfOpenAfter resolves the external-breaker recovery knob.
func (r *Runner) halfOpenAfter() int {
	switch {
	case r.HalfOpenAfter < 0:
		return 0 // stay-open, like in-process breakers
	case r.HalfOpenAfter == 0:
		return DefaultHalfOpenAfter
	}
	return r.HalfOpenAfter
}

// column is one SUT column of the report: a built-in variant or an
// external adapter. Exactly one of variant/spec is non-nil.
type column struct {
	name    string
	variant *sim.Variant
	spec    *sut.Spec
	// info/probed hold the capability preflight result for external
	// columns; an unprobed column is treated optimistically (every
	// configuration attempted) so a flaky adapter degrades into skipped
	// cells instead of silently rendering "/".
	info   sut.Info
	probed bool
}

// supports reports whether the column's SUT implements (cfg, fam):
// built-ins answer from the variant model, externals from the handshake
// capability bits.
func (c *column) supports(cfg isa.Config, fam template.Family) bool {
	if c.variant != nil {
		return c.variant.Supports(cfg)
	}
	if !c.probed {
		return true
	}
	if cfg.HasFP() && c.info.Caps&sut.CapFP == 0 {
		return false
	}
	if fam == template.FamilyTrap && c.info.Caps&sut.CapTrap == 0 {
		return false
	}
	return true
}

// resolveColumns builds the run's column list (built-in SUTs first, then
// externals, preserving declaration order so reports are stable).
func (r *Runner) resolveColumns() error {
	cols := make([]column, 0, len(r.SUTs)+len(r.External))
	for _, v := range r.SUTs {
		cols = append(cols, column{name: v.Name, variant: v})
	}
	for i := range r.External {
		spec := &r.External[i]
		if spec.Name == "" {
			return fmt.Errorf("compliance: external SUT #%d has no name", i)
		}
		if len(spec.Argv) == 0 {
			return fmt.Errorf("compliance: external SUT %q has no command", spec.Name)
		}
		cols = append(cols, column{name: spec.Name, spec: spec})
	}
	seen := make(map[string]bool, len(cols))
	for i := range cols {
		if seen[cols[i].name] {
			return fmt.Errorf("compliance: duplicate SUT column %q", cols[i].name)
		}
		seen[cols[i].name] = true
	}
	r.cols = cols
	return nil
}

// probeExternals performs the capability preflight: one short-lived
// handshake per external SUT, recording its capability bits. A failed
// probe is observable but not fatal — the column stays optimistic and
// the campaign degrades per-case instead.
func (r *Runner) probeExternals() {
	for j := range r.cols {
		col := &r.cols[j]
		if col.spec == nil {
			continue
		}
		info, f := sut.Probe(*col.spec)
		if f != nil {
			r.tel.event(obs.Event{Type: "sut_probe_failed", Sim: col.name, Worker: -1, Detail: f.Reason})
			continue
		}
		col.info = info
		col.probed = true
	}
}

// newColInstances builds the per-worker harnessed instances for a column.
func (r *Runner) newColInstances(col *column, p template.Platform, workers int) ([]*instance, error) {
	if col.variant != nil {
		return r.newInstances(col.variant, p, workers)
	}
	return r.newExternalInstances(col, p, workers)
}

// newExternalInstances builds one adapter-backed instance per worker.
// Unlike built-ins there is no factory: the Adapter itself rebuilds its
// process on failure, so the instance's resilience surface is the
// breaker plus the adapter's own restart loop.
func (r *Runner) newExternalInstances(col *column, p template.Platform, workers int) ([]*instance, error) {
	quar := resilience.NewQuarantine(r.QuarantineDir)
	cfgStr := p.Cfg.String()
	out := make([]*instance, workers)
	for w := range out {
		spec := *col.spec
		// Distinct per-worker jitter streams, deterministic per campaign.
		spec.Seed += int64(w)
		a := sut.NewAdapter(spec)
		in := &instance{
			name:    col.name,
			adapter: a,
			family:  byte(p.Family),
			config:  cfgStr,
			breaker: resilience.Breaker{Threshold: r.breakerThreshold(), HalfOpenAfter: r.halfOpenAfter()},
			quar:    quar,
		}
		if tel := r.tel; tel != nil {
			w, name := w, col.name
			a.OnRestart = func() {
				tel.sutRestarted(name)
				tel.event(obs.Event{Type: "sut_restart", Sim: name, Worker: w, Config: cfgStr})
			}
			a.OnRetry = func() {
				tel.sutRetried(name)
				tel.event(obs.Event{Type: "sut_retry", Sim: name, Worker: w, Config: cfgStr})
			}
			in.events = func(ev obs.Event) {
				ev.Sim, ev.Worker, ev.Config = name, w, cfgStr
				tel.event(ev)
			}
			in.traps = tel.trapCounter()
			in.breaker.OnOpen = func() {
				tel.breakerOpened(name)
				tel.event(obs.Event{Type: "breaker_open", Sim: name, Worker: w, Config: cfgStr})
			}
			in.breaker.OnTransition = func(from, to resilience.BreakerState) {
				switch {
				case to == resilience.BreakerHalfOpen:
					tel.event(obs.Event{Type: "breaker_half_open", Sim: name, Worker: w, Config: cfgStr})
				case to == resilience.BreakerClosed && from == resilience.BreakerHalfOpen:
					tel.breakerClosed(name)
					tel.event(obs.Event{Type: "breaker_close", Sim: name, Worker: w, Config: cfgStr})
				case from == resilience.BreakerHalfOpen && to == resilience.BreakerOpen:
					tel.breakerOpened(name)
					tel.event(obs.Event{Type: "breaker_open", Sim: name, Worker: w, Config: cfgStr, Detail: "probe failed"})
				}
			}
		}
		out[w] = in
	}
	return out, nil
}

// closeInstances shuts down a column's instances (kills external adapter
// processes; a no-op for in-process simulators).
func closeInstances(ins []*instance) {
	for _, in := range ins {
		if in != nil {
			in.close()
		}
	}
}
