package compliance

import (
	"testing"

	"rvnegtest/internal/filter"
	"rvnegtest/internal/isa"
)

func TestOfficialStyleSuiteWellFormed(t *testing.T) {
	for _, cfg := range []isa.Config{isa.RV32I, isa.RV32IMC, isa.RV32GC} {
		suite, err := OfficialStyleSuite(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(suite.Cases) < 100 {
			t.Fatalf("%v: only %d directed cases", cfg, len(suite.Cases))
		}
		flt := &filter.Filter{}
		covered := map[isa.Op]bool{}
		for ci, bs := range suite.Cases {
			if res := flt.Check(bs); !res.Accepted {
				t.Fatalf("%v case %d rejected: %v (%x)", cfg, ci, res, bs)
			}
			for pc := 0; pc < len(bs); pc += 4 {
				w := uint32(bs[pc]) | uint32(bs[pc+1])<<8 | uint32(bs[pc+2])<<16 | uint32(bs[pc+3])<<24
				inst := isa.Ref.Decode32(w)
				if inst.Op == isa.OpIllegal {
					t.Fatalf("%v case %d: illegal word %#08x", cfg, ci, w)
				}
				if !cfg.Has(inst.Info().Ext) {
					t.Fatalf("%v case %d: out-of-config %v", cfg, ci, inst.Op)
				}
				covered[inst.Op] = true
			}
		}
		// Positive coverage: every non-forbidden, non-trapping instruction
		// of the configuration appears somewhere in its suite.
		for i := range isa.Instructions {
			in := &isa.Instructions[i]
			if !cfg.Has(in.Ext) || in.Flags.Any(isa.FlagForbidden|isa.FlagTrap) {
				continue
			}
			if !covered[in.Op] {
				t.Errorf("%v: instruction %s not covered by the directed suite", cfg, in.Name)
			}
		}
	}
}

// TestOfficialSuiteFindsOnlySCW reproduces the paper's observation about
// the official hand-written compliance suite: across all simulators and
// configurations it finds exactly one defect — GRIFT's SC.W performing the
// store without a pending reservation.
func TestOfficialSuiteFindsOnlySCW(t *testing.T) {
	type key struct {
		cfg isa.Config
		sut string
	}
	found := map[key]int{}
	for _, cfg := range []isa.Config{isa.RV32I, isa.RV32IMC, isa.RV32GC} {
		suite, err := OfficialStyleSuite(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := DefaultRunner()
		r.Configs = []isa.Config{cfg}
		rep, err := r.Run(suite)
		if err != nil {
			t.Fatal(err)
		}
		for j, name := range rep.Sims {
			c := rep.Cells[0][j]
			if c.Crashes > 0 || c.Timeouts > 0 {
				t.Errorf("%v/%s: positive suite caused %d crashes, %d timeouts", cfg, name, c.Crashes, c.Timeouts)
			}
			found[key{cfg, name}] = c.Mismatches
		}
	}
	for k, n := range found {
		want := 0
		if k.sut == "GRIFT" && k.cfg.Has(isa.ExtA) {
			want = 1 // the unpaired-SC.W directed case
		}
		if n != want {
			t.Errorf("%v/%s: %d mismatches, want %d", k.cfg, k.sut, n, want)
		}
	}
}
