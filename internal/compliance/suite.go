package compliance

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rvnegtest/internal/template"
)

// Format serializes the suite: a comment header followed by one
// hex-encoded bytestream per line. User-family suites stay byte-identical
// to the historical format; trap-family suites add a family header line.
func (s *Suite) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# rvnegtest suite: %d cases\n", len(s.Cases))
	if s.Family != template.FamilyUser {
		fmt.Fprintf(&b, "# family: %s\n", s.Family)
	}
	if s.Origin != "" {
		fmt.Fprintf(&b, "# origin: %s\n", s.Origin)
	}
	for _, c := range s.Cases {
		b.WriteString(hex.EncodeToString(c))
		b.WriteByte('\n')
	}
	return b.String()
}

// ParseSuite reads the Format serialization.
func ParseSuite(text string) (*Suite, error) {
	s := &Suite{}
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if rest, ok := strings.CutPrefix(line, "# origin: "); ok {
				s.Origin = rest
			}
			if rest, ok := strings.CutPrefix(line, "# family: "); ok {
				fam, ok := template.ParseFamily(rest)
				if !ok {
					return nil, fmt.Errorf("compliance: suite line %d: unknown family %q", i+1, rest)
				}
				s.Family = fam
			}
			continue
		}
		bs, err := hex.DecodeString(line)
		if err != nil {
			return nil, fmt.Errorf("compliance: suite line %d: %v", i+1, err)
		}
		s.Cases = append(s.Cases, bs)
	}
	return s, nil
}

// Save writes the suite to a file.
func (s *Suite) Save(path string) error {
	return os.WriteFile(path, []byte(s.Format()), 0o644)
}

// LoadSuite reads a suite file.
func LoadSuite(path string) (*Suite, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseSuite(string(b))
}

// WriteASM exports every test case as a standalone assembler source file
// in the compliance format (the distributable form of the suite: each file
// assembles for any supported platform).
func (s *Suite) WriteASM(dir string, l template.Layout) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, bs := range s.Cases {
		src, err := template.SourceFamily(bs, l, s.Family)
		if err != nil {
			return fmt.Errorf("case %d: %w", i, err)
		}
		name := filepath.Join(dir, fmt.Sprintf("test_%05d.S", i))
		if err := os.WriteFile(name, []byte(src), 0o644); err != nil {
			return err
		}
	}
	return nil
}
