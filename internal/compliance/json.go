package compliance

import "encoding/json"

// jsonCell is the machine-readable form of one Table I cell.
type jsonCell struct {
	Simulator  string         `json:"simulator"`
	Supported  bool           `json:"supported"`
	Mismatches int            `json:"mismatches"`
	Crashes    int            `json:"crashes,omitempty"`
	Timeouts   int            `json:"timeouts,omitempty"`
	Skipped    int            `json:"skipped,omitempty"`
	Categories map[string]int `json:"categories,omitempty"`
	Examples   []int          `json:"examples,omitempty"`

	// Degradation markers: harness-level faults and breaker action, kept
	// separate from the modeled crash/timeout counts above so dashboards
	// can tell findings from infrastructure failures.
	HarnessFaults    int      `json:"harness_faults,omitempty"`
	SkippedUnhealthy int      `json:"skipped_unhealthy,omitempty"`
	Unhealthy        bool     `json:"unhealthy,omitempty"`
	FaultMsgs        []string `json:"fault_msgs,omitempty"`
}

type jsonRow struct {
	ISA     string     `json:"isa"`
	Skipped int        `json:"skipped,omitempty"`
	Cells   []jsonCell `json:"cells"`
}

type jsonReport struct {
	Reference string    `json:"reference"`
	Cases     int       `json:"cases"`
	Degraded  bool      `json:"degraded,omitempty"`
	Rows      []jsonRow `json:"rows"`
}

// JSON serializes the report for CI pipelines and dashboards.
func (r *Report) JSON() ([]byte, error) {
	out := jsonReport{Reference: r.RefName, Cases: r.Cases, Degraded: r.Degraded()}
	for i, cfg := range r.Configs {
		row := jsonRow{ISA: cfg.String()}
		if i < len(r.Skipped) {
			row.Skipped = r.Skipped[i]
		}
		for j, name := range r.Sims {
			c := r.Cells[i][j]
			jc := jsonCell{
				Simulator:  name,
				Supported:  c.Supported,
				Mismatches: c.Mismatches,
				Crashes:    c.Crashes,
				Timeouts:   c.Timeouts,
				Skipped:    c.Skipped,
				Examples:   c.Examples,

				HarnessFaults:    c.HarnessFaults,
				SkippedUnhealthy: c.SkippedUnhealthy,
				Unhealthy:        c.Unhealthy,
				FaultMsgs:        c.FaultMsgs,
			}
			for k, n := range c.Categories {
				if n > 0 {
					if jc.Categories == nil {
						jc.Categories = map[string]int{}
					}
					jc.Categories[Category(k).String()] = n
				}
			}
			row.Cells = append(row.Cells, jc)
		}
		out.Rows = append(out.Rows, row)
	}
	return json.MarshalIndent(out, "", "  ")
}
