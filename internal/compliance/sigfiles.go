package compliance

import (
	"fmt"
	"os"
	"path/filepath"

	"rvnegtest/internal/isa"
	"rvnegtest/internal/sig"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/template"
)

// ExportReferenceSignatures runs the reference simulator over a suite and
// writes one signature file per test case under dir/<config>/, in the
// official compliance format — the "golden reference signatures (obtained
// by running the test-suite on a reference simulator)" artifact that the
// compliance flow distributes alongside the tests. A don't-care companion
// file is written when dc is non-nil (the section VI extension).
func ExportReferenceSignatures(suite *Suite, ref *sim.Variant, cfg isa.Config, dir string, dc *sig.DontCare) error {
	sub := filepath.Join(dir, cfg.String())
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return err
	}
	s, err := sim.New(ref, template.PlatformFor(suite.Family, cfg))
	if err != nil {
		return err
	}
	for i, bs := range suite.Cases {
		out := s.Run(bs)
		if out.Crashed || out.TimedOut {
			return fmt.Errorf("compliance: reference failed on case %d", i)
		}
		name := filepath.Join(sub, fmt.Sprintf("test_%05d.signature", i))
		if err := os.WriteFile(name, []byte(sig.Signature(out.Signature).String()), 0o644); err != nil {
			return err
		}
		if dc != nil {
			dcName := filepath.Join(sub, fmt.Sprintf("test_%05d.dontcare", i))
			if err := os.WriteFile(dcName, []byte(dc.Format()), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

// VerifyAgainstSignatures runs a simulator-under-test over a suite and
// compares its signatures with reference files previously written by
// ExportReferenceSignatures. This is the cross-machine compliance flow:
// the reference and the target need not run in the same process (or on
// the same host).
func VerifyAgainstSignatures(suite *Suite, sut *sim.Variant, cfg isa.Config, dir string) (*Cell, error) {
	sub := filepath.Join(dir, cfg.String())
	cell := &Cell{Supported: sut.Supports(cfg)}
	if !cell.Supported {
		return cell, nil
	}
	s, err := sim.New(sut, template.PlatformFor(suite.Family, cfg))
	if err != nil {
		return nil, err
	}
	trapBase := suite.trapBase(cfg)
	for i, bs := range suite.Cases {
		refText, err := os.ReadFile(filepath.Join(sub, fmt.Sprintf("test_%05d.signature", i)))
		if err != nil {
			return nil, fmt.Errorf("compliance: reference signature for case %d: %w", i, err)
		}
		refSig, err := sig.Parse(string(refText))
		if err != nil {
			return nil, err
		}
		var dc *sig.DontCare
		if dcText, err := os.ReadFile(filepath.Join(sub, fmt.Sprintf("test_%05d.dontcare", i))); err == nil {
			dc, err = sig.ParseDontCare(string(dcText))
			if err != nil {
				return nil, err
			}
		}
		out := s.Run(bs)
		var cat Category
		switch {
		case out.Crashed:
			cell.Crashes++
			cat = CatCrash
		case out.TimedOut:
			cell.Timeouts++
			cat = CatTimeout
		default:
			if len(sig.Compare(refSig, sig.Signature(out.Signature), dc)) == 0 {
				continue
			}
			cat = ClassifyAt(refSig, out.Signature, trapBase)
		}
		cell.Mismatches++
		cell.Categories[cat]++
		if len(cell.Examples) < 10 {
			cell.Examples = append(cell.Examples, i)
		}
	}
	return cell, nil
}
