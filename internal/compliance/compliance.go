// Package compliance implements Phase B of the paper: running a generated
// test suite on simulators under test, comparing their signatures against
// the reference simulator's (riscvOVPsim in the paper), and aggregating
// the per-ISA-configuration mismatch counts of Table I.
//
// A single generated suite serves every ISA configuration: test cases are
// platform-independent sources, and instructions outside a configuration
// must raise an illegal-instruction exception, which the signature
// captures.
package compliance

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"rvnegtest/internal/isa"
	"rvnegtest/internal/sig"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/template"
)

// Suite is a generated compliance test suite.
type Suite struct {
	// Cases are the raw bytestreams, in generation order.
	Cases [][]byte
	// Origin documents how the suite was generated.
	Origin string
}

// Category classifies one signature mismatch by its observable pattern,
// mirroring the discussion of findings in section V-B.
type Category uint8

const (
	// CatCompletionMarker: the x26 completion marker differs (e.g. the
	// Spike ECALL signature corruption).
	CatCompletionMarker Category = iota
	// CatTrapCause: the recorded trap cause differs (decoder accepts an
	// invalid encoding, or takes the wrong exception).
	CatTrapCause
	// CatRegisterValue: a general-purpose register value differs (wrong
	// execution semantics or illegal side effects, e.g. GRIFT's link
	// write).
	CatRegisterValue
	// CatFPValue: a floating-point signature word differs.
	CatFPValue
	// CatCrash: the simulator under test crashed.
	CatCrash
	// CatTimeout: the simulator under test did not terminate.
	CatTimeout
	// CatMissing: the simulator produced no/short signature.
	CatMissing
	catCount
)

var catNames = [catCount]string{
	"completion-marker", "trap-cause", "register-value", "fp-value",
	"crash", "timeout", "missing-signature",
}

func (c Category) String() string {
	if int(c) < len(catNames) {
		return catNames[c]
	}
	return "unknown"
}

// Classify determines the dominant mismatch category between a reference
// signature and a test output.
func Classify(ref, got []uint32) Category {
	if len(got) < len(ref) {
		return CatMissing
	}
	diffs := sig.Diff(sig.Signature(ref), sig.Signature(got))
	hasCause, hasX26, hasReg, hasFP := false, false, false, false
	for _, d := range diffs {
		switch {
		case d == 30:
			hasCause = true
		case d == 26:
			hasX26 = true
		case d < 32:
			// Words 0..29 are x0..x29 (x26 and the word-30 trap-cause
			// slot handled above); word 31 is the register-file sentinel
			// slot, also an integer-side diff. Only words >= 32 belong to
			// the FP signature, so a {31, fp} diff set stays
			// register-class instead of being misfiled as fp-value.
			hasReg = true
		default:
			hasFP = true
		}
	}
	switch {
	case hasCause:
		return CatTrapCause
	case hasX26 && !hasReg:
		return CatCompletionMarker
	case hasReg:
		return CatRegisterValue
	case hasFP:
		return CatFPValue
	}
	return CatRegisterValue
}

// Cell is one (simulator, ISA configuration) result of Table I.
type Cell struct {
	Supported  bool
	Mismatches int
	Crashes    int
	Timeouts   int
	// Skipped counts cases excluded from the comparison because the
	// reference run itself crashed or timed out; it keeps the mismatch
	// denominator honest (Cases - Skipped cases were actually compared).
	Skipped int
	// Categories histogram over mismatching cases.
	Categories [catCount]int
	// Examples lists up to a few mismatching case indexes for triage.
	Examples []int
}

// merge folds a later shard's partial cell into c, preserving the serial
// engine's semantics: counters add up and example indexes concatenate in
// shard (= case) order up to the maxEx bound.
func (c *Cell) merge(p *Cell, maxEx int) {
	c.Mismatches += p.Mismatches
	c.Crashes += p.Crashes
	c.Timeouts += p.Timeouts
	c.Skipped += p.Skipped
	for k, n := range p.Categories {
		c.Categories[k] += n
	}
	for _, idx := range p.Examples {
		if len(c.Examples) >= maxEx {
			break
		}
		c.Examples = append(c.Examples, idx)
	}
}

// String renders the cell the way Table I does: "/" for unsupported
// configurations, "crash" when the simulator crashed during the run.
func (c Cell) String() string {
	switch {
	case !c.Supported:
		return "/"
	case c.Crashes > 0:
		return "crash"
	default:
		return fmt.Sprint(c.Mismatches)
	}
}

// Report aggregates a full Table I run.
type Report struct {
	RefName string
	Sims    []string
	Configs []isa.Config
	// Cells[i][j] is configuration i on simulator j.
	Cells [][]Cell
	Cases int
	// Skipped[i] counts the cases of configuration i whose reference run
	// crashed or timed out, making them unusable for comparison.
	Skipped []int
}

// Render prints the report in the layout of Table I.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Number of signature mismatches against %s (%d test cases)\n", r.RefName, r.Cases)
	fmt.Fprintf(&b, "%-10s", "RISC-V ISA")
	for _, s := range r.Sims {
		fmt.Fprintf(&b, " %12s", s)
	}
	b.WriteByte('\n')
	for i, cfg := range r.Configs {
		fmt.Fprintf(&b, "%-10s", cfg)
		for j := range r.Sims {
			fmt.Fprintf(&b, " %12s", r.Cells[i][j])
		}
		b.WriteByte('\n')
	}
	for i, cfg := range r.Configs {
		if i < len(r.Skipped) && r.Skipped[i] > 0 {
			fmt.Fprintf(&b, "%v: %d of %d cases skipped (reference run crashed or timed out)\n",
				cfg, r.Skipped[i], r.Cases)
		}
	}
	return b.String()
}

// Runner executes compliance testing for a suite.
type Runner struct {
	// Ref generates the reference signatures (riscvOVPsim per the
	// compliance convention, including its own seeded defect — a
	// reference simulator can itself be wrong, which the paper found).
	Ref *sim.Variant
	// SUTs are the simulators under test.
	SUTs []*sim.Variant
	// Configs are the ISA configurations to test (Table I rows).
	Configs []isa.Config
	// DontCare optionally relaxes the comparison (the section VI
	// extension); usually nil for the register-only signature.
	DontCare *sig.DontCare
	// MaxExamples bounds the per-cell example list.
	MaxExamples int
	// Workers selects the execution engine: 0 or 1 runs the serial
	// engine, N > 1 shards the suite across N concurrent workers, and a
	// negative value uses GOMAXPROCS. The report is bit-identical for
	// every worker count (see parallel.go for the determinism argument).
	Workers int
	// Progress, when non-nil, is called after each completed shard of
	// work (serialized; never concurrently).
	Progress func(ProgressEvent)
	// Stats describes the most recent Run (workers, executions,
	// throughput). It is overwritten by each Run call.
	Stats RunStats
}

// DefaultRunner reproduces the paper's Table I setup.
func DefaultRunner() *Runner {
	return &Runner{
		Ref:         sim.OVPSim,
		SUTs:        append([]*sim.Variant(nil), sim.UnderTest...),
		Configs:     []isa.Config{isa.RV32I, isa.RV32IMC, isa.RV32GC},
		MaxExamples: 10,
	}
}

// Run executes the whole suite on every (configuration, simulator) pair,
// dispatching to the serial or the sharded parallel engine according to
// Workers. Both engines produce bit-identical reports.
func (r *Runner) Run(suite *Suite) (*Report, error) {
	workers := r.workerCount()
	// More workers than cases only buys idle shards at the price of one
	// simulator-fleet clone each; extra workers would change nothing in
	// the output (empty shards merge as empty cells).
	if workers > len(suite.Cases) {
		workers = len(suite.Cases)
		if workers < 1 {
			workers = 1
		}
	}
	start := time.Now()
	r.Stats = RunStats{Workers: workers, PerWorker: make([]WorkerStats, workers)}
	var rep *Report
	var err error
	if workers <= 1 {
		rep, err = r.runSerial(suite)
	} else {
		rep, err = r.runParallel(suite, workers)
	}
	if err != nil {
		return nil, err
	}
	r.Stats.Duration = time.Since(start)
	if s := r.Stats.Duration.Seconds(); s > 0 {
		r.Stats.CasesPerSec = float64(r.Stats.Execs) / s
	}
	return rep, nil
}

// maxExamples resolves the example-list bound.
func (r *Runner) maxExamples() int {
	if r.MaxExamples > 0 {
		return r.MaxExamples
	}
	return 10
}

// newReport builds the report skeleton shared by both engines.
func (r *Runner) newReport(suite *Suite) *Report {
	rep := &Report{RefName: r.Ref.Name, Configs: r.Configs, Cases: len(suite.Cases)}
	for _, v := range r.SUTs {
		rep.Sims = append(rep.Sims, v.Name)
	}
	return rep
}

// runCase executes one suite case on one simulator under test and folds
// the outcome into the cell. It reports whether the SUT actually ran:
// cases whose reference run failed are recorded as skipped and never
// execute.
func runCase(cell *Cell, ref sim.Outcome, sut *sim.Simulator, bs []byte, i, maxEx int, dc *sig.DontCare) bool {
	if ref.Crashed || ref.TimedOut {
		// A reference failure makes the case unusable for signature
		// comparison; record it so the mismatch denominator stays honest.
		cell.Skipped++
		return false
	}
	out := sut.Run(bs)
	var cat Category
	switch {
	case out.Crashed:
		cell.Crashes++
		cat = CatCrash
	case out.TimedOut:
		cell.Timeouts++
		cat = CatTimeout
	default:
		if len(sig.Compare(sig.Signature(ref.Signature), sig.Signature(out.Signature), dc)) == 0 {
			return true
		}
		cat = Classify(ref.Signature, out.Signature)
	}
	cell.Mismatches++
	cell.Categories[cat]++
	if len(cell.Examples) < maxEx {
		cell.Examples = append(cell.Examples, i)
	}
	return true
}

// countSkipped tallies the reference failures of one configuration.
func countSkipped(refOuts []sim.Outcome) int {
	n := 0
	for _, o := range refOuts {
		if o.Crashed || o.TimedOut {
			n++
		}
	}
	return n
}

// runSerial is the single-goroutine engine (Workers <= 1).
func (r *Runner) runSerial(suite *Suite) (*Report, error) {
	rep := r.newReport(suite)
	maxEx := r.maxExamples()
	for _, cfg := range r.Configs {
		p := template.Platform{Layout: template.DefaultLayout, Cfg: cfg}
		refSim, err := sim.New(r.Ref, p)
		if err != nil {
			return nil, fmt.Errorf("compliance: reference %s on %v: %w", r.Ref.Name, cfg, err)
		}
		// Reference signatures are generated once per configuration
		// (the paper's "separate set of reference outputs per ISA
		// config").
		refOuts := make([]sim.Outcome, len(suite.Cases))
		for i, bs := range suite.Cases {
			refOuts[i] = refSim.Run(bs)
		}
		r.addExecs(0, len(suite.Cases))
		r.emitProgress(ProgressEvent{Config: cfg, Worker: 0, Hi: len(suite.Cases), Execs: len(suite.Cases)})

		row := make([]Cell, len(r.SUTs))
		for j, v := range r.SUTs {
			cell := &row[j]
			if !v.Supports(cfg) {
				continue
			}
			cell.Supported = true
			sut, err := sim.New(v, p)
			if err != nil {
				return nil, fmt.Errorf("compliance: %s on %v: %w", v.Name, cfg, err)
			}
			execs := 0
			for i, bs := range suite.Cases {
				if runCase(cell, refOuts[i], sut, bs, i, maxEx, r.DontCare) {
					execs++
				}
			}
			r.addExecs(0, execs)
			r.emitProgress(ProgressEvent{Config: cfg, Sim: v.Name, Worker: 0, Hi: len(suite.Cases), Execs: execs})
		}
		rep.Cells = append(rep.Cells, row)
		rep.Skipped = append(rep.Skipped, countSkipped(refOuts))
	}
	return rep, nil
}

// BugFindings renders the per-simulator mismatch-category breakdown, the
// analysis counterpart of the paper's section V-B bullet list.
func (r *Report) BugFindings() string {
	var b strings.Builder
	for j, name := range r.Sims {
		var total int
		var hist [catCount]int
		for i := range r.Configs {
			c := r.Cells[i][j]
			total += c.Mismatches
			for k, n := range c.Categories {
				hist[k] += n
			}
		}
		fmt.Fprintf(&b, "%s: %d mismatching cases", name, total)
		if total == 0 {
			b.WriteString("\n")
			continue
		}
		b.WriteString(" (")
		var parts []string
		type kv struct {
			k int
			n int
		}
		var ks []kv
		for k, n := range hist {
			if n > 0 {
				ks = append(ks, kv{k, n})
			}
		}
		sort.Slice(ks, func(a, b int) bool { return ks[a].n > ks[b].n })
		for _, e := range ks {
			parts = append(parts, fmt.Sprintf("%s: %d", Category(e.k), e.n))
		}
		b.WriteString(strings.Join(parts, ", "))
		b.WriteString(")\n")
	}
	return b.String()
}
