// Package compliance implements Phase B of the paper: running a generated
// test suite on simulators under test, comparing their signatures against
// the reference simulator's (riscvOVPsim in the paper), and aggregating
// the per-ISA-configuration mismatch counts of Table I.
//
// A single generated suite serves every ISA configuration: test cases are
// platform-independent sources, and instructions outside a configuration
// must raise an illegal-instruction exception, which the signature
// captures.
package compliance

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"rvnegtest/internal/isa"
	"rvnegtest/internal/obs"
	"rvnegtest/internal/resilience"
	"rvnegtest/internal/sig"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/sut"
	"rvnegtest/internal/template"
)

// Suite is a generated compliance test suite.
type Suite struct {
	// Cases are the raw bytestreams, in generation order.
	Cases [][]byte
	// Origin documents how the suite was generated.
	Origin string
	// Family is the template family the cases were generated for. The
	// zero value (user) keeps the historical on-disk format and report
	// byte-identical; trap-family suites run under the recording trap
	// handler and compare the trap-record signature region too.
	Family template.Family
}

// Category classifies one signature mismatch by its observable pattern,
// mirroring the discussion of findings in section V-B.
type Category uint8

const (
	// CatCompletionMarker: the x26 completion marker differs (e.g. the
	// Spike ECALL signature corruption).
	CatCompletionMarker Category = iota
	// CatTrapCause: the recorded trap cause differs (decoder accepts an
	// invalid encoding, or takes the wrong exception).
	CatTrapCause
	// CatRegisterValue: a general-purpose register value differs (wrong
	// execution semantics or illegal side effects, e.g. GRIFT's link
	// write).
	CatRegisterValue
	// CatFPValue: a floating-point signature word differs.
	CatFPValue
	// CatCrash: the simulator under test crashed.
	CatCrash
	// CatTimeout: the simulator under test did not terminate.
	CatTimeout
	// CatMissing: the simulator produced no/short signature.
	CatMissing
	// CatTrapRecord: a trap-record signature word differs (trap-family
	// suites only): wrong mtval, wrong dispatch path, wrong mstatus
	// save/restore, or a diverging trap count.
	CatTrapRecord
	catCount
)

var catNames = [catCount]string{
	"completion-marker", "trap-cause", "register-value", "fp-value",
	"crash", "timeout", "missing-signature", "trap-record",
}

func (c Category) String() string {
	if int(c) < len(catNames) {
		return catNames[c]
	}
	return "unknown"
}

// Classify determines the dominant mismatch category between a reference
// signature and a test output (user-family signature layout).
func Classify(ref, got []uint32) Category {
	return ClassifyAt(ref, got, 0)
}

// ClassifyAt is Classify with a trap-record region: signature words at
// index >= trapBase belong to the trap-family record area and dominate
// every other class (they are what the trap suite exists to compare).
// trapBase == 0 disables the region (user-family layout).
func ClassifyAt(ref, got []uint32, trapBase int) Category {
	if len(got) < len(ref) {
		return CatMissing
	}
	diffs := sig.Diff(sig.Signature(ref), sig.Signature(got))
	hasTrapRec, hasCause, hasX26, hasReg, hasFP := false, false, false, false, false
	for _, d := range diffs {
		switch {
		case trapBase > 0 && d >= trapBase:
			hasTrapRec = true
		case d == 30:
			hasCause = true
		case d == 26:
			hasX26 = true
		case d < 32:
			// Words 0..29 are x0..x29 (x26 and the word-30 trap-cause
			// slot handled above); word 31 is the register-file sentinel
			// slot, also an integer-side diff. Only words >= 32 belong to
			// the FP signature, so a {31, fp} diff set stays
			// register-class instead of being misfiled as fp-value.
			hasReg = true
		default:
			hasFP = true
		}
	}
	switch {
	case hasTrapRec:
		return CatTrapRecord
	case hasCause:
		return CatTrapCause
	case hasX26 && !hasReg:
		return CatCompletionMarker
	case hasReg:
		return CatRegisterValue
	case hasFP:
		return CatFPValue
	}
	return CatRegisterValue
}

// Cell is one (simulator, ISA configuration) result of Table I.
type Cell struct {
	Supported  bool
	Mismatches int
	Crashes    int
	Timeouts   int
	// Skipped counts cases excluded from the comparison because the
	// reference run itself crashed or timed out; it keeps the mismatch
	// denominator honest (Cases - Skipped cases were actually compared).
	Skipped int
	// Categories histogram over mismatching cases.
	Categories [catCount]int
	// Examples lists up to a few mismatching case indexes for triage.
	Examples []int

	// HarnessFaults counts runs that failed at the harness level — a
	// panic isolated by the resilience layer or a wall-clock watchdog
	// timeout — as opposed to crash/timeout outcomes the simulator
	// reported through its own error handling.
	HarnessFaults int `json:",omitempty"`
	// SkippedUnhealthy counts cases never run because the simulator's
	// circuit breaker had tripped (consecutive harness faults).
	SkippedUnhealthy int `json:",omitempty"`
	// SkippedAdapter counts cases whose external adapter exchange failed
	// past the retry budget (wedge, crash, protocol garbage): the case
	// ran out of infrastructure, not out of correctness, so it is
	// excluded from the verdict counts instead of polluting them.
	SkippedAdapter int `json:",omitempty"`
	// Unhealthy marks a tripped breaker: the cell's counts cover only the
	// cases run before (and during) the fault streak.
	Unhealthy bool `json:",omitempty"`
	// FaultMsgs preserves up to a few distinct harness-fault messages
	// (e.g. the panic text) for triage.
	FaultMsgs []string `json:",omitempty"`
}

// maxFaultMsgs bounds the per-cell fault-message list.
const maxFaultMsgs = 4

func (c *Cell) addFaultMsg(msg string) {
	for _, m := range c.FaultMsgs {
		if m == msg {
			return
		}
	}
	if len(c.FaultMsgs) < maxFaultMsgs {
		c.FaultMsgs = append(c.FaultMsgs, msg)
	}
}

// merge folds a later shard's partial cell into c, preserving the serial
// engine's semantics: counters add up and example indexes concatenate in
// shard (= case) order up to the maxEx bound.
func (c *Cell) merge(p *Cell, maxEx int) {
	c.Mismatches += p.Mismatches
	c.Crashes += p.Crashes
	c.Timeouts += p.Timeouts
	c.Skipped += p.Skipped
	for k, n := range p.Categories {
		c.Categories[k] += n
	}
	for _, idx := range p.Examples {
		if len(c.Examples) >= maxEx {
			break
		}
		c.Examples = append(c.Examples, idx)
	}
	c.HarnessFaults += p.HarnessFaults
	c.SkippedUnhealthy += p.SkippedUnhealthy
	c.SkippedAdapter += p.SkippedAdapter
	c.Unhealthy = c.Unhealthy || p.Unhealthy
	for _, m := range p.FaultMsgs {
		c.addFaultMsg(m)
	}
}

// String renders the cell the way Table I does: "/" for unsupported
// configurations, "unhealthy" when the circuit breaker gave up on the
// simulator, "crash" when the simulator crashed during the run.
func (c Cell) String() string {
	switch {
	case !c.Supported:
		return "/"
	case c.Unhealthy:
		return "unhealthy"
	case c.Crashes > 0:
		return "crash"
	default:
		return fmt.Sprint(c.Mismatches)
	}
}

// Report aggregates a full Table I run.
type Report struct {
	RefName string
	Sims    []string
	Configs []isa.Config
	// Cells[i][j] is configuration i on simulator j.
	Cells [][]Cell
	Cases int
	// Skipped[i] counts the cases of configuration i whose reference run
	// crashed or timed out, making them unusable for comparison.
	Skipped []int
}

// Render prints the report in the layout of Table I.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Number of signature mismatches against %s (%d test cases)\n", r.RefName, r.Cases)
	fmt.Fprintf(&b, "%-10s", "RISC-V ISA")
	for _, s := range r.Sims {
		fmt.Fprintf(&b, " %12s", s)
	}
	b.WriteByte('\n')
	for i, cfg := range r.Configs {
		fmt.Fprintf(&b, "%-10s", cfg)
		for j := range r.Sims {
			fmt.Fprintf(&b, " %12s", r.Cells[i][j])
		}
		b.WriteByte('\n')
	}
	for i, cfg := range r.Configs {
		if i < len(r.Skipped) && r.Skipped[i] > 0 {
			fmt.Fprintf(&b, "%v: %d of %d cases skipped (reference run crashed or timed out)\n",
				cfg, r.Skipped[i], r.Cases)
		}
	}
	for i, cfg := range r.Configs {
		for j, name := range r.Sims {
			c := r.Cells[i][j]
			if c.HarnessFaults == 0 && c.SkippedUnhealthy == 0 && c.SkippedAdapter == 0 {
				continue
			}
			fmt.Fprintf(&b, "%v/%s: %d harness fault(s)", cfg, name, c.HarnessFaults)
			if c.SkippedUnhealthy > 0 {
				fmt.Fprintf(&b, ", %d case(s) skipped (sut-unhealthy)", c.SkippedUnhealthy)
			}
			if c.SkippedAdapter > 0 {
				fmt.Fprintf(&b, ", %d case(s) skipped (adapter)", c.SkippedAdapter)
			}
			for _, m := range c.FaultMsgs {
				fmt.Fprintf(&b, "\n    %s", m)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Degraded reports whether any cell was affected by harness-level faults
// (isolated panics, watchdog timeouts, or breaker-skipped cases). A
// degraded report is complete — every cell is rendered — but the affected
// simulator's numbers cover fewer cases than the suite holds. Modeled
// crash/timeout outcomes do not degrade a report; they are findings.
func (r *Report) Degraded() bool {
	for _, row := range r.Cells {
		for _, c := range row {
			if c.HarnessFaults > 0 || c.SkippedUnhealthy > 0 || c.SkippedAdapter > 0 || c.Unhealthy {
				return true
			}
		}
	}
	return false
}

// Runner executes compliance testing for a suite.
type Runner struct {
	// Ref generates the reference signatures (riscvOVPsim per the
	// compliance convention, including its own seeded defect — a
	// reference simulator can itself be wrong, which the paper found).
	Ref *sim.Variant
	// SUTs are the simulators under test.
	SUTs []*sim.Variant
	// External adds out-of-process SUT columns: each spec launches an
	// adapter subprocess speaking the internal/sut protocol, supervised
	// with watchdog/kill-and-restart/backoff per worker. Specs must carry
	// unique non-empty names (they become report columns).
	External []sut.Spec
	// HalfOpenAfter configures external columns' breaker recovery: an
	// open breaker admits one probe run after this many skipped runs
	// (cool-down counted in runs, not wall time, so campaigns stay
	// deterministic). Zero means DefaultHalfOpenAfter; negative keeps
	// external breakers stay-open like in-process ones.
	HalfOpenAfter int
	// Configs are the ISA configurations to test (Table I rows).
	Configs []isa.Config
	// DontCare optionally relaxes the comparison (the section VI
	// extension); usually nil for the register-only signature.
	DontCare *sig.DontCare
	// MaxExamples bounds the per-cell example list.
	MaxExamples int
	// Workers selects the execution engine: 0 or 1 runs the serial
	// engine, N > 1 shards the suite across N concurrent workers, and a
	// negative value uses GOMAXPROCS. The report is bit-identical for
	// every worker count (see parallel.go for the determinism argument).
	Workers int
	// Progress, when non-nil, is called after each completed shard of
	// work (serialized; never concurrently).
	Progress func(ProgressEvent)
	// Stats describes the most recent Run (workers, executions,
	// throughput). It is overwritten by each Run call.
	Stats RunStats

	// CaseTimeout is a wall-clock watchdog per simulator run, on top of
	// the instruction limit: a wedged run is reaped, classified as a
	// Timeout, and counted as a harness fault. Zero disables it.
	CaseTimeout time.Duration
	// BreakerThreshold is the number of consecutive harness faults that
	// trips a simulator instance's circuit breaker, skipping its
	// remaining cases as sut-unhealthy. Zero means
	// DefaultBreakerThreshold; negative disables the breaker. Each
	// parallel worker owns its own breaker, so a faulting simulator may
	// classify slightly differently across worker counts — healthy
	// simulators' cells stay bit-identical regardless.
	BreakerThreshold int
	// QuarantineDir, when set, receives every input that triggered a
	// harness fault, with the fault detail, for triage.
	QuarantineDir string
	// NewSim overrides the simulator factory (resilience tests inject
	// sim.Faulty here). It must be safe for concurrent calls. Nil uses
	// sim.New.
	NewSim func(v *sim.Variant, p template.Platform) (sim.Sim, error)
	// DisablePredecode turns off the simulators' predecoded execution
	// core (ablation/debug; default-factory simulators only). Reports
	// are byte-identical either way.
	DisablePredecode bool
	// Batch, when >= 2, runs in-process simulator columns in batched
	// lockstep (exec.Batch): each worker's instance keeps a persistent
	// lane arena and executes up to Batch cases per round trip. Reports
	// and checkpoints are byte-identical with batching on or off — a
	// batch that faults at the harness level is abandoned and its cases
	// rerun scalar, so classification, breaker and quarantine behaviour
	// never change — which is why, like DisablePredecode, the knob is
	// deliberately excluded from the checkpoint fingerprint: a campaign
	// may resume across it. External adapter columns always run scalar.
	Batch int

	// Obs, when non-nil, receives run telemetry: execution counters,
	// per-SUT mismatch counters and per-stage latency histograms
	// (package obs). Observational only: reports stay bit-identical with
	// telemetry on or off, and a nil registry costs nothing.
	Obs *obs.Registry
	// Events, when non-nil, receives structured lifecycle events
	// (shard_done, cell_done, row_done, breaker_open, checkpoint) as an
	// NDJSON stream; emission is serialized across workers.
	Events *obs.EventLog

	tel *runnerTelemetry // resolved by run(); nil when telemetry is off

	// cols is the run's resolved column list (built-in SUTs followed by
	// externals), rebuilt by every run() call.
	cols []column
}

// DefaultBreakerThreshold is the consecutive-harness-fault count that
// marks a simulator unhealthy when Runner.BreakerThreshold is zero.
const DefaultBreakerThreshold = 5

func (r *Runner) breakerThreshold() int {
	switch {
	case r.BreakerThreshold < 0:
		return 0 // disabled
	case r.BreakerThreshold == 0:
		return DefaultBreakerThreshold
	}
	return r.BreakerThreshold
}

// newInstances builds one harnessed instance per worker for a variant on
// a platform. The default factory clones from a pristine base that is
// never itself run, so post-wedge rebuilds can never copy poisoned state.
func (r *Runner) newInstances(v *sim.Variant, p template.Platform, workers int) ([]*instance, error) {
	var factory func() (sim.Sim, error)
	if r.NewSim != nil {
		factory = func() (sim.Sim, error) { return r.NewSim(v, p) }
	} else {
		base, err := sim.New(v, p)
		if err != nil {
			return nil, err
		}
		// The base predecodes the template once; every worker clone (and
		// every post-wedge rebuild) shares that immutable predecode
		// instead of re-deriving it.
		base.NoPredecode = r.DisablePredecode
		factory = func() (sim.Sim, error) {
			c := base.Clone()
			if tel := r.tel; tel != nil {
				c.PredecodeTimer = tel.preHist()
			}
			return c, nil
		}
	}
	quar := resilience.NewQuarantine(r.QuarantineDir)
	out := make([]*instance, workers)
	for w := range out {
		in, err := newInstance(v.Name, factory, r.breakerThreshold(), r.CaseTimeout, quar)
		if err != nil {
			return nil, err
		}
		in.batchSize = r.Batch
		if tel := r.tel; tel != nil {
			in.stExec = tel.execHist()
			in.pre = tel.preCounters()
			in.traps = tel.trapCounter()
			in.breaker.OnOpen = func() {
				tel.breakerOpened(v.Name)
				tel.event(obs.Event{Type: "breaker_open", Sim: v.Name, Worker: w, Config: p.Cfg.String()})
			}
		}
		out[w] = in
	}
	return out, nil
}

// DefaultRunner reproduces the paper's Table I setup.
func DefaultRunner() *Runner {
	return &Runner{
		Ref:         sim.OVPSim,
		SUTs:        append([]*sim.Variant(nil), sim.UnderTest...),
		Configs:     []isa.Config{isa.RV32I, isa.RV32IMC, isa.RV32GC},
		MaxExamples: 10,
	}
}

// ErrInterrupted reports that a run stopped on context cancellation
// (operator SIGINT/SIGTERM). With a checkpoint directory, every
// configuration row completed before the interruption was persisted and
// a resumed run continues from the first unfinished row.
var ErrInterrupted = errors.New("compliance: run interrupted")

// Run executes the whole suite on every (configuration, simulator) pair,
// dispatching to the serial or the sharded parallel engine according to
// Workers. Both engines produce bit-identical reports.
func (r *Runner) Run(suite *Suite) (*Report, error) {
	return r.RunContext(context.Background(), suite)
}

// RunContext is Run with cancellation: the engines stop cleanly between
// cases when ctx is cancelled and RunContext returns ErrInterrupted.
func (r *Runner) RunContext(ctx context.Context, suite *Suite) (*Report, error) {
	return r.run(ctx, suite, "")
}

// RunResumable is RunContext with checkpoint/resume: completed
// configuration rows are persisted under dir (atomically, versioned) as
// the run progresses, and a fresh call with the same suite and runner
// configuration picks up after the last completed row.
func (r *Runner) RunResumable(ctx context.Context, suite *Suite, dir string) (*Report, error) {
	if dir == "" {
		return nil, errors.New("compliance: RunResumable needs a checkpoint directory")
	}
	return r.run(ctx, suite, dir)
}

// run is the engine dispatcher shared by every entry point: it iterates
// configurations, computing each Table I row with the serial or parallel
// engine, optionally persisting rows to a checkpoint as they complete.
func (r *Runner) run(ctx context.Context, suite *Suite, dir string) (*Report, error) {
	workers := r.workerCount()
	// More workers than cases only buys idle shards at the price of one
	// simulator-fleet clone each; extra workers would change nothing in
	// the output (empty shards merge as empty cells).
	if workers > len(suite.Cases) {
		workers = len(suite.Cases)
		if workers < 1 {
			workers = 1
		}
	}
	if err := r.resolveColumns(); err != nil {
		return nil, err
	}
	start := time.Now()
	r.Stats = RunStats{Workers: workers, PerWorker: make([]WorkerStats, workers)}
	r.tel = newRunnerTelemetry(r)
	r.probeExternals()

	var ckpt *campaignCheckpoint
	if dir != "" {
		var err error
		ckpt, err = loadOrInitCheckpoint(r, suite, dir)
		if err != nil {
			return nil, err
		}
	}

	rep := r.newReport(suite)
	for i, cfg := range r.Configs {
		if ckpt != nil && i < len(ckpt.Rows) {
			// Row already computed by an earlier, interrupted run.
			rep.Cells = append(rep.Cells, ckpt.Rows[i].Cells)
			rep.Skipped = append(rep.Skipped, ckpt.Rows[i].Skipped)
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, ErrInterrupted
		}
		var row []Cell
		var skipped int
		var err error
		if workers <= 1 {
			row, skipped, err = r.runConfigSerial(ctx, suite, cfg)
		} else {
			row, skipped, err = r.runConfigParallel(ctx, suite, cfg, workers)
		}
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, ErrInterrupted
			}
			return nil, err
		}
		rep.Cells = append(rep.Cells, row)
		rep.Skipped = append(rep.Skipped, skipped)
		r.tel.rowDone(r, cfg.String(), row, skipped)
		if ckpt != nil {
			ckpt.Rows = append(ckpt.Rows, savedRow{Config: cfg.String(), Cells: row, Skipped: skipped})
			if err := ckpt.save(dir); err != nil {
				return nil, err
			}
			r.tel.event(obs.Event{Type: "checkpoint", Worker: -1, Config: cfg.String(),
				Detail: fmt.Sprintf("rows=%d", len(ckpt.Rows))})
		}
	}
	r.Stats.Duration = time.Since(start)
	if s := r.Stats.Duration.Seconds(); s > 0 {
		r.Stats.CasesPerSec = float64(r.Stats.Execs) / s
	}
	return rep, nil
}

// maxExamples resolves the example-list bound.
func (r *Runner) maxExamples() int {
	if r.MaxExamples > 0 {
		return r.MaxExamples
	}
	return 10
}

// newReport builds the report skeleton shared by both engines.
func (r *Runner) newReport(suite *Suite) *Report {
	rep := &Report{RefName: r.Ref.Name, Configs: r.Configs, Cases: len(suite.Cases)}
	for i := range r.cols {
		rep.Sims = append(rep.Sims, r.cols[i].name)
	}
	return rep
}

// runCase executes one suite case on one simulator under test and folds
// the outcome into the cell. It reports whether the SUT actually ran:
// cases whose reference run failed are recorded as skipped and never
// execute, and a SUT whose breaker tripped skips its remaining cases as
// sut-unhealthy.
func runCase(cell *Cell, ref sim.Outcome, in *instance, bs []byte, i, maxEx, trapBase int, dc *sig.DontCare, stCmp *obs.Histogram) bool {
	if ref.Crashed || ref.TimedOut {
		// A reference failure makes the case unusable for signature
		// comparison; record it so the mismatch denominator stays honest.
		cell.Skipped++
		return false
	}
	// Allow is Tripped's recovery-aware twin: for in-process breakers
	// (HalfOpenAfter zero) it is exactly !Tripped(), keeping historical
	// cells byte-identical; for external columns a denied run counts
	// toward the half-open cool-down and the probe run is admitted here.
	if !in.breaker.Allow() {
		cell.Unhealthy = true
		cell.SkippedUnhealthy++
		return false
	}
	out, harnessFault, noVerdict := in.run(bs)
	if harnessFault {
		cell.HarnessFaults++
		if out.CrashMsg != "" {
			cell.addFaultMsg(out.CrashMsg)
		}
		if in.breaker.Tripped() {
			cell.Unhealthy = true
		}
	}
	if noVerdict {
		// The adapter exchange failed past its retry budget: the case was
		// attempted but produced no verdict — record it as skipped, never
		// as a crash finding.
		cell.SkippedAdapter++
		return true
	}
	foldVerdict(cell, ref, out, i, maxEx, trapBase, dc, stCmp)
	return true
}

// foldVerdict classifies one completed SUT outcome against its reference
// and folds the verdict into the cell: modeled crash/timeout categories,
// the signature comparison, and the example list. Shared by the scalar
// path (after runCase's harness handling) and the batch commit path
// (whose outcomes are harness-fault-free by construction).
func foldVerdict(cell *Cell, ref, out sim.Outcome, i, maxEx, trapBase int, dc *sig.DontCare, stCmp *obs.Histogram) {
	var cat Category
	switch {
	case out.Crashed:
		cell.Crashes++
		cat = CatCrash
	case out.TimedOut:
		cell.Timeouts++
		cat = CatTimeout
	default:
		var t0 time.Time
		if stCmp != nil {
			t0 = time.Now()
		}
		match := len(sig.Compare(sig.Signature(ref.Signature), sig.Signature(out.Signature), dc)) == 0
		if stCmp != nil {
			stCmp.ObserveSince(t0)
		}
		if match {
			return
		}
		cat = ClassifyAt(ref.Signature, out.Signature, trapBase)
	}
	cell.Mismatches++
	cell.Categories[cat]++
	if len(cell.Examples) < maxEx {
		cell.Examples = append(cell.Examples, i)
	}
}

// runCaseRange executes suite cases [lo, hi) on one SUT instance,
// batching lockstep chunks when the instance is configured for it and
// falling back to per-case runCase otherwise. The cell it produces is
// byte-identical to a scalar loop:
//
//   - Gate evaluation order is preserved. Chunk collection evaluates the
//     reference and breaker gates case by case in index order, exactly
//     like the scalar loop; a successful batch records one breaker-OK per
//     case and no faults, so no gate decision inside the chunk could have
//     differed (in-process Breaker.Allow is pure and depends only on the
//     fault history, which a clean batch leaves untouched).
//   - A faulted batch contributes nothing. The poisoned runner is dropped
//     without reading it and the chunk's collected cases rerun through
//     the full scalar runCase, whose per-case gates re-fire — so a rerun
//     fault that trips the breaker skips the chunk's tail as
//     sut-unhealthy exactly where the scalar schedule would have.
func runCaseRange(ctx context.Context, cell *Cell, refOuts []sim.Outcome, in *instance, cases [][]byte, lo, hi, maxEx, trapBase int, dc *sig.DontCare, stCmp *obs.Histogram) (int, error) {
	execs := 0
	if in.batchSize < 2 || in.adapter != nil {
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				return execs, err
			}
			if runCase(cell, refOuts[i], in, cases[i], i, maxEx, trapBase, dc, stCmp) {
				execs++
			}
		}
		return execs, nil
	}
	idx := make([]int, 0, in.batchSize)
	inputs := make([][]byte, 0, in.batchSize)
	for i := lo; i < hi; {
		if err := ctx.Err(); err != nil {
			return execs, err
		}
		idx = idx[:0]
		for ; i < hi && len(idx) < in.batchSize; i++ {
			ref := refOuts[i]
			if ref.Crashed || ref.TimedOut {
				cell.Skipped++
				continue
			}
			if !in.breaker.Allow() {
				cell.Unhealthy = true
				cell.SkippedUnhealthy++
				continue
			}
			idx = append(idx, i)
		}
		if len(idx) < 2 {
			// Zero or one runnable case in the chunk: run it scalar (the
			// gates were pure, so rechecking them inside runCase is a no-op).
			for _, ci := range idx {
				if runCase(cell, refOuts[ci], in, cases[ci], ci, maxEx, trapBase, dc, stCmp) {
					execs++
				}
			}
			continue
		}
		inputs = inputs[:0]
		for _, ci := range idx {
			inputs = append(inputs, cases[ci])
		}
		outs, ok := in.runBatch(inputs)
		if !ok {
			for _, ci := range idx {
				if runCase(cell, refOuts[ci], in, cases[ci], ci, maxEx, trapBase, dc, stCmp) {
					execs++
				}
			}
			continue
		}
		for k, ci := range idx {
			foldVerdict(cell, refOuts[ci], outs[k], ci, maxEx, trapBase, dc, stCmp)
			execs++
		}
	}
	return execs, nil
}

// runRefRange computes the reference outcomes for cases [lo, hi) with one
// harnessed reference instance. A reference harness fault surfaces as a
// crashed outcome, which downstream comparison records as a skipped case;
// a tripped reference breaker marks the remaining range the same way.
// When the instance is configured for lockstep batching, non-tripped
// chunks run batched; the outcomes are identical by the same argument as
// runCaseRange (a clean batch leaves the breaker history untouched, a
// faulted batch is abandoned unread and rerun scalar).
func runRefRange(ctx context.Context, refIn *instance, cases [][]byte, refOuts []sim.Outcome, lo, hi int) error {
	runScalar := func(i int) {
		if refIn.breaker.Tripped() {
			refOuts[i] = sim.Outcome{Crashed: true, CrashMsg: "reference unhealthy (breaker tripped)"}
			return
		}
		out, _, _ := refIn.run(cases[i])
		refOuts[i] = out
	}
	if refIn.batchSize < 2 || refIn.adapter != nil {
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			runScalar(i)
		}
		return nil
	}
	idx := make([]int, 0, refIn.batchSize)
	inputs := make([][]byte, 0, refIn.batchSize)
	for i := lo; i < hi; {
		if err := ctx.Err(); err != nil {
			return err
		}
		idx, inputs = idx[:0], inputs[:0]
		for ; i < hi && len(idx) < refIn.batchSize; i++ {
			if refIn.breaker.Tripped() {
				refOuts[i] = sim.Outcome{Crashed: true, CrashMsg: "reference unhealthy (breaker tripped)"}
				continue
			}
			idx = append(idx, i)
			inputs = append(inputs, cases[i])
		}
		if len(idx) < 2 {
			for _, ci := range idx {
				runScalar(ci)
			}
			continue
		}
		outs, ok := refIn.runBatch(inputs)
		if !ok {
			for _, ci := range idx {
				runScalar(ci)
			}
			continue
		}
		for k, ci := range idx {
			refOuts[ci] = outs[k]
		}
	}
	return nil
}

// countSkipped tallies the reference failures of one configuration.
func countSkipped(refOuts []sim.Outcome) int {
	n := 0
	for _, o := range refOuts {
		if o.Crashed || o.TimedOut {
			n++
		}
	}
	return n
}

// trapBase returns the first trap-record signature word index for the
// suite's family on a configuration, or 0 for the user family (whose
// signature has no trap-record region).
func (s *Suite) trapBase(cfg isa.Config) int {
	if s.Family != template.FamilyTrap {
		return 0
	}
	return template.PlatformFor(template.FamilyTrap, cfg).BaseSigWords()
}

// runConfigSerial is the single-goroutine engine (Workers <= 1) for one
// configuration row.
func (r *Runner) runConfigSerial(ctx context.Context, suite *Suite, cfg isa.Config) ([]Cell, int, error) {
	maxEx := r.maxExamples()
	trapBase := suite.trapBase(cfg)
	p := template.PlatformFor(suite.Family, cfg)
	refIns, err := r.newInstances(r.Ref, p, 1)
	if err != nil {
		return nil, 0, fmt.Errorf("compliance: reference %s on %v: %w", r.Ref.Name, cfg, err)
	}
	// Reference signatures are generated once per configuration
	// (the paper's "separate set of reference outputs per ISA
	// config").
	refOuts := make([]sim.Outcome, len(suite.Cases))
	if err := runRefRange(ctx, refIns[0], suite.Cases, refOuts, 0, len(suite.Cases)); err != nil {
		return nil, 0, err
	}
	r.addExecs(0, len(suite.Cases))
	r.emitProgress(ProgressEvent{Config: cfg, Worker: 0, Hi: len(suite.Cases), Execs: len(suite.Cases)})
	r.tel.event(obs.Event{Type: "shard_done", Config: cfg.String(), Sim: r.Ref.Name,
		Hi: len(suite.Cases), Execs: uint64(len(suite.Cases))})

	row := make([]Cell, len(r.cols))
	for j := range r.cols {
		col := &r.cols[j]
		cell := &row[j]
		if !col.supports(cfg, suite.Family) {
			continue
		}
		cell.Supported = true
		suts, err := r.newColInstances(col, p, 1)
		if err != nil {
			return nil, 0, fmt.Errorf("compliance: %s on %v: %w", col.name, cfg, err)
		}
		var t0 time.Time
		if r.tel != nil {
			t0 = time.Now()
		}
		execs, err := runCaseRange(ctx, cell, refOuts, suts[0], suite.Cases, 0, len(suite.Cases),
			maxEx, trapBase, r.DontCare, r.tel.compareHist())
		if err != nil {
			closeInstances(suts)
			return nil, 0, err
		}
		closeInstances(suts)
		r.addExecs(0, execs)
		r.emitProgress(ProgressEvent{Config: cfg, Sim: col.name, Worker: 0, Hi: len(suite.Cases), Execs: execs})
		if r.tel != nil {
			r.tel.event(obs.Event{Type: "cell_done", Config: cfg.String(), Sim: col.name,
				Hi: len(suite.Cases), Execs: uint64(execs), DurNS: time.Since(t0).Nanoseconds()})
		}
	}
	return row, countSkipped(refOuts), nil
}

// BugFindings renders the per-simulator mismatch-category breakdown, the
// analysis counterpart of the paper's section V-B bullet list.
func (r *Report) BugFindings() string {
	var b strings.Builder
	for j, name := range r.Sims {
		var total int
		var hist [catCount]int
		for i := range r.Configs {
			c := r.Cells[i][j]
			total += c.Mismatches
			for k, n := range c.Categories {
				hist[k] += n
			}
		}
		fmt.Fprintf(&b, "%s: %d mismatching cases", name, total)
		if total == 0 {
			b.WriteString("\n")
			continue
		}
		b.WriteString(" (")
		var parts []string
		type kv struct {
			k int
			n int
		}
		var ks []kv
		for k, n := range hist {
			if n > 0 {
				ks = append(ks, kv{k, n})
			}
		}
		sort.Slice(ks, func(a, b int) bool { return ks[a].n > ks[b].n })
		for _, e := range ks {
			parts = append(parts, fmt.Sprintf("%s: %d", Category(e.k), e.n))
		}
		b.WriteString(strings.Join(parts, ", "))
		b.WriteString(")\n")
	}
	return b.String()
}
