package compliance

import (
	"testing"

	"rvnegtest/internal/isa"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/template"
)

func pair(t *testing.T, v *sim.Variant, cfg isa.Config) (*sim.Simulator, *sim.Simulator) {
	t.Helper()
	p := template.Platform{Layout: template.DefaultLayout, Cfg: cfg}
	ref, err := sim.New(sim.Reference, p)
	if err != nil {
		t.Fatal(err)
	}
	sut, err := sim.New(v, p)
	if err != nil {
		t.Fatal(err)
	}
	return ref, sut
}

func TestMinimizeCaseShrinksToTrigger(t *testing.T) {
	// A long test case whose only defect trigger is one unpaired SC.W in
	// the middle: minimization must isolate it.
	filler := enc(isa.Inst{Op: isa.OpADD, Rd: 5, Rs1: 1, Rs2: 2})
	scw := enc(isa.Inst{Op: isa.OpSCW, Rd: 6, Rs1: 30, Rs2: 1})
	bs := stream(filler, filler, filler, scw, filler, filler, filler, filler)
	ref, sut := pair(t, sim.Grift, isa.RV32GC)
	min := MinimizeCase(bs, ref, sut, nil)
	if len(min) >= len(bs) {
		t.Fatalf("no shrinkage: %d -> %d", len(bs), len(min))
	}
	if len(min) != 4 {
		t.Errorf("minimal reproducer is %d bytes, want 4 (the SC.W alone): %x", len(min), min)
	}
	if classifyRun(ref, sut, min, nil) != failMismatch {
		t.Error("minimized case no longer mismatches")
	}
}

func TestMinimizeCasePreservesCrashKind(t *testing.T) {
	filler := enc(isa.Inst{Op: isa.OpADDI, Rd: 5, Rs1: 5, Imm: 1})
	bs := stream(filler, filler, 0x0000445b /* 32-bit sail crash pattern */, filler)
	ref, sut := pair(t, sim.Sail, isa.RV32I)
	if classifyRun(ref, sut, bs, nil) != failCrash {
		t.Fatal("setup: case must crash sail")
	}
	min := MinimizeCase(bs, ref, sut, nil)
	if classifyRun(ref, sut, min, nil) != failCrash {
		t.Fatalf("minimized case lost the crash: %x", min)
	}
	if len(min) != 4 {
		t.Errorf("crash reproducer is %d bytes, want 4", len(min))
	}
}

func TestMinimizeCaseNoFailureIsIdentity(t *testing.T) {
	bs := stream(enc(isa.Inst{Op: isa.OpADD, Rd: 5, Rs1: 1, Rs2: 2}))
	ref, sut := pair(t, sim.Spike, isa.RV32I)
	min := MinimizeCase(bs, ref, sut, nil)
	if string(min) != string(bs) {
		t.Error("non-failing case must be returned unchanged")
	}
}

func TestExportAndVerifySignatures(t *testing.T) {
	suite := handSuite()
	dir := t.TempDir()
	for _, cfg := range []isa.Config{isa.RV32I, isa.RV32IMC} {
		if err := ExportReferenceSignatures(suite, sim.OVPSim, cfg, dir, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Verifying from disk must reproduce the in-process Table I cells.
	inProc, err := DefaultRunner().Run(suite)
	if err != nil {
		t.Fatal(err)
	}
	for ci, cfg := range []isa.Config{isa.RV32I, isa.RV32IMC} {
		for sj, v := range sim.UnderTest {
			cell, err := VerifyAgainstSignatures(suite, v, cfg, dir)
			if err != nil {
				t.Fatal(err)
			}
			want := inProc.Cells[ci][sj]
			if cell.Mismatches != want.Mismatches || cell.Crashes != want.Crashes {
				t.Errorf("%v/%s: disk verify %d/%d, in-process %d/%d",
					cfg, v.Name, cell.Mismatches, cell.Crashes, want.Mismatches, want.Crashes)
			}
		}
	}
	// Unsupported configurations come back unsupported.
	if err := ExportReferenceSignatures(suite, sim.OVPSim, isa.RV32GC, dir, nil); err != nil {
		t.Fatal(err)
	}
	cell, err := VerifyAgainstSignatures(suite, sim.VP, isa.RV32GC, dir)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Supported {
		t.Error("VP on RV32GC must be unsupported")
	}
	// Missing signatures fail cleanly.
	if _, err := VerifyAgainstSignatures(suite, sim.Spike, isa.RV32I, t.TempDir()); err == nil {
		t.Error("missing reference files must error")
	}
}
