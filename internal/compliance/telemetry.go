package compliance

import (
	"fmt"

	"rvnegtest/internal/obs"
)

// runnerTelemetry holds a Run's pre-resolved observability handles. It is
// nil when both Runner.Obs and Runner.Events are unset, and every use site
// guards on that nil (zero-cost-off, like fuzz.telemetry). Per-SUT
// counters are resolved once per Run so the engines never take the
// registry lock on the hot path; the counters themselves are atomics, so
// parallel workers share them without locking.
//
// Telemetry is observational only: counter adds happen on merged rows and
// serialized stats paths, event emission is serialized by the EventLog,
// and nothing here feeds back into the report, the checkpoint or the
// fingerprint — reports stay bit-identical with telemetry on or off.
type runnerTelemetry struct {
	reg    *obs.Registry
	events *obs.EventLog

	execs   *obs.Counter // simulator executions (reference + SUT)
	rows    *obs.Counter // configuration rows completed this session
	skipped *obs.Counter // cases skipped (reference crashed / timed out)
	traps   *obs.Counter // executor traps taken across all runs

	stExec    *obs.Histogram // per-run simulator execution latency
	stCompare *obs.Histogram // per-case signature comparison latency
	stPre     *obs.Histogram // per-run decode-cache maintenance latency

	pre preCounters

	perSim map[string]*simCounters
}

// preCounters groups the decode-cache counter handles instances fold
// their per-run deltas into. The totals are deterministic across worker
// counts: every case contributes the same delta wherever it runs,
// because cache maintenance re-establishes the same pre-run state.
type preCounters struct {
	hits, misses, invals, fused *obs.Counter
}

// simCounters are one simulator's labeled counter family.
type simCounters struct {
	mismatches   *obs.Counter
	crashes      *obs.Counter
	timeouts     *obs.Counter
	hfaults      *obs.Counter
	breakerOpens *obs.Counter

	// External-adapter supervision counters (stay zero for in-process
	// columns).
	restarts      *obs.Counter // adapter process respawns
	retries       *obs.Counter // re-attempted runs after adapter faults
	adapterSkips  *obs.Counter // cases skipped for adapter-level failure
	breakerCloses *obs.Counter // successful half-open recoveries
}

// newRunnerTelemetry resolves the run's metric handles, or returns nil
// when telemetry is disabled.
func newRunnerTelemetry(r *Runner) *runnerTelemetry {
	if r.Obs == nil && r.Events == nil {
		return nil
	}
	reg := r.Obs
	t := &runnerTelemetry{
		reg:       reg,
		events:    r.Events,
		execs:     reg.Counter("rvnegtest_compliance_execs_total"),
		rows:      reg.Counter("rvnegtest_compliance_rows_total"),
		skipped:   reg.Counter("rvnegtest_compliance_skipped_total"),
		traps:     reg.Counter("rvnegtest_compliance_traps_total"),
		stExec:    reg.Stage(obs.StageExecute),
		stCompare: reg.Stage(obs.StageSignatureCompare),
		stPre:     reg.Stage(obs.StagePredecode),
		pre: preCounters{
			hits:   reg.Counter("rvnegtest_compliance_predecode_hits_total"),
			misses: reg.Counter("rvnegtest_compliance_predecode_misses_total"),
			invals: reg.Counter("rvnegtest_compliance_predecode_invalidations_total"),
			fused:  reg.Counter("rvnegtest_compliance_predecode_fused_total"),
		},
		perSim: map[string]*simCounters{},
	}
	names := []string{r.Ref.Name}
	for i := range r.cols {
		names = append(names, r.cols[i].name)
	}
	for _, name := range names {
		if _, ok := t.perSim[name]; ok {
			continue
		}
		label := `{sim="` + name + `"}`
		t.perSim[name] = &simCounters{
			mismatches:    reg.Counter("rvnegtest_compliance_mismatches_total" + label),
			crashes:       reg.Counter("rvnegtest_compliance_crashes_total" + label),
			timeouts:      reg.Counter("rvnegtest_compliance_timeouts_total" + label),
			hfaults:       reg.Counter("rvnegtest_compliance_harness_faults_total" + label),
			breakerOpens:  reg.Counter("rvnegtest_compliance_breaker_opens_total" + label),
			restarts:      reg.Counter("rvnegtest_compliance_sut_restarts_total" + label),
			retries:       reg.Counter("rvnegtest_compliance_sut_retries_total" + label),
			adapterSkips:  reg.Counter("rvnegtest_compliance_adapter_skipped_total" + label),
			breakerCloses: reg.Counter("rvnegtest_compliance_breaker_closes_total" + label),
		}
	}
	return t
}

// event forwards ev to the event log. Safe on a nil receiver; the
// EventLog serializes emission, so workers call this concurrently.
func (t *runnerTelemetry) event(ev obs.Event) {
	if t == nil {
		return
	}
	t.events.Emit(ev)
}

// execHist returns the execution-stage histogram handle (nil when
// telemetry is off, which instance.run treats as "no clock reads").
func (t *runnerTelemetry) execHist() *obs.Histogram {
	if t == nil {
		return nil
	}
	return t.stExec
}

// preHist returns the predecode-stage histogram handle.
func (t *runnerTelemetry) preHist() *obs.Histogram {
	if t == nil {
		return nil
	}
	return t.stPre
}

// preCounters returns the decode-cache counter handles (nil when
// telemetry is off; instance.run treats nil as "don't read stats").
func (t *runnerTelemetry) preCounters() *preCounters {
	if t == nil {
		return nil
	}
	return &t.pre
}

// trapCounter returns the executor-trap counter handle (nil when
// telemetry is off; instance.run treats nil as "don't count").
func (t *runnerTelemetry) trapCounter() *obs.Counter {
	if t == nil {
		return nil
	}
	return t.traps
}

// compareHist returns the signature-compare stage histogram handle.
func (t *runnerTelemetry) compareHist() *obs.Histogram {
	if t == nil {
		return nil
	}
	return t.stCompare
}

// addExecs counts simulator executions (called on serialized paths or
// with atomic counters; both are safe).
func (t *runnerTelemetry) addExecs(n int) {
	if t == nil {
		return
	}
	t.execs.Add(uint64(n))
}

// breakerOpened records a tripped breaker for one simulator (called from
// the Breaker.OnOpen hook, on the faulting worker's goroutine).
func (t *runnerTelemetry) breakerOpened(name string) {
	if t == nil {
		return
	}
	if sc := t.perSim[name]; sc != nil {
		sc.breakerOpens.Inc()
	}
}

// breakerClosed records a successful half-open recovery (external
// columns only).
func (t *runnerTelemetry) breakerClosed(name string) {
	if t == nil {
		return
	}
	if sc := t.perSim[name]; sc != nil {
		sc.breakerCloses.Inc()
	}
}

// sutRestarted records one adapter process respawn (from the Adapter's
// OnRestart hook, on the owning worker's goroutine; counters are
// atomics).
func (t *runnerTelemetry) sutRestarted(name string) {
	if t == nil {
		return
	}
	if sc := t.perSim[name]; sc != nil {
		sc.restarts.Inc()
	}
}

// sutRetried records one re-attempted adapter run.
func (t *runnerTelemetry) sutRetried(name string) {
	if t == nil {
		return
	}
	if sc := t.perSim[name]; sc != nil {
		sc.retries.Inc()
	}
}

// rowDone folds a completed (merged) configuration row into the per-SUT
// counters and emits the row_done event. Rows are produced sequentially
// by the dispatcher, so the adds are deterministic for every worker
// count — the merged row already is.
func (t *runnerTelemetry) rowDone(r *Runner, cfg string, row []Cell, skipped int) {
	if t == nil {
		return
	}
	t.rows.Inc()
	t.skipped.Add(uint64(skipped))
	for j := range row {
		c := &row[j]
		if !c.Supported {
			continue
		}
		sc := t.perSim[r.cols[j].name]
		if sc == nil {
			continue
		}
		sc.mismatches.Add(uint64(c.Mismatches))
		sc.crashes.Add(uint64(c.Crashes))
		sc.timeouts.Add(uint64(c.Timeouts))
		sc.hfaults.Add(uint64(c.HarnessFaults))
		sc.adapterSkips.Add(uint64(c.SkippedAdapter))
	}
	t.event(obs.Event{Type: "row_done", Worker: -1, Config: cfg, Detail: rowDetail(row, skipped)})
}

// rowDetail compresses a row into the event's free-form detail field.
func rowDetail(row []Cell, skipped int) string {
	var mism, hf int
	for i := range row {
		mism += row[i].Mismatches
		hf += row[i].HarnessFaults
	}
	s := fmt.Sprintf("mismatches=%d", mism)
	if hf > 0 {
		s += fmt.Sprintf(" harness_faults=%d", hf)
	}
	if skipped > 0 {
		s += fmt.Sprintf(" skipped=%d", skipped)
	}
	return s
}
