package compliance

import (
	"testing"

	"rvnegtest/internal/obs"
)

// TestReportIdenticalPredecodeOnOff is the compliance-side determinism
// guarantee of the predecoded execution core: for every worker count, the
// rendered table and the JSON report are byte-identical with the decode
// cache enabled (the default) and disabled.
func TestReportIdenticalPredecodeOnOff(t *testing.T) {
	suite := handSuite()
	ref := DefaultRunner()
	want, err := ref.Run(suite)
	if err != nil {
		t.Fatal(err)
	}
	wantText := want.Render()
	wantJSON, err := want.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		for _, disable := range []bool{false, true} {
			r := DefaultRunner()
			r.Workers = workers
			r.DisablePredecode = disable
			got, err := r.Run(suite)
			if err != nil {
				t.Fatalf("workers=%d disable=%v: %v", workers, disable, err)
			}
			if got.Render() != wantText {
				t.Errorf("workers=%d disable=%v: rendered report differs", workers, disable)
			}
			gotJSON, err := got.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if string(gotJSON) != string(wantJSON) {
				t.Errorf("workers=%d disable=%v: JSON report differs", workers, disable)
			}
		}
	}
}

// TestCompliancePredecodeCounters: the decode-cache counters must be
// deterministic across worker counts (each case contributes the same
// delta wherever it runs), show real traffic when the cache is on, and
// stay at zero when it is off.
func TestCompliancePredecodeCounters(t *testing.T) {
	suite := handSuite()
	read := func(reg *obs.Registry) [3]uint64 {
		return [3]uint64{
			reg.Counter("rvnegtest_compliance_predecode_hits_total").Value(),
			reg.Counter("rvnegtest_compliance_predecode_misses_total").Value(),
			reg.Counter("rvnegtest_compliance_predecode_invalidations_total").Value(),
		}
	}
	run := func(workers int, disable bool) [3]uint64 {
		r := DefaultRunner()
		r.Workers = workers
		r.DisablePredecode = disable
		r.Obs = obs.NewRegistry()
		if _, err := r.Run(suite); err != nil {
			t.Fatal(err)
		}
		return read(r.Obs)
	}
	serial := run(1, false)
	if serial[0] == 0 {
		t.Error("predecode enabled but hit counter is zero")
	}
	if serial[2] == 0 {
		t.Error("predecode enabled but invalidation counter is zero (every inject invalidates)")
	}
	for _, workers := range []int{2, 8} {
		if got := run(workers, false); got != serial {
			t.Errorf("workers=%d: predecode counters %v differ from serial %v", workers, got, serial)
		}
	}
	if got := run(2, true); got != ([3]uint64{}) {
		t.Errorf("predecode disabled but counters = %v", got)
	}
}
