package compliance

import (
	"fmt"
	"time"

	"rvnegtest/internal/exec"
	"rvnegtest/internal/obs"
	"rvnegtest/internal/resilience"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/sut"
)

// instance is one simulator under the resilience harness: every run is
// guarded (panic isolation + wall-clock watchdog), consecutive harness
// faults feed a circuit breaker, and faulting inputs are quarantined.
// Each engine worker owns a private instance, so none of this needs
// locking.
type instance struct {
	name string
	// make builds a fresh simulator: called once up front and again after
	// a wedge, when the abandoned goroutine still owns the old one.
	make    func() (sim.Sim, error)
	s       sim.Sim
	breaker resilience.Breaker
	timeout time.Duration
	quar    *resilience.Quarantine
	// stExec, when non-nil, times every guarded run (set by the Runner
	// when telemetry is on; nil means no clock reads at all).
	stExec *obs.Histogram
	// pre, when non-nil, receives the simulator's decode-cache counter
	// growth after each completed run (nil means stats are never read).
	pre     *preCounters
	lastPre exec.CacheStats
	// traps, when non-nil, accumulates the executor trap counts of
	// completed runs (trap-family campaigns take thousands of deliberate
	// round trips; the counter makes that volume observable).
	traps *obs.Counter

	// adapter, when non-nil, marks an external column: runs go through
	// the subprocess adapter protocol instead of an in-process simulator,
	// and the adapter owns its own watchdog/restart/backoff machinery.
	adapter *sut.Adapter
	// family/config are the RUN frame parameters for external columns.
	family byte
	config string
	// events, when non-nil, emits adapter lifecycle events (the caller
	// pre-binds sim/worker/config labels).
	events func(obs.Event)
}

func newInstance(name string, make func() (sim.Sim, error), threshold int, timeout time.Duration, quar *resilience.Quarantine) (*instance, error) {
	s, err := make()
	if err != nil {
		return nil, err
	}
	return &instance{
		name:    name,
		make:    make,
		s:       s,
		breaker: resilience.Breaker{Threshold: threshold},
		timeout: timeout,
		quar:    quar,
	}, nil
}

// run executes one case under the harness. harnessFault reports that the
// outcome was synthesized by the harness (isolated panic, reaped wedge,
// or failed adapter exchange) rather than returned by the simulator's
// own error handling — only those count against the breaker, because
// modeled Crashed/TimedOut outcomes are the measurements Phase B exists
// to take. noVerdict additionally marks adapter-level failures whose
// outcome carries no verdict at all: the case must be recorded as
// adapter-skipped, not as a crash finding (in-process instances never
// set it, keeping their cells byte-identical to the pre-adapter engine).
func (in *instance) run(bs []byte) (out sim.Outcome, harnessFault, noVerdict bool) {
	if in.adapter != nil {
		return in.runExternal(bs)
	}
	// Capture the simulator locally: after a wedge in.s is replaced while
	// the abandoned goroutine still holds the closure.
	s := in.s
	var t0 time.Time
	if in.stExec != nil {
		t0 = time.Now()
	}
	out, rec, timedOut := resilience.Guard(in.timeout, func() sim.Outcome {
		return s.Run(bs)
	})
	if in.stExec != nil {
		in.stExec.ObserveSince(t0)
	}
	switch {
	case rec != nil:
		in.notePredecode()
		in.breaker.RecordFault()
		in.quarantineWarn(bs, fmt.Sprintf("%s panic: %s\n\n%s", in.name, rec.Msg, rec.Stack))
		return sim.Outcome{Crashed: true, CrashMsg: rec.Msg}, true, false
	case timedOut:
		in.breaker.RecordFault()
		in.quarantineWarn(bs, fmt.Sprintf("%s watchdog: no result within %v", in.name, in.timeout))
		// The reaped goroutine still owns the old simulator; replace it.
		// Its decode-cache stats must not be read (the goroutine may
		// still be stepping it) — the fresh simulator restarts at zero.
		if s, err := in.make(); err == nil {
			in.s = s
			in.lastPre = exec.CacheStats{}
		} else {
			in.breaker.Trip()
		}
		return sim.Outcome{TimedOut: true}, true, false
	}
	in.notePredecode()
	in.breaker.RecordOK()
	if in.traps != nil {
		in.traps.Add(out.Traps)
	}
	return out, false, false
}

// runExternal is the external-column run path: one protocol round trip
// through the adapter, which internally retries with kill-and-restart
// and backoff. A surviving adapter fault feeds the breaker and is
// quarantined with its protocol context (last frame type, stderr tail);
// the case then carries no verdict. No clock reads here — the adapter
// owns its own wall-clock watchdog.
func (in *instance) runExternal(bs []byte) (sim.Outcome, bool, bool) {
	res, f := in.adapter.Run(in.family, in.config, bs)
	if f != nil {
		in.breaker.RecordFault()
		in.quarantineWarn(bs, fmt.Sprintf("%s adapter fault: %s", in.name, f.Detail()))
		if in.events != nil {
			in.events(obs.Event{Type: "adapter_fault", Detail: f.Reason})
		}
		return sim.Outcome{CrashMsg: "adapter: " + f.Reason}, true, true
	}
	in.breaker.RecordOK()
	if in.traps != nil {
		in.traps.Add(res.Traps)
	}
	return sim.Outcome{
		Signature: res.Signature,
		Crashed:   res.Crashed,
		TimedOut:  res.TimedOut,
		CrashMsg:  res.Msg,
		Insts:     res.Insts,
		Traps:     res.Traps,
	}, false, false
}

// close releases the instance's process resources (external adapters
// only; in-process simulators need no teardown).
func (in *instance) close() {
	if in.adapter != nil {
		in.adapter.Close()
	}
}

// notePredecode folds the simulator's decode-cache counter growth since
// the previous run into the run telemetry. Only called when the guarded
// run actually finished on this goroutine.
func (in *instance) notePredecode() {
	if in.pre == nil {
		return
	}
	ps, ok := in.s.(sim.PredecodeStatser)
	if !ok {
		return
	}
	cur := ps.PredecodeStats()
	prev := in.lastPre
	in.lastPre = cur
	if cur.Hits < prev.Hits || cur.Misses < prev.Misses || cur.Invalidations < prev.Invalidations {
		prev = exec.CacheStats{} // counters restarted: count from zero
	}
	in.pre.hits.Add(cur.Hits - prev.Hits)
	in.pre.misses.Add(cur.Misses - prev.Misses)
	in.pre.invals.Add(cur.Invalidations - prev.Invalidations)
}

func (in *instance) quarantineWarn(bs []byte, detail string) {
	if err := in.quar.Save(bs, detail); err != nil {
		fmt.Printf("compliance: quarantine: %v\n", err)
	}
}
