package compliance

import (
	"fmt"
	"time"

	"rvnegtest/internal/exec"
	"rvnegtest/internal/obs"
	"rvnegtest/internal/resilience"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/sut"
)

// instance is one simulator under the resilience harness: every run is
// guarded (panic isolation + wall-clock watchdog), consecutive harness
// faults feed a circuit breaker, and faulting inputs are quarantined.
// Each engine worker owns a private instance, so none of this needs
// locking.
type instance struct {
	name string
	// make builds a fresh simulator: called once up front and again after
	// a wedge, when the abandoned goroutine still owns the old one.
	make    func() (sim.Sim, error)
	s       sim.Sim
	breaker resilience.Breaker
	timeout time.Duration
	quar    *resilience.Quarantine
	// stExec, when non-nil, times every guarded run (set by the Runner
	// when telemetry is on; nil means no clock reads at all).
	stExec *obs.Histogram
	// pre, when non-nil, receives the simulator's decode-cache counter
	// growth after each completed run (nil means stats are never read).
	pre     *preCounters
	lastPre exec.CacheStats
	// traps, when non-nil, accumulates the executor trap counts of
	// completed runs (trap-family campaigns take thousands of deliberate
	// round trips; the counter makes that volume observable).
	traps *obs.Counter

	// batchSize, when >= 2, enables lockstep batching (in-process
	// columns only). batch is the live runner, built lazily from the
	// simulator and dropped on any batch-level harness fault (the
	// abandoned goroutine owns its lanes) and on scalar rebuilds (the
	// lanes belong to the replaced simulator's lineage); lastBatchPre
	// holds the per-lane counter snapshots behind the telemetry deltas.
	// batchOff latches when the simulator cannot batch at all.
	batchSize    int
	batch        sim.BatchRunner
	lastBatchPre []exec.CacheStats
	batchOff     bool

	// adapter, when non-nil, marks an external column: runs go through
	// the subprocess adapter protocol instead of an in-process simulator,
	// and the adapter owns its own watchdog/restart/backoff machinery.
	adapter *sut.Adapter
	// family/config are the RUN frame parameters for external columns.
	family byte
	config string
	// events, when non-nil, emits adapter lifecycle events (the caller
	// pre-binds sim/worker/config labels).
	events func(obs.Event)
}

func newInstance(name string, make func() (sim.Sim, error), threshold int, timeout time.Duration, quar *resilience.Quarantine) (*instance, error) {
	s, err := make()
	if err != nil {
		return nil, err
	}
	return &instance{
		name:    name,
		make:    make,
		s:       s,
		breaker: resilience.Breaker{Threshold: threshold},
		timeout: timeout,
		quar:    quar,
	}, nil
}

// run executes one case under the harness. harnessFault reports that the
// outcome was synthesized by the harness (isolated panic, reaped wedge,
// or failed adapter exchange) rather than returned by the simulator's
// own error handling — only those count against the breaker, because
// modeled Crashed/TimedOut outcomes are the measurements Phase B exists
// to take. noVerdict additionally marks adapter-level failures whose
// outcome carries no verdict at all: the case must be recorded as
// adapter-skipped, not as a crash finding (in-process instances never
// set it, keeping their cells byte-identical to the pre-adapter engine).
func (in *instance) run(bs []byte) (out sim.Outcome, harnessFault, noVerdict bool) {
	if in.adapter != nil {
		return in.runExternal(bs)
	}
	// Capture the simulator locally: after a wedge in.s is replaced while
	// the abandoned goroutine still holds the closure.
	s := in.s
	var t0 time.Time
	if in.stExec != nil {
		t0 = time.Now()
	}
	out, rec, timedOut := resilience.Guard(in.timeout, func() sim.Outcome {
		return s.Run(bs)
	})
	if in.stExec != nil {
		in.stExec.ObserveSince(t0)
	}
	switch {
	case rec != nil:
		in.notePredecode()
		in.breaker.RecordFault()
		in.quarantineWarn(bs, fmt.Sprintf("%s panic: %s\n\n%s", in.name, rec.Msg, rec.Stack))
		return sim.Outcome{Crashed: true, CrashMsg: rec.Msg}, true, false
	case timedOut:
		in.breaker.RecordFault()
		in.quarantineWarn(bs, fmt.Sprintf("%s watchdog: no result within %v", in.name, in.timeout))
		// The reaped goroutine still owns the old simulator; replace it.
		// Its decode-cache stats must not be read (the goroutine may
		// still be stepping it) — the fresh simulator restarts at zero.
		if s, err := in.make(); err == nil {
			in.s = s
			in.lastPre = exec.CacheStats{}
			in.batch = nil // lanes were cloned from the poisoned simulator's lineage
			in.lastBatchPre = nil
		} else {
			in.breaker.Trip()
		}
		return sim.Outcome{TimedOut: true}, true, false
	}
	in.notePredecode()
	in.breaker.RecordOK()
	if in.traps != nil {
		in.traps.Add(out.Traps)
	}
	return out, false, false
}

// runExternal is the external-column run path: one protocol round trip
// through the adapter, which internally retries with kill-and-restart
// and backoff. A surviving adapter fault feeds the breaker and is
// quarantined with its protocol context (last frame type, stderr tail);
// the case then carries no verdict. No clock reads here — the adapter
// owns its own wall-clock watchdog.
func (in *instance) runExternal(bs []byte) (sim.Outcome, bool, bool) {
	res, f := in.adapter.Run(in.family, in.config, bs)
	if f != nil {
		in.breaker.RecordFault()
		in.quarantineWarn(bs, fmt.Sprintf("%s adapter fault: %s", in.name, f.Detail()))
		if in.events != nil {
			in.events(obs.Event{Type: "adapter_fault", Detail: f.Reason})
		}
		return sim.Outcome{CrashMsg: "adapter: " + f.Reason}, true, true
	}
	in.breaker.RecordOK()
	if in.traps != nil {
		in.traps.Add(res.Traps)
	}
	return sim.Outcome{
		Signature: res.Signature,
		Crashed:   res.Crashed,
		TimedOut:  res.TimedOut,
		CrashMsg:  res.Msg,
		Insts:     res.Insts,
		Traps:     res.Traps,
	}, false, false
}

// close releases the instance's process resources (external adapters
// only; in-process simulators need no teardown).
func (in *instance) close() {
	if in.adapter != nil {
		in.adapter.Close()
	}
}

// notePredecode folds the simulator's decode-cache counter growth since
// the previous run into the run telemetry. Only called when the guarded
// run actually finished on this goroutine.
func (in *instance) notePredecode() {
	if in.pre == nil {
		return
	}
	ps, ok := in.s.(sim.PredecodeStatser)
	if !ok {
		return
	}
	cur := ps.PredecodeStats()
	prev := in.lastPre
	in.lastPre = cur
	if cur.Hits < prev.Hits || cur.Misses < prev.Misses ||
		cur.Invalidations < prev.Invalidations || cur.Fused < prev.Fused {
		prev = exec.CacheStats{} // counters restarted: count from zero
	}
	in.pre.hits.Add(cur.Hits - prev.Hits)
	in.pre.misses.Add(cur.Misses - prev.Misses)
	in.pre.invals.Add(cur.Invalidations - prev.Invalidations)
	in.pre.fused.Add(cur.Fused - prev.Fused)
}

// runBatch executes up to batchSize inputs in one lockstep batch.
// ok == false means batching was unavailable or the batch faulted at
// the harness level; the caller must rerun the inputs through the
// scalar path (in.run), which owns the quarantine/breaker/rebuild
// semantics — so a faulting case is classified exactly as it would be
// without batching, and the batch layer contributes nothing to the
// cell. A successful batch returns outcomes identical to sequential
// in.run calls with no harness faults, and records one breaker-OK per
// case just like the scalar path.
func (in *instance) runBatch(inputs [][]byte) (outs []sim.Outcome, ok bool) {
	if in.adapter != nil || in.batchSize < 2 || in.batchOff {
		return nil, false
	}
	if in.batch == nil {
		b, isB := in.s.(sim.Batcher)
		if !isB {
			in.batchOff = true
			return nil, false
		}
		runner, err := b.NewBatch(in.batchSize)
		if err != nil {
			in.batchOff = true
			return nil, false
		}
		in.batch = runner
		in.lastBatchPre = make([]exec.CacheStats, in.batchSize)
	}
	// The watchdog budget scales with the batch: every lane gets the
	// scalar per-case timeout.
	runner := in.batch
	to := in.timeout
	if to > 0 {
		to *= time.Duration(len(inputs))
	}
	var t0 time.Time
	if in.stExec != nil {
		t0 = time.Now()
	}
	outs, rec, timedOut := resilience.Guard(to, func() []sim.Outcome {
		return runner.RunHookedBatch(inputs, nil)
	})
	if in.stExec != nil {
		in.stExec.ObserveSince(t0)
	}
	if rec != nil || timedOut {
		// The runner is poisoned: its abandoned goroutine owns the lanes,
		// whose stats must never be read again. in.s itself never ran, so
		// the scalar fallback reruns the inputs on it directly.
		in.batch = nil
		in.lastBatchPre = nil
		return nil, false
	}
	for _, out := range outs {
		in.breaker.RecordOK()
		if in.traps != nil {
			in.traps.Add(out.Traps)
		}
	}
	in.notePredecodeBatch(len(inputs))
	return outs, true
}

// notePredecodeBatch folds the first n lanes' decode-cache counter
// growth since their last committed snapshot into the run telemetry.
// Lane counters are cumulative for the life of the runner, so the
// deltas are non-negative; the clamp mirrors notePredecode anyway so a
// published counter can never go backwards. Only called after a
// successful batch — an abandoned runner's counters are never read.
func (in *instance) notePredecodeBatch(n int) {
	if in.pre == nil || in.batch == nil {
		return
	}
	for i := 0; i < n; i++ {
		cur := in.batch.LanePredecodeStats(i)
		prev := in.lastBatchPre[i]
		in.lastBatchPre[i] = cur
		if cur.Hits < prev.Hits || cur.Misses < prev.Misses ||
			cur.Invalidations < prev.Invalidations || cur.Fused < prev.Fused {
			prev = exec.CacheStats{}
		}
		in.pre.hits.Add(cur.Hits - prev.Hits)
		in.pre.misses.Add(cur.Misses - prev.Misses)
		in.pre.invals.Add(cur.Invalidations - prev.Invalidations)
		in.pre.fused.Add(cur.Fused - prev.Fused)
	}
}

func (in *instance) quarantineWarn(bs []byte, detail string) {
	if err := in.quar.Save(bs, detail); err != nil {
		fmt.Printf("compliance: quarantine: %v\n", err)
	}
}
