package compliance

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rvnegtest/internal/isa"
	"rvnegtest/internal/sig"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/template"
)

func enc(inst isa.Inst) uint32 { return isa.MustEncode(inst) }

func stream(words ...uint32) []byte {
	var out []byte
	for _, w := range words {
		out = append(out, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return out
}

// handSuite contains one trigger per seeded defect plus clean cases.
func handSuite() *Suite {
	return &Suite{
		Origin: "hand-written bug triggers",
		Cases: [][]byte{
			stream(enc(isa.Inst{Op: isa.OpADD, Rd: 5, Rs1: 1, Rs2: 2})), // clean
			stream(0x00000073),        // ECALL (Spike)
			stream(0x00000073 | 5<<7), // loose ECALL mask (VP)
			{0x02, 0x40, 0, 0},        // c.lwsp x0 (VP/GRIFT, C configs)
			stream(enc(isa.Inst{Op: isa.OpJAL, Rd: 1, Imm: 6})),                    // misaligned jump (GRIFT, no-C configs)
			stream(enc(isa.Inst{Op: isa.OpFADDS, Rd: 1, Rs1: 2, Rs2: 3, RM: 0})),   // F on IMC (GRIFT)
			stream(enc(isa.Inst{Op: isa.OpSCW, Rd: 5, Rs1: 30, Rs2: 1})),           // SC.W (GRIFT, GC)
			stream(enc(isa.Inst{Op: isa.OpADD, Rd: 5, Rs1: 1, Rs2: 2}) | 0x13<<25), // loose funct7 (sail)
			{0x00, 0x84, 0, 0}, // sail crash pattern (C configs)
			stream(0x0000505b), // sail 32-bit crash pattern (all configs)
			stream(0x0000400b), // custom-0 (OVPSim reference defect)
			stream(0xffffffff), // plain illegal: everyone agrees
		},
	}
}

// skippingSuite mixes clean cases with ones that crash or hang the
// sail-riscv model — used with Sail as the *reference* to exercise the
// skip-accounting path.
func skippingSuite() *Suite {
	return &Suite{
		Origin: "reference-failure triggers",
		Cases: [][]byte{
			stream(enc(isa.Inst{Op: isa.OpADD, Rd: 5, Rs1: 1, Rs2: 2})), // clean
			stream(0x0000505b), // sail 32-bit crash pattern
			stream(enc(isa.Inst{Op: isa.OpADD, Rd: 6, Rs1: 2, Rs2: 3})), // clean
			stream(0x00002063 | isa.PutImmB(-4)&^(7<<12)),               // sail non-termination
			stream(0xffffffff), // clean illegal
			stream(0x0000505b), // second crash
			stream(enc(isa.Inst{Op: isa.OpADD, Rd: 7, Rs1: 3, Rs2: 4})), // clean
		},
	}
}

func TestTableIShape(t *testing.T) {
	rep, err := DefaultRunner().Run(handSuite())
	if err != nil {
		t.Fatal(err)
	}
	cell := func(cfg isa.Config, name string) Cell {
		for i, c := range rep.Configs {
			if c == cfg {
				for j, s := range rep.Sims {
					if s == name {
						return rep.Cells[i][j]
					}
				}
			}
		}
		t.Fatalf("cell %v/%s missing", cfg, name)
		return Cell{}
	}

	// "/" cells: VP and sail do not support RV32GC.
	if cell(isa.RV32GC, "VP").Supported || cell(isa.RV32GC, "sail-riscv").Supported {
		t.Error("VP/sail must be unsupported on RV32GC")
	}
	if cell(isa.RV32GC, "VP").String() != "/" {
		t.Errorf("unsupported cell renders %q", cell(isa.RV32GC, "VP").String())
	}

	// Every supported simulator shows mismatches on every configuration
	// (the custom-opcode defect of the reference alone guarantees that).
	for i, cfg := range rep.Configs {
		for j, name := range rep.Sims {
			c := rep.Cells[i][j]
			if !c.Supported {
				continue
			}
			if c.Mismatches == 0 {
				t.Errorf("%v/%s: no mismatches", cfg, name)
			}
		}
	}

	// sail crashes on C configurations.
	if cell(isa.RV32IMC, "sail-riscv").Crashes == 0 {
		t.Error("sail must crash on RV32IMC")
	}
	if cell(isa.RV32IMC, "sail-riscv").String() != "crash" {
		t.Errorf("sail cell renders %q", cell(isa.RV32IMC, "sail-riscv").String())
	}
	// ...and on RV32I via the 32-bit malformed pattern (Table I reports
	// "crash" for both rows).
	if cell(isa.RV32I, "sail-riscv").Crashes == 0 {
		t.Error("sail must crash on RV32I too")
	}

	// GRIFT's IMC misconfiguration makes IMC counts exceed I counts.
	if !(cell(isa.RV32IMC, "GRIFT").Mismatches > cell(isa.RV32I, "GRIFT").Mismatches) {
		t.Errorf("GRIFT: IMC=%d I=%d, want IMC > I",
			cell(isa.RV32IMC, "GRIFT").Mismatches, cell(isa.RV32I, "GRIFT").Mismatches)
	}

	// The render contains the header and a "/" and a "crash".
	text := rep.Render()
	for _, want := range []string{"riscvOVPsim", "RV32I", "RV32IMC", "RV32GC", "/", "crash"} {
		if !strings.Contains(text, want) {
			t.Errorf("render lacks %q:\n%s", want, text)
		}
	}
	if findings := rep.BugFindings(); !strings.Contains(findings, "GRIFT") {
		t.Errorf("findings lack GRIFT:\n%s", findings)
	}
}

func TestCleanSimulatorHasOnlyReferenceDefectMismatches(t *testing.T) {
	// Running the *reference model* as a SUT against the OVPSim reference:
	// every mismatch is the reference's own custom-opcode defect.
	r := DefaultRunner()
	r.SUTs = []*sim.Variant{sim.Reference}
	suite := handSuite()
	rep, err := r.Run(suite)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Configs {
		c := rep.Cells[i][0]
		if c.Mismatches != 1 {
			t.Errorf("%v: reference-vs-ovpsim mismatches = %d, want exactly the custom-opcode case", rep.Configs[i], c.Mismatches)
		}
		if c.Categories[CatTrapCause] != 1 {
			t.Errorf("%v: category histogram %v", rep.Configs[i], c.Categories)
		}
	}
}

func TestClassify(t *testing.T) {
	ref := make([]uint32, 96)
	got := make([]uint32, 96)
	copy(got, ref)
	got[30] = 11
	if c := Classify(ref, got); c != CatTrapCause {
		t.Errorf("trap cause: %v", c)
	}
	got = make([]uint32, 96)
	got[26] = 1
	if c := Classify(ref, got); c != CatCompletionMarker {
		t.Errorf("completion marker: %v", c)
	}
	got = make([]uint32, 96)
	got[1] = 5
	if c := Classify(ref, got); c != CatRegisterValue {
		t.Errorf("register value: %v", c)
	}
	got = make([]uint32, 96)
	got[40] = 5
	if c := Classify(ref, got); c != CatFPValue {
		t.Errorf("fp value: %v", c)
	}
	if c := Classify(ref, ref[:10]); c != CatMissing {
		t.Errorf("missing: %v", c)
	}

	// Regression: word 31 (the sentinel slot on the integer side of the
	// signature) is a register-class diff. It used to set no flag at all,
	// so an x31-only diff classified correctly only by fall-through and a
	// {31, fp} diff was misfiled as fp-value.
	got = make([]uint32, 96)
	got[31] = 5
	if c := Classify(ref, got); c != CatRegisterValue {
		t.Errorf("word-31-only diff: %v, want register-value", c)
	}
	got = make([]uint32, 96)
	got[31] = 5
	got[33] = 7
	if c := Classify(ref, got); c != CatRegisterValue {
		t.Errorf("word 31 + fp diff: %v, want register-value", c)
	}
	// x26 and the trap-cause word keep their priority over word 31.
	got = make([]uint32, 96)
	got[31] = 5
	got[30] = 2
	if c := Classify(ref, got); c != CatTrapCause {
		t.Errorf("word 31 + cause diff: %v, want trap-cause", c)
	}
}

// TestSkippedAccounting: cases whose reference run crashes or times out
// are excluded from the comparison but must be *counted* — on the cells,
// on the per-config report totals, and in the render — instead of being
// silently absorbed into an unchanged Cases denominator.
func TestSkippedAccounting(t *testing.T) {
	suite := skippingSuite()
	r := &Runner{Ref: sim.Sail, SUTs: []*sim.Variant{sim.Reference}, Configs: []isa.Config{isa.RV32I}}
	rep, err := r.Run(suite)
	if err != nil {
		t.Fatal(err)
	}
	// Two crash cases + one non-terminating case fail on the sail
	// reference.
	if len(rep.Skipped) != 1 || rep.Skipped[0] != 3 {
		t.Fatalf("report skipped = %v, want [3]", rep.Skipped)
	}
	cell := rep.Cells[0][0]
	if cell.Skipped != 3 {
		t.Errorf("cell skipped = %d, want 3", cell.Skipped)
	}
	if rep.Cases != len(suite.Cases) {
		t.Errorf("cases = %d", rep.Cases)
	}
	text := rep.Render()
	if !strings.Contains(text, "3 of 7 cases skipped") {
		t.Errorf("render does not surface skips:\n%s", text)
	}
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"skipped": 3`) {
		t.Errorf("JSON does not surface skips:\n%s", raw)
	}

	// A run without reference failures renders no skip line.
	clean, err := DefaultRunner().Run(handSuite())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(clean.Render(), "skipped") {
		t.Errorf("clean run mentions skips:\n%s", clean.Render())
	}
	for _, n := range clean.Skipped {
		if n != 0 {
			t.Errorf("clean run skipped = %v", clean.Skipped)
		}
	}
}

func TestSuiteSerialization(t *testing.T) {
	s := handSuite()
	text := s.Format()
	back, err := ParseSuite(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cases) != len(s.Cases) || back.Origin != s.Origin {
		t.Fatalf("roundtrip: %d cases, origin %q", len(back.Cases), back.Origin)
	}
	for i := range s.Cases {
		if string(back.Cases[i]) != string(s.Cases[i]) {
			t.Errorf("case %d differs", i)
		}
	}
	if _, err := ParseSuite("zz not hex"); err == nil {
		t.Error("bad hex must fail")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "suite.txt")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSuite(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Cases) != len(s.Cases) {
		t.Errorf("loaded %d cases", len(loaded.Cases))
	}
}

func TestWriteASM(t *testing.T) {
	s := &Suite{Cases: [][]byte{stream(0xffffffff), stream(0x00000073)}}
	dir := t.TempDir()
	if err := s.WriteASM(dir, template.DefaultLayout); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "test_00000.S"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), ".word 0xffffffff") {
		t.Error("exported ASM lacks the bytestream word")
	}
	if !strings.Contains(string(b), "trap_handler:") {
		t.Error("exported ASM lacks the template")
	}
}

func TestDontCareComparison(t *testing.T) {
	// The section VI extension: a don't-care rule suppresses a mismatch.
	r := DefaultRunner()
	r.SUTs = []*sim.Variant{sim.Spike}
	r.Configs = []isa.Config{isa.RV32I}
	suite := &Suite{Cases: [][]byte{stream(0x00000073)}}
	rep, err := r.Run(suite)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cells[0][0].Mismatches != 1 {
		t.Fatalf("spike ecall mismatch missing: %+v", rep.Cells[0][0])
	}
	// Masking out the completion marker hides the defect.
	r.DontCare = &sig.DontCare{Rules: []sig.Rule{{Word: 26, Kind: sig.CondAlways}}}
	rep, err = r.Run(suite)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cells[0][0].Mismatches != 0 {
		t.Errorf("don't-care did not suppress: %+v", rep.Cells[0][0])
	}
}

// TestRunnerDeterministic: the same suite always yields the identical
// report (crash capture and counters have no hidden state).
func TestRunnerDeterministic(t *testing.T) {
	suite := handSuite()
	a, err := DefaultRunner().Run(suite)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DefaultRunner().Run(suite)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cells {
		for j := range a.Cells[i] {
			ca, cb := a.Cells[i][j], b.Cells[i][j]
			if ca.Mismatches != cb.Mismatches || ca.Crashes != cb.Crashes || ca.Timeouts != cb.Timeouts {
				t.Errorf("cell %d/%d differs between runs: %+v vs %+v", i, j, ca, cb)
			}
		}
	}
}

func TestAnalyzeSuite(t *testing.T) {
	s := &Suite{Cases: [][]byte{
		stream(enc(isa.Inst{Op: isa.OpADD, Rd: 5, Rs1: 1, Rs2: 2})), // valid I
		stream(0xffffffff), // illegal
		stream(enc(isa.Inst{Op: isa.OpMUL, Rd: 5, Rs1: 1, Rs2: 2}), 0xffffffff), // M + illegal
		{0x7d, 0x15, 0, 0}, // c.addi (compressed) + zero halfword (illegal)
		stream(enc(isa.Inst{Op: isa.OpFADDD, Rd: 1, Rs1: 2, Rs2: 3, RM: 0})),
	}}
	st := AnalyzeSuite(s)
	if st.Cases != 5 {
		t.Fatalf("cases = %d", st.Cases)
	}
	if st.CasesWithIllegal != 3 {
		t.Errorf("cases with illegal = %d, want 3", st.CasesWithIllegal)
	}
	if st.CasesWithExt[isa.ExtM] != 1 || st.CasesWithExt[isa.ExtD] != 1 {
		t.Errorf("extension census: %v", st.CasesWithExt)
	}
	if st.CompressedWords < 2 {
		t.Errorf("compressed words = %d", st.CompressedWords)
	}
	if st.OpsCovered < 3 || st.OpsCovered > 6 {
		t.Errorf("ops covered = %d", st.OpsCovered)
	}
	out := st.String()
	for _, want := range []string{"5 cases", "illegal", "instructions covered"} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q:\n%s", want, out)
		}
	}
	// The official positive suite has zero negative payload; a fuzzer
	// suite has plenty (checked in the fuzz package's stats usage).
	official, err := OfficialStyleSuite(isa.RV32GC)
	if err != nil {
		t.Fatal(err)
	}
	pos := AnalyzeSuite(official)
	if pos.IllegalWords != 0 || pos.CasesWithIllegal != 0 {
		t.Errorf("positive suite has negative payload: %+v", pos)
	}
	if pos.OpsCovered < 100 {
		t.Errorf("positive suite covers only %d ops", pos.OpsCovered)
	}
}

func TestReportJSON(t *testing.T) {
	rep, err := DefaultRunner().Run(handSuite())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back struct {
		Reference string `json:"reference"`
		Cases     int    `json:"cases"`
		Rows      []struct {
			ISA   string `json:"isa"`
			Cells []struct {
				Simulator  string `json:"simulator"`
				Supported  bool   `json:"supported"`
				Mismatches int    `json:"mismatches"`
				Crashes    int    `json:"crashes"`
			} `json:"cells"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, raw)
	}
	if back.Reference != "riscvOVPsim" || len(back.Rows) != 3 {
		t.Fatalf("structure: %+v", back)
	}
	for i, row := range back.Rows {
		for j, cell := range row.Cells {
			want := rep.Cells[i][j]
			if cell.Mismatches != want.Mismatches || cell.Crashes != want.Crashes || cell.Supported != want.Supported {
				t.Errorf("%s/%s: JSON %+v != report %+v", row.ISA, cell.Simulator, cell, want)
			}
		}
	}
}
