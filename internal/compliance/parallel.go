// The sharded parallel compliance engine.
//
// Phase B is embarrassingly parallel: every test-case execution owns a
// pre-loaded simulator image, so case i on clone A never observes case j
// on clone B. The engine shards suite.Cases into one contiguous
// index range per worker and gives every worker a private clone of the
// reference and of each supported SUT for the configuration (the paper's
// "pre-loaded template" setup, cloned per worker instead of re-assembled).
//
// Determinism argument (the report is bit-identical for every worker
// count): each worker computes its shard's reference outcomes and then
// its shard's per-SUT partial Cells; a shard's comparison reads only the
// reference outcomes the same worker just produced, so there is no
// cross-shard data flow at all. The partial cells are merged in shard
// order — and shards are contiguous ascending case ranges, so counter
// sums and example-index concatenation reproduce exactly the serial
// engine's case-order traversal. Reference runs overlap SUT runs across
// workers (worker 0 can be comparing while worker 1 still generates
// references), which is safe for the same reason.
package compliance

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"rvnegtest/internal/isa"
	"rvnegtest/internal/obs"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/template"
)

// WorkerStats is one worker's share of a Run.
type WorkerStats struct {
	// Execs counts the simulator executions (reference + SUT runs) the
	// worker performed. Skipped cases do not execute.
	Execs int
}

// RunStats summarizes the execution engine's work for one Runner.Run.
type RunStats struct {
	Workers     int
	Execs       int // total simulator executions across all workers
	Duration    time.Duration
	CasesPerSec float64 // case executions per wall-clock second
	PerWorker   []WorkerStats
}

// Clone returns a deep copy of the stats: PerWorker is the only
// reference field, and handing out the live slice would let a holder
// observe (or race with) the accounting of a subsequent Run.
func (s RunStats) Clone() RunStats {
	s.PerWorker = append([]WorkerStats(nil), s.PerWorker...)
	return s
}

// StatsSnapshot returns a copy of the most recent Run's stats that later
// runs cannot mutate (the aliasing-audit companion of Fuzzer.Stats).
func (r *Runner) StatsSnapshot() RunStats {
	return r.Stats.Clone()
}

// String renders a one-line throughput summary plus the per-worker
// execution counts.
func (s RunStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d workers, %d executions in %v (%.0f cases/s)",
		s.Workers, s.Execs, s.Duration.Round(time.Millisecond), s.CasesPerSec)
	if len(s.PerWorker) > 1 {
		b.WriteString("; per-worker execs:")
		for _, w := range s.PerWorker {
			fmt.Fprintf(&b, " %d", w.Execs)
		}
	}
	return b.String()
}

// ProgressEvent reports one completed shard of work: the reference pass
// (Sim == "") or one SUT pass over the worker's case range [Lo, Hi).
type ProgressEvent struct {
	Config isa.Config
	Sim    string
	Worker int
	Lo, Hi int
	// Execs is the number of cases actually executed in the shard
	// (excludes skipped cases).
	Execs int
}

// workerCount resolves the Workers knob: <=1 serial, N parallel,
// negative = one worker per available CPU.
func (r *Runner) workerCount() int {
	if r.Workers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if r.Workers == 0 {
		return 1
	}
	return r.Workers
}

// addExecs accumulates execution counts into the per-worker stats.
func (r *Runner) addExecs(worker, n int) {
	r.Stats.PerWorker[worker].Execs += n
	r.Stats.Execs += n
	r.tel.addExecs(n)
}

// emitProgress invokes the Progress hook if set (single-goroutine path).
func (r *Runner) emitProgress(ev ProgressEvent) {
	if r.Progress != nil {
		r.Progress(ev)
	}
}

// shard is a contiguous [Lo, Hi) range of case indexes.
type shard struct{ lo, hi int }

// shardRanges splits n cases into `workers` near-equal contiguous ranges
// (the first n%workers shards are one case longer). Empty shards are
// produced when workers > n, keeping worker indexes stable.
func shardRanges(n, workers int) []shard {
	out := make([]shard, workers)
	base, rem := n/workers, n%workers
	lo := 0
	for w := range out {
		size := base
		if w < rem {
			size++
		}
		out[w] = shard{lo, lo + size}
		lo += size
	}
	return out
}

// runConfigParallel is the sharded engine (Workers > 1) for one
// configuration row. Every worker owns private harnessed instances of
// the reference and each supported SUT — breakers and watchdog rebuilds
// included — so the resilience machinery needs no locking.
func (r *Runner) runConfigParallel(ctx context.Context, suite *Suite, cfg isa.Config, workers int) ([]Cell, int, error) {
	maxEx := r.maxExamples()
	shards := shardRanges(len(suite.Cases), workers)

	// The Progress hook is documented as never being called
	// concurrently; serialize emissions from the worker goroutines.
	var progressMu sync.Mutex
	emit := func(ev ProgressEvent) {
		if r.Progress == nil {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		r.Progress(ev)
	}

	trapBase := suite.trapBase(cfg)
	p := template.PlatformFor(suite.Family, cfg)
	refIns, err := r.newInstances(r.Ref, p, workers)
	if err != nil {
		return nil, 0, fmt.Errorf("compliance: reference %s on %v: %w", r.Ref.Name, cfg, err)
	}
	// suts[j] is nil for unsupported simulators, else one instance per
	// worker.
	suts := make([][]*instance, len(r.cols))
	defer func() {
		for _, ins := range suts {
			closeInstances(ins)
		}
	}()
	for j := range r.cols {
		col := &r.cols[j]
		if !col.supports(cfg, suite.Family) {
			continue
		}
		ins, err := r.newColInstances(col, p, workers)
		if err != nil {
			return nil, 0, fmt.Errorf("compliance: %s on %v: %w", col.name, cfg, err)
		}
		suts[j] = ins
	}

	refOuts := make([]sim.Outcome, len(suite.Cases))
	partials := make([][]Cell, workers) // partials[w][j]
	execs := make([]int, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := shards[w]
			// Reference pass for this shard. Other workers may
			// already be in their SUT passes — safe, because a
			// shard's comparisons read only its own refOuts range.
			if err := runRefRange(ctx, refIns[w], suite.Cases, refOuts, sh.lo, sh.hi); err != nil {
				errs[w] = err
				return
			}
			execs[w] += sh.hi - sh.lo
			emit(ProgressEvent{Config: cfg, Worker: w, Lo: sh.lo, Hi: sh.hi, Execs: sh.hi - sh.lo})
			r.tel.event(obs.Event{Type: "shard_done", Config: cfg.String(), Sim: r.Ref.Name,
				Worker: w, Lo: sh.lo, Hi: sh.hi, Execs: uint64(sh.hi - sh.lo)})

			cells := make([]Cell, len(r.cols))
			for j := range r.cols {
				if suts[j] == nil {
					continue
				}
				cells[j].Supported = true
				var t0 time.Time
				if r.tel != nil {
					t0 = time.Now()
				}
				n, err := runCaseRange(ctx, &cells[j], refOuts, suts[j][w], suite.Cases,
					sh.lo, sh.hi, maxEx, trapBase, r.DontCare, r.tel.compareHist())
				if err != nil {
					errs[w] = err
					return
				}
				execs[w] += n
				emit(ProgressEvent{Config: cfg, Sim: r.cols[j].name, Worker: w, Lo: sh.lo, Hi: sh.hi, Execs: n})
				if r.tel != nil {
					r.tel.event(obs.Event{Type: "cell_done", Config: cfg.String(), Sim: r.cols[j].name,
						Worker: w, Lo: sh.lo, Hi: sh.hi, Execs: uint64(n), DurNS: time.Since(t0).Nanoseconds()})
				}
			}
			partials[w] = cells
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}

	// Deterministic merge: shard order equals ascending case order.
	row := make([]Cell, len(r.cols))
	for j := range r.cols {
		if suts[j] == nil {
			continue
		}
		row[j].Supported = true
		for w := 0; w < workers; w++ {
			row[j].merge(&partials[w][j], maxEx)
		}
	}
	for w, n := range execs {
		r.addExecs(w, n)
	}
	return row, countSkipped(refOuts), nil
}
