package compliance

import (
	"fmt"

	"rvnegtest/internal/isa"
)

// OfficialStyleSuite builds a directed, hand-written-style positive test
// suite for one ISA configuration, modelling the official RISC-V
// compliance suite the paper complements: per-instruction test cases with
// deliberately chosen operands (corner values come from the template's
// register initialization), including the A-extension LR/SC sequence that
// checks a store-conditional FAILS without a reservation — the case the
// paper identifies as "the only bug found by the official compliance
// test-suite" (GRIFT's SC.W).
//
// Like the official suite, it is per-extension: instructions outside cfg
// are not emitted (compare torture.Suite and the fuzzer's single
// all-configuration suite).
func OfficialStyleSuite(cfg isa.Config) (*Suite, error) {
	s := &Suite{Origin: fmt.Sprintf("official-style directed positive suite for %v", cfg)}
	var encErr error
	add := func(insts ...isa.Inst) {
		var bs []byte
		for _, inst := range insts {
			w, err := isa.Encode(inst)
			if err != nil {
				if encErr == nil {
					encErr = fmt.Errorf("compliance: official-style suite: encoding %s: %w", inst.Op, err)
				}
				return
			}
			bs = append(bs, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
		}
		s.Cases = append(s.Cases, bs)
	}

	// Operand sets drawing on the template's init values: x1=1, x2=-1,
	// x3=MAX, x4=MIN, x5=2, x0=0.
	regPairs := [][2]isa.Reg{{1, 2}, {3, 4}, {0, 1}, {4, 4}, {2, 3}}

	for i := range isa.Instructions {
		in := &isa.Instructions[i]
		if !cfg.Has(in.Ext) || in.Flags.Is(isa.FlagForbidden) || in.Flags.Is(isa.FlagTrap) {
			continue
		}
		switch in.Fmt {
		case isa.FmtR:
			for _, p := range regPairs {
				add(isa.Inst{Op: in.Op, Rd: 6, Rs1: p[0], Rs2: p[1]})
			}
			// rd == rs1 (update-order check).
			add(isa.Inst{Op: in.Op, Rd: 7, Rs1: 7, Rs2: 1})
		case isa.FmtI:
			if in.Flags.Is(isa.FlagLoad) {
				for _, off := range []int32{0, 4, -8, 2040, -2048} {
					off -= off % int32(in.MemSize) // keep size-aligned
					add(isa.Inst{Op: in.Op, Rd: 6, Rs1: 30, Imm: off})
				}
			} else {
				for _, imm := range []int32{0, 1, -1, 2047, -2048} {
					add(isa.Inst{Op: in.Op, Rd: 6, Rs1: 1, Imm: imm})
				}
				add(isa.Inst{Op: in.Op, Rd: 6, Rs1: 6, Imm: 5})
			}
		case isa.FmtIShift:
			for _, sh := range []int32{0, 1, 31} {
				add(isa.Inst{Op: in.Op, Rd: 6, Rs1: 4, Imm: sh})
			}
		case isa.FmtS:
			for _, off := range []int32{0, -16, 2040} {
				off -= off % int32(in.MemSize)
				add(
					isa.Inst{Op: in.Op, Rs1: 31, Rs2: 5, Imm: off},
					// Read it back through the other pointer for a
					// self-checking store.
					isa.Inst{Op: isa.OpLW, Rd: 8, Rs1: 30, Imm: off &^ 3},
				)
			}
		case isa.FmtB:
			// Taken and not-taken variants over a skip slot.
			for _, p := range regPairs[:3] {
				add(
					isa.Inst{Op: in.Op, Rs1: p[0], Rs2: p[1], Imm: 8},
					isa.Inst{Op: isa.OpADDI, Rd: 9, Rs1: 9, Imm: 1},
				)
			}
		case isa.FmtU:
			for _, imm := range []int32{0, int32(0x7ffff000), int32(-1 << 31)} {
				add(isa.Inst{Op: in.Op, Rd: 6, Imm: imm})
			}
		case isa.FmtJ:
			add(
				isa.Inst{Op: in.Op, Rd: 6, Imm: 8},
				isa.Inst{Op: isa.OpADDI, Rd: 9, Rs1: 9, Imm: 1},
			)
		case isa.FmtAMO:
			switch in.Op {
			case isa.OpLRW:
				add(isa.Inst{Op: isa.OpLRW, Rd: 6, Rs1: 30})
			case isa.OpSCW:
				// Paired LR/SC: must succeed (rd = 0, store performed).
				add(
					isa.Inst{Op: isa.OpLRW, Rd: 6, Rs1: 30},
					isa.Inst{Op: isa.OpSCW, Rd: 7, Rs1: 30, Rs2: 5},
					isa.Inst{Op: isa.OpLW, Rd: 8, Rs1: 30, Imm: 0},
				)
				// SC without a reservation: must FAIL (rd = 1, memory
				// untouched). This directed case is what catches GRIFT's
				// SC.W defect — per the paper, the only defect the
				// official suite finds.
				add(
					isa.Inst{Op: isa.OpSCW, Rd: 7, Rs1: 30, Rs2: 5},
					isa.Inst{Op: isa.OpLW, Rd: 8, Rs1: 30, Imm: 0},
				)
			default:
				add(
					isa.Inst{Op: in.Op, Rd: 6, Rs1: 31, Rs2: 5},
					isa.Inst{Op: isa.OpLW, Rd: 8, Rs1: 31, Imm: 0},
				)
			}
		case isa.FmtR4:
			add(isa.Inst{Op: in.Op, Rd: 4, Rs1: 8, Rs2: 9, Rs3: 10, RM: 0})
			add(isa.Inst{Op: in.Op, Rd: 5, Rs1: 14, Rs2: 8, Rs3: 12, RM: 1})
		case isa.FmtRrm:
			for _, p := range [][2]isa.Reg{{8, 9}, {12, 13}, {14, 14}, {16, 8}} {
				add(isa.Inst{Op: in.Op, Rd: 4, Rs1: p[0], Rs2: p[1], RM: 0})
			}
		case isa.FmtR2rm:
			for _, r := range []isa.Reg{8, 10, 14, 16} {
				add(isa.Inst{Op: in.Op, Rd: 4, Rs1: r, RM: 0})
			}
		case isa.FmtR2:
			for _, r := range []isa.Reg{8, 12, 14} {
				add(isa.Inst{Op: in.Op, Rd: 4, Rs1: r})
			}
		case isa.FmtNone, isa.FmtFence:
			add(isa.Inst{Op: in.Op})
		}
	}
	if encErr != nil {
		return nil, encErr
	}
	return s, nil
}
