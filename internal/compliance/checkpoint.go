package compliance

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rvnegtest/internal/resilience"
	"rvnegtest/internal/template"
)

// Phase B checkpoints at configuration-row granularity: each completed
// Table I row is appended to state.json (atomically rewritten), so an
// interrupted run redoes at most one row. Row results are deterministic
// for a fixed worker count, so a resumed report is identical to an
// uninterrupted one. The checkpoint is bound to the suite content (by
// hash) and to the runner parameters that shape outcomes (by
// fingerprint); worker count is deliberately excluded — it changes the
// schedule, not the result.

const (
	complianceFormat  = "rvcompliance-checkpoint"
	complianceVersion = 1
	complianceState   = "state.json"
)

// savedRow is one persisted Table I row.
type savedRow struct {
	Config  string `json:"config"`
	Cells   []Cell `json:"cells"`
	Skipped int    `json:"skipped"`
}

// campaignCheckpoint is the state.json payload.
type campaignCheckpoint struct {
	Fingerprint string     `json:"fingerprint"`
	SuiteSHA256 string     `json:"suite_sha256"`
	Rows        []savedRow `json:"rows"`
}

// fingerprint captures the runner parameters a resumed run must share.
func (r *Runner) fingerprint() string {
	s := fmt.Sprintf("ref=%s suts=", r.Ref.Name)
	for _, v := range r.SUTs {
		s += v.Name + ","
	}
	s += " configs="
	for _, cfg := range r.Configs {
		s += cfg.String() + ","
	}
	s += fmt.Sprintf(" dontcare=%t maxex=%d timeout=%v breaker=%d",
		r.DontCare != nil, r.maxExamples(), r.CaseTimeout, r.breakerThreshold())
	// External columns extend the fingerprint only when present, so every
	// pre-existing checkpoint of a built-in-only campaign stays valid.
	if len(r.External) > 0 {
		s += " externals="
		for i := range r.External {
			sp := &r.External[i]
			s += sp.Name + "=" + strings.Join(sp.Argv, " ") + ","
		}
		s += fmt.Sprintf(" halfopen=%d", r.halfOpenAfter())
	}
	return s
}

func suiteHash(suite *Suite) string {
	h := sha256.New()
	// The family shapes every outcome (template, signature layout), so a
	// checkpoint must never resume across families. Only the trap family
	// writes a marker: user-family hashes — and therefore existing
	// user-campaign checkpoints — stay valid.
	if suite.Family == template.FamilyTrap {
		h.Write([]byte("family=trap\n"))
	}
	for _, bs := range suite.Cases {
		var n [4]byte
		n[0] = byte(len(bs))
		n[1] = byte(len(bs) >> 8)
		n[2] = byte(len(bs) >> 16)
		n[3] = byte(len(bs) >> 24)
		h.Write(n[:])
		h.Write(bs)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func (c *campaignCheckpoint) save(dir string) error {
	return resilience.SaveJSON(filepath.Join(dir, complianceState), complianceFormat, complianceVersion, c)
}

// loadOrInitCheckpoint resumes an existing checkpoint after validating it
// against the suite and runner, or initializes an empty one.
// HasCheckpoint reports whether dir holds a saved campaign checkpoint.
func HasCheckpoint(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, complianceState))
	return err == nil
}

func loadOrInitCheckpoint(r *Runner, suite *Suite, dir string) (*campaignCheckpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	fp := r.fingerprint()
	sha := suiteHash(suite)
	path := filepath.Join(dir, complianceState)
	if _, err := os.Stat(path); err != nil {
		return &campaignCheckpoint{Fingerprint: fp, SuiteSHA256: sha}, nil
	}
	var ckpt campaignCheckpoint
	if _, err := resilience.LoadJSON(path, complianceFormat, complianceVersion, &ckpt); err != nil {
		return nil, err
	}
	if ckpt.Fingerprint != fp {
		return nil, fmt.Errorf("compliance: checkpoint is for a different runner:\n  checkpoint: %s\n  requested:  %s", ckpt.Fingerprint, fp)
	}
	if ckpt.SuiteSHA256 != sha {
		return nil, fmt.Errorf("compliance: checkpoint is for a different suite (hash %.12s, want %.12s)", ckpt.SuiteSHA256, sha)
	}
	if len(ckpt.Rows) > len(r.Configs) {
		return nil, fmt.Errorf("compliance: checkpoint has %d rows for %d configurations", len(ckpt.Rows), len(r.Configs))
	}
	return &ckpt, nil
}
