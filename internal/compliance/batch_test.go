package compliance

import (
	"context"
	"reflect"
	"testing"
	"time"

	"rvnegtest/internal/obs"
	"rvnegtest/internal/sim"
)

// TestComplianceBatchReportBitIdentical is the compliance-side
// determinism guarantee of batched lockstep execution: for every worker
// count and batch size, the rendered table and the JSON report are
// byte-identical to the scalar engine's.
func TestComplianceBatchReportBitIdentical(t *testing.T) {
	suite := handSuite()
	ref := DefaultRunner()
	want, err := ref.Run(suite)
	if err != nil {
		t.Fatal(err)
	}
	wantText := want.Render()
	wantJSON, err := want.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		for _, batch := range []int{4, 8} {
			r := DefaultRunner()
			r.Workers = workers
			r.Batch = batch
			got, err := r.Run(suite)
			if err != nil {
				t.Fatalf("workers=%d batch=%d: %v", workers, batch, err)
			}
			if got.Render() != wantText {
				t.Errorf("workers=%d batch=%d: rendered report differs from scalar", workers, batch)
			}
			gotJSON, err := got.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if string(gotJSON) != string(wantJSON) {
				t.Errorf("workers=%d batch=%d: JSON report differs from scalar", workers, batch)
			}
		}
	}
}

// TestComplianceBatchCrossResume checks that Batch stays outside the
// checkpoint fingerprint: a run checkpointed batched must resume
// cleanly scalar (and vice versa) and still produce the report of an
// uninterrupted scalar run.
func TestComplianceBatchCrossResume(t *testing.T) {
	suite := handSuite()
	plain := DefaultRunner()
	plain.Workers = 1
	want, err := plain.Run(suite)
	if err != nil {
		t.Fatal(err)
	}

	for _, firstBatch := range []int{0, 4} {
		dir := t.TempDir()
		ctx, cancel := context.WithCancel(context.Background())
		first := DefaultRunner()
		first.Workers = 1
		first.Batch = firstBatch
		first.Progress = func(ev ProgressEvent) {
			if ev.Config == first.Configs[0] && ev.Sim == first.SUTs[len(first.SUTs)-1].Name {
				cancel()
			}
		}
		_, err = first.RunResumable(ctx, suite, dir)
		cancel()
		if err != nil && err != ErrInterrupted {
			t.Fatal(err)
		}

		second := DefaultRunner()
		second.Workers = 1
		second.Batch = 4 - firstBatch
		got, err := second.RunResumable(context.Background(), suite, dir)
		if err != nil {
			t.Fatalf("resume across batch ablation (first=%d): %v", firstBatch, err)
		}
		if !reflect.DeepEqual(want.Cells, got.Cells) || !reflect.DeepEqual(want.Skipped, got.Skipped) {
			t.Fatalf("first=%d: cross-resumed report differs from uninterrupted scalar run", firstBatch)
		}
	}
}

// TestComplianceBatchFaultFallbackBitIdentical injects input-keyed
// faults (a panic on one case, a wedge on another) into one SUT and
// checks the batched engine degrades exactly like the scalar one: a
// poisoned batch is abandoned and its chunk rerun case by case, so the
// harness-fault classification, breaker behaviour and every other
// simulator's cells match the scalar report bit for bit.
func TestComplianceBatchFaultFallbackBitIdentical(t *testing.T) {
	suite := handSuite()
	release := make(chan struct{})
	defer close(release)
	plan := func(bs []byte) sim.Fault {
		switch {
		case reflect.DeepEqual(bs, suite.Cases[1]):
			return sim.FaultPanic
		case reflect.DeepEqual(bs, suite.Cases[6]):
			return sim.FaultWedge
		}
		return sim.FaultNone
	}
	run := func(batch int) *Report {
		r := DefaultRunner()
		r.Workers = 1
		r.Batch = batch
		r.CaseTimeout = 50 * time.Millisecond
		r.NewSim = faultySUTFactory("Spike", plan, "decoder crash: batch-era injected", release)
		rep, err := r.Run(suite)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	want := run(0)
	if !want.Degraded() {
		t.Fatal("fault schedule injected nothing; the fallback path was not exercised")
	}
	got := run(4)
	if got.Render() != want.Render() {
		t.Fatalf("batched degraded report differs from scalar:\n--- scalar ---\n%s\n--- batch ---\n%s",
			want.Render(), got.Render())
	}
	if !reflect.DeepEqual(want.Cells, got.Cells) || !reflect.DeepEqual(want.Skipped, got.Skipped) {
		t.Fatal("batched cells differ from scalar across the fault fallback")
	}
}

// TestComplianceBatchPredecodeCounters: the decode-cache counter totals
// (including the superblock fusion counter) must be identical with
// batching on or off and across worker counts — per-lane deltas fold
// into the same campaign totals the scalar path produces.
func TestComplianceBatchPredecodeCounters(t *testing.T) {
	suite := handSuite()
	read := func(reg *obs.Registry) [4]uint64 {
		return [4]uint64{
			reg.Counter("rvnegtest_compliance_predecode_hits_total").Value(),
			reg.Counter("rvnegtest_compliance_predecode_misses_total").Value(),
			reg.Counter("rvnegtest_compliance_predecode_invalidations_total").Value(),
			reg.Counter("rvnegtest_compliance_predecode_fused_total").Value(),
		}
	}
	run := func(workers, batch int) [4]uint64 {
		r := DefaultRunner()
		r.Workers = workers
		r.Batch = batch
		r.Obs = obs.NewRegistry()
		if _, err := r.Run(suite); err != nil {
			t.Fatal(err)
		}
		return read(r.Obs)
	}
	scalar := run(1, 0)
	if scalar[0] == 0 {
		t.Error("predecode enabled but hit counter is zero")
	}
	for _, workers := range []int{1, 2, 8} {
		for _, batch := range []int{0, 4} {
			if workers == 1 && batch == 0 {
				continue
			}
			if got := run(workers, batch); got != scalar {
				t.Errorf("workers=%d batch=%d: predecode counters %v differ from scalar %v",
					workers, batch, got, scalar)
			}
		}
	}
}
