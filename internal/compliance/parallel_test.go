package compliance

import (
	"sync"
	"testing"

	"rvnegtest/internal/isa"
	"rvnegtest/internal/sim"
)

func TestShardRanges(t *testing.T) {
	for _, tc := range []struct {
		n, workers int
		want       []shard
	}{
		{10, 1, []shard{{0, 10}}},
		{10, 3, []shard{{0, 4}, {4, 7}, {7, 10}}},
		{2, 4, []shard{{0, 1}, {1, 2}, {2, 2}, {2, 2}}},
		{0, 2, []shard{{0, 0}, {0, 0}}},
	} {
		got := shardRanges(tc.n, tc.workers)
		if len(got) != len(tc.want) {
			t.Fatalf("shardRanges(%d,%d) = %v", tc.n, tc.workers, got)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("shardRanges(%d,%d)[%d] = %v, want %v", tc.n, tc.workers, i, got[i], tc.want[i])
			}
		}
		// Shards must partition [0, n) contiguously.
		lo := 0
		for _, s := range got {
			if s.lo != lo || s.hi < s.lo {
				t.Errorf("shardRanges(%d,%d): non-contiguous shard %v", tc.n, tc.workers, s)
			}
			lo = s.hi
		}
		if lo != tc.n {
			t.Errorf("shardRanges(%d,%d): covers [0,%d)", tc.n, tc.workers, lo)
		}
	}
}

// TestParallelRunnerBitIdentical is the engine's core guarantee: any
// worker count produces a report byte-identical to the serial engine —
// rendered table, JSON (including per-cell categories, examples and
// skipped counts), everything.
func TestParallelRunnerBitIdentical(t *testing.T) {
	suite := handSuite()
	serial := DefaultRunner()
	want, err := serial.Run(suite)
	if err != nil {
		t.Fatal(err)
	}
	wantText := want.Render()
	wantJSON, err := want.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8, 32} {
		r := DefaultRunner()
		r.Workers = workers
		got, err := r.Run(suite)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if text := got.Render(); text != wantText {
			t.Errorf("workers=%d: render differs\nserial:\n%s\nparallel:\n%s", workers, wantText, text)
		}
		raw, err := got.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != string(wantJSON) {
			t.Errorf("workers=%d: JSON differs\nserial:\n%s\nparallel:\n%s", workers, wantJSON, raw)
		}
	}
}

// TestParallelRunnerBitIdenticalWithSkips repeats the identity check on a
// runner whose reference fails on some cases (sail-riscv crashes and
// loops on crafted patterns), exercising the skip-accounting path across
// shard boundaries.
func TestParallelRunnerBitIdenticalWithSkips(t *testing.T) {
	suite := skippingSuite()
	serial := &Runner{Ref: sim.Sail, SUTs: []*sim.Variant{sim.Reference, sim.Spike}, Configs: []isa.Config{isa.RV32I, isa.RV32IMC}}
	want, err := serial.Run(suite)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := want.JSON()
	for _, workers := range []int{2, 5} {
		r := &Runner{Ref: sim.Sail, SUTs: []*sim.Variant{sim.Reference, sim.Spike}, Configs: []isa.Config{isa.RV32I, isa.RV32IMC}, Workers: workers}
		got, err := r.Run(suite)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Render() != want.Render() {
			t.Errorf("workers=%d: render differs\n%s\nvs\n%s", workers, want.Render(), got.Render())
		}
		raw, _ := got.JSON()
		if string(raw) != string(wantJSON) {
			t.Errorf("workers=%d: JSON differs", workers)
		}
	}
}

func TestParallelRunnerStats(t *testing.T) {
	suite := handSuite()
	r := DefaultRunner()
	r.Workers = 4
	if _, err := r.Run(suite); err != nil {
		t.Fatal(err)
	}
	st := r.Stats
	if st.Workers != 4 || len(st.PerWorker) != 4 {
		t.Fatalf("stats workers: %+v", st)
	}
	total := 0
	for _, w := range st.PerWorker {
		total += w.Execs
	}
	if total != st.Execs || st.Execs == 0 {
		t.Errorf("per-worker execs sum %d != total %d", total, st.Execs)
	}
	// Every (config, supported sim) pair runs every case, plus one
	// reference pass per config; no skips occur in the default setup.
	want := 0
	for _, cfg := range r.Configs {
		want += len(suite.Cases) // reference
		for _, v := range r.SUTs {
			if v.Supports(cfg) {
				want += len(suite.Cases)
			}
		}
	}
	if st.Execs != want {
		t.Errorf("execs = %d, want %d", st.Execs, want)
	}
	if st.Duration <= 0 || st.CasesPerSec <= 0 {
		t.Errorf("throughput not populated: %+v", st)
	}
	if st.String() == "" {
		t.Error("empty stats rendering")
	}

	// The serial engine fills the same stats shape.
	s := DefaultRunner()
	if _, err := s.Run(suite); err != nil {
		t.Fatal(err)
	}
	if s.Stats.Workers != 1 || s.Stats.Execs != want {
		t.Errorf("serial stats: %+v", s.Stats)
	}
}

func TestParallelRunnerProgress(t *testing.T) {
	suite := handSuite()
	r := DefaultRunner()
	r.Workers = 3
	var mu sync.Mutex
	refShards, sutShards := 0, 0
	r.Progress = func(ev ProgressEvent) {
		mu.Lock()
		defer mu.Unlock()
		if ev.Sim == "" {
			refShards++
		} else {
			sutShards++
		}
		if ev.Lo > ev.Hi || ev.Hi > len(suite.Cases) {
			t.Errorf("bad shard range in event: %+v", ev)
		}
	}
	if _, err := r.Run(suite); err != nil {
		t.Fatal(err)
	}
	if want := 3 * len(r.Configs); refShards != want {
		t.Errorf("reference shard events = %d, want %d", refShards, want)
	}
	supported := 0
	for _, cfg := range r.Configs {
		for _, v := range r.SUTs {
			if v.Supports(cfg) {
				supported++
			}
		}
	}
	if want := 3 * supported; sutShards != want {
		t.Errorf("SUT shard events = %d, want %d", sutShards, want)
	}
}

func TestWorkerCount(t *testing.T) {
	for _, tc := range []struct{ field, min int }{{0, 1}, {1, 1}, {7, 7}} {
		r := &Runner{Workers: tc.field}
		if got := r.workerCount(); got != tc.min {
			t.Errorf("Workers=%d resolves to %d", tc.field, got)
		}
	}
	if got := (&Runner{Workers: -1}).workerCount(); got < 1 {
		t.Errorf("auto workers = %d", got)
	}
}
