package compliance

import (
	"strings"
	"testing"

	"rvnegtest/internal/fuzz"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/template"
)

// trapSuite is the directed-probe trap suite every trap test shares.
func trapSuite() *Suite {
	return &Suite{
		Cases:  fuzz.TrapDirectedCases(),
		Family: template.FamilyTrap,
		Origin: "directed trap probes",
	}
}

// TestTrapSuiteDetectsSeededPrivilegedBugs is the tentpole acceptance
// check: every seeded privileged-architecture defect class — mtval
// zeroing (Spike), vectored synchronous dispatch (VP), skipped MPIE
// restore (GRIFT), unmasked mstatus writes (sail) — produces at least one
// trap-record divergence against the reference under the trap suite.
// The user-level suite cannot see any of these (its template never reads
// mtval, never MRETs, and writes only an aligned direct-mode mtvec).
func TestTrapSuiteDetectsSeededPrivilegedBugs(t *testing.T) {
	r := &Runner{
		Ref:         sim.OVPSim,
		SUTs:        []*sim.Variant{sim.Spike, sim.VP, sim.Sail, sim.Grift},
		Configs:     []isa.Config{isa.RV32I},
		MaxExamples: 10,
	}
	rep, err := r.Run(trapSuite())
	if err != nil {
		t.Fatal(err)
	}
	for j, name := range rep.Sims {
		c := rep.Cells[0][j]
		if !c.Supported {
			t.Fatalf("%s: unsupported on RV32I", name)
		}
		if c.Categories[CatTrapRecord] == 0 {
			t.Errorf("%s: no trap-record divergence detected (cell: %+v)", name, c)
		}
	}
	if !strings.Contains(rep.BugFindings(), "trap-record") {
		t.Errorf("BugFindings does not render the trap-record category:\n%s", rep.BugFindings())
	}
}

// TestTrapSuiteCleanSimulatorMatchesReference: a defect-free SUT produces
// no trap-record mismatches — the probes diverge only through quirks, not
// through the recording machinery itself.
func TestTrapSuiteCleanSimulatorMatchesReference(t *testing.T) {
	r := &Runner{
		Ref:     sim.Reference,
		SUTs:    []*sim.Variant{sim.Reference},
		Configs: []isa.Config{isa.RV32I, isa.RV32IMC},
	}
	rep, err := r.Run(trapSuite())
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Configs {
		if n := rep.Cells[i][0].Mismatches; n != 0 {
			t.Errorf("%v: clean simulator has %d mismatches against itself", rep.Configs[i], n)
		}
	}
}

// TestTrapSuiteParallelBitIdentical: the sharded engine reproduces the
// serial trap-suite report exactly (the user-suite determinism guarantee
// extends to the trap family).
func TestTrapSuiteParallelBitIdentical(t *testing.T) {
	suite := trapSuite()
	run := func(workers int) *Report {
		r := &Runner{
			Ref:     sim.OVPSim,
			SUTs:    []*sim.Variant{sim.Spike, sim.VP, sim.Sail, sim.Grift},
			Configs: []isa.Config{isa.RV32I},
			Workers: workers,
		}
		rep, err := r.Run(suite)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	want := run(1)
	for _, workers := range []int{2, 3} {
		got := run(workers)
		if got.Render() != want.Render() || got.BugFindings() != want.BugFindings() {
			t.Fatalf("workers=%d: report differs from serial run", workers)
		}
	}
}

// TestSuiteFamilySerialization: the trap family round-trips through the
// suite file format, and user-family files keep the historical header
// byte-for-byte (no family line).
func TestSuiteFamilySerialization(t *testing.T) {
	s := trapSuite()
	text := s.Format()
	if !strings.Contains(text, "# family: trap\n") {
		t.Fatalf("trap suite misses the family header:\n%s", text)
	}
	parsed, err := ParseSuite(text)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Family != template.FamilyTrap {
		t.Fatalf("parsed family = %v, want trap", parsed.Family)
	}
	if len(parsed.Cases) != len(s.Cases) {
		t.Fatalf("parsed %d cases, want %d", len(parsed.Cases), len(s.Cases))
	}

	user := &Suite{Cases: s.Cases, Origin: "x"}
	utext := user.Format()
	if strings.Contains(utext, "family") {
		t.Fatalf("user suite format mentions family:\n%s", utext)
	}
	uparsed, err := ParseSuite(utext)
	if err != nil {
		t.Fatal(err)
	}
	if uparsed.Family != template.FamilyUser {
		t.Fatalf("user suite parsed as family %v", uparsed.Family)
	}

	if _, err := ParseSuite("# family: bogus\n"); err == nil {
		t.Fatal("unknown family accepted")
	}
}

// TestCheckpointBindsFamily: the suite hash — and therefore the campaign
// checkpoint — distinguishes the families even for identical case bytes,
// while user-family hashes keep their historical value.
func TestCheckpointBindsFamily(t *testing.T) {
	cases := [][]byte{{0x13, 0x00, 0x00, 0x00}}
	user := &Suite{Cases: cases}
	trap := &Suite{Cases: cases, Family: template.FamilyTrap}
	if suiteHash(user) == suiteHash(trap) {
		t.Fatal("suite hash ignores the family: a checkpoint could resume across families")
	}
}

// TestClassifyAtTrapRecords pins the classifier's trap-region priority.
func TestClassifyAtTrapRecords(t *testing.T) {
	ref := make([]uint32, 40)
	got := make([]uint32, 40)
	got[36] = 1 // trap-region word differs (trapBase 32)
	if c := ClassifyAt(ref, got, 32); c != CatTrapRecord {
		t.Fatalf("trap-region diff classified as %v", c)
	}
	got[5] = 7 // register diff too: trap-record still dominates
	if c := ClassifyAt(ref, got, 32); c != CatTrapRecord {
		t.Fatalf("mixed diff classified as %v", c)
	}
	// With the region disabled (user family) the same diff set is a
	// register-class mismatch.
	if c := ClassifyAt(ref, got, 0); c != CatRegisterValue {
		t.Fatalf("user-family diff classified as %v", c)
	}
}
