package compliance

import (
	"bytes"
	"sync"
	"testing"

	"rvnegtest/internal/isa"
	"rvnegtest/internal/obs"
	"rvnegtest/internal/sim"
)

// telemetryRunner is DefaultRunner with a fresh registry and event log
// attached.
func telemetryRunner(workers int) (*Runner, *obs.Registry, *bytes.Buffer) {
	r := DefaultRunner()
	r.Workers = workers
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	r.Obs = reg
	r.Events = obs.NewEventLog(&buf)
	return r, reg, &buf
}

// TestComplianceTelemetryCounters: the registry's totals must agree with
// the run's own statistics and with the report, and the event stream must
// describe every row and cell.
func TestComplianceTelemetryCounters(t *testing.T) {
	suite := handSuite()
	r, reg, buf := telemetryRunner(1)
	rep, err := r.Run(suite)
	if err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter("rvnegtest_compliance_execs_total").Value(); got != uint64(r.Stats.Execs) {
		t.Errorf("execs counter = %d, RunStats.Execs = %d", got, r.Stats.Execs)
	}
	if got := reg.Counter("rvnegtest_compliance_rows_total").Value(); got != uint64(len(r.Configs)) {
		t.Errorf("rows counter = %d, want %d", got, len(r.Configs))
	}
	for j, name := range rep.Sims {
		var mism, hf int
		for i := range rep.Configs {
			mism += rep.Cells[i][j].Mismatches
			hf += rep.Cells[i][j].HarnessFaults
		}
		if got := reg.Counter(`rvnegtest_compliance_mismatches_total{sim="` + name + `"}`).Value(); got != uint64(mism) {
			t.Errorf("%s mismatch counter = %d, report says %d", name, got, mism)
		}
		if got := reg.Counter(`rvnegtest_compliance_harness_faults_total{sim="` + name + `"}`).Value(); got != uint64(hf) {
			t.Errorf("%s harness-fault counter = %d, report says %d", name, got, hf)
		}
	}
	// Every simulator execution (reference + SUT) is timed.
	if got := reg.Stage(obs.StageExecute).Count(); got != uint64(r.Stats.Execs) {
		t.Errorf("execute stage count = %d, RunStats.Execs = %d", got, r.Stats.Execs)
	}
	if reg.Stage(obs.StageSignatureCompare).Count() == 0 {
		t.Error("signature-compare stage never observed")
	}

	if err := r.Events.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	var lastSeq uint64
	for _, ev := range evs {
		if ev.Seq <= lastSeq {
			t.Fatalf("event seq not strictly increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		counts[ev.Type]++
	}
	if counts["row_done"] != len(r.Configs) {
		t.Errorf("row_done events = %d, want %d", counts["row_done"], len(r.Configs))
	}
	var supported int
	for i := range rep.Configs {
		for j := range rep.Sims {
			if rep.Cells[i][j].Supported {
				supported++
			}
		}
	}
	if counts["cell_done"] != supported {
		t.Errorf("cell_done events = %d, want %d (supported cells)", counts["cell_done"], supported)
	}
	if counts["shard_done"] != len(r.Configs) {
		t.Errorf("shard_done events = %d, want %d (one reference pass per row)", counts["shard_done"], len(r.Configs))
	}
}

// TestComplianceTelemetryParallel hammers a multi-worker run with the
// Progress hook, a shared registry and a shared event stream (run under
// -race in CI): emission must stay serialized and strictly monotonic, and
// the deterministic totals must match the serial engine's.
func TestComplianceTelemetryParallel(t *testing.T) {
	suite := handSuite()

	serial, serialReg, _ := telemetryRunner(1)
	serialRep, err := serial.Run(suite)
	if err != nil {
		t.Fatal(err)
	}

	r, reg, buf := telemetryRunner(4)
	var mu sync.Mutex
	progress := 0
	r.Progress = func(ev ProgressEvent) {
		mu.Lock()
		progress++
		mu.Unlock()
	}
	rep, err := r.Run(suite)
	if err != nil {
		t.Fatal(err)
	}
	if progress == 0 {
		t.Fatal("progress hook never invoked")
	}
	if got, want := rep.Render(), serialRep.Render(); got != want {
		t.Fatalf("parallel report differs from serial with telemetry on:\n%s\nvs\n%s", got, want)
	}

	// Order-independent totals agree with the serial run; per-stage
	// counts of the execute stage do too (every execution is timed
	// exactly once regardless of which worker ran it).
	for _, name := range []string{
		"rvnegtest_compliance_execs_total",
		"rvnegtest_compliance_rows_total",
		`rvnegtest_compliance_mismatches_total{sim="Spike"}`,
	} {
		if got, want := reg.Counter(name).Value(), serialReg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d parallel, %d serial", name, got, want)
		}
	}
	if got, want := reg.Stage(obs.StageExecute).Count(), serialReg.Stage(obs.StageExecute).Count(); got != want {
		t.Errorf("execute stage count = %d parallel, %d serial", got, want)
	}

	if err := r.Events.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var lastSeq uint64
	rows := 0
	for _, ev := range evs {
		if ev.Seq <= lastSeq {
			t.Fatalf("event seq not strictly increasing under concurrency: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.Type == "row_done" {
			rows++
		}
	}
	if rows != len(r.Configs) {
		t.Errorf("row_done events = %d, want %d", rows, len(r.Configs))
	}
}

// TestComplianceTelemetryOffIdentical: a run with telemetry attached must
// produce a byte-identical report to one without (the determinism
// boundary of the acceptance criteria).
func TestComplianceTelemetryOffIdentical(t *testing.T) {
	suite := handSuite()
	for _, workers := range []int{1, 3} {
		plain := DefaultRunner()
		plain.Workers = workers
		wantRep, err := plain.Run(suite)
		if err != nil {
			t.Fatal(err)
		}
		wantJSON, err := wantRep.JSON()
		if err != nil {
			t.Fatal(err)
		}

		r, _, _ := telemetryRunner(workers)
		gotRep, err := r.Run(suite)
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, err := gotRep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("workers=%d: report JSON differs with telemetry enabled", workers)
		}
	}
}

// TestBreakerOpenTelemetry: a tripped breaker must surface as exactly one
// breaker_open event and counter increment for the faulting simulator.
func TestBreakerOpenTelemetry(t *testing.T) {
	var cases [][]byte
	for i := 0; i < 8; i++ {
		cases = append(cases, []byte{0x93, byte(i), 0x10, 0x00})
	}
	suite := &Suite{Cases: cases}
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	r := &Runner{
		Ref:              sim.OVPSim,
		SUTs:             []*sim.Variant{sim.Spike},
		Configs:          []isa.Config{isa.RV32I},
		Workers:          1,
		BreakerThreshold: 2,
		NewSim:           faultySUTFactory("Spike", func([]byte) sim.Fault { return sim.FaultPanic }, "boom", nil),
		Obs:              reg,
		Events:           obs.NewEventLog(&buf),
	}
	if _, err := r.Run(suite); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(`rvnegtest_compliance_breaker_opens_total{sim="Spike"}`).Value(); got != 1 {
		t.Errorf("breaker-open counter = %d, want 1", got)
	}
	if err := r.Events.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	opens := 0
	for _, ev := range evs {
		if ev.Type == "breaker_open" {
			opens++
			if ev.Sim != "Spike" {
				t.Errorf("breaker_open names sim %q", ev.Sim)
			}
		}
	}
	if opens != 1 {
		t.Errorf("breaker_open events = %d, want 1", opens)
	}
}

// TestRunStatsSnapshotCopy: the stats snapshot must not alias the live
// per-worker slice a subsequent Run keeps accounting into.
func TestRunStatsSnapshotCopy(t *testing.T) {
	r := DefaultRunner()
	r.Workers = 2
	if _, err := r.Run(handSuite()); err != nil {
		t.Fatal(err)
	}
	snap := r.StatsSnapshot()
	if snap.Execs != r.Stats.Execs || len(snap.PerWorker) != len(r.Stats.PerWorker) {
		t.Fatalf("snapshot diverges from live stats: %+v vs %+v", snap, r.Stats)
	}
	want := snap.PerWorker[0].Execs
	r.Stats.PerWorker[0].Execs = -1
	if snap.PerWorker[0].Execs != want {
		t.Fatal("StatsSnapshot aliases the live PerWorker slice")
	}
}
