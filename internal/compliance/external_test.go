package compliance

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"rvnegtest/internal/isa"
	"rvnegtest/internal/obs"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/sut"
)

// TestMain doubles as the external adapter subprocess: when the helper
// env var is set, the test binary serves the adapter protocol on
// stdin/stdout instead of running tests, so the external-column tests
// exercise real processes, real pipes, and real kills end to end.
func TestMain(m *testing.M) {
	if os.Getenv("SUT_COMPLIANCE_HELPER") == "1" {
		complianceHelperMain()
		return
	}
	os.Exit(m.Run())
}

func complianceHelperMain() {
	if n, _ := strconv.Atoi(os.Getenv("SUT_STDERR_SPAM")); n > 0 {
		os.Stderr.Write(bytes.Repeat([]byte("adapter-stderr-spam\n"), (n+9)/10))
	}
	name := os.Getenv("SUT_VARIANT")
	if name == "" {
		name = "reference"
	}
	v, ok := sim.ByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown variant %q\n", name)
		os.Exit(2)
	}
	var h sut.Handler = sut.NewSimHandler(v)
	if tomb := os.Getenv("SUT_TOMBSTONE"); tomb != "" {
		after, _ := strconv.Atoi(os.Getenv("SUT_DIE_AFTER"))
		h = &dyingHandler{inner: h, tomb: tomb, after: after}
	}
	mb, err := sut.ParseMisbehave(os.Getenv("SUT_MISBEHAVE"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	after, _ := strconv.Atoi(os.Getenv("SUT_AFTER"))
	if err := sut.Serve(os.Stdin, os.Stdout, h, sut.ServeOpts{Misbehave: mb, After: after}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// dyingHandler models an operator's `kill -9` that the backend never
// recovers from: after `after` successful runs it writes a tombstone and
// SIGKILLs itself, and every respawned process that finds the tombstone
// dies again on its first request. Unlike ServeOpts.After (which a
// restart heals, because the per-process run counter resets), the
// tombstone makes the failure absorbing — exactly the shape graceful
// degradation exists for.
type dyingHandler struct {
	inner sut.Handler
	tomb  string
	after int
	runs  int
}

func (h *dyingHandler) Info() sut.Info { return h.inner.Info() }

func (h *dyingHandler) Run(req sut.RunRequest) (sut.RunResult, error) {
	if _, err := os.Stat(h.tomb); err == nil {
		_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
		select {}
	}
	h.runs++
	if h.after > 0 && h.runs > h.after {
		_ = os.WriteFile(h.tomb, []byte("dead\n"), 0o644)
		_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
		select {}
	}
	return h.inner.Run(req)
}

// extSpec builds a Spec that re-executes this test binary as the
// adapter, with fast backoff so failure tests stay quick.
func extSpec(name string, env ...string) sut.Spec {
	return sut.Spec{
		Name:             name,
		Argv:             []string{os.Args[0]},
		Env:              append([]string{"SUT_COMPLIANCE_HELPER=1"}, env...),
		HandshakeTimeout: 10 * time.Second,
		RunTimeout:       10 * time.Second,
		BackoffBase:      time.Millisecond,
		BackoffMax:       4 * time.Millisecond,
		Seed:             1,
	}
}

// cellFor looks one (config, sim) cell up in a report.
func cellFor(t *testing.T, rep *Report, cfg isa.Config, name string) Cell {
	t.Helper()
	for i, c := range rep.Configs {
		if c != cfg {
			continue
		}
		for j, s := range rep.Sims {
			if s == name {
				return rep.Cells[i][j]
			}
		}
	}
	t.Fatalf("cell %v/%s missing", cfg, name)
	return Cell{}
}

// TestExternalParityAcrossWorkers is the tentpole acceptance check: an
// external adapter wrapping the built-in reference model must produce
// cells byte-identical to the in-process column, for every worker count.
func TestExternalParityAcrossWorkers(t *testing.T) {
	suite := handSuite()
	configs := []isa.Config{isa.RV32I, isa.RV32IMC, isa.RV32GC}
	var renders []string
	for _, workers := range []int{1, 2, 8} {
		r := &Runner{
			Ref:      sim.OVPSim,
			SUTs:     []*sim.Variant{sim.Reference},
			External: []sut.Spec{extSpec("ext-reference")},
			Configs:  configs,
			Workers:  workers,
		}
		rep, err := r.Run(suite)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Degraded() {
			t.Fatalf("workers=%d: healthy adapter degraded the report:\n%s", workers, rep.Render())
		}
		for _, cfg := range configs {
			in := cellFor(t, rep, cfg, "reference")
			ext := cellFor(t, rep, cfg, "ext-reference")
			if !reflect.DeepEqual(in, ext) {
				t.Errorf("workers=%d %v: in-process %+v != external %+v", workers, cfg, in, ext)
			}
			if !ext.Supported || ext.Mismatches == 0 {
				t.Errorf("workers=%d %v: external cell did no work: %+v", workers, cfg, ext)
			}
		}
		renders = append(renders, rep.Render())
	}
	for i := 1; i < len(renders); i++ {
		if renders[i] != renders[0] {
			t.Errorf("report differs between worker counts:\n%s\nvs\n%s", renders[0], renders[i])
		}
	}
}

// TestExternalMisbehaveDegrades runs the full misbehaviour matrix: every
// failure mode must degrade into adapter-skipped cells plus a tripped
// breaker — never a harness crash, never a fake crash finding.
func TestExternalMisbehaveDegrades(t *testing.T) {
	suite := handSuite()
	for _, mode := range []string{"hang", "crash", "kill", "garbage", "truncate"} {
		t.Run(mode, func(t *testing.T) {
			spec := extSpec("ext-bad", "SUT_MISBEHAVE="+mode)
			spec.Retries = -1 // single attempt per case keeps counts exact
			if mode == "hang" {
				spec.RunTimeout = 150 * time.Millisecond
			}
			r := &Runner{
				Ref:           sim.OVPSim,
				External:      []sut.Spec{spec},
				Configs:       []isa.Config{isa.RV32I},
				HalfOpenAfter: -1, // stay-open: deterministic skip counts
				Workers:       1,
			}
			rep, err := r.Run(suite)
			if err != nil {
				t.Fatalf("misbehaving adapter must degrade, not fail the run: %v", err)
			}
			c := cellFor(t, rep, isa.RV32I, "ext-bad")
			if !c.Supported || !c.Unhealthy {
				t.Fatalf("cell not marked unhealthy: %+v", c)
			}
			if c.SkippedAdapter != DefaultBreakerThreshold {
				t.Errorf("SkippedAdapter = %d, want %d (breaker threshold)", c.SkippedAdapter, DefaultBreakerThreshold)
			}
			if want := len(suite.Cases) - DefaultBreakerThreshold; c.SkippedUnhealthy != want {
				t.Errorf("SkippedUnhealthy = %d, want %d", c.SkippedUnhealthy, want)
			}
			if c.Mismatches != 0 || c.Crashes != 0 || c.Timeouts != 0 {
				t.Errorf("adapter-level failure polluted the verdict counts: %+v", c)
			}
			if !rep.Degraded() {
				t.Error("report must be degraded")
			}
			if !strings.Contains(rep.Render(), "skipped (adapter)") {
				t.Errorf("render lacks adapter-skip note:\n%s", rep.Render())
			}
		})
	}
}

// TestExternalKillOnlyDegradesOwnColumn: a backend that dies for good
// mid-campaign (kill -9 plus tombstone) degrades its own column only;
// the in-process columns are byte-identical to a run without the
// external at all.
func TestExternalKillOnlyDegradesOwnColumn(t *testing.T) {
	suite := handSuite()
	tomb := filepath.Join(t.TempDir(), "tomb")
	spec := extSpec("ext-dying", "SUT_TOMBSTONE="+tomb, "SUT_DIE_AFTER=4")
	spec.Retries = -1
	r := &Runner{
		Ref:           sim.OVPSim,
		SUTs:          []*sim.Variant{sim.Spike},
		External:      []sut.Spec{spec},
		Configs:       []isa.Config{isa.RV32I},
		HalfOpenAfter: -1,
		Workers:       1,
	}
	rep, err := r.Run(suite)
	if err != nil {
		t.Fatal(err)
	}
	c := cellFor(t, rep, isa.RV32I, "ext-dying")
	// 4 served cases, then 5 adapter faults trip the breaker, rest skipped.
	if c.SkippedAdapter != 5 || c.HarnessFaults != 5 {
		t.Errorf("SkippedAdapter/HarnessFaults = %d/%d, want 5/5 (%+v)", c.SkippedAdapter, c.HarnessFaults, c)
	}
	if want := len(suite.Cases) - 4 - 5; c.SkippedUnhealthy != want {
		t.Errorf("SkippedUnhealthy = %d, want %d", c.SkippedUnhealthy, want)
	}
	if !rep.Degraded() {
		t.Error("report must be degraded")
	}

	// The Spike column must be untouched by its neighbour's death.
	base := &Runner{Ref: sim.OVPSim, SUTs: []*sim.Variant{sim.Spike}, Configs: []isa.Config{isa.RV32I}, Workers: 1}
	baseRep, err := base.Run(suite)
	if err != nil {
		t.Fatal(err)
	}
	got, want := cellFor(t, rep, isa.RV32I, "Spike"), cellFor(t, baseRep, isa.RV32I, "Spike")
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Spike cell changed next to a dying external: %+v vs %+v", got, want)
	}
}

// TestExternalResumeAfterKillByteIdentical: interrupting a campaign
// while the external backend is dead, then resuming from the checkpoint,
// must render byte-identically to the uninterrupted degraded run.
func TestExternalResumeAfterKillByteIdentical(t *testing.T) {
	suite := handSuite()
	configs := []isa.Config{isa.RV32I, isa.RV32IMC}
	newRunner := func(tomb string) *Runner {
		spec := extSpec("ext-dying", "SUT_TOMBSTONE="+tomb, "SUT_DIE_AFTER=4")
		spec.Retries = -1
		return &Runner{
			Ref:           sim.OVPSim,
			SUTs:          []*sim.Variant{sim.Spike},
			External:      []sut.Spec{spec},
			Configs:       configs,
			HalfOpenAfter: -1,
			Workers:       1,
		}
	}

	// Uninterrupted degraded run: the backend dies during row 1 and every
	// row-2 exchange finds it dead.
	dirA, dirB := t.TempDir(), t.TempDir()
	full, err := newRunner(filepath.Join(dirA, "tomb")).RunResumable(context.Background(), suite, dirA)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Degraded() {
		t.Fatal("uninterrupted run must already be degraded")
	}

	// Interrupted run: cancel as soon as row 2 starts (row 1, kill
	// included, is checkpointed by then).
	tombB := filepath.Join(dirB, "tomb")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := newRunner(tombB)
	r.Progress = func(ev ProgressEvent) {
		if ev.Config == isa.RV32IMC {
			cancel()
		}
	}
	if _, err := r.RunResumable(ctx, suite, dirB); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run returned %v, want ErrInterrupted", err)
	}

	resumed, err := newRunner(tombB).RunResumable(context.Background(), suite, dirB)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resumed.Render(), full.Render(); got != want {
		t.Errorf("resumed render differs from uninterrupted run:\n--- resumed\n%s--- uninterrupted\n%s", got, want)
	}
}

// TestExternalQuarantineProtocolContext: adapter faults land in the
// quarantine with their protocol context — the last response frame seen
// and the adapter's stderr tail.
func TestExternalQuarantineProtocolContext(t *testing.T) {
	qdir := filepath.Join(t.TempDir(), "quarantine")
	spec := extSpec("ext-bad", "SUT_MISBEHAVE=crash", "SUT_STDERR_SPAM=50")
	spec.Retries = -1
	r := &Runner{
		Ref:           sim.OVPSim,
		External:      []sut.Spec{spec},
		Configs:       []isa.Config{isa.RV32I},
		HalfOpenAfter: -1,
		Workers:       1,
		QuarantineDir: qdir,
	}
	suite := &Suite{Cases: [][]byte{stream(enc(isa.Inst{Op: isa.OpADD, Rd: 5, Rs1: 1, Rs2: 2}))}}
	if _, err := r.Run(suite); err != nil {
		t.Fatal(err)
	}
	txts, err := filepath.Glob(filepath.Join(qdir, "*.txt"))
	if err != nil || len(txts) == 0 {
		t.Fatalf("no quarantine details written (err=%v)", err)
	}
	detail, err := os.ReadFile(txts[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"adapter fault", "last frame:", "adapter stderr tail:", "adapter-stderr-spam"} {
		if !strings.Contains(string(detail), want) {
			t.Errorf("quarantine detail lacks %q:\n%s", want, detail)
		}
	}
}

// TestExternalCapsGateConfigs: the handshake capability bits gate
// configurations the way the in-process variant model does — an external
// VP (no floating point) renders "/" on RV32GC.
func TestExternalCapsGateConfigs(t *testing.T) {
	r := &Runner{
		Ref:      sim.OVPSim,
		SUTs:     []*sim.Variant{sim.VP},
		External: []sut.Spec{extSpec("ext-VP", "SUT_VARIANT=VP")},
		Configs:  []isa.Config{isa.RV32I, isa.RV32GC},
		Workers:  1,
	}
	rep, err := r.Run(handSuite())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"VP", "ext-VP"} {
		if c := cellFor(t, rep, isa.RV32GC, name); c.Supported {
			t.Errorf("%s must be unsupported on RV32GC (no FP capability)", name)
		}
		if c := cellFor(t, rep, isa.RV32I, name); !c.Supported {
			t.Errorf("%s must be supported on RV32I", name)
		}
	}
	in, ext := cellFor(t, rep, isa.RV32I, "VP"), cellFor(t, rep, isa.RV32I, "ext-VP")
	if !reflect.DeepEqual(in, ext) {
		t.Errorf("VP parity broken: in-process %+v != external %+v", in, ext)
	}
}

// TestExternalBreakerHalfOpenRecovery drives the open → half-open →
// closed cycle end to end: a backend that serves one run per process and
// then crashes keeps tripping a threshold-1 breaker, and after every
// two denied runs the half-open probe respawns it and wins a verdict.
func TestExternalBreakerHalfOpenRecovery(t *testing.T) {
	spec := extSpec("ext-flappy", "SUT_MISBEHAVE=crash", "SUT_AFTER=1")
	spec.Retries = -1
	var buf bytes.Buffer
	events := obs.NewEventLog(&buf)
	r := &Runner{
		Ref:              sim.OVPSim,
		External:         []sut.Spec{spec},
		Configs:          []isa.Config{isa.RV32I},
		BreakerThreshold: 1,
		HalfOpenAfter:    2,
		Workers:          1,
		Obs:              obs.NewRegistry(),
		Events:           events,
	}
	suite := handSuite() // 12 cases
	rep, err := r.Run(suite)
	if err != nil {
		t.Fatal(err)
	}
	if err := events.Close(); err != nil {
		t.Fatal(err)
	}
	// Schedule with 12 cases: verdicts at 0/4/8, faults at 1/5/9 (each
	// trips the threshold-1 breaker), two denied runs before each probe.
	c := cellFor(t, rep, isa.RV32I, "ext-flappy")
	if c.SkippedAdapter != 3 || c.HarnessFaults != 3 {
		t.Errorf("SkippedAdapter/HarnessFaults = %d/%d, want 3/3 (%+v)", c.SkippedAdapter, c.HarnessFaults, c)
	}
	if c.SkippedUnhealthy != 6 {
		t.Errorf("SkippedUnhealthy = %d, want 6 (%+v)", c.SkippedUnhealthy, c)
	}

	evs, err := obs.ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	count := func(typ string) int {
		n := 0
		for _, ev := range evs {
			if ev.Type == typ {
				n++
			}
		}
		return n
	}
	for typ, want := range map[string]int{
		"breaker_open":      3,
		"breaker_half_open": 2,
		"breaker_close":     2,
		"adapter_fault":     3,
		"sut_restart":       2,
	} {
		if got := count(typ); got != want {
			t.Errorf("%s events = %d, want %d", typ, got, want)
		}
	}
}
