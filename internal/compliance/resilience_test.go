package compliance

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"rvnegtest/internal/isa"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/template"
)

// faultySUTFactory builds a Runner.NewSim that wraps only the named
// simulator in the fault-injection harness; every other variant (including
// the reference) runs unmodified.
func faultySUTFactory(target string, plan sim.Schedule, msg string, release <-chan struct{}) func(*sim.Variant, template.Platform) (sim.Sim, error) {
	return func(v *sim.Variant, p template.Platform) (sim.Sim, error) {
		inner, err := sim.New(v, p)
		if err != nil {
			return nil, err
		}
		if v.Name != target {
			return inner, nil
		}
		return &sim.Faulty{Inner: inner, Plan: plan, PanicMsg: msg, Release: release}, nil
	}
}

// planOnInput faults only when running the given input — deterministic
// regardless of execution order or worker count.
func planOnInput(input []byte, f sim.Fault) sim.Schedule {
	return func(bs []byte) sim.Fault {
		if bytes.Equal(bs, input) {
			return f
		}
		return sim.FaultNone
	}
}

// TestFaultySUTDoesNotPoisonOthers is the fault-tolerance acceptance
// check: with fault injection on one simulator, the report still completes,
// the affected cells read as harness faults, every other simulator's cells
// are bit-identical to a fault-free run, and the report says Degraded.
func TestFaultySUTDoesNotPoisonOthers(t *testing.T) {
	suite := handSuite()
	clean := DefaultRunner()
	clean.Workers = 1
	want, err := clean.Run(suite)
	if err != nil {
		t.Fatal(err)
	}
	if want.Degraded() {
		t.Fatal("fault-free run reports Degraded")
	}

	faulty := DefaultRunner()
	faulty.Workers = 1
	faulty.NewSim = faultySUTFactory("Spike",
		planOnInput(suite.Cases[0], sim.FaultPanic), "sail decoder crash: illegal encoding", nil)
	got, err := faulty.Run(suite)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Degraded() {
		t.Fatal("faulty run does not report Degraded")
	}

	sawFault := false
	for i := range want.Configs {
		for j, name := range want.Sims {
			if name == "Spike" {
				c := got.Cells[i][j]
				if c.HarnessFaults > 0 {
					sawFault = true
					if len(c.FaultMsgs) == 0 || c.FaultMsgs[0] != "sail decoder crash: illegal encoding" {
						t.Fatalf("fault message not preserved: %q", c.FaultMsgs)
					}
				}
				continue
			}
			if !reflect.DeepEqual(want.Cells[i][j], got.Cells[i][j]) {
				t.Fatalf("%v/%s: cell differs from fault-free run:\n  want %+v\n  got  %+v",
					want.Configs[i], name, want.Cells[i][j], got.Cells[i][j])
			}
		}
	}
	if !sawFault {
		t.Fatal("injected panic never fired")
	}

	raw, err := got.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var js struct {
		Degraded bool `json:"degraded"`
	}
	if err := json.Unmarshal(raw, &js); err != nil {
		t.Fatal(err)
	}
	if !js.Degraded {
		t.Fatal("JSON report lacks degraded=true")
	}
}

// TestPanicClassification drives the table of panic messages the paper's
// simulators actually produce through the harness and checks each surfaces
// as a crash with its message preserved.
func TestPanicClassification(t *testing.T) {
	suite := &Suite{Cases: [][]byte{
		{0x13, 0x00, 0x00, 0x00}, // NOP
		{0x93, 0x00, 0x10, 0x00}, // ADDI x1, x0, 1
	}}
	for _, msg := range []string{
		"sail decoder crash: malformed compressed pattern",
		"exec: unhandled operation 0x7f",
	} {
		r := &Runner{
			Ref:     sim.OVPSim,
			SUTs:    []*sim.Variant{sim.Spike},
			Configs: []isa.Config{isa.RV32I},
			Workers: 1,
			NewSim:  faultySUTFactory("Spike", func([]byte) sim.Fault { return sim.FaultPanic }, msg, nil),
		}
		rep, err := r.Run(suite)
		if err != nil {
			t.Fatal(err)
		}
		c := rep.Cells[0][0]
		if c.HarnessFaults != len(suite.Cases) || c.Crashes != len(suite.Cases) {
			t.Fatalf("%q: faults=%d crashes=%d, want %d each", msg, c.HarnessFaults, c.Crashes, len(suite.Cases))
		}
		if len(c.FaultMsgs) != 1 || c.FaultMsgs[0] != msg {
			t.Fatalf("fault message not preserved: %q", c.FaultMsgs)
		}
		if got := c.String(); got != "crash" {
			t.Fatalf("cell renders %q, want crash", got)
		}
	}
}

// TestBreakerMarksUnhealthy trips the circuit breaker with consecutive
// panics and checks the remaining cases are skipped as sut-unhealthy.
func TestBreakerMarksUnhealthy(t *testing.T) {
	var cases [][]byte
	for i := 0; i < 8; i++ {
		cases = append(cases, []byte{0x93, byte(i), 0x10, 0x00})
	}
	suite := &Suite{Cases: cases}
	r := &Runner{
		Ref:              sim.OVPSim,
		SUTs:             []*sim.Variant{sim.Spike},
		Configs:          []isa.Config{isa.RV32I},
		Workers:          1,
		BreakerThreshold: 2,
		NewSim:           faultySUTFactory("Spike", func([]byte) sim.Fault { return sim.FaultPanic }, "boom", nil),
	}
	rep, err := r.Run(suite)
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Cells[0][0]
	if c.HarnessFaults != 2 {
		t.Fatalf("harness faults = %d, want 2 (the threshold)", c.HarnessFaults)
	}
	if c.SkippedUnhealthy != len(cases)-2 {
		t.Fatalf("skipped unhealthy = %d, want %d", c.SkippedUnhealthy, len(cases)-2)
	}
	if !c.Unhealthy || c.String() != "unhealthy" {
		t.Fatalf("cell %+v renders %q, want unhealthy", c, c.String())
	}
	if !rep.Degraded() {
		t.Fatal("breaker trip does not degrade the report")
	}
	if !strings.Contains(rep.Render(), "sut-unhealthy") {
		t.Fatal("Render lacks the sut-unhealthy note")
	}
}

// TestWatchdogReapsWedgedSUT wedges one case; the watchdog must reap it,
// count a timeout harness fault, and finish the remaining cases.
func TestWatchdogReapsWedgedSUT(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	suite := &Suite{Cases: [][]byte{
		{0x13, 0x00, 0x00, 0x00},
		{0x93, 0x00, 0x10, 0x00},
		{0x93, 0x01, 0x20, 0x00},
	}}
	r := &Runner{
		Ref:         sim.OVPSim,
		SUTs:        []*sim.Variant{sim.Spike},
		Configs:     []isa.Config{isa.RV32I},
		Workers:     1,
		CaseTimeout: 50 * time.Millisecond,
		NewSim:      faultySUTFactory("Spike", planOnInput(suite.Cases[1], sim.FaultWedge), "", release),
	}
	rep, err := r.Run(suite)
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Cells[0][0]
	if c.Timeouts != 1 || c.HarnessFaults != 1 {
		t.Fatalf("timeouts=%d faults=%d, want 1 each", c.Timeouts, c.HarnessFaults)
	}
	// No case was skipped: the wedge was reaped and the rest completed.
	if ran := len(suite.Cases) - c.SkippedUnhealthy - c.Skipped; ran != 3 {
		t.Fatalf("only %d cases ran", ran)
	}
}

// TestQuarantineReceivesComplianceFaults checks the offending input and the
// fault detail land in the quarantine directory.
func TestQuarantineReceivesComplianceFaults(t *testing.T) {
	qdir := t.TempDir()
	suite := &Suite{Cases: [][]byte{{0x13, 0x00, 0x00, 0x00}}}
	r := &Runner{
		Ref:           sim.OVPSim,
		SUTs:          []*sim.Variant{sim.Spike},
		Configs:       []isa.Config{isa.RV32I},
		Workers:       1,
		QuarantineDir: qdir,
		NewSim:        faultySUTFactory("Spike", func([]byte) sim.Fault { return sim.FaultPanic }, "boom", nil),
	}
	if _, err := r.Run(suite); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(qdir)
	if err != nil {
		t.Fatal(err)
	}
	var sawInput, sawDetail bool
	for _, e := range ents {
		data, err := os.ReadFile(qdir + "/" + e.Name())
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case strings.HasSuffix(e.Name(), ".bin") && bytes.Equal(data, suite.Cases[0]):
			sawInput = true
		case strings.HasSuffix(e.Name(), ".txt") && strings.Contains(string(data), "Spike panic: boom"):
			sawDetail = true
		}
	}
	if !sawInput || !sawDetail {
		t.Fatalf("quarantine incomplete: input=%t detail=%t (%d entries)", sawInput, sawDetail, len(ents))
	}
}

// TestRunResumableContinues interrupts a checkpointed run and checks the
// resumed run completes with a report identical to an uninterrupted one,
// and that a fully checkpointed run replays nothing.
func TestRunResumableContinues(t *testing.T) {
	suite := handSuite()
	plain := DefaultRunner()
	plain.Workers = 1
	want, err := plain.Run(suite)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	// Interrupt: cancel the context as soon as the first row completes.
	ctx, cancel := context.WithCancel(context.Background())
	first := DefaultRunner()
	first.Workers = 1
	first.Progress = func(ev ProgressEvent) {
		if ev.Config == first.Configs[0] && ev.Sim == first.SUTs[len(first.SUTs)-1].Name {
			cancel()
		}
	}
	_, err = first.RunResumable(ctx, suite, dir)
	cancel()
	if err != nil && err != ErrInterrupted {
		t.Fatal(err)
	}

	second := DefaultRunner()
	second.Workers = 1
	got, err := second.RunResumable(context.Background(), suite, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Cells, got.Cells) || !reflect.DeepEqual(want.Skipped, got.Skipped) {
		t.Fatalf("resumed report differs from uninterrupted run:\n  want %+v\n  got  %+v", want.Cells, got.Cells)
	}

	// Everything is checkpointed now: a third run must not build a single
	// simulator.
	builds := 0
	third := DefaultRunner()
	third.Workers = 1
	third.NewSim = func(v *sim.Variant, p template.Platform) (sim.Sim, error) {
		builds++
		return sim.New(v, p)
	}
	if _, err := third.RunResumable(context.Background(), suite, dir); err != nil {
		t.Fatal(err)
	}
	if builds != 0 {
		t.Fatalf("fully checkpointed run built %d simulators", builds)
	}
}

// TestResumableRejectsMismatchedCampaign verifies a checkpoint is bound to
// the runner fingerprint and the suite contents.
func TestResumableRejectsMismatchedCampaign(t *testing.T) {
	suite := &Suite{Cases: [][]byte{{0x13, 0x00, 0x00, 0x00}}}
	dir := t.TempDir()
	r := &Runner{Ref: sim.OVPSim, SUTs: []*sim.Variant{sim.Spike}, Configs: []isa.Config{isa.RV32I}, Workers: 1}
	if _, err := r.RunResumable(context.Background(), suite, dir); err != nil {
		t.Fatal(err)
	}
	other := &Runner{Ref: sim.OVPSim, SUTs: []*sim.Variant{sim.VP}, Configs: []isa.Config{isa.RV32I}, Workers: 1}
	if _, err := other.RunResumable(context.Background(), suite, dir); err == nil {
		t.Fatal("checkpoint accepted for a different runner configuration")
	}
	changed := &Suite{Cases: [][]byte{{0xff, 0xff, 0xff, 0xff}}}
	if _, err := r.RunResumable(context.Background(), changed, dir); err == nil {
		t.Fatal("checkpoint accepted for a different suite")
	}
	if _, err := r.RunResumable(context.Background(), suite, ""); err == nil {
		t.Fatal("RunResumable accepted an empty directory")
	}
}
