package isa

import (
	"fmt"
	"strings"
)

var rmNames = [8]string{"rne", "rtz", "rdn", "rup", "rmm", "rm5", "rm6", "dyn"}

// Disasm renders the instruction in conventional assembler syntax. Branch
// and jump offsets are shown as relative byte offsets (". + N"). Compressed
// instructions are shown as their expansion prefixed with the compressed
// mnemonic.
func Disasm(inst Inst) string {
	s := disasm32(inst)
	if inst.Compressed() && inst.COp != CNone {
		return fmt.Sprintf("%s {%s}", inst.COp, s)
	}
	return s
}

func disasm32(inst Inst) string {
	in := inst.Op.Info()
	if in == nil {
		return fmt.Sprintf(".word %#08x # illegal", inst.Raw)
	}
	x := func(r Reg) string { return r.ABIName() }
	f := func(r Reg) string { return r.FABIName() }
	rd, rs1, rs2 := x(inst.Rd), x(inst.Rs1), x(inst.Rs2)
	fl := in.Flags
	if fl.Is(FlagFPRd) {
		rd = f(inst.Rd)
	}
	if fl.Is(FlagFPRs1) {
		rs1 = f(inst.Rs1)
	}
	if fl.Is(FlagFPRs2) {
		rs2 = f(inst.Rs2)
	}
	var b strings.Builder
	b.WriteString(in.Name)
	pad := func() {
		for b.Len() < len(in.Name)+1 {
			b.WriteByte(' ')
		}
	}
	switch in.Fmt {
	case FmtNone, FmtFence:
		// mnemonic only
	case FmtR:
		pad()
		fmt.Fprintf(&b, "%s, %s, %s", rd, rs1, rs2)
	case FmtR4:
		pad()
		fmt.Fprintf(&b, "%s, %s, %s, %s, %s", rd, rs1, rs2, f(inst.Rs3), rmNames[inst.RM&7])
	case FmtRrm:
		pad()
		fmt.Fprintf(&b, "%s, %s, %s, %s", rd, rs1, rs2, rmNames[inst.RM&7])
	case FmtR2rm:
		pad()
		fmt.Fprintf(&b, "%s, %s, %s", rd, rs1, rmNames[inst.RM&7])
	case FmtR2:
		pad()
		fmt.Fprintf(&b, "%s, %s", rd, rs1)
	case FmtI:
		pad()
		if fl.Is(FlagLoad) {
			fmt.Fprintf(&b, "%s, %d(%s)", rd, inst.Imm, x(inst.Rs1))
		} else {
			fmt.Fprintf(&b, "%s, %s, %d", rd, rs1, inst.Imm)
		}
	case FmtIShift:
		pad()
		fmt.Fprintf(&b, "%s, %s, %d", rd, rs1, inst.Imm)
	case FmtS:
		pad()
		fmt.Fprintf(&b, "%s, %d(%s)", rs2, inst.Imm, x(inst.Rs1))
	case FmtB:
		pad()
		fmt.Fprintf(&b, "%s, %s, . %+d", rs1, rs2, inst.Imm)
	case FmtU:
		pad()
		fmt.Fprintf(&b, "%s, %#x", rd, uint32(inst.Imm)>>12)
	case FmtJ:
		pad()
		fmt.Fprintf(&b, "%s, . %+d", rd, inst.Imm)
	case FmtCSR:
		pad()
		fmt.Fprintf(&b, "%s, %s, %s", rd, CSRName(inst.CSR), rs1)
	case FmtCSRI:
		pad()
		fmt.Fprintf(&b, "%s, %s, %d", rd, CSRName(inst.CSR), inst.Imm)
	case FmtAMO:
		pad()
		if inst.Op == OpLRW {
			fmt.Fprintf(&b, "%s, (%s)", rd, rs1)
		} else {
			fmt.Fprintf(&b, "%s, %s, (%s)", rd, rs2, rs1)
		}
	}
	return b.String()
}

// csrNames maps well-known CSR addresses to their names.
var csrNames = map[uint16]string{
	0x001: "fflags", 0x002: "frm", 0x003: "fcsr",
	0x300: "mstatus", 0x301: "misa", 0x304: "mie", 0x305: "mtvec",
	0x340: "mscratch", 0x341: "mepc", 0x342: "mcause", 0x343: "mtval",
	0x344: "mip", 0xb00: "mcycle", 0xb02: "minstret",
	0xb80: "mcycleh", 0xb82: "minstreth",
	0xf11: "mvendorid", 0xf12: "marchid", 0xf13: "mimpid", 0xf14: "mhartid",
}

// CSRName returns the conventional name of a CSR address, or a hex literal
// if unknown.
func CSRName(addr uint16) string {
	if n, ok := csrNames[addr]; ok {
		return n
	}
	return fmt.Sprintf("%#x", addr)
}

// LookupCSRName resolves a CSR name to its address.
func LookupCSRName(name string) (uint16, bool) {
	for a, n := range csrNames {
		if n == name {
			return a, true
		}
	}
	return 0, false
}
