// Package isa models the RISC-V RV32GC instruction-set architecture:
// register and extension naming, the instruction database (mask/match
// patterns plus per-instruction metadata), a decoder for both 32-bit and
// compressed encodings, an encoder, and a disassembler.
//
// The package is the single source of truth about instruction encodings for
// the whole repository: the executor, the static test filter, the assembler,
// the fuzzing mutator and the coverage rules are all driven by the tables
// defined here.
package isa

import "fmt"

// Reg identifies one of the 32 integer or floating-point registers.
type Reg uint8

// Integer registers by ABI name.
const (
	RegZero Reg = iota
	RegRA
	RegSP
	RegGP
	RegTP
	RegT0
	RegT1
	RegT2
	RegS0
	RegS1
	RegA0
	RegA1
	RegA2
	RegA3
	RegA4
	RegA5
	RegA6
	RegA7
	RegS2
	RegS3
	RegS4
	RegS5
	RegS6
	RegS7
	RegS8
	RegS9
	RegS10
	RegS11
	RegT3
	RegT4
	RegT5 // x30: reserved by the test template as a data pointer
	RegT6 // x31: reserved by the test template as a data pointer
)

// NumRegs is the number of integer (and separately floating-point) registers.
const NumRegs = 32

var xRegNames = [NumRegs]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

var fRegNames = [NumRegs]string{
	"ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
	"fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
	"fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
	"fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
}

// String returns the numeric name ("x7") of the register.
func (r Reg) String() string { return fmt.Sprintf("x%d", uint8(r)) }

// ABIName returns the integer ABI name of the register ("t2").
func (r Reg) ABIName() string {
	if r < NumRegs {
		return xRegNames[r]
	}
	return r.String()
}

// FName returns the numeric floating-point name ("f7").
func (r Reg) FName() string { return fmt.Sprintf("f%d", uint8(r)) }

// FABIName returns the floating-point ABI name ("fa0").
func (r Reg) FABIName() string {
	if r < NumRegs {
		return fRegNames[r]
	}
	return r.FName()
}

// ParseReg parses an integer register name: numeric ("x7") or ABI ("t2").
func ParseReg(s string) (Reg, bool) {
	if len(s) >= 2 && s[0] == 'x' {
		if n, ok := parseRegNum(s[1:]); ok {
			return Reg(n), true
		}
	}
	for i, n := range xRegNames {
		if s == n {
			return Reg(i), true
		}
	}
	if s == "fp" { // alternate name for s0/x8
		return RegS0, true
	}
	return 0, false
}

// ParseFReg parses a floating-point register name: numeric ("f7") or ABI ("fa0").
func ParseFReg(s string) (Reg, bool) {
	if len(s) >= 2 && s[0] == 'f' {
		if n, ok := parseRegNum(s[1:]); ok {
			return Reg(n), true
		}
	}
	for i, n := range fRegNames {
		if s == n {
			return Reg(i), true
		}
	}
	return 0, false
}

func parseRegNum(s string) (int, bool) {
	if len(s) == 0 || len(s) > 2 {
		return 0, false
	}
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	if n >= NumRegs {
		return 0, false
	}
	return n, true
}
