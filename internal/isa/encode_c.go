package isa

// Compress attempts to encode an instruction in its 16-bit RVC form.
// It returns the halfword and true when a compressed encoding exists for
// exactly these operands (the usual RVC restrictions apply: x8..x15
// register windows, narrow immediates). Hint and reserved forms are never
// produced: the result always decodes as CValid.
func Compress(inst Inst) (uint16, bool) {
	in3 := func(r Reg) bool { return r >= 8 && r <= 15 }
	r3 := func(r Reg) uint16 { return uint16(r-8) & 7 }
	full := func(r Reg) uint16 { return uint16(r) & 31 }

	switch inst.Op {
	case OpADDI:
		switch {
		case inst.Rd == 0 && inst.Rs1 == 0 && inst.Imm == 0:
			return 0x0001, true // c.nop
		case inst.Rd != 0 && inst.Rd == inst.Rs1 && inst.Imm != 0 && fits6(inst.Imm):
			// c.addi
			return 1 | imm6(inst.Imm) | full(inst.Rd)<<7, true
		case inst.Rd != 0 && inst.Rs1 == 0 && fits6(inst.Imm):
			// c.li
			return 0x4001 | imm6(inst.Imm) | full(inst.Rd)<<7, true
		case inst.Rd == RegSP && inst.Rs1 == RegSP && inst.Imm != 0 &&
			inst.Imm%16 == 0 && inst.Imm >= -512 && inst.Imm <= 496:
			// c.addi16sp
			v := uint16(0x6101)
			u := uint32(inst.Imm)
			v |= uint16(u>>9&1) << 12
			v |= uint16(u>>4&1) << 6
			v |= uint16(u>>6&1) << 5
			v |= uint16(u>>7&3) << 3
			v |= uint16(u>>5&1) << 2
			return v, true
		case in3(inst.Rd) && inst.Rs1 == RegSP && inst.Imm > 0 &&
			inst.Imm%4 == 0 && inst.Imm <= 1020:
			// c.addi4spn
			v := uint16(0x0000)
			u := uint32(inst.Imm)
			v |= uint16(u>>6&0xf) << 7
			v |= uint16(u>>4&3) << 11
			v |= uint16(u>>3&1) << 5
			v |= uint16(u>>2&1) << 6
			v |= r3(inst.Rd) << 2
			return v, true
		}
	case OpLUI:
		if inst.Rd != 0 && inst.Rd != RegSP && inst.Imm != 0 {
			hi := inst.Imm >> 12
			if hi >= -32 && hi <= 31 {
				return 0x6001 | imm6(hi) | full(inst.Rd)<<7, true
			}
		}
	case OpADD:
		switch {
		case inst.Rd != 0 && inst.Rs1 == 0 && inst.Rs2 != 0:
			// c.mv
			return 0x8002 | full(inst.Rd)<<7 | full(inst.Rs2)<<2, true
		case inst.Rd != 0 && inst.Rd == inst.Rs1 && inst.Rs2 != 0:
			// c.add
			return 0x9002 | full(inst.Rd)<<7 | full(inst.Rs2)<<2, true
		}
	case OpSUB, OpXOR, OpOR, OpAND:
		if in3(inst.Rd) && inst.Rd == inst.Rs1 && in3(inst.Rs2) {
			var f2 uint16
			switch inst.Op {
			case OpSUB:
				f2 = 0
			case OpXOR:
				f2 = 1
			case OpOR:
				f2 = 2
			default:
				f2 = 3
			}
			return 0x8c01 | r3(inst.Rd)<<7 | f2<<5 | r3(inst.Rs2)<<2, true
		}
	case OpANDI:
		if in3(inst.Rd) && inst.Rd == inst.Rs1 && fits6(inst.Imm) {
			return 0x8801 | r3(inst.Rd)<<7 | imm6(inst.Imm), true
		}
	case OpSRLI, OpSRAI, OpSLLI:
		if inst.Imm >= 1 && inst.Imm <= 31 {
			sh := uint16(inst.Imm) << 2 & 0x7c
			switch {
			case inst.Op == OpSLLI && inst.Rd != 0 && inst.Rd == inst.Rs1:
				return 0x0002 | full(inst.Rd)<<7 | sh, true
			case inst.Op == OpSRLI && in3(inst.Rd) && inst.Rd == inst.Rs1:
				return 0x8001 | r3(inst.Rd)<<7 | sh, true
			case inst.Op == OpSRAI && in3(inst.Rd) && inst.Rd == inst.Rs1:
				return 0x8401 | r3(inst.Rd)<<7 | sh, true
			}
		}
	case OpLW:
		switch {
		case in3(inst.Rd) && in3(inst.Rs1) && inst.Imm >= 0 && inst.Imm <= 124 && inst.Imm%4 == 0:
			// c.lw
			u := uint32(inst.Imm)
			return 0x4000 | uint16(u>>3&7)<<10 | r3(inst.Rs1)<<7 |
				uint16(u>>2&1)<<6 | uint16(u>>6&1)<<5 | r3(inst.Rd)<<2, true
		case inst.Rd != 0 && inst.Rs1 == RegSP && inst.Imm >= 0 && inst.Imm <= 252 && inst.Imm%4 == 0:
			// c.lwsp
			u := uint32(inst.Imm)
			return 0x4002 | uint16(u>>5&1)<<12 | full(inst.Rd)<<7 |
				uint16(u>>2&7)<<4 | uint16(u>>6&3)<<2, true
		}
	case OpSW:
		switch {
		case in3(inst.Rs2) && in3(inst.Rs1) && inst.Imm >= 0 && inst.Imm <= 124 && inst.Imm%4 == 0:
			// c.sw
			u := uint32(inst.Imm)
			return 0xc000 | uint16(u>>3&7)<<10 | r3(inst.Rs1)<<7 |
				uint16(u>>2&1)<<6 | uint16(u>>6&1)<<5 | r3(inst.Rs2)<<2, true
		case inst.Rs1 == RegSP && inst.Imm >= 0 && inst.Imm <= 252 && inst.Imm%4 == 0:
			// c.swsp
			u := uint32(inst.Imm)
			return 0xc002 | uint16(u>>2&0xf)<<9 | uint16(u>>6&3)<<7 | full(inst.Rs2)<<2, true
		}
	case OpJAL:
		if (inst.Rd == 0 || inst.Rd == RegRA) && inst.Imm >= -2048 && inst.Imm <= 2046 && inst.Imm%2 == 0 {
			base := uint16(0xa001) // c.j
			if inst.Rd == RegRA {
				base = 0x2001 // c.jal
			}
			u := uint32(inst.Imm)
			v := base
			v |= uint16(u>>11&1) << 12
			v |= uint16(u>>4&1) << 11
			v |= uint16(u>>8&3) << 9
			v |= uint16(u>>10&1) << 8
			v |= uint16(u>>6&1) << 7
			v |= uint16(u>>7&1) << 6
			v |= uint16(u>>1&7) << 3
			v |= uint16(u>>5&1) << 2
			return v, true
		}
	case OpBEQ, OpBNE:
		if in3(inst.Rs1) && inst.Rs2 == 0 && inst.Imm >= -256 && inst.Imm <= 254 && inst.Imm%2 == 0 {
			base := uint16(0xc001) // c.beqz
			if inst.Op == OpBNE {
				base = 0xe001 // c.bnez
			}
			u := uint32(inst.Imm)
			v := base
			v |= uint16(u>>8&1) << 12
			v |= uint16(u>>3&3) << 10
			v |= r3(inst.Rs1) << 7
			v |= uint16(u>>6&3) << 5
			v |= uint16(u>>1&3) << 3
			v |= uint16(u>>5&1) << 2
			return v, true
		}
	}
	return 0, false
}

func fits6(v int32) bool { return v >= -32 && v <= 31 }

// imm6 places a 6-bit signed immediate into the CI-format bit positions.
func imm6(v int32) uint16 {
	u := uint32(v)
	return uint16(u>>5&1)<<12 | uint16(u&0x1f)<<2
}
