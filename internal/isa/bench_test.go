package isa

import (
	"math/rand"
	"testing"
)

var sinkInst Inst

// BenchmarkDecode32Valid measures the decoder on valid words (the fetch
// hot path).
func BenchmarkDecode32Valid(b *testing.B) {
	words := []uint32{0x00310093, 0x005201b3, 0xffc3a303, 0x02c58533, 0x00b57553}
	for i := 0; i < b.N; i++ {
		sinkInst = Ref.Decode32(words[i%len(words)])
	}
}

// BenchmarkDecode32Random measures the decoder on random words (the
// negative-testing hot path: most are illegal).
func BenchmarkDecode32Random(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	words := make([]uint32, 1024)
	for i := range words {
		words[i] = rng.Uint32() | 3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkInst = Ref.Decode32(words[i%len(words)])
	}
}

// BenchmarkDecodeCompressed measures the RVC decoder.
func BenchmarkDecodeCompressed(b *testing.B) {
	halves := []uint16{0x157d, 0x4292, 0x852e, 0x8d89, 0x0001}
	for i := 0; i < b.N; i++ {
		sinkInst = Ref.DecodeC(halves[i%len(halves)])
	}
}

var sinkW uint32

func BenchmarkEncode(b *testing.B) {
	inst := Inst{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3}
	for i := 0; i < b.N; i++ {
		w, err := Encode(inst)
		if err != nil {
			b.Fatal(err)
		}
		sinkW = w
	}
}
