package isa

// Inst is a decoded instruction. Compressed instructions are expanded to
// their 32-bit base operation (Op, operands and immediate describe the
// expansion) with Size == 2 and COp identifying the original compressed form.
type Inst struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Rs3 Reg
	// Imm is the sign-extended immediate. For shifts it holds the shamt,
	// for CSRxI instructions the zero-extended 5-bit immediate, for
	// branches/jumps the byte offset relative to the instruction address.
	Imm int32
	// CSR is the CSR address for Zicsr instructions.
	CSR uint16
	// RM is the rounding-mode field for floating-point instructions
	// (7 = dynamic, i.e. use fcsr.frm).
	RM uint8
	// Raw is the raw encoding (zero-extended to 32 bits for compressed).
	Raw uint32
	// Size is the encoding size in bytes: 2 (compressed) or 4.
	Size uint8
	// COp identifies the original compressed form (CNone for 32-bit
	// encodings).
	COp COp
}

// Compressed reports whether the instruction came from a 16-bit encoding.
func (i Inst) Compressed() bool { return i.Size == 2 }

// Info returns the database row for the instruction's operation.
func (i Inst) Info() *OpInfo { return i.Op.Info() }

func signExtend(v uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

// bit extracts bit n of w as a uint32 in position 0.
func bit(w uint32, n uint) uint32 { return (w >> n) & 1 }

// bits extracts w[hi:lo] right-aligned.
func bits(w uint32, hi, lo uint) uint32 { return (w >> lo) & ((1 << (hi - lo + 1)) - 1) }

// Field accessors on raw 32-bit instruction words.

func rawRd(w uint32) Reg  { return Reg(bits(w, 11, 7)) }
func rawRs1(w uint32) Reg { return Reg(bits(w, 19, 15)) }
func rawRs2(w uint32) Reg { return Reg(bits(w, 24, 20)) }
func rawRs3(w uint32) Reg { return Reg(bits(w, 31, 27)) }
func rawRM(w uint32) uint8 {
	return uint8(bits(w, 14, 12))
}

// ImmI extracts the sign-extended I-type immediate.
func ImmI(w uint32) int32 { return signExtend(bits(w, 31, 20), 12) }

// ImmS extracts the sign-extended S-type immediate.
func ImmS(w uint32) int32 {
	v := bits(w, 31, 25)<<5 | bits(w, 11, 7)
	return signExtend(v, 12)
}

// ImmB extracts the sign-extended B-type (branch) immediate.
func ImmB(w uint32) int32 {
	v := bit(w, 31)<<12 | bit(w, 7)<<11 | bits(w, 30, 25)<<5 | bits(w, 11, 8)<<1
	return signExtend(v, 13)
}

// ImmU extracts the U-type immediate (already shifted into bits [31:12]).
func ImmU(w uint32) int32 { return int32(w & 0xfffff000) }

// ImmJ extracts the sign-extended J-type (jump) immediate.
func ImmJ(w uint32) int32 {
	v := bit(w, 31)<<20 | bits(w, 19, 12)<<12 | bit(w, 20)<<11 | bits(w, 30, 21)<<1
	return signExtend(v, 21)
}

// Immediate insertion (the inverse of the extractors), used by the encoder.

// PutImmI returns the I-type immediate field bits for imm.
func PutImmI(imm int32) uint32 { return uint32(imm&0xfff) << 20 }

// PutImmS returns the S-type immediate field bits for imm.
func PutImmS(imm int32) uint32 {
	v := uint32(imm) & 0xfff
	return bits(v, 11, 5)<<25 | bits(v, 4, 0)<<7
}

// PutImmB returns the B-type immediate field bits for imm.
func PutImmB(imm int32) uint32 {
	v := uint32(imm) & 0x1fff
	return bit(v, 12)<<31 | bits(v, 10, 5)<<25 | bits(v, 4, 1)<<8 | bit(v, 11)<<7
}

// PutImmU returns the U-type immediate field bits for imm (imm must already
// be in bits [31:12], i.e. a multiple of 4096 when interpreted as uint32).
func PutImmU(imm int32) uint32 { return uint32(imm) & 0xfffff000 }

// PutImmJ returns the J-type immediate field bits for imm.
func PutImmJ(imm int32) uint32 {
	v := uint32(imm) & 0x1fffff
	return bit(v, 20)<<31 | bits(v, 10, 1)<<21 | bit(v, 11)<<20 | bits(v, 19, 12)<<12
}
