package isa

import "fmt"

// Encode produces the 32-bit encoding of inst. Compressed forms are not
// encoded (the test suites carry compressed instructions as raw data words);
// pass the expanded operation instead.
func Encode(inst Inst) (uint32, error) {
	in := inst.Op.Info()
	if in == nil {
		return 0, fmt.Errorf("isa: cannot encode illegal instruction")
	}
	w := in.Match
	regOK := inst.Rd < NumRegs && inst.Rs1 < NumRegs && inst.Rs2 < NumRegs && inst.Rs3 < NumRegs
	if !regOK {
		return 0, fmt.Errorf("isa: %s: register out of range", in.Name)
	}
	putRd := func() { w |= uint32(inst.Rd) << 7 }
	putRs1 := func() { w |= uint32(inst.Rs1) << 15 }
	putRs2 := func() { w |= uint32(inst.Rs2) << 20 }
	switch in.Fmt {
	case FmtNone, FmtFence:
		// Fixed pattern only.
	case FmtR:
		putRd()
		putRs1()
		putRs2()
		if inst.Op == OpSFENCEVMA {
			w &^= 0xf80 // rd field must stay zero
		}
	case FmtR4:
		putRd()
		putRs1()
		putRs2()
		w |= uint32(inst.Rs3) << 27
		w |= uint32(inst.RM&7) << 12
	case FmtRrm:
		putRd()
		putRs1()
		putRs2()
		w |= uint32(inst.RM&7) << 12
	case FmtR2rm:
		putRd()
		putRs1()
		w |= uint32(inst.RM&7) << 12
	case FmtR2:
		putRd()
		putRs1()
	case FmtI:
		if inst.Imm < -2048 || inst.Imm > 2047 {
			return 0, fmt.Errorf("isa: %s: immediate %d out of I range", in.Name, inst.Imm)
		}
		putRd()
		putRs1()
		w |= PutImmI(inst.Imm)
	case FmtIShift:
		if inst.Imm < 0 || inst.Imm > 31 {
			return 0, fmt.Errorf("isa: %s: shift amount %d out of range", in.Name, inst.Imm)
		}
		putRd()
		putRs1()
		w |= uint32(inst.Imm) << 20
	case FmtS:
		if inst.Imm < -2048 || inst.Imm > 2047 {
			return 0, fmt.Errorf("isa: %s: immediate %d out of S range", in.Name, inst.Imm)
		}
		putRs1()
		putRs2()
		w |= PutImmS(inst.Imm)
	case FmtB:
		if inst.Imm < -4096 || inst.Imm > 4095 || inst.Imm&1 != 0 {
			return 0, fmt.Errorf("isa: %s: branch offset %d invalid", in.Name, inst.Imm)
		}
		putRs1()
		putRs2()
		w |= PutImmB(inst.Imm)
	case FmtU:
		if uint32(inst.Imm)&0xfff != 0 {
			return 0, fmt.Errorf("isa: %s: U immediate %#x has low bits set", in.Name, uint32(inst.Imm))
		}
		putRd()
		w |= PutImmU(inst.Imm)
	case FmtJ:
		if inst.Imm < -(1<<20) || inst.Imm >= 1<<20 || inst.Imm&1 != 0 {
			return 0, fmt.Errorf("isa: %s: jump offset %d invalid", in.Name, inst.Imm)
		}
		putRd()
		w |= PutImmJ(inst.Imm)
	case FmtCSR:
		if inst.CSR > 0xfff {
			return 0, fmt.Errorf("isa: %s: CSR address %#x out of range", in.Name, inst.CSR)
		}
		putRd()
		putRs1()
		w |= uint32(inst.CSR) << 20
	case FmtCSRI:
		if inst.CSR > 0xfff {
			return 0, fmt.Errorf("isa: %s: CSR address %#x out of range", in.Name, inst.CSR)
		}
		if inst.Imm < 0 || inst.Imm > 31 {
			return 0, fmt.Errorf("isa: %s: zimm %d out of range", in.Name, inst.Imm)
		}
		putRd()
		w |= uint32(inst.Imm) << 15
		w |= uint32(inst.CSR) << 20
	case FmtAMO:
		putRd()
		putRs1()
		if inst.Op != OpLRW {
			putRs2()
		}
	default:
		return 0, fmt.Errorf("isa: %s: unsupported format", in.Name)
	}
	return w, nil
}

// MustEncode is Encode but panics on error. It is reserved for
// statically known-good instructions — struct-literal test streams and
// init-time tables — where a failure is a programming error, not an
// input; library code paths that encode generated or caller-supplied
// instructions must use Encode and return the error.
func MustEncode(inst Inst) uint32 {
	w, err := Encode(inst)
	if err != nil {
		panic(fmt.Sprintf("isa: MustEncode on invariant instruction %s: %v", inst.Op, err))
	}
	return w
}
