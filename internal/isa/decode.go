package isa

// Quirks enables controlled deviations from the reference decoder. Each
// quirk models one of the decoder defects the paper reports in a real
// RISC-V simulator (section V-B); the reference decoder has all quirks off.
type Quirks struct {
	// LooseEcallMask (models the VP defect): the ECALL comparison ignores
	// the rd and rs1 fields, so any SYSTEM encoding with funct3 == 0 and a
	// zero 12-bit function field decodes as ECALL instead of being illegal.
	LooseEcallMask bool
	// AllowReservedC (models VP and GRIFT defects): reserved non-hint
	// compressed encodings (e.g. "c.lwsp x0, 0(sp)") are expanded and
	// executed normally instead of raising an illegal-instruction
	// exception.
	AllowReservedC bool
	// LooseFunct7 (models the sail-riscv defect): within the OP and OP-IMM
	// major opcodes, encodings whose funct7 bits do not match any
	// instruction are accepted anyway, decoding by funct3 and bit 30 only.
	LooseFunct7 bool
	// InvalidBranchFunct3 (models the sail-riscv non-termination defect):
	// BRANCH encodings with the invalid funct3 values 2 and 3 are decoded
	// as BEQ, so an invalid instruction can act as a backward branch.
	InvalidBranchFunct3 bool
	// CrashOnPattern (models the sail-riscv crash): decoding a specific
	// malformed compressed pattern panics, emulating the out-of-bounds
	// access that crashed the real simulator.
	CrashOnPattern bool
	// CustomAsNOP (models the riscvOVPsim defect): custom-0/custom-1 major
	// opcodes combined with a specific function bit pattern are accepted as
	// legal no-ops instead of raising an illegal-instruction exception.
	CustomAsNOP bool
}

// Decoder turns raw encodings into Inst values. The zero value is the
// reference decoder (specification behaviour, no quirks).
type Decoder struct {
	Quirks Quirks
}

// Ref is the reference decoder (no quirks).
var Ref = &Decoder{}

// Decode decodes the instruction starting in the low bytes of word. If the
// two least-significant bits are not 11, only the low 16 bits are consumed
// (compressed encoding); otherwise all 32 bits are.
// An encoding that does not correspond to any RV32GC instruction yields
// an Inst with Op == OpIllegal (Size still reflects the encoding length).
func (d *Decoder) Decode(word uint32) Inst {
	if word&3 != 3 {
		return d.DecodeC(uint16(word))
	}
	return d.Decode32(word)
}

// Decode32 decodes a 32-bit encoding.
func (d *Decoder) Decode32(w uint32) Inst {
	if w&3 != 3 || bits(w, 4, 2) == 7 {
		// Not a 32-bit encoding, or a >32-bit encoding prefix (bits[4:2]
		// == 111): illegal in the RV32GC envelope.
		return Inst{Op: OpIllegal, Raw: w, Size: 4}
	}
	major := bits(w, 6, 2)
	for _, in := range byMajor[major] {
		if w&in.Mask == in.Match {
			return expand32(in, w)
		}
	}
	// Quirk paths: only reached when the reference decode failed.
	q := d.Quirks
	if q.CrashOnPattern && w&sailCrashMask32 == sailCrashPattern32 {
		panic("sail decoder crash: malformed 32-bit instruction")
	}
	if q.CustomAsNOP && (major == 0x02 || major == 0x0a) && bits(w, 14, 12) == 4 {
		// custom-0 (0001011) / custom-1 (0101011) with funct3 == 100.
		return Inst{Op: OpCustomNOP, Raw: w, Size: 4}
	}
	if q.LooseEcallMask && major == 0x1c && bits(w, 14, 12) == 0 && bits(w, 31, 20) == 0 {
		// SYSTEM with funct3 == 0 and zero function field, but rd/rs1 != 0.
		return Inst{Op: OpECALL, Raw: w, Size: 4}
	}
	if q.LooseFunct7 && (major == 0x0c || major == 0x04) {
		// OP / OP-IMM: retry matching on funct3, bit 30 and opcode only,
		// restricted to base-ISA rows (the defect maps unknown funct7
		// patterns onto the base instruction of the same funct3 group).
		const loose = 0x4000707f
		for _, in := range byMajor[major] {
			if in.Ext == ExtI && w&loose == in.Match&loose {
				return expand32(in, w)
			}
		}
	}
	if q.InvalidBranchFunct3 && major == 0x18 {
		if f3 := bits(w, 14, 12); f3 == 2 || f3 == 3 {
			in := infoByOp[OpBEQ]
			return expand32(in, w)
		}
	}
	return Inst{Op: OpIllegal, Raw: w, Size: 4}
}

// expand32 fills operand fields according to the instruction format.
func expand32(in *OpInfo, w uint32) Inst {
	inst := Inst{Op: in.Op, Raw: w, Size: 4}
	switch in.Fmt {
	case FmtNone, FmtFence:
		// No variable operands (FENCE pred/succ bits are ignored
		// semantically in this model).
	case FmtR:
		inst.Rd, inst.Rs1, inst.Rs2 = rawRd(w), rawRs1(w), rawRs2(w)
	case FmtR4:
		inst.Rd, inst.Rs1, inst.Rs2, inst.Rs3 = rawRd(w), rawRs1(w), rawRs2(w), rawRs3(w)
		inst.RM = rawRM(w)
	case FmtRrm:
		inst.Rd, inst.Rs1, inst.Rs2 = rawRd(w), rawRs1(w), rawRs2(w)
		inst.RM = rawRM(w)
	case FmtR2rm:
		inst.Rd, inst.Rs1 = rawRd(w), rawRs1(w)
		inst.RM = rawRM(w)
	case FmtR2:
		inst.Rd, inst.Rs1 = rawRd(w), rawRs1(w)
	case FmtI:
		inst.Rd, inst.Rs1, inst.Imm = rawRd(w), rawRs1(w), ImmI(w)
	case FmtIShift:
		inst.Rd, inst.Rs1, inst.Imm = rawRd(w), rawRs1(w), int32(bits(w, 24, 20))
	case FmtS:
		inst.Rs1, inst.Rs2, inst.Imm = rawRs1(w), rawRs2(w), ImmS(w)
	case FmtB:
		inst.Rs1, inst.Rs2, inst.Imm = rawRs1(w), rawRs2(w), ImmB(w)
	case FmtU:
		inst.Rd, inst.Imm = rawRd(w), ImmU(w)
	case FmtJ:
		inst.Rd, inst.Imm = rawRd(w), ImmJ(w)
	case FmtCSR:
		inst.Rd, inst.Rs1, inst.CSR = rawRd(w), rawRs1(w), uint16(bits(w, 31, 20))
	case FmtCSRI:
		inst.Rd, inst.CSR = rawRd(w), uint16(bits(w, 31, 20))
		inst.Imm = int32(bits(w, 19, 15)) // zero-extended 5-bit immediate
	case FmtAMO:
		inst.Rd, inst.Rs1, inst.Rs2 = rawRd(w), rawRs1(w), rawRs2(w)
	}
	return inst
}
