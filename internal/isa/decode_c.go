package isa

// COp identifies a compressed (RVC) instruction form, used for
// disassembly and coverage bookkeeping; semantics live in the expansion.
type COp uint8

const (
	CNone COp = iota
	CADDI4SPN
	CFLD
	CLW
	CFLW
	CFSD
	CSW
	CFSW
	CNOP
	CADDI
	CJAL
	CLI
	CADDI16SP
	CLUI
	CSRLI
	CSRAI
	CANDI
	CSUB
	CXOR
	COR
	CAND
	CJ
	CBEQZ
	CBNEZ
	CSLLI
	CFLDSP
	CLWSP
	CFLWSP
	CJR
	CMV
	CEBREAK
	CJALR
	CADD
	CFSDSP
	CSWSP
	CFSWSP
	cOpCount
)

var cOpNames = [cOpCount]string{
	"", "c.addi4spn", "c.fld", "c.lw", "c.flw", "c.fsd", "c.sw", "c.fsw",
	"c.nop", "c.addi", "c.jal", "c.li", "c.addi16sp", "c.lui",
	"c.srli", "c.srai", "c.andi", "c.sub", "c.xor", "c.or", "c.and",
	"c.j", "c.beqz", "c.bnez",
	"c.slli", "c.fldsp", "c.lwsp", "c.flwsp", "c.jr", "c.mv", "c.ebreak",
	"c.jalr", "c.add", "c.fsdsp", "c.swsp", "c.fswsp",
}

// String returns the compressed mnemonic ("c.lwsp").
func (c COp) String() string {
	if c < cOpCount {
		return cOpNames[c]
	}
	return "c.unknown"
}

// CKind classifies a 16-bit encoding per the RVC specification's
// reserved/hint taxonomy (the distinction matters for negative testing:
// hints execute as no-ops, reserved non-hint encodings must trap).
type CKind uint8

const (
	// CValid: a regular compressed instruction.
	CValid CKind = iota
	// CHint: encodings the specification defines as hints; they execute as
	// no-ops (the expansion writes x0 or performs an identity update).
	CHint
	// CReserved: reserved non-hint encodings that have a natural expansion
	// a buggy simulator might perform (e.g. c.lwsp with rd == 0); the
	// specification requires an illegal-instruction exception.
	CReserved
	// CIllegal: encodings with no defined expansion at all.
	CIllegal
)

// The modelled sail-riscv decoder crashes on two malformed patterns when
// Quirks.CrashOnPattern is set (the paper: "some inputs crashed
// sail-riscv" on both RV32I and RV32IMC): a compressed quadrant-0
// funct3=100 row with a specific register pattern, and a 32-bit encoding
// in the reserved custom-2 major opcode (1011011) with funct3 bit 2 set.
const (
	sailCrashMask    = 0xe403
	sailCrashPattern = 0x8400

	sailCrashMask32    = 0x0000407f
	sailCrashPattern32 = 0x0000405b
)

// DecodeC decodes a 16-bit compressed encoding, expanding it to its base
// operation. Reserved non-hint encodings decode to OpIllegal unless the
// AllowReservedC quirk is set, in which case they expand "normally" the way
// the buggy simulators in the paper do. Hints decode to their (no-effect)
// expansion, which is legal behaviour.
func (d *Decoder) DecodeC(h uint16) Inst {
	if d.Quirks.CrashOnPattern && h&sailCrashMask == sailCrashPattern {
		panic("sail decoder crash: malformed compressed instruction")
	}
	inst, kind := decodeC(h)
	switch kind {
	case CValid, CHint:
		return inst
	case CReserved:
		if d.Quirks.AllowReservedC {
			return inst
		}
	}
	return Inst{Op: OpIllegal, Raw: uint32(h), Size: 2}
}

// ClassifyC returns the RVC classification of the encoding together with
// its (possible) expansion. For CIllegal the returned Inst has
// Op == OpIllegal.
func ClassifyC(h uint16) (Inst, CKind) { return decodeC(h) }

// decodeC is the single decode routine for RV32C.
func decodeC(h uint16) (Inst, CKind) {
	w := uint32(h)
	mk := func(c COp, op Op, rd, rs1, rs2 Reg, imm int32) Inst {
		return Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm, Raw: w, Size: 2, COp: c}
	}
	rdP := Reg(bits(w, 4, 2) + 8)  // rd' (bits 4:2, registers x8..x15)
	rs1P := Reg(bits(w, 9, 7) + 8) // rs1' (bits 9:7)
	rdFull := Reg(bits(w, 11, 7))  // full rd/rs1 field
	rs2Full := Reg(bits(w, 6, 2))  // full rs2 field
	funct3 := bits(w, 15, 13)

	switch w & 3 {
	case 0: // quadrant 0
		switch funct3 {
		case 0: // c.addi4spn
			uimm := bits(w, 10, 7)<<6 | bits(w, 12, 11)<<4 | bit(w, 5)<<3 | bit(w, 6)<<2
			if uimm == 0 {
				if w == 0 {
					// The all-zero encoding is defined illegal.
					return Inst{Op: OpIllegal, Raw: w, Size: 2}, CIllegal
				}
				return mk(CADDI4SPN, OpADDI, rdP, RegSP, 0, 0), CReserved
			}
			return mk(CADDI4SPN, OpADDI, rdP, RegSP, 0, int32(uimm)), CValid
		case 1: // c.fld
			uimm := bits(w, 12, 10)<<3 | bits(w, 6, 5)<<6
			return mk(CFLD, OpFLD, rdP, rs1P, 0, int32(uimm)), CValid
		case 2: // c.lw
			uimm := bits(w, 12, 10)<<3 | bit(w, 6)<<2 | bit(w, 5)<<6
			return mk(CLW, OpLW, rdP, rs1P, 0, int32(uimm)), CValid
		case 3: // c.flw (RV32)
			uimm := bits(w, 12, 10)<<3 | bit(w, 6)<<2 | bit(w, 5)<<6
			return mk(CFLW, OpFLW, rdP, rs1P, 0, int32(uimm)), CValid
		case 5: // c.fsd
			uimm := bits(w, 12, 10)<<3 | bits(w, 6, 5)<<6
			return mk(CFSD, OpFSD, 0, rs1P, rdP, int32(uimm)), CValid
		case 6: // c.sw
			uimm := bits(w, 12, 10)<<3 | bit(w, 6)<<2 | bit(w, 5)<<6
			return mk(CSW, OpSW, 0, rs1P, rdP, int32(uimm)), CValid
		case 7: // c.fsw (RV32)
			uimm := bits(w, 12, 10)<<3 | bit(w, 6)<<2 | bit(w, 5)<<6
			return mk(CFSW, OpFSW, 0, rs1P, rdP, int32(uimm)), CValid
		}
		// funct3 == 4 is a wholly reserved row with no expansion.
		return Inst{Op: OpIllegal, Raw: w, Size: 2}, CIllegal

	case 1: // quadrant 1
		switch funct3 {
		case 0: // c.nop / c.addi
			imm := signExtend(bit(w, 12)<<5|bits(w, 6, 2), 6)
			if rdFull == 0 {
				if imm == 0 {
					return mk(CNOP, OpADDI, 0, 0, 0, 0), CValid
				}
				return mk(CADDI, OpADDI, 0, 0, 0, imm), CHint
			}
			if imm == 0 {
				return mk(CADDI, OpADDI, rdFull, rdFull, 0, 0), CHint
			}
			return mk(CADDI, OpADDI, rdFull, rdFull, 0, imm), CValid
		case 1: // c.jal (RV32)
			return mk(CJAL, OpJAL, RegRA, 0, 0, cjImm(w)), CValid
		case 2: // c.li
			imm := signExtend(bit(w, 12)<<5|bits(w, 6, 2), 6)
			if rdFull == 0 {
				return mk(CLI, OpADDI, 0, 0, 0, imm), CHint
			}
			return mk(CLI, OpADDI, rdFull, RegZero, 0, imm), CValid
		case 3:
			if rdFull == RegSP { // c.addi16sp
				imm := signExtend(bit(w, 12)<<9|bit(w, 6)<<4|bit(w, 5)<<6|bits(w, 4, 3)<<7|bit(w, 2)<<5, 10)
				if imm == 0 {
					return mk(CADDI16SP, OpADDI, RegSP, RegSP, 0, 0), CReserved
				}
				return mk(CADDI16SP, OpADDI, RegSP, RegSP, 0, imm), CValid
			}
			// c.lui
			imm := signExtend(bit(w, 12)<<17|bits(w, 6, 2)<<12, 18)
			if imm == 0 {
				return mk(CLUI, OpLUI, rdFull, 0, 0, 0), CReserved
			}
			if rdFull == 0 {
				return mk(CLUI, OpLUI, 0, 0, 0, imm), CHint
			}
			return mk(CLUI, OpLUI, rdFull, 0, 0, imm), CValid
		case 4:
			switch bits(w, 11, 10) {
			case 0, 1: // c.srli / c.srai
				cop, op := CSRLI, OpSRLI
				if bits(w, 11, 10) == 1 {
					cop, op = CSRAI, OpSRAI
				}
				shamt := bit(w, 12)<<5 | bits(w, 6, 2)
				if shamt&0x20 != 0 {
					// shamt[5] != 0 is reserved (NSE) on RV32.
					return mk(cop, op, rs1P, rs1P, 0, int32(shamt&0x1f)), CReserved
				}
				if shamt == 0 {
					return mk(cop, op, rs1P, rs1P, 0, 0), CHint
				}
				return mk(cop, op, rs1P, rs1P, 0, int32(shamt)), CValid
			case 2: // c.andi
				imm := signExtend(bit(w, 12)<<5|bits(w, 6, 2), 6)
				return mk(CANDI, OpANDI, rs1P, rs1P, 0, imm), CValid
			default: // register-register group
				if bit(w, 12) != 0 {
					// Reserved on RV32 (c.subw/c.addw rows of RV64).
					return Inst{Op: OpIllegal, Raw: w, Size: 2}, CIllegal
				}
				rs2 := rdP
				switch bits(w, 6, 5) {
				case 0:
					return mk(CSUB, OpSUB, rs1P, rs1P, rs2, 0), CValid
				case 1:
					return mk(CXOR, OpXOR, rs1P, rs1P, rs2, 0), CValid
				case 2:
					return mk(COR, OpOR, rs1P, rs1P, rs2, 0), CValid
				default:
					return mk(CAND, OpAND, rs1P, rs1P, rs2, 0), CValid
				}
			}
		case 5: // c.j
			return mk(CJ, OpJAL, RegZero, 0, 0, cjImm(w)), CValid
		case 6: // c.beqz
			return mk(CBEQZ, OpBEQ, 0, rs1P, RegZero, cbImm(w)), CValid
		default: // c.bnez
			return mk(CBNEZ, OpBNE, 0, rs1P, RegZero, cbImm(w)), CValid
		}

	case 3:
		// Quadrant 3 is the 32-bit (and wider) encoding space: not a
		// compressed instruction at all. Callers fetch 32 bits for these;
		// a stray halfword is not decodable.
		return Inst{Op: OpIllegal, Raw: w, Size: 2}, CIllegal

	default: // quadrant 2
		switch funct3 {
		case 0: // c.slli
			shamt := bit(w, 12)<<5 | bits(w, 6, 2)
			if shamt&0x20 != 0 {
				return mk(CSLLI, OpSLLI, rdFull, rdFull, 0, int32(shamt&0x1f)), CReserved
			}
			if rdFull == 0 || shamt == 0 {
				return mk(CSLLI, OpSLLI, rdFull, rdFull, 0, int32(shamt)), CHint
			}
			return mk(CSLLI, OpSLLI, rdFull, rdFull, 0, int32(shamt)), CValid
		case 1: // c.fldsp
			uimm := bit(w, 12)<<5 | bits(w, 6, 5)<<3 | bits(w, 4, 2)<<6
			return mk(CFLDSP, OpFLD, rdFull, RegSP, 0, int32(uimm)), CValid
		case 2: // c.lwsp
			uimm := bit(w, 12)<<5 | bits(w, 6, 4)<<2 | bits(w, 3, 2)<<6
			if rdFull == 0 {
				// Reserved non-hint: the exact case of the VP/GRIFT bug
				// discussed in the paper ("c.lwsp x0, 0(sp)").
				return mk(CLWSP, OpLW, 0, RegSP, 0, int32(uimm)), CReserved
			}
			return mk(CLWSP, OpLW, rdFull, RegSP, 0, int32(uimm)), CValid
		case 3: // c.flwsp (RV32)
			uimm := bit(w, 12)<<5 | bits(w, 6, 4)<<2 | bits(w, 3, 2)<<6
			return mk(CFLWSP, OpFLW, rdFull, RegSP, 0, int32(uimm)), CValid
		case 4:
			if bit(w, 12) == 0 {
				if rs2Full == 0 { // c.jr
					if rdFull == 0 {
						return mk(CJR, OpJALR, 0, 0, 0, 0), CReserved
					}
					return mk(CJR, OpJALR, RegZero, rdFull, 0, 0), CValid
				}
				// c.mv
				if rdFull == 0 {
					return mk(CMV, OpADD, 0, RegZero, rs2Full, 0), CHint
				}
				return mk(CMV, OpADD, rdFull, RegZero, rs2Full, 0), CValid
			}
			if rs2Full == 0 {
				if rdFull == 0 { // c.ebreak
					return mk(CEBREAK, OpEBREAK, 0, 0, 0, 0), CValid
				}
				return mk(CJALR, OpJALR, RegRA, rdFull, 0, 0), CValid
			}
			// c.add
			if rdFull == 0 {
				return mk(CADD, OpADD, 0, rdFull, rs2Full, 0), CHint
			}
			return mk(CADD, OpADD, rdFull, rdFull, rs2Full, 0), CValid
		case 5: // c.fsdsp
			uimm := bits(w, 12, 10)<<3 | bits(w, 9, 7)<<6
			return mk(CFSDSP, OpFSD, 0, RegSP, rs2Full, int32(uimm)), CValid
		case 6: // c.swsp
			uimm := bits(w, 12, 9)<<2 | bits(w, 8, 7)<<6
			return mk(CSWSP, OpSW, 0, RegSP, rs2Full, int32(uimm)), CValid
		default: // c.fswsp (RV32)
			uimm := bits(w, 12, 9)<<2 | bits(w, 8, 7)<<6
			return mk(CFSWSP, OpFSW, 0, RegSP, rs2Full, int32(uimm)), CValid
		}
	}
}

// cjImm extracts the CJ-format jump offset (c.j / c.jal).
func cjImm(w uint32) int32 {
	v := bit(w, 12)<<11 | bit(w, 11)<<4 | bits(w, 10, 9)<<8 | bit(w, 8)<<10 |
		bit(w, 7)<<6 | bit(w, 6)<<7 | bits(w, 5, 3)<<1 | bit(w, 2)<<5
	return signExtend(v, 12)
}

// cbImm extracts the CB-format branch offset (c.beqz / c.bnez).
func cbImm(w uint32) int32 {
	v := bit(w, 12)<<8 | bits(w, 11, 10)<<3 | bits(w, 6, 5)<<6 |
		bits(w, 4, 3)<<1 | bit(w, 2)<<5
	return signExtend(v, 9)
}
