package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDecodeKnownEncodings(t *testing.T) {
	cases := []struct {
		word uint32
		want Inst
	}{
		{0x00310093, Inst{Op: OpADDI, Rd: 1, Rs1: 2, Imm: 3}},
		{0x005201b3, Inst{Op: OpADD, Rd: 3, Rs1: 4, Rs2: 5}},
		{0x40520233, Inst{Op: OpSUB, Rd: 4, Rs1: 4, Rs2: 5}},
		{0xffc3a303, Inst{Op: OpLW, Rd: 6, Rs1: 7, Imm: -4}},
		{0x0062a823, Inst{Op: OpSW, Rs1: 5, Rs2: 6, Imm: 16}},
		{0x00000073, Inst{Op: OpECALL}},
		{0x00100073, Inst{Op: OpEBREAK}},
		{0x30200073, Inst{Op: OpMRET}},
		{0x10500073, Inst{Op: OpWFI}},
		{0x00000037, Inst{Op: OpLUI, Rd: 0, Imm: 0}},
		{0xfffff5b7, Inst{Op: OpLUI, Rd: 11, Imm: int32(0xfffff000 - 1<<32)}},
		{0x02c58533, Inst{Op: OpMUL, Rd: 10, Rs1: 11, Rs2: 12}},
		{0x1005272f, Inst{Op: OpLRW, Rd: 14, Rs1: 10}},
		{0x18e5272f, Inst{Op: OpSCW, Rd: 14, Rs1: 10, Rs2: 14}},
		{0x00a5f533, Inst{Op: OpAND, Rd: 10, Rs1: 11, Rs2: 10}},
		{0x0000100f, Inst{Op: OpFENCEI}},
		{0x34029073, Inst{Op: OpCSRRW, Rd: 0, Rs1: 5, CSR: 0x340}},
		{0x00b57553, Inst{Op: OpFADDS, Rd: 10, Rs1: 10, Rs2: 11, RM: 7}},
		{0x5a00f0d3, Inst{Op: OpFSQRTD, Rd: 1, Rs1: 1, RM: 7}},
	}
	for _, c := range cases {
		got := Ref.Decode32(c.word)
		c.want.Raw = c.word
		c.want.Size = 4
		if got != c.want {
			t.Errorf("Decode32(%#08x) = %+v, want %+v", c.word, got, c.want)
		}
	}
}

func TestDecodeIllegal32(t *testing.T) {
	for _, w := range []uint32{
		0xffffffff,          // all ones
		0x00000013 | 0x7<<2, // major opcode with bits[4:2]=111 (>32-bit prefix)
		0x0000707f,          // unused major opcode pattern
		0x0000005b,          // custom-2/reserved major opcode (not a quirk target)
		0x00002063,          // BEQ funct3=2: invalid branch funct3
		0x00003063,          // funct3=3
		0x02001013,          // SLLI with funct7 bit 25 set (RV64 shamt)
		0x00400073,          // SYSTEM funct3=0, imm=4 (no such instruction)
		0x00000173,          // "ECALL" with rd=2: must be illegal on reference
		0x000a0073,          // "ECALL" with rs1=20: must be illegal
		0x0000000b,          // custom-0 opcode
		0x0000402b,          // custom-1 opcode funct3=4 (quirk target; illegal here)
	} {
		if got := Ref.Decode32(w); got.Op != OpIllegal {
			t.Errorf("Decode32(%#08x) = %v, want illegal", w, got.Op)
		}
	}
}

// TestMaskMatchUniqueness randomizes the free bits of every table entry and
// checks the decoder returns exactly that entry's operation.
func TestMaskMatchUniqueness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, in := range Instructions {
		for trial := 0; trial < 64; trial++ {
			w := (rng.Uint32() &^ in.Mask) | in.Match
			got := Ref.Decode32(w)
			if got.Op != in.Op {
				t.Fatalf("%s: randomized word %#08x decoded as %v", in.Name, w, got.Op)
			}
		}
	}
}

// TestEncodeDecodeRoundtrip generates random valid instructions per format
// and checks decode(encode(inst)) recovers all operand fields.
func TestEncodeDecodeRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	reg := func() Reg { return Reg(rng.Intn(32)) }
	for _, in := range Instructions {
		for trial := 0; trial < 32; trial++ {
			inst := Inst{Op: in.Op}
			switch in.Fmt {
			case FmtR:
				inst.Rd, inst.Rs1, inst.Rs2 = reg(), reg(), reg()
				if in.Op == OpSFENCEVMA {
					inst.Rd = 0
				}
			case FmtR4:
				inst.Rd, inst.Rs1, inst.Rs2, inst.Rs3 = reg(), reg(), reg(), reg()
				inst.RM = uint8(rng.Intn(8))
			case FmtRrm:
				inst.Rd, inst.Rs1, inst.Rs2 = reg(), reg(), reg()
				inst.RM = uint8(rng.Intn(8))
			case FmtR2rm:
				inst.Rd, inst.Rs1 = reg(), reg()
				inst.RM = uint8(rng.Intn(8))
			case FmtR2:
				inst.Rd, inst.Rs1 = reg(), reg()
			case FmtI:
				inst.Rd, inst.Rs1 = reg(), reg()
				inst.Imm = int32(rng.Intn(4096) - 2048)
			case FmtIShift:
				inst.Rd, inst.Rs1 = reg(), reg()
				inst.Imm = int32(rng.Intn(32))
			case FmtS:
				inst.Rs1, inst.Rs2 = reg(), reg()
				inst.Imm = int32(rng.Intn(4096) - 2048)
			case FmtB:
				inst.Rs1, inst.Rs2 = reg(), reg()
				inst.Imm = int32(rng.Intn(8192)-4096) &^ 1
			case FmtU:
				inst.Rd = reg()
				inst.Imm = int32(rng.Uint32() & 0xfffff000)
			case FmtJ:
				inst.Rd = reg()
				inst.Imm = int32(rng.Intn(1<<21)-1<<20) &^ 1
			case FmtCSR:
				inst.Rd, inst.Rs1 = reg(), reg()
				inst.CSR = uint16(rng.Intn(4096))
			case FmtCSRI:
				inst.Rd = reg()
				inst.CSR = uint16(rng.Intn(4096))
				inst.Imm = int32(rng.Intn(32))
			case FmtAMO:
				inst.Rd, inst.Rs1, inst.Rs2 = reg(), reg(), reg()
				if in.Op == OpLRW {
					inst.Rs2 = 0
				}
			case FmtNone, FmtFence:
				// nothing
			}
			w, err := Encode(inst)
			if err != nil {
				t.Fatalf("%s: encode %+v: %v", in.Name, inst, err)
			}
			got := Ref.Decode32(w)
			inst.Raw, inst.Size = w, 4
			if got != inst {
				t.Fatalf("%s: roundtrip %+v -> %#08x -> %+v", in.Name, inst, w, got)
			}
		}
	}
}

func TestEncodeRangeErrors(t *testing.T) {
	cases := []Inst{
		{Op: OpADDI, Imm: 2048},
		{Op: OpADDI, Imm: -2049},
		{Op: OpSW, Imm: 4000},
		{Op: OpBEQ, Imm: 3},    // odd branch offset
		{Op: OpBEQ, Imm: 4096}, // out of range
		{Op: OpJAL, Imm: 1 << 20},
		{Op: OpLUI, Imm: 4}, // low bits set
		{Op: OpSLLI, Imm: 32},
		{Op: OpCSRRWI, Imm: 32},
	}
	for _, c := range cases {
		if _, err := Encode(c); err == nil {
			t.Errorf("Encode(%v imm=%d): want error", c.Op, c.Imm)
		}
	}
	if _, err := Encode(Inst{Op: OpIllegal}); err == nil {
		t.Error("Encode(illegal): want error")
	}
}

func TestDecodeCompressedKnown(t *testing.T) {
	cases := []struct {
		half uint16
		cop  COp
		want Inst
	}{
		{0x157d, CADDI, Inst{Op: OpADDI, Rd: 10, Rs1: 10, Imm: -1}},
		{0x0001, CNOP, Inst{Op: OpADDI}},
		{0x4292, CLWSP, Inst{Op: OpLW, Rd: 5, Rs1: RegSP, Imm: 4}},
		{0x8082, CJR, Inst{Op: OpJALR, Rd: 0, Rs1: RegRA}}, // ret
		{0x9002, CEBREAK, Inst{Op: OpEBREAK}},
		{0x852e, CMV, Inst{Op: OpADD, Rd: 10, Rs1: 0, Rs2: 11}},
		{0x962a, CADD, Inst{Op: OpADD, Rd: 12, Rs1: 12, Rs2: 10}},
		{0x4601, CLI, Inst{Op: OpADDI, Rd: 12, Rs1: 0, Imm: 0}},
		{0x8d89, CSUB, Inst{Op: OpSUB, Rd: 11, Rs1: 11, Rs2: 10}},
		{0xc298, CSW, Inst{Op: OpSW, Rs1: 13, Rs2: 14, Imm: 0}},
		{0x4398, CLW, Inst{Op: OpLW, Rd: 14, Rs1: 15, Imm: 0}},
	}
	for _, c := range cases {
		got := Ref.DecodeC(c.half)
		c.want.Raw, c.want.Size, c.want.COp = uint32(c.half), 2, c.cop
		if got != c.want {
			t.Errorf("DecodeC(%#04x) = %+v, want %+v", c.half, got, c.want)
		}
	}
}

func TestCompressedReservedAndHints(t *testing.T) {
	// c.lwsp x0, 0(sp): reserved non-hint (the paper's VP bug case).
	const clwspX0 = 0x4002
	if inst, kind := ClassifyC(clwspX0); kind != CReserved || inst.Op != OpLW || inst.Rd != 0 {
		t.Errorf("c.lwsp x0: classify = (%v, %v)", inst, kind)
	}
	if got := Ref.DecodeC(clwspX0); got.Op != OpIllegal {
		t.Errorf("reference DecodeC(c.lwsp x0) = %v, want illegal", got.Op)
	}
	buggy := &Decoder{Quirks: Quirks{AllowReservedC: true}}
	if got := buggy.DecodeC(clwspX0); got.Op != OpLW || got.Rd != 0 {
		t.Errorf("buggy DecodeC(c.lwsp x0) = %v rd=%v, want lw x0", got.Op, got.Rd)
	}

	// The all-zero encoding is defined illegal, even for buggy decoders.
	if got := buggy.DecodeC(0); got.Op != OpIllegal {
		t.Errorf("DecodeC(0) = %v, want illegal", got.Op)
	}
	// Quadrant-0 funct3=100 is wholly reserved with no expansion.
	if got := buggy.DecodeC(0x8000); got.Op != OpIllegal {
		t.Errorf("DecodeC(0x8000) = %v, want illegal", got.Op)
	}
	// c.jr with rs1=0 is reserved.
	if _, kind := ClassifyC(0x8002); kind != CReserved {
		t.Errorf("c.jr x0: kind = %v, want reserved", kind)
	}
	// c.addi16sp with nzimm=0 is reserved.
	if _, kind := ClassifyC(0x6101); kind != CReserved {
		t.Errorf("c.addi16sp 0: kind = %v, want reserved", kind)
	}
	// c.lui with rd!=0, imm=0 is reserved.
	if _, kind := ClassifyC(0x6281); kind != CReserved {
		t.Errorf("c.lui x5, 0: kind = %v, want reserved", kind)
	}
	// c.li x0 is a hint and must execute (as a no-op).
	if inst, kind := ClassifyC(0x4005); kind != CHint || inst.Rd != 0 {
		t.Errorf("c.li x0: classify = (%v, %v), want hint", inst, kind)
	}
	if got := Ref.DecodeC(0x4005); got.Op != OpADDI {
		t.Errorf("reference DecodeC(c.li x0) = %v, want addi (hint nop)", got.Op)
	}
	// c.slli with shamt[5] set is reserved on RV32.
	if _, kind := ClassifyC(0x1282); kind != CReserved {
		t.Errorf("c.slli shamt>=32: kind = %v, want reserved", kind)
	}
}

func TestDecodeCNeverPanicsReference(t *testing.T) {
	f := func(h uint16) bool {
		inst := Ref.DecodeC(h)
		return inst.Size == 2 && inst.Raw == uint32(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeDispatchesOnLowBits(t *testing.T) {
	// Low bits 11 -> 32-bit decode; otherwise compressed.
	if got := Ref.Decode(0x00000013); got.Size != 4 || got.Op != OpADDI {
		t.Errorf("Decode(addi word) = %+v", got)
	}
	if got := Ref.Decode(0xffff0001); got.Size != 2 {
		t.Errorf("Decode(compressed) size = %d, want 2", got.Size)
	}
}

func TestQuirkLooseEcallMask(t *testing.T) {
	vp := &Decoder{Quirks: Quirks{LooseEcallMask: true}}
	w := uint32(0x00000073) | 5<<7 | 9<<15 // "ecall" with rd=5, rs1=9
	if got := Ref.Decode32(w); got.Op != OpIllegal {
		t.Fatalf("reference: %v, want illegal", got.Op)
	}
	if got := vp.Decode32(w); got.Op != OpECALL {
		t.Fatalf("vp quirk: %v, want ecall", got.Op)
	}
	// A real ECALL stays an ECALL on both.
	if got := vp.Decode32(0x73); got.Op != OpECALL {
		t.Fatalf("vp quirk real ecall: %v", got.Op)
	}
	// funct3 != 0 must stay illegal even with the quirk.
	if got := vp.Decode32(0x00004073); got.Op != OpIllegal {
		t.Fatalf("vp quirk funct3!=0: %v, want illegal", got.Op)
	}
}

func TestQuirkLooseFunct7(t *testing.T) {
	sail := &Decoder{Quirks: Quirks{LooseFunct7: true}}
	// ADD with a garbage funct7 (0x13): invalid, but the quirky decoder
	// accepts it as ADD (bit 30 clear).
	w := uint32(0x00000033) | 0x13<<25 | 1<<7 | 2<<15 | 3<<20
	if got := Ref.Decode32(w); got.Op != OpIllegal {
		t.Fatalf("reference: %v, want illegal", got.Op)
	}
	if got := sail.Decode32(w); got.Op != OpADD || got.Rd != 1 {
		t.Fatalf("sail quirk: %v, want add x1", got.Op)
	}
	// With bit 30 set it maps to SUB.
	w |= 1 << 30
	if got := sail.Decode32(w); got.Op != OpSUB {
		t.Fatalf("sail quirk bit30: %v, want sub", got.Op)
	}
	// Valid M instructions still decode exactly on the quirky decoder.
	if got := sail.Decode32(0x02c58533); got.Op != OpMUL {
		t.Fatalf("sail quirk mul: %v, want mul", got.Op)
	}
	// SLLI with an RV64 shamt bit decodes as SLLI under the quirk.
	if got := sail.Decode32(0x02051513); got.Op != OpSLLI {
		t.Fatalf("sail quirk slli: %v, want slli", got.Op)
	}
}

func TestQuirkInvalidBranchFunct3(t *testing.T) {
	sail := &Decoder{Quirks: Quirks{InvalidBranchFunct3: true}}
	// Branch funct3=2 with a negative offset: decodes as backward BEQ.
	inst := Inst{Op: OpBEQ, Rs1: 0, Rs2: 0, Imm: -8}
	w, err := Encode(inst)
	if err != nil {
		t.Fatal(err)
	}
	w = (w &^ (7 << 12)) | 2<<12
	if got := Ref.Decode32(w); got.Op != OpIllegal {
		t.Fatalf("reference: %v, want illegal", got.Op)
	}
	got := sail.Decode32(w)
	if got.Op != OpBEQ || got.Imm != -8 {
		t.Fatalf("sail quirk: %v imm=%d, want beq -8", got.Op, got.Imm)
	}
}

func TestQuirkCustomAsNOP(t *testing.T) {
	ovp := &Decoder{Quirks: Quirks{CustomAsNOP: true}}
	for _, opc := range []uint32{0x0b, 0x2b} {
		w := opc | 4<<12 | 0xdead<<16
		if got := Ref.Decode32(w); got.Op != OpIllegal {
			t.Fatalf("reference custom opcode %#x: %v, want illegal", opc, got.Op)
		}
		if got := ovp.Decode32(w); got.Op != OpCustomNOP {
			t.Fatalf("ovpsim custom opcode %#x: %v, want custom nop", opc, got.Op)
		}
		// Without the special funct3 pattern the word stays illegal.
		w2 := opc | 2<<12
		if got := ovp.Decode32(w2); got.Op != OpIllegal {
			t.Fatalf("ovpsim custom opcode %#x funct3=2: %v, want illegal", opc, got.Op)
		}
	}
}

func TestQuirkCrashOnPattern(t *testing.T) {
	sail := &Decoder{Quirks: Quirks{CrashOnPattern: true}}
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("compressed", func() { sail.DecodeC(sailCrashPattern) })
	expectPanic("32-bit", func() { sail.Decode32(sailCrashPattern32 | 0xdea00000) })
	// The reference decoder survives both.
	if got := Ref.DecodeC(sailCrashPattern); got.Op != OpIllegal {
		t.Errorf("reference compressed crash pattern: %v", got.Op)
	}
	if got := Ref.Decode32(sailCrashPattern32); got.Op != OpIllegal {
		t.Errorf("reference 32-bit crash pattern: %v", got.Op)
	}
	// Valid instructions still decode on the quirky decoder.
	if got := sail.Decode32(0x00310093); got.Op != OpADDI {
		t.Errorf("sail valid decode: %v", got.Op)
	}
}

func TestConfigParse(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Config
	}{
		{"RV32I", RV32I},
		{"rv32imc", RV32IMC},
		{"RV32GC", RV32GC},
		{"RV32IMAFDC", RV32GC},
		{"RV32IM", RV32IM},
	} {
		got, err := ParseConfig(c.in)
		if err != nil {
			t.Fatalf("ParseConfig(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseConfig(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	// D implies F in the parser (matching GCC -march behaviour).
	if got, err := ParseConfig("RV32ID"); err != nil || !got.Has(ExtF|ExtD) {
		t.Errorf("ParseConfig(RV32ID) = %v, %v; want F implied", got, err)
	}
	for _, bad := range []string{"RV64I", "RV32", "RV32X", "RV32E"} {
		if _, err := ParseConfig(bad); err == nil {
			t.Errorf("ParseConfig(%q): want error", bad)
		}
	}
	if RV32GC.String() != "RV32GC" || RV32IMC.String() != "RV32IMC" || RV32I.String() != "RV32I" {
		t.Errorf("config String: %s %s %s", RV32GC, RV32IMC, RV32I)
	}
	if !RV32I.Sub(RV32IMC) || !RV32IMC.Sub(RV32GC) || RV32GC.Sub(RV32IMC) {
		t.Error("Sub relation wrong")
	}
}

func TestConfigMISA(t *testing.T) {
	v := RV32IMC.MISA()
	if v>>30 != 1 {
		t.Errorf("MISA MXL = %d", v>>30)
	}
	if v&(1<<8) == 0 || v&(1<<12) == 0 || v&(1<<2) == 0 {
		t.Errorf("MISA missing I/M/C bits: %#x", v)
	}
	if v&(1<<5) != 0 {
		t.Errorf("MISA has F bit for RV32IMC: %#x", v)
	}
}

func TestRegParsing(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Reg
	}{{"x0", 0}, {"zero", 0}, {"ra", 1}, {"sp", 2}, {"x31", 31}, {"t6", 31}, {"fp", 8}, {"s0", 8}, {"a0", 10}} {
		got, ok := ParseReg(c.in)
		if !ok || got != c.want {
			t.Errorf("ParseReg(%q) = %v,%v want %v", c.in, got, ok, c.want)
		}
	}
	for _, bad := range []string{"x32", "x", "q7", "", "f0"} {
		if _, ok := ParseReg(bad); ok {
			t.Errorf("ParseReg(%q): want failure", bad)
		}
	}
	for _, c := range []struct {
		in   string
		want Reg
	}{{"f0", 0}, {"ft0", 0}, {"fa0", 10}, {"f31", 31}, {"ft11", 31}} {
		got, ok := ParseFReg(c.in)
		if !ok || got != c.want {
			t.Errorf("ParseFReg(%q) = %v,%v want %v", c.in, got, ok, c.want)
		}
	}
}

func TestDisasmSmoke(t *testing.T) {
	cases := []struct {
		word uint32
		want string
	}{
		{0x00310093, "addi ra, sp, 3"},
		{0x005201b3, "add gp, tp, t0"},
		{0xffc3a303, "lw t1, -4(t2)"},
		{0x00000073, "ecall"},
		{0x34029073, "csrrw zero, mscratch, t0"},
	}
	for _, c := range cases {
		if got := Disasm(Ref.Decode32(c.word)); got != c.want {
			t.Errorf("Disasm(%#08x) = %q, want %q", c.word, got, c.want)
		}
	}
	// Compressed shows expansion with the c-mnemonic.
	got := Disasm(Ref.DecodeC(0x157d))
	if got != "c.addi {addi a0, a0, -1}" {
		t.Errorf("compressed disasm = %q", got)
	}
	// Illegal words render as data.
	if got := Disasm(Ref.Decode32(0xffffffff)); got == "" {
		t.Error("illegal disasm empty")
	}
}

func TestOpMetadata(t *testing.T) {
	if !OpJALR.Flags().Is(FlagForbidden) {
		t.Error("JALR must be forbidden")
	}
	for _, op := range []Op{OpCSRRW, OpCSRRS, OpCSRRC, OpCSRRWI, OpCSRRSI, OpCSRRCI, OpMRET, OpSRET, OpURET, OpWFI, OpSFENCEVMA, OpEBREAK} {
		if !op.Flags().Is(FlagForbidden) {
			t.Errorf("%v must be forbidden", op)
		}
	}
	if OpECALL.Flags().Is(FlagForbidden) {
		t.Error("ECALL must not be forbidden (it traps deterministically)")
	}
	if OpLW.Info().MemSize != 4 || OpLB.Info().MemSize != 1 || OpFLD.Info().MemSize != 8 {
		t.Error("memory sizes wrong")
	}
	if OpIllegal.Info() != nil || OpIllegal.Valid() {
		t.Error("OpIllegal must have no info")
	}
	if OpADD.String() != "add" || OpIllegal.String() != "illegal" {
		t.Error("op names wrong")
	}
	if LookupName("add").Op != OpADD || LookupName("nosuch") != nil {
		t.Error("LookupName wrong")
	}
}

// TestDecodeCExhaustive sweeps all 65536 compressed encodings, checking
// the decoder is total, consistent with ClassifyC, and that the quirky
// (reserved-accepting) decoder accepts a strict superset.
func TestDecodeCExhaustive(t *testing.T) {
	buggy := &Decoder{Quirks: Quirks{AllowReservedC: true}}
	counts := map[CKind]int{}
	for h := 0; h <= 0xffff; h++ {
		half := uint16(h)
		inst, kind := ClassifyC(half)
		counts[kind]++
		ref := Ref.DecodeC(half)
		bug := buggy.DecodeC(half)
		switch kind {
		case CValid, CHint:
			if ref != inst || bug != inst {
				t.Fatalf("%#04x (%v): decode mismatch", half, kind)
			}
			if !inst.Op.Valid() {
				t.Fatalf("%#04x: %v expansion is illegal", half, kind)
			}
		case CReserved:
			if ref.Op != OpIllegal {
				t.Fatalf("%#04x: reserved must be illegal on reference", half)
			}
			if bug != inst || !inst.Op.Valid() {
				t.Fatalf("%#04x: buggy decoder must expand reserved to %v", half, inst.Op)
			}
		case CIllegal:
			if ref.Op != OpIllegal || bug.Op != OpIllegal {
				t.Fatalf("%#04x: wholly illegal encoding decoded", half)
			}
		}
		if ref.Size != 2 || ref.Raw != uint32(half) {
			t.Fatalf("%#04x: size/raw wrong", half)
		}
	}
	// Sanity on the classification census: the RVC space is mostly valid,
	// with nonzero hint/reserved/illegal populations.
	for kind, want := range map[CKind]int{CValid: 10000, CHint: 100, CReserved: 100, CIllegal: 100} {
		if counts[kind] < want {
			t.Errorf("kind %v: %d encodings, expected at least %d", kind, counts[kind], want)
		}
	}
	t.Logf("RVC census: valid=%d hint=%d reserved=%d illegal=%d",
		counts[CValid], counts[CHint], counts[CReserved], counts[CIllegal])
}

// TestCompressedGoldenEncodings pins additional well-known RVC encodings
// (values as produced by the GNU assembler).
func TestCompressedGoldenEncodings(t *testing.T) {
	cases := []struct {
		half uint16
		want string // expansion disassembly
	}{
		{0x1141, "c.addi {addi sp, sp, -16}"},
		{0x4081, "c.li {addi ra, zero, 0}"},
		{0x02a2, "c.slli {slli t0, t0, 8}"},
		{0x8082, "c.jr {jalr zero, ra, 0}"},
		{0xc022, "c.swsp {sw s0, 0(sp)}"},
		{0x50fd, "c.li {addi ra, zero, -1}"},
		{0x8391, "c.srli {srli a5, a5, 4}"},
		{0x8915, "c.andi {andi a0, a0, 5}"},
		{0xc05c, "c.sw {sw a5, 4(s0)}"},
		{0x6405, "c.lui {lui s0, 0x1}"},
		{0x2001, "c.jal {jal ra, . +0}"},
	}
	for _, c := range cases {
		got := Disasm(Ref.DecodeC(c.half))
		if got != c.want {
			t.Errorf("DecodeC(%#04x) = %q, want %q", c.half, got, c.want)
		}
	}
}

// TestCompressRoundtrip: every compressed encoding Compress produces must
// decode back to the exact source instruction (same operation, operands
// and immediate) as a valid (non-hint, non-reserved) RVC form.
func TestCompressRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	produced := 0
	for trial := 0; trial < 200000; trial++ {
		// Build candidate instructions biased towards compressible shapes.
		var inst Inst
		switch rng.Intn(10) {
		case 0:
			inst = Inst{Op: OpADDI, Rd: Reg(rng.Intn(32)), Rs1: Reg(rng.Intn(32)), Imm: int32(rng.Intn(128) - 64)}
		case 1:
			inst = Inst{Op: OpADDI, Rd: Reg(rng.Intn(32)), Rs1: 0, Imm: int32(rng.Intn(128) - 64)}
		case 2:
			inst = Inst{Op: OpLUI, Rd: Reg(rng.Intn(32)), Imm: int32(rng.Intn(128)-64) << 12}
		case 3:
			inst = Inst{Op: []Op{OpADD, OpSUB, OpXOR, OpOR, OpAND}[rng.Intn(5)],
				Rd: Reg(rng.Intn(32)), Rs1: Reg(rng.Intn(32)), Rs2: Reg(rng.Intn(32))}
			if rng.Intn(2) == 0 {
				inst.Rs1 = inst.Rd
			}
		case 4:
			inst = Inst{Op: []Op{OpSLLI, OpSRLI, OpSRAI}[rng.Intn(3)],
				Rd: Reg(rng.Intn(32)), Imm: int32(rng.Intn(32))}
			inst.Rs1 = inst.Rd
		case 5:
			inst = Inst{Op: OpLW, Rd: Reg(rng.Intn(32)), Rs1: Reg(rng.Intn(32)), Imm: int32(rng.Intn(64) * 4)}
		case 6:
			inst = Inst{Op: OpSW, Rs1: Reg(rng.Intn(32)), Rs2: Reg(rng.Intn(32)), Imm: int32(rng.Intn(64) * 4)}
		case 7:
			inst = Inst{Op: OpJAL, Rd: Reg(rng.Intn(2)), Imm: int32(rng.Intn(1024)-512) &^ 1}
		case 8:
			inst = Inst{Op: []Op{OpBEQ, OpBNE}[rng.Intn(2)], Rs1: Reg(8 + rng.Intn(8)), Imm: int32(rng.Intn(256)-128) &^ 1}
		default:
			inst = Inst{Op: OpANDI, Rd: Reg(8 + rng.Intn(8)), Imm: int32(rng.Intn(64) - 32)}
			inst.Rs1 = inst.Rd
		}
		h, ok := Compress(inst)
		if !ok {
			continue
		}
		produced++
		exp, kind := ClassifyC(h)
		if kind != CValid {
			t.Fatalf("Compress(%+v) = %#04x classifies as %v", inst, h, kind)
		}
		if exp.Op != inst.Op || exp.Rd != inst.Rd || exp.Rs1 != inst.Rs1 ||
			exp.Rs2 != inst.Rs2 || exp.Imm != inst.Imm {
			t.Fatalf("Compress(%+v) = %#04x decodes to %+v", inst, h, exp)
		}
	}
	if produced < 40000 {
		t.Fatalf("only %d compressible candidates produced; generator too weak", produced)
	}
	t.Logf("verified %d compress/decode roundtrips", produced)
}

// TestCompressKnown pins a handful of well-known compressions.
func TestCompressKnown(t *testing.T) {
	cases := []struct {
		inst Inst
		want uint16
	}{
		{Inst{Op: OpADDI, Rd: 10, Rs1: 10, Imm: -1}, 0x157d},
		{Inst{Op: OpADDI}, 0x0001},
		{Inst{Op: OpLW, Rd: 5, Rs1: RegSP, Imm: 4}, 0x4292},
		{Inst{Op: OpADD, Rd: 10, Rs1: 0, Rs2: 11}, 0x852e},
		{Inst{Op: OpADD, Rd: 12, Rs1: 12, Rs2: 10}, 0x962a},
		{Inst{Op: OpSUB, Rd: 11, Rs1: 11, Rs2: 10}, 0x8d89},
		{Inst{Op: OpSW, Rs1: 13, Rs2: 14, Imm: 0}, 0xc298},
		{Inst{Op: OpSW, Rs1: RegSP, Rs2: 8, Imm: 0}, 0xc022},
		{Inst{Op: OpANDI, Rd: 10, Rs1: 10, Imm: 5}, 0x8915},
		{Inst{Op: OpADDI, Rd: RegSP, Rs1: RegSP, Imm: -16}, 0x1141},
	}
	for _, c := range cases {
		got, ok := Compress(c.inst)
		if !ok || got != c.want {
			t.Errorf("Compress(%+v) = %#04x, %v; want %#04x", c.inst, got, ok, c.want)
		}
	}
	// Non-compressible shapes are refused.
	for _, inst := range []Inst{
		{Op: OpADDI, Rd: 1, Rs1: 2, Imm: 1},   // rd != rs1
		{Op: OpADDI, Rd: 1, Rs1: 1, Imm: 100}, // imm too wide
		{Op: OpLW, Rd: 1, Rs1: 7, Imm: 4},     // base outside x8..x15
		{Op: OpLUI, Rd: RegSP, Imm: 4096},     // c.lui cannot target sp
		{Op: OpJAL, Rd: 5, Imm: 16},           // link register not ra/zero
		{Op: OpBEQ, Rs1: 8, Rs2: 1, Imm: 8},   // rs2 != x0
		{Op: OpMUL, Rd: 8, Rs1: 8, Rs2: 9},    // no RVC form
	} {
		if h, ok := Compress(inst); ok {
			t.Errorf("Compress(%+v) unexpectedly produced %#04x", inst, h)
		}
	}
}
