package isa

// Op enumerates every operation of the RV32GC envelope. Compressed
// instructions expand to their base operation (the expansion defined by the
// C extension), so an Op always denotes 32-bit instruction semantics.
type Op uint16

// Operations. OpIllegal denotes an encoding that does not decode to any
// instruction of the RV32GC envelope and must raise an illegal-instruction
// exception.
const (
	OpIllegal Op = iota

	// RV32I
	OpLUI
	OpAUIPC
	OpJAL
	OpJALR
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU
	OpLB
	OpLH
	OpLW
	OpLBU
	OpLHU
	OpSB
	OpSH
	OpSW
	OpADDI
	OpSLTI
	OpSLTIU
	OpXORI
	OpORI
	OpANDI
	OpSLLI
	OpSRLI
	OpSRAI
	OpADD
	OpSUB
	OpSLL
	OpSLT
	OpSLTU
	OpXOR
	OpSRL
	OpSRA
	OpOR
	OpAND
	OpFENCE
	OpFENCEI
	OpECALL
	OpEBREAK

	// Zicsr
	OpCSRRW
	OpCSRRS
	OpCSRRC
	OpCSRRWI
	OpCSRRSI
	OpCSRRCI

	// Privileged (machine mode and friends)
	OpMRET
	OpSRET
	OpURET
	OpWFI
	OpSFENCEVMA

	// M
	OpMUL
	OpMULH
	OpMULHSU
	OpMULHU
	OpDIV
	OpDIVU
	OpREM
	OpREMU

	// A
	OpLRW
	OpSCW
	OpAMOSWAPW
	OpAMOADDW
	OpAMOXORW
	OpAMOANDW
	OpAMOORW
	OpAMOMINW
	OpAMOMAXW
	OpAMOMINUW
	OpAMOMAXUW

	// F
	OpFLW
	OpFSW
	OpFMADDS
	OpFMSUBS
	OpFNMSUBS
	OpFNMADDS
	OpFADDS
	OpFSUBS
	OpFMULS
	OpFDIVS
	OpFSQRTS
	OpFSGNJS
	OpFSGNJNS
	OpFSGNJXS
	OpFMINS
	OpFMAXS
	OpFCVTWS
	OpFCVTWUS
	OpFMVXW
	OpFEQS
	OpFLTS
	OpFLES
	OpFCLASSS
	OpFCVTSW
	OpFCVTSWU
	OpFMVWX

	// D
	OpFLD
	OpFSD
	OpFMADDD
	OpFMSUBD
	OpFNMSUBD
	OpFNMADDD
	OpFADDD
	OpFSUBD
	OpFMULD
	OpFDIVD
	OpFSQRTD
	OpFSGNJD
	OpFSGNJND
	OpFSGNJXD
	OpFMIND
	OpFMAXD
	OpFCVTSD
	OpFCVTDS
	OpFEQD
	OpFLTD
	OpFLED
	OpFCLASSD
	OpFCVTWD
	OpFCVTWUD
	OpFCVTDW
	OpFCVTDWU

	// OpCustomNOP is not a real RISC-V operation: it models the riscvOVPsim
	// defect in which certain custom-0/custom-1 encodings are accepted as
	// legal no-ops instead of raising an illegal-instruction exception. The
	// reference decoder never produces it.
	OpCustomNOP

	opCount
)

// Flags describes static properties of an operation used by the executor,
// the test filter, the mutator and the coverage rules.
type Flags uint32

const (
	// FlagWritesRD: the instruction writes the integer register rd.
	FlagWritesRD Flags = 1 << iota
	// FlagReadsRS1 / FlagReadsRS2 / FlagReadsRS3: integer source registers.
	FlagReadsRS1
	FlagReadsRS2
	// FlagLoad / FlagStore: the instruction accesses memory at
	// x[rs1]+imm (or x[rs1] for atomics).
	FlagLoad
	FlagStore
	// FlagBranch: conditional branch (forks control flow in the filter).
	FlagBranch
	// FlagJump: unconditional control transfer (JAL, JALR).
	FlagJump
	// FlagForbidden: the filter's forbidden category (section IV-C of the
	// paper): JALR, xRET, WFI, EBREAK, SFENCE.VMA and all CSR instructions.
	FlagForbidden
	// FlagCSR: one of the six Zicsr instructions.
	FlagCSR
	// FlagTrap: unconditionally raises an exception (ECALL, EBREAK).
	FlagTrap
	// FlagAMO: an A-extension memory operation (address in rs1, no imm).
	FlagAMO
	// FlagFPRd / FlagFPRs1 / FlagFPRs2 / FlagFPRs3: the corresponding
	// operand field names a floating-point register.
	FlagFPRd
	FlagFPRs1
	FlagFPRs2
	FlagFPRs3
	// FlagHasRM: the instruction has a rounding-mode field (funct3).
	FlagHasRM
	// FlagFP: the instruction belongs to the F or D extension (requires
	// mstatus.FS to be enabled).
	FlagFP
)

// Format identifies the encoding format of an instruction, which determines
// how operand fields and immediates are packed into the 32-bit word.
type Format uint8

const (
	FmtNone   Format = iota // no operands beyond the fixed pattern (ECALL, MRET, ...)
	FmtR                    // rd, rs1, rs2
	FmtR4                   // rd, rs1, rs2, rs3, rm (fused multiply-add)
	FmtRrm                  // rd, rs1, rs2, rm (FP two-operand arithmetic)
	FmtR2rm                 // rd, rs1, rm (FSQRT, FCVT)
	FmtR2                   // rd, rs1 (FMV, FCLASS)
	FmtI                    // rd, rs1, imm12
	FmtIShift               // rd, rs1, shamt5
	FmtS                    // rs1, rs2, imm12 (stores)
	FmtB                    // rs1, rs2, branch offset
	FmtU                    // rd, imm20 (upper)
	FmtJ                    // rd, jump offset
	FmtCSR                  // rd, csr, rs1
	FmtCSRI                 // rd, csr, zimm5
	FmtAMO                  // rd, rs2, (rs1) with aq/rl bits
	FmtFence                // fence pred/succ (treated as fixed)
)

// OpInfo is one row of the instruction database.
type OpInfo struct {
	Op    Op
	Name  string // canonical assembler mnemonic
	Mask  uint32 // bits fixed by the encoding
	Match uint32 // value of the fixed bits
	Fmt   Format
	Ext   Ext   // extension that provides the instruction
	Flags Flags // static properties
	// MemSize is the access width in bytes for loads/stores/atomics
	// (1, 2, 4 or 8); zero otherwise. The filter requires immediates of
	// memory instructions to be MemSize-aligned.
	MemSize uint8
}

// Instructions is the database of all 32-bit (non-compressed) instructions of
// the RV32GC envelope. Compressed instructions are handled by the dedicated
// RVC decoder, which expands them to one of these operations.
var Instructions = []OpInfo{
	// RV32I
	{OpLUI, "lui", 0x0000007f, 0x00000037, FmtU, ExtI, FlagWritesRD, 0},
	{OpAUIPC, "auipc", 0x0000007f, 0x00000017, FmtU, ExtI, FlagWritesRD, 0},
	{OpJAL, "jal", 0x0000007f, 0x0000006f, FmtJ, ExtI, FlagWritesRD | FlagJump, 0},
	{OpJALR, "jalr", 0x0000707f, 0x00000067, FmtI, ExtI, FlagWritesRD | FlagReadsRS1 | FlagJump | FlagForbidden, 0},
	{OpBEQ, "beq", 0x0000707f, 0x00000063, FmtB, ExtI, FlagReadsRS1 | FlagReadsRS2 | FlagBranch, 0},
	{OpBNE, "bne", 0x0000707f, 0x00001063, FmtB, ExtI, FlagReadsRS1 | FlagReadsRS2 | FlagBranch, 0},
	{OpBLT, "blt", 0x0000707f, 0x00004063, FmtB, ExtI, FlagReadsRS1 | FlagReadsRS2 | FlagBranch, 0},
	{OpBGE, "bge", 0x0000707f, 0x00005063, FmtB, ExtI, FlagReadsRS1 | FlagReadsRS2 | FlagBranch, 0},
	{OpBLTU, "bltu", 0x0000707f, 0x00006063, FmtB, ExtI, FlagReadsRS1 | FlagReadsRS2 | FlagBranch, 0},
	{OpBGEU, "bgeu", 0x0000707f, 0x00007063, FmtB, ExtI, FlagReadsRS1 | FlagReadsRS2 | FlagBranch, 0},
	{OpLB, "lb", 0x0000707f, 0x00000003, FmtI, ExtI, FlagWritesRD | FlagReadsRS1 | FlagLoad, 1},
	{OpLH, "lh", 0x0000707f, 0x00001003, FmtI, ExtI, FlagWritesRD | FlagReadsRS1 | FlagLoad, 2},
	{OpLW, "lw", 0x0000707f, 0x00002003, FmtI, ExtI, FlagWritesRD | FlagReadsRS1 | FlagLoad, 4},
	{OpLBU, "lbu", 0x0000707f, 0x00004003, FmtI, ExtI, FlagWritesRD | FlagReadsRS1 | FlagLoad, 1},
	{OpLHU, "lhu", 0x0000707f, 0x00005003, FmtI, ExtI, FlagWritesRD | FlagReadsRS1 | FlagLoad, 2},
	{OpSB, "sb", 0x0000707f, 0x00000023, FmtS, ExtI, FlagReadsRS1 | FlagReadsRS2 | FlagStore, 1},
	{OpSH, "sh", 0x0000707f, 0x00001023, FmtS, ExtI, FlagReadsRS1 | FlagReadsRS2 | FlagStore, 2},
	{OpSW, "sw", 0x0000707f, 0x00002023, FmtS, ExtI, FlagReadsRS1 | FlagReadsRS2 | FlagStore, 4},
	{OpADDI, "addi", 0x0000707f, 0x00000013, FmtI, ExtI, FlagWritesRD | FlagReadsRS1, 0},
	{OpSLTI, "slti", 0x0000707f, 0x00002013, FmtI, ExtI, FlagWritesRD | FlagReadsRS1, 0},
	{OpSLTIU, "sltiu", 0x0000707f, 0x00003013, FmtI, ExtI, FlagWritesRD | FlagReadsRS1, 0},
	{OpXORI, "xori", 0x0000707f, 0x00004013, FmtI, ExtI, FlagWritesRD | FlagReadsRS1, 0},
	{OpORI, "ori", 0x0000707f, 0x00006013, FmtI, ExtI, FlagWritesRD | FlagReadsRS1, 0},
	{OpANDI, "andi", 0x0000707f, 0x00007013, FmtI, ExtI, FlagWritesRD | FlagReadsRS1, 0},
	{OpSLLI, "slli", 0xfe00707f, 0x00001013, FmtIShift, ExtI, FlagWritesRD | FlagReadsRS1, 0},
	{OpSRLI, "srli", 0xfe00707f, 0x00005013, FmtIShift, ExtI, FlagWritesRD | FlagReadsRS1, 0},
	{OpSRAI, "srai", 0xfe00707f, 0x40005013, FmtIShift, ExtI, FlagWritesRD | FlagReadsRS1, 0},
	{OpADD, "add", 0xfe00707f, 0x00000033, FmtR, ExtI, FlagWritesRD | FlagReadsRS1 | FlagReadsRS2, 0},
	{OpSUB, "sub", 0xfe00707f, 0x40000033, FmtR, ExtI, FlagWritesRD | FlagReadsRS1 | FlagReadsRS2, 0},
	{OpSLL, "sll", 0xfe00707f, 0x00001033, FmtR, ExtI, FlagWritesRD | FlagReadsRS1 | FlagReadsRS2, 0},
	{OpSLT, "slt", 0xfe00707f, 0x00002033, FmtR, ExtI, FlagWritesRD | FlagReadsRS1 | FlagReadsRS2, 0},
	{OpSLTU, "sltu", 0xfe00707f, 0x00003033, FmtR, ExtI, FlagWritesRD | FlagReadsRS1 | FlagReadsRS2, 0},
	{OpXOR, "xor", 0xfe00707f, 0x00004033, FmtR, ExtI, FlagWritesRD | FlagReadsRS1 | FlagReadsRS2, 0},
	{OpSRL, "srl", 0xfe00707f, 0x00005033, FmtR, ExtI, FlagWritesRD | FlagReadsRS1 | FlagReadsRS2, 0},
	{OpSRA, "sra", 0xfe00707f, 0x40005033, FmtR, ExtI, FlagWritesRD | FlagReadsRS1 | FlagReadsRS2, 0},
	{OpOR, "or", 0xfe00707f, 0x00006033, FmtR, ExtI, FlagWritesRD | FlagReadsRS1 | FlagReadsRS2, 0},
	{OpAND, "and", 0xfe00707f, 0x00007033, FmtR, ExtI, FlagWritesRD | FlagReadsRS1 | FlagReadsRS2, 0},
	{OpFENCE, "fence", 0x0000707f, 0x0000000f, FmtFence, ExtI, 0, 0},
	{OpFENCEI, "fence.i", 0x0000707f, 0x0000100f, FmtFence, ExtI, 0, 0},
	{OpECALL, "ecall", 0xffffffff, 0x00000073, FmtNone, ExtI, FlagTrap, 0},
	{OpEBREAK, "ebreak", 0xffffffff, 0x00100073, FmtNone, ExtI, FlagTrap | FlagForbidden, 0},

	// Zicsr
	{OpCSRRW, "csrrw", 0x0000707f, 0x00001073, FmtCSR, ExtZicsr, FlagWritesRD | FlagReadsRS1 | FlagCSR | FlagForbidden, 0},
	{OpCSRRS, "csrrs", 0x0000707f, 0x00002073, FmtCSR, ExtZicsr, FlagWritesRD | FlagReadsRS1 | FlagCSR | FlagForbidden, 0},
	{OpCSRRC, "csrrc", 0x0000707f, 0x00003073, FmtCSR, ExtZicsr, FlagWritesRD | FlagReadsRS1 | FlagCSR | FlagForbidden, 0},
	{OpCSRRWI, "csrrwi", 0x0000707f, 0x00005073, FmtCSRI, ExtZicsr, FlagWritesRD | FlagCSR | FlagForbidden, 0},
	{OpCSRRSI, "csrrsi", 0x0000707f, 0x00006073, FmtCSRI, ExtZicsr, FlagWritesRD | FlagCSR | FlagForbidden, 0},
	{OpCSRRCI, "csrrci", 0x0000707f, 0x00007073, FmtCSRI, ExtZicsr, FlagWritesRD | FlagCSR | FlagForbidden, 0},

	// Privileged
	{OpMRET, "mret", 0xffffffff, 0x30200073, FmtNone, ExtPriv, FlagForbidden, 0},
	{OpSRET, "sret", 0xffffffff, 0x10200073, FmtNone, ExtPriv, FlagForbidden, 0},
	{OpURET, "uret", 0xffffffff, 0x00200073, FmtNone, ExtPriv, FlagForbidden, 0},
	{OpWFI, "wfi", 0xffffffff, 0x10500073, FmtNone, ExtPriv, FlagForbidden, 0},
	{OpSFENCEVMA, "sfence.vma", 0xfe007fff, 0x12000073, FmtR, ExtPriv, FlagReadsRS1 | FlagReadsRS2 | FlagForbidden, 0},

	// M
	{OpMUL, "mul", 0xfe00707f, 0x02000033, FmtR, ExtM, FlagWritesRD | FlagReadsRS1 | FlagReadsRS2, 0},
	{OpMULH, "mulh", 0xfe00707f, 0x02001033, FmtR, ExtM, FlagWritesRD | FlagReadsRS1 | FlagReadsRS2, 0},
	{OpMULHSU, "mulhsu", 0xfe00707f, 0x02002033, FmtR, ExtM, FlagWritesRD | FlagReadsRS1 | FlagReadsRS2, 0},
	{OpMULHU, "mulhu", 0xfe00707f, 0x02003033, FmtR, ExtM, FlagWritesRD | FlagReadsRS1 | FlagReadsRS2, 0},
	{OpDIV, "div", 0xfe00707f, 0x02004033, FmtR, ExtM, FlagWritesRD | FlagReadsRS1 | FlagReadsRS2, 0},
	{OpDIVU, "divu", 0xfe00707f, 0x02005033, FmtR, ExtM, FlagWritesRD | FlagReadsRS1 | FlagReadsRS2, 0},
	{OpREM, "rem", 0xfe00707f, 0x02006033, FmtR, ExtM, FlagWritesRD | FlagReadsRS1 | FlagReadsRS2, 0},
	{OpREMU, "remu", 0xfe00707f, 0x02007033, FmtR, ExtM, FlagWritesRD | FlagReadsRS1 | FlagReadsRS2, 0},

	// A (aq/rl bits 26:25 are free)
	{OpLRW, "lr.w", 0xf9f0707f, 0x1000202f, FmtAMO, ExtA, FlagWritesRD | FlagReadsRS1 | FlagLoad | FlagAMO, 4},
	{OpSCW, "sc.w", 0xf800707f, 0x1800202f, FmtAMO, ExtA, FlagWritesRD | FlagReadsRS1 | FlagReadsRS2 | FlagStore | FlagAMO, 4},
	{OpAMOSWAPW, "amoswap.w", 0xf800707f, 0x0800202f, FmtAMO, ExtA, FlagWritesRD | FlagReadsRS1 | FlagReadsRS2 | FlagLoad | FlagStore | FlagAMO, 4},
	{OpAMOADDW, "amoadd.w", 0xf800707f, 0x0000202f, FmtAMO, ExtA, FlagWritesRD | FlagReadsRS1 | FlagReadsRS2 | FlagLoad | FlagStore | FlagAMO, 4},
	{OpAMOXORW, "amoxor.w", 0xf800707f, 0x2000202f, FmtAMO, ExtA, FlagWritesRD | FlagReadsRS1 | FlagReadsRS2 | FlagLoad | FlagStore | FlagAMO, 4},
	{OpAMOANDW, "amoand.w", 0xf800707f, 0x6000202f, FmtAMO, ExtA, FlagWritesRD | FlagReadsRS1 | FlagReadsRS2 | FlagLoad | FlagStore | FlagAMO, 4},
	{OpAMOORW, "amoor.w", 0xf800707f, 0x4000202f, FmtAMO, ExtA, FlagWritesRD | FlagReadsRS1 | FlagReadsRS2 | FlagLoad | FlagStore | FlagAMO, 4},
	{OpAMOMINW, "amomin.w", 0xf800707f, 0x8000202f, FmtAMO, ExtA, FlagWritesRD | FlagReadsRS1 | FlagReadsRS2 | FlagLoad | FlagStore | FlagAMO, 4},
	{OpAMOMAXW, "amomax.w", 0xf800707f, 0xa000202f, FmtAMO, ExtA, FlagWritesRD | FlagReadsRS1 | FlagReadsRS2 | FlagLoad | FlagStore | FlagAMO, 4},
	{OpAMOMINUW, "amominu.w", 0xf800707f, 0xc000202f, FmtAMO, ExtA, FlagWritesRD | FlagReadsRS1 | FlagReadsRS2 | FlagLoad | FlagStore | FlagAMO, 4},
	{OpAMOMAXUW, "amomaxu.w", 0xf800707f, 0xe000202f, FmtAMO, ExtA, FlagWritesRD | FlagReadsRS1 | FlagReadsRS2 | FlagLoad | FlagStore | FlagAMO, 4},

	// F
	{OpFLW, "flw", 0x0000707f, 0x00002007, FmtI, ExtF, FlagFPRd | FlagReadsRS1 | FlagLoad | FlagFP, 4},
	{OpFSW, "fsw", 0x0000707f, 0x00002027, FmtS, ExtF, FlagFPRs2 | FlagReadsRS1 | FlagStore | FlagFP, 4},
	{OpFMADDS, "fmadd.s", 0x0600007f, 0x00000043, FmtR4, ExtF, FlagFPRd | FlagFPRs1 | FlagFPRs2 | FlagFPRs3 | FlagHasRM | FlagFP, 0},
	{OpFMSUBS, "fmsub.s", 0x0600007f, 0x00000047, FmtR4, ExtF, FlagFPRd | FlagFPRs1 | FlagFPRs2 | FlagFPRs3 | FlagHasRM | FlagFP, 0},
	{OpFNMSUBS, "fnmsub.s", 0x0600007f, 0x0000004b, FmtR4, ExtF, FlagFPRd | FlagFPRs1 | FlagFPRs2 | FlagFPRs3 | FlagHasRM | FlagFP, 0},
	{OpFNMADDS, "fnmadd.s", 0x0600007f, 0x0000004f, FmtR4, ExtF, FlagFPRd | FlagFPRs1 | FlagFPRs2 | FlagFPRs3 | FlagHasRM | FlagFP, 0},
	{OpFADDS, "fadd.s", 0xfe00007f, 0x00000053, FmtRrm, ExtF, FlagFPRd | FlagFPRs1 | FlagFPRs2 | FlagHasRM | FlagFP, 0},
	{OpFSUBS, "fsub.s", 0xfe00007f, 0x08000053, FmtRrm, ExtF, FlagFPRd | FlagFPRs1 | FlagFPRs2 | FlagHasRM | FlagFP, 0},
	{OpFMULS, "fmul.s", 0xfe00007f, 0x10000053, FmtRrm, ExtF, FlagFPRd | FlagFPRs1 | FlagFPRs2 | FlagHasRM | FlagFP, 0},
	{OpFDIVS, "fdiv.s", 0xfe00007f, 0x18000053, FmtRrm, ExtF, FlagFPRd | FlagFPRs1 | FlagFPRs2 | FlagHasRM | FlagFP, 0},
	{OpFSQRTS, "fsqrt.s", 0xfff0007f, 0x58000053, FmtR2rm, ExtF, FlagFPRd | FlagFPRs1 | FlagHasRM | FlagFP, 0},
	{OpFSGNJS, "fsgnj.s", 0xfe00707f, 0x20000053, FmtR, ExtF, FlagFPRd | FlagFPRs1 | FlagFPRs2 | FlagFP, 0},
	{OpFSGNJNS, "fsgnjn.s", 0xfe00707f, 0x20001053, FmtR, ExtF, FlagFPRd | FlagFPRs1 | FlagFPRs2 | FlagFP, 0},
	{OpFSGNJXS, "fsgnjx.s", 0xfe00707f, 0x20002053, FmtR, ExtF, FlagFPRd | FlagFPRs1 | FlagFPRs2 | FlagFP, 0},
	{OpFMINS, "fmin.s", 0xfe00707f, 0x28000053, FmtR, ExtF, FlagFPRd | FlagFPRs1 | FlagFPRs2 | FlagFP, 0},
	{OpFMAXS, "fmax.s", 0xfe00707f, 0x28001053, FmtR, ExtF, FlagFPRd | FlagFPRs1 | FlagFPRs2 | FlagFP, 0},
	{OpFCVTWS, "fcvt.w.s", 0xfff0007f, 0xc0000053, FmtR2rm, ExtF, FlagWritesRD | FlagFPRs1 | FlagHasRM | FlagFP, 0},
	{OpFCVTWUS, "fcvt.wu.s", 0xfff0007f, 0xc0100053, FmtR2rm, ExtF, FlagWritesRD | FlagFPRs1 | FlagHasRM | FlagFP, 0},
	{OpFMVXW, "fmv.x.w", 0xfff0707f, 0xe0000053, FmtR2, ExtF, FlagWritesRD | FlagFPRs1 | FlagFP, 0},
	{OpFEQS, "feq.s", 0xfe00707f, 0xa0002053, FmtR, ExtF, FlagWritesRD | FlagFPRs1 | FlagFPRs2 | FlagFP, 0},
	{OpFLTS, "flt.s", 0xfe00707f, 0xa0001053, FmtR, ExtF, FlagWritesRD | FlagFPRs1 | FlagFPRs2 | FlagFP, 0},
	{OpFLES, "fle.s", 0xfe00707f, 0xa0000053, FmtR, ExtF, FlagWritesRD | FlagFPRs1 | FlagFPRs2 | FlagFP, 0},
	{OpFCLASSS, "fclass.s", 0xfff0707f, 0xe0001053, FmtR2, ExtF, FlagWritesRD | FlagFPRs1 | FlagFP, 0},
	{OpFCVTSW, "fcvt.s.w", 0xfff0007f, 0xd0000053, FmtR2rm, ExtF, FlagFPRd | FlagReadsRS1 | FlagHasRM | FlagFP, 0},
	{OpFCVTSWU, "fcvt.s.wu", 0xfff0007f, 0xd0100053, FmtR2rm, ExtF, FlagFPRd | FlagReadsRS1 | FlagHasRM | FlagFP, 0},
	{OpFMVWX, "fmv.w.x", 0xfff0707f, 0xf0000053, FmtR2, ExtF, FlagFPRd | FlagReadsRS1 | FlagFP, 0},

	// D
	{OpFLD, "fld", 0x0000707f, 0x00003007, FmtI, ExtD, FlagFPRd | FlagReadsRS1 | FlagLoad | FlagFP, 8},
	{OpFSD, "fsd", 0x0000707f, 0x00003027, FmtS, ExtD, FlagFPRs2 | FlagReadsRS1 | FlagStore | FlagFP, 8},
	{OpFMADDD, "fmadd.d", 0x0600007f, 0x02000043, FmtR4, ExtD, FlagFPRd | FlagFPRs1 | FlagFPRs2 | FlagFPRs3 | FlagHasRM | FlagFP, 0},
	{OpFMSUBD, "fmsub.d", 0x0600007f, 0x02000047, FmtR4, ExtD, FlagFPRd | FlagFPRs1 | FlagFPRs2 | FlagFPRs3 | FlagHasRM | FlagFP, 0},
	{OpFNMSUBD, "fnmsub.d", 0x0600007f, 0x0200004b, FmtR4, ExtD, FlagFPRd | FlagFPRs1 | FlagFPRs2 | FlagFPRs3 | FlagHasRM | FlagFP, 0},
	{OpFNMADDD, "fnmadd.d", 0x0600007f, 0x0200004f, FmtR4, ExtD, FlagFPRd | FlagFPRs1 | FlagFPRs2 | FlagFPRs3 | FlagHasRM | FlagFP, 0},
	{OpFADDD, "fadd.d", 0xfe00007f, 0x02000053, FmtRrm, ExtD, FlagFPRd | FlagFPRs1 | FlagFPRs2 | FlagHasRM | FlagFP, 0},
	{OpFSUBD, "fsub.d", 0xfe00007f, 0x0a000053, FmtRrm, ExtD, FlagFPRd | FlagFPRs1 | FlagFPRs2 | FlagHasRM | FlagFP, 0},
	{OpFMULD, "fmul.d", 0xfe00007f, 0x12000053, FmtRrm, ExtD, FlagFPRd | FlagFPRs1 | FlagFPRs2 | FlagHasRM | FlagFP, 0},
	{OpFDIVD, "fdiv.d", 0xfe00007f, 0x1a000053, FmtRrm, ExtD, FlagFPRd | FlagFPRs1 | FlagFPRs2 | FlagHasRM | FlagFP, 0},
	{OpFSQRTD, "fsqrt.d", 0xfff0007f, 0x5a000053, FmtR2rm, ExtD, FlagFPRd | FlagFPRs1 | FlagHasRM | FlagFP, 0},
	{OpFSGNJD, "fsgnj.d", 0xfe00707f, 0x22000053, FmtR, ExtD, FlagFPRd | FlagFPRs1 | FlagFPRs2 | FlagFP, 0},
	{OpFSGNJND, "fsgnjn.d", 0xfe00707f, 0x22001053, FmtR, ExtD, FlagFPRd | FlagFPRs1 | FlagFPRs2 | FlagFP, 0},
	{OpFSGNJXD, "fsgnjx.d", 0xfe00707f, 0x22002053, FmtR, ExtD, FlagFPRd | FlagFPRs1 | FlagFPRs2 | FlagFP, 0},
	{OpFMIND, "fmin.d", 0xfe00707f, 0x2a000053, FmtR, ExtD, FlagFPRd | FlagFPRs1 | FlagFPRs2 | FlagFP, 0},
	{OpFMAXD, "fmax.d", 0xfe00707f, 0x2a001053, FmtR, ExtD, FlagFPRd | FlagFPRs1 | FlagFPRs2 | FlagFP, 0},
	{OpFCVTSD, "fcvt.s.d", 0xfff0007f, 0x40100053, FmtR2rm, ExtD, FlagFPRd | FlagFPRs1 | FlagHasRM | FlagFP, 0},
	{OpFCVTDS, "fcvt.d.s", 0xfff0007f, 0x42000053, FmtR2rm, ExtD, FlagFPRd | FlagFPRs1 | FlagHasRM | FlagFP, 0},
	{OpFEQD, "feq.d", 0xfe00707f, 0xa2002053, FmtR, ExtD, FlagWritesRD | FlagFPRs1 | FlagFPRs2 | FlagFP, 0},
	{OpFLTD, "flt.d", 0xfe00707f, 0xa2001053, FmtR, ExtD, FlagWritesRD | FlagFPRs1 | FlagFPRs2 | FlagFP, 0},
	{OpFLED, "fle.d", 0xfe00707f, 0xa2000053, FmtR, ExtD, FlagWritesRD | FlagFPRs1 | FlagFPRs2 | FlagFP, 0},
	{OpFCLASSD, "fclass.d", 0xfff0707f, 0xe2001053, FmtR2, ExtD, FlagWritesRD | FlagFPRs1 | FlagFP, 0},
	{OpFCVTWD, "fcvt.w.d", 0xfff0007f, 0xc2000053, FmtR2rm, ExtD, FlagWritesRD | FlagFPRs1 | FlagHasRM | FlagFP, 0},
	{OpFCVTWUD, "fcvt.wu.d", 0xfff0007f, 0xc2100053, FmtR2rm, ExtD, FlagWritesRD | FlagFPRs1 | FlagHasRM | FlagFP, 0},
	{OpFCVTDW, "fcvt.d.w", 0xfff0007f, 0xd2000053, FmtR2rm, ExtD, FlagFPRd | FlagReadsRS1 | FlagHasRM | FlagFP, 0},
	{OpFCVTDWU, "fcvt.d.wu", 0xfff0007f, 0xd2100053, FmtR2rm, ExtD, FlagFPRd | FlagReadsRS1 | FlagHasRM | FlagFP, 0},
}

var (
	infoByOp     [opCount]*OpInfo
	byMajor      [32][]*OpInfo // indexed by bits [6:2] of the instruction word
	customNOPRow = OpInfo{OpCustomNOP, "custom.nop", 0xffffffff, 0, FmtNone, ExtI, 0, 0}
)

func init() {
	for i := range Instructions {
		in := &Instructions[i]
		if infoByOp[in.Op] != nil {
			panic("isa: duplicate op in instruction table: " + in.Name)
		}
		infoByOp[in.Op] = in
		if in.Match&0x3 != 0x3 {
			panic("isa: non-32-bit match pattern for " + in.Name)
		}
		if in.Match&^in.Mask != 0 {
			panic("isa: match has bits outside mask for " + in.Name)
		}
		major := (in.Match >> 2) & 0x1f
		byMajor[major] = append(byMajor[major], in)
	}
	infoByOp[OpCustomNOP] = &customNOPRow
}

// Info returns the database row for op. Returns nil for OpIllegal.
func (op Op) Info() *OpInfo {
	if op == OpIllegal || op >= opCount {
		return nil
	}
	return infoByOp[op]
}

// String returns the canonical mnemonic of the operation.
func (op Op) String() string {
	if in := op.Info(); in != nil {
		return in.Name
	}
	return "illegal"
}

// Valid reports whether op names an actual operation (not OpIllegal).
func (op Op) Valid() bool { return op != OpIllegal && op < opCount && infoByOp[op] != nil }

// Flags returns the static property flags of the operation (zero for
// OpIllegal).
func (op Op) Flags() Flags {
	if in := op.Info(); in != nil {
		return in.Flags
	}
	return 0
}

// NumOps returns the number of defined operations, usable for sizing
// per-operation tables (Op values are < NumOps()).
func NumOps() int { return int(opCount) }

// LookupName finds an instruction by its canonical mnemonic.
func LookupName(name string) *OpInfo {
	for i := range Instructions {
		if Instructions[i].Name == name {
			return &Instructions[i]
		}
	}
	return nil
}

// Is reports whether all given flags are set.
func (f Flags) Is(want Flags) bool { return f&want == want }

// Any reports whether at least one of the given flags is set.
func (f Flags) Any(want Flags) bool { return f&want != 0 }
