package isa

// Predecoded is a code range lowered to decoded instruction records, one
// per halfword slot. Slot i holds the decode of the encoding that starts
// at Base+2*i; because every halfword offset gets its own slot, the same
// bytes can be cached under several overlapping decodings at once (the
// overlapping-stream trick negative test cases use).
//
// A slot with Size == 0 could not be predecoded and must be decoded at
// fetch time instead. That covers two cases: a 32-bit encoding whose
// second halfword lies past the end of the range, and an encoding on
// which this decoder panics (the modelled sail-riscv crash) — the panic
// must fire when the address is actually fetched, not when an image that
// merely contains the pattern is predecoded.
//
// A Predecoded is immutable after construction and safe to share across
// goroutines.
type Predecoded struct {
	Base  uint32
	Insts []Inst
}

// Predecode lowers the code bytes starting at base into a Predecoded.
// The decoder's quirks apply, so a quirked variant predecodes exactly
// what its fetch path would decode. A trailing odd byte is ignored
// (slots are halfwords).
func (d *Decoder) Predecode(base uint32, code []byte) *Predecoded {
	n := len(code) / 2
	p := &Predecoded{Base: base, Insts: make([]Inst, n)}
	for i := 0; i < n; i++ {
		off := 2 * i
		lo := uint16(code[off]) | uint16(code[off+1])<<8
		if lo&3 == 3 {
			if off+4 > len(code) {
				continue // second halfword outside the range: decode lazily
			}
			w := uint32(lo) | uint32(code[off+2])<<16 | uint32(code[off+3])<<24
			p.Insts[i] = d.safeDecode32(w)
		} else {
			p.Insts[i] = d.safeDecodeC(lo)
		}
	}
	return p
}

// safeDecode32 decodes a 32-bit encoding, converting a decoder panic
// into an empty (lazy) record.
func (d *Decoder) safeDecode32(w uint32) (in Inst) {
	defer func() {
		if recover() != nil {
			in = Inst{}
		}
	}()
	return d.Decode32(w)
}

// safeDecodeC decodes a compressed encoding, converting a decoder panic
// into an empty (lazy) record.
func (d *Decoder) safeDecodeC(h uint16) (in Inst) {
	defer func() {
		if recover() != nil {
			in = Inst{}
		}
	}()
	return d.DecodeC(h)
}

// Slots returns the number of halfword slots.
func (p *Predecoded) Slots() int { return len(p.Insts) }

// Limit returns the first address past the predecoded range.
func (p *Predecoded) Limit() uint32 { return p.Base + uint32(2*len(p.Insts)) }
