package softfloat

// Binary32 operations. Values are raw IEEE-754 single-precision bit
// patterns; every operation returns the result bits and the exception
// flags it raised.

// Add32 returns a + b.
func Add32(a, b uint32, rm RM) (uint32, Flags) {
	v, fl := add(fmt32, uint64(a), uint64(b), rm, false)
	return uint32(v), fl
}

// Sub32 returns a - b.
func Sub32(a, b uint32, rm RM) (uint32, Flags) {
	v, fl := add(fmt32, uint64(a), uint64(b), rm, true)
	return uint32(v), fl
}

// Mul32 returns a * b.
func Mul32(a, b uint32, rm RM) (uint32, Flags) {
	v, fl := mul(fmt32, uint64(a), uint64(b), rm)
	return uint32(v), fl
}

// Div32 returns a / b.
func Div32(a, b uint32, rm RM) (uint32, Flags) {
	v, fl := div(fmt32, uint64(a), uint64(b), rm)
	return uint32(v), fl
}

// Sqrt32 returns the square root of a.
func Sqrt32(a uint32, rm RM) (uint32, Flags) {
	v, fl := sqrt(fmt32, uint64(a), rm)
	return uint32(v), fl
}

// FMA32 returns a*b + c with a single rounding.
func FMA32(a, b, c uint32, rm RM) (uint32, Flags) {
	v, fl := fma(fmt32, uint64(a), uint64(b), uint64(c), rm)
	return uint32(v), fl
}

// Min32 implements FMIN.S.
func Min32(a, b uint32) (uint32, Flags) {
	v, fl := minmax(fmt32, uint64(a), uint64(b), false)
	return uint32(v), fl
}

// Max32 implements FMAX.S.
func Max32(a, b uint32) (uint32, Flags) {
	v, fl := minmax(fmt32, uint64(a), uint64(b), true)
	return uint32(v), fl
}

// Eq32 implements FEQ.S (quiet comparison).
func Eq32(a, b uint32) (bool, Flags) {
	eq, _, _, fl := compare(fmt32, uint64(a), uint64(b), false)
	return eq, fl
}

// Lt32 implements FLT.S (signaling comparison).
func Lt32(a, b uint32) (bool, Flags) {
	_, lt, _, fl := compare(fmt32, uint64(a), uint64(b), true)
	return lt, fl
}

// Le32 implements FLE.S (signaling comparison).
func Le32(a, b uint32) (bool, Flags) {
	_, _, le, fl := compare(fmt32, uint64(a), uint64(b), true)
	return le, fl
}

// Class32 implements FCLASS.S.
func Class32(a uint32) uint32 { return classify(fmt32, uint64(a)) }

// F32ToI32 implements FCVT.W.S.
func F32ToI32(a uint32, rm RM) (uint32, Flags) { return toInt32(fmt32, uint64(a), rm, true) }

// F32ToU32 implements FCVT.WU.S.
func F32ToU32(a uint32, rm RM) (uint32, Flags) { return toInt32(fmt32, uint64(a), rm, false) }

// I32ToF32 implements FCVT.S.W.
func I32ToF32(v uint32, rm RM) (uint32, Flags) {
	r, fl := fromInt32(fmt32, v, rm, true)
	return uint32(r), fl
}

// U32ToF32 implements FCVT.S.WU.
func U32ToF32(v uint32, rm RM) (uint32, Flags) {
	r, fl := fromInt32(fmt32, v, rm, false)
	return uint32(r), fl
}

// F32ToF64 implements FCVT.D.S (exact except for NaN canonicalization).
func F32ToF64(a uint32) (uint64, Flags) {
	return cvtFormat(fmt32, fmt64, uint64(a), RNE)
}

// IsNaN32 reports whether the bits encode any NaN.
func IsNaN32(a uint32) bool {
	u := unpack(fmt32, uint64(a))
	return u.cls == clsQNaN || u.cls == clsSNaN
}

// IsSNaN32 reports whether the bits encode a signaling NaN.
func IsSNaN32(a uint32) bool { return unpack(fmt32, uint64(a)).cls == clsSNaN }
