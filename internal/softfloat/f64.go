package softfloat

// Binary64 operations; the double-precision counterparts of the functions
// in f32.go.

// Add64 returns a + b.
func Add64(a, b uint64, rm RM) (uint64, Flags) { return add(fmt64, a, b, rm, false) }

// Sub64 returns a - b.
func Sub64(a, b uint64, rm RM) (uint64, Flags) { return add(fmt64, a, b, rm, true) }

// Mul64 returns a * b.
func Mul64(a, b uint64, rm RM) (uint64, Flags) { return mul(fmt64, a, b, rm) }

// Div64 returns a / b.
func Div64(a, b uint64, rm RM) (uint64, Flags) { return div(fmt64, a, b, rm) }

// Sqrt64 returns the square root of a.
func Sqrt64(a uint64, rm RM) (uint64, Flags) { return sqrt(fmt64, a, rm) }

// FMA64 returns a*b + c with a single rounding.
func FMA64(a, b, c uint64, rm RM) (uint64, Flags) { return fma(fmt64, a, b, c, rm) }

// Min64 implements FMIN.D.
func Min64(a, b uint64) (uint64, Flags) { return minmax(fmt64, a, b, false) }

// Max64 implements FMAX.D.
func Max64(a, b uint64) (uint64, Flags) { return minmax(fmt64, a, b, true) }

// Eq64 implements FEQ.D (quiet comparison).
func Eq64(a, b uint64) (bool, Flags) {
	eq, _, _, fl := compare(fmt64, a, b, false)
	return eq, fl
}

// Lt64 implements FLT.D (signaling comparison).
func Lt64(a, b uint64) (bool, Flags) {
	_, lt, _, fl := compare(fmt64, a, b, true)
	return lt, fl
}

// Le64 implements FLE.D (signaling comparison).
func Le64(a, b uint64) (bool, Flags) {
	_, _, le, fl := compare(fmt64, a, b, true)
	return le, fl
}

// Class64 implements FCLASS.D.
func Class64(a uint64) uint32 { return classify(fmt64, a) }

// F64ToI32 implements FCVT.W.D.
func F64ToI32(a uint64, rm RM) (uint32, Flags) { return toInt32(fmt64, a, rm, true) }

// F64ToU32 implements FCVT.WU.D.
func F64ToU32(a uint64, rm RM) (uint32, Flags) { return toInt32(fmt64, a, rm, false) }

// I32ToF64 implements FCVT.D.W (always exact).
func I32ToF64(v uint32, rm RM) (uint64, Flags) { return fromInt32(fmt64, v, rm, true) }

// U32ToF64 implements FCVT.D.WU (always exact).
func U32ToF64(v uint32, rm RM) (uint64, Flags) { return fromInt32(fmt64, v, rm, false) }

// F64ToF32 implements FCVT.S.D (narrowing with rounding).
func F64ToF32(a uint64, rm RM) (uint32, Flags) {
	v, fl := cvtFormat(fmt64, fmt32, a, rm)
	return uint32(v), fl
}

// IsNaN64 reports whether the bits encode any NaN.
func IsNaN64(a uint64) bool {
	u := unpack(fmt64, a)
	return u.cls == clsQNaN || u.cls == clsSNaN
}

// IsSNaN64 reports whether the bits encode a signaling NaN.
func IsSNaN64(a uint64) bool { return unpack(fmt64, a).cls == clsSNaN }

// NaN boxing helpers for RV32D register files: a binary32 value held in a
// 64-bit FP register must be boxed with all-ones upper bits; any register
// value that is not properly boxed must be treated as the canonical NaN
// when read as binary32.

// Box32 NaN-boxes a binary32 value into a 64-bit register image.
func Box32(v uint32) uint64 { return 0xffffffff00000000 | uint64(v) }

// Unbox32 extracts a binary32 value from a 64-bit register image,
// substituting the canonical NaN for improperly boxed values.
func Unbox32(v uint64) uint32 {
	if v>>32 != 0xffffffff {
		return QNaN32
	}
	return uint32(v)
}
