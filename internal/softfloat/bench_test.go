package softfloat

import (
	"math"
	"testing"
)

var (
	benchA  = math.Float64bits(1.2345678901234)
	benchB  = math.Float64bits(-9.87654321e17)
	sinkU64 uint64
	sinkU32 uint32
)

func BenchmarkAdd64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkU64, _ = Add64(benchA, benchB, RNE)
	}
}

func BenchmarkMul64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkU64, _ = Mul64(benchA, benchB, RNE)
	}
}

func BenchmarkDiv64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkU64, _ = Div64(benchA, benchB, RNE)
	}
}

func BenchmarkSqrt64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkU64, _ = Sqrt64(benchA, RNE)
	}
}

func BenchmarkFMA64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkU64, _ = FMA64(benchA, benchB, benchA, RNE)
	}
}

func BenchmarkAdd32(b *testing.B) {
	x, y := math.Float32bits(1.5), math.Float32bits(2.25)
	for i := 0; i < b.N; i++ {
		sinkU32, _ = Add32(x, y, RNE)
	}
}
