package softfloat

import (
	"math"
	"testing"
)

// boundary32 enumerates binary32 values at every exponent boundary with
// mantissa corners, both signs — the values where rounding/normalization
// bugs live.
func boundary32() []uint32 {
	var out []uint32
	for exp := uint32(0); exp <= 0xff; exp += 1 {
		if exp > 4 && exp < 0xfb && exp%31 != 0 && exp != 126 && exp != 127 && exp != 128 {
			continue // sample sparsely away from the corners
		}
		for _, frac := range []uint32{0, 1, 0x400000 - 1, 0x400000, 0x7fffff} {
			for _, sign := range []uint32{0, 1 << 31} {
				out = append(out, sign|exp<<23|frac)
			}
		}
	}
	return out
}

// TestF32BoundaryPairsExhaustive crosses every boundary value with every
// other through all four arithmetic operations, comparing bit-exactly with
// the host's IEEE hardware (RNE).
func TestF32BoundaryPairsExhaustive(t *testing.T) {
	vals := boundary32()
	t.Logf("sweeping %d x %d boundary pairs", len(vals), len(vals))
	for _, a := range vals {
		fa := math.Float32frombits(a)
		for _, b := range vals {
			fb := math.Float32frombits(b)
			if got, _ := Add32(a, b, RNE); !sameF32(got, math.Float32bits(fa+fb)) {
				t.Fatalf("Add32(%#x, %#x) = %#x, want %#x", a, b, got, math.Float32bits(fa+fb))
			}
			if got, _ := Sub32(a, b, RNE); !sameF32(got, math.Float32bits(fa-fb)) {
				t.Fatalf("Sub32(%#x, %#x) = %#x, want %#x", a, b, got, math.Float32bits(fa-fb))
			}
			if got, _ := Mul32(a, b, RNE); !sameF32(got, math.Float32bits(fa*fb)) {
				t.Fatalf("Mul32(%#x, %#x) = %#x, want %#x", a, b, got, math.Float32bits(fa*fb))
			}
			if got, _ := Div32(a, b, RNE); !sameF32(got, math.Float32bits(fa/fb)) {
				t.Fatalf("Div32(%#x, %#x) = %#x, want %#x", a, b, got, math.Float32bits(fa/fb))
			}
		}
	}
}

// boundary64 is the binary64 counterpart (smaller sample per axis).
func boundary64() []uint64 {
	var out []uint64
	for _, exp := range []uint64{0, 1, 2, 3, 0x3fe, 0x3ff, 0x400, 0x432, 0x7fc, 0x7fd, 0x7fe, 0x7ff} {
		for _, frac := range []uint64{0, 1, 1<<51 - 1, 1 << 51, 1<<52 - 1} {
			for _, sign := range []uint64{0, 1 << 63} {
				out = append(out, sign|exp<<52|frac)
			}
		}
	}
	return out
}

func TestF64BoundaryPairsExhaustive(t *testing.T) {
	vals := boundary64()
	for _, a := range vals {
		fa := math.Float64frombits(a)
		for _, b := range vals {
			fb := math.Float64frombits(b)
			if got, _ := Add64(a, b, RNE); !sameF64(got, math.Float64bits(fa+fb)) {
				t.Fatalf("Add64(%#x, %#x) = %#x", a, b, got)
			}
			if got, _ := Mul64(a, b, RNE); !sameF64(got, math.Float64bits(fa*fb)) {
				t.Fatalf("Mul64(%#x, %#x) = %#x", a, b, got)
			}
			if got, _ := Div64(a, b, RNE); !sameF64(got, math.Float64bits(fa/fb)) {
				t.Fatalf("Div64(%#x, %#x) = %#x", a, b, got)
			}
			if got, _ := FMA64(a, b, a, RNE); !sameF64(got, math.Float64bits(math.FMA(fa, fb, fa))) {
				t.Fatalf("FMA64(%#x, %#x, %#x) = %#x", a, b, a, got)
			}
		}
		if got, _ := Sqrt64(a, RNE); !sameF64(got, math.Float64bits(math.Sqrt(fa))) {
			t.Fatalf("Sqrt64(%#x) = %#x", a, got)
		}
	}
}

// TestSqrt32ExhaustiveExponents runs sqrt across all exponents with
// mantissa corners.
func TestSqrt32ExhaustiveExponents(t *testing.T) {
	for exp := uint32(0); exp <= 0xff; exp++ {
		for _, frac := range []uint32{0, 1, 0x3fffff, 0x400000, 0x7fffff} {
			a := exp<<23 | frac
			fa := math.Float32frombits(a)
			want := math.Float32bits(float32(math.Sqrt(float64(fa))))
			if got, _ := Sqrt32(a, RNE); !sameF32(got, want) {
				t.Fatalf("Sqrt32(%#x) = %#x, want %#x", a, got, want)
			}
		}
	}
}

// TestConversionBoundaries sweeps the float->int boundary region
// exhaustively around every power of two near the i32/u32 limits.
func TestConversionBoundaries(t *testing.T) {
	for _, base := range []float64{1<<31 - 1025, 1 << 31, 1<<32 - 1025, 1 << 32, -(1 << 31), 0.5, -0.5, 1, -1} {
		for delta := -4.0; delta <= 4.0; delta += 0.5 {
			v := base + delta
			bits := math.Float64bits(v)
			got, _ := F64ToI32(bits, RTZ)
			if v > -2147483649 && v < 2147483648 {
				want := uint32(int32(v))
				if got != want {
					t.Fatalf("F64ToI32(%v) = %d, want %d", v, int32(got), int32(want))
				}
			} else if v >= 2147483648 && got != 0x7fffffff {
				t.Fatalf("F64ToI32(%v) = %#x, want saturation", v, got)
			} else if v <= -2147483649 && got != 0x80000000 {
				t.Fatalf("F64ToI32(%v) = %#x, want saturation", v, got)
			}
			gotU, _ := F64ToU32(bits, RTZ)
			switch {
			case v >= 0 && v < 4294967296:
				if gotU != uint32(v) {
					t.Fatalf("F64ToU32(%v) = %d, want %d", v, gotU, uint32(v))
				}
			case v >= 4294967296:
				if gotU != 0xffffffff {
					t.Fatalf("F64ToU32(%v) = %#x, want saturation", v, gotU)
				}
			case v <= -1:
				if gotU != 0 {
					t.Fatalf("F64ToU32(%v) = %#x, want 0", v, gotU)
				}
			}
		}
	}
}
