// Package softfloat implements IEEE-754 binary32 and binary64 arithmetic in
// integer arithmetic, with the five RISC-V rounding modes and the five
// RISC-V accrued exception flags. It provides the floating-point semantics
// of the F and D extensions for the instruction-set simulators in this
// repository: every simulator variant shares this one implementation, so
// signature divergence between simulators can only come from deliberately
// seeded defects, never from host floating-point differences.
//
// NaN handling follows the RISC-V convention: results that are NaN are
// always the canonical quiet NaN, and signaling-NaN inputs raise the
// invalid flag.
//
// Tininess is detected before rounding (Berkeley softfloat's classic
// default). The RISC-V specification asks for after-rounding detection;
// the two differ only in whether UF accompanies the one boundary case that
// rounds up to the smallest normal, which no experiment in this repository
// observes (flags never enter test signatures).
package softfloat

// RM is an IEEE-754 rounding mode, numbered as in the RISC-V fcsr.frm
// field.
type RM uint8

const (
	// RNE rounds to nearest, ties to even.
	RNE RM = iota
	// RTZ rounds towards zero.
	RTZ
	// RDN rounds down (towards negative infinity).
	RDN
	// RUP rounds up (towards positive infinity).
	RUP
	// RMM rounds to nearest, ties to max magnitude (away from zero).
	RMM
	// DYN in an instruction's rm field selects the dynamic rounding mode
	// from fcsr.frm; it is not itself a rounding mode.
	DYN RM = 7
)

// Valid reports whether the value is one of the five actual rounding modes.
func (rm RM) Valid() bool { return rm <= RMM }

// Flags is the accrued-exception bitmask, in RISC-V fflags bit order.
type Flags uint8

const (
	// NX: inexact.
	NX Flags = 1 << iota
	// UF: underflow.
	UF
	// OF: overflow.
	OF
	// DZ: divide by zero.
	DZ
	// NV: invalid operation.
	NV
)

// Canonical quiet NaNs per the RISC-V specification.
const (
	QNaN32 uint32 = 0x7fc00000
	QNaN64 uint64 = 0x7ff8000000000000
)

// fmt describes one binary interchange format.
type fmt struct {
	sigBits uint  // fraction bits (23 or 52)
	bias    int32 // exponent bias
	maxExp  int32 // all-ones biased exponent (0xff or 0x7ff)
	qnan    uint64
}

var (
	fmt32 = &fmt{sigBits: 23, bias: 127, maxExp: 0xff, qnan: uint64(QNaN32)}
	fmt64 = &fmt{sigBits: 52, bias: 1023, maxExp: 0x7ff, qnan: QNaN64}
)

// FClass bits produced by Class32/Class64, matching the FCLASS.S/FCLASS.D
// result encoding.
const (
	ClassNegInf uint32 = 1 << iota
	ClassNegNormal
	ClassNegSubnormal
	ClassNegZero
	ClassPosZero
	ClassPosSubnormal
	ClassPosNormal
	ClassPosInf
	ClassSNaN
	ClassQNaN
)
