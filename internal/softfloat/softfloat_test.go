package softfloat

import (
	"math"
	"math/rand"
	"testing"
)

// interesting bit patterns mixed into random operand streams.
var special64 = []uint64{
	0x0000000000000000, 0x8000000000000000, // +-0
	0x3ff0000000000000, 0xbff0000000000000, // +-1
	0x7ff0000000000000, 0xfff0000000000000, // +-inf
	0x7ff8000000000000, 0x7ff0000000000001, // qnan, snan
	0x0000000000000001, 0x8000000000000001, // smallest subnormals
	0x000fffffffffffff, // largest subnormal
	0x0010000000000000, // smallest normal
	0x7fefffffffffffff, // largest normal
	0x3ff0000000000001, // 1 + ulp
	0x4330000000000000, // 2^52
	0xc330000000000000,
}

var special32 = []uint32{
	0x00000000, 0x80000000, 0x3f800000, 0xbf800000,
	0x7f800000, 0xff800000, 0x7fc00000, 0x7f800001,
	0x00000001, 0x80000001, 0x007fffff, 0x00800000,
	0x7f7fffff, 0x3f800001, 0x4b000000,
}

func randF64(rng *rand.Rand) uint64 {
	switch rng.Intn(4) {
	case 0:
		return special64[rng.Intn(len(special64))]
	case 1:
		// Exponent near bias so magnitudes are comparable (exercises
		// cancellation and alignment paths).
		exp := uint64(1023 + rng.Intn(64) - 32)
		return rng.Uint64()&0x800fffffffffffff | exp<<52
	default:
		return rng.Uint64()
	}
}

func randF32(rng *rand.Rand) uint32 {
	switch rng.Intn(4) {
	case 0:
		return special32[rng.Intn(len(special32))]
	case 1:
		exp := uint32(127 + rng.Intn(32) - 16)
		return uint32(rng.Uint32())&0x807fffff | exp<<23
	default:
		return rng.Uint32()
	}
}

// sameF64 compares results treating every NaN encoding as equal.
func sameF64(a, b uint64) bool {
	if IsNaN64(a) && IsNaN64(b) {
		return true
	}
	return a == b
}

func sameF32(a, b uint32) bool {
	if IsNaN32(a) && IsNaN32(b) {
		return true
	}
	return a == b
}

func TestAdd64MatchesNativeRNE(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 200000; i++ {
		a, b := randF64(rng), randF64(rng)
		got, _ := Add64(a, b, RNE)
		want := math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
		if !sameF64(got, want) {
			t.Fatalf("Add64(%#x, %#x) = %#x, native %#x", a, b, got, want)
		}
	}
}

func TestSub64MatchesNativeRNE(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200000; i++ {
		a, b := randF64(rng), randF64(rng)
		got, _ := Sub64(a, b, RNE)
		want := math.Float64bits(math.Float64frombits(a) - math.Float64frombits(b))
		if !sameF64(got, want) {
			t.Fatalf("Sub64(%#x, %#x) = %#x, native %#x", a, b, got, want)
		}
	}
}

func TestMul64MatchesNativeRNE(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 200000; i++ {
		a, b := randF64(rng), randF64(rng)
		got, _ := Mul64(a, b, RNE)
		want := math.Float64bits(math.Float64frombits(a) * math.Float64frombits(b))
		if !sameF64(got, want) {
			t.Fatalf("Mul64(%#x, %#x) = %#x, native %#x", a, b, got, want)
		}
	}
}

func TestDiv64MatchesNativeRNE(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 200000; i++ {
		a, b := randF64(rng), randF64(rng)
		got, _ := Div64(a, b, RNE)
		want := math.Float64bits(math.Float64frombits(a) / math.Float64frombits(b))
		if !sameF64(got, want) {
			t.Fatalf("Div64(%#x, %#x) = %#x, native %#x", a, b, got, want)
		}
	}
}

func TestSqrt64MatchesNative(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 100000; i++ {
		a := randF64(rng)
		got, _ := Sqrt64(a, RNE)
		want := math.Float64bits(math.Sqrt(math.Float64frombits(a)))
		if !sameF64(got, want) {
			t.Fatalf("Sqrt64(%#x) = %#x, native %#x", a, got, want)
		}
	}
}

func TestFMA64MatchesNative(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for i := 0; i < 200000; i++ {
		a, b, c := randF64(rng), randF64(rng), randF64(rng)
		got, _ := FMA64(a, b, c, RNE)
		want := math.Float64bits(math.FMA(math.Float64frombits(a), math.Float64frombits(b), math.Float64frombits(c)))
		if !sameF64(got, want) {
			t.Fatalf("FMA64(%#x, %#x, %#x) = %#x, native %#x", a, b, c, got, want)
		}
	}
}

func TestF32OpsMatchNativeRNE(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for i := 0; i < 200000; i++ {
		a, b := randF32(rng), randF32(rng)
		fa, fb := math.Float32frombits(a), math.Float32frombits(b)
		if got, _ := Add32(a, b, RNE); !sameF32(got, math.Float32bits(fa+fb)) {
			t.Fatalf("Add32(%#x, %#x) = %#x, native %#x", a, b, got, math.Float32bits(fa+fb))
		}
		if got, _ := Sub32(a, b, RNE); !sameF32(got, math.Float32bits(fa-fb)) {
			t.Fatalf("Sub32(%#x, %#x) = %#x, native %#x", a, b, got, math.Float32bits(fa-fb))
		}
		if got, _ := Mul32(a, b, RNE); !sameF32(got, math.Float32bits(fa*fb)) {
			t.Fatalf("Mul32(%#x, %#x) = %#x, native %#x", a, b, got, math.Float32bits(fa*fb))
		}
		if got, _ := Div32(a, b, RNE); !sameF32(got, math.Float32bits(fa/fb)) {
			t.Fatalf("Div32(%#x, %#x) = %#x, native %#x", a, b, got, math.Float32bits(fa/fb))
		}
		if got, _ := Sqrt32(a, RNE); !sameF32(got, math.Float32bits(float32(math.Sqrt(float64(fa))))) {
			t.Fatalf("Sqrt32(%#x) = %#x", a, got)
		}
	}
}

// TestDirectedRoundingBracketing checks RDN <= RNE/RMM <= RUP ordering and
// that RTZ equals whichever of RDN/RUP is towards zero; when RDN == RUP the
// operation is exact and all modes agree.
func TestDirectedRoundingBracketing(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ops := []func(a, b uint64, rm RM) (uint64, Flags){Add64, Sub64, Mul64, Div64}
	le := func(x, y uint64) bool {
		fx, fy := math.Float64frombits(x), math.Float64frombits(y)
		return fx <= fy || (fx == 0 && fy == 0)
	}
	for i := 0; i < 50000; i++ {
		a, b := randF64(rng), randF64(rng)
		for _, op := range ops {
			dn, _ := op(a, b, RDN)
			up, _ := op(a, b, RUP)
			ne, _ := op(a, b, RNE)
			mm, _ := op(a, b, RMM)
			tz, _ := op(a, b, RTZ)
			if IsNaN64(ne) {
				if !IsNaN64(dn) || !IsNaN64(up) || !IsNaN64(tz) || !IsNaN64(mm) {
					t.Fatalf("NaN disagreement for %#x,%#x", a, b)
				}
				continue
			}
			if !le(dn, up) || !le(dn, ne) || !le(ne, up) || !le(dn, mm) || !le(mm, up) {
				t.Fatalf("bracketing violated: a=%#x b=%#x dn=%#x ne=%#x up=%#x", a, b, dn, ne, up)
			}
			if dn == up && (ne != dn || tz != dn || mm != dn) {
				t.Fatalf("exact result disagreement: a=%#x b=%#x", a, b)
			}
			// RTZ is the inward one of dn/up.
			fdn := math.Float64frombits(dn)
			var wantTZ uint64
			if fdn >= 0 || math.Signbit(math.Float64frombits(up)) == false && fdn == 0 {
				wantTZ = dn
			} else {
				wantTZ = up
			}
			if math.Float64frombits(up) <= 0 {
				wantTZ = up
			} else if fdn >= 0 {
				wantTZ = dn
			} else {
				continue // straddles zero only when exact zero; skip
			}
			if tz != wantTZ && !IsNaN64(tz) {
				t.Fatalf("RTZ mismatch: a=%#x b=%#x dn=%#x up=%#x tz=%#x", a, b, dn, up, tz)
			}
		}
	}
}

func TestDirectedRoundingKnownVectors(t *testing.T) {
	one := math.Float64bits(1)
	three := math.Float64bits(3)
	third := func(rm RM) uint64 { v, _ := Div64(one, three, rm); return v }
	// 1/3 = 0x3FD5555555555555 (RNE, RDN, RTZ) and ...56 for RUP.
	if third(RNE) != 0x3fd5555555555555 || third(RDN) != 0x3fd5555555555555 ||
		third(RTZ) != 0x3fd5555555555555 || third(RUP) != 0x3fd5555555555556 {
		t.Errorf("1/3 rounding wrong: rne=%#x rdn=%#x rtz=%#x rup=%#x",
			third(RNE), third(RDN), third(RTZ), third(RUP))
	}
	negThird := func(rm RM) uint64 { v, _ := Div64(math.Float64bits(-1), three, rm); return v }
	if negThird(RDN) != 0xbfd5555555555556 || negThird(RUP) != 0xbfd5555555555555 ||
		negThird(RTZ) != 0xbfd5555555555555 {
		t.Errorf("-1/3 rounding wrong: rdn=%#x rup=%#x rtz=%#x",
			negThird(RDN), negThird(RUP), negThird(RTZ))
	}
	// RMM ties away: 1 + 2^-53 is a tie between 1 and 1+ulp.
	tie := uint64(0x3ca0000000000000) // 2^-53
	if v, _ := Add64(one, tie, RNE); v != one {
		t.Errorf("RNE tie: %#x", v)
	}
	if v, _ := Add64(one, tie, RMM); v != one+1 {
		t.Errorf("RMM tie: %#x", v)
	}
}

func TestOverflowBehaviourPerMode(t *testing.T) {
	big_ := uint64(0x7fefffffffffffff) // max finite
	inf := uint64(0x7ff0000000000000)
	if v, fl := Mul64(big_, big_, RNE); v != inf || fl&(OF|NX) != OF|NX {
		t.Errorf("RNE overflow: %#x flags %b", v, fl)
	}
	if v, _ := Mul64(big_, big_, RTZ); v != big_ {
		t.Errorf("RTZ overflow: %#x", v)
	}
	if v, _ := Mul64(big_, big_, RDN); v != big_ {
		t.Errorf("RDN positive overflow: %#x", v)
	}
	if v, _ := Mul64(big_, big_, RUP); v != inf {
		t.Errorf("RUP positive overflow: %#x", v)
	}
	negBig := big_ | 1<<63
	if v, _ := Mul64(big_, negBig, RUP); v != negBig {
		t.Errorf("RUP negative overflow: %#x", v)
	}
	if v, _ := Mul64(big_, negBig, RDN); v != inf|1<<63 {
		t.Errorf("RDN negative overflow: %#x", v)
	}
}

func TestFlagsBasics(t *testing.T) {
	one := math.Float64bits(1)
	zero := uint64(0)
	if _, fl := Div64(one, zero, RNE); fl != DZ {
		t.Errorf("1/0 flags = %b, want DZ", fl)
	}
	if _, fl := Div64(zero, zero, RNE); fl != NV {
		t.Errorf("0/0 flags = %b, want NV", fl)
	}
	if v, fl := Sqrt64(math.Float64bits(-1), RNE); v != QNaN64 || fl != NV {
		t.Errorf("sqrt(-1) = %#x flags %b", v, fl)
	}
	if _, fl := Div64(one, math.Float64bits(3), RNE); fl != NX {
		t.Errorf("1/3 flags = %b, want NX", fl)
	}
	if _, fl := Add64(one, one, RNE); fl != 0 {
		t.Errorf("1+1 flags = %b, want none", fl)
	}
	// Subnormal inexact result raises UF|NX.
	tiny := uint64(1) // smallest subnormal
	if _, fl := Div64(tiny, math.Float64bits(3), RNE); fl&(UF|NX) != UF|NX {
		t.Errorf("tiny/3 flags = %b, want UF|NX", fl)
	}
	// Signaling NaN input raises NV; quiet NaN does not (for arithmetic).
	snan := uint64(0x7ff0000000000001)
	if v, fl := Add64(one, snan, RNE); v != QNaN64 || fl != NV {
		t.Errorf("1+sNaN = %#x flags %b", v, fl)
	}
	if v, fl := Add64(one, QNaN64, RNE); v != QNaN64 || fl != 0 {
		t.Errorf("1+qNaN = %#x flags %b", v, fl)
	}
	// inf - inf is invalid.
	inf := uint64(0x7ff0000000000000)
	if v, fl := Sub64(inf, inf, RNE); v != QNaN64 || fl != NV {
		t.Errorf("inf-inf = %#x flags %b", v, fl)
	}
	// 0 * inf is invalid, also under FMA.
	if v, fl := Mul64(zero, inf, RNE); v != QNaN64 || fl != NV {
		t.Errorf("0*inf = %#x flags %b", v, fl)
	}
	if v, fl := FMA64(zero, inf, one, RNE); v != QNaN64 || fl != NV {
		t.Errorf("fma(0,inf,1) = %#x flags %b", v, fl)
	}
	if v, fl := FMA64(zero, inf, QNaN64, RNE); v != QNaN64 || fl != NV {
		t.Errorf("fma(0,inf,qnan) = %#x flags %b", v, fl)
	}
}

func TestMinMaxSemantics(t *testing.T) {
	posZero, negZero := uint64(0), uint64(1)<<63
	one := math.Float64bits(1)
	snan := uint64(0x7ff0000000000001)
	if v, _ := Min64(posZero, negZero); v != negZero {
		t.Errorf("min(+0,-0) = %#x, want -0", v)
	}
	if v, _ := Max64(posZero, negZero); v != posZero {
		t.Errorf("max(+0,-0) = %#x, want +0", v)
	}
	if v, fl := Min64(one, QNaN64); v != one || fl != 0 {
		t.Errorf("min(1,qnan) = %#x flags %b", v, fl)
	}
	if v, fl := Min64(one, snan); v != one || fl != NV {
		t.Errorf("min(1,snan) = %#x flags %b", v, fl)
	}
	if v, fl := Min64(QNaN64, QNaN64); v != QNaN64 || fl != 0 {
		t.Errorf("min(qnan,qnan) = %#x flags %b", v, fl)
	}
	if v, _ := Min64(math.Float64bits(-3), math.Float64bits(2)); v != math.Float64bits(-3) {
		t.Errorf("min(-3,2) = %#x", v)
	}
	if v, _ := Max64(math.Float64bits(-3), math.Float64bits(2)); v != math.Float64bits(2) {
		t.Errorf("max(-3,2) = %#x", v)
	}
}

func TestCompareSemantics(t *testing.T) {
	one, two := math.Float64bits(1), math.Float64bits(2)
	snan := uint64(0x7ff0000000000001)
	if eq, fl := Eq64(one, one); !eq || fl != 0 {
		t.Errorf("1==1: %v %b", eq, fl)
	}
	if eq, _ := Eq64(0, 1<<63); !eq {
		t.Error("+0 != -0")
	}
	if eq, fl := Eq64(one, QNaN64); eq || fl != 0 {
		t.Errorf("quiet compare with qnan: %v %b", eq, fl)
	}
	if eq, fl := Eq64(one, snan); eq || fl != NV {
		t.Errorf("quiet compare with snan: %v %b", eq, fl)
	}
	if lt, fl := Lt64(one, QNaN64); lt || fl != NV {
		t.Errorf("signaling compare with qnan: %v %b", lt, fl)
	}
	if lt, _ := Lt64(one, two); !lt {
		t.Error("1 < 2 failed")
	}
	if lt, _ := Lt64(math.Float64bits(-1), one); !lt {
		t.Error("-1 < 1 failed")
	}
	if le, _ := Le64(two, one); le {
		t.Error("2 <= 1 wrongly true")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		bits uint64
		want uint32
	}{
		{math.Float64bits(math.Inf(-1)), ClassNegInf},
		{math.Float64bits(-1.5), ClassNegNormal},
		{0x8000000000000001, ClassNegSubnormal},
		{1 << 63, ClassNegZero},
		{0, ClassPosZero},
		{1, ClassPosSubnormal},
		{math.Float64bits(1.5), ClassPosNormal},
		{math.Float64bits(math.Inf(1)), ClassPosInf},
		{0x7ff0000000000001, ClassSNaN},
		{QNaN64, ClassQNaN},
	}
	for _, c := range cases {
		if got := Class64(c.bits); got != c.want {
			t.Errorf("Class64(%#x) = %#x, want %#x", c.bits, got, c.want)
		}
	}
	if got := Class32(QNaN32); got != ClassQNaN {
		t.Errorf("Class32(qnan) = %#x", got)
	}
	if got := Class32(0x00000001); got != ClassPosSubnormal {
		t.Errorf("Class32(min subnormal) = %#x", got)
	}
}

func TestIntConversions(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for i := 0; i < 100000; i++ {
		a := randF64(rng)
		fa := math.Float64frombits(a)
		got, _ := F64ToI32(a, RTZ)
		if !math.IsNaN(fa) && fa > -2147483649 && fa < 2147483648 {
			want := uint32(int32(fa)) // Go float->int conversion truncates
			if got != want {
				t.Fatalf("F64ToI32(%v RTZ) = %d, want %d", fa, int32(got), int32(want))
			}
		}
	}
	// Saturation and NV behaviour.
	if v, fl := F64ToI32(math.Float64bits(1e300), RNE); v != 0x7fffffff || fl != NV {
		t.Errorf("huge to i32: %#x %b", v, fl)
	}
	if v, fl := F64ToI32(math.Float64bits(-1e300), RNE); v != 0x80000000 || fl != NV {
		t.Errorf("-huge to i32: %#x %b", v, fl)
	}
	if v, fl := F64ToI32(QNaN64, RNE); v != 0x7fffffff || fl != NV {
		t.Errorf("nan to i32: %#x %b", v, fl)
	}
	if v, fl := F64ToU32(QNaN64, RNE); v != 0xffffffff || fl != NV {
		t.Errorf("nan to u32: %#x %b", v, fl)
	}
	if v, fl := F64ToU32(math.Float64bits(-1), RNE); v != 0 || fl != NV {
		t.Errorf("-1 to u32: %#x %b", v, fl)
	}
	if v, fl := F64ToU32(math.Float64bits(-0.25), RNE); v != 0 || fl != NX {
		t.Errorf("-0.25 to u32: %#x %b", v, fl)
	}
	// Rounding-mode sensitivity.
	half := math.Float64bits(2.5)
	if v, _ := F64ToI32(half, RNE); v != 2 {
		t.Errorf("2.5 RNE = %d", v)
	}
	if v, _ := F64ToI32(half, RMM); v != 3 {
		t.Errorf("2.5 RMM = %d", v)
	}
	if v, _ := F64ToI32(half, RUP); v != 3 {
		t.Errorf("2.5 RUP = %d", v)
	}
	if v, _ := F64ToI32(math.Float64bits(-2.5), RDN); int32(v) != -3 {
		t.Errorf("-2.5 RDN = %d", int32(v))
	}
	// Exact boundary: 2^31-1 fits, 2^31 does not.
	if v, fl := F64ToI32(math.Float64bits(2147483647), RNE); v != 0x7fffffff || fl != 0 {
		t.Errorf("maxint: %d %b", int32(v), fl)
	}
	if v, fl := F64ToI32(math.Float64bits(2147483648), RNE); v != 0x7fffffff || fl != NV {
		t.Errorf("maxint+1: %d %b", int32(v), fl)
	}
	if v, fl := F64ToU32(math.Float64bits(4294967295), RNE); v != 0xffffffff || fl != 0 {
		t.Errorf("maxuint: %d %b", v, fl)
	}
}

func TestFromIntConversions(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 100000; i++ {
		v := rng.Uint32()
		if got, _ := I32ToF64(v, RNE); got != math.Float64bits(float64(int32(v))) {
			t.Fatalf("I32ToF64(%d) = %#x", int32(v), got)
		}
		if got, _ := U32ToF64(v, RNE); got != math.Float64bits(float64(v)) {
			t.Fatalf("U32ToF64(%d) = %#x", v, got)
		}
		if got, _ := I32ToF32(v, RNE); got != math.Float32bits(float32(int32(v))) {
			t.Fatalf("I32ToF32(%d) = %#x", int32(v), got)
		}
		if got, _ := U32ToF32(v, RNE); got != math.Float32bits(float32(v)) {
			t.Fatalf("U32ToF32(%d) = %#x", v, got)
		}
	}
	// Inexact int->f32 sets NX.
	if _, fl := I32ToF32(0x7fffffff, RNE); fl != NX {
		t.Errorf("maxint to f32 flags %b, want NX", fl)
	}
	if _, fl := I32ToF64(0x7fffffff, RNE); fl != 0 {
		t.Errorf("maxint to f64 flags %b, want none", fl)
	}
}

func TestFormatConversions(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 100000; i++ {
		a := randF32(rng)
		got, _ := F32ToF64(a)
		want := math.Float64bits(float64(math.Float32frombits(a)))
		if !sameF64(got, want) {
			t.Fatalf("F32ToF64(%#x) = %#x, want %#x", a, got, want)
		}
		d := randF64(rng)
		got32, _ := F64ToF32(d, RNE)
		want32 := math.Float32bits(float32(math.Float64frombits(d)))
		if !sameF32(got32, want32) {
			t.Fatalf("F64ToF32(%#x) = %#x, want %#x", d, got32, want32)
		}
	}
	// sNaN conversion raises NV and returns the canonical NaN.
	if v, fl := F32ToF64(0x7f800001); v != QNaN64 || fl != NV {
		t.Errorf("snan widen: %#x %b", v, fl)
	}
}

func TestNaNBoxing(t *testing.T) {
	if Box32(0x3f800000) != 0xffffffff3f800000 {
		t.Error("Box32 wrong")
	}
	if Unbox32(0xffffffff3f800000) != 0x3f800000 {
		t.Error("Unbox32 wrong")
	}
	// Improperly boxed values read as the canonical NaN.
	if Unbox32(0x000000003f800000) != QNaN32 {
		t.Error("Unbox32 must canonicalize unboxed values")
	}
	if Unbox32(math.Float64bits(1.0)) != QNaN32 {
		t.Error("Unbox32 of a double must be NaN")
	}
}

func TestFMA32Vectors(t *testing.T) {
	f := func(x float32) uint32 { return math.Float32bits(x) }
	// Exact cancellation picking up the addend: a*b = 1<<24+1 exactly
	// representable only via FMA.
	a, b := f(4097), f(4097) // 4097^2 = 16785409 = 2^24 + 8192 + 1... compute separately
	got, _ := FMA32(a, b, f(0), RNE)
	want := math.Float32bits(float32(float64(4097) * float64(4097)))
	if got != want {
		t.Errorf("fma(4097,4097,0) = %#x, want %#x", got, want)
	}
	// fma(a, b, c) where rounding a*b first would lose the low bit:
	// (2^12+1)^2 = 2^24 + 2^13 + 1; adding -2^24 leaves 2^13+1 exactly.
	got, _ = FMA32(f(4097), f(4097), f(-16777216), RNE)
	if got != f(8193) {
		t.Errorf("fma single rounding = %v, want 8193", math.Float32frombits(got))
	}
	// Whereas mul-then-add double rounds to 8192.
	m, _ := Mul32(f(4097), f(4097), RNE)
	s, _ := Add32(m, f(-16777216), RNE)
	if s != f(8192) {
		t.Errorf("mul+add = %v, want 8192", math.Float32frombits(s))
	}
	// Random finite checks against float64 emulation where the double
	// rounding cannot bite (product exact in f64 and |c| comparable).
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 50000; i++ {
		x := float32(rng.Intn(1 << 12))
		y := float32(rng.Intn(1 << 12))
		z := float32(rng.Intn(1<<20) - 1<<19)
		got, _ := FMA32(f(x), f(y), f(z), RNE)
		want := math.Float32bits(float32(math.FMA(float64(x), float64(y), float64(z))))
		if got != want {
			t.Fatalf("FMA32(%v,%v,%v) = %#x, want %#x", x, y, z, got, want)
		}
	}
}

func TestSubnormalArithmetic(t *testing.T) {
	// Smallest subnormal halves to zero (RNE, ties to even).
	tiny := uint64(1)
	if v, fl := Div64(tiny, math.Float64bits(2), RNE); v != 0 || fl&(UF|NX) != UF|NX {
		t.Errorf("tiny/2 = %#x flags %b", v, fl)
	}
	// 3*tiny/2 rounds to 2*tiny (RNE, ties to even).
	three := uint64(3) // subnormal with value 3*2^-1074
	if v, _ := Div64(three, math.Float64bits(2), RNE); v != 2 {
		t.Errorf("3ulp/2 = %#x, want 2", v)
	}
	// Subnormal + subnormal is exact.
	if v, fl := Add64(tiny, three, RNE); v != 4 || fl != 0 {
		t.Errorf("tiny+3ulp = %#x flags %b", v, fl)
	}
	// RUP forces the smallest subnormal instead of zero.
	if v, _ := Div64(tiny, math.Float64bits(4), RUP); v != 1 {
		t.Errorf("tiny/4 RUP = %#x, want 1", v)
	}
	if v, _ := Div64(tiny, math.Float64bits(4), RDN); v != 0 {
		t.Errorf("tiny/4 RDN = %#x, want 0", v)
	}
}
