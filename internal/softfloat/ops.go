package softfloat

import "math/bits"

// add computes a + b (or a - b when negB) in format f.
func add(f *fmt, a, b uint64, rm RM, negB bool) (uint64, Flags) {
	ua, ub := unpack(f, a), unpack(f, b)
	if negB {
		ub.sign = !ub.sign
	}
	if ua.cls >= clsQNaN || ub.cls >= clsQNaN {
		return propagateNaN(f, ua, ub)
	}
	switch {
	case ua.cls == clsInf && ub.cls == clsInf:
		if ua.sign != ub.sign {
			return f.qnan, NV
		}
		return packInf(f, ua.sign), 0
	case ua.cls == clsInf:
		return packInf(f, ua.sign), 0
	case ub.cls == clsInf:
		return packInf(f, ub.sign), 0
	case ua.cls == clsZero && ub.cls == clsZero:
		if ua.sign == ub.sign {
			return packZero(f, ua.sign), 0
		}
		return packZero(f, rm == RDN), 0
	case ua.cls == clsZero:
		return repack(f, ub), 0
	case ub.cls == clsZero:
		return repack(f, ua), 0
	}
	if ua.sign == ub.sign {
		return addMags(f, ua, ub, rm)
	}
	return subMags(f, ua, ub, rm)
}

// repack turns an unpacked finite value back into format bits exactly.
func repack(f *fmt, u unpacked) uint64 {
	v, _ := roundPack(f, u.sign, u.exp, u.sig, RNE) // exact by construction
	return v
}

// addMags adds two same-sign magnitudes.
func addMags(f *fmt, ua, ub unpacked, rm RM) (uint64, Flags) {
	if ua.exp < ub.exp || (ua.exp == ub.exp && ua.sig < ub.sig) {
		ua, ub = ub, ua
	}
	d := uint(ua.exp - ub.exp)
	// Work two bits down (leading at 61) so the sum cannot wrap. The
	// operands' significant bits live in the top sigBits+1 bits, so the
	// two-bit shift of ua.sig is exact.
	x := ua.sig >> 2
	y := shiftRightJam64(ub.sig, d+2)
	sum := x + y
	// The leading bit of sum sits at 61 or 62; renormalize it to 63. The
	// left shift keeps the sticky (bit 0 of y) below the guard position,
	// so rounding stays correct.
	sh := uint(bits.LeadingZeros64(sum))
	return roundPack(f, ua.sign, ua.exp+2-int32(sh), sum<<sh, rm)
}

// subMags subtracts the smaller magnitude from the larger (opposite signs).
func subMags(f *fmt, ua, ub unpacked, rm RM) (uint64, Flags) {
	if ua.exp < ub.exp || (ua.exp == ub.exp && ua.sig < ub.sig) {
		ua, ub = ub, ua
	}
	if ua.exp == ub.exp && ua.sig == ub.sig {
		// Exact cancellation: zero whose sign depends on the rounding mode.
		return packZero(f, rm == RDN), 0
	}
	d := uint(ua.exp - ub.exp)
	y := shiftRightJam64(ub.sig, d)
	diff := ua.sig - y
	return normRoundPack(f, ua.sign, ua.exp, diff, rm)
}

// mul computes a * b in format f.
func mul(f *fmt, a, b uint64, rm RM) (uint64, Flags) {
	ua, ub := unpack(f, a), unpack(f, b)
	sign := ua.sign != ub.sign
	if ua.cls >= clsQNaN || ub.cls >= clsQNaN {
		return propagateNaN(f, ua, ub)
	}
	switch {
	case (ua.cls == clsInf && ub.cls == clsZero) || (ua.cls == clsZero && ub.cls == clsInf):
		return f.qnan, NV
	case ua.cls == clsInf || ub.cls == clsInf:
		return packInf(f, sign), 0
	case ua.cls == clsZero || ub.cls == clsZero:
		return packZero(f, sign), 0
	}
	hi, lo := bits.Mul64(ua.sig, ub.sig)
	exp := ua.exp + ub.exp + 1
	if hi>>63 == 0 {
		hi = hi<<1 | lo>>63
		lo <<= 1
		exp--
	}
	return roundPack(f, sign, exp, hi|b2u(lo != 0), rm)
}

// div computes a / b in format f.
func div(f *fmt, a, b uint64, rm RM) (uint64, Flags) {
	ua, ub := unpack(f, a), unpack(f, b)
	sign := ua.sign != ub.sign
	if ua.cls >= clsQNaN || ub.cls >= clsQNaN {
		return propagateNaN(f, ua, ub)
	}
	switch {
	case ua.cls == clsInf && ub.cls == clsInf:
		return f.qnan, NV
	case ua.cls == clsInf:
		return packInf(f, sign), 0
	case ub.cls == clsInf:
		return packZero(f, sign), 0
	case ub.cls == clsZero:
		if ua.cls == clsZero {
			return f.qnan, NV
		}
		return packInf(f, sign), DZ
	case ua.cls == clsZero:
		return packZero(f, sign), 0
	}
	// 126-bit dividend sigA<<63 divided by sigB; hi = sigA>>1 < 2^63 <=
	// sigB, so bits.Div64 cannot trap.
	q, r := bits.Div64(ua.sig>>1, ua.sig<<63, ub.sig)
	exp := ua.exp - ub.exp
	var sig uint64
	if q >= 1<<63 {
		sig = q // ratio in [1, 2): leading bit already at 63
	} else {
		sig = q << 1 // ratio in (1/2, 1)
		exp--
	}
	sig |= b2u(r != 0)
	return roundPack(f, sign, exp, sig, rm)
}

// sqrt computes the square root of a in format f.
func sqrt(f *fmt, a uint64, rm RM) (uint64, Flags) {
	ua := unpack(f, a)
	switch ua.cls {
	case clsQNaN, clsSNaN:
		return propagateNaN(f, ua)
	case clsZero:
		return packZero(f, ua.sign), 0
	case clsInf:
		if ua.sign {
			return f.qnan, NV
		}
		return packInf(f, false), 0
	}
	if ua.sign {
		return f.qnan, NV
	}
	var rh, rl uint64
	var exp int32
	if ua.exp&1 == 0 {
		rh, rl = ua.sig>>1, ua.sig<<63 // sig << 63
		exp = ua.exp / 2
	} else {
		rh, rl = ua.sig, 0 // sig << 64
		exp = (ua.exp - 1) / 2
	}
	root, rem := isqrt128(rh, rl)
	return roundPack(f, false, exp, root|b2u(rem), rm)
}

// fma computes a*b + c with a single rounding.
func fma(f *fmt, a, b, c uint64, rm RM) (uint64, Flags) {
	ua, ub, uc := unpack(f, a), unpack(f, b), unpack(f, c)
	ps := ua.sign != ub.sign
	// Invalid combinations are detected even when another operand is NaN.
	if (ua.cls == clsInf && ub.cls == clsZero) || (ua.cls == clsZero && ub.cls == clsInf) {
		v, fl := propagateNaN(f, ua, ub, uc)
		return v, fl | NV
	}
	if ua.cls >= clsQNaN || ub.cls >= clsQNaN || uc.cls >= clsQNaN {
		return propagateNaN(f, ua, ub, uc)
	}
	if ua.cls == clsInf || ub.cls == clsInf {
		if uc.cls == clsInf && uc.sign != ps {
			return f.qnan, NV
		}
		return packInf(f, ps), 0
	}
	if uc.cls == clsInf {
		return packInf(f, uc.sign), 0
	}
	if ua.cls == clsZero || ub.cls == clsZero {
		if uc.cls == clsZero {
			if uc.sign == ps {
				return packZero(f, ps), 0
			}
			return packZero(f, rm == RDN), 0
		}
		return repack(f, uc), 0
	}
	// Product as a 128-bit significand with the leading bit at 127.
	ph, pl := bits.Mul64(ua.sig, ub.sig)
	pexp := ua.exp + ub.exp + 1
	if ph>>63 == 0 {
		ph, pl = shl128(ph, pl, 1)
		pexp--
	}
	if uc.cls == clsZero {
		return roundPack(f, ps, pexp, ph|b2u(pl != 0), rm)
	}
	// Addend in the same 128-bit form.
	ch, cl := uc.sig, uint64(0)
	cexp := uc.exp
	// Align to the larger exponent.
	exp := pexp
	if d := pexp - cexp; d > 0 {
		ch, cl = shiftRightJam128(ch, cl, uint(d))
	} else if d < 0 {
		ph, pl = shiftRightJam128(ph, pl, uint(-d))
		exp = cexp
	}
	var sign bool
	var zh, zl uint64
	if ps == uc.sign {
		sign = ps
		var carry uint64
		zl, carry = bits.Add64(pl, cl, 0)
		zh, carry = bits.Add64(ph, ch, carry)
		if carry != 0 {
			zh, zl = shiftRightJam128(zh, zl, 1)
			zh |= 1 << 63
			exp++
		}
	} else {
		switch cmp128(ph, pl, ch, cl) {
		case 0:
			return packZero(f, rm == RDN), 0
		case 1:
			sign = ps
			zh, zl = sub128(ph, pl, ch, cl)
		default:
			sign = uc.sign
			zh, zl = sub128(ch, cl, ph, pl)
		}
	}
	sh := clz128(zh, zl)
	zh, zl = shl128(zh, zl, sh)
	exp -= int32(sh)
	return roundPack(f, sign, exp, zh|b2u(zl != 0), rm)
}

// minmax implements RISC-V FMIN/FMAX (IEEE 754-2019 minimumNumber /
// maximumNumber): a single NaN operand is ignored, -0 orders below +0, and
// signaling NaNs raise NV.
func minmax(f *fmt, a, b uint64, max bool) (uint64, Flags) {
	ua, ub := unpack(f, a), unpack(f, b)
	var flags Flags
	if ua.cls == clsSNaN || ub.cls == clsSNaN {
		flags = NV
	}
	aNaN := ua.cls >= clsQNaN
	bNaN := ub.cls >= clsQNaN
	switch {
	case aNaN && bNaN:
		return f.qnan, flags
	case aNaN:
		return b, flags
	case bNaN:
		return a, flags
	}
	if less(f, a, b) != max {
		return a, flags
	}
	return b, flags
}

// less orders finite (non-NaN) format values including the -0 < +0 rule
// used by minmax.
func less(f *fmt, a, b uint64) bool {
	sa := a >> (f.sigBits + uint(expBits(f)))
	sb := b >> (f.sigBits + uint(expBits(f)))
	if sa != sb {
		return sa == 1 // a negative (covers -0 < +0)
	}
	if sa == 1 {
		return a > b
	}
	return a < b
}

// compare implements FEQ/FLT/FLE. signaling selects the FLT/FLE behaviour
// (NV on any NaN); FEQ raises NV only for signaling NaNs.
func compare(f *fmt, a, b uint64, signaling bool) (eq, lt, le bool, flags Flags) {
	ua, ub := unpack(f, a), unpack(f, b)
	if ua.cls >= clsQNaN || ub.cls >= clsQNaN {
		if signaling || ua.cls == clsSNaN || ub.cls == clsSNaN {
			flags = NV
		}
		return false, false, false, flags
	}
	bothZero := ua.cls == clsZero && ub.cls == clsZero
	if bothZero {
		return true, false, true, 0
	}
	if a == b {
		return true, false, true, 0
	}
	lt = less(f, a, b)
	return false, lt, lt, 0
}

// classify returns the FCLASS bitmask for the value.
func classify(f *fmt, a uint64) uint32 {
	u := unpack(f, a)
	frac := a & (1<<f.sigBits - 1)
	be := int32(a>>f.sigBits) & f.maxExp
	switch u.cls {
	case clsSNaN:
		return ClassSNaN
	case clsQNaN:
		return ClassQNaN
	case clsInf:
		if u.sign {
			return ClassNegInf
		}
		return ClassPosInf
	case clsZero:
		if u.sign {
			return ClassNegZero
		}
		return ClassPosZero
	}
	sub := be == 0 && frac != 0
	switch {
	case u.sign && sub:
		return ClassNegSubnormal
	case u.sign:
		return ClassNegNormal
	case sub:
		return ClassPosSubnormal
	}
	return ClassPosNormal
}

// toInt32 converts a format value to a 32-bit integer with the given
// rounding mode. Out-of-range values (including NaN and infinities) clamp
// per the RISC-V specification and raise NV.
func toInt32(f *fmt, a uint64, rm RM, signed bool) (uint32, Flags) {
	const (
		maxI = 0x7fffffff
		minI = 0x80000000
		maxU = 0xffffffff
	)
	u := unpack(f, a)
	switch u.cls {
	case clsQNaN, clsSNaN:
		if signed {
			return maxI, NV
		}
		return maxU, NV
	case clsInf:
		switch {
		case signed && u.sign:
			return minI, NV
		case signed:
			return maxI, NV
		case u.sign:
			return 0, NV
		}
		return maxU, NV
	case clsZero:
		return 0, 0
	}
	if u.exp > 62 {
		// Magnitude at least 2^63: certainly out of range.
		return intClamp(u.sign, signed), NV
	}
	var iv, roundBits, half uint64
	switch {
	case u.exp < -1:
		// Magnitude below 1/2: integer part 0, pure sticky (ties are
		// impossible, so half only needs to exceed roundBits).
		iv, roundBits, half = 0, 1, 2
	case u.exp == -1:
		// Magnitude in [1/2, 1): a tie at exactly 1/2.
		iv, roundBits, half = 0, u.sig, 1<<63
	default:
		sh := uint(63 - u.exp)
		iv = u.sig >> sh
		roundBits = u.sig & (1<<sh - 1)
		half = 1 << (sh - 1)
	}
	switch rm {
	case RNE:
		if roundBits > half || (roundBits == half && iv&1 != 0) {
			iv++
		}
	case RMM:
		if roundBits >= half {
			iv++
		}
	case RDN:
		if u.sign && roundBits != 0 {
			iv++
		}
	case RUP:
		if !u.sign && roundBits != 0 {
			iv++
		}
	}
	var flags Flags
	if roundBits != 0 {
		flags = NX
	}
	if signed {
		if u.sign {
			if iv > minI {
				return minI, NV
			}
			return uint32(-int32(iv)), flags
		}
		if iv > maxI {
			return maxI, NV
		}
		return uint32(iv), flags
	}
	if u.sign {
		if iv != 0 {
			return 0, NV
		}
		return 0, flags
	}
	if iv > maxU {
		return maxU, NV
	}
	return uint32(iv), flags
}

func intClamp(negative, signed bool) uint32 {
	switch {
	case signed && negative:
		return 0x80000000
	case signed:
		return 0x7fffffff
	case negative:
		return 0
	}
	return 0xffffffff
}

// fromInt32 converts a 32-bit integer to format bits.
func fromInt32(f *fmt, v uint32, rm RM, signed bool) (uint64, Flags) {
	var sign bool
	m := uint64(v)
	if signed && int32(v) < 0 {
		sign = true
		m = uint64(-int64(int32(v)))
	}
	if m == 0 {
		return packZero(f, false), 0
	}
	sh := uint(bits.LeadingZeros64(m))
	return roundPack(f, sign, 63-int32(sh), m<<sh, rm)
}

// cvtFormat converts between binary32 and binary64.
func cvtFormat(from, to *fmt, a uint64, rm RM) (uint64, Flags) {
	u := unpack(from, a)
	switch u.cls {
	case clsQNaN, clsSNaN:
		return propagateNaN(to, u)
	case clsInf:
		return packInf(to, u.sign), 0
	case clsZero:
		return packZero(to, u.sign), 0
	}
	return roundPack(to, u.sign, u.exp, u.sig, rm)
}
