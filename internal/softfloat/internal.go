package softfloat

import "math/bits"

// class partitions the operand space for special-case handling.
type class uint8

const (
	clsZero   class = iota
	clsFinite       // normal or subnormal, normalized on unpack
	clsInf
	clsQNaN
	clsSNaN
)

// unpacked is a finite nonzero value sign * sig * 2^(exp-63) with the
// leading significand bit at bit 63.
type unpacked struct {
	cls  class
	sign bool
	exp  int32
	sig  uint64
}

// unpack decomposes raw format bits. For clsFinite the significand is
// normalized to bit 63 (subnormals included).
func unpack(f *fmt, v uint64) unpacked {
	sign := v>>(f.sigBits+uint(expBits(f))) != 0
	frac := v & (1<<f.sigBits - 1)
	be := int32(v>>f.sigBits) & f.maxExp
	switch {
	case be == f.maxExp:
		if frac == 0 {
			return unpacked{cls: clsInf, sign: sign}
		}
		if frac>>(f.sigBits-1) == 0 {
			return unpacked{cls: clsSNaN, sign: sign}
		}
		return unpacked{cls: clsQNaN, sign: sign}
	case be == 0:
		if frac == 0 {
			return unpacked{cls: clsZero, sign: sign}
		}
		s0 := frac << (63 - f.sigBits)
		sh := uint(bits.LeadingZeros64(s0))
		return unpacked{cls: clsFinite, sign: sign, exp: 1 - f.bias - int32(sh), sig: s0 << sh}
	default:
		sig := (1<<f.sigBits | frac) << (63 - f.sigBits)
		return unpacked{cls: clsFinite, sign: sign, exp: be - f.bias, sig: sig}
	}
}

func expBits(f *fmt) int {
	if f.sigBits == 23 {
		return 8
	}
	return 11
}

func signBit(f *fmt, sign bool) uint64 {
	if !sign {
		return 0
	}
	return 1 << (f.sigBits + uint(expBits(f)))
}

func packInf(f *fmt, sign bool) uint64 {
	return signBit(f, sign) | uint64(f.maxExp)<<f.sigBits
}

func packZero(f *fmt, sign bool) uint64 { return signBit(f, sign) }

func packMax(f *fmt, sign bool) uint64 {
	return signBit(f, sign) | uint64(f.maxExp-1)<<f.sigBits | (1<<f.sigBits - 1)
}

// shiftRightJam64 shifts v right by n, ORing any shifted-out bits into the
// result's least-significant bit (the "sticky" jam).
func shiftRightJam64(v uint64, n uint) uint64 {
	if n >= 64 {
		if v != 0 {
			return 1
		}
		return 0
	}
	r := v >> n
	if v<<(64-n) != 0 && n != 0 {
		r |= 1
	}
	return r
}

// roundPack rounds the value sign * sig * 2^(exp-63) (leading bit at 63,
// rounding bits below the target precision) into format bits, accruing
// flags. sig == 0 yields a signed zero.
func roundPack(f *fmt, sign bool, exp int32, sig uint64, rm RM) (uint64, Flags) {
	gshift := 63 - f.sigBits // number of round bits below the target precision
	roundMask := uint64(1)<<gshift - 1
	half := uint64(1) << (gshift - 1)

	var flags Flags
	biased := exp + f.bias
	tiny := false
	if sig == 0 {
		return packZero(f, sign), 0
	}
	if biased >= f.maxExp {
		// Certain overflow even before rounding.
		return overflow(f, sign, rm)
	}
	if biased <= 0 {
		tiny = true
		sig = shiftRightJam64(sig, uint(1-biased))
		biased = 0
	}

	roundBits := sig & roundMask
	var inc uint64
	switch rm {
	case RNE:
		if roundBits > half || (roundBits == half && sig&(roundMask+1) != 0) {
			inc = roundMask + 1 - roundBits
		}
	case RMM:
		if roundBits >= half {
			inc = roundMask + 1 - roundBits
		}
	case RTZ:
		// truncate
	case RDN:
		if sign && roundBits != 0 {
			inc = roundMask + 1 - roundBits
		}
	case RUP:
		if !sign && roundBits != 0 {
			inc = roundMask + 1 - roundBits
		}
	}
	if roundBits != 0 {
		flags |= NX
		if tiny {
			flags |= UF
		}
	}
	sum := sig + inc
	if sum < sig { // carry out of bit 63
		sum = 1 << 63
		biased++
	}
	if biased >= f.maxExp {
		bits_, fl := overflow(f, sign, rm)
		return bits_, fl | flags
	}
	frac := sum >> gshift
	var out uint64
	if biased == 0 {
		// Subnormal (or rounded up to the smallest normal, in which case
		// frac carries into the exponent field naturally).
		out = frac
	} else {
		out = uint64(biased)<<f.sigBits + (frac - 1<<f.sigBits)
	}
	return signBit(f, sign) | out, flags
}

// overflow returns the IEEE overflow result for the rounding direction.
func overflow(f *fmt, sign bool, rm RM) (uint64, Flags) {
	flags := OF | NX
	switch rm {
	case RTZ:
		return packMax(f, sign), flags
	case RDN:
		if !sign {
			return packMax(f, false), flags
		}
	case RUP:
		if sign {
			return packMax(f, true), flags
		}
	}
	return packInf(f, sign), flags
}

// normRoundPack left-normalizes sig (leading bit to 63) before rounding.
func normRoundPack(f *fmt, sign bool, exp int32, sig uint64, rm RM) (uint64, Flags) {
	if sig == 0 {
		return packZero(f, sign), 0
	}
	sh := uint(bits.LeadingZeros64(sig))
	return roundPack(f, sign, exp-int32(sh), sig<<sh, rm)
}

// 128-bit helpers for FMA and sqrt.

func add128(ah, al, bh, bl uint64) (uint64, uint64) {
	lo, carry := bits.Add64(al, bl, 0)
	hi, _ := bits.Add64(ah, bh, carry)
	return hi, lo
}

func sub128(ah, al, bh, bl uint64) (uint64, uint64) {
	lo, borrow := bits.Sub64(al, bl, 0)
	hi, _ := bits.Sub64(ah, bh, borrow)
	return hi, lo
}

func cmp128(ah, al, bh, bl uint64) int {
	switch {
	case ah > bh:
		return 1
	case ah < bh:
		return -1
	case al > bl:
		return 1
	case al < bl:
		return -1
	}
	return 0
}

func shl128(h, l uint64, n uint) (uint64, uint64) {
	switch {
	case n == 0:
		return h, l
	case n >= 128:
		return 0, 0
	case n >= 64:
		return l << (n - 64), 0
	}
	return h<<n | l>>(64-n), l << n
}

// shiftRightJam128 shifts the 128-bit value right by n with sticky jam into
// the least-significant bit.
func shiftRightJam128(h, l uint64, n uint) (uint64, uint64) {
	switch {
	case n == 0:
		return h, l
	case n >= 128:
		if h|l != 0 {
			return 0, 1
		}
		return 0, 0
	case n >= 64:
		nl := shiftRightJam64(h, n-64)
		if l != 0 {
			nl |= 1
		}
		return 0, nl
	}
	nh := h >> n
	nl := h<<(64-n) | l>>n
	if l<<(64-n) != 0 {
		nl |= 1
	}
	return nh, nl
}

func clz128(h, l uint64) uint {
	if h != 0 {
		return uint(bits.LeadingZeros64(h))
	}
	return 64 + uint(bits.LeadingZeros64(l))
}

// isqrt128 computes the integer square root of the 128-bit radicand by the
// restoring digit-by-digit method, returning the 64-bit root and whether a
// nonzero remainder was left (the sticky bit for rounding).
func isqrt128(hi, lo uint64) (root uint64, rem bool) {
	var rh, rl uint64 // running remainder (fits in 128 bits)
	var q uint64
	for i := 0; i < 64; i++ {
		// Bring down the next two radicand bits.
		rh = rh<<2 | rl>>62
		rl = rl<<2 | hi>>62
		hi = hi<<2 | lo>>62
		lo <<= 2
		// Trial subtrahend t = 4q + 1.
		th, tl := q>>62, q<<2|1
		if cmp128(rh, rl, th, tl) >= 0 {
			rh, rl = sub128(rh, rl, th, tl)
			q = q<<1 | 1
		} else {
			q <<= 1
		}
	}
	return q, rh|rl != 0
}

// propagateNaN returns the canonical NaN and the invalid flag if any of the
// operands is signaling.
func propagateNaN(f *fmt, ops ...unpacked) (uint64, Flags) {
	for _, o := range ops {
		if o.cls == clsSNaN {
			return f.qnan, NV
		}
	}
	return f.qnan, 0
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
