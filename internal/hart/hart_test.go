package hart

import (
	"testing"
	"testing/quick"

	"rvnegtest/internal/isa"
	"rvnegtest/internal/softfloat"
)

func TestResetState(t *testing.T) {
	h := New(isa.RV32GC)
	if h.Mstatus&MstatusFS != FSInitial {
		t.Errorf("FP config must reset FS to Initial: %#x", h.Mstatus)
	}
	h2 := New(isa.RV32I)
	if h2.Mstatus != 0 {
		t.Errorf("RV32I mstatus = %#x", h2.Mstatus)
	}
	h.X[5] = 7
	h.PC = 100
	h.Reset()
	if h.X[5] != 0 || h.PC != 0 {
		t.Error("Reset must clear registers")
	}
}

func TestX0Invariant(t *testing.T) {
	h := New(isa.RV32I)
	f := func(v uint32) bool {
		h.WriteX(0, v)
		return h.ReadX(0) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrapStateMachine(t *testing.T) {
	h := New(isa.RV32I)
	h.Mtvec = 0x800
	h.Mstatus |= MstatusMIE
	h.PC = 0x124
	h.Trap(CauseIllegalInstruction, 0xdead)
	if h.PC != 0x800 || h.Mepc != 0x124 || h.Mcause != 2 || h.Mtval != 0xdead {
		t.Errorf("trap state: pc=%#x mepc=%#x mcause=%d mtval=%#x", h.PC, h.Mepc, h.Mcause, h.Mtval)
	}
	if h.Mstatus&MstatusMIE != 0 || h.Mstatus&MstatusMPIE == 0 {
		t.Errorf("mstatus after trap: %#x", h.Mstatus)
	}
	h.MRet()
	if h.PC != 0x124 || h.Mstatus&MstatusMIE == 0 {
		t.Errorf("mret state: pc=%#x mstatus=%#x", h.PC, h.Mstatus)
	}
	// Vectored mtvec low bits are masked for the base.
	h.Mtvec = 0x801 // mode=1 (vectored)
	h.Trap(CauseBreakpoint, 0)
	if h.PC != 0x800 {
		t.Errorf("vectored sync trap pc = %#x", h.PC)
	}
}

func TestCSRReadWrite(t *testing.T) {
	h := New(isa.RV32GC)
	// mscratch holds arbitrary values.
	if err := h.WriteCSR(CSRMscratch, 0xffffffff); err != nil {
		t.Fatal(err)
	}
	if v, _ := h.ReadCSR(CSRMscratch); v != 0xffffffff {
		t.Errorf("mscratch = %#x", v)
	}
	// mepc clears bit 0.
	_ = h.WriteCSR(CSRMepc, 0x1235)
	if v, _ := h.ReadCSR(CSRMepc); v != 0x1234 {
		t.Errorf("mepc = %#x", v)
	}
	// misa reflects the configuration and ignores writes.
	v, _ := h.ReadCSR(CSRMisa)
	if v != isa.RV32GC.MISA() {
		t.Errorf("misa = %#x", v)
	}
	_ = h.WriteCSR(CSRMisa, 0)
	if v, _ := h.ReadCSR(CSRMisa); v != isa.RV32GC.MISA() {
		t.Error("misa must be WARL-fixed")
	}
	// Read-only CSRs reject writes.
	if err := h.WriteCSR(CSRMhartid, 1); err == nil {
		t.Error("mhartid write must fail")
	}
	if v, err := h.ReadCSR(CSRMhartid); err != nil || v != 0 {
		t.Errorf("mhartid = %d, %v", v, err)
	}
	// Nonexistent CSR.
	if _, err := h.ReadCSR(0x5c0); err == nil {
		t.Error("nonexistent CSR read must fail")
	}
	if err := h.WriteCSR(0x5c0, 0); err == nil {
		t.Error("nonexistent CSR write must fail")
	}
	// fcsr composes frm and fflags.
	_ = h.WriteCSR(CSRFcsr, 0x7f)
	if h.Frm != 3 || h.Fflags != 0x1f {
		t.Errorf("fcsr decompose: frm=%d fflags=%#x", h.Frm, h.Fflags)
	}
	if v, _ := h.ReadCSR(CSRFcsr); v != 0x7f {
		t.Errorf("fcsr = %#x", v)
	}
	if v, _ := h.ReadCSR(CSRFrm); v != 3 {
		t.Errorf("frm = %d", v)
	}
	// Counter halves.
	h.Mcycle = 0x1122334455667788
	if v, _ := h.ReadCSR(CSRMcycle); v != 0x55667788 {
		t.Errorf("mcycle = %#x", v)
	}
	if v, _ := h.ReadCSR(CSRMcycleH); v != 0x11223344 {
		t.Errorf("mcycleh = %#x", v)
	}
	_ = h.WriteCSR(CSRMinstretH, 0xaa)
	_ = h.WriteCSR(CSRMinstret, 0xbb)
	if h.Minstret != 0xaa000000bb {
		t.Errorf("minstret = %#x", h.Minstret)
	}
}

func TestFPCSRsGatedByConfig(t *testing.T) {
	h := New(isa.RV32I)
	if _, err := h.ReadCSR(CSRFcsr); err == nil {
		t.Error("fcsr without F must fail")
	}
	g := New(isa.RV32GC)
	g.Mstatus &^= MstatusFS
	if _, err := g.ReadCSR(CSRFflags); err == nil {
		t.Error("fflags with FS=Off must fail")
	}
}

func TestNaNBoxingThroughRegisters(t *testing.T) {
	h := New(isa.RV32GC)
	h.WriteF32(3, 0x3f800000)
	if h.F[3] != 0xffffffff3f800000 {
		t.Errorf("boxed = %#x", h.F[3])
	}
	if h.ReadF32(3) != 0x3f800000 {
		t.Errorf("unboxed read = %#x", h.ReadF32(3))
	}
	h.WriteF64(3, 0x3ff0000000000000)
	if h.ReadF32(3) != softfloat.QNaN32 {
		t.Error("reading a double as single must canonicalize")
	}
	// Without D, no boxing happens.
	f := New(isa.Config{Ext: isa.ExtI | isa.ExtF | isa.ExtZicsr | isa.ExtPriv})
	f.WriteF32(1, 0x12345678)
	if f.F[1] != 0x12345678 || f.ReadF32(1) != 0x12345678 {
		t.Errorf("F-only register image: %#x", f.F[1])
	}
}

func TestFSDirtyTracking(t *testing.T) {
	h := New(isa.RV32GC)
	if h.Mstatus&MstatusFS == FSDirty {
		t.Fatal("FS must not start dirty")
	}
	h.WriteF32(0, 1)
	if h.Mstatus&MstatusFS != FSDirty {
		t.Error("FP write must dirty FS")
	}
	h2 := New(isa.RV32GC)
	h2.AccrueFlags(softfloat.NX)
	if h2.Fflags != uint8(softfloat.NX) || h2.Mstatus&MstatusFS != FSDirty {
		t.Error("flag accrual must dirty FS")
	}
	h3 := New(isa.RV32GC)
	h3.AccrueFlags(0)
	if h3.Mstatus&MstatusFS == FSDirty {
		t.Error("empty flag accrual must not dirty FS")
	}
}

func TestDynRM(t *testing.T) {
	h := New(isa.RV32GC)
	if rm, ok := h.DynRM(2); !ok || rm != softfloat.RDN {
		t.Errorf("static rm: %v %v", rm, ok)
	}
	if _, ok := h.DynRM(5); ok {
		t.Error("rm=5 must be invalid")
	}
	h.Frm = 4
	if rm, ok := h.DynRM(7); !ok || rm != softfloat.RMM {
		t.Errorf("dynamic rm: %v %v", rm, ok)
	}
	h.Frm = 7
	if _, ok := h.DynRM(7); ok {
		t.Error("dynamic rm with frm=7 must be invalid")
	}
}

func TestClone(t *testing.T) {
	h := New(isa.RV32GC)
	h.X[5] = 1
	c := h.Clone()
	c.X[5] = 2
	if h.X[5] != 1 {
		t.Error("clone shares state")
	}
}

// TestTrapMasksOddPC pins the satellite-2 fix: the hardware trap path
// must clear mepc bit 0 exactly like the CSR-write path, so an odd
// faulting PC reads back even and MRet returns to the masked address.
func TestTrapMasksOddPC(t *testing.T) {
	h := New(isa.RV32IMC)
	h.Mtvec = 0x100
	h.PC = 0x2003 // odd PC (unreachable via jumps, but the masks must agree)
	h.Trap(CauseIllegalInstruction, 0)
	if h.Mepc != 0x2002 {
		t.Errorf("Trap mepc = %#x, want bit 0 cleared (0x2002)", h.Mepc)
	}
	if err := h.WriteCSR(CSRMepc, 0x2003); err != nil {
		t.Fatal(err)
	}
	if h.Mepc != 0x2002 {
		t.Errorf("WriteCSR mepc = %#x, want 0x2002", h.Mepc)
	}
	h.MRet()
	if h.PC != 0x2002 {
		t.Errorf("MRet PC = %#x, want 0x2002", h.PC)
	}
}

// TestMtvecBaseMasking: mtvec bit 1 is reserved (reads zero), bit 0
// selects vectored mode — and a faithful hart must dispatch synchronous
// exceptions to the base regardless of the mode bit.
func TestMtvecBaseMasking(t *testing.T) {
	h := New(isa.RV32I)
	if err := h.WriteCSR(CSRMtvec, 0x107); err != nil {
		t.Fatal(err)
	}
	if h.Mtvec != 0x105 {
		t.Errorf("mtvec = %#x, want bit 1 masked (0x105)", h.Mtvec)
	}
	h.PC = 0x40
	h.Trap(CauseIllegalInstruction, 0)
	if h.PC != 0x104 {
		t.Errorf("sync trap with vectored mtvec: PC = %#x, want base 0x104", h.PC)
	}
}

// TestMPIERoundTrip: MIE is saved into MPIE on Trap and restored on
// MRet, with MPIE set afterwards, for both initial MIE states.
func TestMPIERoundTrip(t *testing.T) {
	for _, mie := range []bool{false, true} {
		h := New(isa.RV32I)
		h.Mtvec = 0x100
		if mie {
			h.Mstatus |= MstatusMIE
		}
		h.PC = 0x20
		h.Trap(CauseBreakpoint, 0x20)
		if h.Mstatus&MstatusMIE != 0 {
			t.Errorf("mie=%v: MIE not cleared on trap", mie)
		}
		if got := h.Mstatus&MstatusMPIE != 0; got != mie {
			t.Errorf("mie=%v: MPIE = %v after trap", mie, got)
		}
		h.MRet()
		if got := h.Mstatus&MstatusMIE != 0; got != mie {
			t.Errorf("mie=%v: MIE = %v after mret, want restored", mie, got)
		}
		if h.Mstatus&MstatusMPIE == 0 {
			t.Errorf("mie=%v: MPIE must be set after mret", mie)
		}
		if h.PC != 0x20 {
			t.Errorf("mie=%v: mret PC = %#x, want 0x20", mie, h.PC)
		}
	}
}

func TestQuirkMtvalZero(t *testing.T) {
	h := New(isa.RV32I)
	h.Quirks.MtvalZero = true
	h.Mtvec = 0x100
	h.Trap(CauseIllegalInstruction, 0xdeadbeef)
	if h.Mtval != 0 {
		t.Errorf("mtval = %#x, want quirk-zeroed", h.Mtval)
	}
}

func TestQuirkVectoredSyncTrap(t *testing.T) {
	h := New(isa.RV32I)
	h.Quirks.VectoredSyncTrap = true
	if err := h.WriteCSR(CSRMtvec, 0x101); err != nil { // vectored mode
		t.Fatal(err)
	}
	h.Trap(CauseIllegalInstruction, 0)
	if h.PC != 0x100+4*CauseIllegalInstruction {
		t.Errorf("vectored quirk: PC = %#x, want base+4*cause", h.PC)
	}
	// Direct mode must stay unaffected even with the quirk present.
	if err := h.WriteCSR(CSRMtvec, 0x100); err != nil {
		t.Fatal(err)
	}
	h.Trap(CauseIllegalInstruction, 0)
	if h.PC != 0x100 {
		t.Errorf("direct mode with quirk: PC = %#x, want base", h.PC)
	}
}

func TestQuirkMRETIgnoresMPIE(t *testing.T) {
	h := New(isa.RV32I)
	h.Quirks.MRETIgnoresMPIE = true
	h.Mtvec = 0x100
	h.Mstatus |= MstatusMIE
	h.Trap(CauseECallM, 0)
	before := h.Mstatus
	h.MRet()
	if h.Mstatus != before {
		t.Errorf("quirky mret changed mstatus %#x -> %#x", before, h.Mstatus)
	}
	if h.Mstatus&MstatusMIE != 0 {
		t.Error("quirky mret must not restore MIE")
	}
}

func TestQuirkCSRWriteNoMask(t *testing.T) {
	h := New(isa.RV32I)
	h.Quirks.CSRWriteNoMask = true
	if err := h.WriteCSR(CSRMstatus, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if h.Mstatus != 0xdeadbeef {
		t.Errorf("mstatus = %#x, want unmasked 0xdeadbeef", h.Mstatus)
	}
}

func TestResetPreservesQuirks(t *testing.T) {
	h := New(isa.RV32I)
	h.Quirks = Quirks{MtvalZero: true, VectoredSyncTrap: true}
	h.Reset()
	if !h.Quirks.MtvalZero || !h.Quirks.VectoredSyncTrap {
		t.Error("Reset must preserve platform quirks")
	}
}
