// Package hart models the architectural state of a single RV32 hart:
// integer and floating-point register files, the program counter, the
// machine-mode CSR file, the trap mechanism and the LR/SC reservation.
package hart

import (
	"rvnegtest/internal/isa"
	"rvnegtest/internal/softfloat"
)

// Exception cause codes (mcause values for synchronous exceptions).
const (
	CauseMisalignedFetch    = 0
	CauseFetchAccessFault   = 1
	CauseIllegalInstruction = 2
	CauseBreakpoint         = 3
	CauseMisalignedLoad     = 4
	CauseLoadAccessFault    = 5
	CauseMisalignedStore    = 6
	CauseStoreAccessFault   = 7
	CauseECallU             = 8
	CauseECallS             = 9
	CauseECallM             = 11
)

// CSR addresses used by this model.
const (
	CSRFflags    = 0x001
	CSRFrm       = 0x002
	CSRFcsr      = 0x003
	CSRMstatus   = 0x300
	CSRMisa      = 0x301
	CSRMie       = 0x304
	CSRMtvec     = 0x305
	CSRMscratch  = 0x340
	CSRMepc      = 0x341
	CSRMcause    = 0x342
	CSRMtval     = 0x343
	CSRMip       = 0x344
	CSRMcycle    = 0xb00
	CSRMinstret  = 0xb02
	CSRMcycleH   = 0xb80
	CSRMinstretH = 0xb82
	CSRMvendorid = 0xf11
	CSRMarchid   = 0xf12
	CSRMimpid    = 0xf13
	CSRMhartid   = 0xf14
)

// mstatus fields.
const (
	MstatusMIE  = 1 << 3
	MstatusMPIE = 1 << 7
	MstatusFS   = 3 << 13 // floating point unit status
	MstatusMPP  = 3 << 11
)

// FS states within mstatus.FS.
const (
	FSOff     = 0
	FSInitial = 1 << 13
	FSClean   = 2 << 13
	FSDirty   = 3 << 13
)

// Quirks are seeded privileged-architecture defects, modelling the
// trap/CSR bug classes real simulators exhibit (the envelope the
// user-level suite deliberately filters out and the trap suite targets).
// All of them are invisible to the user-level template: it never reads
// mtval, never executes MRET, writes an aligned direct-mode mtvec, and
// only touches in-mask mstatus bits.
type Quirks struct {
	// MtvalZero: traps always write mtval = 0 instead of the faulting
	// value (legal for some exceptions, a defect for others — and a
	// divergence either way).
	MtvalZero bool
	// VectoredSyncTrap: when mtvec selects vectored mode (bit 0 set),
	// synchronous exceptions erroneously dispatch to base + 4×cause.
	// The specification vectors interrupts only; synchronous exceptions
	// always use the base.
	VectoredSyncTrap bool
	// MRETIgnoresMPIE: MRET fails to restore MIE from MPIE (and to set
	// MPIE), leaving the interrupt-enable stack as the trap left it.
	MRETIgnoresMPIE bool
	// CSRWriteNoMask: mstatus writes skip WARL masking, so reserved
	// bits stick and read back.
	CSRWriteNoMask bool
}

// Hart is the architectural state.
type Hart struct {
	X  [isa.NumRegs]uint32
	F  [isa.NumRegs]uint64 // 64-bit with NaN boxing when D is present
	PC uint32

	Cfg isa.Config

	// Machine-mode CSRs.
	Mstatus  uint32
	Mtvec    uint32
	Mscratch uint32
	Mepc     uint32
	Mcause   uint32
	Mtval    uint32
	Mie      uint32
	Mip      uint32
	Mcycle   uint64
	Minstret uint64
	Fflags   uint8
	Frm      uint8

	// LR/SC reservation.
	ResValid bool
	ResAddr  uint32

	// HardwireCounters makes mcycle/minstret read as zero — a legal
	// platform choice the privileged specification allows (paper section
	// VI: "the performance counter ... can be hardwired to zero"), used
	// by the CSR capability-selection machinery.
	HardwireCounters bool

	// Quirks are the seeded privileged-architecture defects of the
	// simulator variant this hart models; zero for a faithful hart.
	Quirks Quirks
}

// New returns a hart reset for the given configuration.
func New(cfg isa.Config) *Hart {
	h := &Hart{Cfg: cfg}
	h.Reset()
	return h
}

// Reset clears the architectural state (PC is set by the loader);
// platform wiring (configuration, hardwired counters) survives.
func (h *Hart) Reset() {
	*h = Hart{Cfg: h.Cfg, HardwireCounters: h.HardwireCounters, Quirks: h.Quirks}
	if h.Cfg.HasFP() {
		h.Mstatus = FSInitial
	}
}

// ReadX reads an integer register (x0 reads as zero).
func (h *Hart) ReadX(r isa.Reg) uint32 {
	if r == 0 {
		return 0
	}
	return h.X[r]
}

// WriteX writes an integer register (writes to x0 are discarded).
func (h *Hart) WriteX(r isa.Reg, v uint32) {
	if r != 0 {
		h.X[r] = v
	}
}

// ReadF32 reads a floating-point register as binary32, applying the
// NaN-boxing rule when the D extension is present.
func (h *Hart) ReadF32(r isa.Reg) uint32 {
	if h.Cfg.Has(isa.ExtD) {
		return softfloat.Unbox32(h.F[r])
	}
	return uint32(h.F[r])
}

// WriteF32 writes a binary32 value to a floating-point register, boxing it
// when the D extension is present, and marks the FPU dirty.
func (h *Hart) WriteF32(r isa.Reg, v uint32) {
	if h.Cfg.Has(isa.ExtD) {
		h.F[r] = softfloat.Box32(v)
	} else {
		h.F[r] = uint64(v)
	}
	h.Mstatus |= FSDirty
}

// ReadF64 reads a floating-point register as binary64.
func (h *Hart) ReadF64(r isa.Reg) uint64 { return h.F[r] }

// WriteF64 writes a binary64 value and marks the FPU dirty.
func (h *Hart) WriteF64(r isa.Reg, v uint64) {
	h.F[r] = v
	h.Mstatus |= FSDirty
}

// FPEnabled reports whether floating-point instructions may execute
// (extension present and mstatus.FS not Off).
func (h *Hart) FPEnabled() bool {
	return h.Cfg.HasFP() && h.Mstatus&MstatusFS != FSOff
}

// AccrueFlags ORs floating-point exception flags into fflags.
func (h *Hart) AccrueFlags(fl softfloat.Flags) {
	if fl != 0 {
		h.Fflags |= uint8(fl)
		h.Mstatus |= FSDirty
	}
}

// Trap enters the machine-mode trap handler for a synchronous exception.
func (h *Hart) Trap(cause uint32, tval uint32) {
	// mepc bit 0 is hardwired to zero; mask here exactly as the CSR-write
	// path does, so an odd faulting PC reads back even and MRet returns
	// to the same address a software mepc write would produce.
	h.Mepc = h.PC &^ 1
	h.Mcause = cause
	if h.Quirks.MtvalZero {
		h.Mtval = 0
	} else {
		h.Mtval = tval
	}
	// Save and clear MIE, record the previous privilege (always M here).
	st := h.Mstatus
	if st&MstatusMIE != 0 {
		st |= MstatusMPIE
	} else {
		st &^= MstatusMPIE
	}
	st &^= MstatusMIE
	st |= MstatusMPP
	h.Mstatus = st
	// Direct mode: the low two mtvec bits select vectoring; synchronous
	// exceptions always use the base. The VectoredSyncTrap quirk applies
	// the interrupt vectoring rule to exceptions too.
	base := h.Mtvec &^ 3
	if h.Quirks.VectoredSyncTrap && h.Mtvec&1 != 0 {
		base += 4 * cause
	}
	h.PC = base
}

// MRet returns from a machine-mode trap.
func (h *Hart) MRet() {
	if !h.Quirks.MRETIgnoresMPIE {
		st := h.Mstatus
		if st&MstatusMPIE != 0 {
			st |= MstatusMIE
		} else {
			st &^= MstatusMIE
		}
		st |= MstatusMPIE
		h.Mstatus = st
	}
	// mepc is masked on every write path, but mask the return target too
	// so the three agree even if a future CSR grows an unmasked path.
	h.PC = h.Mepc &^ 1
}

// CSRError distinguishes illegal CSR accesses.
type CSRError struct{ Addr uint16 }

func (e *CSRError) Error() string { return "hart: illegal CSR access " + isa.CSRName(e.Addr) }

// ReadCSR returns the CSR value, or an error if the CSR does not exist (or
// the FPU CSRs are accessed with the FPU off/absent).
func (h *Hart) ReadCSR(addr uint16) (uint32, error) {
	switch addr {
	case CSRFflags:
		if !h.FPEnabled() {
			return 0, &CSRError{addr}
		}
		return uint32(h.Fflags), nil
	case CSRFrm:
		if !h.FPEnabled() {
			return 0, &CSRError{addr}
		}
		return uint32(h.Frm), nil
	case CSRFcsr:
		if !h.FPEnabled() {
			return 0, &CSRError{addr}
		}
		return uint32(h.Frm)<<5 | uint32(h.Fflags), nil
	case CSRMstatus:
		return h.Mstatus, nil
	case CSRMisa:
		return h.Cfg.MISA(), nil
	case CSRMie:
		return h.Mie, nil
	case CSRMtvec:
		return h.Mtvec, nil
	case CSRMscratch:
		return h.Mscratch, nil
	case CSRMepc:
		return h.Mepc, nil
	case CSRMcause:
		return h.Mcause, nil
	case CSRMtval:
		return h.Mtval, nil
	case CSRMip:
		return h.Mip, nil
	case CSRMcycle:
		if h.HardwireCounters {
			return 0, nil
		}
		return uint32(h.Mcycle), nil
	case CSRMinstret:
		if h.HardwireCounters {
			return 0, nil
		}
		return uint32(h.Minstret), nil
	case CSRMcycleH:
		if h.HardwireCounters {
			return 0, nil
		}
		return uint32(h.Mcycle >> 32), nil
	case CSRMinstretH:
		if h.HardwireCounters {
			return 0, nil
		}
		return uint32(h.Minstret >> 32), nil
	case CSRMvendorid, CSRMarchid, CSRMimpid, CSRMhartid:
		return 0, nil
	}
	return 0, &CSRError{addr}
}

// WriteCSR writes a CSR, applying WARL masking. Writes to read-only CSRs
// (address bits [11:10] == 11) are illegal.
func (h *Hart) WriteCSR(addr uint16, v uint32) error {
	if addr>>10 == 3 {
		return &CSRError{addr}
	}
	switch addr {
	case CSRFflags:
		if !h.FPEnabled() {
			return &CSRError{addr}
		}
		h.Fflags = uint8(v & 0x1f)
		h.Mstatus |= FSDirty
	case CSRFrm:
		if !h.FPEnabled() {
			return &CSRError{addr}
		}
		h.Frm = uint8(v & 0x7)
		h.Mstatus |= FSDirty
	case CSRFcsr:
		if !h.FPEnabled() {
			return &CSRError{addr}
		}
		h.Fflags = uint8(v & 0x1f)
		h.Frm = uint8(v >> 5 & 0x7)
		h.Mstatus |= FSDirty
	case CSRMstatus:
		if h.Quirks.CSRWriteNoMask {
			h.Mstatus = v
			break
		}
		mask := uint32(MstatusMIE | MstatusMPIE | MstatusMPP)
		if h.Cfg.HasFP() {
			mask |= MstatusFS
		}
		h.Mstatus = h.Mstatus&^mask | v&mask
	case CSRMisa:
		// WARL: writes ignored (fixed configuration).
	case CSRMie:
		h.Mie = v & 0x888 // MSIE/MTIE/MEIE
	case CSRMtvec:
		h.Mtvec = v &^ 2 // direct or vectored; bit 1 reserved
	case CSRMscratch:
		h.Mscratch = v
	case CSRMepc:
		h.Mepc = v &^ 1
	case CSRMcause:
		h.Mcause = v
	case CSRMtval:
		h.Mtval = v
	case CSRMip:
		// Machine-level interrupt pending bits are read-only here.
	case CSRMcycle:
		h.Mcycle = h.Mcycle&^uint64(0xffffffff) | uint64(v)
	case CSRMinstret:
		h.Minstret = h.Minstret&^uint64(0xffffffff) | uint64(v)
	case CSRMcycleH:
		h.Mcycle = h.Mcycle&0xffffffff | uint64(v)<<32
	case CSRMinstretH:
		h.Minstret = h.Minstret&0xffffffff | uint64(v)<<32
	default:
		return &CSRError{addr}
	}
	return nil
}

// DynRM resolves an instruction rounding-mode field to an actual rounding
// mode, reporting false for reserved encodings (illegal instruction).
func (h *Hart) DynRM(field uint8) (softfloat.RM, bool) {
	rm := softfloat.RM(field)
	if rm == softfloat.DYN {
		rm = softfloat.RM(h.Frm)
	}
	return rm, rm.Valid()
}

// Clone returns an independent copy of the architectural state.
func (h *Hart) Clone() *Hart {
	c := *h
	return &c
}
