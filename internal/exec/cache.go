package exec

import (
	"rvnegtest/internal/isa"
)

// Entry states: an invalid slot routes the fetch through the slow path
// (and a refill), a legal slot dispatches through its handler, an
// illegal slot traps without re-decoding.
const (
	entryInvalid uint8 = iota
	entryLegal
	entryIllegal
)

// cacheEntry is one halfword slot of a DecodeCache: the decoded
// instruction plus everything the fast path needs precomputed — the
// resolved handler and the configuration-legality verdict. Only the
// mstatus.FS check stays at dispatch time (fp), because software can
// toggle it mid-run.
type cacheEntry struct {
	inst  isa.Inst
	fn    handlerFn
	state uint8
	fp    bool // legal FP op: re-check FPEnabled at dispatch time
	dirty bool // deviates from the pristine predecode; undone by Reset
}

// CacheStats are the cumulative decode-cache counters of one executor
// lineage (fed into the predecode_* telemetry series).
type CacheStats struct {
	// Hits counts fetches served from the cache (legal and illegal
	// entries alike).
	Hits uint64
	// Misses counts fetches that took the slow path: invalid slots,
	// odd PCs and fetches outside the cached range.
	Misses uint64
	// Invalidations counts executed stores (and injection writes) that
	// overlapped the cached range and knocked out at least one slot.
	Invalidations uint64
}

// DecodeCache maps a predecoded code range to ready-to-dispatch entries
// for one ISA configuration. The Predecoded itself is immutable and
// shared across clones; the entries array is per-cache, so invalidation
// and refill stay private to one executor lineage. The cache tracks
// which slots deviate from the pristine predecode, making Reset cost
// proportional to the deviation (mirroring mem.Restore's dirty pages).
type DecodeCache struct {
	pd      *isa.Predecoded
	cfg     isa.Config
	base    uint32
	span    uint32
	entries []cacheEntry
	touched []int32
	stats   CacheStats
}

// NewDecodeCache derives dispatch entries from a predecode for one ISA
// configuration. The configuration must match the hart the cache is
// attached to: legality verdicts are baked into the entries.
func NewDecodeCache(pd *isa.Predecoded, cfg isa.Config) *DecodeCache {
	c := &DecodeCache{
		pd:      pd,
		cfg:     cfg,
		base:    pd.Base,
		span:    uint32(2 * len(pd.Insts)),
		entries: make([]cacheEntry, len(pd.Insts)),
	}
	for i := range pd.Insts {
		c.entries[i] = makeEntry(&pd.Insts[i], cfg)
	}
	return c
}

// makeEntry computes the dispatch entry for one decoded record under a
// configuration, reproducing the legality ladder of the slow path.
func makeEntry(in *isa.Inst, cfg isa.Config) cacheEntry {
	if in.Size == 0 {
		return cacheEntry{} // not predecodable: always slow-path
	}
	if in.Size == 2 && !cfg.Has(isa.ExtC) {
		// Without the C extension the RVC decoder is never entered; the
		// halfword is simply an illegal encoding, whatever it would
		// have expanded to.
		return cacheEntry{
			inst:  isa.Inst{Op: isa.OpIllegal, Raw: in.Raw, Size: 2},
			state: entryIllegal,
		}
	}
	info := in.Info()
	if info == nil || !cfg.Has(info.Ext) {
		return cacheEntry{inst: *in, state: entryIllegal}
	}
	return cacheEntry{
		inst:  *in,
		fn:    handlers[in.Op],
		state: entryLegal,
		fp:    info.Flags.Is(isa.FlagFP),
	}
}

// Clone returns an independent cache sharing only the immutable
// predecode. The clone copies the current entries (they must match the
// memory image it is paired with, which is cloned the same way) and
// starts with fresh counters. Safe on a nil receiver.
func (c *DecodeCache) Clone() *DecodeCache {
	if c == nil {
		return nil
	}
	n := *c
	n.entries = append([]cacheEntry(nil), c.entries...)
	n.touched = append([]int32(nil), c.touched...)
	n.stats = CacheStats{}
	return &n
}

// Reset restores every deviated slot to the pristine predecode, in cost
// proportional to the number of deviated slots. Call it whenever the
// backing memory is restored to its snapshot.
func (c *DecodeCache) Reset() {
	for _, i := range c.touched {
		c.entries[i] = makeEntry(&c.pd.Insts[i], c.cfg)
	}
	c.touched = c.touched[:0]
}

// InvalidateRange knocks out every slot a write of size bytes at addr
// may have changed. The slot one halfword before the written range is
// included: a 32-bit encoding starting there spans into it. The common
// case — a write nowhere near the code range — is two comparisons.
func (c *DecodeCache) InvalidateRange(addr, size uint32) {
	lo := int64(addr) - 2
	hi := int64(addr) + int64(size)
	base, limit := int64(c.base), int64(c.base)+int64(c.span)
	if hi <= base || lo >= limit {
		return
	}
	if lo < base {
		lo = base
	}
	if hi > limit {
		hi = limit
	}
	for i := (lo - base) >> 1; i < (hi-base+1)>>1; i++ {
		e := &c.entries[i]
		if !e.dirty {
			c.touched = append(c.touched, int32(i))
		}
		*e = cacheEntry{dirty: true}
	}
	c.stats.Invalidations++
}

// fill caches the decode outcome the slow path just produced for an
// in-range fetch. An encoding that spans past the cached range stays
// uncached: a write beyond the range end could never invalidate it.
func (c *DecodeCache) fill(addr uint32, in *isa.Inst) {
	off := addr - c.base
	if off >= c.span || off&1 != 0 {
		return
	}
	if int64(addr)+int64(in.Size) > int64(c.base)+int64(c.span) {
		return
	}
	i := off >> 1
	e := makeEntry(in, c.cfg)
	e.dirty = true
	if !c.entries[i].dirty {
		c.touched = append(c.touched, int32(i))
	}
	c.entries[i] = e
}

// Stats returns the cumulative counters. Safe on a nil receiver.
func (c *DecodeCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return c.stats
}
