package exec

import (
	"rvnegtest/internal/isa"
)

// Entry states: an invalid slot routes the fetch through the slow path
// (and a refill), a legal slot dispatches through its handler, an
// illegal slot traps without re-decoding.
const (
	entryInvalid uint8 = iota
	entryLegal
	entryIllegal
)

// cacheEntry is one halfword slot of a DecodeCache: the decoded
// instruction plus everything the fast path needs precomputed — the
// resolved handler and the configuration-legality verdict. Only the
// mstatus.FS check stays at dispatch time (fp), because software can
// toggle it mid-run.
type cacheEntry struct {
	inst  isa.Inst
	fn    handlerFn
	state uint8
	fp    bool // legal FP op: re-check FPEnabled at dispatch time
	dirty bool // deviates from the pristine predecode; undone by Reset
	// blk, when non-nil, marks this slot as the head of a fused
	// straight-line block (see fuse.go): a fetch here with budget to
	// spare runs the whole block. Invalidation clears it; Reset restores
	// it from the shared fuse table.
	blk *fusedBlock
}

// CacheStats are the cumulative decode-cache counters of one executor
// lineage (fed into the predecode_* telemetry series).
type CacheStats struct {
	// Hits counts fetches served from the cache (legal and illegal
	// entries alike).
	Hits uint64
	// Misses counts fetches that took the slow path: invalid slots,
	// odd PCs and fetches outside the cached range.
	Misses uint64
	// Invalidations counts executed stores (and injection writes) that
	// overlapped the cached range and knocked out at least one slot.
	Invalidations uint64
	// Fused counts the subset of Hits served through a fused block
	// handler instead of per-slot dispatch.
	Fused uint64
}

// Add folds another counter set into s (the deterministic batch-lane and
// campaign-level fold; plain field sums, so fold order never matters).
func (s *CacheStats) Add(o CacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Invalidations += o.Invalidations
	s.Fused += o.Fused
}

// DecodeCache maps a predecoded code range to ready-to-dispatch entries
// for one ISA configuration. The Predecoded itself is immutable and
// shared across clones; the entries array is per-cache, so invalidation
// and refill stay private to one executor lineage. The cache tracks
// which slots deviate from the pristine predecode, making Reset cost
// proportional to the deviation (mirroring mem.Restore's dirty pages).
type DecodeCache struct {
	pd      *isa.Predecoded
	cfg     isa.Config
	base    uint32
	span    uint32
	entries []cacheEntry
	touched []int32
	stats   CacheStats
	// fuse, when non-nil, is the immutable fusion index shared across
	// clones (see Fuse); gen counts effective invalidations so a fused
	// run in flight can detect that any cached slot — possibly its own
	// tail — was knocked out.
	fuse *fuseTable
	gen  uint64
}

// NewDecodeCache derives dispatch entries from a predecode for one ISA
// configuration. The configuration must match the hart the cache is
// attached to: legality verdicts are baked into the entries.
func NewDecodeCache(pd *isa.Predecoded, cfg isa.Config) *DecodeCache {
	c := &DecodeCache{
		pd:      pd,
		cfg:     cfg,
		base:    pd.Base,
		span:    uint32(2 * len(pd.Insts)),
		entries: make([]cacheEntry, len(pd.Insts)),
	}
	for i := range pd.Insts {
		c.entries[i] = makeEntry(&pd.Insts[i], cfg)
	}
	return c
}

// makeEntry computes the dispatch entry for one decoded record under a
// configuration, reproducing the legality ladder of the slow path.
func makeEntry(in *isa.Inst, cfg isa.Config) cacheEntry {
	if in.Size == 0 {
		return cacheEntry{} // not predecodable: always slow-path
	}
	if in.Size == 2 && !cfg.Has(isa.ExtC) {
		// Without the C extension the RVC decoder is never entered; the
		// halfword is simply an illegal encoding, whatever it would
		// have expanded to.
		return cacheEntry{
			inst:  isa.Inst{Op: isa.OpIllegal, Raw: in.Raw, Size: 2},
			state: entryIllegal,
		}
	}
	info := in.Info()
	if info == nil || !cfg.Has(info.Ext) {
		return cacheEntry{inst: *in, state: entryIllegal}
	}
	return cacheEntry{
		inst:  *in,
		fn:    handlers[in.Op],
		state: entryLegal,
		fp:    info.Flags.Is(isa.FlagFP),
	}
}

// Clone returns an independent cache sharing only the immutable
// predecode and fuse table. The clone copies the current entries (they
// must match the memory image it is paired with, which is cloned the
// same way) and starts with fresh counters: per-clone hit/miss/
// invalidation counts are independent, so a campaign-level fold over
// clones is a plain sum in clone order. Safe on a nil receiver.
func (c *DecodeCache) Clone() *DecodeCache {
	if c == nil {
		return nil
	}
	n := *c
	n.entries = append([]cacheEntry(nil), c.entries...)
	n.touched = append([]int32(nil), c.touched...)
	n.stats = CacheStats{}
	return &n
}

// Reset restores every deviated slot to the pristine predecode, in cost
// proportional to the number of deviated slots. Call it whenever the
// backing memory is restored to its snapshot.
func (c *DecodeCache) Reset() {
	for _, i := range c.touched {
		c.entries[i] = makeEntry(&c.pd.Insts[i], c.cfg)
		if c.fuse != nil {
			// A restored head slot regains its fused handler: the block's
			// body is pristine again by the same reasoning as the entry.
			c.entries[i].blk = c.fuse.heads[i]
		}
	}
	c.touched = c.touched[:0]
}

// InvalidateRange knocks out every slot a write of size bytes at addr
// may have changed. The slot one halfword before the written range is
// included: a 32-bit encoding starting there spans into it. The common
// case — a write nowhere near the code range — is two comparisons.
//
// The overlap test is deliberately asymmetric at the two image edges.
// At the low edge the back-widened lo may underflow past base (a write
// at offset 0 has no predecessor slot), so the guard compares hi, and
// the loop start is clamped to base. At the high edge the un-widened
// write address decides: no cached encoding extends past limit (the
// predecode leaves range-end straddles lazy and fill refuses spanning
// encodings), so a write at or past limit cannot change any cached slot
// — but back-widening must NOT be applied before this test, or a write
// at limit/limit+1 would invalidate (and count against) the last
// halfword it provably does not affect.
func (c *DecodeCache) InvalidateRange(addr, size uint32) {
	lo := int64(addr) - 2
	hi := int64(addr) + int64(size)
	base, limit := int64(c.base), int64(c.base)+int64(c.span)
	if hi <= base || int64(addr) >= limit {
		return
	}
	if lo < base {
		lo = base
	}
	if hi > limit {
		hi = limit
	}
	loSlot := (lo - base) >> 1
	if c.fuse != nil {
		c.gen++
		// Splitting fusion: slots inside the range lose blk in the loop
		// below; the only block that can span INTO the range from before
		// it is the one owning loSlot with an earlier head.
		if h := c.fuse.owner[loSlot]; h >= 0 && int64(h) < loSlot {
			e := &c.entries[h]
			if e.blk != nil {
				if !e.dirty {
					c.touched = append(c.touched, h)
					e.dirty = true
				}
				e.blk = nil
			}
		}
	}
	for i := loSlot; i < (hi-base+1)>>1; i++ {
		e := &c.entries[i]
		if !e.dirty {
			c.touched = append(c.touched, int32(i))
		}
		*e = cacheEntry{dirty: true}
	}
	c.stats.Invalidations++
}

// fill caches the decode outcome the slow path just produced for an
// in-range fetch. An encoding that spans past the cached range stays
// uncached: a write beyond the range end could never invalidate it.
func (c *DecodeCache) fill(addr uint32, in *isa.Inst) {
	off := addr - c.base
	if off >= c.span || off&1 != 0 {
		return
	}
	if int64(addr)+int64(in.Size) > int64(c.base)+int64(c.span) {
		return
	}
	i := off >> 1
	e := makeEntry(in, c.cfg)
	e.dirty = true
	if !c.entries[i].dirty {
		c.touched = append(c.touched, int32(i))
	}
	c.entries[i] = e
}

// Stats returns the cumulative counters. Safe on a nil receiver.
func (c *DecodeCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return c.stats
}
