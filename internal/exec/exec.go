// Package exec implements the instruction-set simulator core: a
// fetch-decode-execute loop with full RV32GC semantics over the hart and
// memory models. It is the foundation every simulator variant in this
// repository shares (the paper's counterpart is the RISC-V VP 32-bit ISS);
// variants differ only in decoder/executor quirks and platform parameters.
//
// The executor also emits semantic edge coverage through a Hook, playing
// the role of the Clang -fsanitize=fuzzer instrumentation in the paper:
// every distinct (operation, outcome) pair is a coverage edge.
package exec

import (
	"errors"
	"fmt"

	"rvnegtest/internal/hart"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/mem"
)

// Quirks enables controlled deviations from the reference execution
// semantics, each modelling one execution bug the paper reports.
type Quirks struct {
	// LinkBeforeAlignCheck (models the GRIFT defect): JAL/JALR write the
	// link register before the target-alignment check, so an invalid jump
	// has a side effect although it raises an exception.
	LinkBeforeAlignCheck bool
	// SCIgnoresReservation (models the GRIFT defect): SC.W performs the
	// memory write and reports success even without a pending LR.W
	// reservation.
	SCIgnoresReservation bool
	// EcallMarksCompletion (models the Spike defect): an ECALL inside the
	// test body corrupts the dumped signature; modelled as the completion
	// marker x26 being incremented although the trap path must bypass it.
	EcallMarksCompletion bool
}

// Outcome kinds for semantic edge coverage.
const (
	EdgeRetire      = 0 // instruction retired normally
	EdgeBranchTaken = 1
	EdgeBranchNot   = 2
	EdgeTrapIllegal = 3
	EdgeTrapOther   = 4
)

// EdgeSpace is the number of distinct edge IDs the executor can emit.
func EdgeSpace() int { return isa.NumOps() * 8 }

// Hook observes execution for coverage collection. Both methods may be
// called very frequently; implementations must be cheap.
type Hook interface {
	// OnInst is called before a legal instruction executes, with register
	// values still holding the input state (for value-coverage rules).
	OnInst(inst *isa.Inst, h *hart.Hart)
	// OnEdge is called once per executed instruction with a stable
	// (operation, outcome) edge ID.
	OnEdge(edge uint32)
}

// ErrTimeout is returned by Run when the instruction limit is exhausted
// before the program halts (the non-termination defence).
var ErrTimeout = errors.New("exec: instruction limit exceeded")

// Executor runs a program on a hart and a memory.
type Executor struct {
	CPU    *hart.Hart
	Mem    *mem.Memory
	Dec    *isa.Decoder
	Quirks Quirks

	// TrapUnaligned selects the platform's unaligned data-access policy:
	// trap with a misaligned exception (true) or perform the access
	// (false). Both are specification-compliant; the divergence is exactly
	// why the paper's filter requires aligned immediates.
	TrapUnaligned bool

	// HaltAddr is the magic store address that ends simulation (the
	// compliance "halt and dump signature" mechanism).
	HaltAddr uint32

	// WFIHalts makes WFI stall forever (no interrupt sources exist, so a
	// platform that really waits never resumes). Legal behaviour; one of
	// the reasons the test filter forbids WFI.
	WFIHalts bool
	// EbreakHalts makes EBREAK terminate simulation without a signature
	// (debugger semantics). Legal behaviour; why the filter forbids
	// EBREAK.
	EbreakHalts bool

	Hook Hook

	Halted    bool
	InstCount uint64
}

// New builds an executor around existing hart and memory.
func New(cpu *hart.Hart, m *mem.Memory, dec *isa.Decoder) *Executor {
	return &Executor{CPU: cpu, Mem: m, Dec: dec}
}

// Run steps until the program halts or limit instructions have executed.
func (e *Executor) Run(limit uint64) error {
	for !e.Halted {
		if e.InstCount >= limit {
			return ErrTimeout
		}
		e.Step()
	}
	return nil
}

func (e *Executor) edge(op isa.Op, kind uint32) {
	if e.Hook != nil {
		e.Hook.OnEdge(uint32(op)*8 + kind)
	}
}

// Step executes one instruction (or takes one trap).
func (e *Executor) Step() {
	h := e.CPU
	e.InstCount++
	h.Mcycle++

	// Fetch.
	lo, err := e.Mem.Read16(h.PC)
	if err != nil {
		e.trap(isa.Inst{}, hart.CauseFetchAccessFault, h.PC)
		return
	}
	var inst isa.Inst
	switch {
	case lo&3 == 3:
		hi, err := e.Mem.Read16(h.PC + 2)
		if err != nil {
			e.trap(isa.Inst{}, hart.CauseFetchAccessFault, h.PC)
			return
		}
		inst = e.Dec.Decode32(uint32(hi)<<16 | uint32(lo))
	case !h.Cfg.Has(isa.ExtC):
		// Without the C extension the RVC decoder is never entered; the
		// halfword is simply an illegal encoding.
		inst = isa.Inst{Op: isa.OpIllegal, Raw: uint32(lo), Size: 2}
	default:
		inst = e.Dec.DecodeC(lo)
	}

	// Legality for this ISA configuration.
	info := inst.Info()
	switch {
	case info == nil:
		e.trap(inst, hart.CauseIllegalInstruction, inst.Raw)
		return
	case !h.Cfg.Has(info.Ext):
		e.trap(inst, hart.CauseIllegalInstruction, inst.Raw)
		return
	case info.Flags.Is(isa.FlagFP) && !h.FPEnabled():
		e.trap(inst, hart.CauseIllegalInstruction, inst.Raw)
		return
	}

	if e.Hook != nil {
		e.Hook.OnInst(&inst, h)
	}
	e.execute(inst)
}

// trap redirects to the machine trap handler and emits the trap edge.
func (e *Executor) trap(inst isa.Inst, cause, tval uint32) {
	kind := uint32(EdgeTrapOther)
	if cause == hart.CauseIllegalInstruction {
		kind = EdgeTrapIllegal
	}
	e.edge(inst.Op, kind)
	e.CPU.Trap(cause, tval)
}

// retire advances the PC past the instruction and counts it.
func (e *Executor) retire(inst isa.Inst) {
	e.CPU.PC += uint32(inst.Size)
	e.CPU.Minstret++
	e.edge(inst.Op, EdgeRetire)
}

// retireJump counts a retired control transfer that set PC itself.
func (e *Executor) retireJump(inst isa.Inst, taken bool) {
	e.CPU.Minstret++
	if taken {
		e.edge(inst.Op, EdgeBranchTaken)
	} else {
		e.edge(inst.Op, EdgeBranchNot)
	}
}

// targetAlign returns the required alignment mask for jump targets.
func (e *Executor) targetAlign() uint32 {
	if e.CPU.Cfg.Has(isa.ExtC) {
		return 1
	}
	return 3
}

func (e *Executor) execute(inst isa.Inst) {
	h := e.CPU
	x := h.ReadX
	rs1, rs2 := x(inst.Rs1), x(inst.Rs2)

	switch inst.Op {
	// ----- RV32I computational -----
	case isa.OpLUI:
		h.WriteX(inst.Rd, uint32(inst.Imm))
		e.retire(inst)
	case isa.OpAUIPC:
		h.WriteX(inst.Rd, h.PC+uint32(inst.Imm))
		e.retire(inst)
	case isa.OpADDI:
		h.WriteX(inst.Rd, rs1+uint32(inst.Imm))
		e.retire(inst)
	case isa.OpSLTI:
		h.WriteX(inst.Rd, b2u(int32(rs1) < inst.Imm))
		e.retire(inst)
	case isa.OpSLTIU:
		h.WriteX(inst.Rd, b2u(rs1 < uint32(inst.Imm)))
		e.retire(inst)
	case isa.OpXORI:
		h.WriteX(inst.Rd, rs1^uint32(inst.Imm))
		e.retire(inst)
	case isa.OpORI:
		h.WriteX(inst.Rd, rs1|uint32(inst.Imm))
		e.retire(inst)
	case isa.OpANDI:
		h.WriteX(inst.Rd, rs1&uint32(inst.Imm))
		e.retire(inst)
	case isa.OpSLLI:
		h.WriteX(inst.Rd, rs1<<uint32(inst.Imm))
		e.retire(inst)
	case isa.OpSRLI:
		h.WriteX(inst.Rd, rs1>>uint32(inst.Imm))
		e.retire(inst)
	case isa.OpSRAI:
		h.WriteX(inst.Rd, uint32(int32(rs1)>>uint32(inst.Imm)))
		e.retire(inst)
	case isa.OpADD:
		h.WriteX(inst.Rd, rs1+rs2)
		e.retire(inst)
	case isa.OpSUB:
		h.WriteX(inst.Rd, rs1-rs2)
		e.retire(inst)
	case isa.OpSLL:
		h.WriteX(inst.Rd, rs1<<(rs2&31))
		e.retire(inst)
	case isa.OpSLT:
		h.WriteX(inst.Rd, b2u(int32(rs1) < int32(rs2)))
		e.retire(inst)
	case isa.OpSLTU:
		h.WriteX(inst.Rd, b2u(rs1 < rs2))
		e.retire(inst)
	case isa.OpXOR:
		h.WriteX(inst.Rd, rs1^rs2)
		e.retire(inst)
	case isa.OpSRL:
		h.WriteX(inst.Rd, rs1>>(rs2&31))
		e.retire(inst)
	case isa.OpSRA:
		h.WriteX(inst.Rd, uint32(int32(rs1)>>(rs2&31)))
		e.retire(inst)
	case isa.OpOR:
		h.WriteX(inst.Rd, rs1|rs2)
		e.retire(inst)
	case isa.OpAND:
		h.WriteX(inst.Rd, rs1&rs2)
		e.retire(inst)

	// ----- Control transfer -----
	case isa.OpJAL:
		target := h.PC + uint32(inst.Imm)
		e.jump(inst, target, h.PC+uint32(inst.Size))
	case isa.OpJALR:
		target := (rs1 + uint32(inst.Imm)) &^ 1
		e.jump(inst, target, h.PC+uint32(inst.Size))
	case isa.OpBEQ:
		e.branch(inst, rs1 == rs2)
	case isa.OpBNE:
		e.branch(inst, rs1 != rs2)
	case isa.OpBLT:
		e.branch(inst, int32(rs1) < int32(rs2))
	case isa.OpBGE:
		e.branch(inst, int32(rs1) >= int32(rs2))
	case isa.OpBLTU:
		e.branch(inst, rs1 < rs2)
	case isa.OpBGEU:
		e.branch(inst, rs1 >= rs2)

	// ----- Loads / stores -----
	case isa.OpLB:
		if v, ok := e.load(inst, rs1, 1); ok {
			h.WriteX(inst.Rd, uint32(int32(int8(v))))
			e.retire(inst)
		}
	case isa.OpLBU:
		if v, ok := e.load(inst, rs1, 1); ok {
			h.WriteX(inst.Rd, uint32(uint8(v)))
			e.retire(inst)
		}
	case isa.OpLH:
		if v, ok := e.load(inst, rs1, 2); ok {
			h.WriteX(inst.Rd, uint32(int32(int16(v))))
			e.retire(inst)
		}
	case isa.OpLHU:
		if v, ok := e.load(inst, rs1, 2); ok {
			h.WriteX(inst.Rd, uint32(uint16(v)))
			e.retire(inst)
		}
	case isa.OpLW:
		if v, ok := e.load(inst, rs1, 4); ok {
			h.WriteX(inst.Rd, uint32(v))
			e.retire(inst)
		}
	case isa.OpSB:
		if e.store(inst, rs1, 1, uint64(rs2)) {
			e.retire(inst)
		}
	case isa.OpSH:
		if e.store(inst, rs1, 2, uint64(rs2)) {
			e.retire(inst)
		}
	case isa.OpSW:
		if e.store(inst, rs1, 4, uint64(rs2)) {
			e.retire(inst)
		}
	case isa.OpFLW:
		if v, ok := e.load(inst, rs1, 4); ok {
			h.WriteF32(inst.Rd, uint32(v))
			e.retire(inst)
		}
	case isa.OpFLD:
		if v, ok := e.load(inst, rs1, 8); ok {
			h.WriteF64(inst.Rd, v)
			e.retire(inst)
		}
	case isa.OpFSW:
		if e.store(inst, rs1, 4, uint64(h.ReadF32(inst.Rs2))) {
			e.retire(inst)
		}
	case isa.OpFSD:
		if e.store(inst, rs1, 8, h.ReadF64(inst.Rs2)) {
			e.retire(inst)
		}

	// ----- Fences and system -----
	case isa.OpFENCE, isa.OpFENCEI, isa.OpSFENCEVMA, isa.OpCustomNOP:
		// Memory is sequentially consistent here. OpCustomNOP only exists
		// behind the riscvOVPsim quirk.
		e.retire(inst)
	case isa.OpWFI:
		if e.WFIHalts {
			// Stall: PC does not advance, so the run exhausts its
			// instruction limit (there are no interrupt sources).
			return
		}
		e.retire(inst)
	case isa.OpECALL:
		if e.Quirks.EcallMarksCompletion {
			h.X[26]++
		}
		e.trap(inst, hart.CauseECallM, 0)
	case isa.OpEBREAK:
		if e.EbreakHalts {
			e.Halted = true
			return
		}
		e.trap(inst, hart.CauseBreakpoint, h.PC)
	case isa.OpMRET:
		h.MRet()
		e.retireJump(inst, true)
	case isa.OpSRET, isa.OpURET:
		// No supervisor/user trap support in this machine-mode-only model.
		e.trap(inst, hart.CauseIllegalInstruction, inst.Raw)

	// ----- Zicsr -----
	case isa.OpCSRRW, isa.OpCSRRS, isa.OpCSRRC, isa.OpCSRRWI, isa.OpCSRRSI, isa.OpCSRRCI:
		e.csrOp(inst, rs1)

	// ----- M -----
	case isa.OpMUL:
		h.WriteX(inst.Rd, rs1*rs2)
		e.retire(inst)
	case isa.OpMULH:
		h.WriteX(inst.Rd, uint32(uint64(int64(int32(rs1))*int64(int32(rs2)))>>32))
		e.retire(inst)
	case isa.OpMULHSU:
		h.WriteX(inst.Rd, uint32(uint64(int64(int32(rs1))*int64(rs2))>>32))
		e.retire(inst)
	case isa.OpMULHU:
		h.WriteX(inst.Rd, uint32(uint64(rs1)*uint64(rs2)>>32))
		e.retire(inst)
	case isa.OpDIV:
		var v int32
		switch {
		case rs2 == 0:
			v = -1
		case int32(rs1) == -1<<31 && int32(rs2) == -1:
			v = -1 << 31
		default:
			v = int32(rs1) / int32(rs2)
		}
		h.WriteX(inst.Rd, uint32(v))
		e.retire(inst)
	case isa.OpDIVU:
		if rs2 == 0 {
			h.WriteX(inst.Rd, ^uint32(0))
		} else {
			h.WriteX(inst.Rd, rs1/rs2)
		}
		e.retire(inst)
	case isa.OpREM:
		var v int32
		switch {
		case rs2 == 0:
			v = int32(rs1)
		case int32(rs1) == -1<<31 && int32(rs2) == -1:
			v = 0
		default:
			v = int32(rs1) % int32(rs2)
		}
		h.WriteX(inst.Rd, uint32(v))
		e.retire(inst)
	case isa.OpREMU:
		if rs2 == 0 {
			h.WriteX(inst.Rd, rs1)
		} else {
			h.WriteX(inst.Rd, rs1%rs2)
		}
		e.retire(inst)

	// ----- A -----
	case isa.OpLRW:
		if rs1&3 != 0 {
			e.trap(inst, hart.CauseMisalignedLoad, rs1)
			return
		}
		v, err := e.Mem.Read32(rs1)
		if err != nil {
			e.trap(inst, hart.CauseLoadAccessFault, rs1)
			return
		}
		h.ResValid, h.ResAddr = true, rs1
		h.WriteX(inst.Rd, v)
		e.retire(inst)
	case isa.OpSCW:
		if rs1&3 != 0 {
			e.trap(inst, hart.CauseMisalignedStore, rs1)
			return
		}
		ok := (h.ResValid && h.ResAddr == rs1) || e.Quirks.SCIgnoresReservation
		h.ResValid = false
		if ok {
			if e.storeWord(rs1, rs2) {
				return // halted
			}
			h.WriteX(inst.Rd, 0)
		} else {
			h.WriteX(inst.Rd, 1)
		}
		e.retire(inst)
	case isa.OpAMOSWAPW, isa.OpAMOADDW, isa.OpAMOXORW, isa.OpAMOANDW, isa.OpAMOORW,
		isa.OpAMOMINW, isa.OpAMOMAXW, isa.OpAMOMINUW, isa.OpAMOMAXUW:
		e.amo(inst, rs1, rs2)

	// ----- F/D arithmetic -----
	default:
		e.executeFP(inst, rs1)
		return
	}
}

func (e *Executor) jump(inst isa.Inst, target, link uint32) {
	h := e.CPU
	if target&e.targetAlign() != 0 {
		if e.Quirks.LinkBeforeAlignCheck {
			// The GRIFT defect: the link register is updated although the
			// jump raises the misaligned-fetch exception.
			h.WriteX(inst.Rd, link)
		}
		e.trap(inst, hart.CauseMisalignedFetch, target)
		return
	}
	h.WriteX(inst.Rd, link)
	h.PC = target
	e.retireJump(inst, true)
}

func (e *Executor) branch(inst isa.Inst, taken bool) {
	h := e.CPU
	if !taken {
		h.PC += uint32(inst.Size)
		h.Minstret++
		e.edge(inst.Op, EdgeBranchNot)
		return
	}
	target := h.PC + uint32(inst.Imm)
	if target&e.targetAlign() != 0 {
		e.trap(inst, hart.CauseMisalignedFetch, target)
		return
	}
	h.PC = target
	e.retireJump(inst, true)
}

// load performs a data load of size bytes at x[rs1]+imm (or x[rs1] for
// atomics); ok is false if a trap was taken.
func (e *Executor) load(inst isa.Inst, rs1 uint32, size uint32) (uint64, bool) {
	addr := rs1 + uint32(inst.Imm)
	if e.TrapUnaligned && addr&(size-1) != 0 {
		e.trap(inst, hart.CauseMisalignedLoad, addr)
		return 0, false
	}
	var v uint64
	var err error
	switch size {
	case 1:
		var b uint8
		b, err = e.Mem.Read8(addr)
		v = uint64(b)
	case 2:
		var hw uint16
		hw, err = e.Mem.Read16(addr)
		v = uint64(hw)
	case 4:
		var w uint32
		w, err = e.Mem.Read32(addr)
		v = uint64(w)
	default:
		v, err = e.Mem.Read64(addr)
	}
	if err != nil {
		e.trap(inst, hart.CauseLoadAccessFault, addr)
		return 0, false
	}
	return v, true
}

// store performs a data store; false means a trap was taken or the
// simulation halted.
func (e *Executor) store(inst isa.Inst, rs1 uint32, size uint32, v uint64) bool {
	addr := rs1 + uint32(inst.Imm)
	if e.TrapUnaligned && addr&(size-1) != 0 {
		e.trap(inst, hart.CauseMisalignedStore, addr)
		return false
	}
	if addr == e.HaltAddr {
		e.Halted = true
		return false
	}
	var err error
	switch size {
	case 1:
		err = e.Mem.Write8(addr, uint8(v))
	case 2:
		err = e.Mem.Write16(addr, uint16(v))
	case 4:
		err = e.Mem.Write32(addr, uint32(v))
	default:
		err = e.Mem.Write64(addr, v)
	}
	if err != nil {
		e.trap(inst, hart.CauseStoreAccessFault, addr)
		return false
	}
	return true
}

// storeWord is the SC.W store; returns true if the simulation halted.
func (e *Executor) storeWord(addr, v uint32) bool {
	if addr == e.HaltAddr {
		e.Halted = true
		return true
	}
	// Alignment and bounds were checked by the caller; a residual error
	// still traps defensively.
	if err := e.Mem.Write32(addr, v); err != nil {
		e.CPU.Trap(hart.CauseStoreAccessFault, addr)
		return true
	}
	return false
}

func (e *Executor) amo(inst isa.Inst, addr, src uint32) {
	h := e.CPU
	if addr&3 != 0 {
		e.trap(inst, hart.CauseMisalignedStore, addr)
		return
	}
	old, err := e.Mem.Read32(addr)
	if err != nil {
		e.trap(inst, hart.CauseStoreAccessFault, addr)
		return
	}
	var v uint32
	switch inst.Op {
	case isa.OpAMOSWAPW:
		v = src
	case isa.OpAMOADDW:
		v = old + src
	case isa.OpAMOXORW:
		v = old ^ src
	case isa.OpAMOANDW:
		v = old & src
	case isa.OpAMOORW:
		v = old | src
	case isa.OpAMOMINW:
		v = old
		if int32(src) < int32(old) {
			v = src
		}
	case isa.OpAMOMAXW:
		v = old
		if int32(src) > int32(old) {
			v = src
		}
	case isa.OpAMOMINUW:
		v = min(old, src)
	default: // AMOMAXU
		v = max(old, src)
	}
	if addr == e.HaltAddr {
		e.Halted = true
		return
	}
	if err := e.Mem.Write32(addr, v); err != nil {
		e.trap(inst, hart.CauseStoreAccessFault, addr)
		return
	}
	h.WriteX(inst.Rd, old)
	e.retire(inst)
}

func (e *Executor) csrOp(inst isa.Inst, rs1 uint32) {
	h := e.CPU
	var wval uint32
	imm := inst.Op == isa.OpCSRRWI || inst.Op == isa.OpCSRRSI || inst.Op == isa.OpCSRRCI
	if imm {
		wval = uint32(inst.Imm)
	} else {
		wval = rs1
	}
	write := true
	switch inst.Op {
	case isa.OpCSRRS, isa.OpCSRRC:
		write = inst.Rs1 != 0
	case isa.OpCSRRSI, isa.OpCSRRCI:
		write = inst.Imm != 0
	}
	readNeeded := true
	if (inst.Op == isa.OpCSRRW || inst.Op == isa.OpCSRRWI) && inst.Rd == 0 {
		readNeeded = false
	}
	var old uint32
	if readNeeded || write && inst.Op != isa.OpCSRRW && inst.Op != isa.OpCSRRWI {
		v, err := h.ReadCSR(inst.CSR)
		if err != nil {
			e.trap(inst, hart.CauseIllegalInstruction, inst.Raw)
			return
		}
		old = v
	}
	if write {
		nv := wval
		switch inst.Op {
		case isa.OpCSRRS, isa.OpCSRRSI:
			nv = old | wval
		case isa.OpCSRRC, isa.OpCSRRCI:
			nv = old &^ wval
		}
		if err := h.WriteCSR(inst.CSR, nv); err != nil {
			e.trap(inst, hart.CauseIllegalInstruction, inst.Raw)
			return
		}
	}
	h.WriteX(inst.Rd, old)
	e.retire(inst)
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// String renders executor state for debugging.
func (e *Executor) String() string {
	return fmt.Sprintf("exec{pc=%#08x halted=%v n=%d}", e.CPU.PC, e.Halted, e.InstCount)
}
