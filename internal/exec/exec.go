// Package exec implements the instruction-set simulator core: a
// fetch-decode-execute loop with full RV32GC semantics over the hart and
// memory models. It is the foundation every simulator variant in this
// repository shares (the paper's counterpart is the RISC-V VP 32-bit ISS);
// variants differ only in decoder/executor quirks and platform parameters.
//
// The executor also emits semantic edge coverage through a Hook, playing
// the role of the Clang -fsanitize=fuzzer instrumentation in the paper:
// every distinct (operation, outcome) pair is a coverage edge.
//
// Execution has two paths. The slow path is the classical loop: fetch a
// halfword, decode (with the variant's quirks), check legality, dispatch.
// The fast path serves fetches from an attached DecodeCache — decode and
// legality precomputed per program image — and falls back to the slow
// path on invalid slots, odd PCs and fetches outside the cached range.
// Stores that land in the cached range invalidate the covered slots, so
// self-modifying streams stay architecturally correct.
package exec

import (
	"errors"
	"fmt"

	"rvnegtest/internal/hart"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/mem"
)

// Quirks enables controlled deviations from the reference execution
// semantics, each modelling one execution bug the paper reports.
type Quirks struct {
	// LinkBeforeAlignCheck (models the GRIFT defect): JAL/JALR write the
	// link register before the target-alignment check, so an invalid jump
	// has a side effect although it raises an exception.
	LinkBeforeAlignCheck bool
	// SCIgnoresReservation (models the GRIFT defect): SC.W performs the
	// memory write and reports success even without a pending LR.W
	// reservation.
	SCIgnoresReservation bool
	// EcallMarksCompletion (models the Spike defect): an ECALL inside the
	// test body corrupts the dumped signature; modelled as the completion
	// marker x26 being incremented although the trap path must bypass it.
	EcallMarksCompletion bool
	// Priv are the seeded privileged-architecture defects (trap/CSR
	// behaviour), applied to the hart the executor drives. They are only
	// observable through the trap-family template, which records trap
	// tuples into its signature.
	Priv hart.Quirks
}

// Outcome kinds for semantic edge coverage.
const (
	EdgeRetire      = 0 // instruction retired normally
	EdgeBranchTaken = 1
	EdgeBranchNot   = 2
	EdgeTrapIllegal = 3
	EdgeTrapOther   = 4
)

// EdgeSpace is the number of distinct edge IDs the executor can emit.
func EdgeSpace() int { return isa.NumOps() * 8 }

// Hook observes execution for coverage collection. Both methods may be
// called very frequently; implementations must be cheap.
type Hook interface {
	// OnInst is called before a legal instruction executes, with register
	// values still holding the input state (for value-coverage rules).
	OnInst(inst *isa.Inst, h *hart.Hart)
	// OnEdge is called once per executed instruction with a stable
	// (operation, outcome) edge ID.
	OnEdge(edge uint32)
}

// ErrTimeout is returned by Run when the instruction limit is exhausted
// before the program halts (the non-termination defence).
var ErrTimeout = errors.New("exec: instruction limit exceeded")

// Executor runs a program on a hart and a memory.
type Executor struct {
	CPU    *hart.Hart
	Mem    *mem.Memory
	Dec    *isa.Decoder
	Quirks Quirks

	// Cache, when non-nil, serves fetches from predecoded entries. Its
	// configuration must match the hart's and its predecode must come
	// from this executor's decoder over the current memory contents;
	// outcomes, traps and coverage edges are identical with or without
	// it.
	Cache *DecodeCache

	// TrapUnaligned selects the platform's unaligned data-access policy:
	// trap with a misaligned exception (true) or perform the access
	// (false). Both are specification-compliant; the divergence is exactly
	// why the paper's filter requires aligned immediates.
	TrapUnaligned bool

	// HaltAddr is the magic store address that ends simulation (the
	// compliance "halt and dump signature" mechanism).
	HaltAddr uint32

	// WFIHalts makes WFI stall forever (no interrupt sources exist, so a
	// platform that really waits never resumes). Legal behaviour; one of
	// the reasons the test filter forbids WFI.
	WFIHalts bool
	// EbreakHalts makes EBREAK terminate simulation without a signature
	// (debugger semantics). Legal behaviour; why the filter forbids
	// EBREAK.
	EbreakHalts bool

	Hook Hook

	Halted    bool
	InstCount uint64
	// TrapCount counts taken traps (telemetry; trap-family runs take many
	// per test case, user-family runs at most one).
	TrapCount uint64
}

// New builds an executor around existing hart and memory.
func New(cpu *hart.Hart, m *mem.Memory, dec *isa.Decoder) *Executor {
	return &Executor{CPU: cpu, Mem: m, Dec: dec}
}

// Run steps until the program halts or limit instructions have executed.
// Runs with budget to spare may execute whole fused blocks per dispatch
// (see fuse.go); the architectural trajectory and the timeout point are
// identical to single-stepping.
func (e *Executor) Run(limit uint64) error {
	for !e.Halted {
		if e.InstCount >= limit {
			return ErrTimeout
		}
		e.stepBudget(limit - e.InstCount)
	}
	return nil
}

func (e *Executor) edge(op isa.Op, kind uint32) {
	if e.Hook != nil {
		e.Hook.OnEdge(uint32(op)*8 + kind)
	}
}

// Step executes one instruction (or takes one trap).
func (e *Executor) Step() {
	e.stepBudget(1)
}

// stepBudget executes at least one and at most budget instructions. With
// a cache attached, a fetch from a valid slot skips fetch, decode and
// the configuration-legality ladder entirely; a fetch landing on a fused
// block head with budget to spare runs the block through its fused
// handler. Everything else funnels into stepSlow.
func (e *Executor) stepBudget(budget uint64) {
	c := e.Cache
	if c == nil {
		e.stepSlow(false)
		return
	}
	off := e.CPU.PC - c.base
	if off >= c.span || off&1 != 0 {
		c.stats.Misses++
		e.stepSlow(false)
		return
	}
	ent := &c.entries[off>>1]
	if ent.state == entryInvalid {
		c.stats.Misses++
		e.stepSlow(true)
		return
	}
	if ent.blk != nil && budget > 1 {
		e.runFused(c, ent.blk, budget)
		return
	}
	c.stats.Hits++
	e.InstCount++
	e.CPU.Mcycle++
	// Copy the record: hooks receive a pointer, and nothing they see may
	// alias the cache.
	in := ent.inst
	if ent.state == entryIllegal || (ent.fp && !e.CPU.FPEnabled()) {
		e.trap(in.Op, hart.CauseIllegalInstruction, in.Raw)
		return
	}
	if e.Hook != nil {
		e.Hook.OnInst(&in, e.CPU)
	}
	ent.fn(e, &in)
}

// stepSlow is the classical fetch-decode-execute step. With refill set
// (an in-range fetch missed), the decode outcome is written back into
// the cache so the next fetch of this address hits.
func (e *Executor) stepSlow(refill bool) {
	h := e.CPU
	e.InstCount++
	h.Mcycle++

	// Fetch.
	lo, err := e.Mem.Read16(h.PC)
	if err != nil {
		e.trap(isa.OpIllegal, hart.CauseFetchAccessFault, h.PC)
		return
	}
	var inst isa.Inst
	switch {
	case lo&3 == 3:
		hi, err := e.Mem.Read16(h.PC + 2)
		if err != nil {
			e.trap(isa.OpIllegal, hart.CauseFetchAccessFault, h.PC)
			return
		}
		inst = e.Dec.Decode32(uint32(hi)<<16 | uint32(lo))
	case !h.Cfg.Has(isa.ExtC):
		// Without the C extension the RVC decoder is never entered; the
		// halfword is simply an illegal encoding.
		inst = isa.Inst{Op: isa.OpIllegal, Raw: uint32(lo), Size: 2}
	default:
		inst = e.Dec.DecodeC(lo)
	}
	if refill {
		e.Cache.fill(h.PC, &inst)
	}

	// Legality for this ISA configuration.
	info := inst.Info()
	switch {
	case info == nil:
		e.trap(inst.Op, hart.CauseIllegalInstruction, inst.Raw)
		return
	case !h.Cfg.Has(info.Ext):
		e.trap(inst.Op, hart.CauseIllegalInstruction, inst.Raw)
		return
	case info.Flags.Is(isa.FlagFP) && !h.FPEnabled():
		e.trap(inst.Op, hart.CauseIllegalInstruction, inst.Raw)
		return
	}

	if e.Hook != nil {
		e.Hook.OnInst(&inst, h)
	}
	handlers[inst.Op](e, &inst)
}

// trap redirects to the machine trap handler and emits the trap edge.
func (e *Executor) trap(op isa.Op, cause, tval uint32) {
	kind := uint32(EdgeTrapOther)
	if cause == hart.CauseIllegalInstruction {
		kind = EdgeTrapIllegal
	}
	e.edge(op, kind)
	e.TrapCount++
	e.CPU.Trap(cause, tval)
}

// retire advances the PC past the instruction and counts it.
func (e *Executor) retire(in *isa.Inst) {
	e.CPU.PC += uint32(in.Size)
	e.CPU.Minstret++
	e.edge(in.Op, EdgeRetire)
}

// retireJump counts a retired control transfer that set PC itself.
func (e *Executor) retireJump(op isa.Op, taken bool) {
	e.CPU.Minstret++
	if taken {
		e.edge(op, EdgeBranchTaken)
	} else {
		e.edge(op, EdgeBranchNot)
	}
}

// targetAlign returns the required alignment mask for jump targets.
func (e *Executor) targetAlign() uint32 {
	if e.CPU.Cfg.Has(isa.ExtC) {
		return 1
	}
	return 3
}

func (e *Executor) jump(in *isa.Inst, target, link uint32) {
	h := e.CPU
	if target&e.targetAlign() != 0 {
		if e.Quirks.LinkBeforeAlignCheck {
			// The GRIFT defect: the link register is updated although the
			// jump raises the misaligned-fetch exception.
			h.WriteX(in.Rd, link)
		}
		e.trap(in.Op, hart.CauseMisalignedFetch, target)
		return
	}
	h.WriteX(in.Rd, link)
	h.PC = target
	e.retireJump(in.Op, true)
}

func (e *Executor) branch(in *isa.Inst, taken bool) {
	h := e.CPU
	if !taken {
		h.PC += uint32(in.Size)
		h.Minstret++
		e.edge(in.Op, EdgeBranchNot)
		return
	}
	target := h.PC + uint32(in.Imm)
	if target&e.targetAlign() != 0 {
		e.trap(in.Op, hart.CauseMisalignedFetch, target)
		return
	}
	h.PC = target
	e.retireJump(in.Op, true)
}

// load performs a data load of size bytes at x[rs1]+imm (or x[rs1] for
// atomics); ok is false if a trap was taken.
func (e *Executor) load(in *isa.Inst, rs1 uint32, size uint32) (uint64, bool) {
	addr := rs1 + uint32(in.Imm)
	if e.TrapUnaligned && addr&(size-1) != 0 {
		e.trap(in.Op, hart.CauseMisalignedLoad, addr)
		return 0, false
	}
	var v uint64
	var err error
	switch size {
	case 1:
		var b uint8
		b, err = e.Mem.Read8(addr)
		v = uint64(b)
	case 2:
		var hw uint16
		hw, err = e.Mem.Read16(addr)
		v = uint64(hw)
	case 4:
		var w uint32
		w, err = e.Mem.Read32(addr)
		v = uint64(w)
	default:
		v, err = e.Mem.Read64(addr)
	}
	if err != nil {
		e.trap(in.Op, hart.CauseLoadAccessFault, addr)
		return 0, false
	}
	return v, true
}

// store performs a data store; false means a trap was taken or the
// simulation halted.
func (e *Executor) store(in *isa.Inst, rs1 uint32, size uint32, v uint64) bool {
	addr := rs1 + uint32(in.Imm)
	if e.TrapUnaligned && addr&(size-1) != 0 {
		e.trap(in.Op, hart.CauseMisalignedStore, addr)
		return false
	}
	if addr == e.HaltAddr {
		e.Halted = true
		return false
	}
	var err error
	switch size {
	case 1:
		err = e.Mem.Write8(addr, uint8(v))
	case 2:
		err = e.Mem.Write16(addr, uint16(v))
	case 4:
		err = e.Mem.Write32(addr, uint32(v))
	default:
		err = e.Mem.Write64(addr, v)
	}
	if err != nil {
		e.trap(in.Op, hart.CauseStoreAccessFault, addr)
		return false
	}
	if e.Cache != nil {
		e.Cache.InvalidateRange(addr, size)
	}
	return true
}

// storeWord is the SC.W store; returns true if the simulation halted.
func (e *Executor) storeWord(addr, v uint32) bool {
	if addr == e.HaltAddr {
		e.Halted = true
		return true
	}
	// Alignment and bounds were checked by the caller; a residual error
	// still traps defensively.
	if err := e.Mem.Write32(addr, v); err != nil {
		e.CPU.Trap(hart.CauseStoreAccessFault, addr)
		return true
	}
	if e.Cache != nil {
		e.Cache.InvalidateRange(addr, 4)
	}
	return false
}

func (e *Executor) amo(in *isa.Inst, addr, src uint32) {
	h := e.CPU
	if addr&3 != 0 {
		e.trap(in.Op, hart.CauseMisalignedStore, addr)
		return
	}
	old, err := e.Mem.Read32(addr)
	if err != nil {
		e.trap(in.Op, hart.CauseStoreAccessFault, addr)
		return
	}
	var v uint32
	switch in.Op {
	case isa.OpAMOSWAPW:
		v = src
	case isa.OpAMOADDW:
		v = old + src
	case isa.OpAMOXORW:
		v = old ^ src
	case isa.OpAMOANDW:
		v = old & src
	case isa.OpAMOORW:
		v = old | src
	case isa.OpAMOMINW:
		v = old
		if int32(src) < int32(old) {
			v = src
		}
	case isa.OpAMOMAXW:
		v = old
		if int32(src) > int32(old) {
			v = src
		}
	case isa.OpAMOMINUW:
		v = min(old, src)
	default: // AMOMAXU
		v = max(old, src)
	}
	if addr == e.HaltAddr {
		e.Halted = true
		return
	}
	if err := e.Mem.Write32(addr, v); err != nil {
		e.trap(in.Op, hart.CauseStoreAccessFault, addr)
		return
	}
	if e.Cache != nil {
		e.Cache.InvalidateRange(addr, 4)
	}
	h.WriteX(in.Rd, old)
	e.retire(in)
}

func (e *Executor) csrOp(in *isa.Inst, rs1 uint32) {
	h := e.CPU
	var wval uint32
	imm := in.Op == isa.OpCSRRWI || in.Op == isa.OpCSRRSI || in.Op == isa.OpCSRRCI
	if imm {
		wval = uint32(in.Imm)
	} else {
		wval = rs1
	}
	write := true
	switch in.Op {
	case isa.OpCSRRS, isa.OpCSRRC:
		write = in.Rs1 != 0
	case isa.OpCSRRSI, isa.OpCSRRCI:
		write = in.Imm != 0
	}
	readNeeded := true
	if (in.Op == isa.OpCSRRW || in.Op == isa.OpCSRRWI) && in.Rd == 0 {
		readNeeded = false
	}
	var old uint32
	if readNeeded || write && in.Op != isa.OpCSRRW && in.Op != isa.OpCSRRWI {
		v, err := h.ReadCSR(in.CSR)
		if err != nil {
			e.trap(in.Op, hart.CauseIllegalInstruction, in.Raw)
			return
		}
		old = v
	}
	if write {
		nv := wval
		switch in.Op {
		case isa.OpCSRRS, isa.OpCSRRSI:
			nv = old | wval
		case isa.OpCSRRC, isa.OpCSRRCI:
			nv = old &^ wval
		}
		if err := h.WriteCSR(in.CSR, nv); err != nil {
			e.trap(in.Op, hart.CauseIllegalInstruction, in.Raw)
			return
		}
	}
	h.WriteX(in.Rd, old)
	e.retire(in)
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// String renders executor state for debugging.
func (e *Executor) String() string {
	return fmt.Sprintf("exec{pc=%#08x halted=%v n=%d}", e.CPU.PC, e.Halted, e.InstCount)
}
