package exec

import (
	"testing"

	"rvnegtest/internal/analysis"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/mem"
)

// fuseProgram assembles words at 0, attaches a fused cache (extents from
// the analysis CFG over the same bytes) and returns the executor. The
// returned int is the number of fused blocks installed.
func fuseProgram(t *testing.T, cfg isa.Config, words ...uint32) (*Executor, int) {
	t.Helper()
	e := newExec(cfg, words...)
	c := attachCache(e, cfg)
	code, err := e.Mem.ReadBytes(0, fuzzCodeSpan)
	if err != nil {
		t.Fatal(err)
	}
	n := c.Fuse(analysis.StraightLineExtents(code, false))
	return e, n
}

// runScalarRef runs the same program classically (no cache at all) as
// the golden reference.
func runScalarRef(cfg isa.Config, limit uint64, words ...uint32) *Executor {
	e := newExec(cfg, words...)
	_ = e.Run(limit)
	return e
}

func sameArch(t *testing.T, label string, want, got *Executor) {
	t.Helper()
	if *want.CPU != *got.CPU {
		t.Fatalf("%s: hart diverged: want pc=%#x x5=%d minstret=%d, got pc=%#x x5=%d minstret=%d",
			label, want.CPU.PC, want.CPU.ReadX(5), want.CPU.Minstret,
			got.CPU.PC, got.CPU.ReadX(5), got.CPU.Minstret)
	}
	if want.Halted != got.Halted || want.InstCount != got.InstCount || want.TrapCount != got.TrapCount {
		t.Fatalf("%s: termination diverged: want (halted=%v n=%d traps=%d) got (halted=%v n=%d traps=%d)",
			label, want.Halted, want.InstCount, want.TrapCount, got.Halted, got.InstCount, got.TrapCount)
	}
}

// TestFusedRunMatchesClassical: a straight-line ALU/memory block runs
// through the fused handler and must leave identical architectural state
// to the classical loop, while actually taking the fused path.
func TestFusedRunMatchesClassical(t *testing.T) {
	prog := []uint32{
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: 5}),
		enc(isa.Inst{Op: isa.OpLUI, Rd: 2, Imm: 0x2000}),
		enc(isa.Inst{Op: isa.OpAUIPC, Rd: 3, Imm: 0}),
		enc(isa.Inst{Op: isa.OpADD, Rd: 4, Rs1: 1, Rs2: 1}),
		enc(isa.Inst{Op: isa.OpSLLI, Rd: 5, Rs1: 1, Imm: 2}),
		enc(isa.Inst{Op: isa.OpSW, Rs1: 0, Rs2: 5, Imm: 0x300}),
		enc(isa.Inst{Op: isa.OpLW, Rd: 6, Rs1: 0, Imm: 0x300}),
		enc(isa.Inst{Op: isa.OpXOR, Rd: 7, Rs1: 6, Rs2: 1}),
		enc(isa.Inst{Op: isa.OpSW, Imm: testHaltAddr}),
	}
	want := runScalarRef(isa.RV32I, 100, prog...)
	got, blocks := fuseProgram(t, isa.RV32I, prog...)
	if blocks == 0 {
		t.Fatal("no fused blocks installed")
	}
	if err := got.Run(100); err != nil {
		t.Fatalf("fused run: %v", err)
	}
	sameArch(t, "fused", want, got)
	st := got.Cache.Stats()
	if st.Fused == 0 {
		t.Fatal("fused counter is zero: the fused path never ran")
	}
	if st.Fused > st.Hits {
		t.Fatalf("fused (%d) exceeds hits (%d)", st.Fused, st.Hits)
	}
}

// TestFusedStepNeverFuses: Step (budget 1) must not enter fused blocks,
// so single-stepping debuggers see per-instruction granularity.
func TestFusedStepNeverFuses(t *testing.T) {
	e, blocks := fuseProgram(t, isa.RV32I,
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: 5}),
		enc(isa.Inst{Op: isa.OpADD, Rd: 2, Rs1: 1, Rs2: 1}),
		enc(isa.Inst{Op: isa.OpSW, Imm: testHaltAddr}),
	)
	if blocks == 0 {
		t.Fatal("no fused blocks installed")
	}
	for i := 0; i < 100 && !e.Halted; i++ {
		e.Step()
	}
	if st := e.Cache.Stats(); st.Fused != 0 {
		t.Fatalf("Step took the fused path %d times", st.Fused)
	}
}

// TestFusedSelfModifyingSplit stores into the body of the executing
// fused block: the store's own instruction must use the old decode, the
// following fetch the new one — identical to the classical loop — and
// the block must be split (no fused dispatch until Reset).
func TestFusedSelfModifyingSplit(t *testing.T) {
	prog := []uint32{
		enc(isa.Inst{Op: isa.OpADDI, Rd: 30, Imm: 16}),
		enc(isa.Inst{Op: isa.OpLW, Rd: 1, Imm: 0x200}),
		enc(isa.Inst{Op: isa.OpSW, Rs1: 30, Rs2: 1}), // patches the inst at 16
		enc(isa.Inst{Op: isa.OpADDI, Rd: 5, Imm: 1}),
		0xffffffff, // at 16: replaced before it is fetched
		enc(isa.Inst{Op: isa.OpSW, Imm: testHaltAddr}),
	}
	patch := enc(isa.Inst{Op: isa.OpADDI, Rd: 2, Imm: 99})
	poke := func(m *mem.Memory) {
		if err := m.Write32(0x200, patch); err != nil {
			t.Fatal(err)
		}
	}
	want := newExec(isa.RV32I, prog...)
	poke(want.Mem)
	_ = want.Run(100)

	got, blocks := fuseProgram(t, isa.RV32I, prog...)
	if blocks == 0 {
		t.Fatal("no fused blocks installed")
	}
	poke(got.Mem)
	// The poke lands inside the predecoded span but at a slot that is
	// only ever loaded as data, never fetched, so no re-fuse is needed.
	if err := got.Run(100); err != nil {
		t.Fatalf("fused run: %v", err)
	}
	sameArch(t, "self-modifying", want, got)
	if got.CPU.ReadX(2) != 99 {
		t.Fatalf("x2 = %d, want 99 (stale fused step executed?)", got.CPU.ReadX(2))
	}
}

// TestInvalidateSplitsAndResetRestores pins the invalidation-splits-
// fusion invariant at the cache level: invalidating the middle of a
// fused block clears the head's fused handler and bumps the generation;
// Reset restores both.
func TestInvalidateSplitsAndResetRestores(t *testing.T) {
	e, blocks := fuseProgram(t, isa.RV32I,
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: 1}),
		enc(isa.Inst{Op: isa.OpADDI, Rd: 2, Imm: 2}),
		enc(isa.Inst{Op: isa.OpADDI, Rd: 3, Imm: 3}),
		enc(isa.Inst{Op: isa.OpSW, Imm: testHaltAddr}),
	)
	if blocks == 0 {
		t.Fatal("no fused blocks installed")
	}
	c := e.Cache
	if c.entries[0].blk == nil {
		t.Fatal("head slot has no fused handler")
	}
	gen := c.gen
	c.InvalidateRange(8, 4) // third instruction: mid-block
	if c.gen == gen {
		t.Error("generation not bumped by an effective invalidation")
	}
	if c.entries[0].blk != nil {
		t.Error("head keeps its fused handler after a mid-block invalidation")
	}
	c.Reset()
	if c.entries[0].blk == nil {
		t.Error("Reset did not restore the fused handler")
	}
	// An out-of-range write must neither bump the generation nor split.
	gen = c.gen
	c.InvalidateRange(0x4000, 4)
	if c.gen != gen || c.entries[0].blk == nil {
		t.Error("no-op invalidation disturbed fusion state")
	}
}

// TestFusedBudgetInterruption: exhausting the instruction limit mid-
// block must stop at exactly the limit (ErrTimeout parity with scalar),
// and resuming with a bigger budget must complete identically to an
// uninterrupted run.
func TestFusedBudgetInterruption(t *testing.T) {
	prog := []uint32{
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: 1}),
		enc(isa.Inst{Op: isa.OpADDI, Rd: 2, Imm: 2}),
		enc(isa.Inst{Op: isa.OpADDI, Rd: 3, Imm: 3}),
		enc(isa.Inst{Op: isa.OpADDI, Rd: 4, Imm: 4}),
		enc(isa.Inst{Op: isa.OpADDI, Rd: 5, Imm: 5}),
		enc(isa.Inst{Op: isa.OpSW, Imm: testHaltAddr}),
	}
	want := runScalarRef(isa.RV32I, 100, prog...)
	for limit := uint64(1); limit <= 5; limit++ {
		got, _ := fuseProgram(t, isa.RV32I, prog...)
		if err := got.Run(limit); err != ErrTimeout {
			t.Fatalf("limit %d: err = %v, want ErrTimeout", limit, err)
		}
		if got.InstCount != limit {
			t.Fatalf("limit %d: InstCount = %d (overshoot)", limit, got.InstCount)
		}
		ref := runScalarRef(isa.RV32I, limit, prog...)
		sameArch(t, "interrupted", ref, got)
		// Resume: the tail runs scalar from mid-block and completes.
		if err := got.Run(100); err != nil {
			t.Fatalf("resume after %d: %v", limit, err)
		}
		sameArch(t, "resumed", want, got)
	}
}

// TestFuseValidatesExtents: extents pointing at illegal or lazy slots
// are truncated or rejected rather than trusted (a quirked decoder may
// disagree with the CFG's reference decoding).
func TestFuseValidatesExtents(t *testing.T) {
	e := newExec(isa.RV32I,
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: 1}),
		0xffffffff, // illegal: must end any block
		enc(isa.Inst{Op: isa.OpADDI, Rd: 2, Imm: 2}),
	)
	c := attachCache(e, isa.RV32I)
	// A lying extent claiming [0, 12) straight-line: only one legal
	// instruction precedes the illegal slot, so no block (min two steps).
	if n := c.Fuse([][2]int32{{0, 12}}); n != 0 {
		t.Fatalf("installed %d blocks across an illegal slot", n)
	}
	// Odd or out-of-range extents are ignored outright.
	if n := c.Fuse([][2]int32{{1, 9}, {-4, 8}, {0x900, 0x910}}); n != 0 {
		t.Fatalf("installed %d blocks from malformed extents", n)
	}
}

// TestFusedCloneShares: clones share the immutable fuse table, fused
// dispatch works on clones, and a clone's split never affects the
// original (satellite: per-clone stats independence rides along).
func TestFusedCloneShares(t *testing.T) {
	e, blocks := fuseProgram(t, isa.RV32I,
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: 1}),
		enc(isa.Inst{Op: isa.OpADDI, Rd: 2, Imm: 2}),
		enc(isa.Inst{Op: isa.OpSW, Imm: testHaltAddr}),
	)
	if blocks == 0 {
		t.Fatal("no fused blocks installed")
	}
	c := e.Cache
	cl := c.Clone()
	if cl.fuse != c.fuse {
		t.Fatal("clone does not share the fuse table")
	}
	if cl.entries[0].blk != c.entries[0].blk {
		t.Fatal("clone head lost its fused handler")
	}
	cl.InvalidateRange(4, 4)
	if c.entries[0].blk == nil {
		t.Fatal("clone invalidation leaked into the original")
	}
	if c.Stats().Invalidations != 0 || cl.Stats().Invalidations != 1 {
		t.Fatalf("stats aliased: orig %+v clone %+v", c.Stats(), cl.Stats())
	}
}
