// Superblock fusion: straight-line runs of predecoded instructions are
// fused into a single block handler, so the per-instruction dispatch of
// Step (slot lookup, state check, indirect call) is paid once per block
// instead of once per instruction. The common computational operations
// additionally execute through inlined fast paths that skip the handler
// call entirely.
//
// Fusion is an execution-strategy overlay, never a semantic one: a fused
// run retires the same instructions, takes the same traps, reads and
// writes the same architectural state (including the cycle/instret
// counters, which are CSR-visible per step) and produces the same cache
// statistics as the equivalent sequence of scalar steps. Three rules
// keep that true:
//
//  1. Only the final instruction of a fused block may transfer control,
//     trap by design, or carry forbidden/system semantics. Every earlier
//     step is a plain legal instruction whose fall-through successor is
//     the next step.
//  2. Any step may still fail dynamically (FP disabled, access fault,
//     halt store, self-modifying store). Such a step executes through
//     its full scalar handler, and the fused run bails out right after
//     it; the scalar loop resumes at the architecturally correct PC.
//  3. Invalidation splits fusion (the invariant DESIGN.md §17 states):
//     every effective InvalidateRange bumps the cache generation, and a
//     fused run re-checks the generation after any step that could have
//     stored. A block whose head slot is invalidated loses its fused
//     handler until Reset restores the pristine image.
package exec

import (
	"rvnegtest/internal/hart"
	"rvnegtest/internal/isa"
)

// Fused step kinds. fuGeneric runs the step through its scalar handler;
// the others are inlined fast paths for operations that dominate the
// generated harness code. Inlined kinds are chosen so that (absent a
// dynamic fault, which falls back to the handler) they cannot trap,
// halt, store, or leave PC anywhere but the fall-through successor.
const (
	fuGeneric uint8 = iota
	fuALUImm        // rd <- alu(x[rs1], imm)
	fuALUReg        // rd <- alu(x[rs1], x[rs2])
	fuConst         // rd <- imm (LUI, and AUIPC with pc folded in)
	fuLW            // rd <- mem32[x[rs1]+imm]
	fuSW            // mem32[x[rs1]+imm] <- x[rs2]
)

// ALU sub-operations for the inlined kinds. Shift amounts are masked to
// five bits; fuse-time classification guarantees immediate shifts with
// out-of-range amounts (possible under loose-decode quirks) stay on the
// generic path, where the scalar handler's unmasked shift applies.
const (
	aluAdd uint8 = iota
	aluSub
	aluSll
	aluSlt
	aluSltu
	aluXor
	aluSrl
	aluSra
	aluOr
	aluAnd
)

func aluEval(op uint8, a, b uint32) uint32 {
	switch op {
	case aluAdd:
		return a + b
	case aluSub:
		return a - b
	case aluSll:
		return a << (b & 31)
	case aluSlt:
		return b2u(int32(a) < int32(b))
	case aluSltu:
		return b2u(a < b)
	case aluXor:
		return a ^ b
	case aluSrl:
		return a >> (b & 31)
	case aluSra:
		return uint32(int32(a) >> (b & 31))
	case aluOr:
		return a | b
	default:
		return a & b
	}
}

// fusedStep is one instruction of a fused block with its dispatch
// decision precomputed. next is the fall-through PC after the step; a
// generic step that leaves PC elsewhere (taken branch, trap, stalling
// WFI) ends the fused run.
type fusedStep struct {
	kind uint8
	alu  uint8
	fp   bool // legal FP op: re-check FPEnabled at dispatch time
	rd   isa.Reg
	rs1  isa.Reg
	rs2  isa.Reg
	imm  int32
	next uint32
	fn   handlerFn
	inst isa.Inst
}

// fusedBlock is the fused handler for one straight-line block. Blocks
// are immutable after Fuse and shared across cache clones; all mutable
// state stays in the per-clone entry table (the blk pointer) and the
// generation counter.
type fusedBlock struct {
	pc    uint32 // head PC (diagnostics)
	steps []fusedStep
}

// fuseTable is the immutable slot-level index of a cache's fused blocks,
// shared across clones. owner maps every covered halfword slot to its
// block's head slot (-1 when unfused) — InvalidateRange uses it to split
// a block whose head lies before the invalidated range. heads holds the
// block of each head slot, so Reset can restore fused dispatch after the
// pristine image returns.
type fuseTable struct {
	owner []int32
	heads []*fusedBlock
}

// Fuse installs fused handlers for the given straight-line extents
// (byte offsets relative to the cache base, end-exclusive), typically
// produced by analysis.StraightLineExtents over the same code bytes.
// It must be called on a pristine cache (fresh from NewDecodeCache, or
// Reset with no prior Fuse); extents are hints and are re-validated
// against the cache's own entries, so a decoder-quirk divergence merely
// truncates a block. Returns the number of blocks installed. Clones
// made after Fuse share the fusion immutably.
func (c *DecodeCache) Fuse(extents [][2]int32) int {
	if c == nil || len(c.entries) == 0 {
		return 0
	}
	ft := &fuseTable{
		owner: make([]int32, len(c.entries)),
		heads: make([]*fusedBlock, len(c.entries)),
	}
	for i := range ft.owner {
		ft.owner[i] = -1
	}
	installed := 0
	for _, ex := range extents {
		start, end := ex[0], ex[1]
		if start < 0 || start&1 != 0 || start >= int32(c.span) {
			continue
		}
		if end > int32(c.span) {
			end = int32(c.span)
		}
		steps, size := c.buildSteps(start, end)
		if len(steps) < 2 {
			continue
		}
		head := start >> 1
		endSlot := (start + size) >> 1
		overlap := false
		for s := head; s < endSlot; s++ {
			if ft.owner[s] != -1 {
				overlap = true
				break
			}
		}
		if overlap {
			continue
		}
		blk := &fusedBlock{pc: c.base + uint32(start), steps: steps}
		for s := head; s < endSlot; s++ {
			ft.owner[s] = head
		}
		ft.heads[head] = blk
		c.entries[head].blk = blk
		installed++
	}
	c.fuse = ft
	return installed
}

// buildSteps walks the pristine entries from start, collecting fusable
// steps until the extent ends, an unfusable slot appears, or a block
// terminator (jump, branch, trap, forbidden/system op) is included as
// the final step. Returns the steps and the byte size they cover.
func (c *DecodeCache) buildSteps(start, end int32) ([]fusedStep, int32) {
	var steps []fusedStep
	off := start
	for off < end {
		ent := &c.entries[off>>1]
		if ent.dirty || ent.state != entryLegal {
			break
		}
		sz := int32(ent.inst.Size)
		if sz == 0 || off+sz > int32(c.span) {
			break
		}
		pc := c.base + uint32(off)
		steps = append(steps, makeStep(ent, pc))
		off += sz
		info := ent.inst.Info()
		if info.Flags.Any(isa.FlagJump | isa.FlagBranch | isa.FlagTrap | isa.FlagForbidden) {
			// Terminator: legal as the final step, never mid-block.
			break
		}
	}
	return steps, off - start
}

// makeStep classifies one legal entry into its fused dispatch kind. The
// inlined kinds replicate the corresponding scalar handlers exactly
// (handlers.go is the source of truth); anything not provably identical
// stays fuGeneric.
func makeStep(ent *cacheEntry, pc uint32) fusedStep {
	in := &ent.inst
	st := fusedStep{
		kind: fuGeneric,
		fp:   ent.fp,
		rd:   in.Rd,
		rs1:  in.Rs1,
		rs2:  in.Rs2,
		imm:  in.Imm,
		next: pc + uint32(in.Size),
		fn:   ent.fn,
		inst: *in,
	}
	switch in.Op {
	case isa.OpLUI:
		st.kind = fuConst
	case isa.OpAUIPC:
		st.kind = fuConst
		st.imm = int32(pc + uint32(in.Imm))
	case isa.OpADDI:
		st.kind, st.alu = fuALUImm, aluAdd
	case isa.OpSLTI:
		st.kind, st.alu = fuALUImm, aluSlt
	case isa.OpSLTIU:
		st.kind, st.alu = fuALUImm, aluSltu
	case isa.OpXORI:
		st.kind, st.alu = fuALUImm, aluXor
	case isa.OpORI:
		st.kind, st.alu = fuALUImm, aluOr
	case isa.OpANDI:
		st.kind, st.alu = fuALUImm, aluAnd
	case isa.OpSLLI:
		st.kind, st.alu = fuALUImm, aluSll
	case isa.OpSRLI:
		st.kind, st.alu = fuALUImm, aluSrl
	case isa.OpSRAI:
		st.kind, st.alu = fuALUImm, aluSra
	case isa.OpADD:
		st.kind, st.alu = fuALUReg, aluAdd
	case isa.OpSUB:
		st.kind, st.alu = fuALUReg, aluSub
	case isa.OpSLL:
		st.kind, st.alu = fuALUReg, aluSll
	case isa.OpSLT:
		st.kind, st.alu = fuALUReg, aluSlt
	case isa.OpSLTU:
		st.kind, st.alu = fuALUReg, aluSltu
	case isa.OpXOR:
		st.kind, st.alu = fuALUReg, aluXor
	case isa.OpSRL:
		st.kind, st.alu = fuALUReg, aluSrl
	case isa.OpSRA:
		st.kind, st.alu = fuALUReg, aluSra
	case isa.OpOR:
		st.kind, st.alu = fuALUReg, aluOr
	case isa.OpAND:
		st.kind, st.alu = fuALUReg, aluAnd
	case isa.OpLW:
		st.kind = fuLW
	case isa.OpSW:
		st.kind = fuSW
	}
	if st.kind == fuALUImm && (st.alu == aluSll || st.alu == aluSrl || st.alu == aluSra) &&
		uint32(in.Imm) > 31 {
		// Loose decoders may accept out-of-range shift amounts; the
		// scalar handler shifts unmasked, so keep the handler.
		st.kind = fuGeneric
	}
	return st
}

// runFused executes up to budget steps of a fused block. The caller has
// verified the block's head slot is valid and the budget is at least 2
// (a budget-1 call would gain nothing over Step). Per-step architectural
// effects (Mcycle, Minstret, register/memory writes, traps) happen in
// scalar order; only the executor's InstCount and the cache hit counters
// are folded in at the end, since neither is architecturally visible
// mid-run.
func (e *Executor) runFused(c *DecodeCache, b *fusedBlock, budget uint64) {
	h := e.CPU
	gen := c.gen
	steps := b.steps
	n := uint64(len(steps))
	if budget < n {
		n = budget
	}
	var k uint64
	if e.Hook != nil {
		// Hooked runs (coverage collection) need the per-step OnInst and
		// OnEdge callbacks, so every step takes the full handler path.
		for i := uint64(0); i < n; i++ {
			k++
			h.Mcycle++
			if !e.fusedSlow(c, &steps[i], gen) {
				break
			}
		}
	} else {
		for i := uint64(0); i < n; i++ {
			st := &steps[i]
			k++
			h.Mcycle++
			ok := true
			switch st.kind {
			case fuALUImm:
				h.WriteX(st.rd, aluEval(st.alu, h.ReadX(st.rs1), uint32(st.imm)))
				h.PC = st.next
				h.Minstret++
			case fuALUReg:
				h.WriteX(st.rd, aluEval(st.alu, h.ReadX(st.rs1), h.ReadX(st.rs2)))
				h.PC = st.next
				h.Minstret++
			case fuConst:
				h.WriteX(st.rd, uint32(st.imm))
				h.PC = st.next
				h.Minstret++
			case fuLW:
				addr := h.ReadX(st.rs1) + uint32(st.imm)
				if !e.TrapUnaligned || addr&3 == 0 {
					if v, err := e.Mem.Read32(addr); err == nil {
						h.WriteX(st.rd, v)
						h.PC = st.next
						h.Minstret++
						break
					}
				}
				ok = e.fusedSlow(c, st, gen)
			case fuSW:
				// Inline only the store that provably cannot trap, halt,
				// or touch the cached code range (the overlap test mirrors
				// InvalidateRange's early-out, so skipping the call also
				// skips zero counter increments, exactly like scalar).
				addr := h.ReadX(st.rs1) + uint32(st.imm)
				if (!e.TrapUnaligned || addr&3 == 0) && addr != e.HaltAddr &&
					(addr+4 <= c.base || addr >= c.base+c.span) {
					if err := e.Mem.Write32(addr, h.ReadX(st.rs2)); err == nil {
						h.PC = st.next
						h.Minstret++
						break
					}
					// The write failed after the bounds test raced nothing:
					// impossible to reach retire; fall through to the
					// handler, which re-runs the store and takes the trap.
				}
				ok = e.fusedSlow(c, st, gen)
			default:
				ok = e.fusedSlow(c, st, gen)
			}
			if !ok {
				break
			}
		}
	}
	e.InstCount += k
	c.stats.Hits += k
	c.stats.Fused += k
}

// fusedSlow executes one fused step through its full scalar handler and
// reports whether the fused run may continue: the executor is still
// live, the PC is the fall-through successor, and no store invalidated
// cached slots (which may include this very block's tail).
func (e *Executor) fusedSlow(c *DecodeCache, st *fusedStep, gen uint64) bool {
	if st.fp && !e.CPU.FPEnabled() {
		e.trap(st.inst.Op, hart.CauseIllegalInstruction, st.inst.Raw)
		return false
	}
	// Copy the record: hooks (and, defensively, handlers) must not alias
	// the shared fused block.
	in := st.inst
	if e.Hook != nil {
		e.Hook.OnInst(&in, e.CPU)
	}
	st.fn(e, &in)
	return !e.Halted && e.CPU.PC == st.next && c.gen == gen
}
