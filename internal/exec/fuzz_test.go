package exec

import (
	"bytes"
	"fmt"
	"slices"
	"testing"

	"rvnegtest/internal/hart"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/mem"
)

// The differential harness runs the same bytestream through the classical
// decode loop and the predecoded fast path and demands indistinguishable
// behaviour: identical hart state, trap causes, memory contents, coverage
// edge sequences and decoder panics. The selector byte picks the ISA
// configuration and the decoder/executor quirk set, so quirk-dependent
// decodes (loose masks, reserved RVC, crash patterns) are diffed too.

const fuzzCodeSpan = 0x800 // predecoded window [0, fuzzCodeSpan); covers the trap handler

var fuzzCfgs = []isa.Config{isa.RV32I, isa.RV32IM, isa.RV32IMC, isa.RV32GC}

var fuzzQuirks = []isa.Quirks{
	{}, // reference decoder
	{LooseEcallMask: true, AllowReservedC: true, LooseFunct7: true,
		InvalidBranchFunct3: true, CrashOnPattern: true, CustomAsNOP: true},
	{CrashOnPattern: true},
}

// diffTrace records the per-instruction observation sequence: what the
// coverage hook saw, in order. Any fast/slow divergence in dispatch,
// trap-vs-execute decisions or edge IDs shows up here.
type diffTrace struct {
	events []diffEvent
	edges  []uint32
}

type diffEvent struct {
	pc  uint32
	op  isa.Op
	raw uint32
}

func (tr *diffTrace) OnInst(in *isa.Inst, h *hart.Hart) {
	tr.events = append(tr.events, diffEvent{h.PC, in.Op, in.Raw})
}

func (tr *diffTrace) OnEdge(edge uint32) { tr.edges = append(tr.edges, edge) }

type diffResult struct {
	cpu      hart.Hart
	mem      []byte
	halted   bool
	insts    uint64
	panicked bool
	panicMsg string
	trace    *diffTrace
}

// runDiff executes bs from address 0 with the trap handler of newExec,
// bounded by a step budget, and captures everything observable.
func runDiff(bs []byte, cfg isa.Config, q isa.Quirks, xq Quirks, pre bool) diffResult {
	m := mem.New(0, 0x8000)
	if len(bs) > 0x600 {
		bs = bs[:0x600]
	}
	if err := m.LoadImage(0, bs); err != nil {
		panic(err)
	}
	if err := m.Write32(testHandler, enc(isa.Inst{Op: isa.OpSW, Imm: testHaltAddr})); err != nil {
		panic(err)
	}
	dec := &isa.Decoder{Quirks: q}
	cpu := hart.New(cfg)
	cpu.Mtvec = testHandler
	e := New(cpu, m, dec)
	e.HaltAddr = testHaltAddr
	e.Quirks = xq
	if pre {
		code, err := m.ReadBytes(0, fuzzCodeSpan)
		if err != nil {
			panic(err)
		}
		e.Cache = NewDecodeCache(dec.Predecode(0, code), cfg)
	}
	tr := &diffTrace{}
	e.Hook = tr
	res := diffResult{trace: tr}
	func() {
		defer func() {
			if r := recover(); r != nil {
				res.panicked = true
				res.panicMsg = fmt.Sprint(r)
			}
		}()
		for i := 0; i < 3000 && !e.Halted; i++ {
			e.Step()
		}
	}()
	res.cpu = *cpu
	res.halted = e.Halted
	res.insts = e.InstCount
	res.mem, _ = m.ReadBytes(0, 0x8000)
	return res
}

func diffSeeds(f *testing.F) {
	add := func(sel uint8, words ...uint32) {
		var buf bytes.Buffer
		for _, w := range words {
			buf.Write([]byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)})
		}
		f.Add(sel, buf.Bytes())
	}
	f.Add(uint8(3), []byte(nil))
	// Straight-line ALU + halt.
	add(3,
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: 5}),
		enc(isa.Inst{Op: isa.OpADD, Rd: 2, Rs1: 1, Rs2: 1}),
		enc(isa.Inst{Op: isa.OpSW, Imm: testHaltAddr}))
	// Self-modifying: overwrite the next instruction via x30.
	add(3,
		enc(isa.Inst{Op: isa.OpADDI, Rd: 30, Rs1: 0, Imm: 12}),
		enc(isa.Inst{Op: isa.OpSW, Rs1: 30, Rs2: 1, Imm: 0}),
		0xffffffff,
		enc(isa.Inst{Op: isa.OpSW, Imm: testHaltAddr}))
	// Compressed stream with a reserved encoding (quirk-sensitive).
	f.Add(uint8(2+1*4), []byte{0x01, 0x00, 0x02, 0x40, 0x01, 0x00})
	// Decoder crash patterns: 16-bit (h&0xe403==0x8400) and 32-bit.
	f.Add(uint8(3+1*4), []byte{0x00, 0x84})
	add(3+2*4, 0x0000405b)
	// Illegal 32-bit encoding, then FP and M-extension ops (legality
	// ladder differs per configuration).
	add(0, 0xffffffff)
	add(1, enc(isa.Inst{Op: isa.OpMUL, Rd: 3, Rs1: 1, Rs2: 2}))
	add(3,
		enc(isa.Inst{Op: isa.OpFLW, Rd: 1, Rs1: 0, Imm: 0x200}),
		enc(isa.Inst{Op: isa.OpFADDS, Rd: 2, Rs1: 1, Rs2: 1}))
	// Backward branch loop (exhausts the step budget identically).
	add(3, enc(isa.Inst{Op: isa.OpJAL, Rd: 0, Imm: 0}))
	// Overlapping streams: branch into the middle of a 32-bit encoding.
	add(2,
		enc(isa.Inst{Op: isa.OpBEQ, Rs1: 0, Rs2: 0, Imm: 6}),
		0x8082ffff)
	// ECALL and EBREAK (trap paths + executor quirks).
	add(3+1*4, enc(isa.Inst{Op: isa.OpECALL}), enc(isa.Inst{Op: isa.OpEBREAK}))
	// CSR traffic.
	add(3, enc(isa.Inst{Op: isa.OpCSRRS, Rd: 1, CSR: 0x300}))
}

func FuzzExecPredecodeDifferential(f *testing.F) {
	diffSeeds(f)
	f.Fuzz(func(t *testing.T, sel uint8, bs []byte) {
		cfg := fuzzCfgs[int(sel)&3]
		q := fuzzQuirks[(int(sel)>>2)%len(fuzzQuirks)]
		var xq Quirks
		if sel&0x20 != 0 {
			xq = Quirks{LinkBeforeAlignCheck: true, SCIgnoresReservation: true, EcallMarksCompletion: true}
		}
		slow := runDiff(bs, cfg, q, xq, false)
		fast := runDiff(bs, cfg, q, xq, true)
		if slow.panicked != fast.panicked || slow.panicMsg != fast.panicMsg {
			t.Fatalf("panic diverged on %x: slow (%v, %q) fast (%v, %q)",
				bs, slow.panicked, slow.panicMsg, fast.panicked, fast.panicMsg)
		}
		if slow.cpu != fast.cpu {
			t.Fatalf("hart state diverged on %x:\nslow pc=%#x mcause=%#x mtval=%#x\nfast pc=%#x mcause=%#x mtval=%#x",
				bs, slow.cpu.PC, slow.cpu.Mcause, slow.cpu.Mtval,
				fast.cpu.PC, fast.cpu.Mcause, fast.cpu.Mtval)
		}
		if slow.halted != fast.halted || slow.insts != fast.insts {
			t.Fatalf("termination diverged on %x: slow (halted=%v, n=%d) fast (halted=%v, n=%d)",
				bs, slow.halted, slow.insts, fast.halted, fast.insts)
		}
		if !bytes.Equal(slow.mem, fast.mem) {
			t.Fatalf("memory diverged on %x", bs)
		}
		if !slices.Equal(slow.trace.edges, fast.trace.edges) {
			t.Fatalf("coverage edges diverged on %x:\nslow %v\nfast %v", bs, slow.trace.edges, fast.trace.edges)
		}
		if !slices.Equal(slow.trace.events, fast.trace.events) {
			t.Fatalf("hook events diverged on %x", bs)
		}
	})
}
