package exec

import "fmt"

// DefaultQuantum is the per-lane instruction budget of one lockstep
// round. Large enough that the round-robin overhead vanishes, small
// enough that lanes stay warm in cache together.
const DefaultQuantum = 4096

// LaneStatus is the terminal state of one batch lane after Run.
type LaneStatus struct {
	// Done is set once the lane halted, timed out or panicked; Run skips
	// done lanes in later rounds.
	Done bool
	// Err is nil for a halted lane and ErrTimeout for a lane that
	// exhausted the instruction limit, mirroring Executor.Run.
	Err error
	// Panicked records a panic isolated from the lane's executor (e.g. a
	// seeded decoder-crash defect); PanicMsg carries fmt.Sprint of the
	// recovered value, the same rendering the scalar harness uses.
	Panicked bool
	PanicMsg string
}

// Batch steps N executors in lockstep: each round gives every live lane
// a quantum of instructions, so the lanes march through the shared
// immutable predecode together instead of one lane streaming the whole
// image through the CPU cache alone. Lanes are independent executors
// over cloned state; a panic in one lane is isolated to its status and
// never disturbs the others. The per-round loop allocates nothing — the
// status slice is reused across Run calls.
type Batch struct {
	Lanes []*Executor
	// Quantum overrides DefaultQuantum when > 0.
	Quantum uint64

	status []LaneStatus
}

// Run drives all lanes to completion against a shared instruction
// limit and returns one status per lane. The returned slice is reused
// by the next Run call. Quantum size is invisible in the results: a
// lane's trajectory is identical to a solo Executor.Run(limit).
func (b *Batch) Run(limit uint64) []LaneStatus {
	q := b.Quantum
	if q == 0 {
		q = DefaultQuantum
	}
	if cap(b.status) < len(b.Lanes) {
		b.status = make([]LaneStatus, len(b.Lanes))
	}
	b.status = b.status[:len(b.Lanes)]
	for i := range b.status {
		b.status[i] = LaneStatus{}
	}
	live := len(b.Lanes)
	var target uint64
	for live > 0 {
		if target < limit {
			target += q
			if target > limit {
				target = limit
			}
		}
		for i, e := range b.Lanes {
			st := &b.status[i]
			if st.Done {
				continue
			}
			runLaneQuantum(e, target, limit, st)
			if e.Halted {
				st.Done = true
			} else if !st.Done && e.InstCount >= limit {
				st.Done = true
				st.Err = ErrTimeout
			}
			if st.Done {
				live--
			}
		}
	}
	return b.status
}

// runLaneQuantum steps one lane until it halts or reaches the round's
// instruction target, isolating panics into the lane status. Each
// dispatch gets the TRUE remaining budget (limit, not target): the
// quantum only decides when the round loop yields to the next lane, so
// fused blocks are interrupted at exactly the same points as a solo
// Executor.Run(limit) and every counter — including Fused — matches the
// scalar run. A lane may overshoot the round target by at most one
// fused block; the overshoot never crosses limit.
func runLaneQuantum(e *Executor, target, limit uint64, st *LaneStatus) {
	defer func() {
		if r := recover(); r != nil {
			st.Done = true
			st.Panicked = true
			st.PanicMsg = fmt.Sprint(r)
		}
	}()
	for !e.Halted && e.InstCount < target {
		e.stepBudget(limit - e.InstCount)
	}
}
