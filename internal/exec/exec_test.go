package exec

import (
	"math"
	"testing"

	"rvnegtest/internal/hart"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/mem"
)

const (
	testHaltAddr = 0x100 // sw x0, 0x100(x0) halts the test executor
	testHandler  = 0x700 // trap handler location
)

// enc assembles one instruction via the encoder.
func enc(inst isa.Inst) uint32 { return isa.MustEncode(inst) }

// newExec loads a program at PC 0 with a halting trap handler.
func newExec(cfg isa.Config, words ...uint32) *Executor {
	m := mem.New(0, 0x8000)
	for i, w := range words {
		if err := m.Write32(uint32(i*4), w); err != nil {
			panic(err)
		}
	}
	// Trap handler: sw x0, testHaltAddr(x0) -> halt.
	if err := m.Write32(testHandler, enc(isa.Inst{Op: isa.OpSW, Imm: testHaltAddr})); err != nil {
		panic(err)
	}
	cpu := hart.New(cfg)
	cpu.Mtvec = testHandler
	e := New(cpu, m, isa.Ref)
	e.HaltAddr = testHaltAddr
	return e
}

func step(t *testing.T, e *Executor, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		e.Step()
	}
}

func TestBasicArithmetic(t *testing.T) {
	e := newExec(isa.RV32I,
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: 5}),
		enc(isa.Inst{Op: isa.OpADDI, Rd: 2, Imm: -3}),
		enc(isa.Inst{Op: isa.OpADD, Rd: 3, Rs1: 1, Rs2: 2}),
		enc(isa.Inst{Op: isa.OpSUB, Rd: 4, Rs1: 1, Rs2: 2}),
		enc(isa.Inst{Op: isa.OpSLT, Rd: 5, Rs1: 2, Rs2: 1}),
		enc(isa.Inst{Op: isa.OpSLTU, Rd: 6, Rs1: 2, Rs2: 1}),
		enc(isa.Inst{Op: isa.OpXOR, Rd: 7, Rs1: 1, Rs2: 2}),
		enc(isa.Inst{Op: isa.OpSRAI, Rd: 8, Rs1: 2, Imm: 1}),
		enc(isa.Inst{Op: isa.OpSRLI, Rd: 9, Rs1: 2, Imm: 1}),
	)
	step(t, e, 9)
	want := map[isa.Reg]uint32{
		1: 5, 2: 0xfffffffd, 3: 2, 4: 8, 5: 1, 6: 0,
		7: 5 ^ 0xfffffffd, 8: 0xfffffffe, 9: 0x7ffffffe,
	}
	for r, v := range want {
		if got := e.CPU.ReadX(r); got != v {
			t.Errorf("x%d = %#x, want %#x", r, got, v)
		}
	}
	if e.CPU.PC != 36 {
		t.Errorf("PC = %d", e.CPU.PC)
	}
	if e.CPU.Minstret != 9 {
		t.Errorf("minstret = %d", e.CPU.Minstret)
	}
}

func TestX0IsHardwired(t *testing.T) {
	e := newExec(isa.RV32I,
		enc(isa.Inst{Op: isa.OpADDI, Rd: 0, Imm: 42}),
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 0, Imm: 1}),
	)
	step(t, e, 2)
	if e.CPU.ReadX(0) != 0 || e.CPU.ReadX(1) != 1 {
		t.Errorf("x0 = %d, x1 = %d", e.CPU.ReadX(0), e.CPU.ReadX(1))
	}
}

func TestMulDivEdgeCases(t *testing.T) {
	e := newExec(isa.RV32IM,
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: -1}),         // x1 = -1
		enc(isa.Inst{Op: isa.OpLUI, Rd: 2, Imm: -2147483648}), // x2 = MinInt32
		enc(isa.Inst{Op: isa.OpDIV, Rd: 3, Rs1: 2, Rs2: 1}),   // overflow
		enc(isa.Inst{Op: isa.OpDIV, Rd: 4, Rs1: 1, Rs2: 0}),   // div by zero
		enc(isa.Inst{Op: isa.OpREM, Rd: 5, Rs1: 2, Rs2: 1}),   // overflow rem
		enc(isa.Inst{Op: isa.OpREM, Rd: 6, Rs1: 1, Rs2: 0}),   // rem by zero
		enc(isa.Inst{Op: isa.OpDIVU, Rd: 7, Rs1: 1, Rs2: 0}),
		enc(isa.Inst{Op: isa.OpREMU, Rd: 8, Rs1: 1, Rs2: 0}),
		enc(isa.Inst{Op: isa.OpMULH, Rd: 9, Rs1: 1, Rs2: 1}),
		enc(isa.Inst{Op: isa.OpMULHU, Rd: 10, Rs1: 1, Rs2: 1}),
		enc(isa.Inst{Op: isa.OpMULHSU, Rd: 11, Rs1: 1, Rs2: 1}),
	)
	step(t, e, 11)
	checks := map[isa.Reg]uint32{
		3:  0x80000000,
		4:  0xffffffff,
		5:  0,
		6:  0xffffffff,
		7:  0xffffffff,
		8:  0xffffffff,
		9:  0,          // (-1)*(-1) high = 0
		10: 0xfffffffe, // 0xffffffff^2 high
		11: 0xffffffff, // -1 * unsigned max, high
	}
	for r, v := range checks {
		if got := e.CPU.ReadX(r); got != v {
			t.Errorf("x%d = %#x, want %#x", r, got, v)
		}
	}
}

func TestLoadsAndStores(t *testing.T) {
	e := newExec(isa.RV32I,
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: 0x200}),
		enc(isa.Inst{Op: isa.OpLUI, Rd: 2, Imm: int32(0xdeadb000 - 1<<32)}),
		enc(isa.Inst{Op: isa.OpADDI, Rd: 2, Rs1: 2, Imm: 0x6ef}),
		enc(isa.Inst{Op: isa.OpSW, Rs1: 1, Rs2: 2, Imm: 0}),
		enc(isa.Inst{Op: isa.OpLW, Rd: 3, Rs1: 1, Imm: 0}),
		enc(isa.Inst{Op: isa.OpLH, Rd: 4, Rs1: 1, Imm: 0}),
		enc(isa.Inst{Op: isa.OpLHU, Rd: 5, Rs1: 1, Imm: 0}),
		enc(isa.Inst{Op: isa.OpLB, Rd: 6, Rs1: 1, Imm: 1}),
		enc(isa.Inst{Op: isa.OpLBU, Rd: 7, Rs1: 1, Imm: 1}),
		enc(isa.Inst{Op: isa.OpSB, Rs1: 1, Rs2: 0, Imm: 3}),
		enc(isa.Inst{Op: isa.OpLW, Rd: 8, Rs1: 1, Imm: 0}),
	)
	step(t, e, 11)
	checks := map[isa.Reg]uint32{
		3: 0xdeadb6ef,
		4: 0xffffb6ef,
		5: 0x0000b6ef,
		6: 0xffffffb6,
		7: 0x000000b6,
		8: 0x00adb6ef,
	}
	for r, v := range checks {
		if got := e.CPU.ReadX(r); got != v {
			t.Errorf("x%d = %#x, want %#x", r, got, v)
		}
	}
}

func TestBranchesAndJumps(t *testing.T) {
	e := newExec(isa.RV32I,
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: 1}),         // 0
		enc(isa.Inst{Op: isa.OpBEQ, Rs1: 1, Rs2: 0, Imm: 8}), // 4: not taken
		enc(isa.Inst{Op: isa.OpBNE, Rs1: 1, Rs2: 0, Imm: 8}), // 8: taken -> 16
		enc(isa.Inst{Op: isa.OpADDI, Rd: 2, Imm: 99}),        // 12: skipped
		enc(isa.Inst{Op: isa.OpJAL, Rd: 3, Imm: 8}),          // 16: jump to 24, x3=20
		enc(isa.Inst{Op: isa.OpADDI, Rd: 4, Imm: 99}),        // 20: skipped
		enc(isa.Inst{Op: isa.OpADDI, Rd: 5, Imm: 7}),         // 24
	)
	step(t, e, 5)
	if e.CPU.ReadX(2) != 0 || e.CPU.ReadX(4) != 0 {
		t.Error("skipped instructions executed")
	}
	if e.CPU.ReadX(3) != 20 {
		t.Errorf("link = %d, want 20", e.CPU.ReadX(3))
	}
	if e.CPU.ReadX(5) != 7 || e.CPU.PC != 28 {
		t.Errorf("x5=%d pc=%d", e.CPU.ReadX(5), e.CPU.PC)
	}
}

func TestJALRClearsBitZero(t *testing.T) {
	e := newExec(isa.RV32I,
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: 9}), // odd target base
		enc(isa.Inst{Op: isa.OpJALR, Rd: 2, Rs1: 1, Imm: 0}),
		enc(isa.Inst{Op: isa.OpADDI, Rd: 3, Imm: 3}), // at 8: reached via target 8 (9&^1=8)
	)
	step(t, e, 3)
	if e.CPU.ReadX(3) != 3 {
		t.Errorf("JALR did not clear bit 0: pc=%d", e.CPU.PC)
	}
	if e.CPU.ReadX(2) != 8 {
		t.Errorf("link = %d", e.CPU.ReadX(2))
	}
}

func TestMisalignedJumpTrap(t *testing.T) {
	// JAL to a 2-aligned (not 4-aligned) target without C: trap, and the
	// link register must NOT be written.
	e := newExec(isa.RV32I,
		enc(isa.Inst{Op: isa.OpJAL, Rd: 1, Imm: 6}),
	)
	e.Step()
	if e.CPU.PC != testHandler {
		t.Fatalf("pc = %#x, want handler", e.CPU.PC)
	}
	if e.CPU.Mcause != hart.CauseMisalignedFetch || e.CPU.Mtval != 6 || e.CPU.Mepc != 0 {
		t.Errorf("mcause=%d mtval=%d mepc=%d", e.CPU.Mcause, e.CPU.Mtval, e.CPU.Mepc)
	}
	if e.CPU.ReadX(1) != 0 {
		t.Error("link written on misaligned jump (reference must not)")
	}

	// GRIFT quirk: the link register IS written.
	g := newExec(isa.RV32I, enc(isa.Inst{Op: isa.OpJAL, Rd: 1, Imm: 6}))
	g.Quirks.LinkBeforeAlignCheck = true
	g.Step()
	if g.CPU.ReadX(1) != 4 {
		t.Errorf("GRIFT quirk: link = %d, want 4", g.CPU.ReadX(1))
	}
	if g.CPU.PC != testHandler {
		t.Error("GRIFT quirk: trap still expected")
	}

	// With C enabled the same jump is legal.
	c := newExec(isa.RV32IMC, enc(isa.Inst{Op: isa.OpJAL, Rd: 1, Imm: 6}))
	c.Step()
	if c.CPU.PC != 6 || c.CPU.ReadX(1) != 4 {
		t.Errorf("C-enabled: pc=%d link=%d", c.CPU.PC, c.CPU.ReadX(1))
	}
}

func TestIllegalInstructionTrap(t *testing.T) {
	e := newExec(isa.RV32I, 0xffffffff)
	e.Step()
	if e.CPU.PC != testHandler || e.CPU.Mcause != hart.CauseIllegalInstruction || e.CPU.Mtval != 0xffffffff {
		t.Errorf("pc=%#x mcause=%d mtval=%#x", e.CPU.PC, e.CPU.Mcause, e.CPU.Mtval)
	}
	// The handler halts via the magic store.
	e.Step()
	if !e.Halted {
		t.Error("handler store did not halt")
	}
}

func TestExtensionGating(t *testing.T) {
	mul := enc(isa.Inst{Op: isa.OpMUL, Rd: 1, Rs1: 2, Rs2: 3})
	e := newExec(isa.RV32I, mul)
	e.Step()
	if e.CPU.Mcause != hart.CauseIllegalInstruction {
		t.Error("MUL must trap on RV32I")
	}
	e2 := newExec(isa.RV32IM, mul)
	e2.Step()
	if e2.CPU.PC != 4 {
		t.Error("MUL must execute on RV32IM")
	}
	// FP instructions trap without F.
	fadd := enc(isa.Inst{Op: isa.OpFADDS, Rd: 1, Rs1: 2, Rs2: 3})
	e3 := newExec(isa.RV32IMC, fadd)
	e3.Step()
	if e3.CPU.Mcause != hart.CauseIllegalInstruction {
		t.Error("FADD.S must trap on RV32IMC")
	}
	// Atomics trap without A.
	lr := enc(isa.Inst{Op: isa.OpLRW, Rd: 1, Rs1: 2})
	e4 := newExec(isa.RV32IMC, lr)
	e4.Step()
	if e4.CPU.Mcause != hart.CauseIllegalInstruction {
		t.Error("LR.W must trap on RV32IMC")
	}
}

func TestCompressedGating(t *testing.T) {
	// c.addi a0, -1 = 0x157d; on RV32I it must trap (not a 32-bit fetch).
	m := mem.New(0, 0x8000)
	_ = m.Write16(0, 0x157d)
	cpu := hart.New(isa.RV32I)
	cpu.Mtvec = testHandler
	e := New(cpu, m, isa.Ref)
	e.Step()
	if cpu.Mcause != hart.CauseIllegalInstruction {
		t.Error("compressed must be illegal on RV32I")
	}
	// On RV32IMC it executes.
	m2 := mem.New(0, 0x8000)
	_ = m2.Write16(0, 0x157d)
	cpu2 := hart.New(isa.RV32IMC)
	cpu2.X[10] = 5
	e2 := New(cpu2, m2, isa.Ref)
	e2.Step()
	if cpu2.ReadX(10) != 4 || cpu2.PC != 2 {
		t.Errorf("c.addi: a0=%d pc=%d", cpu2.ReadX(10), cpu2.PC)
	}
}

func TestEcallAndQuirk(t *testing.T) {
	prog := []uint32{enc(isa.Inst{Op: isa.OpECALL})}
	e := newExec(isa.RV32I, prog...)
	e.CPU.X[26] = 7
	e.Step()
	if e.CPU.Mcause != hart.CauseECallM || e.CPU.PC != testHandler {
		t.Errorf("mcause=%d pc=%#x", e.CPU.Mcause, e.CPU.PC)
	}
	if e.CPU.X[26] != 7 {
		t.Error("reference ECALL must not touch x26")
	}
	s := newExec(isa.RV32I, prog...)
	s.Quirks.EcallMarksCompletion = true
	s.CPU.X[26] = 7
	s.Step()
	if s.CPU.X[26] != 8 {
		t.Error("Spike quirk must increment x26 on ECALL")
	}
}

func TestLRSCSemantics(t *testing.T) {
	prog := []uint32{
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: 0x200}),
		enc(isa.Inst{Op: isa.OpADDI, Rd: 2, Imm: 77}),
		enc(isa.Inst{Op: isa.OpLRW, Rd: 3, Rs1: 1}),
		enc(isa.Inst{Op: isa.OpSCW, Rd: 4, Rs1: 1, Rs2: 2}), // paired: succeeds
		enc(isa.Inst{Op: isa.OpSCW, Rd: 5, Rs1: 1, Rs2: 0}), // reservation gone: fails
	}
	e := newExec(isa.RV32GC, prog...)
	step(t, e, 5)
	if e.CPU.ReadX(4) != 0 {
		t.Errorf("paired SC rd = %d, want 0 (success)", e.CPU.ReadX(4))
	}
	if e.CPU.ReadX(5) != 1 {
		t.Errorf("unpaired SC rd = %d, want 1 (failure)", e.CPU.ReadX(5))
	}
	if v, _ := e.Mem.Read32(0x200); v != 77 {
		t.Errorf("memory after SC = %d", v)
	}

	// GRIFT quirk: SC.W without reservation succeeds and writes memory.
	g := newExec(isa.RV32GC,
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: 0x200}),
		enc(isa.Inst{Op: isa.OpADDI, Rd: 2, Imm: 55}),
		enc(isa.Inst{Op: isa.OpSCW, Rd: 4, Rs1: 1, Rs2: 2}),
	)
	g.Quirks.SCIgnoresReservation = true
	step(t, g, 3)
	if g.CPU.ReadX(4) != 0 {
		t.Errorf("GRIFT SC rd = %d, want 0", g.CPU.ReadX(4))
	}
	if v, _ := g.Mem.Read32(0x200); v != 55 {
		t.Errorf("GRIFT SC memory = %d, want 55", v)
	}
	// Reference without reservation must not write.
	r := newExec(isa.RV32GC,
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: 0x200}),
		enc(isa.Inst{Op: isa.OpADDI, Rd: 2, Imm: 55}),
		enc(isa.Inst{Op: isa.OpSCW, Rd: 4, Rs1: 1, Rs2: 2}),
	)
	step(t, r, 3)
	if r.CPU.ReadX(4) != 1 {
		t.Errorf("reference unpaired SC rd = %d, want 1", r.CPU.ReadX(4))
	}
	if v, _ := r.Mem.Read32(0x200); v != 0 {
		t.Errorf("reference unpaired SC wrote memory: %d", v)
	}
}

func TestAMOs(t *testing.T) {
	cases := []struct {
		op   isa.Op
		init uint32
		src  uint32
		want uint32
	}{
		{isa.OpAMOSWAPW, 10, 3, 3},
		{isa.OpAMOADDW, 10, 3, 13},
		{isa.OpAMOXORW, 0xf0, 0x0f, 0xff},
		{isa.OpAMOANDW, 0xf0, 0x30, 0x30},
		{isa.OpAMOORW, 0xf0, 0x0f, 0xff},
		{isa.OpAMOMINW, 10, 0xfffffffe, 0xfffffffe}, // signed min(10, -2)
		{isa.OpAMOMAXW, 10, 0xfffffffe, 10},
		{isa.OpAMOMINUW, 10, 0xfffffffe, 10},
		{isa.OpAMOMAXUW, 10, 0xfffffffe, 0xfffffffe},
	}
	for _, c := range cases {
		e := newExec(isa.RV32GC,
			enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: 0x200}),
			enc(isa.Inst{Op: c.op, Rd: 2, Rs1: 1, Rs2: 3}),
		)
		e.CPU.X[3] = c.src
		_ = e.Mem.Write32(0x200, c.init)
		step(t, e, 2)
		if got := e.CPU.ReadX(2); got != c.init {
			t.Errorf("%v: rd = %#x, want old value %#x", c.op, got, c.init)
		}
		if got, _ := e.Mem.Read32(0x200); got != c.want {
			t.Errorf("%v: mem = %#x, want %#x", c.op, got, c.want)
		}
	}
	// Misaligned AMO always traps.
	e := newExec(isa.RV32GC,
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: 0x201}),
		enc(isa.Inst{Op: isa.OpAMOADDW, Rd: 2, Rs1: 1, Rs2: 3}),
	)
	step(t, e, 2)
	if e.CPU.Mcause != hart.CauseMisalignedStore {
		t.Errorf("misaligned AMO mcause = %d", e.CPU.Mcause)
	}
}

func TestCSRInstructions(t *testing.T) {
	e := newExec(isa.RV32I,
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: 0x123}),
		enc(isa.Inst{Op: isa.OpCSRRW, Rd: 2, Rs1: 1, CSR: hart.CSRMscratch}),
		enc(isa.Inst{Op: isa.OpCSRRS, Rd: 3, Rs1: 0, CSR: hart.CSRMscratch}), // read only
		enc(isa.Inst{Op: isa.OpCSRRSI, Rd: 4, Imm: 0xc, CSR: hart.CSRMscratch}),
		enc(isa.Inst{Op: isa.OpCSRRC, Rd: 5, Rs1: 1, CSR: hart.CSRMscratch}),
		enc(isa.Inst{Op: isa.OpCSRRS, Rd: 6, Rs1: 0, CSR: hart.CSRMhartid}),
	)
	step(t, e, 6)
	if e.CPU.ReadX(2) != 0 || e.CPU.ReadX(3) != 0x123 || e.CPU.ReadX(4) != 0x123 {
		t.Errorf("csrrw/s results: %#x %#x %#x", e.CPU.ReadX(2), e.CPU.ReadX(3), e.CPU.ReadX(4))
	}
	if e.CPU.ReadX(5) != 0x12f {
		t.Errorf("csrrsi result: %#x", e.CPU.ReadX(5))
	}
	if e.CPU.Mscratch != 0x12f&^0x123 {
		t.Errorf("mscratch after csrrc: %#x", e.CPU.Mscratch)
	}

	// Write to a read-only CSR is illegal.
	e2 := newExec(isa.RV32I, enc(isa.Inst{Op: isa.OpCSRRW, Rd: 0, Rs1: 1, CSR: hart.CSRMhartid}))
	e2.Step()
	if e2.CPU.Mcause != hart.CauseIllegalInstruction {
		t.Error("write to read-only CSR must trap")
	}
	// CSRRS with rs1=x0 to a read-only CSR is a pure read: legal.
	e3 := newExec(isa.RV32I, enc(isa.Inst{Op: isa.OpCSRRS, Rd: 1, Rs1: 0, CSR: hart.CSRMhartid}))
	e3.Step()
	if e3.CPU.PC != 4 {
		t.Error("pure read of read-only CSR must be legal")
	}
	// Nonexistent CSR traps.
	e4 := newExec(isa.RV32I, enc(isa.Inst{Op: isa.OpCSRRS, Rd: 1, Rs1: 0, CSR: 0x123}))
	e4.Step()
	if e4.CPU.Mcause != hart.CauseIllegalInstruction {
		t.Error("nonexistent CSR must trap")
	}
	// FP CSRs are illegal without FP.
	e5 := newExec(isa.RV32I, enc(isa.Inst{Op: isa.OpCSRRS, Rd: 1, Rs1: 0, CSR: hart.CSRFcsr}))
	e5.Step()
	if e5.CPU.Mcause != hart.CauseIllegalInstruction {
		t.Error("fcsr without F must trap")
	}
}

func TestMRETRoundTrip(t *testing.T) {
	e := newExec(isa.RV32I,
		0xffffffff, // illegal -> handler
		enc(isa.Inst{Op: isa.OpADDI, Rd: 9, Imm: 9}), // 4: resumed here
	)
	// Handler: csrr x1, mepc; addi x1, x1, 4; csrw mepc, x1; mret.
	_ = e.Mem.Write32(testHandler+0, enc(isa.Inst{Op: isa.OpCSRRS, Rd: 1, Rs1: 0, CSR: hart.CSRMepc}))
	_ = e.Mem.Write32(testHandler+4, enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 1, Imm: 4}))
	_ = e.Mem.Write32(testHandler+8, enc(isa.Inst{Op: isa.OpCSRRW, Rd: 0, Rs1: 1, CSR: hart.CSRMepc}))
	_ = e.Mem.Write32(testHandler+12, enc(isa.Inst{Op: isa.OpMRET}))
	step(t, e, 6)
	if e.CPU.ReadX(9) != 9 || e.CPU.PC != 8 {
		t.Errorf("mret resume failed: x9=%d pc=%d", e.CPU.ReadX(9), e.CPU.PC)
	}
}

func TestUnalignedDataPolicy(t *testing.T) {
	prog := []uint32{
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: 0x201}),
		enc(isa.Inst{Op: isa.OpLW, Rd: 2, Rs1: 1, Imm: 0}),
	}
	soft := newExec(isa.RV32I, prog...)
	_ = soft.Mem.Write32(0x200, 0x11223344)
	_ = soft.Mem.Write32(0x204, 0x55667788)
	step(t, soft, 2)
	if soft.CPU.ReadX(2) != 0x88112233 {
		t.Errorf("unaligned load = %#x", soft.CPU.ReadX(2))
	}
	trap := newExec(isa.RV32I, prog...)
	trap.TrapUnaligned = true
	step(t, trap, 2)
	if trap.CPU.Mcause != hart.CauseMisalignedLoad || trap.CPU.Mtval != 0x201 {
		t.Errorf("trap policy: mcause=%d mtval=%#x", trap.CPU.Mcause, trap.CPU.Mtval)
	}
}

func TestAccessFaults(t *testing.T) {
	e := newExec(isa.RV32I,
		enc(isa.Inst{Op: isa.OpLUI, Rd: 1, Imm: 0x10000000}), // x1 = out of range
		enc(isa.Inst{Op: isa.OpLW, Rd: 2, Rs1: 1, Imm: 0}),
	)
	step(t, e, 2)
	if e.CPU.Mcause != hart.CauseLoadAccessFault {
		t.Errorf("load fault mcause = %d", e.CPU.Mcause)
	}
	e2 := newExec(isa.RV32I,
		enc(isa.Inst{Op: isa.OpLUI, Rd: 1, Imm: 0x10000000}),
		enc(isa.Inst{Op: isa.OpSW, Rs1: 1, Rs2: 0, Imm: 0}),
	)
	step(t, e2, 2)
	if e2.CPU.Mcause != hart.CauseStoreAccessFault {
		t.Errorf("store fault mcause = %d", e2.CPU.Mcause)
	}
	// Fetch outside memory.
	e3 := newExec(isa.RV32I, enc(isa.Inst{Op: isa.OpJALR, Rd: 0, Rs1: 1, Imm: 0}))
	e3.CPU.X[1] = 0x40000000
	e3.Step()
	e3.Step()
	if e3.CPU.Mcause != hart.CauseFetchAccessFault {
		t.Errorf("fetch fault mcause = %d", e3.CPU.Mcause)
	}
}

func TestFPBasics(t *testing.T) {
	f := func(v float32) uint32 { return math.Float32bits(v) }
	e := newExec(isa.RV32GC,
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: 0x200}),
		enc(isa.Inst{Op: isa.OpFLW, Rd: 2, Rs1: 1, Imm: 0}),
		enc(isa.Inst{Op: isa.OpFLW, Rd: 3, Rs1: 1, Imm: 4}),
		enc(isa.Inst{Op: isa.OpFADDS, Rd: 4, Rs1: 2, Rs2: 3, RM: 0}),
		enc(isa.Inst{Op: isa.OpFSW, Rs1: 1, Rs2: 4, Imm: 8}),
		enc(isa.Inst{Op: isa.OpFMVXW, Rd: 5, Rs1: 4}),
		enc(isa.Inst{Op: isa.OpFCVTWS, Rd: 6, Rs1: 4, RM: 0}),
		enc(isa.Inst{Op: isa.OpFLES, Rd: 7, Rs1: 2, Rs2: 3}),
	)
	_ = e.Mem.Write32(0x200, f(1.5))
	_ = e.Mem.Write32(0x204, f(2.25))
	step(t, e, 8)
	if got, _ := e.Mem.Read32(0x208); got != f(3.75) {
		t.Errorf("fsw result = %#x", got)
	}
	if e.CPU.ReadX(5) != f(3.75) {
		t.Errorf("fmv.x.w = %#x", e.CPU.ReadX(5))
	}
	if e.CPU.ReadX(6) != 4 { // 3.75 RNE -> 4
		t.Errorf("fcvt.w.s = %d", e.CPU.ReadX(6))
	}
	if e.CPU.ReadX(7) != 1 {
		t.Errorf("fle = %d", e.CPU.ReadX(7))
	}
	// NaN boxing: the f register must hold the boxed value.
	if e.CPU.F[4]>>32 != 0xffffffff {
		t.Errorf("f4 not NaN-boxed: %#x", e.CPU.F[4])
	}
	if e.CPU.Fflags == 0 {
		// 3.75 is exact; fcvt is exact; no flags expected. This checks we
		// don't spuriously set flags.
	}
}

func TestFPReservedRoundingMode(t *testing.T) {
	// Static rm=5 is reserved: illegal instruction.
	e := newExec(isa.RV32GC, enc(isa.Inst{Op: isa.OpFADDS, Rd: 1, Rs1: 2, Rs2: 3, RM: 5}))
	e.Step()
	if e.CPU.Mcause != hart.CauseIllegalInstruction {
		t.Error("rm=5 must be illegal")
	}
	// Dynamic rm with frm set to an invalid value: illegal.
	e2 := newExec(isa.RV32GC, enc(isa.Inst{Op: isa.OpFADDS, Rd: 1, Rs1: 2, Rs2: 3, RM: 7}))
	e2.CPU.Frm = 6
	e2.Step()
	if e2.CPU.Mcause != hart.CauseIllegalInstruction {
		t.Error("dynamic rm with frm=6 must be illegal")
	}
	// Dynamic rm with a valid frm executes.
	e3 := newExec(isa.RV32GC, enc(isa.Inst{Op: isa.OpFADDS, Rd: 1, Rs1: 2, Rs2: 3, RM: 7}))
	e3.CPU.Frm = 1
	e3.Step()
	if e3.CPU.PC != 4 {
		t.Error("dynamic rm with frm=1 must execute")
	}
}

func TestFPDisabledByMstatusFS(t *testing.T) {
	e := newExec(isa.RV32GC, enc(isa.Inst{Op: isa.OpFADDS, Rd: 1, Rs1: 2, Rs2: 3}))
	e.CPU.Mstatus &^= hart.MstatusFS // FS = Off
	e.Step()
	if e.CPU.Mcause != hart.CauseIllegalInstruction {
		t.Error("FP with FS=Off must trap")
	}
}

func TestDoublePrecisionAndBoxing(t *testing.T) {
	d := func(v float64) uint64 { return math.Float64bits(v) }
	e := newExec(isa.RV32GC,
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: 0x200}),
		enc(isa.Inst{Op: isa.OpFLD, Rd: 2, Rs1: 1, Imm: 0}),
		enc(isa.Inst{Op: isa.OpFLD, Rd: 3, Rs1: 1, Imm: 8}),
		enc(isa.Inst{Op: isa.OpFMULD, Rd: 4, Rs1: 2, Rs2: 3, RM: 0}),
		enc(isa.Inst{Op: isa.OpFSD, Rs1: 1, Rs2: 4, Imm: 16}),
		// Reading the double register as single must observe NaN
		// (improper boxing).
		enc(isa.Inst{Op: isa.OpFADDS, Rd: 5, Rs1: 4, Rs2: 4, RM: 0}),
		enc(isa.Inst{Op: isa.OpFSW, Rs1: 1, Rs2: 5, Imm: 24}),
	)
	_ = e.Mem.Write64(0x200, d(2.5))
	_ = e.Mem.Write64(0x208, d(4))
	step(t, e, 7)
	if got, _ := e.Mem.Read64(0x210); got != d(10) {
		t.Errorf("fmul.d result = %#x", got)
	}
	if got, _ := e.Mem.Read32(0x218); got != 0x7fc00000 {
		t.Errorf("unboxed read must be canonical NaN, got %#x", got)
	}
}

func TestHaltStore(t *testing.T) {
	e := newExec(isa.RV32I,
		enc(isa.Inst{Op: isa.OpSW, Rs1: 0, Rs2: 0, Imm: testHaltAddr}),
	)
	if err := e.Run(10); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !e.Halted || e.InstCount != 1 {
		t.Errorf("halted=%v count=%d", e.Halted, e.InstCount)
	}
}

func TestRunTimeout(t *testing.T) {
	// jal x0, 0: tight infinite loop.
	e := newExec(isa.RV32I, enc(isa.Inst{Op: isa.OpJAL, Rd: 0, Imm: 0}))
	if err := e.Run(100); err != ErrTimeout {
		t.Fatalf("Run = %v, want timeout", err)
	}
	if e.InstCount < 100 {
		t.Errorf("count = %d", e.InstCount)
	}
}

// edgeRecorder counts hook invocations.
type edgeRecorder struct {
	edges map[uint32]int
	insts int
}

func (r *edgeRecorder) OnInst(*isa.Inst, *hart.Hart) { r.insts++ }
func (r *edgeRecorder) OnEdge(e uint32)              { r.edges[e]++ }

func TestCoverageHook(t *testing.T) {
	e := newExec(isa.RV32I,
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: 1}),
		enc(isa.Inst{Op: isa.OpBEQ, Rs1: 1, Rs2: 0, Imm: 8}), // not taken
		enc(isa.Inst{Op: isa.OpBEQ, Rs1: 0, Rs2: 0, Imm: 8}), // taken
		0, 0,
		0xffffffff, // at 16: illegal
	)
	rec := &edgeRecorder{edges: map[uint32]int{}}
	e.Hook = rec
	step(t, e, 4)
	if rec.insts != 3 { // illegal never reaches OnInst
		t.Errorf("OnInst count = %d, want 3", rec.insts)
	}
	check := func(op isa.Op, kind uint32) {
		if rec.edges[uint32(op)*8+kind] == 0 {
			t.Errorf("edge (%v, %d) not recorded", op, kind)
		}
	}
	check(isa.OpADDI, EdgeRetire)
	check(isa.OpBEQ, EdgeBranchNot)
	check(isa.OpBEQ, EdgeBranchTaken)
	check(isa.OpIllegal, EdgeTrapIllegal)
	if len(rec.edges) != 4 {
		t.Errorf("edges = %v", rec.edges)
	}
}

func TestSailQuirkNonTermination(t *testing.T) {
	// An invalid branch word (funct3=2) with a negative offset: under the
	// sail quirk it decodes as a backward BEQ with equal operands and
	// loops forever; the reference traps to the handler and halts.
	w := enc(isa.Inst{Op: isa.OpBEQ, Rs1: 0, Rs2: 0, Imm: 0})
	w = w&^(uint32(7)<<12) | 2<<12
	run := func(q isa.Quirks) error {
		m := mem.New(0, 0x8000)
		_ = m.Write32(0, w)
		_ = m.Write32(testHandler, enc(isa.Inst{Op: isa.OpSW, Imm: testHaltAddr}))
		cpu := hart.New(isa.RV32I)
		cpu.Mtvec = testHandler
		e := New(cpu, m, &isa.Decoder{Quirks: q})
		e.HaltAddr = testHaltAddr
		return e.Run(1000)
	}
	if err := run(isa.Quirks{}); err != nil {
		t.Errorf("reference: %v", err)
	}
	if err := run(isa.Quirks{InvalidBranchFunct3: true}); err != ErrTimeout {
		t.Errorf("sail quirk: %v, want timeout", err)
	}
}
