package exec

import (
	"testing"

	"rvnegtest/internal/isa"
	"rvnegtest/internal/mem"
)

// attachCache predecodes the executor's low memory (the test code window)
// and attaches the resulting cache. Call after all memory pokes so the
// predecode sees the final image, like sim.New does.
func attachCache(e *Executor, cfg isa.Config) *DecodeCache {
	code, err := e.Mem.ReadBytes(0, fuzzCodeSpan)
	if err != nil {
		panic(err)
	}
	e.Cache = NewDecodeCache(e.Dec.Predecode(0, code), cfg)
	return e.Cache
}

// runCompare executes the same program with and without the decode cache
// and fails on any divergence in hart state or termination. It returns
// the cached executor for stats assertions.
func runCompare(t *testing.T, cfg isa.Config, steps int, poke func(m *mem.Memory), words ...uint32) *Executor {
	t.Helper()
	mk := func(pre bool) *Executor {
		e := newExec(cfg, words...)
		if poke != nil {
			poke(e.Mem)
		}
		if pre {
			attachCache(e, cfg)
		}
		for i := 0; i < steps && !e.Halted; i++ {
			e.Step()
		}
		return e
	}
	slow, fast := mk(false), mk(true)
	if *slow.CPU != *fast.CPU {
		t.Fatalf("hart state diverged:\nslow pc=%#x mcause=%#x x5=%d\nfast pc=%#x mcause=%#x x5=%d",
			slow.CPU.PC, slow.CPU.Mcause, slow.CPU.ReadX(5),
			fast.CPU.PC, fast.CPU.Mcause, fast.CPU.ReadX(5))
	}
	if slow.Halted != fast.Halted || slow.InstCount != fast.InstCount {
		t.Fatalf("termination diverged: slow (halted=%v, n=%d) fast (halted=%v, n=%d)",
			slow.Halted, slow.InstCount, fast.Halted, fast.InstCount)
	}
	return fast
}

// TestSelfModifyingStoreInvalidates is the headline self-modifying-stream
// regression: a wild store through x30 (and x31) overwrites a predecoded
// illegal slot with a live instruction, which must be invalidated,
// re-decoded on the next fetch and then executed.
func TestSelfModifyingStoreInvalidates(t *testing.T) {
	for _, base := range []isa.Reg{30, 31} {
		e := runCompare(t, isa.RV32I, 100,
			func(m *mem.Memory) {
				// The replacement instruction, fetched from the data area.
				if err := m.Write32(0x200, enc(isa.Inst{Op: isa.OpADDI, Rd: 2, Imm: 99})); err != nil {
					t.Fatal(err)
				}
			},
			enc(isa.Inst{Op: isa.OpADDI, Rd: base, Imm: 20}),
			enc(isa.Inst{Op: isa.OpLW, Rd: 1, Imm: 0x200}),
			enc(isa.Inst{Op: isa.OpSW, Rs1: base, Rs2: 1}),
			enc(isa.Inst{Op: isa.OpADDI}), // nop
			enc(isa.Inst{Op: isa.OpADDI}), // nop
			0xffffffff,                    // at 20: overwritten before it is fetched
			enc(isa.Inst{Op: isa.OpSW, Imm: testHaltAddr}),
		)
		if got := e.CPU.ReadX(2); got != 99 {
			t.Errorf("base x%d: x2 = %d, want 99 (stale predecoded slot executed?)", base, got)
		}
		if !e.Halted {
			t.Errorf("base x%d: did not halt", base)
		}
		st := e.Cache.Stats()
		if st.Invalidations != 1 {
			t.Errorf("base x%d: invalidations = %d, want 1", base, st.Invalidations)
		}
		if st.Misses != 1 {
			t.Errorf("base x%d: misses = %d, want 1 (the re-decode of the patched slot)", base, st.Misses)
		}
		if st.Hits < 5 {
			t.Errorf("base x%d: hits = %d, want >= 5", base, st.Hits)
		}
	}
}

// TestSelfModifyingHalfwordStraddle patches only the upper halfword of a
// 32-bit instruction (a 16-bit store into the middle of a 4-byte slot):
// the invalidation must reach back to the instruction's start so the next
// fetch sees the stitched encoding.
func TestSelfModifyingHalfwordStraddle(t *testing.T) {
	want := enc(isa.Inst{Op: isa.OpADDI, Rd: 5, Imm: 42})
	e := runCompare(t, isa.RV32I, 100,
		func(m *mem.Memory) {
			// Only the upper half of the target encoding (the I-type
			// immediate lives in the top bits).
			if err := m.Write32(0x200, want>>16); err != nil {
				t.Fatal(err)
			}
		},
		enc(isa.Inst{Op: isa.OpADDI, Rd: 30, Imm: 22}), // hi half of the inst at 20
		enc(isa.Inst{Op: isa.OpLW, Rd: 1, Imm: 0x200}),
		enc(isa.Inst{Op: isa.OpSH, Rs1: 30, Rs2: 1}),
		enc(isa.Inst{Op: isa.OpADDI}),                // nop
		enc(isa.Inst{Op: isa.OpADDI}),                // nop
		enc(isa.Inst{Op: isa.OpADDI, Rd: 5, Imm: 1}), // at 20: immediate patched to 42
		enc(isa.Inst{Op: isa.OpSW, Imm: testHaltAddr}),
	)
	if got := e.CPU.ReadX(5); got != 42 {
		t.Errorf("x5 = %d, want 42 (straddling store missed the slot start)", got)
	}
	st := e.Cache.Stats()
	if st.Invalidations != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 invalidation and 1 miss", st)
	}
}

// TestSelfModifyingOverlappingStream patches a halfword in the middle of
// a 32-bit word and then branches into it, creating an overlapping
// instruction stream at a site the predecode lowered differently. The
// cached run must match the classical run exactly (per-halfword slots
// make overlapping streams fall out naturally).
func TestSelfModifyingOverlappingStream(t *testing.T) {
	runCompare(t, isa.RV32IMC, 200,
		func(m *mem.Memory) {
			// c.li x5, 9 — the halfword the store writes at address 18.
			if err := m.Write32(0x200, 0x42a5); err != nil {
				t.Fatal(err)
			}
		},
		enc(isa.Inst{Op: isa.OpADDI, Rd: 31, Imm: 18}),
		enc(isa.Inst{Op: isa.OpLW, Rd: 1, Imm: 0x200}),
		enc(isa.Inst{Op: isa.OpSH, Rs1: 31, Rs2: 1}),
		enc(isa.Inst{Op: isa.OpBEQ, Imm: 6}), // branch to 18: mid-word target
		0xffffffff,                           // at 16; halfword at 18 becomes c.li x5, 9
		enc(isa.Inst{Op: isa.OpSW, Imm: testHaltAddr}),
	)
}

// TestDecodeCacheCloneIndependent checks the sim.Clone contract: clones
// share the immutable predecode but have private entry tables and stats,
// so one executor's self-modification never leaks into another.
func TestDecodeCacheCloneIndependent(t *testing.T) {
	e1 := newExec(isa.RV32I,
		enc(isa.Inst{Op: isa.OpADDI, Rd: 30, Imm: 8}),
		enc(isa.Inst{Op: isa.OpSW, Rs1: 30, Rs2: 30}), // clobber the inst at 8
		enc(isa.Inst{Op: isa.OpADDI, Rd: 5, Imm: 7}),
		enc(isa.Inst{Op: isa.OpSW, Imm: testHaltAddr}),
	)
	c1 := attachCache(e1, isa.RV32I)
	c2 := c1.Clone()
	if c2.pd != c1.pd {
		t.Fatal("clone does not share the pristine predecode")
	}
	for i := 0; i < 100 && !e1.Halted; i++ {
		e1.Step()
	}
	if c1.Stats().Invalidations == 0 {
		t.Fatal("self-modifying program caused no invalidation")
	}
	if st := c2.Stats(); st != (CacheStats{}) {
		t.Errorf("clone stats polluted: %+v", st)
	}
	// The clone's entry for the clobbered slot is still the pristine one.
	if c2.entries[8>>1].state == entryInvalid {
		t.Error("clone entry invalidated by the original's store")
	}
}

// TestDecodeCacheResetRestoresPristine mirrors the per-run maintenance in
// sim.RunHooked: after self-modification, Reset must roll every touched
// slot back to the pristine predecode.
func TestDecodeCacheResetRestoresPristine(t *testing.T) {
	e := newExec(isa.RV32I,
		enc(isa.Inst{Op: isa.OpADDI, Rd: 30, Imm: 8}),
		enc(isa.Inst{Op: isa.OpSW, Rs1: 30, Rs2: 30}),
		enc(isa.Inst{Op: isa.OpADDI, Rd: 5, Imm: 7}),
		enc(isa.Inst{Op: isa.OpSW, Imm: testHaltAddr}),
	)
	c := attachCache(e, isa.RV32I)
	pristine := c.entries[8>>1]
	// Step exactly through addi + sw: the next fetch would refill the
	// invalidated slot, hiding the state we want to observe.
	e.Step()
	e.Step()
	if c.entries[8>>1].state != entryInvalid {
		t.Fatal("store did not invalidate the slot")
	}
	c.Reset()
	got := c.entries[8>>1]
	got.dirty = pristine.dirty
	if got.state != pristine.state || got.inst != pristine.inst {
		t.Errorf("reset slot = %+v, want pristine %+v", got, pristine)
	}
	if len(c.touched) != 0 && c.touched != nil {
		// touched may keep capacity but must hold no pending slots.
		for _, s := range c.touched {
			if c.entries[s].dirty {
				t.Errorf("slot %d still dirty after Reset", s)
			}
		}
	}
}

// TestInvalidateRangeBounds exercises the clamping edges: a store at
// address 0 (the lo-2 underflow guard), stores outside the window, and
// stores overlapping the window end.
func TestInvalidateRangeBounds(t *testing.T) {
	d := isa.Ref
	code := make([]byte, 0x20)
	c := NewDecodeCache(d.Predecode(0, code), isa.RV32I)
	c.InvalidateRange(0, 4)
	if c.Stats().Invalidations != 1 {
		t.Errorf("store at 0: invalidations = %d, want 1", c.Stats().Invalidations)
	}
	c.InvalidateRange(0x1000, 4)
	if c.Stats().Invalidations != 1 {
		t.Errorf("out-of-range store counted: %d", c.Stats().Invalidations)
	}
	c.InvalidateRange(0x1e, 8) // tail overlap
	if c.Stats().Invalidations != 2 {
		t.Errorf("tail overlap not counted: %d", c.Stats().Invalidations)
	}
}

// TestInvalidateRangeImageBoundaries pins the write/invalidate overlap
// test at both image edges (the back-widening bug class): a store at or
// past the range end must not be widened backward into the last
// halfword, and a store at offset 0 must not underflow past the base.
// The cache here starts at a non-zero base so both edges are interior
// addresses.
func TestInvalidateRangeImageBoundaries(t *testing.T) {
	d := isa.Ref
	code := make([]byte, 0x20) // range [0x100, 0x120)
	c := NewDecodeCache(d.Predecode(0x100, code), isa.RV32I)

	// High edge: writes at the limit, just past it, and far past it are
	// no-ops — no slot knocked out, nothing counted. (The buggy
	// back-widening applied lo = addr-2 before the range test, so a
	// write at 0x120 or 0x121 wrongly invalidated slot 15.)
	for _, w := range []struct{ addr, size uint32 }{
		{0x120, 4}, {0x121, 1}, {0x122, 2}, {0x1000, 8}, {0xfffffffe, 4},
	} {
		c.InvalidateRange(w.addr, w.size)
	}
	if n := c.Stats().Invalidations; n != 0 {
		t.Fatalf("high-edge no-op writes counted %d invalidations", n)
	}
	if len(c.touched) != 0 {
		t.Fatalf("high-edge no-op writes dirtied %d slots", len(c.touched))
	}

	// Last halfword: a 2-byte write at limit-2 knocks out that slot and
	// (back-widening) its predecessor, and nothing else.
	c.InvalidateRange(0x11e, 2)
	if n := c.Stats().Invalidations; n != 1 {
		t.Fatalf("last-halfword write: invalidations = %d, want 1", n)
	}
	if len(c.touched) != 2 || c.entries[14].state != entryInvalid || c.entries[15].state != entryInvalid {
		t.Fatalf("last-halfword write touched %d slots (want 14 and 15)", len(c.touched))
	}
	c.Reset()

	// Low edge: a write at offset 0 clamps the back-widened start to the
	// base instead of underflowing, and hits slot 0 only.
	c.InvalidateRange(0x100, 1)
	if len(c.touched) != 1 || c.entries[0].state != entryInvalid {
		t.Fatalf("offset-0 write touched %d slots (want slot 0 only)", len(c.touched))
	}
	c.Reset()

	// A write ending exactly at the base does not reach slot 0...
	c.InvalidateRange(0xfc, 4)
	if len(c.touched) != 0 {
		t.Fatalf("write ending at base dirtied %d slots", len(c.touched))
	}
	// ...but one straddling the base does, and hits slot 0 only.
	c.InvalidateRange(0xfe, 4)
	if len(c.touched) != 1 || c.entries[0].state != entryInvalid {
		t.Fatalf("base-straddling write touched %d slots (want slot 0 only)", len(c.touched))
	}
}

// TestPredecodeCrashQuirkDeferred checks that a decoder with the
// CrashOnPattern quirk does not panic while predecoding (slots stay
// lazy); the panic must fire only when the pattern is actually fetched,
// exactly like the classical path.
func TestPredecodeCrashQuirkDeferred(t *testing.T) {
	e := newExec(isa.RV32IMC, 0x8400_8400) // both halfwords match the crash pattern
	e.Dec = &isa.Decoder{Quirks: isa.Quirks{CrashOnPattern: true}}
	attachCache(e, isa.RV32IMC) // must not panic
	defer func() {
		if recover() == nil {
			t.Error("fetching the crash pattern did not panic")
		}
	}()
	e.Step()
}
