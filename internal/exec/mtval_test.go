package exec

import (
	"testing"

	"rvnegtest/internal/hart"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/mem"
)

// newExec16 loads a program expressed as halfwords (for compressed and
// deliberately malformed streams) with the standard halting handler.
func newExec16(cfg isa.Config, halves ...uint16) *Executor {
	m := mem.New(0, 0x8000)
	for i, h := range halves {
		if err := m.Write16(uint32(i*2), h); err != nil {
			panic(err)
		}
	}
	if err := m.Write32(testHandler, enc(isa.Inst{Op: isa.OpSW, Imm: testHaltAddr})); err != nil {
		panic(err)
	}
	cpu := hart.New(cfg)
	cpu.Mtvec = testHandler
	e := New(cpu, m, isa.Ref)
	e.HaltAddr = testHaltAddr
	return e
}

// TestMtvalCompressedIllegal pins the satellite-1 audit result: for a
// faulting *compressed* encoding, mtval must hold the zero-extended
// 16-bit halfword — never a 32-bit expansion — on the slow path and the
// predecoded path alike. 0x9c41 is a reserved RVC encoding (c.subw,
// RV64-only) that decodes to OpIllegal with the raw halfword preserved.
func TestMtvalCompressedIllegal(t *testing.T) {
	const bad = 0x9c41
	if in := isa.Ref.DecodeC(bad); in.Op != isa.OpIllegal {
		t.Fatalf("test premise: %#x decodes to %v, want illegal", bad, in.Op)
	}
	for _, cached := range []bool{false, true} {
		e := newExec16(isa.RV32IMC, bad)
		if cached {
			attachCache(e, isa.RV32IMC)
		}
		e.Step()
		if e.CPU.Mcause != hart.CauseIllegalInstruction {
			t.Fatalf("cached=%v: mcause = %d", cached, e.CPU.Mcause)
		}
		if e.CPU.Mtval != bad {
			t.Errorf("cached=%v: mtval = %#x, want zero-extended halfword %#x", cached, e.CPU.Mtval, bad)
		}
	}
}

// TestMtvalCompressedWithoutC: on a configuration without the C
// extension, a compressed halfword is simply an illegal 16-bit encoding;
// mtval must hold that halfword, not an expansion or the full word the
// fetch window happens to contain.
func TestMtvalCompressedWithoutC(t *testing.T) {
	const nop = 0x0001 // c.nop: legal under C, illegal without it
	for _, cached := range []bool{false, true} {
		e := newExec16(isa.RV32I, nop, 0xffff)
		if cached {
			attachCache(e, isa.RV32I)
		}
		e.Step()
		if e.CPU.Mcause != hart.CauseIllegalInstruction {
			t.Fatalf("cached=%v: mcause = %d", cached, e.CPU.Mcause)
		}
		if e.CPU.Mtval != nop {
			t.Errorf("cached=%v: mtval = %#x, want %#x", cached, e.CPU.Mtval, uint32(nop))
		}
	}
}

// TestMtval32BitIllegal: a faulting 32-bit encoding reports the full
// instruction word.
func TestMtval32BitIllegal(t *testing.T) {
	const bad = 0xfe00f0ff // 32-bit shape (low bits 11), no valid opcode
	if in := isa.Ref.Decode32(bad); in.Op != isa.OpIllegal {
		t.Fatalf("test premise: %#x decodes to %v", bad, in.Op)
	}
	for _, cached := range []bool{false, true} {
		e := newExec(isa.RV32I, bad)
		if cached {
			attachCache(e, isa.RV32I)
		}
		e.Step()
		if e.CPU.Mtval != bad {
			t.Errorf("cached=%v: mtval = %#x, want %#x", cached, e.CPU.Mtval, uint32(bad))
		}
	}
}

// TestNestedTrap: a fault inside the handler itself re-enters the
// handler, overwriting mepc/mcause with the nested values — the hart has
// no interrupt stack, so this is the architected behaviour the trap
// template's handler is written to never provoke.
func TestNestedTrap(t *testing.T) {
	const bad = 0xfe00f0ff
	m := mem.New(0, 0x8000)
	if err := m.Write32(0, bad); err != nil { // body: illegal at 0
		t.Fatal(err)
	}
	if err := m.Write32(testHandler, bad); err != nil { // handler: also illegal
		t.Fatal(err)
	}
	cpu := hart.New(isa.RV32I)
	cpu.Mtvec = testHandler
	e := New(cpu, m, isa.Ref)
	e.HaltAddr = testHaltAddr

	e.Step() // first trap: body fault
	if cpu.Mepc != 0 || cpu.PC != testHandler {
		t.Fatalf("first trap: mepc=%#x pc=%#x", cpu.Mepc, cpu.PC)
	}
	e.Step() // nested trap: handler fault
	if cpu.Mepc != testHandler {
		t.Errorf("nested trap mepc = %#x, want handler address %#x", cpu.Mepc, uint32(testHandler))
	}
	if cpu.PC != testHandler {
		t.Errorf("nested trap must re-enter the handler: pc = %#x", cpu.PC)
	}
	if e.TrapCount != 2 {
		t.Errorf("TrapCount = %d, want 2", e.TrapCount)
	}
	// Without a halting handler the nested fault loops forever; Run must
	// fence it with the instruction limit.
	if err := e.Run(100); err != ErrTimeout {
		t.Errorf("Run = %v, want ErrTimeout", err)
	}
}
