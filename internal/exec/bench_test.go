package exec

import (
	"testing"

	"rvnegtest/internal/analysis"
	"rvnegtest/internal/hart"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/mem"
)

// BenchmarkStepALU measures raw interpreter speed on a straight-line ALU
// loop body (the dominant cost of a fuzzer execution).
func BenchmarkStepALU(b *testing.B) {
	prog := []uint32{
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 1, Imm: 1}),
		enc(isa.Inst{Op: isa.OpXOR, Rd: 2, Rs1: 1, Rs2: 2}),
		enc(isa.Inst{Op: isa.OpSLL, Rd: 3, Rs1: 2, Rs2: 1}),
		enc(isa.Inst{Op: isa.OpJAL, Rd: 0, Imm: -12}),
	}
	e := newExec(isa.RV32I, prog...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkStepMemory measures load/store throughput.
func BenchmarkStepMemory(b *testing.B) {
	prog := []uint32{
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: 0x200}),
		enc(isa.Inst{Op: isa.OpSW, Rs1: 1, Rs2: 2, Imm: 0}),
		enc(isa.Inst{Op: isa.OpLW, Rd: 3, Rs1: 1, Imm: 0}),
		enc(isa.Inst{Op: isa.OpJAL, Rd: 0, Imm: -8}),
	}
	e := newExec(isa.RV32I, prog...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkStepFP measures floating-point instruction throughput through
// the softfloat core.
func BenchmarkStepFP(b *testing.B) {
	prog := []uint32{
		enc(isa.Inst{Op: isa.OpFADDD, Rd: 1, Rs1: 2, Rs2: 3, RM: 0}),
		enc(isa.Inst{Op: isa.OpFMULD, Rd: 4, Rs1: 1, Rs2: 2, RM: 0}),
		enc(isa.Inst{Op: isa.OpJAL, Rd: 0, Imm: -8}),
	}
	e := newExec(isa.RV32GC, prog...)
	e.CPU.F[2] = 0x3ff0000000000000
	e.CPU.F[3] = 0x4000000000000000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkTrapRoundtrip measures the illegal-instruction trap path (the
// most common event in negative-testing workloads).
func BenchmarkTrapRoundtrip(b *testing.B) {
	m := mem.New(0, 0x8000)
	_ = m.Write32(0, 0xffffffff) // illegal
	// Handler: mret back (mepc stays 0 -> infinite trap loop).
	_ = m.Write32(testHandler, enc(isa.Inst{Op: isa.OpMRET}))
	cpu := hart.New(isa.RV32I)
	cpu.Mtvec = testHandler
	e := New(cpu, m, isa.Ref)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// benchRunProgram is a mixed ALU/memory/branch loop (~1600 retired
// instructions per run) that halts by itself — the Executor.Run shape the
// simulators drive, without fuzzer or template overhead.
func benchRunProgram() []uint32 {
	return []uint32{
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: 200}),
		enc(isa.Inst{Op: isa.OpADDI, Rd: 6, Imm: 1}),
		enc(isa.Inst{Op: isa.OpSLLI, Rd: 6, Rs1: 6, Imm: 12}), // x6 = 0x1000, outside the code window
		// loop:
		enc(isa.Inst{Op: isa.OpADDI, Rd: 2, Rs1: 2, Imm: 3}),
		enc(isa.Inst{Op: isa.OpXOR, Rd: 3, Rs1: 3, Rs2: 2}),
		enc(isa.Inst{Op: isa.OpSLLI, Rd: 4, Rs1: 2, Imm: 1}),
		enc(isa.Inst{Op: isa.OpLW, Rd: 5, Rs1: 6}),
		enc(isa.Inst{Op: isa.OpADD, Rd: 5, Rs1: 5, Rs2: 2}),
		enc(isa.Inst{Op: isa.OpSW, Rs1: 6, Rs2: 5}),
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 1, Imm: -1}),
		enc(isa.Inst{Op: isa.OpBNE, Rs1: 1, Imm: -28}),
		enc(isa.Inst{Op: isa.OpSW, Imm: testHaltAddr}),
	}
}

// benchRun measures whole-program Executor.Run throughput; the predecode
// variant includes the per-run cache maintenance (Reset), exactly like
// the simulator's run path, and the fused variant additionally installs
// superblocks over the CFG's straight-line extents.
func benchRun(b *testing.B, pre, fused bool) {
	e := newExec(isa.RV32I, benchRunProgram()...)
	var cache *DecodeCache
	if pre {
		cache = attachCache(e, isa.RV32I)
		if fused {
			code, err := e.Mem.ReadBytes(0, fuzzCodeSpan)
			if err != nil {
				b.Fatal(err)
			}
			if cache.Fuse(analysis.StraightLineExtents(code, false)) == 0 {
				b.Fatal("no fused blocks installed")
			}
		}
	}
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.CPU.Reset()
		e.CPU.Mtvec = testHandler
		e.Halted = false
		e.InstCount = 0
		if cache != nil {
			cache.Reset()
		}
		if err := e.Run(20000); err != nil {
			b.Fatal(err)
		}
		insts += e.InstCount
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkRunDirect is the classical fetch-decode-execute loop.
func BenchmarkRunDirect(b *testing.B) { benchRun(b, false, false) }

// BenchmarkRunPredecode is the same workload on the predecoded fast
// path; scripts/exec_bench.sh gates its speedup over BenchmarkRunDirect.
func BenchmarkRunPredecode(b *testing.B) { benchRun(b, true, false) }

// BenchmarkRunFused is the same workload with superblock fusion on top
// of the predecode; scripts/exec_bench.sh gates the batch+fusion
// speedup over BenchmarkRunPredecode.
func BenchmarkRunFused(b *testing.B) { benchRun(b, true, true) }

// BenchmarkRunBatch runs 8 fused lanes in lockstep through exec.Batch
// (the per-worker shape of the batched fuzz and compliance campaigns);
// the metric aggregates instructions across all lanes.
func BenchmarkRunBatch(b *testing.B) {
	const lanes = 8
	base := newExec(isa.RV32I, benchRunProgram()...)
	cache := attachCache(base, isa.RV32I)
	code, err := base.Mem.ReadBytes(0, fuzzCodeSpan)
	if err != nil {
		b.Fatal(err)
	}
	if cache.Fuse(analysis.StraightLineExtents(code, false)) == 0 {
		b.Fatal("no fused blocks installed")
	}
	execs := make([]*Executor, lanes)
	for i := range execs {
		e := newExec(isa.RV32I, benchRunProgram()...)
		e.Cache = cache.Clone()
		execs[i] = e
	}
	bt := Batch{Lanes: execs}
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range execs {
			e.CPU.Reset()
			e.CPU.Mtvec = testHandler
			e.Halted = false
			e.InstCount = 0
			e.Cache.Reset()
		}
		for j, st := range bt.Run(20000) {
			if st.Err != nil || st.Panicked {
				b.Fatalf("lane %d: %+v", j, st)
			}
		}
		for _, e := range execs {
			insts += e.InstCount
		}
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "Minst/s")
}
