package exec

import (
	"testing"

	"rvnegtest/internal/hart"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/mem"
)

// BenchmarkStepALU measures raw interpreter speed on a straight-line ALU
// loop body (the dominant cost of a fuzzer execution).
func BenchmarkStepALU(b *testing.B) {
	prog := []uint32{
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 1, Imm: 1}),
		enc(isa.Inst{Op: isa.OpXOR, Rd: 2, Rs1: 1, Rs2: 2}),
		enc(isa.Inst{Op: isa.OpSLL, Rd: 3, Rs1: 2, Rs2: 1}),
		enc(isa.Inst{Op: isa.OpJAL, Rd: 0, Imm: -12}),
	}
	e := newExec(isa.RV32I, prog...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkStepMemory measures load/store throughput.
func BenchmarkStepMemory(b *testing.B) {
	prog := []uint32{
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: 0x200}),
		enc(isa.Inst{Op: isa.OpSW, Rs1: 1, Rs2: 2, Imm: 0}),
		enc(isa.Inst{Op: isa.OpLW, Rd: 3, Rs1: 1, Imm: 0}),
		enc(isa.Inst{Op: isa.OpJAL, Rd: 0, Imm: -8}),
	}
	e := newExec(isa.RV32I, prog...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkStepFP measures floating-point instruction throughput through
// the softfloat core.
func BenchmarkStepFP(b *testing.B) {
	prog := []uint32{
		enc(isa.Inst{Op: isa.OpFADDD, Rd: 1, Rs1: 2, Rs2: 3, RM: 0}),
		enc(isa.Inst{Op: isa.OpFMULD, Rd: 4, Rs1: 1, Rs2: 2, RM: 0}),
		enc(isa.Inst{Op: isa.OpJAL, Rd: 0, Imm: -8}),
	}
	e := newExec(isa.RV32GC, prog...)
	e.CPU.F[2] = 0x3ff0000000000000
	e.CPU.F[3] = 0x4000000000000000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkTrapRoundtrip measures the illegal-instruction trap path (the
// most common event in negative-testing workloads).
func BenchmarkTrapRoundtrip(b *testing.B) {
	m := mem.New(0, 0x8000)
	_ = m.Write32(0, 0xffffffff) // illegal
	// Handler: mret back (mepc stays 0 -> infinite trap loop).
	_ = m.Write32(testHandler, enc(isa.Inst{Op: isa.OpMRET}))
	cpu := hart.New(isa.RV32I)
	cpu.Mtvec = testHandler
	e := New(cpu, m, isa.Ref)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
