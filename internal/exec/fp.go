package exec

import (
	"rvnegtest/internal/hart"
	"rvnegtest/internal/isa"
	sf "rvnegtest/internal/softfloat"
)

// executeFP handles the F and D extension arithmetic instructions (loads
// and stores are handled in exec.go alongside the integer ones).
func (e *Executor) executeFP(inst *isa.Inst, rs1 uint32) {
	h := e.CPU
	info := inst.Info()
	if info == nil {
		e.trap(inst.Op, hart.CauseIllegalInstruction, inst.Raw)
		return
	}

	// Resolve the rounding mode; reserved rm encodings are illegal.
	var rm sf.RM
	if info.Flags.Is(isa.FlagHasRM) {
		var ok bool
		rm, ok = h.DynRM(inst.RM)
		if !ok {
			e.trap(inst.Op, hart.CauseIllegalInstruction, inst.Raw)
			return
		}
	}

	a32 := func() uint32 { return h.ReadF32(inst.Rs1) }
	b32 := func() uint32 { return h.ReadF32(inst.Rs2) }
	c32 := func() uint32 { return h.ReadF32(inst.Rs3) }
	a64 := func() uint64 { return h.ReadF64(inst.Rs1) }
	b64 := func() uint64 { return h.ReadF64(inst.Rs2) }
	c64 := func() uint64 { return h.ReadF64(inst.Rs3) }

	w32 := func(v uint32, fl sf.Flags) {
		h.AccrueFlags(fl)
		h.WriteF32(inst.Rd, v)
		e.retire(inst)
	}
	w64 := func(v uint64, fl sf.Flags) {
		h.AccrueFlags(fl)
		h.WriteF64(inst.Rd, v)
		e.retire(inst)
	}
	wx := func(v uint32, fl sf.Flags) {
		h.AccrueFlags(fl)
		h.WriteX(inst.Rd, v)
		e.retire(inst)
	}
	wb := func(v bool, fl sf.Flags) {
		h.AccrueFlags(fl)
		h.WriteX(inst.Rd, b2u(v))
		e.retire(inst)
	}

	switch inst.Op {
	// ----- F -----
	case isa.OpFADDS:
		w32(twoF32(sf.Add32, a32(), b32(), rm))
	case isa.OpFSUBS:
		w32(twoF32(sf.Sub32, a32(), b32(), rm))
	case isa.OpFMULS:
		w32(twoF32(sf.Mul32, a32(), b32(), rm))
	case isa.OpFDIVS:
		w32(twoF32(sf.Div32, a32(), b32(), rm))
	case isa.OpFSQRTS:
		w32(sf.Sqrt32(a32(), rm))
	case isa.OpFMADDS:
		w32(sf.FMA32(a32(), b32(), c32(), rm))
	case isa.OpFMSUBS:
		w32(sf.FMA32(a32(), b32(), negF32(c32()), rm))
	case isa.OpFNMSUBS:
		w32(sf.FMA32(negF32(a32()), b32(), c32(), rm))
	case isa.OpFNMADDS:
		w32(sf.FMA32(negF32(a32()), b32(), negF32(c32()), rm))
	case isa.OpFSGNJS:
		w32(a32()&^(1<<31)|b32()&(1<<31), 0)
	case isa.OpFSGNJNS:
		w32(a32()&^(1<<31)|^b32()&(1<<31), 0)
	case isa.OpFSGNJXS:
		w32(a32()^b32()&(1<<31), 0)
	case isa.OpFMINS:
		w32(sf.Min32(a32(), b32()))
	case isa.OpFMAXS:
		w32(sf.Max32(a32(), b32()))
	case isa.OpFEQS:
		wb(sf.Eq32(a32(), b32()))
	case isa.OpFLTS:
		wb(sf.Lt32(a32(), b32()))
	case isa.OpFLES:
		wb(sf.Le32(a32(), b32()))
	case isa.OpFCLASSS:
		wx(sf.Class32(a32()), 0)
	case isa.OpFCVTWS:
		wx(sf.F32ToI32(a32(), rm))
	case isa.OpFCVTWUS:
		wx(sf.F32ToU32(a32(), rm))
	case isa.OpFCVTSW:
		w32(sf.I32ToF32(rs1, rm))
	case isa.OpFCVTSWU:
		w32(sf.U32ToF32(rs1, rm))
	case isa.OpFMVXW:
		// Raw bit move, no unboxing canonicalization.
		wx(uint32(h.F[inst.Rs1]), 0)
	case isa.OpFMVWX:
		w32(rs1, 0)

	// ----- D -----
	case isa.OpFADDD:
		w64(sf.Add64(a64(), b64(), rm))
	case isa.OpFSUBD:
		w64(sf.Sub64(a64(), b64(), rm))
	case isa.OpFMULD:
		w64(sf.Mul64(a64(), b64(), rm))
	case isa.OpFDIVD:
		w64(sf.Div64(a64(), b64(), rm))
	case isa.OpFSQRTD:
		w64(sf.Sqrt64(a64(), rm))
	case isa.OpFMADDD:
		w64(sf.FMA64(a64(), b64(), c64(), rm))
	case isa.OpFMSUBD:
		w64(sf.FMA64(a64(), b64(), negF64(c64()), rm))
	case isa.OpFNMSUBD:
		w64(sf.FMA64(negF64(a64()), b64(), c64(), rm))
	case isa.OpFNMADDD:
		w64(sf.FMA64(negF64(a64()), b64(), negF64(c64()), rm))
	case isa.OpFSGNJD:
		w64(a64()&^(1<<63)|b64()&(1<<63), 0)
	case isa.OpFSGNJND:
		w64(a64()&^(1<<63)|^b64()&(1<<63), 0)
	case isa.OpFSGNJXD:
		w64(a64()^b64()&(1<<63), 0)
	case isa.OpFMIND:
		w64(sf.Min64(a64(), b64()))
	case isa.OpFMAXD:
		w64(sf.Max64(a64(), b64()))
	case isa.OpFEQD:
		wb(sf.Eq64(a64(), b64()))
	case isa.OpFLTD:
		wb(sf.Lt64(a64(), b64()))
	case isa.OpFLED:
		wb(sf.Le64(a64(), b64()))
	case isa.OpFCLASSD:
		wx(sf.Class64(a64()), 0)
	case isa.OpFCVTWD:
		wx(sf.F64ToI32(a64(), rm))
	case isa.OpFCVTWUD:
		wx(sf.F64ToU32(a64(), rm))
	case isa.OpFCVTDW:
		w64(sf.I32ToF64(rs1, rm))
	case isa.OpFCVTDWU:
		w64(sf.U32ToF64(rs1, rm))
	case isa.OpFCVTSD:
		w32(sf.F64ToF32(a64(), rm))
	case isa.OpFCVTDS:
		w64(sf.F32ToF64(a32()))

	default:
		// Every operation must be handled somewhere; reaching this point
		// is a programming error, not a guest error.
		//rvlint:allow panicgate -- unreachable: the handler table covers every FP op
		panic("exec: unhandled operation " + inst.Op.String())
	}
}

// twoF32 adapts a two-operand binary32 function for the w32 helper.
func twoF32(op func(a, b uint32, rm sf.RM) (uint32, sf.Flags), a, b uint32, rm sf.RM) (uint32, sf.Flags) {
	return op(a, b, rm)
}

func negF32(v uint32) uint32 { return v ^ 1<<31 }
func negF64(v uint64) uint64 { return v ^ 1<<63 }
