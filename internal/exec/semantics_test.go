package exec

import (
	"math/rand"
	"testing"

	"rvnegtest/internal/isa"
	sf "rvnegtest/internal/softfloat"
)

// TestIntegerSemanticsSweep drives every RV32IM computational instruction
// with randomized operands and checks the result against an independent
// inline computation (so an operand-order or sign-extension typo in the
// executor's switch cannot hide).
func TestIntegerSemanticsSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	type model func(a, b uint32, imm int32) uint32
	cases := []struct {
		op    isa.Op
		useRI bool // register-immediate form
		f     model
	}{
		{isa.OpADD, false, func(a, b uint32, _ int32) uint32 { return a + b }},
		{isa.OpSUB, false, func(a, b uint32, _ int32) uint32 { return a - b }},
		{isa.OpSLL, false, func(a, b uint32, _ int32) uint32 { return a << (b & 31) }},
		{isa.OpSRL, false, func(a, b uint32, _ int32) uint32 { return a >> (b & 31) }},
		{isa.OpSRA, false, func(a, b uint32, _ int32) uint32 { return uint32(int32(a) >> (b & 31)) }},
		{isa.OpXOR, false, func(a, b uint32, _ int32) uint32 { return a ^ b }},
		{isa.OpOR, false, func(a, b uint32, _ int32) uint32 { return a | b }},
		{isa.OpAND, false, func(a, b uint32, _ int32) uint32 { return a & b }},
		{isa.OpSLT, false, func(a, b uint32, _ int32) uint32 {
			if int32(a) < int32(b) {
				return 1
			}
			return 0
		}},
		{isa.OpSLTU, false, func(a, b uint32, _ int32) uint32 {
			if a < b {
				return 1
			}
			return 0
		}},
		{isa.OpADDI, true, func(a, _ uint32, imm int32) uint32 { return a + uint32(imm) }},
		{isa.OpXORI, true, func(a, _ uint32, imm int32) uint32 { return a ^ uint32(imm) }},
		{isa.OpORI, true, func(a, _ uint32, imm int32) uint32 { return a | uint32(imm) }},
		{isa.OpANDI, true, func(a, _ uint32, imm int32) uint32 { return a & uint32(imm) }},
		{isa.OpSLTI, true, func(a, _ uint32, imm int32) uint32 {
			if int32(a) < imm {
				return 1
			}
			return 0
		}},
		{isa.OpSLTIU, true, func(a, _ uint32, imm int32) uint32 {
			if a < uint32(imm) {
				return 1
			}
			return 0
		}},
		{isa.OpMUL, false, func(a, b uint32, _ int32) uint32 { return uint32(int64(int32(a)) * int64(int32(b))) }},
		{isa.OpMULH, false, func(a, b uint32, _ int32) uint32 {
			return uint32(uint64(int64(int32(a))*int64(int32(b))) >> 32)
		}},
		{isa.OpMULHU, false, func(a, b uint32, _ int32) uint32 { return uint32(uint64(a) * uint64(b) >> 32) }},
		{isa.OpMULHSU, false, func(a, b uint32, _ int32) uint32 {
			return uint32(uint64(int64(int32(a))*int64(b)) >> 32)
		}},
		{isa.OpDIV, false, func(a, b uint32, _ int32) uint32 {
			switch {
			case b == 0:
				return 0xffffffff
			case int32(a) == -1<<31 && int32(b) == -1:
				return a
			}
			return uint32(int32(a) / int32(b))
		}},
		{isa.OpDIVU, false, func(a, b uint32, _ int32) uint32 {
			if b == 0 {
				return 0xffffffff
			}
			return a / b
		}},
		{isa.OpREM, false, func(a, b uint32, _ int32) uint32 {
			switch {
			case b == 0:
				return a
			case int32(a) == -1<<31 && int32(b) == -1:
				return 0
			}
			return uint32(int32(a) % int32(b))
		}},
		{isa.OpREMU, false, func(a, b uint32, _ int32) uint32 {
			if b == 0 {
				return a
			}
			return a % b
		}},
	}
	interesting := []uint32{0, 1, 2, 0xffffffff, 0x7fffffff, 0x80000000, 31, 32, 0xfffffffe}
	operand := func() uint32 {
		if rng.Intn(2) == 0 {
			return interesting[rng.Intn(len(interesting))]
		}
		return rng.Uint32()
	}
	for _, c := range cases {
		for trial := 0; trial < 200; trial++ {
			a, b := operand(), operand()
			imm := int32(rng.Intn(4096) - 2048)
			inst := isa.Inst{Op: c.op, Rd: 3, Rs1: 1, Rs2: 2, Imm: imm}
			e := newExec(isa.RV32IM, enc(inst))
			e.CPU.X[1], e.CPU.X[2] = a, b
			e.Step()
			if e.CPU.PC != 4 {
				t.Fatalf("%v(%#x,%#x): trapped", c.op, a, b)
			}
			want := c.f(a, b, imm)
			if got := e.CPU.ReadX(3); got != want {
				t.Fatalf("%v(%#x, %#x, imm=%d) = %#x, want %#x", c.op, a, b, imm, got, want)
			}
			_ = c.useRI
		}
	}
}

// TestShiftImmediateSweep covers the SLLI/SRLI/SRAI shamt space
// exhaustively.
func TestShiftImmediateSweep(t *testing.T) {
	for _, op := range []isa.Op{isa.OpSLLI, isa.OpSRLI, isa.OpSRAI} {
		for shamt := int32(0); shamt < 32; shamt++ {
			for _, v := range []uint32{0, 1, 0x80000000, 0xffffffff, 0x12345678} {
				e := newExec(isa.RV32I, enc(isa.Inst{Op: op, Rd: 3, Rs1: 1, Imm: shamt}))
				e.CPU.X[1] = v
				e.Step()
				var want uint32
				switch op {
				case isa.OpSLLI:
					want = v << uint(shamt)
				case isa.OpSRLI:
					want = v >> uint(shamt)
				default:
					want = uint32(int32(v) >> uint(shamt))
				}
				if got := e.CPU.ReadX(3); got != want {
					t.Fatalf("%v %#x >>/<< %d = %#x, want %#x", op, v, shamt, got, want)
				}
			}
		}
	}
}

// TestBranchSemanticsSweep checks every branch condition against an inline
// model for both directions.
func TestBranchSemanticsSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	models := map[isa.Op]func(a, b uint32) bool{
		isa.OpBEQ:  func(a, b uint32) bool { return a == b },
		isa.OpBNE:  func(a, b uint32) bool { return a != b },
		isa.OpBLT:  func(a, b uint32) bool { return int32(a) < int32(b) },
		isa.OpBGE:  func(a, b uint32) bool { return int32(a) >= int32(b) },
		isa.OpBLTU: func(a, b uint32) bool { return a < b },
		isa.OpBGEU: func(a, b uint32) bool { return a >= b },
	}
	for op, m := range models {
		for trial := 0; trial < 200; trial++ {
			a, b := rng.Uint32(), rng.Uint32()
			if rng.Intn(3) == 0 {
				b = a // force the equality edge
			}
			e := newExec(isa.RV32I, enc(isa.Inst{Op: op, Rs1: 1, Rs2: 2, Imm: 8}))
			e.CPU.X[1], e.CPU.X[2] = a, b
			e.Step()
			wantPC := uint32(4)
			if m(a, b) {
				wantPC = 8
			}
			if e.CPU.PC != wantPC {
				t.Fatalf("%v(%#x, %#x): pc=%d, want %d", op, a, b, e.CPU.PC, wantPC)
			}
		}
	}
}

// TestFPPlumbingMatchesSoftfloat checks the executor's FP data path
// (register reads, NaN boxing, rounding-mode resolution, flag accrual)
// against direct softfloat calls.
func TestFPPlumbingMatchesSoftfloat(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	type binop struct {
		op isa.Op
		f  func(a, b uint64, rm sf.RM) (uint64, sf.Flags)
	}
	ops := []binop{
		{isa.OpFADDD, sf.Add64},
		{isa.OpFSUBD, sf.Sub64},
		{isa.OpFMULD, sf.Mul64},
		{isa.OpFDIVD, sf.Div64},
	}
	for _, c := range ops {
		for trial := 0; trial < 300; trial++ {
			a, b := rng.Uint64(), rng.Uint64()
			rm := uint8(rng.Intn(5))
			e := newExec(isa.RV32GC, enc(isa.Inst{Op: c.op, Rd: 3, Rs1: 1, Rs2: 2, RM: rm}))
			e.CPU.F[1], e.CPU.F[2] = a, b
			e.Step()
			want, wantFl := c.f(a, b, sf.RM(rm))
			if got := e.CPU.F[3]; got != want {
				t.Fatalf("%v(%#x, %#x, rm=%d) = %#x, want %#x", c.op, a, b, rm, got, want)
			}
			if e.CPU.Fflags != uint8(wantFl) {
				t.Fatalf("%v flags = %#x, want %#x", c.op, e.CPU.Fflags, uint8(wantFl))
			}
		}
	}
	// Single precision goes through unboxing: an unboxed input must be
	// treated as canonical NaN.
	e := newExec(isa.RV32GC, enc(isa.Inst{Op: isa.OpFADDS, Rd: 3, Rs1: 1, Rs2: 2, RM: 0}))
	e.CPU.F[1] = uint64(0x3f800000) // 1.0f NOT boxed
	e.CPU.F[2] = sf.Box32(0x3f800000)
	e.Step()
	if got := e.CPU.ReadF32(3); got != sf.QNaN32 {
		t.Fatalf("unboxed operand: got %#x, want canonical NaN", got)
	}
	// Dynamic rounding mode resolves through frm.
	for _, frm := range []uint8{0, 1, 2, 3, 4} {
		a, b := uint64(0x3ff0000000000001), uint64(0x3ca0000000000000)
		e := newExec(isa.RV32GC, enc(isa.Inst{Op: isa.OpFADDD, Rd: 3, Rs1: 1, Rs2: 2, RM: 7}))
		e.CPU.F[1], e.CPU.F[2] = a, b
		e.CPU.Frm = frm
		e.Step()
		want, _ := sf.Add64(a, b, sf.RM(frm))
		if e.CPU.F[3] != want {
			t.Fatalf("dynamic rm=%d: got %#x, want %#x", frm, e.CPU.F[3], want)
		}
	}
	// FMA sign variants.
	fa, fb, fc := uint64(0x4000000000000000), uint64(0x4008000000000000), uint64(0x3ff0000000000000)
	variants := []struct {
		op   isa.Op
		want func() uint64
	}{
		{isa.OpFMADDD, func() uint64 { v, _ := sf.FMA64(fa, fb, fc, sf.RNE); return v }},
		{isa.OpFMSUBD, func() uint64 { v, _ := sf.FMA64(fa, fb, fc^1<<63, sf.RNE); return v }},
		{isa.OpFNMSUBD, func() uint64 { v, _ := sf.FMA64(fa^1<<63, fb, fc, sf.RNE); return v }},
		{isa.OpFNMADDD, func() uint64 { v, _ := sf.FMA64(fa^1<<63, fb, fc^1<<63, sf.RNE); return v }},
	}
	for _, v := range variants {
		e := newExec(isa.RV32GC, enc(isa.Inst{Op: v.op, Rd: 4, Rs1: 1, Rs2: 2, Rs3: 3, RM: 0}))
		e.CPU.F[1], e.CPU.F[2], e.CPU.F[3] = fa, fb, fc
		e.Step()
		if e.CPU.F[4] != v.want() {
			t.Fatalf("%v = %#x, want %#x", v.op, e.CPU.F[4], v.want())
		}
	}
}

// TestFPConversionPlumbing checks the int<->float instructions against
// direct softfloat calls, including the WU forms.
func TestFPConversionPlumbing(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for trial := 0; trial < 200; trial++ {
		x := rng.Uint32()
		d := rng.Uint64()
		rm := uint8(rng.Intn(5))

		e := newExec(isa.RV32GC, enc(isa.Inst{Op: isa.OpFCVTDW, Rd: 1, Rs1: 2, RM: rm}))
		e.CPU.X[2] = x
		e.Step()
		if want, _ := sf.I32ToF64(x, sf.RM(rm)); e.CPU.F[1] != want {
			t.Fatalf("fcvt.d.w(%#x) = %#x, want %#x", x, e.CPU.F[1], want)
		}

		e = newExec(isa.RV32GC, enc(isa.Inst{Op: isa.OpFCVTWUD, Rd: 3, Rs1: 1, RM: rm}))
		e.CPU.F[1] = d
		e.Step()
		if want, _ := sf.F64ToU32(d, sf.RM(rm)); e.CPU.ReadX(3) != want {
			t.Fatalf("fcvt.wu.d(%#x) = %#x, want %#x", d, e.CPU.ReadX(3), want)
		}

		e = newExec(isa.RV32GC, enc(isa.Inst{Op: isa.OpFCVTSD, Rd: 1, Rs1: 2, RM: rm}))
		e.CPU.F[2] = d
		e.Step()
		if want, _ := sf.F64ToF32(d, sf.RM(rm)); e.CPU.ReadF32(1) != want {
			t.Fatalf("fcvt.s.d(%#x) = %#x, want %#x", d, e.CPU.ReadF32(1), want)
		}
	}
	// FCLASS and FMV raw moves.
	e := newExec(isa.RV32GC, enc(isa.Inst{Op: isa.OpFCLASSD, Rd: 3, Rs1: 1}))
	e.CPU.F[1] = 0x7ff0000000000000
	e.Step()
	if e.CPU.ReadX(3) != sf.ClassPosInf {
		t.Fatalf("fclass.d(+inf) = %#x", e.CPU.ReadX(3))
	}
	e = newExec(isa.RV32GC, enc(isa.Inst{Op: isa.OpFMVWX, Rd: 1, Rs1: 2}))
	e.CPU.X[2] = 0xdeadbeef
	e.Step()
	if e.CPU.F[1] != sf.Box32(0xdeadbeef) {
		t.Fatalf("fmv.w.x = %#x", e.CPU.F[1])
	}
}

// TestSgnjBitExactness: the sign-injection instructions are raw bit
// operations, including on NaNs (no canonicalization).
func TestSgnjBitExactness(t *testing.T) {
	a, b := uint64(0x7ff123456789abcd), uint64(0x8000000000000000)
	cases := []struct {
		op   isa.Op
		want uint64
	}{
		{isa.OpFSGNJD, a&^(1<<63) | b&(1<<63)},
		{isa.OpFSGNJND, a&^(1<<63) | ^b&(1<<63)},
		{isa.OpFSGNJXD, a ^ b&(1<<63)},
	}
	for _, c := range cases {
		e := newExec(isa.RV32GC, enc(isa.Inst{Op: c.op, Rd: 3, Rs1: 1, Rs2: 2}))
		e.CPU.F[1], e.CPU.F[2] = a, b
		e.Step()
		if e.CPU.F[3] != c.want {
			t.Fatalf("%v = %#x, want %#x", c.op, e.CPU.F[3], c.want)
		}
		if e.CPU.Fflags != 0 {
			t.Fatalf("%v raised flags %#x on NaN input", c.op, e.CPU.Fflags)
		}
	}
}
