package exec

import (
	"rvnegtest/internal/hart"
	"rvnegtest/internal/isa"
)

// handlerFn executes one decoded instruction. Handlers assume the caller
// already established configuration legality (extension present, FP
// enabled); the runtime mstatus.FS check stays with the caller because it
// cannot be precomputed.
type handlerFn func(e *Executor, in *isa.Inst)

// handlers is the operation-indexed dispatch table that replaces the
// former execute switch: predecoded cache entries resolve their handler
// once, and both execution paths dispatch with a single indexed call.
var handlers []handlerFn

func hIllegal(e *Executor, in *isa.Inst) {
	e.trap(in.Op, hart.CauseIllegalInstruction, in.Raw)
}

// hFP routes the F/D arithmetic operations (everything without a
// dedicated handler) to the soft-float executor.
func hFP(e *Executor, in *isa.Inst) {
	e.executeFP(in, e.CPU.ReadX(in.Rs1))
}

func init() {
	handlers = make([]handlerFn, isa.NumOps())
	for i := range handlers {
		handlers[i] = hFP
	}
	set := func(op isa.Op, fn handlerFn) { handlers[op] = fn }
	set(isa.OpIllegal, hIllegal)

	// ----- RV32I computational -----
	set(isa.OpLUI, func(e *Executor, in *isa.Inst) {
		e.CPU.WriteX(in.Rd, uint32(in.Imm))
		e.retire(in)
	})
	set(isa.OpAUIPC, func(e *Executor, in *isa.Inst) {
		e.CPU.WriteX(in.Rd, e.CPU.PC+uint32(in.Imm))
		e.retire(in)
	})
	set(isa.OpADDI, func(e *Executor, in *isa.Inst) {
		e.CPU.WriteX(in.Rd, e.CPU.ReadX(in.Rs1)+uint32(in.Imm))
		e.retire(in)
	})
	set(isa.OpSLTI, func(e *Executor, in *isa.Inst) {
		e.CPU.WriteX(in.Rd, b2u(int32(e.CPU.ReadX(in.Rs1)) < in.Imm))
		e.retire(in)
	})
	set(isa.OpSLTIU, func(e *Executor, in *isa.Inst) {
		e.CPU.WriteX(in.Rd, b2u(e.CPU.ReadX(in.Rs1) < uint32(in.Imm)))
		e.retire(in)
	})
	set(isa.OpXORI, func(e *Executor, in *isa.Inst) {
		e.CPU.WriteX(in.Rd, e.CPU.ReadX(in.Rs1)^uint32(in.Imm))
		e.retire(in)
	})
	set(isa.OpORI, func(e *Executor, in *isa.Inst) {
		e.CPU.WriteX(in.Rd, e.CPU.ReadX(in.Rs1)|uint32(in.Imm))
		e.retire(in)
	})
	set(isa.OpANDI, func(e *Executor, in *isa.Inst) {
		e.CPU.WriteX(in.Rd, e.CPU.ReadX(in.Rs1)&uint32(in.Imm))
		e.retire(in)
	})
	set(isa.OpSLLI, func(e *Executor, in *isa.Inst) {
		e.CPU.WriteX(in.Rd, e.CPU.ReadX(in.Rs1)<<uint32(in.Imm))
		e.retire(in)
	})
	set(isa.OpSRLI, func(e *Executor, in *isa.Inst) {
		e.CPU.WriteX(in.Rd, e.CPU.ReadX(in.Rs1)>>uint32(in.Imm))
		e.retire(in)
	})
	set(isa.OpSRAI, func(e *Executor, in *isa.Inst) {
		e.CPU.WriteX(in.Rd, uint32(int32(e.CPU.ReadX(in.Rs1))>>uint32(in.Imm)))
		e.retire(in)
	})
	set(isa.OpADD, func(e *Executor, in *isa.Inst) {
		e.CPU.WriteX(in.Rd, e.CPU.ReadX(in.Rs1)+e.CPU.ReadX(in.Rs2))
		e.retire(in)
	})
	set(isa.OpSUB, func(e *Executor, in *isa.Inst) {
		e.CPU.WriteX(in.Rd, e.CPU.ReadX(in.Rs1)-e.CPU.ReadX(in.Rs2))
		e.retire(in)
	})
	set(isa.OpSLL, func(e *Executor, in *isa.Inst) {
		e.CPU.WriteX(in.Rd, e.CPU.ReadX(in.Rs1)<<(e.CPU.ReadX(in.Rs2)&31))
		e.retire(in)
	})
	set(isa.OpSLT, func(e *Executor, in *isa.Inst) {
		e.CPU.WriteX(in.Rd, b2u(int32(e.CPU.ReadX(in.Rs1)) < int32(e.CPU.ReadX(in.Rs2))))
		e.retire(in)
	})
	set(isa.OpSLTU, func(e *Executor, in *isa.Inst) {
		e.CPU.WriteX(in.Rd, b2u(e.CPU.ReadX(in.Rs1) < e.CPU.ReadX(in.Rs2)))
		e.retire(in)
	})
	set(isa.OpXOR, func(e *Executor, in *isa.Inst) {
		e.CPU.WriteX(in.Rd, e.CPU.ReadX(in.Rs1)^e.CPU.ReadX(in.Rs2))
		e.retire(in)
	})
	set(isa.OpSRL, func(e *Executor, in *isa.Inst) {
		e.CPU.WriteX(in.Rd, e.CPU.ReadX(in.Rs1)>>(e.CPU.ReadX(in.Rs2)&31))
		e.retire(in)
	})
	set(isa.OpSRA, func(e *Executor, in *isa.Inst) {
		e.CPU.WriteX(in.Rd, uint32(int32(e.CPU.ReadX(in.Rs1))>>(e.CPU.ReadX(in.Rs2)&31)))
		e.retire(in)
	})
	set(isa.OpOR, func(e *Executor, in *isa.Inst) {
		e.CPU.WriteX(in.Rd, e.CPU.ReadX(in.Rs1)|e.CPU.ReadX(in.Rs2))
		e.retire(in)
	})
	set(isa.OpAND, func(e *Executor, in *isa.Inst) {
		e.CPU.WriteX(in.Rd, e.CPU.ReadX(in.Rs1)&e.CPU.ReadX(in.Rs2))
		e.retire(in)
	})

	// ----- Control transfer -----
	set(isa.OpJAL, func(e *Executor, in *isa.Inst) {
		h := e.CPU
		e.jump(in, h.PC+uint32(in.Imm), h.PC+uint32(in.Size))
	})
	set(isa.OpJALR, func(e *Executor, in *isa.Inst) {
		h := e.CPU
		target := (h.ReadX(in.Rs1) + uint32(in.Imm)) &^ 1
		e.jump(in, target, h.PC+uint32(in.Size))
	})
	set(isa.OpBEQ, func(e *Executor, in *isa.Inst) {
		e.branch(in, e.CPU.ReadX(in.Rs1) == e.CPU.ReadX(in.Rs2))
	})
	set(isa.OpBNE, func(e *Executor, in *isa.Inst) {
		e.branch(in, e.CPU.ReadX(in.Rs1) != e.CPU.ReadX(in.Rs2))
	})
	set(isa.OpBLT, func(e *Executor, in *isa.Inst) {
		e.branch(in, int32(e.CPU.ReadX(in.Rs1)) < int32(e.CPU.ReadX(in.Rs2)))
	})
	set(isa.OpBGE, func(e *Executor, in *isa.Inst) {
		e.branch(in, int32(e.CPU.ReadX(in.Rs1)) >= int32(e.CPU.ReadX(in.Rs2)))
	})
	set(isa.OpBLTU, func(e *Executor, in *isa.Inst) {
		e.branch(in, e.CPU.ReadX(in.Rs1) < e.CPU.ReadX(in.Rs2))
	})
	set(isa.OpBGEU, func(e *Executor, in *isa.Inst) {
		e.branch(in, e.CPU.ReadX(in.Rs1) >= e.CPU.ReadX(in.Rs2))
	})

	// ----- Loads / stores -----
	set(isa.OpLB, func(e *Executor, in *isa.Inst) {
		if v, ok := e.load(in, e.CPU.ReadX(in.Rs1), 1); ok {
			e.CPU.WriteX(in.Rd, uint32(int32(int8(v))))
			e.retire(in)
		}
	})
	set(isa.OpLBU, func(e *Executor, in *isa.Inst) {
		if v, ok := e.load(in, e.CPU.ReadX(in.Rs1), 1); ok {
			e.CPU.WriteX(in.Rd, uint32(uint8(v)))
			e.retire(in)
		}
	})
	set(isa.OpLH, func(e *Executor, in *isa.Inst) {
		if v, ok := e.load(in, e.CPU.ReadX(in.Rs1), 2); ok {
			e.CPU.WriteX(in.Rd, uint32(int32(int16(v))))
			e.retire(in)
		}
	})
	set(isa.OpLHU, func(e *Executor, in *isa.Inst) {
		if v, ok := e.load(in, e.CPU.ReadX(in.Rs1), 2); ok {
			e.CPU.WriteX(in.Rd, uint32(uint16(v)))
			e.retire(in)
		}
	})
	set(isa.OpLW, func(e *Executor, in *isa.Inst) {
		if v, ok := e.load(in, e.CPU.ReadX(in.Rs1), 4); ok {
			e.CPU.WriteX(in.Rd, uint32(v))
			e.retire(in)
		}
	})
	set(isa.OpSB, func(e *Executor, in *isa.Inst) {
		if e.store(in, e.CPU.ReadX(in.Rs1), 1, uint64(e.CPU.ReadX(in.Rs2))) {
			e.retire(in)
		}
	})
	set(isa.OpSH, func(e *Executor, in *isa.Inst) {
		if e.store(in, e.CPU.ReadX(in.Rs1), 2, uint64(e.CPU.ReadX(in.Rs2))) {
			e.retire(in)
		}
	})
	set(isa.OpSW, func(e *Executor, in *isa.Inst) {
		if e.store(in, e.CPU.ReadX(in.Rs1), 4, uint64(e.CPU.ReadX(in.Rs2))) {
			e.retire(in)
		}
	})
	set(isa.OpFLW, func(e *Executor, in *isa.Inst) {
		if v, ok := e.load(in, e.CPU.ReadX(in.Rs1), 4); ok {
			e.CPU.WriteF32(in.Rd, uint32(v))
			e.retire(in)
		}
	})
	set(isa.OpFLD, func(e *Executor, in *isa.Inst) {
		if v, ok := e.load(in, e.CPU.ReadX(in.Rs1), 8); ok {
			e.CPU.WriteF64(in.Rd, v)
			e.retire(in)
		}
	})
	set(isa.OpFSW, func(e *Executor, in *isa.Inst) {
		if e.store(in, e.CPU.ReadX(in.Rs1), 4, uint64(e.CPU.ReadF32(in.Rs2))) {
			e.retire(in)
		}
	})
	set(isa.OpFSD, func(e *Executor, in *isa.Inst) {
		if e.store(in, e.CPU.ReadX(in.Rs1), 8, e.CPU.ReadF64(in.Rs2)) {
			e.retire(in)
		}
	})

	// ----- Fences and system -----
	hNOP := func(e *Executor, in *isa.Inst) { e.retire(in) }
	// Memory is sequentially consistent here. OpCustomNOP only exists
	// behind the riscvOVPsim quirk.
	set(isa.OpFENCE, hNOP)
	set(isa.OpFENCEI, hNOP)
	set(isa.OpSFENCEVMA, hNOP)
	set(isa.OpCustomNOP, hNOP)
	set(isa.OpWFI, func(e *Executor, in *isa.Inst) {
		if e.WFIHalts {
			// Stall: PC does not advance, so the run exhausts its
			// instruction limit (there are no interrupt sources).
			return
		}
		e.retire(in)
	})
	set(isa.OpECALL, func(e *Executor, in *isa.Inst) {
		if e.Quirks.EcallMarksCompletion {
			e.CPU.X[26]++
		}
		e.trap(in.Op, hart.CauseECallM, 0)
	})
	set(isa.OpEBREAK, func(e *Executor, in *isa.Inst) {
		if e.EbreakHalts {
			e.Halted = true
			return
		}
		e.trap(in.Op, hart.CauseBreakpoint, e.CPU.PC)
	})
	set(isa.OpMRET, func(e *Executor, in *isa.Inst) {
		e.CPU.MRet()
		e.retireJump(in.Op, true)
	})
	// No supervisor/user trap support in this machine-mode-only model.
	set(isa.OpSRET, hIllegal)
	set(isa.OpURET, hIllegal)

	// ----- Zicsr -----
	hCSR := func(e *Executor, in *isa.Inst) { e.csrOp(in, e.CPU.ReadX(in.Rs1)) }
	set(isa.OpCSRRW, hCSR)
	set(isa.OpCSRRS, hCSR)
	set(isa.OpCSRRC, hCSR)
	set(isa.OpCSRRWI, hCSR)
	set(isa.OpCSRRSI, hCSR)
	set(isa.OpCSRRCI, hCSR)

	// ----- M -----
	set(isa.OpMUL, func(e *Executor, in *isa.Inst) {
		e.CPU.WriteX(in.Rd, e.CPU.ReadX(in.Rs1)*e.CPU.ReadX(in.Rs2))
		e.retire(in)
	})
	set(isa.OpMULH, func(e *Executor, in *isa.Inst) {
		rs1, rs2 := e.CPU.ReadX(in.Rs1), e.CPU.ReadX(in.Rs2)
		e.CPU.WriteX(in.Rd, uint32(uint64(int64(int32(rs1))*int64(int32(rs2)))>>32))
		e.retire(in)
	})
	set(isa.OpMULHSU, func(e *Executor, in *isa.Inst) {
		rs1, rs2 := e.CPU.ReadX(in.Rs1), e.CPU.ReadX(in.Rs2)
		e.CPU.WriteX(in.Rd, uint32(uint64(int64(int32(rs1))*int64(rs2))>>32))
		e.retire(in)
	})
	set(isa.OpMULHU, func(e *Executor, in *isa.Inst) {
		rs1, rs2 := e.CPU.ReadX(in.Rs1), e.CPU.ReadX(in.Rs2)
		e.CPU.WriteX(in.Rd, uint32(uint64(rs1)*uint64(rs2)>>32))
		e.retire(in)
	})
	set(isa.OpDIV, func(e *Executor, in *isa.Inst) {
		rs1, rs2 := e.CPU.ReadX(in.Rs1), e.CPU.ReadX(in.Rs2)
		var v int32
		switch {
		case rs2 == 0:
			v = -1
		case int32(rs1) == -1<<31 && int32(rs2) == -1:
			v = -1 << 31
		default:
			v = int32(rs1) / int32(rs2)
		}
		e.CPU.WriteX(in.Rd, uint32(v))
		e.retire(in)
	})
	set(isa.OpDIVU, func(e *Executor, in *isa.Inst) {
		rs1, rs2 := e.CPU.ReadX(in.Rs1), e.CPU.ReadX(in.Rs2)
		if rs2 == 0 {
			e.CPU.WriteX(in.Rd, ^uint32(0))
		} else {
			e.CPU.WriteX(in.Rd, rs1/rs2)
		}
		e.retire(in)
	})
	set(isa.OpREM, func(e *Executor, in *isa.Inst) {
		rs1, rs2 := e.CPU.ReadX(in.Rs1), e.CPU.ReadX(in.Rs2)
		var v int32
		switch {
		case rs2 == 0:
			v = int32(rs1)
		case int32(rs1) == -1<<31 && int32(rs2) == -1:
			v = 0
		default:
			v = int32(rs1) % int32(rs2)
		}
		e.CPU.WriteX(in.Rd, uint32(v))
		e.retire(in)
	})
	set(isa.OpREMU, func(e *Executor, in *isa.Inst) {
		rs1, rs2 := e.CPU.ReadX(in.Rs1), e.CPU.ReadX(in.Rs2)
		if rs2 == 0 {
			e.CPU.WriteX(in.Rd, rs1)
		} else {
			e.CPU.WriteX(in.Rd, rs1%rs2)
		}
		e.retire(in)
	})

	// ----- A -----
	set(isa.OpLRW, func(e *Executor, in *isa.Inst) {
		h := e.CPU
		rs1 := h.ReadX(in.Rs1)
		if rs1&3 != 0 {
			e.trap(in.Op, hart.CauseMisalignedLoad, rs1)
			return
		}
		v, err := e.Mem.Read32(rs1)
		if err != nil {
			e.trap(in.Op, hart.CauseLoadAccessFault, rs1)
			return
		}
		h.ResValid, h.ResAddr = true, rs1
		h.WriteX(in.Rd, v)
		e.retire(in)
	})
	set(isa.OpSCW, func(e *Executor, in *isa.Inst) {
		h := e.CPU
		rs1, rs2 := h.ReadX(in.Rs1), h.ReadX(in.Rs2)
		if rs1&3 != 0 {
			e.trap(in.Op, hart.CauseMisalignedStore, rs1)
			return
		}
		ok := (h.ResValid && h.ResAddr == rs1) || e.Quirks.SCIgnoresReservation
		h.ResValid = false
		if ok {
			if e.storeWord(rs1, rs2) {
				return // halted
			}
			h.WriteX(in.Rd, 0)
		} else {
			h.WriteX(in.Rd, 1)
		}
		e.retire(in)
	})
	hAMO := func(e *Executor, in *isa.Inst) {
		e.amo(in, e.CPU.ReadX(in.Rs1), e.CPU.ReadX(in.Rs2))
	}
	set(isa.OpAMOSWAPW, hAMO)
	set(isa.OpAMOADDW, hAMO)
	set(isa.OpAMOXORW, hAMO)
	set(isa.OpAMOANDW, hAMO)
	set(isa.OpAMOORW, hAMO)
	set(isa.OpAMOMINW, hAMO)
	set(isa.OpAMOMAXW, hAMO)
	set(isa.OpAMOMINUW, hAMO)
	set(isa.OpAMOMAXUW, hAMO)
}
