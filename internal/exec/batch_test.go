package exec

import (
	"bytes"
	"fmt"
	"slices"
	"strings"
	"testing"

	"rvnegtest/internal/analysis"
	"rvnegtest/internal/hart"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/mem"
)

// TestBatchStatuses drives lanes through the three terminal classes in
// one batch: a clean halt, a seeded decoder crash, and a timeout. Each
// lane's status must match its solo trajectory, and the crash must not
// disturb the neighbours.
func TestBatchStatuses(t *testing.T) {
	halting := newExec(isa.RV32I,
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: 7}),
		enc(isa.Inst{Op: isa.OpSW, Imm: testHaltAddr}),
	)
	crashing := newExec(isa.RV32IMC, 0x0000405b) // sail 32-bit crash pattern
	crashing.Dec = &isa.Decoder{Quirks: isa.Quirks{CrashOnPattern: true}}
	looping := newExec(isa.RV32I, enc(isa.Inst{Op: isa.OpJAL, Rd: 0, Imm: 0}))

	b := Batch{Lanes: []*Executor{halting, crashing, looping}, Quantum: 8}
	status := b.Run(100)

	if !status[0].Done || status[0].Err != nil || status[0].Panicked || !halting.Halted {
		t.Errorf("halting lane: %+v halted=%v", status[0], halting.Halted)
	}
	if halting.CPU.ReadX(1) != 7 {
		t.Errorf("halting lane x1 = %d, want 7", halting.CPU.ReadX(1))
	}
	if !status[1].Panicked || !strings.Contains(status[1].PanicMsg, "sail decoder crash") {
		t.Errorf("crashing lane: %+v", status[1])
	}
	if !status[2].Done || status[2].Err != ErrTimeout || status[2].Panicked {
		t.Errorf("looping lane: %+v", status[2])
	}
	if looping.InstCount != 100 {
		t.Errorf("looping lane ran %d insts, want exactly 100", looping.InstCount)
	}
}

// TestBatchZeroLimit: limit 0 must time every lane out immediately with
// zero instructions executed, matching scalar Run(0).
func TestBatchZeroLimit(t *testing.T) {
	e := newExec(isa.RV32I, enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: 1}))
	b := Batch{Lanes: []*Executor{e}}
	status := b.Run(0)
	if status[0].Err != ErrTimeout || e.InstCount != 0 {
		t.Fatalf("status %+v after %d insts", status[0], e.InstCount)
	}
}

// TestBatchQuantumInvisible pins the quantum-transparency invariant: a
// small quantum interrupts the round loop inside a long fused block, but
// every dispatch still gets the true remaining budget, so the counters
// (Fused included) and the final state are identical to a solo
// Run(limit) regardless of quantum size.
func TestBatchQuantumInvisible(t *testing.T) {
	var prog []uint32
	for i := 1; i <= 40; i++ {
		prog = append(prog, enc(isa.Inst{Op: isa.OpADDI, Rd: 5, Rs1: 5, Imm: 1}))
	}
	prog = append(prog, enc(isa.Inst{Op: isa.OpSW, Imm: testHaltAddr}))

	solo, blocks := fuseProgram(t, isa.RV32I, prog...)
	if blocks == 0 {
		t.Fatal("no fused blocks installed")
	}
	if err := solo.Run(3000); err != nil {
		t.Fatal(err)
	}
	for _, quantum := range []uint64{1, 3, 7, 64} {
		lane, _ := fuseProgram(t, isa.RV32I, prog...)
		b := Batch{Lanes: []*Executor{lane}, Quantum: quantum}
		status := b.Run(3000)
		if !status[0].Done || status[0].Err != nil {
			t.Fatalf("quantum %d: %+v", quantum, status[0])
		}
		sameArch(t, fmt.Sprintf("quantum %d", quantum), solo, lane)
		if got, want := lane.Cache.Stats(), solo.Cache.Stats(); got != want {
			t.Fatalf("quantum %d: stats %+v, solo %+v", quantum, got, want)
		}
	}
}

// TestCloneStatsIndependentInBatch (satellite: CacheStats sharing across
// Clone): three clones of one cache stepped concurrently in a batch must
// keep fully independent counters — lanes with different trajectories
// report different stats, every lane reports exactly its solo-run stats,
// the parent's counters stay untouched, and the campaign fold (plain
// Add in lane order) equals the sum of the solo runs.
func TestCloneStatsIndependentInBatch(t *testing.T) {
	// The store address depends on x1 (preset per lane): lane 0 hits the
	// cached range (an invalidation), lanes 1 and 2 miss it.
	prog := []uint32{
		enc(isa.Inst{Op: isa.OpSLLI, Rd: 3, Rs1: 1, Imm: 12}),
		enc(isa.Inst{Op: isa.OpADDI, Rd: 3, Rs1: 3, Imm: 0x400}),
		enc(isa.Inst{Op: isa.OpSW, Rs1: 3, Rs2: 0}),
		enc(isa.Inst{Op: isa.OpSW, Imm: testHaltAddr}),
	}
	parent := newExec(isa.RV32I, prog...)
	base := attachCache(parent, isa.RV32I)

	mkLane := func(id uint32) *Executor {
		e := newExec(isa.RV32I, prog...)
		e.CPU.X[1] = id
		e.Cache = base.Clone()
		return e
	}
	lanes := []*Executor{mkLane(0), mkLane(1), mkLane(2)}
	b := Batch{Lanes: lanes, Quantum: 2}
	for i, st := range b.Run(100) {
		if !st.Done || st.Err != nil || st.Panicked {
			t.Fatalf("lane %d: %+v", i, st)
		}
	}

	var fold, soloSum CacheStats
	for i, lane := range lanes {
		solo := mkLane(uint32(i))
		if err := solo.Run(100); err != nil {
			t.Fatal(err)
		}
		if got, want := lane.Cache.Stats(), solo.Cache.Stats(); got != want {
			t.Errorf("lane %d stats %+v, solo %+v", i, got, want)
		}
		fold.Add(lane.Cache.Stats())
		soloSum.Add(solo.Cache.Stats())
	}
	if lanes[0].Cache.Stats() == lanes[1].Cache.Stats() {
		t.Error("lanes 0 and 1 report identical stats despite different trajectories")
	}
	if lanes[0].Cache.Stats().Invalidations != 1 {
		t.Errorf("lane 0 invalidations = %d, want 1", lanes[0].Cache.Stats().Invalidations)
	}
	if base.Stats() != (CacheStats{}) {
		t.Errorf("parent cache counters moved: %+v", base.Stats())
	}
	if fold != soloSum {
		t.Errorf("fold %+v != solo sum %+v", fold, soloSum)
	}
}

// --- batch differential fuzzing -------------------------------------

// batchDiffResult extends diffResult with the batch-relevant
// observables: trap count, timeout classification and cache counters.
type batchDiffResult struct {
	cpu      hart.Hart
	mem      []byte
	halted   bool
	insts    uint64
	traps    uint64
	timedOut bool
	panicked bool
	panicMsg string
	stats    CacheStats
	trace    *diffTrace
}

// batchDiffExec builds one executor over bs exactly like runDiff, with
// an optionally fused cache (classical when fused is false).
func batchDiffExec(bs []byte, cfg isa.Config, q isa.Quirks, xq Quirks, fused, trap, hooked bool) (*Executor, *diffTrace) {
	m := mem.New(0, 0x8000)
	if len(bs) > 0x600 {
		bs = bs[:0x600]
	}
	if err := m.LoadImage(0, bs); err != nil {
		panic(err)
	}
	if err := m.Write32(testHandler, enc(isa.Inst{Op: isa.OpSW, Imm: testHaltAddr})); err != nil {
		panic(err)
	}
	dec := &isa.Decoder{Quirks: q}
	cpu := hart.New(cfg)
	cpu.Mtvec = testHandler
	e := New(cpu, m, dec)
	e.HaltAddr = testHaltAddr
	e.Quirks = xq
	if fused {
		code, err := m.ReadBytes(0, fuzzCodeSpan)
		if err != nil {
			panic(err)
		}
		e.Cache = NewDecodeCache(dec.Predecode(0, code), cfg)
		e.Cache.Fuse(analysis.StraightLineExtents(code, trap))
	}
	var tr *diffTrace
	if hooked {
		tr = &diffTrace{}
		e.Hook = tr
	}
	return e, tr
}

func captureBatchDiff(e *Executor, tr *diffTrace) batchDiffResult {
	res := batchDiffResult{
		cpu:    *e.CPU,
		halted: e.Halted,
		insts:  e.InstCount,
		traps:  e.TrapCount,
		stats:  e.Cache.Stats(),
		trace:  tr,
	}
	res.mem, _ = e.Mem.ReadBytes(0, 0x8000)
	return res
}

// soloBatchDiff runs one executor to the budget via Run (the budgeted
// path that enters fused blocks, unlike runDiff's Step loop).
func soloBatchDiff(e *Executor, tr *diffTrace) batchDiffResult {
	var timedOut bool
	var panicked bool
	var panicMsg string
	func() {
		defer func() {
			if r := recover(); r != nil {
				panicked = true
				panicMsg = fmt.Sprint(r)
			}
		}()
		timedOut = e.Run(3000) == ErrTimeout
	}()
	res := captureBatchDiff(e, tr)
	res.timedOut = timedOut
	res.panicked = panicked
	res.panicMsg = panicMsg
	return res
}

func compareBatchDiff(t *testing.T, label string, bs []byte, want, got batchDiffResult, withStats bool) {
	t.Helper()
	if want.panicked != got.panicked || want.panicMsg != got.panicMsg {
		t.Fatalf("%s: panic diverged on %x: (%v, %q) vs (%v, %q)",
			label, bs, want.panicked, want.panicMsg, got.panicked, got.panicMsg)
	}
	if want.cpu != got.cpu {
		t.Fatalf("%s: hart diverged on %x:\nwant pc=%#x mcause=%#x mtval=%#x minstret=%d\ngot  pc=%#x mcause=%#x mtval=%#x minstret=%d",
			label, bs, want.cpu.PC, want.cpu.Mcause, want.cpu.Mtval, want.cpu.Minstret,
			got.cpu.PC, got.cpu.Mcause, got.cpu.Mtval, got.cpu.Minstret)
	}
	if want.halted != got.halted || want.insts != got.insts ||
		want.traps != got.traps || want.timedOut != got.timedOut {
		t.Fatalf("%s: termination diverged on %x: want (halted=%v n=%d traps=%d to=%v) got (halted=%v n=%d traps=%d to=%v)",
			label, bs, want.halted, want.insts, want.traps, want.timedOut,
			got.halted, got.insts, got.traps, got.timedOut)
	}
	if !bytes.Equal(want.mem, got.mem) {
		t.Fatalf("%s: memory diverged on %x", label, bs)
	}
	if withStats && want.stats != got.stats {
		t.Fatalf("%s: cache stats diverged on %x: want %+v got %+v", label, bs, want.stats, got.stats)
	}
	if want.trace != nil && got.trace != nil {
		if !slices.Equal(want.trace.edges, got.trace.edges) {
			t.Fatalf("%s: coverage edges diverged on %x", label, bs)
		}
		if !slices.Equal(want.trace.events, got.trace.events) {
			t.Fatalf("%s: hook events diverged on %x", label, bs)
		}
	}
}

// FuzzExecBatchDifferential is the three-way differential over the
// batch machinery: for each derived input, (A) the classical uncached
// loop, (B) a solo fused Run, and (C) a lane of an exec.Batch with a
// fuzz-chosen quantum must be indistinguishable — hart state, memory,
// traps, timeout classification, decoder panics and (between B and C)
// the cache counters including Fused. The selector additionally picks
// the configuration, the decoder/executor quirk set, the extent family
// and whether a coverage hook is attached (the hooked fused path runs
// every step through the slow per-step route).
func FuzzExecBatchDifferential(f *testing.F) {
	diffSeeds(f)
	f.Fuzz(func(t *testing.T, sel uint8, bs []byte) {
		cfg := fuzzCfgs[int(sel)&3]
		q := fuzzQuirks[(int(sel)>>2)%len(fuzzQuirks)]
		var xq Quirks
		if sel&0x20 != 0 {
			xq = Quirks{LinkBeforeAlignCheck: true, SCIgnoresReservation: true, EcallMarksCompletion: true}
		}
		trap := sel&0x10 != 0
		hooked := sel&0x80 != 0
		quantum := []uint64{0, 1, 7, 64}[(int(sel)>>5)&3]

		// Three overlapping inputs derived from bs: the full stream, a
		// truncation and a shifted suffix (distinct decode phases).
		inputs := [][]byte{bs, bs[:(len(bs)/3)*2], bs[len(bs)/3:]}

		want := make([]batchDiffResult, len(inputs))
		lanes := make([]*Executor, len(inputs))
		traces := make([]*diffTrace, len(inputs))
		for i, in := range inputs {
			ce, ctr := batchDiffExec(in, cfg, q, xq, false, trap, hooked)
			classical := soloBatchDiff(ce, ctr)
			fe, ftr := batchDiffExec(in, cfg, q, xq, true, trap, hooked)
			want[i] = soloBatchDiff(fe, ftr)
			compareBatchDiff(t, fmt.Sprintf("fused[%d]", i), in, classical, want[i], false)
			lanes[i], traces[i] = batchDiffExec(in, cfg, q, xq, true, trap, hooked)
		}

		b := Batch{Lanes: lanes, Quantum: quantum}
		status := b.Run(3000)
		for i := range inputs {
			got := captureBatchDiff(lanes[i], traces[i])
			got.timedOut = status[i].Err == ErrTimeout
			got.panicked = status[i].Panicked
			got.panicMsg = status[i].PanicMsg
			compareBatchDiff(t, fmt.Sprintf("batch[%d]", i), inputs[i], want[i], got, true)
		}
	})
}
