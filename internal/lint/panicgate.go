package lint

import (
	"go/ast"
	"strings"
)

// panicgateAllow is the reviewed allowlist of intentional panics,
// keyed like wallclockAllow ("pkg-relative-path.Type.Method" or
// ".Func"). Three classes are sanctioned:
//
//   - seeded-defect behaviour: the sail-style decoder *crashes* on
//     malformed encodings by design — that crash is the divergence the
//     paper's negative testing hunts for;
//   - fault injection: sim.Faulty exists to panic on cue so the
//     watchdog/breaker/quarantine machinery has something to catch;
//   - init-time table invariants: a corrupt instruction table must
//     stop the process before any campaign starts.
//
// Functions named Must* are exempt by convention (documented
// panic-on-error wrappers). Everything else needs a //rvlint:allow
// panicgate with a reason, or should return an error.
var panicgateAllow = map[string]string{
	"internal/isa.init":                       "init-time instruction-table invariants must stop the process",
	"internal/isa.Decoder.Decode32":           "seeded sail decoder crash (paper defect class: the crash IS the divergence)",
	"internal/isa.Decoder.DecodeC":            "seeded sail decoder crash (paper defect class: the crash IS the divergence)",
	"internal/sim.Faulty.RunHooked":           "fault injection is this type's purpose; the watchdog catches it",
	"internal/sim.faultyBatch.RunHookedBatch": "batch-level fault injection (same purpose; the batch guard catches it)",
	"internal/mem.Memory.Restore":             "API-misuse guard (Restore without Snapshot)",
}

// Panicgate extends the PR 3 panic audit mechanically: no `panic(` in
// internal/... outside the reviewed allowlist above. Library code that
// panics takes down a whole campaign worker; the resilience layer turns
// errors into quarantined cases, but only if they ARE errors.
var Panicgate = &Analyzer{
	Name: "panicgate",
	Doc:  "bans panic() in internal packages outside a reviewed allowlist; library code returns errors",
	Run:  runPanicgate,
}

func runPanicgate(pass *Pass) error {
	if !pass.PathWithin("internal") {
		return nil
	}
	rel := relPath(pass)
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" || pass.TypesInfo.Uses[id] == nil || pass.TypesInfo.Uses[id].Pkg() != nil {
				return true // shadowed panic or not the builtin
			}
			key := pass.FuncKey(f, call.Pos())
			if _, ok := panicgateAllow[rel+"."+key]; ok {
				return true
			}
			if fn := key[strings.LastIndexByte(key, '.')+1:]; strings.HasPrefix(fn, "Must") {
				return true
			}
			pass.Reportf(call.Pos(), "panic in internal package %s: return an error (resilience quarantines failing cases only if they fail as errors), or add to the reviewed panicgate allowlist", rel)
			return true
		})
	}
	return nil
}
