package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// mapdetPaths are the packages whose outputs must be bit-identical
// across runs: report rendering, shard merge, checkpoint encoding, the
// obs Collapse/snapshot surface, and the linter's own diagnostics.
// Map iteration order is randomized per run, so a bare `range m` in
// these packages is a determinism hazard unless the loop body is an
// order-insensitive fold (see orderInsensitive) or the keys were
// collected and sorted first.
var mapdetPaths = []string{
	"internal/campaign",
	"internal/compliance",
	"internal/fuzz",
	"internal/obs",
	"internal/resilience",
	"internal/sig",
	"internal/lint",
	"cmd",
}

// Mapdet flags `range` over a map in deterministic-output code. The
// blessed patterns stay silent:
//
//   - collect-then-sort: the body only appends keys/values to slices
//     (ordering is imposed afterwards by the mandatory sort);
//   - map rebuild: the body only writes m2[k] = v / delete(m2, k)
//     keyed by the loop's own key variable (distinct keys, so the
//     result is iteration-order independent);
//   - commutative integer folds: `x += v`, `x |= v`, `n++` and friends
//     on integer types (addition and bitwise ops commute; float
//     accumulation does NOT and is flagged).
//
// Anything else — conditionals, early exits, I/O, float math — must
// iterate sorted keys or carry a reviewed //rvlint:allow mapdet.
var Mapdet = &Analyzer{
	Name: "mapdet",
	Doc:  "flags map iteration in deterministic-output code unless the body is provably order-insensitive",
	Run:  runMapdet,
}

func runMapdet(pass *Pass) error {
	if !inAnyPath(pass, mapdetPaths) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitive(pass, rs) {
				return true
			}
			pass.Reportf(rs.Pos(), "map iteration order is random: sort the keys first, or make the body an order-insensitive fold (append-collect, m[k]=v rebuild, integer +=)")
			return true
		})
	}
	return nil
}

func inAnyPath(pass *Pass, rels []string) bool {
	for _, rel := range rels {
		if pass.PathWithin(rel) {
			return true
		}
	}
	return false
}

// orderInsensitive reports whether every statement in the range body is
// one of the whitelisted commutative forms.
func orderInsensitive(pass *Pass, rs *ast.RangeStmt) bool {
	keyIdent, _ := rs.Key.(*ast.Ident)
	for _, stmt := range rs.Body.List {
		if !orderInsensitiveStmt(pass, stmt, keyIdent) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(pass *Pass, stmt ast.Stmt, key *ast.Ident) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		lhs, rhs := s.Lhs[0], s.Rhs[0]
		switch s.Tok {
		case token.ASSIGN, token.DEFINE:
			// x = append(x, ...): collect for a later sort.
			if call, ok := rhs.(*ast.CallExpr); ok {
				if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" && len(call.Args) > 0 && sameExprText(lhs, call.Args[0]) {
					return true
				}
			}
			// m2[k] = v keyed by the loop's key variable: distinct
			// keys, so insertion order cannot matter.
			if ix, ok := lhs.(*ast.IndexExpr); ok && key != nil {
				if id, ok := ix.Index.(*ast.Ident); ok && id.Name == key.Name {
					return true
				}
			}
			return false
		case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			// Commutative only over integers; float addition is
			// order-sensitive in the low bits.
			return isIntegerExpr(pass, lhs)
		}
		return false
	case *ast.IncDecStmt:
		return isIntegerExpr(pass, s.X)
	case *ast.ExprStmt:
		// delete(m2, k): each key removed at most once.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "delete" {
				return true
			}
		}
		return false
	case *ast.RangeStmt:
		// A nested range (flattening a map of maps into a pair slice
		// for sorting or a commutative fold) is fine when its own body
		// is order-insensitive.
		return orderInsensitive(pass, s)
	}
	return false
}

func isIntegerExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// sameExprText reports whether two expressions are the same simple
// ident/selector chain (used to match `x = append(x, ...)`).
func sameExprText(a, b ast.Expr) bool {
	return flatName(a) != "" && flatName(a) == flatName(b)
}

func flatName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if base := flatName(x.X); base != "" {
			return base + "." + x.Sel.Name
		}
	}
	return ""
}
