// Package lint implements rvnegtest's domain-specific static analysis
// suite: a set of analyzers that mechanically enforce the repository's
// determinism and robustness invariants (bit-identical campaigns across
// worker counts, predecode on/off, and kill-and-resume).
//
// The design follows golang.org/x/tools/go/analysis — an Analyzer is a
// named check over one type-checked package — but is implemented on the
// standard library alone so the linter builds in a hermetic environment
// with no module downloads. Two drivers exist in cmd/rvlint: a
// standalone loader (load.go) that analyzes `go list` patterns, and a
// `go vet -vettool` compilation-unit checker (unitchecker.go) speaking
// the vet command-line protocol, which is how CI runs the suite.
//
// Suppression: a finding is silenced by a comment of the form
//
//	//rvlint:allow <name>... [-- reason]
//
// placed either on the offending line or on the line directly above it.
// Every allow comment is a reviewed exception; the reason is free text
// after the `--` separator. Analyzer-specific built-in allowlists (see
// wallclock.go, panicgate.go) cover recurring sanctioned patterns so
// the source is not littered with repeated suppressions.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// modulePrefix scopes every analyzer to this repository's packages;
// dependency units handed to the vettool driver (std library facts
// passes) are skipped wholesale.
const modulePrefix = "rvnegtest"

// An Analyzer is one named invariant check run over a type-checked
// package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //rvlint:allow comments. Lowercase, no spaces.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// Run reports findings through pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass carries one package's parsed and type-checked state through an
// analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	PkgPath   string // import path as the build system reports it (may carry a " [test]" variant suffix)
	TypesInfo *types.Info

	diags []Diagnostic
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf records a finding. Suppression (allow comments) is applied by
// the driver after the analyzer returns, so analyzers report
// unconditionally.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// InModule reports whether the pass's package belongs to this
// repository (as opposed to a dependency unit vetted only for facts).
func (p *Pass) InModule() bool {
	return p.PkgPath == modulePrefix || strings.HasPrefix(p.PkgPath, modulePrefix+"/")
}

// PathWithin reports whether the package's import path equals or is
// nested under modulePrefix/<rel>. The " [pkg.test]" suffix go vet uses
// for internal test variants is ignored.
func (p *Pass) PathWithin(rel string) bool {
	path := p.PkgPath
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	full := modulePrefix + "/" + rel
	return path == full || strings.HasPrefix(path, full+"/")
}

// IsTestFile reports whether the file is a _test.go file. The suite
// checks shipped code; test scaffolding may use wall clocks, ad-hoc
// RNGs and panics freely.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.File(f.Pos()).Name(), "_test.go")
}

// FuncKey names the function declaration enclosing pos as
// "Func" or "Type.Method" (pointerness of the receiver erased), for
// matching against built-in allowlists. Returns "" at file scope.
func (p *Pass) FuncKey(file *ast.File, pos token.Pos) string {
	for _, d := range file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || pos < fd.Pos() || pos >= fd.End() {
			continue
		}
		if fd.Recv == nil || len(fd.Recv.List) == 0 {
			return fd.Name.Name
		}
		t := fd.Recv.List[0].Type
		if st, ok := t.(*ast.StarExpr); ok {
			t = st.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + fd.Name.Name
		}
		return fd.Name.Name
	}
	return ""
}

// RunAnalyzers executes every analyzer over the pass's package,
// filters findings through //rvlint:allow comments, and returns the
// surviving diagnostics sorted by position then analyzer name.
func RunAnalyzers(pass *Pass, analyzers []*Analyzer) ([]Diagnostic, error) {
	allowed := collectAllows(pass.Fset, pass.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		sub := &Pass{
			Analyzer:  a,
			Fset:      pass.Fset,
			Files:     pass.Files,
			Pkg:       pass.Pkg,
			PkgPath:   pass.PkgPath,
			TypesInfo: pass.TypesInfo,
		}
		if err := a.Run(sub); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		for _, d := range sub.diags {
			if !allowed.covers(pass.Fset.Position(d.Pos), a.Name) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := pass.Fset.Position(out[i].Pos), pass.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// allowSet maps file -> line -> analyzer names suppressed on that line.
type allowSet map[string]map[int]map[string]bool

func (s allowSet) covers(pos token.Position, analyzer string) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	names := lines[pos.Line]
	return names != nil && (names[analyzer] || names["*"])
}

// collectAllows scans every comment for //rvlint:allow directives. A
// directive covers its own line and the line below it, so both trailing
// comments and comments placed above a statement work.
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	set := allowSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := parseAllow(c.Text)
				if len(names) == 0 {
					continue
				}
				p := fset.Position(c.Pos())
				lines := set[p.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set[p.Filename] = lines
				}
				for _, ln := range []int{p.Line, p.Line + 1} {
					m := lines[ln]
					if m == nil {
						m = map[string]bool{}
						lines[ln] = m
					}
					for _, n := range names {
						m[n] = true
					}
				}
			}
		}
	}
	return set
}

// parseAllow extracts analyzer names from one comment's text, e.g.
// "//rvlint:allow wallclock globalrand -- campaign deadline". Returns
// nil when the comment is not an allow directive.
func parseAllow(text string) []string {
	const marker = "rvlint:allow"
	i := strings.Index(text, marker)
	if i < 0 {
		return nil
	}
	rest := text[i+len(marker):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil // e.g. "rvlint:allowance"
	}
	var names []string
	for _, f := range strings.Fields(rest) {
		if f == "--" {
			break
		}
		names = append(names, f)
	}
	return names
}

// named unwraps type aliases and returns the *types.Named behind t, or
// nil.
func namedOf(t types.Type) *types.Named {
	n, _ := types.Unalias(t).(*types.Named)
	return n
}

// deref removes one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := types.Unalias(t).Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
