// Fixture for the mapdet analyzer, analyzed under a deterministic-
// output package path. Each `// want` line must fire; everything else
// must stay silent.
package fixtures

import "sort"

func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m { // silent: append-collect for a later sort
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func renderUnsorted(m map[string]int) []string {
	var out []string
	for k, v := range m { // want "map iteration order is random"
		if v > 0 {
			out = append(out, k)
		}
	}
	return out
}

func rebuild(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m { // silent: keyed rebuild, distinct keys
		out[k] = v
	}
	return out
}

func intFold(m map[string]int) (sum int) {
	for _, v := range m { // silent: integer addition commutes
		sum += v
	}
	return sum
}

func floatFold(m map[string]float64) (sum float64) {
	for _, v := range m { // want "map iteration order is random"
		sum += v
	}
	return sum
}

func nestedCollect(mm map[int]map[string]int) []string {
	var out []string
	for _, inner := range mm { // silent: nested append-collect
		for k := range inner {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func prune(m map[string]int, dead map[string]bool) {
	for k := range m { // silent: delete fold
		delete(dead, k)
	}
}

func suppressed(m map[string]int) string {
	s := ""
	//rvlint:allow mapdet -- fixture: order genuinely irrelevant here
	for k := range m { // silent: suppressed by the allow comment above
		if len(k) > len(s) {
			s = k
		}
	}
	return s
}

func sliceRange(xs []int) (sum int) {
	for _, v := range xs { // silent: slices iterate in order
		if v > 0 {
			sum += v
		}
	}
	return sum
}
