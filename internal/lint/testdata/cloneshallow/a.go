// Fixture for the cloneshallow analyzer (scope: whole module).
package fixtures

// Shallow whole-struct copy: both reference fields alias through the
// single `c := *s` site, so two diagnostics land on that line.
type Log struct {
	Trace []uint64
	ByKey map[string]int
	N     int
}

func (s *Log) Clone() *Log {
	c := *s // want "aliases the receiver's (slice|map) field"
	return &c
}

// Deep copy after the whole-struct copy: both fields reassigned with
// non-aliasing right-hand sides.
type LogDeep struct {
	Trace []uint64
	ByKey map[string]int
}

func (s *LogDeep) Clone() *LogDeep {
	c := *s // silent: both reference fields deep-copied below
	c.Trace = append([]uint64(nil), s.Trace...)
	c.ByKey = make(map[string]int, len(s.ByKey))
	for k, v := range s.ByKey {
		c.ByKey[k] = v
	}
	return &c
}

// Composite literal that omits the slice field: the zero value aliases
// nothing.
type LogOmit struct {
	Trace []uint64
	N     int
}

func (s *LogOmit) Clone() *LogOmit {
	return &LogOmit{N: s.N} // silent
}

// Composite literal that copies the field by bare selector: aliased.
type LogLit struct {
	Trace []uint64
}

func (s *LogLit) Snapshot() *LogLit {
	return &LogLit{
		Trace: s.Trace, // want "aliases the receiver's slice field"
	}
}

// Value receiver returned directly: the struct copy still shares the
// backing array.
type LogVal struct {
	Trace []uint64
}

func (s LogVal) Clone() LogVal {
	return s // want "aliases the receiver's slice field"
}

// Array fields copy by value; nothing to report.
type Regs struct {
	X [8]uint64
}

func (s *Regs) Clone() *Regs {
	c := *s // silent: arrays copy by value
	return &c
}

// A helper-call right-hand side counts as the deep copy.
type LogHelper struct {
	Trace []uint64
}

func cloneSlice(xs []uint64) []uint64 {
	return append([]uint64(nil), xs...)
}

func (s *LogHelper) Clone() *LogHelper {
	c := *s // silent: reassigned via helper below
	c.Trace = cloneSlice(s.Trace)
	return &c
}

// Snapshot with no results is save-state, not clone-shaped: out of
// scope even though it touches reference fields.
type Saver struct {
	Trace []uint64
	saved []uint64
}

func (s *Saver) Snapshot() {
	s.saved = s.Trace // silent: not a clone method
}

// Suppressed: the alias is intentional (copy-on-write discipline is
// documented at the call sites).
type LogCOW struct {
	Trace []uint64
}

func (s *LogCOW) Clone() *LogCOW {
	//rvlint:allow cloneshallow -- fixture: copy-on-write by convention
	c := *s // silent: suppressed
	return &c
}
