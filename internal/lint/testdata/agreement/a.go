// Seeded aliasing bug for the analyzer/runtime agreement test. The
// ShallowTrace.Clone below is the exact defect shape the cloneshallow
// analyzer exists to catch: a whole-struct copy that shares the Trace
// backing array. agreement_test.go runs the analyzer over this file AND
// executes the same method shape at runtime, asserting both sides call
// it a bug.
package fixtures

type ShallowTrace struct {
	Trace []uint64
	PC    uint64
}

func (s *ShallowTrace) Clone() *ShallowTrace {
	c := *s // want "aliases the receiver's slice field"
	return &c
}

// DeepTrace is the fixed counterpart: the analyzer is silent and the
// runtime probe observes no shared mutation.
type DeepTrace struct {
	Trace []uint64
	PC    uint64
}

func (s *DeepTrace) Clone() *DeepTrace {
	c := *s // silent: Trace deep-copied below
	c.Trace = append([]uint64(nil), s.Trace...)
	return &c
}
