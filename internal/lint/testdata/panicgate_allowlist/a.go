// A panic inside an allowlisted function: the builtin allowlist keys
// on "<pkg-rel-path>.<Type.Method>", here internal/mem.Memory.Restore.
package fixtures

type Memory struct{ snapped bool }

func (m *Memory) Restore() {
	if !m.snapped {
		panic("Restore without Snapshot") // silent: builtin allowlist
	}
}
