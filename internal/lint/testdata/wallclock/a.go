// Fixture for the wallclock analyzer, analyzed as
// rvnegtest/internal/fuzz (a determinism-bound package with allowlist
// entries for Fuzzer.Step and Fuzzer.RunContext).
package fixtures

import "time"

type Fuzzer struct{ last time.Time }

// Step is on the wallclock allowlist (telemetry timers): silent.
func (f *Fuzzer) Step() {
	f.last = time.Now()
}

// fingerprint is NOT allowlisted: every read fires.
func (f *Fuzzer) fingerprint() int64 {
	t := time.Now() // want "wall-clock read \(time.Now\)"
	return t.UnixNano()
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "wall-clock read \(time.Since\)"
}

func remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want "wall-clock read \(time.Until\)"
}

func suppressedTimer() time.Time {
	//rvlint:allow wallclock -- fixture: one-off timer with a reviewed reason
	return time.Now() // silent: suppressed
}

func notTheClock() time.Duration {
	// Durations and constants are fine; only reading the clock is
	// banned.
	return 5 * time.Second // silent
}
