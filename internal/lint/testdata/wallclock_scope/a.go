// Wall-clock reads under the internal/obs path: the telemetry layer is
// the sanctioned home for timers, so the analyzer must stay silent.
package fixtures

import "time"

func stamp() time.Time { return time.Now() }
