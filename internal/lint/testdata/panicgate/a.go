// Fixture for the panicgate analyzer, analyzed as
// rvnegtest/internal/exec (internal/, not on the allowlist).
package fixtures

import "fmt"

func plainPanic(op string) {
	panic("unknown op " + op) // want "panic in internal package"
}

// Must-prefixed helpers are the sanctioned programmer-error idiom.
func MustParse(s string) int {
	if s == "" {
		panic("MustParse on empty string") // silent: Must* exemption
	}
	return len(s)
}

func viaFmt(op string) error {
	return fmt.Errorf("unknown op %s", op) // silent: errors are the rule
}

func suppressedPanic() {
	//rvlint:allow panicgate -- fixture: unreachable by construction
	panic("unreachable") // silent: suppressed
}

// A local function named panic shadows the builtin; calling it is not a
// runtime panic.
func shadowed() {
	panic := func(string) {}
	panic("not the builtin") // silent: not the builtin
}
