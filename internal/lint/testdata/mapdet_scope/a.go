// The same hazardous pattern as the mapdet fixture, but this package
// is analyzed under a path outside the deterministic-output set — the
// analyzer must not fire.
package fixtures

func renderUnsorted(m map[string]int) []string {
	var out []string
	for k, v := range m {
		if v > 0 {
			out = append(out, k)
		}
	}
	return out
}
