// The banned patterns under internal/resilience itself: the package
// that implements the sanctioned source is exempt.
package fixtures

import "math/rand"

func packageLevel() int        { return rand.Intn(10) }
func adHocSource() rand.Source { return rand.NewSource(1) }
