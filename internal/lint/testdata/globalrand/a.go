// Fixture for the globalrand analyzer, analyzed as
// rvnegtest/internal/fuzz (outside the resilience exemption).
package fixtures

import (
	"math/rand"

	"rvnegtest/internal/resilience"
)

func packageLevel() int {
	return rand.Intn(10) // want "math/rand.Intn draws from non-resumable state"
}

func adHocSource() rand.Source {
	return rand.NewSource(1) // want "math/rand.NewSource draws from non-resumable state"
}

func wrapWrongSource(src rand.Source) *rand.Rand {
	return rand.New(src) // want "rand.New outside internal/resilience must wrap a \*resilience.RNG"
}

func wrapSanctioned(seed int64) *rand.Rand {
	return rand.New(resilience.NewRNG(seed)) // silent: the one legal shape
}

func methodOnInstance(r *rand.Rand) int {
	return r.Intn(10) // silent: draws from an explicit, threadable source
}

var _ rand.Source64 = (*resilience.RNG)(nil) // silent: type reference, not a draw

func suppressed() float64 {
	//rvlint:allow globalrand -- fixture: reviewed one-off
	return rand.Float64() // silent: suppressed
}
