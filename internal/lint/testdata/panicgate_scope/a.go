// panicgate governs internal/ only; command packages keep their own
// fatalf conventions.
package fixtures

func cliPanic() {
	panic("usage: rvfuzz -seed N")
}
