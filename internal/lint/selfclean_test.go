package lint

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestRepoSelfClean is the linter's own acceptance gate: every analyzer
// over every package in the module, zero findings. A regression here
// means either new code violated an invariant or an analyzer grew a
// false positive — both block the PR.
func TestRepoSelfClean(t *testing.T) {
	var buf bytes.Buffer
	n, err := RunStandalone(&buf, moduleRoot(t), []string{"./..."}, Analyzers())
	if err != nil {
		t.Fatalf("standalone run: %v", err)
	}
	if n != 0 {
		t.Errorf("rvlint found %d issue(s) in the tree:\n%s", n, buf.String())
	}
}

// TestVetProtocol exercises the real cmd/go integration end to end:
// build cmd/rvlint, then run `go vet -vettool=rvlint` on a small
// package. This is the only test that covers the unitchecker path
// (-V=full handshake, -flags query, vet.cfg unit config, facts file).
func TestVetProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	root := moduleRoot(t)
	tool := filepath.Join(t.TempDir(), "rvlint")

	build := exec.Command("go", "build", "-o", tool, "./cmd/rvlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build cmd/rvlint: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+tool, "./internal/mem")
	vet.Dir = root
	vet.Env = os.Environ()
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=rvlint ./internal/mem: %v\n%s", err, out)
	}
}
