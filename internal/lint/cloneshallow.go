package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Cloneshallow checks that every Clone/Snapshot method returning its
// receiver's type deep-copies the receiver's slice and map fields.
// A clone that aliases a slice lets the original and the copy observe
// (or race on) each other's mutations — the exact bug class behind the
// Fuzzer.Stats Trace aliasing, the checkpoint Trace aliasing, and the
// RunStats.PerWorker aliasing fixed one by one in earlier PRs.
//
// The check is syntactic over the method body:
//
//   - a whole-struct copy (`c := *s`, `s` returned by value, or an
//     explicit `Field: s.Field` in a composite literal) marks a
//     reference field as aliased;
//   - any later assignment `x.Field = <expr>` whose right-hand side is
//     not the bare source selector (append, make, nil, a helper call)
//     counts as the deep copy and clears the field;
//   - omitting a field from a composite literal is fine: the zero
//     value aliases nothing.
//
// Arrays and scalars copy by value; pointer fields are deliberately out
// of scope (sharing an immutable predecode image via pointer is the
// intended design).
var Cloneshallow = &Analyzer{
	Name: "cloneshallow",
	Doc:  "Clone/Snapshot methods must deep-copy slice and map fields of their receiver",
	Run:  runCloneshallow,
}

var cloneMethodNames = map[string]bool{"Clone": true, "Snapshot": true}

func runCloneshallow(pass *Pass) error {
	if !pass.InModule() {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !cloneMethodNames[fd.Name.Name] {
				continue
			}
			checkCloneMethod(pass, fd)
		}
	}
	return nil
}

func checkCloneMethod(pass *Pass, fd *ast.FuncDecl) {
	recv := fd.Recv.List[0]
	if len(recv.Names) == 0 {
		return
	}
	recvName := recv.Names[0].Name
	recvObj := pass.TypesInfo.Defs[recv.Names[0]]
	if recvObj == nil {
		return
	}
	base := namedOf(deref(recvObj.Type()))
	if base == nil {
		return
	}
	st, ok := base.Underlying().(*types.Struct)
	if !ok {
		return
	}
	// Only methods that return the receiver's type are clone-shaped;
	// e.g. Memory.Snapshot() (save-state, no results) is not.
	if !returnsReceiverType(pass, fd, base) {
		return
	}
	refFields := map[string]bool{}
	for i := 0; i < st.NumFields(); i++ {
		switch st.Field(i).Type().Underlying().(type) {
		case *types.Slice, *types.Map:
			refFields[st.Field(i).Name()] = true
		}
	}
	if len(refFields) == 0 {
		return
	}

	aliased := map[string]token.Pos{} // field -> pos of the aliasing site
	fixed := map[string]bool{}        // field -> a deep-copying assignment exists
	wholeCopy := token.NoPos

	markWholeCopy := func(pos token.Pos) {
		if wholeCopy == token.NoPos {
			wholeCopy = pos
		}
	}
	// bareRecvSelector reports whether e is exactly `recv.F` (possibly
	// parenthesized), the shallow-alias shape.
	bareRecvSelector := func(e ast.Expr) (string, bool) {
		e = ast.Unparen(e)
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || id.Name != recvName {
			return "", false
		}
		return sel.Sel.Name, refFields[sel.Sel.Name]
	}
	// isRecvValue reports whether e is the receiver copied by value:
	// `*recv` for a pointer receiver, or bare `recv` for a value one.
	isRecvValue := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if star, ok := e.(*ast.StarExpr); ok {
			e = ast.Unparen(star.X)
		}
		id, ok := e.(*ast.Ident)
		return ok && id.Name == recvName
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if i >= len(x.Rhs) {
					break
				}
				rhs := x.Rhs[i]
				// c := *s / c = *s / return-value staging.
				if isRecvValue(rhs) {
					markWholeCopy(x.Pos())
					continue
				}
				// x.F = <expr>: aliasing if expr is bare s.F, a deep
				// copy otherwise.
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && refFields[sel.Sel.Name] {
					if f, bare := bareRecvSelector(rhs); bare && f == sel.Sel.Name {
						aliased[f] = rhs.Pos()
					} else {
						fixed[sel.Sel.Name] = true
					}
				}
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || !refFields[key.Name] {
					continue
				}
				if f, bare := bareRecvSelector(kv.Value); bare && f == key.Name {
					aliased[key.Name] = kv.Value.Pos()
				} else {
					fixed[key.Name] = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if isRecvValue(res) {
					markWholeCopy(x.Pos())
				}
				if u, ok := ast.Unparen(res).(*ast.UnaryExpr); ok && u.Op == token.AND && isRecvValue(u.X) {
					markWholeCopy(x.Pos())
				}
			}
		}
		return true
	})

	// Report in struct-field order for deterministic output. A
	// whole-struct copy counts as the aliasing site for any reference
	// field not explicitly assigned.
	for i := 0; i < st.NumFields(); i++ {
		name := st.Field(i).Name()
		if !refFields[name] {
			continue
		}
		pos, bad := aliased[name]
		if !bad && wholeCopy != token.NoPos {
			pos, bad = wholeCopy, true
		}
		if bad && !fixed[name] {
			pass.Reportf(pos, "%s.%s aliases the receiver's %s field %q: deep-copy it (append([]T(nil), s.%s...) / maps-style copy) or the clone and original will share mutations", base.Obj().Name(), fd.Name.Name, typeKind(st.Field(i).Type()), name, name)
		}
	}
}

func typeKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "reference"
}

func returnsReceiverType(pass *Pass, fd *ast.FuncDecl, base *types.Named) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, res := range fd.Type.Results.List {
		tv, ok := pass.TypesInfo.Types[res.Type]
		if !ok {
			continue
		}
		if n := namedOf(deref(tv.Type)); n != nil && n.Obj() == base.Obj() {
			return true
		}
	}
	return false
}
