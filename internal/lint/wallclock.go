package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// wallclockPaths are the determinism-bound packages: everything that
// feeds signatures, checkpoint fingerprints, or campaign results. The
// telemetry layer (internal/obs) is the sanctioned home for wall-clock
// reads and is deliberately absent, as are the CLIs (progress output).
var wallclockPaths = []string{
	"internal/analysis",
	"internal/compliance",
	"internal/coverage",
	"internal/csrtest",
	"internal/exec",
	"internal/filter",
	"internal/fuzz",
	"internal/hart",
	"internal/isa",
	"internal/mem",
	"internal/resilience",
	"internal/sig",
	"internal/sim",
	"internal/template",
	"internal/torture",
}

// wallclockAllow is the reviewed allowlist of telemetry timers: each
// entry is a function (keyed pkg-relative, "Type.Method" or "Func")
// whose wall-clock reads feed stage timers, rate stats, or duration
// accounting — never a checkpoint fingerprint, signature, or
// campaign-visible result. One-off sites outside these functions use
// //rvlint:allow wallclock with a reason instead.
var wallclockAllow = map[string]string{
	"internal/compliance.Runner.run":               "RunStats.Duration / CasesPerSec accounting",
	"internal/compliance.Runner.runConfigSerial":   "shard_done event timing",
	"internal/compliance.Runner.runConfigParallel": "per-shard duration telemetry (WorkerStats.DurNS)",
	"internal/compliance.foldVerdict":              "signature-compare stage timer",
	"internal/compliance.instance.run":             "per-SUT stage timers",
	"internal/compliance.instance.runBatch":        "batched execute-stage timer",
	"internal/fuzz.Fuzzer.Step":                    "stage timers + execs/sec session accounting",
	"internal/fuzz.Fuzzer.execScalar":              "execute-stage timer (the post-filter body of Step)",
	"internal/fuzz.Fuzzer.stepBatch":               "batch stage timers + execs/sec session accounting",
	"internal/fuzz.Fuzzer.RunContext":              "wall-clock campaign budget (-duration flag)",
	"internal/fuzz.Fuzzer.SaveCheckpoint":          "checkpoint stage timer (save latency, never in the fingerprint)",
	"internal/sim.Simulator.RunHooked":             "per-run stage timers",
}

// Wallclock flags time.Now / time.Since / time.Until in
// determinism-bound packages. Wall-clock values leaking into
// signatures, fingerprints, or merge ordering break the bit-identical
// campaign guarantee in ways that only surface under load or resume;
// telemetry timers belong in internal/obs or on the reviewed
// allowlist above.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "flags wall-clock reads (time.Now/Since/Until) in determinism-bound packages outside the telemetry-timer allowlist",
	Run:  runWallclock,
}

var wallclockBanned = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWallclock(pass *Pass) error {
	if !inAnyPath(pass, wallclockPaths) {
		return nil
	}
	rel := relPath(pass)
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !wallclockBanned[sel.Sel.Name] {
				return true
			}
			if !isPkgSelector(pass, sel, "time") {
				return true
			}
			if _, ok := wallclockAllow[rel+"."+pass.FuncKey(f, sel.Pos())]; ok {
				return true
			}
			pass.Reportf(sel.Pos(), "wall-clock read (time.%s) in determinism-bound package %s: route timing through internal/obs or add the function to the wallclock allowlist", sel.Sel.Name, rel)
			return true
		})
	}
	return nil
}

// relPath returns the import path with the module prefix and any
// " [test]" variant suffix stripped: "internal/fuzz".
func relPath(pass *Pass) string {
	path := pass.PkgPath
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return strings.TrimPrefix(path, modulePrefix+"/")
}

// isPkgSelector reports whether sel is a selection off the named
// package (resolved through the type info, so import renames work).
func isPkgSelector(pass *Pass, sel *ast.SelectorExpr, pkgPath string) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[id]
	if !ok {
		return false
	}
	pn, ok := obj.(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}
