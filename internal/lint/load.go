package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// The standalone loader: `go list -export -deps -json` enumerates the
// requested packages plus every dependency's compiled export data
// (served from the build cache, no network), and each target package
// is parsed and type-checked against that export data — the same
// type-information diet `go vet` feeds its vettool, without needing a
// driving build system.

// A Unit is one parsed, type-checked package ready for analysis.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Path  string
}

type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// GoList runs `go list -export -deps -json` in dir and decodes the
// package stream.
func GoList(dir string, patterns ...string) ([]*listPkg, error) {
	args := append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter satisfies types.Importer from a path→export-file map.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// LoadPackages loads, parses, and type-checks the packages matching
// patterns under dir.
func LoadPackages(dir string, patterns ...string) ([]*Unit, error) {
	pkgs, err := GoList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var units []*Unit
	for _, p := range pkgs {
		if p.DepOnly {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		pkg, info, err := Typecheck(fset, p.ImportPath, files, imp, "")
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		units = append(units, &Unit{Fset: fset, Files: files, Pkg: pkg, Info: info, Path: p.ImportPath})
	}
	return units, nil
}

// Typecheck runs the go/types checker over one package's files.
func Typecheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer, goVersion string) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := &types.Config{Importer: imp, GoVersion: goVersion}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// RunStandalone analyzes the packages matching patterns under dir with
// the given analyzers, printing diagnostics to w. It returns the number
// of unsuppressed findings.
func RunStandalone(w io.Writer, dir string, patterns []string, analyzers []*Analyzer) (int, error) {
	units, err := LoadPackages(dir, patterns...)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, u := range units {
		diags, err := RunAnalyzers(&Pass{Fset: u.Fset, Files: u.Files, Pkg: u.Pkg, PkgPath: u.Path, TypesInfo: u.Info}, analyzers)
		if err != nil {
			return total, fmt.Errorf("%s: %v", u.Path, err)
		}
		for _, d := range diags {
			fmt.Fprintf(w, "%s: %s (rvlint/%s)\n", u.Fset.Position(d.Pos), d.Message, d.Analyzer)
			total++
		}
	}
	return total, nil
}
