package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// The `go vet -vettool` driver. The go command hands the tool a JSON
// .cfg file describing one compilation unit (files, import map, export
// data produced by the surrounding build) and expects diagnostics on
// stderr with a non-zero exit, plus a facts file at VetxOutput. This
// mirrors golang.org/x/tools/go/analysis/unitchecker, reimplemented on
// the standard library so the linter has zero external dependencies.

// VetConfig is the compilation-unit description `go vet` writes; field
// names are fixed by the (unpublished) vet command-line protocol.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnit analyzes the single compilation unit described by cfgFile,
// printing diagnostics to w. It returns the process exit code: 0 clean,
// 1 findings, 2 operational failure.
func RunUnit(w io.Writer, cfgFile string, analyzers []*Analyzer) int {
	cfg, err := readVetConfig(cfgFile)
	if err != nil {
		fmt.Fprintf(w, "rvlint: %v\n", err)
		return 2
	}

	// The go command records the facts file of every vetted unit and
	// feeds it to dependents; rvlint keeps no cross-package facts, but
	// the file must exist for the protocol's bookkeeping.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("rvlint: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(w, "rvlint: %v\n", err)
			return 2
		}
	}

	// Dependency units are vetted only for facts; this module's
	// invariants never fire outside it, so skip the typecheck too.
	if cfg.VetxOnly || !(cfg.ImportPath == modulePrefix || strings.HasPrefix(cfg.ImportPath, modulePrefix+"/")) {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(w, "rvlint: %v\n", err)
			return 2
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, compilerOr(cfg.Compiler), func(path string) (io.ReadCloser, error) {
		// path is a resolved package path, not a source import path.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	resolving := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return imp.Import(importPath)
	})

	pkg, info, err := Typecheck(fset, cfg.ImportPath, files, resolving, goVersionOf(cfg))
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(w, "rvlint: %v\n", err)
		return 2
	}

	diags, err := RunAnalyzers(&Pass{Fset: fset, Files: files, Pkg: pkg, PkgPath: cfg.ImportPath, TypesInfo: info}, analyzers)
	if err != nil {
		fmt.Fprintf(w, "rvlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s (rvlint/%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func readVetConfig(filename string) (*VetConfig, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode vet config %s: %v", filename, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

func compilerOr(c string) string {
	if c == "" {
		return "gc"
	}
	return c
}

func goVersionOf(cfg *VetConfig) string {
	v := cfg.GoVersion
	if v != "" && !strings.HasPrefix(v, "go") {
		v = "go" + v
	}
	return v
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
