package lint

import (
	"go/ast"
	"go/types"
)

// Globalrand enforces that every random stream outside
// internal/resilience flows through resilience.RNG, the serializable
// source that checkpoints capture. Package-level math/rand functions
// draw from an unseedable process-global source; ad-hoc rand.NewSource
// state cannot be checkpointed, so a kill-and-resume would fork the
// mutation stream. The one sanctioned constructor shape is
// rand.New(<*resilience.RNG>) — rand.Rand keeps no hidden state for the
// methods the fuzzer uses, so restoring the source restores the stream.
var Globalrand = &Analyzer{
	Name: "globalrand",
	Doc:  "bans math/rand package-level functions and ad-hoc sources outside internal/resilience; randomness must flow through resilience.RNG",
	Run:  runGlobalrand,
}

const resilienceRNG = modulePrefix + "/internal/resilience"

func runGlobalrand(pass *Pass) error {
	if !pass.InModule() || pass.PathWithin("internal/resilience") {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !isPkgSelector(pass, sel, "math/rand") && !isPkgSelector(pass, sel, "math/rand/v2") {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil {
				return true
			}
			if _, isFunc := obj.(*types.Func); !isFunc {
				return true // types (rand.Rand, rand.Source64) are fine
			}
			switch sel.Sel.Name {
			case "New":
				// rand.New(src) is legal iff src is the serializable
				// resilience.RNG; anything else hides resume state.
				if !randNewOfRNG(pass, sel) {
					pass.Reportf(sel.Pos(), "rand.New outside internal/resilience must wrap a *resilience.RNG (serializable, checkpointable source)")
				}
			default:
				pass.Reportf(sel.Pos(), "math/rand.%s draws from non-resumable state: thread a rand.New(resilience.NewRNG(seed)) through instead", sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}

// randNewOfRNG reports whether the selector is the callee of a
// rand.New call whose single argument is a *resilience.RNG.
func randNewOfRNG(pass *Pass, sel *ast.SelectorExpr) bool {
	call := enclosingCall(pass, sel)
	if call == nil || len(call.Args) != 1 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return false
	}
	n := namedOf(deref(tv.Type))
	return n != nil && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == resilienceRNG && n.Obj().Name() == "RNG"
}

// enclosingCall finds the CallExpr whose Fun is exactly sel, by
// re-walking the file containing sel (cheap; files are small).
func enclosingCall(pass *Pass, sel *ast.SelectorExpr) *ast.CallExpr {
	var found *ast.CallExpr
	for _, f := range pass.Files {
		if sel.Pos() < f.Pos() || sel.Pos() >= f.End() {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && call.Fun == sel {
				found = call
				return false
			}
			return true
		})
	}
	return found
}
