package lint

import "testing"

// This file closes the loop between static analysis and the runtime
// determinism tests: the same seeded defect — a Clone that aliases its
// receiver's slice field — must be caught by the cloneshallow analyzer
// on the fixture source AND be observable as shared mutation when the
// identical method shape runs. If the analyzer's model of "aliasing"
// ever drifts from what the runtime actually does, one of the two
// halves fails.

// shallowTrace mirrors testdata/agreement ShallowTrace exactly: the
// whole-struct copy shares the Trace backing array.
type shallowTrace struct {
	Trace []uint64
	PC    uint64
}

func (s *shallowTrace) clone() *shallowTrace {
	c := *s
	return &c
}

// deepTrace mirrors testdata/agreement DeepTrace: Trace is reassigned
// to a fresh backing array before the copy escapes.
type deepTrace struct {
	Trace []uint64
	PC    uint64
}

func (s *deepTrace) clone() *deepTrace {
	c := *s
	c.Trace = append([]uint64(nil), s.Trace...)
	return &c
}

// TestAgreementAnalyzerSide: cloneshallow fires on ShallowTrace.Clone
// and stays silent on DeepTrace.Clone (the // want comments in the
// fixture encode exactly that).
func TestAgreementAnalyzerSide(t *testing.T) {
	runFixture(t, Cloneshallow, "rvnegtest/internal/exec", "agreement")
}

// TestAgreementRuntimeSide: the shape the analyzer flags really does
// leak mutations from the original into the clone, and the shape it
// accepts really does not.
func TestAgreementRuntimeSide(t *testing.T) {
	orig := &shallowTrace{Trace: []uint64{0x100, 0x104}, PC: 0x108}
	c := orig.clone()
	orig.Trace[0] = 0xdead
	if c.Trace[0] != 0xdead {
		t.Fatalf("shallow clone did NOT alias: analyzer and runtime disagree (clone saw %#x)", c.Trace[0])
	}

	dorig := &deepTrace{Trace: []uint64{0x100, 0x104}, PC: 0x108}
	dc := dorig.clone()
	dorig.Trace[0] = 0xdead
	if dc.Trace[0] != 0x100 {
		t.Fatalf("deep clone aliased after all: analyzer and runtime disagree (clone saw %#x)", dc.Trace[0])
	}
}
