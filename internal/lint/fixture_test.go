package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The fixture harness is a small analysistest: each testdata/<dir>
// holds one synthetic package, analyzed under a caller-chosen import
// path (analyzers scope by path, so the same source can be probed in
// and out of scope). Lines carrying a `// want "regexp"` comment must
// produce at least one matching diagnostic; every diagnostic must land
// on a want line.

var (
	exportsOnce sync.Once
	exportsMap  map[string]string
	exportsErr  error
)

// fixtureImporter returns a types.Importer backed by `go list -export`
// over the whole module plus the std packages fixtures use. One listing
// serves every fixture test.
func fixtureImporter(t *testing.T, fset *token.FileSet) types.Importer {
	t.Helper()
	exportsOnce.Do(func() {
		pkgs, err := GoList(moduleRoot(t), "./...", "time", "math/rand", "sort", "fmt")
		if err != nil {
			exportsErr = err
			return
		}
		exportsMap = map[string]string{}
		for _, p := range pkgs {
			if p.Export != "" {
				exportsMap[p.ImportPath] = p.Export
			}
		}
	})
	if exportsErr != nil {
		t.Fatalf("go list for fixture imports: %v", exportsErr)
	}
	return exportImporter(fset, exportsMap)
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // internal/lint -> repo root
}

// runFixture analyzes testdata/<dir> under pkgpath with one analyzer
// and checks diagnostics against the // want comments.
func runFixture(t *testing.T, a *Analyzer, pkgpath, dir string) {
	t.Helper()
	pattern := filepath.Join("testdata", dir, "*.go")
	names, err := filepath.Glob(pattern)
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files match %s (err=%v)", pattern, err)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}

	imp := fixtureImporter(t, fset)
	pkg, info, err := Typecheck(fset, pkgpath, files, imp, "")
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}

	diags, err := RunAnalyzers(&Pass{Fset: fset, Files: files, Pkg: pkg, PkgPath: pkgpath, TypesInfo: info}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	wants := collectWants(t, names)
	matched := map[string]bool{}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := posKey(pos.Filename, pos.Line)
		re, ok := wants[key]
		if !ok {
			t.Errorf("unexpected diagnostic at %s: %s", pos, d.Message)
			continue
		}
		if !re.MatchString(d.Message) {
			t.Errorf("diagnostic at %s does not match want %q: %s", pos, re, d.Message)
		}
		matched[key] = true
	}
	for key, re := range wants {
		if !matched[key] {
			t.Errorf("missing diagnostic: want %q at %s", re, key)
		}
	}
}

// runFixtureClean asserts the fixture produces no diagnostics at all
// under pkgpath (scope tests), ignoring any want comments.
func runFixtureClean(t *testing.T, a *Analyzer, pkgpath, dir string) {
	t.Helper()
	pattern := filepath.Join("testdata", dir, "*.go")
	names, _ := filepath.Glob(pattern)
	if len(names) == 0 {
		t.Fatalf("no fixture files match %s", pattern)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	imp := fixtureImporter(t, fset)
	pkg, info, err := Typecheck(fset, pkgpath, files, imp, "")
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}
	diags, err := RunAnalyzers(&Pass{Fset: fset, Files: files, Pkg: pkg, PkgPath: pkgpath, TypesInfo: info}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	for _, d := range diags {
		t.Errorf("out-of-scope package %s still diagnosed at %s: %s", pkgpath, fset.Position(d.Pos), d.Message)
	}
}

var wantRE = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

func collectWants(t *testing.T, names []string) map[string]*regexp.Regexp {
	t.Helper()
	wants := map[string]*regexp.Regexp{}
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp: %v", name, i+1, err)
			}
			wants[posKey(name, i+1)] = re
		}
	}
	return wants
}

func posKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}

func TestMapdetFixture(t *testing.T) {
	runFixture(t, Mapdet, "rvnegtest/internal/compliance", "mapdet")
}

func TestMapdetOutOfScope(t *testing.T) {
	// The same patterns in a non-deterministic-output package are not
	// rvlint's business.
	runFixtureClean(t, Mapdet, "rvnegtest/internal/isa", "mapdet_scope")
}

func TestWallclockFixture(t *testing.T) {
	runFixture(t, Wallclock, "rvnegtest/internal/fuzz", "wallclock")
}

func TestWallclockOutOfScope(t *testing.T) {
	// internal/obs is the telemetry layer: wall clocks are its job.
	runFixtureClean(t, Wallclock, "rvnegtest/internal/obs", "wallclock_scope")
}

func TestGlobalrandFixture(t *testing.T) {
	runFixture(t, Globalrand, "rvnegtest/internal/fuzz", "globalrand")
}

func TestGlobalrandResilienceExempt(t *testing.T) {
	// internal/resilience implements the sanctioned source; the ban
	// does not apply to its own plumbing.
	runFixtureClean(t, Globalrand, "rvnegtest/internal/resilience", "globalrand_scope")
}

func TestCloneshallowFixture(t *testing.T) {
	runFixture(t, Cloneshallow, "rvnegtest/internal/exec", "cloneshallow")
}

func TestPanicgateFixture(t *testing.T) {
	runFixture(t, Panicgate, "rvnegtest/internal/exec", "panicgate")
}

func TestPanicgateAllowlist(t *testing.T) {
	// A panic inside an allowlisted function (internal/mem
	// Memory.Restore) stays silent.
	runFixtureClean(t, Panicgate, "rvnegtest/internal/mem", "panicgate_allowlist")
}

func TestPanicgateOutOfScope(t *testing.T) {
	// panicgate governs internal/ only; CLIs may panic-free-form (they
	// have their own fatalf conventions).
	runFixtureClean(t, Panicgate, "rvnegtest/cmd/rvfuzz", "panicgate_scope")
}
