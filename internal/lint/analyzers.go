package lint

// Analyzers returns the full rvlint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Cloneshallow,
		Globalrand,
		Mapdet,
		Panicgate,
		Wallclock,
	}
}
