package template

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"rvnegtest/internal/hart"
	"rvnegtest/internal/isa"
)

// TestUserSourceUnchanged pins the user-family template output: the trap
// family must not perturb the paper's template by a single byte, or every
// previously generated corpus, signature and report would shift.
func TestUserSourceUnchanged(t *testing.T) {
	want := map[int]string{
		0: "6fb9ddcb2a891f9408b2d666728748e3d147f8116a32564bb6c13b0a48ca29d4",
		8: "05805c64c8c64286da5234aac5377ec57389ad84e2d842b21be8e7bc077d2272",
	}
	for n, h := range want {
		bs := make([]byte, n)
		for i := range bs {
			bs[i] = byte(i)
		}
		src, err := Source(bs, DefaultLayout)
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256([]byte(src))
		if got := hex.EncodeToString(sum[:]); got != h {
			t.Errorf("user template source (bs=%d bytes) changed: sha256 %s, want %s", n, got, h)
		}
	}
}

func trapPlat(cfg isa.Config) Platform { return PlatformFor(FamilyTrap, cfg) }

// enc32 encodes instructions as a little-endian bytestream.
func enc32(t *testing.T, insts ...isa.Inst) []byte {
	t.Helper()
	var out []byte
	for _, in := range insts {
		w, err := isa.Encode(in)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return out
}

func word(w uint32) []byte { return []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)} }

// trapBase is the index of the trap counter within a trap-family
// signature.
func trapBase(p Platform) int { return p.BaseSigWords() }

func TestTrapTemplateAssemblesAllConfigs(t *testing.T) {
	for _, cfg := range []isa.Config{isa.RV32I, isa.RV32IC, isa.RV32IM, isa.RV32IMC, isa.RV32GC} {
		if _, err := Preload(trapPlat(cfg)); err != nil {
			t.Errorf("%v: %v", cfg, err)
		}
	}
}

func TestTrapEmptyBytestream(t *testing.T) {
	p := trapPlat(isa.RV32I)
	sig, _ := runPreloaded(t, p, nil)
	if len(sig) != p.SigWords() {
		t.Fatalf("signature length %d, want %d", len(sig), p.SigWords())
	}
	tb := trapBase(p)
	if sig[tb] != 0 {
		t.Errorf("trap counter = %d, want 0", sig[tb])
	}
	want := XInit[26] + 1
	if sig[26] != want {
		t.Errorf("x26 = %#x, want %#x (body completed)", sig[26], want)
	}
	if sig[31] != 0xdeadbeef {
		t.Errorf("sentinel = %#x", sig[31])
	}
}

// TestTrapRecordsIllegal: one deliberately illegal word traps once; the
// handler records the tuple and resumes, so the body still completes and
// the record holds (tagged cause, mepc, mtval, mstatus).
func TestTrapRecordsIllegal(t *testing.T) {
	p := trapPlat(isa.RV32I)
	const bad = 0xffffffff
	sig, _ := runPreloaded(t, p, word(bad))
	tb := trapBase(p)
	if sig[tb] != 1 {
		t.Fatalf("trap counter = %d, want 1", sig[tb])
	}
	if sig[26] != XInit[26]+1 {
		t.Errorf("x26 = %#x, want completion (handler resumed)", sig[26])
	}
	cause, mepc, mtval, mstatus := sig[tb+1], sig[tb+2], sig[tb+3], sig[tb+4]
	if cause != hart.CauseIllegalInstruction<<1 {
		t.Errorf("tagged cause = %#x, want %#x (direct entry)", cause, hart.CauseIllegalInstruction<<1)
	}
	if mtval != bad {
		t.Errorf("mtval = %#x, want %#x", mtval, uint32(bad))
	}
	if mepc == 0 || mepc&3 != 0 {
		t.Errorf("mepc = %#x, want the word-aligned faulting slot", mepc)
	}
	if mstatus&hart.MstatusMPP != hart.MstatusMPP {
		t.Errorf("mstatus = %#x, want MPP set", mstatus)
	}
	// Registers x30/x31 are handler-preserved scratch; x1..x29 must be
	// untouched by the trap round trip.
	for i := 1; i <= 25; i++ {
		if sig[i] != XInit[i] {
			t.Errorf("x%d = %#x, want %#x", i, sig[i], XInit[i])
		}
	}
}

// TestTrapRecordCap: more traps than records keeps counting but stops
// recording, and the run still terminates.
func TestTrapRecordCap(t *testing.T) {
	p := trapPlat(isa.RV32I)
	var bs []byte
	for i := 0; i < p.Layout.Slots; i++ {
		bs = append(bs, word(0xffffffff)...)
	}
	sig, _ := runPreloaded(t, p, bs)
	tb := trapBase(p)
	if int(sig[tb]) != p.Layout.Slots {
		t.Fatalf("trap counter = %d, want %d", sig[tb], p.Layout.Slots)
	}
	// Records beyond TrapRecords must stay zero... all 16 in-range records
	// are filled here (20 traps > 16 records), so just check the last
	// record's cause word is valid and the region ends where it should.
	last := tb + 1 + 4*(p.Layout.TrapRecords-1)
	if sig[last] != hart.CauseIllegalInstruction<<1 {
		t.Errorf("record %d cause = %#x", p.Layout.TrapRecords-1, sig[last])
	}
	if len(sig) != tb+p.Layout.TrapSigWords() {
		t.Errorf("signature length %d", len(sig))
	}
}

// TestTrapEbreakEcall: ECALL and EBREAK are ordinary recorded traps in
// the trap family (resume, not terminate).
func TestTrapEbreakEcall(t *testing.T) {
	p := trapPlat(isa.RV32I)
	bs := append(word(0x00000073), word(0x00100073)...) // ecall; ebreak
	sig, _ := runPreloaded(t, p, bs)
	tb := trapBase(p)
	if sig[tb] != 2 {
		t.Fatalf("trap counter = %d, want 2", sig[tb])
	}
	if sig[tb+1] != hart.CauseECallM<<1 {
		t.Errorf("first cause = %#x, want ECALL-M", sig[tb+1])
	}
	if sig[tb+5] != hart.CauseBreakpoint<<1 {
		t.Errorf("second cause = %#x, want breakpoint", sig[tb+5])
	}
	if sig[26] != XInit[26]+1 {
		t.Errorf("x26 = %#x, want completion", sig[26])
	}
}

// TestTrapUnalignedAccess: the trap platform traps misaligned accesses,
// recording them as desired events.
func TestTrapUnalignedAccess(t *testing.T) {
	p := trapPlat(isa.RV32I)
	// lw x5, 1(x30): misaligned load (x30 = data_mid, word aligned).
	bs := enc32(t, isa.Inst{Op: isa.OpLW, Rd: 5, Rs1: 30, Imm: 1})
	sig, _ := runPreloaded(t, p, bs)
	tb := trapBase(p)
	if sig[tb] != 1 {
		t.Fatalf("trap counter = %d, want 1", sig[tb])
	}
	if sig[tb+1] != hart.CauseMisalignedLoad<<1 {
		t.Errorf("cause = %#x, want misaligned load", sig[tb+1])
	}
	if sig[tb+3] != DefaultLayout.DataMid+1 {
		t.Errorf("mtval = %#x, want the misaligned address %#x", sig[tb+3], DefaultLayout.DataMid+1)
	}
}

// TestTrapCSRRoundTrip: CSR instructions are legal body content in the
// trap family; a read of mscratch lands in the signature.
func TestTrapCSRRoundTrip(t *testing.T) {
	p := trapPlat(isa.RV32I)
	bs := enc32(t,
		isa.Inst{Op: isa.OpCSRRW, Rd: 0, Rs1: 15, CSR: hart.CSRMscratch}, // mscratch = x15
		isa.Inst{Op: isa.OpCSRRS, Rd: 5, Rs1: 0, CSR: hart.CSRMscratch},  // x5 = mscratch
	)
	sig, _ := runPreloaded(t, p, bs)
	tb := trapBase(p)
	if sig[tb] != 0 {
		t.Fatalf("trap counter = %d, want 0 (CSR ops are legal)", sig[tb])
	}
	if sig[5] != XInit[15] {
		t.Errorf("x5 = %#x, want mscratch round trip %#x", sig[5], XInit[15])
	}
}
