package template

import (
	"testing"

	"rvnegtest/internal/exec"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/mem"
)

func plat(cfg isa.Config) Platform {
	return Platform{Layout: DefaultLayout, Cfg: cfg}
}

// runPreloaded executes a bytestream via the fast injection path.
func runPreloaded(t *testing.T, p Platform, bs []byte) ([]uint32, *exec.Executor) {
	t.Helper()
	img, err := Preload(p)
	if err != nil {
		t.Fatalf("Preload: %v", err)
	}
	if err := img.Inject(bs); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	e := img.NewExecutor(isa.Ref, exec.Quirks{})
	if err := e.Run(100000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	sig, err := img.Signature()
	if err != nil {
		t.Fatalf("Signature: %v", err)
	}
	return sig, e
}

func TestEmptyBytestreamSignature(t *testing.T) {
	sig, _ := runPreloaded(t, plat(isa.RV32I), nil)
	if len(sig) != 32 {
		t.Fatalf("signature length %d", len(sig))
	}
	// All slots are jump-to-end; the body completes, so x26 = init + 1.
	for i := 1; i <= 29; i++ {
		want := XInit[i]
		if i == 26 {
			want++
		}
		if sig[i] != want {
			t.Errorf("sig[x%d] = %#x, want %#x", i, sig[i], want)
		}
	}
	if sig[0] != 0 {
		t.Errorf("sig[x0] = %#x", sig[0])
	}
	if sig[30] != 0 {
		t.Errorf("mcause slot = %#x, want 0 (no trap)", sig[30])
	}
	if sig[31] != 0xdeadbeef {
		t.Errorf("sentinel = %#x", sig[31])
	}
}

func TestComputationalBytestream(t *testing.T) {
	// add x5, x1, x2 ; xor x6, x8, x9
	bs := leWords(
		isa.MustEncode(isa.Inst{Op: isa.OpADD, Rd: 5, Rs1: 1, Rs2: 2}),
		isa.MustEncode(isa.Inst{Op: isa.OpXOR, Rd: 6, Rs1: 8, Rs2: 9}),
	)
	sig, _ := runPreloaded(t, plat(isa.RV32I), bs)
	if sig[5] != XInit[1]+XInit[2] {
		t.Errorf("x5 = %#x, want %#x", sig[5], XInit[1]+XInit[2])
	}
	if sig[6] != XInit[8]^XInit[9] {
		t.Errorf("x6 = %#x", sig[6])
	}
	if sig[26] != XInit[26]+1 || sig[30] != 0 {
		t.Errorf("completion: x26=%#x mcause=%d", sig[26], sig[30])
	}
}

func TestIllegalInstructionBypassesX26(t *testing.T) {
	bs := leWords(0xffffffff)
	sig, _ := runPreloaded(t, plat(isa.RV32I), bs)
	if sig[26] != XInit[26] {
		t.Errorf("x26 = %#x, want untouched %#x", sig[26], XInit[26])
	}
	if sig[30] != 2 {
		t.Errorf("mcause = %d, want 2 (illegal instruction)", sig[30])
	}
	if sig[31] != 0xdeadbeef {
		t.Error("trap path must still dump the signature")
	}
}

func TestEcallSignature(t *testing.T) {
	bs := leWords(0x00000073)
	sig, _ := runPreloaded(t, plat(isa.RV32I), bs)
	if sig[30] != 11 {
		t.Errorf("mcause = %d, want 11 (machine ecall)", sig[30])
	}
	if sig[26] != XInit[26] {
		t.Error("ecall must bypass the x26 increment")
	}
}

func TestLoadFromDataWindow(t *testing.T) {
	// lw x5, -16(x30): reads the deterministic scratch pattern.
	bs := leWords(isa.MustEncode(isa.Inst{Op: isa.OpLW, Rd: 5, Rs1: 30, Imm: -16}))
	sig, _ := runPreloaded(t, plat(isa.RV32I), bs)
	want := scratchWord(DefaultLayout.DataMid - 16)
	if sig[5] != want {
		t.Errorf("loaded %#x, want pattern %#x", sig[5], want)
	}
}

func TestStoreThenLoadRoundtrip(t *testing.T) {
	bs := leWords(
		isa.MustEncode(isa.Inst{Op: isa.OpSW, Rs1: 31, Rs2: 16, Imm: 100}),
		isa.MustEncode(isa.Inst{Op: isa.OpLW, Rd: 7, Rs1: 30, Imm: 100}),
	)
	sig, _ := runPreloaded(t, plat(isa.RV32I), bs)
	if sig[7] != XInit[16] {
		t.Errorf("x7 = %#x, want %#x", sig[7], XInit[16])
	}
}

func TestFPSignature(t *testing.T) {
	// fadd.d f1, f8, f20 (1.0 + 2.0 = 3.0)
	bs := leWords(isa.MustEncode(isa.Inst{Op: isa.OpFADDD, Rd: 1, Rs1: 8, Rs2: 20, RM: 0}))
	sig, _ := runPreloaded(t, plat(isa.RV32GC), bs)
	if len(sig) != 96 {
		t.Fatalf("FP signature length %d", len(sig))
	}
	lo, hi := sig[32+2], sig[32+3] // f1 dwords
	got := uint64(hi)<<32 | uint64(lo)
	if got != 0x4008000000000000 { // 3.0
		t.Errorf("f1 = %#x, want 3.0", got)
	}
	// Untouched f0 keeps its init image.
	if uint64(sig[33])<<32|uint64(sig[32]) != FInit[0] {
		t.Errorf("f0 = %#x%08x", sig[33], sig[32])
	}
}

func TestFPIllegalOnIMC(t *testing.T) {
	bs := leWords(isa.MustEncode(isa.Inst{Op: isa.OpFADDD, Rd: 1, Rs1: 8, Rs2: 20, RM: 0}))
	sig, _ := runPreloaded(t, plat(isa.RV32IMC), bs)
	if len(sig) != 32 {
		t.Fatalf("IMC signature length %d", len(sig))
	}
	if sig[30] != 2 {
		t.Errorf("mcause = %d, want illegal", sig[30])
	}
}

// TestInjectionMatchesFullBuild verifies the fast injection path and the
// per-test-case assembly path produce identical memory images, hence
// identical signatures (the paper's pre-compilation optimization must be
// an optimization only).
func TestInjectionMatchesFullBuild(t *testing.T) {
	cases := [][]byte{
		nil,
		leWords(0xffffffff),
		leWords(isa.MustEncode(isa.Inst{Op: isa.OpADD, Rd: 5, Rs1: 1, Rs2: 2})),
		leWords(0x00000073, 0x9002, 0xdeadbeef),
		{0x13, 0x05},                // partial word
		{0x01, 0x02, 0x03, 0x04, 5}, // 5 bytes
	}
	for _, p := range []Platform{plat(isa.RV32I), plat(isa.RV32GC)} {
		pre, err := Preload(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, bs := range cases {
			if err := pre.Inject(bs); err != nil {
				t.Fatal(err)
			}
			fast, err := pre.Mem.ReadBytes(p.Layout.MemBase, p.Layout.MemSize)
			if err != nil {
				t.Fatal(err)
			}
			img, err := Build(bs, p)
			if err != nil {
				t.Fatal(err)
			}
			m2 := mem.New(p.Layout.MemBase, p.Layout.MemSize)
			if _, err := img.LoadInto(m2); err != nil {
				t.Fatal(err)
			}
			slow, err := m2.ReadBytes(p.Layout.MemBase, p.Layout.MemSize)
			if err != nil {
				t.Fatal(err)
			}
			if string(fast) != string(slow) {
				for i := range fast {
					if fast[i] != slow[i] {
						t.Fatalf("%v bs=%x: memory differs first at %#x: %#x vs %#x",
							p.Cfg, bs, i, fast[i], slow[i])
					}
				}
			}
		}
	}
}

func TestLayoutInvariants(t *testing.T) {
	l := DefaultLayout
	if l.DataMid-2048 < l.DataBase+0x180 {
		t.Error("scratch window overlaps init data")
	}
	if l.DataMid+2048+8 > l.SigAddr {
		t.Error("scratch window (plus widest access) can reach the signature")
	}
	if l.SigAddr+384 > l.HaltAddr {
		t.Error("signature region reaches the halt address")
	}
	if l.HaltAddr+4 > l.MemBase+l.MemSize {
		t.Error("halt address outside memory")
	}
	if l.DataMid%8 != 0 {
		t.Error("data_mid must be 8-aligned for fld/fsd")
	}
}

func TestInjectTooLong(t *testing.T) {
	img, err := Preload(plat(isa.RV32I))
	if err != nil {
		t.Fatal(err)
	}
	if err := img.Inject(make([]byte, DefaultLayout.MaxBytes()+1)); err == nil {
		t.Error("expected error for oversized bytestream")
	}
}

func TestSourceDeterminism(t *testing.T) {
	a, err := Source([]byte{1, 2, 3, 4}, DefaultLayout)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Source([]byte{1, 2, 3, 4}, DefaultLayout)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Source must be deterministic")
	}
}

func TestSourceOversizeError(t *testing.T) {
	_, err := Source(make([]byte, DefaultLayout.MaxBytes()+1), DefaultLayout)
	if err == nil {
		t.Fatal("oversize bytestream must be an error, not a panic")
	}
}

// leWords packs 32-bit words (or one trailing 16-bit value < 0x10000 as a
// full word) into a little-endian bytestream.
func leWords(ws ...uint32) []byte {
	var out []byte
	for _, w := range ws {
		out = append(out, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return out
}
