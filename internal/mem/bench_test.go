package mem

import "testing"

// BenchmarkRestore measures the dirty-page restore that resets the
// pre-loaded template between fuzzer executions (the paper's key
// throughput optimization; a typical run dirties a handful of pages).
func BenchmarkRestore(b *testing.B) {
	m := New(0, 0x8000)
	m.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Write32(0x100, uint32(i))
		_ = m.Write32(0x6800, uint32(i))
		_ = m.Write32(0x7ff0, uint32(i))
		m.Restore()
	}
}

// BenchmarkRestoreFullDirty is the worst case: every page dirtied.
func BenchmarkRestoreFullDirty(b *testing.B) {
	m := New(0, 0x8000)
	m.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for a := uint32(0); a < 0x8000; a += 256 {
			_ = m.Write8(a, byte(i))
		}
		m.Restore()
	}
}

var sinkV uint32

func BenchmarkRead32(b *testing.B) {
	m := New(0, 0x8000)
	for i := 0; i < b.N; i++ {
		v, _ := m.Read32(uint32(i) % 0x7ffc)
		sinkV = v
	}
}
