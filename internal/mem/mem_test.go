package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReadWriteRoundtrip(t *testing.T) {
	m := New(0x1000, 0x1000)
	f := func(off uint16, v uint32) bool {
		addr := 0x1000 + uint32(off)&0xffc
		if err := m.Write32(addr, v); err != nil {
			return false
		}
		got, err := m.Read32(addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestLittleEndian(t *testing.T) {
	m := New(0, 64)
	if err := m.Write32(0, 0x04030201); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 4; i++ {
		b, err := m.Read8(i)
		if err != nil || b != uint8(i+1) {
			t.Errorf("byte %d = %d, %v", i, b, err)
		}
	}
	h, _ := m.Read16(2)
	if h != 0x0403 {
		t.Errorf("read16 = %#x", h)
	}
	if err := m.Write64(8, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Read64(8)
	if v != 0x1122334455667788 {
		t.Errorf("read64 = %#x", v)
	}
	lo, _ := m.Read32(8)
	if lo != 0x55667788 {
		t.Errorf("low word = %#x", lo)
	}
}

func TestBounds(t *testing.T) {
	m := New(0x1000, 0x100)
	cases := []struct {
		addr uint32
		size uint32
	}{
		{0xfff, 1}, {0x10ff, 2}, {0x1100, 1}, {0x10fd, 4},
		{0xffffffff, 4}, {0, 4},
	}
	for _, c := range cases {
		if m.Contains(c.addr, c.size) {
			t.Errorf("Contains(%#x, %d) = true", c.addr, c.size)
		}
	}
	if !m.Contains(0x1000, 4) || !m.Contains(0x10fc, 4) || !m.Contains(0x10ff, 1) {
		t.Error("valid ranges rejected")
	}
	if _, err := m.Read32(0xfff); err == nil {
		t.Error("read below base must fail")
	}
	var ae *AccessError
	if err := m.Write32(0x1100, 1); err == nil {
		t.Error("write past end must fail")
	} else if ae, _ = err.(*AccessError); ae == nil || !ae.Write {
		t.Errorf("error type: %v", err)
	}
	if ae.Error() == "" {
		t.Error("empty error string")
	}
}

func TestSnapshotRestore(t *testing.T) {
	m := New(0, 0x8000)
	_ = m.Write32(0x100, 0xaaaaaaaa)
	m.Snapshot()
	_ = m.Write32(0x100, 0xbbbbbbbb)
	_ = m.Write32(0x7ffc, 0xcccccccc)
	_ = m.Write8(0x4000, 0xdd)
	m.Restore()
	if v, _ := m.Read32(0x100); v != 0xaaaaaaaa {
		t.Errorf("restored = %#x", v)
	}
	if v, _ := m.Read32(0x7ffc); v != 0 {
		t.Errorf("restored tail = %#x", v)
	}
	if v, _ := m.Read8(0x4000); v != 0 {
		t.Errorf("restored middle = %#x", v)
	}
	// Repeated restore cycles stay consistent.
	for i := 0; i < 10; i++ {
		_ = m.Write32(uint32(i*256), uint32(i))
		m.Restore()
	}
	if v, _ := m.Read32(0x100); v != 0xaaaaaaaa {
		t.Error("snapshot decayed after repeated restores")
	}
}

// TestRestoreEquivalentToFullCopy drives random write/restore cycles and
// checks dirty-page restore matches a full-image restore.
func TestRestoreEquivalentToFullCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := New(0, 0x2000)
	ref := make([]byte, 0x2000)
	for i := range ref {
		ref[i] = byte(rng.Intn(256))
	}
	_ = m.LoadImage(0, ref)
	m.Snapshot()
	for round := 0; round < 50; round++ {
		for w := 0; w < 30; w++ {
			addr := uint32(rng.Intn(0x2000 - 8))
			switch rng.Intn(4) {
			case 0:
				_ = m.Write8(addr, uint8(rng.Intn(256)))
			case 1:
				_ = m.Write16(addr, uint16(rng.Intn(65536)))
			case 2:
				_ = m.Write32(addr, rng.Uint32())
			default:
				_ = m.Write64(addr, rng.Uint64())
			}
		}
		m.Restore()
		got, _ := m.ReadBytes(0, 0x2000)
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("round %d: byte %#x = %#x, want %#x", round, i, got[i], ref[i])
			}
		}
	}
}

func TestLoadImageAndReadBytes(t *testing.T) {
	m := New(0x100, 0x100)
	img := []byte{1, 2, 3, 4, 5}
	if err := m.LoadImage(0x110, img); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadBytes(0x110, 5)
	if err != nil || string(got) != string(img) {
		t.Errorf("ReadBytes = %v, %v", got, err)
	}
	if err := m.LoadImage(0x1fe, img); err == nil {
		t.Error("LoadImage past end must fail")
	}
}

func TestClone(t *testing.T) {
	m := New(0, 0x1000)
	_ = m.Write32(0, 42)
	m.Snapshot()
	c := m.Clone()
	_ = c.Write32(0, 99)
	if v, _ := m.Read32(0); v != 42 {
		t.Error("clone shares storage")
	}
	c.Restore()
	if v, _ := c.Read32(0); v != 42 {
		t.Error("clone snapshot broken")
	}
}

func TestRestoreWithoutSnapshotPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0, 64).Restore()
}
