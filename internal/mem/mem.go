// Package mem provides the little-endian physical memory used by the
// instruction-set simulators: a single contiguous region (32 KiB in the
// paper's setup) with typed accessors, access-fault reporting and a fast
// snapshot/restore mechanism so a pre-loaded test-case template can be
// reset between fuzzer executions without re-copying the whole image.
package mem

import (
	"fmt"
	"math/bits"
)

// pageBits selects the dirty-tracking granularity (256-byte pages).
const pageBits = 8

// AccessError reports an access outside the memory region.
type AccessError struct {
	Addr  uint32
	Size  uint32
	Write bool
}

func (e *AccessError) Error() string {
	kind := "load"
	if e.Write {
		kind = "store"
	}
	return fmt.Sprintf("mem: %s access fault at %#08x (%d bytes)", kind, e.Addr, e.Size)
}

// Memory is a byte-addressable little-endian memory region.
type Memory struct {
	base uint32
	data []byte

	snapshot []byte   // pristine image for Restore; nil until Snapshot
	dirty    []uint64 // per-page dirty bitmap, maintained once a snapshot exists
}

// New allocates a zeroed memory region of the given size at base.
func New(base, size uint32) *Memory {
	return &Memory{base: base, data: make([]byte, size)}
}

// Base returns the first valid address.
func (m *Memory) Base() uint32 { return m.base }

// Size returns the region size in bytes.
func (m *Memory) Size() uint32 { return uint32(len(m.data)) }

// Contains reports whether an access of size bytes at addr lies fully
// inside the region.
func (m *Memory) Contains(addr, size uint32) bool {
	off := uint64(addr) - uint64(m.base)
	return addr >= m.base && off+uint64(size) <= uint64(len(m.data))
}

func (m *Memory) check(addr, size uint32, write bool) ([]byte, error) {
	if !m.Contains(addr, size) {
		return nil, &AccessError{Addr: addr, Size: size, Write: write}
	}
	off := addr - m.base
	if write && m.dirty != nil {
		for p := off >> pageBits; p <= (off+size-1)>>pageBits; p++ {
			m.dirty[p>>6] |= 1 << (p & 63)
		}
	}
	return m.data[off:], nil
}

// Read8 loads one byte.
func (m *Memory) Read8(addr uint32) (uint8, error) {
	b, err := m.check(addr, 1, false)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// Read16 loads a little-endian halfword.
func (m *Memory) Read16(addr uint32) (uint16, error) {
	b, err := m.check(addr, 2, false)
	if err != nil {
		return 0, err
	}
	return uint16(b[0]) | uint16(b[1])<<8, nil
}

// Read32 loads a little-endian word.
func (m *Memory) Read32(addr uint32) (uint32, error) {
	b, err := m.check(addr, 4, false)
	if err != nil {
		return 0, err
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

// Read64 loads a little-endian doubleword.
func (m *Memory) Read64(addr uint32) (uint64, error) {
	lo, err := m.Read32(addr)
	if err != nil {
		return 0, err
	}
	hi, err := m.Read32(addr + 4)
	if err != nil {
		return 0, err
	}
	return uint64(hi)<<32 | uint64(lo), nil
}

// Write8 stores one byte.
func (m *Memory) Write8(addr uint32, v uint8) error {
	b, err := m.check(addr, 1, true)
	if err != nil {
		return err
	}
	b[0] = v
	return nil
}

// Write16 stores a little-endian halfword.
func (m *Memory) Write16(addr uint32, v uint16) error {
	b, err := m.check(addr, 2, true)
	if err != nil {
		return err
	}
	b[0], b[1] = byte(v), byte(v>>8)
	return nil
}

// Write32 stores a little-endian word.
func (m *Memory) Write32(addr uint32, v uint32) error {
	b, err := m.check(addr, 4, true)
	if err != nil {
		return err
	}
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	return nil
}

// Write64 stores a little-endian doubleword.
func (m *Memory) Write64(addr uint32, v uint64) error {
	if err := m.Write32(addr, uint32(v)); err != nil {
		return err
	}
	return m.Write32(addr+4, uint32(v>>32))
}

// LoadImage copies raw bytes into memory at addr.
func (m *Memory) LoadImage(addr uint32, img []byte) error {
	b, err := m.check(addr, uint32(len(img)), true)
	if err != nil {
		return err
	}
	copy(b, img)
	return nil
}

// ReadBytes copies size bytes starting at addr.
func (m *Memory) ReadBytes(addr, size uint32) ([]byte, error) {
	b, err := m.check(addr, size, false)
	if err != nil {
		return nil, err
	}
	out := make([]byte, size)
	copy(out, b[:size])
	return out, nil
}

// Snapshot records the current contents as the pristine image and starts
// dirty-page tracking, so subsequent Restore calls are proportional to the
// number of pages actually written (the paper's pre-load optimization).
func (m *Memory) Snapshot() {
	if m.snapshot == nil {
		m.snapshot = make([]byte, len(m.data))
		pages := (len(m.data) + (1 << pageBits) - 1) >> pageBits
		m.dirty = make([]uint64, (pages+63)/64)
	}
	copy(m.snapshot, m.data)
	for i := range m.dirty {
		m.dirty[i] = 0
	}
}

// Restore rolls dirty pages back to the snapshot. It panics if Snapshot was
// never called.
func (m *Memory) Restore() {
	if m.snapshot == nil {
		panic("mem: Restore without Snapshot")
	}
	for wi, word := range m.dirty {
		for word != 0 {
			bit := word & -word
			p := uint32(wi)<<6 + uint32(bits.TrailingZeros64(word))
			off := int(p) << pageBits
			end := off + 1<<pageBits
			if end > len(m.data) {
				end = len(m.data)
			}
			copy(m.data[off:end], m.snapshot[off:end])
			word &^= bit
		}
		m.dirty[wi] = 0
	}
}

// Clone returns an independent deep copy (snapshot state included).
func (m *Memory) Clone() *Memory {
	c := &Memory{base: m.base, data: append([]byte(nil), m.data...)}
	if m.snapshot != nil {
		c.snapshot = append([]byte(nil), m.snapshot...)
		c.dirty = append([]uint64(nil), m.dirty...)
	}
	return c
}
