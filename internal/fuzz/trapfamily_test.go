package fuzz

import (
	"context"
	"reflect"
	"testing"

	"rvnegtest/internal/coverage"
	"rvnegtest/internal/template"
)

// TestTrapCampaignBitIdentical extends the campaign determinism guarantee
// to the trap family: for workers in {1, 2, 8}, a trap-family campaign
// with the predecode cache disabled produces exactly the corpus and
// deterministic stats of the default (cached) campaign — two independent
// runs compared, so this also pins run-to-run determinism.
func TestTrapCampaignBitIdentical(t *testing.T) {
	run := func(disable bool, workers int) ([][]byte, []string) {
		cfg := smallConfig(coverage.V1(), 17)
		cfg.Family = template.FamilyTrap
		cfg.DisablePredecode = disable
		corpus, stats, err := Campaign(context.Background(), cfg, CampaignConfig{Workers: workers, ExecsEach: 3000})
		if err != nil {
			t.Fatal(err)
		}
		det := make([]string, len(stats))
		for i, s := range stats {
			det[i] = mustJSON(t, s.Deterministic())
		}
		return corpus, det
	}
	for _, workers := range []int{1, 2, 8} {
		onCorpus, onStats := run(false, workers)
		offCorpus, offStats := run(true, workers)
		if len(onCorpus) == 0 {
			t.Fatalf("workers=%d: empty corpus", workers)
		}
		if !reflect.DeepEqual(onCorpus, offCorpus) {
			t.Fatalf("workers=%d: trap corpus differs with predecode disabled: %d vs %d cases",
				workers, len(onCorpus), len(offCorpus))
		}
		if !reflect.DeepEqual(onStats, offStats) {
			t.Fatalf("workers=%d: deterministic stats differ with predecode disabled:\n on:  %v\n off: %v",
				workers, onStats, offStats)
		}
	}
}

// TestTrapCampaignDiffersFromUser: the two families explore different
// spaces — a trap campaign's corpus is not the user campaign's corpus
// under an identical (seed, budget) pair. This guards against the family
// knob silently not reaching the filter or the platform.
func TestTrapCampaignDiffersFromUser(t *testing.T) {
	run := func(fam template.Family) [][]byte {
		cfg := smallConfig(coverage.V1(), 17)
		cfg.Family = fam
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Run(3000, 0); err != nil {
			t.Fatal(err)
		}
		return f.Corpus()
	}
	if reflect.DeepEqual(run(template.FamilyUser), run(template.FamilyTrap)) {
		t.Fatal("trap-family campaign reproduced the user-family corpus exactly")
	}
}

// TestTrapFingerprintBindsFamily: a checkpoint written by a trap campaign
// must not resume a user campaign (and vice versa); the user family keeps
// its historical fingerprint so existing checkpoints stay valid.
func TestTrapFingerprintBindsFamily(t *testing.T) {
	user := smallConfig(coverage.V1(), 17)
	trap := user
	trap.Family = template.FamilyTrap
	if user.Fingerprint() == trap.Fingerprint() {
		t.Fatal("fingerprint ignores the family: a checkpoint could resume across families")
	}
	if got := trap.Fingerprint(); got != user.Fingerprint()+" family=trap" {
		t.Errorf("trap fingerprint %q does not extend the user fingerprint", got)
	}
}
