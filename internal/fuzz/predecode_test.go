package fuzz

import (
	"context"
	"reflect"
	"testing"

	"rvnegtest/internal/coverage"
	"rvnegtest/internal/obs"
)

// TestPredecodeAblationBitIdentical is the campaign-level determinism
// guarantee of the predecoded execution core: for every worker count, a
// campaign with the cache disabled produces exactly the corpus and
// deterministic stats of the default (cached) campaign.
func TestPredecodeAblationBitIdentical(t *testing.T) {
	run := func(disable bool, workers int) ([][]byte, []string) {
		cfg := smallConfig(coverage.V1(), 17)
		cfg.DisablePredecode = disable
		corpus, stats, err := Campaign(context.Background(), cfg, CampaignConfig{Workers: workers, ExecsEach: 3000})
		if err != nil {
			t.Fatal(err)
		}
		det := make([]string, len(stats))
		for i, s := range stats {
			det[i] = mustJSON(t, s.Deterministic())
		}
		return corpus, det
	}
	for _, workers := range []int{1, 2, 8} {
		onCorpus, onStats := run(false, workers)
		offCorpus, offStats := run(true, workers)
		if len(onCorpus) == 0 {
			t.Fatalf("workers=%d: empty corpus", workers)
		}
		if !reflect.DeepEqual(onCorpus, offCorpus) {
			t.Fatalf("workers=%d: corpus differs with predecode disabled: %d vs %d cases",
				workers, len(onCorpus), len(offCorpus))
		}
		if !reflect.DeepEqual(onStats, offStats) {
			t.Fatalf("workers=%d: deterministic stats differ with predecode disabled:\n on:  %v\n off: %v",
				workers, onStats, offStats)
		}
	}
}

// TestPredecodeCheckpointCrossResume checks that DisablePredecode stays
// outside the checkpoint fingerprint: a campaign checkpointed with the
// cache enabled must resume cleanly with it disabled (and vice versa) and
// still end bit-identical to an uninterrupted run.
func TestPredecodeCheckpointCrossResume(t *testing.T) {
	const budget = 12000
	cfg := smallConfig(coverage.V1(), 23)

	base, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Run(budget, 0); err != nil {
		t.Fatal(err)
	}

	for _, first := range []bool{false, true} {
		dir := t.TempDir()
		cfgA := cfg
		cfgA.DisablePredecode = first
		f1, err := New(cfgA)
		if err != nil {
			t.Fatal(err)
		}
		if err := f1.Run(5000, 0); err != nil {
			t.Fatal(err)
		}
		if err := f1.SaveCheckpoint(dir); err != nil {
			t.Fatal(err)
		}
		cfgB := cfg
		cfgB.DisablePredecode = !first
		f2, err := Resume(cfgB, dir)
		if err != nil {
			t.Fatalf("resume across predecode ablation (first=%v): %v", first, err)
		}
		if err := f2.Run(budget, 0); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base.Corpus(), f2.Corpus()) {
			t.Fatalf("first=%v: cross-resumed corpus differs: %d vs %d cases",
				first, len(f2.Corpus()), len(base.Corpus()))
		}
		if want, got := mustJSON(t, base.Stats().Deterministic()), mustJSON(t, f2.Stats().Deterministic()); want != got {
			t.Fatalf("first=%v: deterministic stats differ:\n  uninterrupted: %s\n  cross-resumed: %s", first, want, got)
		}
	}
}

// TestPredecodeCountersObserveCache: with telemetry on, the decode-cache
// counters must show real traffic when the cache is enabled and stay at
// zero when it is disabled — and enabling them must not perturb the
// campaign (the corpus stays identical, checked above; here the counters
// themselves).
func TestPredecodeCountersObserveCache(t *testing.T) {
	run := func(disable bool) *obs.Registry {
		cfg := smallConfig(coverage.V1(), 31)
		cfg.DisablePredecode = disable
		cfg.Obs = obs.NewRegistry()
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Run(3000, 0); err != nil {
			t.Fatal(err)
		}
		return cfg.Obs
	}
	on := run(false)
	if hits := on.Counter("rvnegtest_fuzz_predecode_hits_total").Value(); hits == 0 {
		t.Error("predecode enabled but hit counter is zero")
	}
	if inv := on.Counter("rvnegtest_fuzz_predecode_invalidations_total").Value(); inv == 0 {
		t.Error("predecode enabled but invalidation counter is zero (every inject invalidates)")
	}
	off := run(true)
	for _, name := range []string{
		"rvnegtest_fuzz_predecode_hits_total",
		"rvnegtest_fuzz_predecode_misses_total",
		"rvnegtest_fuzz_predecode_invalidations_total",
	} {
		if v := off.Counter(name).Value(); v != 0 {
			t.Errorf("predecode disabled but %s = %d", name, v)
		}
	}
}
