package fuzz

import (
	"sync"

	"rvnegtest/internal/coverage"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/template"
)

// Minimize reduces a corpus to a subset with identical coverage, the
// counterpart of libFuzzer's -merge: cases are replayed in order on a
// fresh collector and kept only if they still contribute new coverage.
// Distributing a minimized suite keeps compliance runs short without
// losing any of the coverage the campaign reached.
func Minimize(cases [][]byte, cfg Config) ([][]byte, error) {
	if cfg.ISA.Ext == 0 {
		cfg.ISA = DefaultConfig().ISA
	}
	target, err := sim.New(sim.Reference, template.PlatformFor(cfg.Family, cfg.ISA))
	if err != nil {
		return nil, err
	}
	col := coverage.NewCollector(cfg.Coverage)
	var kept [][]byte
	for _, bs := range cases {
		out := target.RunHooked(bs, col)
		if out.Crashed || out.TimedOut {
			col.Map.DiscardRun()
			continue
		}
		if col.Map.MergeNew() {
			kept = append(kept, bs)
		}
	}
	return kept, nil
}

// MinimizeParallel is Minimize with the replay phase sharded across
// `workers` goroutines, each owning a cloned pre-loaded simulator and a
// private collector. Each case's coverage footprint depends only on the
// case itself, so the footprints are computed concurrently and then
// greedily merged in case order — reproducing Minimize's sequential
// semantics bit-for-bit (same kept subset, same order) at any worker
// count.
func MinimizeParallel(cases [][]byte, cfg Config, workers int) ([][]byte, error) {
	if workers <= 1 || len(cases) < 2 {
		return Minimize(cases, cfg)
	}
	if workers > len(cases) {
		workers = len(cases)
	}
	if cfg.ISA.Ext == 0 {
		cfg.ISA = DefaultConfig().ISA
	}
	base, err := sim.New(sim.Reference, template.PlatformFor(cfg.Family, cfg.ISA))
	if err != nil {
		return nil, err
	}
	// footprints[i] is case i's coverage; nil for crashed/timed-out or
	// zero-coverage cases (equivalent under the greedy merge: neither can
	// contribute a new bit).
	footprints := make([][]coverage.RunPoint, len(cases))
	// All clones must exist before any worker starts: cloning copies the
	// base image's memory, which a running worker mutates.
	targets := make([]*sim.Simulator, workers)
	targets[0] = base
	for w := 1; w < workers; w++ {
		targets[w] = base.Clone()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, target *sim.Simulator) {
			defer wg.Done()
			col := coverage.NewCollector(cfg.Coverage)
			for i := w; i < len(cases); i += workers {
				out := target.RunHooked(cases[i], col)
				if out.Crashed || out.TimedOut {
					col.Map.DiscardRun()
					continue
				}
				footprints[i] = col.Map.RunFootprint()
				col.Map.DiscardRun()
			}
		}(w, targets[w])
	}
	wg.Wait()

	global := coverage.NewCollector(cfg.Coverage).Map
	var kept [][]byte
	for i, fp := range footprints {
		if global.MergeFootprint(fp) {
			kept = append(kept, cases[i])
		}
	}
	return kept, nil
}

// CoverageBits replays a corpus and returns the bucket-bit count it
// reaches under the given coverage configuration (for judging
// minimization quality).
func CoverageBits(cases [][]byte, cfg Config) (int, error) {
	if cfg.ISA.Ext == 0 {
		cfg.ISA = DefaultConfig().ISA
	}
	target, err := sim.New(sim.Reference, template.PlatformFor(cfg.Family, cfg.ISA))
	if err != nil {
		return 0, err
	}
	col := coverage.NewCollector(cfg.Coverage)
	for _, bs := range cases {
		out := target.RunHooked(bs, col)
		if out.Crashed || out.TimedOut {
			col.Map.DiscardRun()
			continue
		}
		col.Map.MergeNew()
	}
	return col.Map.BucketBits(), nil
}
