package fuzz

import (
	"rvnegtest/internal/coverage"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/template"
)

// Minimize reduces a corpus to a subset with identical coverage, the
// counterpart of libFuzzer's -merge: cases are replayed in order on a
// fresh collector and kept only if they still contribute new coverage.
// Distributing a minimized suite keeps compliance runs short without
// losing any of the coverage the campaign reached.
func Minimize(cases [][]byte, cfg Config) ([][]byte, error) {
	if cfg.ISA.Ext == 0 {
		cfg.ISA = DefaultConfig().ISA
	}
	target, err := sim.New(sim.Reference, template.Platform{
		Layout: template.DefaultLayout,
		Cfg:    cfg.ISA,
	})
	if err != nil {
		return nil, err
	}
	col := coverage.NewCollector(cfg.Coverage)
	var kept [][]byte
	for _, bs := range cases {
		out := target.RunHooked(bs, col)
		if out.Crashed || out.TimedOut {
			col.Map.DiscardRun()
			continue
		}
		if col.Map.MergeNew() {
			kept = append(kept, bs)
		}
	}
	return kept, nil
}

// CoverageBits replays a corpus and returns the bucket-bit count it
// reaches under the given coverage configuration (for judging
// minimization quality).
func CoverageBits(cases [][]byte, cfg Config) (int, error) {
	if cfg.ISA.Ext == 0 {
		cfg.ISA = DefaultConfig().ISA
	}
	target, err := sim.New(sim.Reference, template.Platform{
		Layout: template.DefaultLayout,
		Cfg:    cfg.ISA,
	})
	if err != nil {
		return 0, err
	}
	col := coverage.NewCollector(cfg.Coverage)
	for _, bs := range cases {
		out := target.RunHooked(bs, col)
		if out.Crashed || out.TimedOut {
			col.Map.DiscardRun()
			continue
		}
		col.Map.MergeNew()
	}
	return col.Map.BucketBits(), nil
}
