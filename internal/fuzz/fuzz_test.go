package fuzz

import (
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"rvnegtest/internal/analysis"
	"rvnegtest/internal/coverage"
	"rvnegtest/internal/filter"
	"rvnegtest/internal/isa"
)

func smallConfig(opts coverage.Options, seed int64) Config {
	return Config{
		Coverage:          opts,
		ISA:               isa.RV32GC,
		MaxLen:            64,
		LenControl:        500,
		Seed:              seed,
		CustomMutatorProb: 0.5,
	}
}

func TestCampaignCollectsTestCases(t *testing.T) {
	f, err := New(smallConfig(coverage.V1(), 7))
	if err != nil {
		t.Fatal(err)
	}
	f.Run(20000, 0)
	st := f.Stats()
	if st.Execs != 20000 {
		t.Errorf("execs = %d", st.Execs)
	}
	if st.TestCases < 50 {
		t.Errorf("test cases = %d, want a substantial corpus", st.TestCases)
	}
	if st.Dropped == 0 {
		t.Error("the filter should drop some inputs")
	}
	if st.Dropped >= st.Execs {
		t.Error("some inputs must survive the filter")
	}
	if st.Crashes != 0 || st.Timeouts != 0 {
		t.Errorf("reference target must not crash/time out: %+v", st)
	}
	if st.ExecsPerSec <= 0 {
		t.Error("exec rate not measured")
	}
	t.Logf("execs/sec: %.0f, test cases: %d, dropped: %d", st.ExecsPerSec, st.TestCases, st.Dropped)
}

// TestCorpusAllPassFilter: everything the fuzzer collects must be
// filter-accepted (the generated suite is usable for automated compliance
// testing as-is).
func TestCorpusAllPassFilter(t *testing.T) {
	f, err := New(smallConfig(coverage.V1(), 8))
	if err != nil {
		t.Fatal(err)
	}
	f.Run(10000, 0)
	flt := &filter.Filter{MaxLen: 64}
	for i, bs := range f.Corpus() {
		if res := flt.Check(bs); !res.Accepted {
			t.Fatalf("corpus[%d] = %x rejected: %v", i, bs, res)
		}
		if len(bs) > 64 {
			t.Fatalf("corpus[%d] length %d exceeds the limit", i, len(bs))
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() ([]([]byte), Stats) {
		f, err := New(smallConfig(coverage.V1(), 42))
		if err != nil {
			t.Fatal(err)
		}
		f.Run(5000, 0)
		return f.Corpus(), f.Stats()
	}
	c1, s1 := run()
	c2, s2 := run()
	if len(c1) != len(c2) || s1.Dropped != s2.Dropped {
		t.Fatalf("campaigns diverge: %d/%d cases, %d/%d dropped",
			len(c1), len(c2), s1.Dropped, s2.Dropped)
	}
	for i := range c1 {
		if string(c1[i]) != string(c2[i]) {
			t.Fatalf("corpus[%d] differs", i)
		}
	}
}

// TestCoverageConfigOrdering reproduces the Fig. 4 relationship on a small
// budget: richer coverage configurations collect more test cases.
func TestCoverageConfigOrdering(t *testing.T) {
	counts := map[string]int{}
	for _, name := range []string{"v0", "v1", "v3"} {
		opts, _ := coverage.ByName(name)
		f, err := New(smallConfig(opts, 11))
		if err != nil {
			t.Fatal(err)
		}
		f.Run(15000, 0)
		counts[name] = f.Stats().TestCases
	}
	t.Logf("test cases: v0=%d v1=%d v3=%d", counts["v0"], counts["v1"], counts["v3"])
	if !(counts["v0"] < counts["v1"] && counts["v1"] < counts["v3"]) {
		t.Errorf("coverage ordering violated: %v", counts)
	}
}

func TestGrowthCurveShape(t *testing.T) {
	f, err := New(smallConfig(coverage.V2(), 13))
	if err != nil {
		t.Fatal(err)
	}
	f.Run(20000, 0)
	tr := f.Stats().Trace
	if len(tr) < 20 {
		t.Fatalf("trace too short: %d", len(tr))
	}
	// Monotone growth.
	for i := 1; i < len(tr); i++ {
		if tr[i].TestCases != tr[i-1].TestCases+1 || tr[i].Execs < tr[i-1].Execs {
			t.Fatalf("trace not monotone at %d: %+v %+v", i, tr[i-1], tr[i])
		}
	}
	// Early saturation (Fig. 4): the first half of the executions collects
	// the clear majority of the test cases.
	half := tr[len(tr)-1].Execs / 2
	atHalf := 0
	for _, p := range tr {
		if p.Execs <= half {
			atHalf = p.TestCases
		}
	}
	total := tr[len(tr)-1].TestCases
	if atHalf*10 < total*6 {
		t.Errorf("growth not front-loaded: %d of %d at half budget", atHalf, total)
	}
}

func TestCustomMutatorAblation(t *testing.T) {
	with, err := New(smallConfig(coverage.V1(), 21))
	if err != nil {
		t.Fatal(err)
	}
	with.Run(10000, 0)
	cfg := smallConfig(coverage.V1(), 21)
	cfg.DisableCustomMutator = true
	without, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	without.Run(10000, 0)
	// The instruction-aware mutator produces far more filter-surviving,
	// coverage-producing inputs.
	w, wo := with.Stats(), without.Stats()
	t.Logf("with mutator: %d cases (%d dropped); without: %d cases (%d dropped)",
		w.TestCases, w.Dropped, wo.TestCases, wo.Dropped)
	if w.TestCases <= wo.TestCases {
		t.Errorf("custom mutator should increase the corpus: %d vs %d", w.TestCases, wo.TestCases)
	}
}

func TestFilterAblationProducesHazards(t *testing.T) {
	cfg := smallConfig(coverage.V1(), 31)
	cfg.DisableFilter = true
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Run(20000, 0)
	st := f.Stats()
	if st.Dropped != 0 {
		t.Errorf("dropped = %d with the filter disabled", st.Dropped)
	}
	// Without the filter, non-terminating inputs reach the simulator.
	if st.Timeouts == 0 {
		t.Error("expected timeouts without the filter (infinite loops reach the target)")
	}
}

// TestFilterStatsConsistency: the per-reason histogram must tie out with
// the campaign's aggregate counters — every execution is classified once,
// and the dropped count equals the sum of the drop reasons.
func TestFilterStatsConsistency(t *testing.T) {
	f, err := New(smallConfig(coverage.V1(), 77))
	if err != nil {
		t.Fatal(err)
	}
	f.Run(10000, 0)
	st := f.Stats()
	if st.Filter.Total() != st.Execs {
		t.Errorf("filter checked %d inputs, campaign ran %d", st.Filter.Total(), st.Execs)
	}
	if st.Filter.Dropped() != st.Dropped {
		t.Errorf("filter histogram drops %d, campaign counted %d", st.Filter.Dropped(), st.Dropped)
	}
	if st.Filter.Accepted() != st.Execs-st.Dropped {
		t.Errorf("accepted mismatch: %d vs %d", st.Filter.Accepted(), st.Execs-st.Dropped)
	}
	if st.Filter.Counts[analysis.ReasonPathBudget] != 0 {
		t.Error("the fixpoint filter must never drop for budget reasons")
	}
	if st.Filter.Counts[analysis.ReasonTooLong] != 0 {
		t.Error("the mutators bound lengths; no stream should trip MaxLen")
	}
	// JSON embeds the histogram under "filter".
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["filter"]; !ok {
		t.Errorf("stats JSON lacks the filter histogram: %s", raw)
	}
}

// TestFilterStatsDisabled: with the filter ablated no classifications
// happen at all.
func TestFilterStatsDisabled(t *testing.T) {
	cfg := smallConfig(coverage.V0(), 78)
	cfg.DisableFilter = true
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Run(500, 0)
	st := f.Stats()
	if tot := st.Filter.Total(); tot != 0 {
		t.Errorf("filter stats recorded %d checks while disabled", tot)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Coverage: coverage.V0(), MaxLen: 10000}); err == nil {
		t.Error("oversized MaxLen must fail")
	}
	// Zero values take defaults.
	f, err := New(Config{Coverage: coverage.V0()})
	if err != nil {
		t.Fatal(err)
	}
	if f.cfg.MaxLen != 64 || f.cfg.LenControl != 10000 || f.cfg.ISA != isa.RV32GC {
		t.Errorf("defaults not applied: %+v", f.cfg)
	}
}

func TestMutatorBounds(t *testing.T) {
	m := newMutator(newRng(5))
	for i := 0; i < 5000; i++ {
		base := make([]byte, newRng(int64(i)).Intn(64))
		out := m.generic(base, []byte{1, 2, 3, 4}, 64)
		if len(out) == 0 || len(out) > 64 {
			t.Fatalf("generic mutation length %d", len(out))
		}
		out = m.instructionAware(base, 64)
		if len(out) > 64 {
			t.Fatalf("instruction mutation length %d", len(out))
		}
	}
}

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TestWallClockBound: Run with only a duration bound terminates promptly.
func TestWallClockBound(t *testing.T) {
	f, err := New(smallConfig(coverage.V0(), 55))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	f.Run(0, 100*time.Millisecond)
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("wall-clock bound overran: %v", el)
	}
	if f.Stats().Execs == 0 {
		t.Fatal("no executions within the time budget")
	}
}

// TestSeedCorpus: seeding a campaign with a prior suite replays it first,
// reaching the prior coverage within the seed count and then improving on
// it — the basis of efficient continuous re-runs.
func TestSeedCorpus(t *testing.T) {
	base := smallConfig(coverage.V1(), 61)
	f1, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	f1.Run(8000, 0)
	prior := f1.Corpus()
	priorBits := f1.Stats().CovBits
	if len(prior) < 20 {
		t.Fatalf("prior corpus too small: %d", len(prior))
	}

	seeded := smallConfig(coverage.V1(), 62)
	seeded.Seeds = prior
	f2, err := New(seeded)
	if err != nil {
		t.Fatal(err)
	}
	// Replaying exactly the seed inputs must already recover (almost all
	// of) the prior coverage: collection order equals discovery order, so
	// each seed still contributes.
	f2.Run(uint64(len(prior)), 0)
	st := f2.Stats()
	if st.TestCases < len(prior)*9/10 {
		t.Errorf("only %d of %d seeds were collected", st.TestCases, len(prior))
	}
	if st.CovBits < priorBits*9/10 {
		t.Errorf("seed replay reached %d bits, prior campaign had %d", st.CovBits, priorBits)
	}
	// Continuing past the seeds keeps fuzzing normally.
	f2.Run(uint64(len(prior))+4000, 0)
	if f2.Stats().TestCases <= st.TestCases {
		t.Error("no growth after seed replay")
	}
}

// TestSeedCorpusRespectsFilter: seeds are subject to the same filter as
// generated inputs (a hostile seed cannot smuggle in a forbidden case).
func TestSeedCorpusRespectsFilter(t *testing.T) {
	cfg := smallConfig(coverage.V0(), 63)
	wfi := isa.MustEncode(isa.Inst{Op: isa.OpWFI})
	cfg.Seeds = [][]byte{{byte(wfi), byte(wfi >> 8), byte(wfi >> 16), byte(wfi >> 24)}}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Run(1, 0)
	st := f.Stats()
	if st.Dropped != 1 || st.TestCases != 0 {
		t.Errorf("forbidden seed: dropped=%d cases=%d", st.Dropped, st.TestCases)
	}
}
