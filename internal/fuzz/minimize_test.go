package fuzz

import (
	"testing"

	"rvnegtest/internal/coverage"
)

func TestMinimizePreservesCoverage(t *testing.T) {
	cfg := smallConfig(coverage.V1(), 17)
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Run(10000, 0)
	corpus := f.Corpus()
	if len(corpus) < 50 {
		t.Fatalf("corpus too small: %d", len(corpus))
	}
	min, err := Minimize(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(min) == 0 || len(min) > len(corpus) {
		t.Fatalf("minimized %d of %d", len(min), len(corpus))
	}
	full, err := CoverageBits(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CoverageBits(min, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != full {
		t.Errorf("minimized coverage %d != full %d", got, full)
	}
	// Minimization is idempotent.
	again, err := Minimize(min, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(min) {
		t.Errorf("second pass shrank %d -> %d", len(min), len(again))
	}
	t.Logf("minimize: %d -> %d cases at %d coverage bits", len(corpus), len(min), full)
}

// TestMinimizeDropsRedundant: duplicating the corpus must not grow the
// minimized result.
func TestMinimizeDropsRedundant(t *testing.T) {
	cfg := smallConfig(coverage.V1(), 19)
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Run(5000, 0)
	corpus := f.Corpus()
	doubled := append(append([][]byte(nil), corpus...), corpus...)
	a, err := Minimize(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bcases, err := Minimize(doubled, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(bcases) != len(a) {
		t.Errorf("doubled corpus minimized to %d, original to %d", len(bcases), len(a))
	}
}

func TestParallelCampaign(t *testing.T) {
	cfg := smallConfig(coverage.V1(), 23)
	merged, stats, err := ParallelCampaign(cfg, 4, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 4 {
		t.Fatalf("stats for %d workers", len(stats))
	}
	for i, st := range stats {
		if st.Execs != 4000 {
			t.Errorf("worker %d: %d execs", i, st.Execs)
		}
	}
	if len(merged) == 0 {
		t.Fatal("empty merged corpus")
	}
	// Determinism of the merged result.
	merged2, _, err := ParallelCampaign(cfg, 4, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged2) != len(merged) {
		t.Fatalf("parallel campaign not deterministic: %d vs %d", len(merged), len(merged2))
	}
	for i := range merged {
		if string(merged[i]) != string(merged2[i]) {
			t.Fatalf("merged corpus differs at %d", i)
		}
	}
	// More workers reach at least as much coverage as one worker with the
	// same per-worker budget.
	single, _, err := ParallelCampaign(cfg, 1, 4000)
	if err != nil {
		t.Fatal(err)
	}
	sBits, _ := CoverageBits(single, cfg)
	mBits, _ := CoverageBits(merged, cfg)
	if mBits < sBits {
		t.Errorf("4 workers reached %d bits < 1 worker's %d", mBits, sBits)
	}
}

// TestMinimizeParallelBitIdentical: the sharded replay must keep exactly
// the same subset in the same order as the serial Minimize, for any
// worker count.
func TestMinimizeParallelBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 7
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Run(30000, 0)
	// Duplicate the corpus so minimization has real work to do.
	cases := append(append([][]byte{}, f.Corpus()...), f.Corpus()...)
	want, err := Minimize(cases, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 || len(want) >= len(cases) {
		t.Fatalf("degenerate minimization: %d -> %d", len(cases), len(want))
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := MinimizeParallel(cases, cfg, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: kept %d cases, serial kept %d", workers, len(got), len(want))
		}
		for i := range want {
			if string(got[i]) != string(want[i]) {
				t.Errorf("workers=%d: case %d differs", workers, i)
			}
		}
	}
}

// TestParallelCampaignDeterministic: for each worker count, two runs with
// the same (seed, workers, budget) triple produce byte-identical corpora.
func TestParallelCampaignDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 3
	for _, workers := range []int{1, 2, 8} {
		a, _, err := ParallelCampaign(cfg, workers, 6000)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := ParallelCampaign(cfg, workers, 6000)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) == 0 {
			t.Fatalf("workers=%d: empty corpus", workers)
		}
		if len(a) != len(b) {
			t.Fatalf("workers=%d: %d vs %d cases across runs", workers, len(a), len(b))
		}
		for i := range a {
			if string(a[i]) != string(b[i]) {
				t.Errorf("workers=%d: case %d differs across runs", workers, i)
			}
		}
	}
}
