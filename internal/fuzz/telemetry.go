package fuzz

import (
	"rvnegtest/internal/analysis"
	"rvnegtest/internal/obs"
)

// telemetry holds a fuzzer's pre-resolved observability handles. It is
// nil when both Config.Obs and Config.Events are unset, and every use
// site guards on that nil, so a campaign without telemetry performs no
// clock reads, no atomic updates and no event encoding beyond the
// pre-telemetry code — the zero-cost-off contract. Telemetry state
// never feeds back into campaign decisions, never enters checkpoints
// and never appears in Stats.Deterministic(), so outputs stay
// byte-identical with telemetry on or off.
type telemetry struct {
	reg    *obs.Registry
	events *obs.EventLog
	worker int

	execs    *obs.Counter
	traps    *obs.Counter
	crashes  *obs.Counter
	timeout  *obs.Counter
	hfaults  *obs.Counter
	adds     *obs.Counter
	preHits  *obs.Counter
	preMiss  *obs.Counter
	preInval *obs.Counter
	preFused *obs.Counter
	drops    [analysis.NumReasons]*obs.Counter

	// batchRuns counts successful lockstep batch executions; batchAborts
	// counts batches abandoned at the harness level (panic or watchdog)
	// and rerun scalar. Batch-layer accounting is telemetry-only: Stats
	// is built entirely from the scalar-equivalent commit path.
	batchRuns   *obs.Counter
	batchAborts *obs.Counter

	corpusSize *obs.Gauge
	covBits    *obs.Gauge

	stMutate *obs.Histogram
	stFilter *obs.Histogram
	stExec   *obs.Histogram
	stCov    *obs.Histogram
	stCkpt   *obs.Histogram
	stPre    *obs.Histogram
}

// newTelemetry resolves the fuzzer's metric handles, or returns nil
// when telemetry is disabled. A nil registry with a non-nil event log
// is valid: the metric handles are nil (no-op) and only events flow.
func newTelemetry(cfg Config) *telemetry {
	if cfg.Obs == nil && cfg.Events == nil {
		return nil
	}
	reg := cfg.Obs
	t := &telemetry{
		reg:         reg,
		events:      cfg.Events,
		worker:      cfg.Worker,
		execs:       reg.Counter("rvnegtest_fuzz_execs_total"),
		traps:       reg.Counter("rvnegtest_fuzz_traps_total"),
		crashes:     reg.Counter("rvnegtest_fuzz_crashes_total"),
		timeout:     reg.Counter("rvnegtest_fuzz_timeouts_total"),
		hfaults:     reg.Counter("rvnegtest_fuzz_harness_faults_total"),
		adds:        reg.Counter("rvnegtest_fuzz_corpus_adds_total"),
		preHits:     reg.Counter("rvnegtest_fuzz_predecode_hits_total"),
		preMiss:     reg.Counter("rvnegtest_fuzz_predecode_misses_total"),
		preInval:    reg.Counter("rvnegtest_fuzz_predecode_invalidations_total"),
		preFused:    reg.Counter("rvnegtest_fuzz_predecode_fused_total"),
		batchRuns:   reg.Counter("rvnegtest_fuzz_batch_runs_total"),
		batchAborts: reg.Counter("rvnegtest_fuzz_batch_aborts_total"),
		corpusSize:  reg.Gauge("rvnegtest_fuzz_corpus_size"),
		covBits:     reg.Gauge("rvnegtest_fuzz_coverage_bits"),
		stMutate:    reg.Stage(obs.StageMutate),
		stFilter:    reg.Stage(obs.StageFilter),
		stExec:      reg.Stage(obs.StageExecute),
		stCov:       reg.Stage(obs.StageCoverageEval),
		stCkpt:      reg.Stage(obs.StageCheckpointWrite),
		stPre:       reg.Stage(obs.StagePredecode),
	}
	for r := analysis.Reason(0); r < analysis.NumReasons; r++ {
		t.drops[r] = reg.Counter(`rvnegtest_fuzz_dropped_total{reason="` + r.Slug() + `"}`)
	}
	return t
}

// event emits ev with the fuzzer's worker index filled in. Safe on a
// nil receiver.
func (t *telemetry) event(ev obs.Event) {
	if t == nil {
		return
	}
	ev.Worker = t.worker
	t.events.Emit(ev)
}

// emitSummary emits the cumulative stage-timer totals of this fuzzer's
// registry as a stage_summary event (the input of `rvreport -events`).
func (t *telemetry) emitSummary(execs uint64, corpus int) {
	if t == nil || t.events == nil {
		return
	}
	t.event(obs.Event{
		Type:   "stage_summary",
		Execs:  execs,
		Corpus: corpus,
		Stages: t.reg.StageSummaries(),
	})
}
