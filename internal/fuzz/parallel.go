package fuzz

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"

	"rvnegtest/internal/obs"
)

// ErrInterrupted reports that a campaign stopped on context cancellation
// (operator SIGINT/SIGTERM) after checkpointing its state; resuming from
// the checkpoint directory continues bit-identically.
var ErrInterrupted = errors.New("fuzz: campaign interrupted")

// CampaignConfig shapes a (possibly parallel, possibly resumable)
// campaign around the per-fuzzer Config.
type CampaignConfig struct {
	// Workers is the number of independent fuzzers (each seeded
	// cfg.Seed + worker index); values below 1 mean 1.
	Workers int
	// ExecsEach is each worker's execution budget.
	ExecsEach uint64
	// CheckpointDir, when set, enables checkpoint/resume: each worker
	// keeps its state under <dir>/worker-NNN, saved every
	// CheckpointEvery executions and on cancellation, and an existing
	// checkpoint is resumed instead of starting over.
	CheckpointDir string
	// CheckpointEvery is the periodic checkpoint interval in executions
	// (default 100000 when checkpointing is enabled).
	CheckpointEvery uint64
	// Minimize replays the merged corpus and drops cases that add no
	// coverage (always on for multi-worker merges via ParallelCampaign).
	Minimize bool
}

// Campaign runs a campaign of cc.Workers independent fuzzers and merges
// their corpora in worker order, so the result is deterministic for a
// given (seed, workers, budget) triple regardless of scheduling — and,
// with CheckpointDir set, regardless of how many times the campaign was
// interrupted and resumed in between.
//
// On ctx cancellation every worker checkpoints (when enabled) and
// Campaign returns ErrInterrupted with the partial per-worker stats.
func Campaign(ctx context.Context, cfg Config, cc CampaignConfig) ([][]byte, []Stats, error) {
	workers := cc.Workers
	if workers < 1 {
		workers = 1
	}
	every := cc.CheckpointEvery
	if every == 0 {
		every = 100000
	}
	type result struct {
		corpus [][]byte
		stats  Stats
		err    error
	}
	cfg.Events.Emit(obs.Event{Type: "campaign_start", Worker: -1,
		Detail: fmt.Sprintf("workers=%d execs_each=%d", workers, cc.ExecsEach)})
	results := make([]result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := cfg
			c.Seed = cfg.Seed + int64(w)
			c.Worker = w
			// Each worker fills a private child registry: the hot path
			// stays contention-free, live scrapes aggregate the children,
			// and the post-run Collapse folds them into the parent in
			// worker order (sums commute, so the totals are deterministic).
			c.Obs = cfg.Obs.NewChild()
			var dir string
			if cc.CheckpointDir != "" {
				dir = filepath.Join(cc.CheckpointDir, fmt.Sprintf("worker-%03d", w))
			}
			f, err := newOrResume(c, dir)
			if err != nil {
				results[w].err = err
				return
			}
			err = runWorker(ctx, f, dir, cc.ExecsEach, every)
			f.FlushTelemetry()
			results[w] = result{corpus: f.Corpus(), stats: f.Stats(), err: err}
		}(w)
	}
	wg.Wait()
	cfg.Obs.Collapse()

	var merged [][]byte
	var stats []Stats
	interrupted := false
	for _, r := range results {
		switch {
		case r.err == nil:
		case errors.Is(r.err, context.Canceled) || errors.Is(r.err, context.DeadlineExceeded):
			interrupted = true
		default:
			return nil, nil, r.err
		}
		merged = append(merged, r.corpus...)
		stats = append(stats, r.stats)
	}
	if interrupted {
		cfg.Events.Emit(obs.Event{Type: "campaign_done", Worker: -1, Corpus: len(merged), Detail: "interrupted"})
		return merged, stats, ErrInterrupted
	}
	if cc.Minimize {
		minimized, err := MinimizeParallel(merged, cfg, workers)
		if err != nil {
			return nil, nil, err
		}
		cfg.Events.Emit(obs.Event{Type: "campaign_done", Worker: -1, Corpus: len(minimized)})
		return minimized, stats, nil
	}
	cfg.Events.Emit(obs.Event{Type: "campaign_done", Worker: -1, Corpus: len(merged)})
	return merged, stats, nil
}

func newOrResume(cfg Config, dir string) (*Fuzzer, error) {
	if dir != "" && HasCheckpoint(dir) {
		return Resume(cfg, dir)
	}
	return New(cfg)
}

// runWorker drives one fuzzer to its execution budget in checkpoint-sized
// chunks, persisting after each chunk and once more on cancellation.
func runWorker(ctx context.Context, f *Fuzzer, dir string, budget, every uint64) error {
	if dir == "" {
		return f.RunContext(ctx, budget, 0)
	}
	for f.Execs() < budget {
		next := f.Execs() + every
		if next > budget {
			next = budget
		}
		err := f.RunContext(ctx, next, 0)
		if saveErr := f.SaveCheckpoint(dir); saveErr != nil {
			return saveErr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// ParallelCampaign runs `workers` independent fuzzers concurrently and
// merges their corpora in worker order; the merged corpus is minimized
// against the configuration's coverage so redundant cases from different
// workers collapse, with the minimization replay sharded across the same
// worker count (MinimizeParallel). Kept as the simple non-resumable entry
// point; Campaign adds cancellation and checkpoint/resume.
func ParallelCampaign(cfg Config, workers int, execsEach uint64) ([][]byte, []Stats, error) {
	return Campaign(context.Background(), cfg, CampaignConfig{
		Workers:   workers,
		ExecsEach: execsEach,
		Minimize:  true,
	})
}
