package fuzz

import "sync"

// ParallelCampaign runs `workers` independent fuzzers concurrently (each
// with its own seed, derived from cfg.Seed) and merges their corpora in
// worker order, so the overall result is deterministic for a given
// (seed, workers, budget) triple. The merged corpus is minimized against
// the configuration's coverage so redundant cases from different workers
// collapse; the minimization replay is sharded across the same worker
// count (MinimizeParallel), keeping the post-merge step off the critical
// path instead of re-executing the whole merged corpus serially.
func ParallelCampaign(cfg Config, workers int, execsEach uint64) ([][]byte, []Stats, error) {
	if workers < 1 {
		workers = 1
	}
	type result struct {
		corpus [][]byte
		stats  Stats
		err    error
	}
	results := make([]result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := cfg
			c.Seed = cfg.Seed + int64(w)
			f, err := New(c)
			if err != nil {
				results[w].err = err
				return
			}
			f.Run(execsEach, 0)
			results[w] = result{corpus: f.Corpus(), stats: f.Stats()}
		}(w)
	}
	wg.Wait()

	var merged [][]byte
	var stats []Stats
	for _, r := range results {
		if r.err != nil {
			return nil, nil, r.err
		}
		merged = append(merged, r.corpus...)
		stats = append(stats, r.stats)
	}
	minimized, err := MinimizeParallel(merged, cfg, workers)
	if err != nil {
		return nil, nil, err
	}
	return minimized, stats, nil
}
