// Package fuzz implements the coverage-guided test-suite generation engine
// of the paper (section IV): the counterpart of LLVM libFuzzer, driving
// bytestream inputs through the static filter into an instrumented
// instruction-set simulator and collecting every input that produces new
// coverage as a compliance test case.
//
// The engine reproduces the libFuzzer mechanics the paper relies on:
// a corpus of interesting inputs, randomly stacked byte-level mutations,
// gradual input-length growth when coverage saturates (-len_control), and
// a custom instruction-aware mutator invoked with equal probability to the
// generic ones (section IV-D).
//
// Campaigns are resilient: a panicking foundation simulator is isolated
// per step, a wedged run is reaped by a wall-clock watchdog (the target is
// rebuilt, the coverage frontier preserved), faulting inputs are
// quarantined for triage, and the whole campaign state checkpoints to
// disk and resumes bit-identically (checkpoint.go).
package fuzz

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"rvnegtest/internal/analysis"
	"rvnegtest/internal/coverage"
	"rvnegtest/internal/exec"
	"rvnegtest/internal/filter"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/obs"
	"rvnegtest/internal/resilience"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/template"
)

// Config parameterizes a fuzzing campaign.
type Config struct {
	// Coverage selects the guidance signals (the paper's v0..v3).
	Coverage coverage.Options
	// ISA is the foundation simulator's configuration (the paper fuzzes
	// on the 32-bit VP with the full RV32GC envelope).
	ISA isa.Config
	// Family selects the template family the campaign generates for. The
	// zero value (user) reproduces the paper's campaign byte-for-byte;
	// the trap family runs the recording-handler template and switches
	// the static filter to trap-tolerant semantics, so deliberate traps
	// become corpus content instead of drop reasons.
	Family template.Family
	// MaxLen bounds the bytestream length (the paper uses 64 bytes).
	MaxLen int
	// LenControl is the number of executions without new coverage before
	// the current length limit grows (the paper passes -len_control=10000
	// to slow libFuzzer's growth).
	LenControl int
	// Seed makes the campaign deterministic.
	Seed int64
	// CustomMutatorProb is the probability of using the instruction-aware
	// mutator for a given input (the paper attaches it "with equal
	// probability to the existing mutators").
	CustomMutatorProb float64
	// DisableFilter bypasses the static filter (ablation only: breaks the
	// no-spurious-mismatch guarantee).
	DisableFilter bool
	// DisableCustomMutator turns off instruction-aware mutation
	// (ablation).
	DisableCustomMutator bool
	// DisablePredecode turns off the foundation simulator's predecoded
	// execution core, forcing the classical per-fetch decode path
	// (ablation/debug). Corpora, checkpoints and stats are byte-identical
	// either way, so the knob is deliberately excluded from the
	// checkpoint fingerprint: a campaign may resume across it.
	DisablePredecode bool
	// Batch, when >= 2, runs accepted inputs through the foundation
	// simulator in batched lockstep (exec.Batch): N cloned lanes march
	// through the shared immutable predecode together instead of one
	// case streaming through the CPU cache alone. Corpora, checkpoints
	// and stats are byte-identical with batching on or off — the batch
	// layer speculates ahead and rolls back to preserve the scalar
	// schedule — so like DisablePredecode the knob is deliberately
	// excluded from the checkpoint fingerprint: a campaign may resume
	// across it. Targets without batch support fall back to scalar
	// stepping.
	Batch int
	// Seeds is an optional seed corpus (e.g. a previously generated
	// suite): the inputs are replayed first, collecting those that
	// produce coverage, before mutation-based generation begins —
	// libFuzzer's corpus-directory behaviour, the basis of efficient
	// continuous re-runs.
	Seeds [][]byte

	// CaseTimeout is a wall-clock watchdog on each simulator run, on top
	// of the instruction limit: a wedged run is reaped, counted as a
	// timeout and a harness fault, and the target rebuilt. Zero disables
	// the watchdog (runs execute inline, panic isolation only).
	CaseTimeout time.Duration
	// QuarantineDir, when set, receives every input that triggered a
	// harness fault (panic or watchdog timeout) together with the fault
	// detail.
	QuarantineDir string
	// NewTarget overrides the foundation-simulator factory (resilience
	// tests inject sim.Faulty here). Nil uses the reference model.
	NewTarget func(p template.Platform) (sim.HookedSim, error)

	// Obs, when non-nil, receives campaign telemetry: counters, gauges
	// and per-stage latency histograms (package obs). Telemetry is
	// observational only — it never influences campaign decisions, is
	// excluded from checkpoints and from the Fingerprint, and a nil
	// registry costs nothing on the hot path.
	Obs *obs.Registry
	// Events, when non-nil, receives structured campaign lifecycle
	// events (corpus adds, crashes, quarantines, checkpoints) as an
	// NDJSON stream. Emission is serialized; safe to share across
	// workers.
	Events *obs.EventLog
	// Worker labels this fuzzer's telemetry events with a campaign
	// worker index (set by Campaign). It has no effect on campaign
	// behaviour and is excluded from the Fingerprint.
	Worker int
}

// DefaultConfig mirrors the paper's campaign settings with v3 coverage.
func DefaultConfig() Config {
	return Config{
		Coverage:          coverage.V3(),
		ISA:               isa.RV32GC,
		MaxLen:            64,
		LenControl:        10000,
		Seed:              1,
		CustomMutatorProb: 0.5,
	}
}

// TracePoint is one sample of the test-case growth curve (Fig. 4).
type TracePoint struct {
	Execs     uint64
	TestCases int
}

// Stats summarizes a campaign.
type Stats struct {
	Execs     uint64 `json:"execs"`
	Dropped   uint64 `json:"dropped"` // filtered out before execution
	TestCases int    `json:"test_cases"`
	Crashes   uint64 `json:"crashes"`
	Timeouts  uint64 `json:"timeouts"`
	// HarnessFaults counts steps that failed at the harness level — a
	// panic reaped by the isolation layer or a wall-clock watchdog
	// timeout — as opposed to modeled crash/timeout outcomes the
	// simulator reported through its own error handling.
	HarnessFaults uint64 `json:"harness_faults,omitempty"`
	// Duration is the cumulative stepping time of the campaign across
	// every session (resumed campaigns carry the pre-interrupt elapsed
	// time forward from the checkpoint).
	Duration time.Duration `json:"duration_ns"`
	// SessionDuration is the stepping time of the current process only;
	// it backs ExecsPerSec so a resumed campaign reports its live rate
	// instead of one diluted by pre-interrupt wall-clock.
	SessionDuration time.Duration `json:"session_duration_ns,omitempty"`
	// ExecsPerSec is the live execution rate: executions performed in
	// this session divided by SessionDuration. For a fresh campaign the
	// session is the whole campaign, so it equals Execs/Duration.
	ExecsPerSec float64        `json:"execs_per_sec"`
	CovPoints   int            `json:"cov_points"` // coverage points defined
	CovBits     int            `json:"cov_bits"`   // bucket bits discovered
	Trace       []TracePoint   `json:"trace,omitempty"`
	Filter      analysis.Stats `json:"filter"` // drop-reason histogram / acceptance
}

// Deterministic returns the stats with the wall-clock-dependent fields
// zeroed, so a resumed campaign can be compared byte-for-byte against an
// uninterrupted one.
func (s Stats) Deterministic() Stats {
	s.Duration = 0
	s.SessionDuration = 0
	s.ExecsPerSec = 0
	return s
}

// Fuzzer drives one campaign.
type Fuzzer struct {
	cfg      Config
	src      *resilience.RNG // serializable source behind rng
	rng      *rand.Rand
	flt      *filter.Filter
	col      *coverage.Collector
	target   sim.HookedSim
	platform template.Platform
	mut      *mutator
	quar     *resilience.Quarantine

	pending [][]byte // seed corpus not yet replayed
	corpus  [][]byte
	trace   []TracePoint
	fstats  analysis.Stats
	execs   uint64
	dropped uint64
	crashes uint64
	timeout uint64
	hfaults uint64
	stall   int
	curLen  int
	elapsed time.Duration
	broken  error // set when the target could not be rebuilt after a wedge

	// lastPre is the previous decode-cache counter snapshot of the
	// target; Step folds the growth into the telemetry counters.
	// Observational only: never checkpointed, never in Stats.
	lastPre exec.CacheStats

	// bt is the live batched-execution state (nil until first use, and
	// dropped wholesale on any batch-level harness fault or target
	// rebuild); batchOff latches when the target cannot batch at all.
	bt       *fuzzBatch
	batchOff bool

	// sessElapsed and baseExecs scope the live execution rate to the
	// current process: a resumed fuzzer restores `elapsed` and `execs`
	// cumulatively from the checkpoint, which must not dilute the rate
	// this session actually achieves.
	sessElapsed time.Duration
	baseExecs   uint64

	tel *telemetry // nil when telemetry is disabled (zero-cost path)
}

// New prepares a fuzzer. The foundation simulator is the reference model
// on the default platform unless Config.NewTarget overrides it.
func New(cfg Config) (*Fuzzer, error) {
	if cfg.MaxLen <= 0 {
		cfg.MaxLen = 64
	}
	if cfg.MaxLen > template.DefaultLayout.MaxBytes() {
		return nil, fmt.Errorf("fuzz: MaxLen %d exceeds the injection area (%d bytes)",
			cfg.MaxLen, template.DefaultLayout.MaxBytes())
	}
	if cfg.LenControl <= 0 {
		cfg.LenControl = 10000
	}
	if cfg.CustomMutatorProb == 0 && !cfg.DisableCustomMutator {
		cfg.CustomMutatorProb = 0.5
	}
	if cfg.ISA.Ext == 0 {
		cfg.ISA = isa.RV32GC
	}
	platform := template.PlatformFor(cfg.Family, cfg.ISA)
	target, err := makeTarget(cfg, platform)
	if err != nil {
		return nil, err
	}
	src := resilience.NewRNG(cfg.Seed)
	rng := rand.New(src)
	f := &Fuzzer{
		cfg:      cfg,
		src:      src,
		rng:      rng,
		flt:      &filter.Filter{MaxLen: cfg.MaxLen, Trap: cfg.Family == template.FamilyTrap},
		col:      coverage.NewCollector(cfg.Coverage),
		target:   target,
		platform: platform,
		mut:      newMutator(rng),
		quar:     resilience.NewQuarantine(cfg.QuarantineDir),
		curLen:   8,
		tel:      newTelemetry(cfg),
	}
	for _, s := range cfg.Seeds {
		if len(s) <= cfg.MaxLen {
			f.pending = append(f.pending, s)
		}
	}
	f.wireTarget()
	return f, nil
}

func makeTarget(cfg Config, p template.Platform) (sim.HookedSim, error) {
	if cfg.NewTarget != nil {
		return cfg.NewTarget(p)
	}
	return sim.New(sim.Reference, p)
}

// wireTarget applies the predecode knobs to a (re)built foundation
// simulator: the ablation switch and, when telemetry is live, the
// predecode stage timer. Custom NewTarget factories configure their own
// simulators and are left untouched.
func (f *Fuzzer) wireTarget() {
	s, ok := f.target.(*sim.Simulator)
	if !ok {
		return
	}
	s.NoPredecode = f.cfg.DisablePredecode
	if f.tel != nil {
		s.PredecodeTimer = f.tel.stPre
	}
}

// rebuildTarget replaces a target poisoned by an abandoned (wedged) run
// with a fresh instance and a fresh collector carrying the old coverage
// frontier. The abandoned goroutine keeps only the old collector's
// per-run state, so the new one races with nothing.
func (f *Fuzzer) rebuildTarget() {
	target, err := makeTarget(f.cfg, f.platform)
	if err != nil {
		f.broken = fmt.Errorf("fuzz: rebuilding target after wedge: %w", err)
		return
	}
	frontier := f.col.Map.Frontier()
	col := coverage.NewCollector(f.cfg.Coverage)
	if err := col.Map.RestoreFrontier(frontier); err != nil {
		f.broken = fmt.Errorf("fuzz: restoring frontier after wedge: %w", err)
		return
	}
	f.target = target
	f.col = col
	f.lastPre = exec.CacheStats{} // fresh target: cache counters restart
	f.bt = nil                    // batch lanes belong to the old target lineage
	f.wireTarget()
}

// notePredecode folds the target's decode-cache counter growth since the
// previous step into the telemetry counters. Only called with telemetry
// live and only when the run actually finished (a wedged run's goroutine
// may still be stepping the abandoned target).
func (f *Fuzzer) notePredecode() {
	ps, ok := f.target.(sim.PredecodeStatser)
	if !ok {
		return
	}
	cur := ps.PredecodeStats()
	prev := f.lastPre
	f.lastPre = cur
	if cur.Hits < prev.Hits || cur.Misses < prev.Misses ||
		cur.Invalidations < prev.Invalidations || cur.Fused < prev.Fused {
		prev = exec.CacheStats{} // counters restarted under us: count from zero
	}
	f.tel.preHits.Add(cur.Hits - prev.Hits)
	f.tel.preMiss.Add(cur.Misses - prev.Misses)
	f.tel.preInval.Add(cur.Invalidations - prev.Invalidations)
	f.tel.preFused.Add(cur.Fused - prev.Fused)
}

// Step performs one fuzzer execution; it reports whether the input was
// collected as a new test case.
func (f *Fuzzer) Step() bool {
	start := time.Now()
	defer func() {
		d := time.Since(start)
		f.elapsed += d
		f.sessElapsed += d
	}()
	f.execs++
	tel := f.tel
	if tel != nil {
		tel.execs.Inc()
	}

	input := f.nextInput()
	var t time.Time
	if tel != nil {
		t = time.Now()
		tel.stMutate.Observe(t.Sub(start))
	}
	if !f.cfg.DisableFilter {
		res := f.flt.Check(input)
		f.fstats.Record(res.Reason)
		if tel != nil {
			tel.stFilter.ObserveSince(t)
		}
		if !res.Accepted {
			// Dropped inputs return no coverage, so the fuzzer never
			// collects them (the paper's key automation property).
			f.dropped++
			if tel != nil {
				tel.drops[res.Reason].Inc()
			}
			return false
		}
	}
	return f.execScalar(input)
}

// execScalar runs one accepted input through the scalar target with the
// full outcome bookkeeping: the per-case watchdog, harness-fault
// isolation and quarantine, modeled crash/timeout counting, and the
// coverage merge. It is the post-filter body of Step, shared with the
// batch layer's fault fallback (stepBatch reruns a poisoned batch's
// attempts through this path, one guarded case at a time).
func (f *Fuzzer) execScalar(input []byte) bool {
	tel := f.tel
	var t time.Time
	if tel != nil {
		t = time.Now()
	}
	target, col := f.target, f.col
	out, rec, timedOut := resilience.Guard(f.cfg.CaseTimeout, func() sim.Outcome {
		return target.RunHooked(input, col)
	})
	if tel != nil {
		tel.stExec.ObserveSince(t)
		if !timedOut {
			f.notePredecode()
		}
	}
	switch {
	case rec != nil:
		// The simulator unwound past its own recovery — a harness-level
		// fault, isolated here so the campaign continues.
		f.crashes++
		f.hfaults++
		if tel != nil {
			tel.crashes.Inc()
			tel.hfaults.Inc()
			tel.event(obs.Event{Type: "quarantine", Execs: f.execs, Detail: "panic: " + rec.Msg})
		}
		f.quarantineWarn(input, "panic: "+rec.Msg+"\n\n"+rec.Stack)
		f.col.Map.DiscardRun()
		return false
	case timedOut:
		// Wedged run reaped by the watchdog; its goroutine still owns the
		// old target and collector, so both are replaced.
		f.timeout++
		f.hfaults++
		if tel != nil {
			tel.timeout.Inc()
			tel.hfaults.Inc()
			tel.event(obs.Event{Type: "quarantine", Execs: f.execs,
				Detail: fmt.Sprintf("watchdog: no result within %v", f.cfg.CaseTimeout)})
		}
		f.quarantineWarn(input, fmt.Sprintf("watchdog: no result within %v", f.cfg.CaseTimeout))
		f.rebuildTarget()
		return false
	case out.Crashed:
		f.crashes++
		if tel != nil {
			tel.crashes.Inc()
			tel.event(obs.Event{Type: "crash", Execs: f.execs, Detail: out.CrashMsg})
		}
		f.col.Map.DiscardRun()
		return false
	case out.TimedOut:
		f.timeout++
		if tel != nil {
			tel.timeout.Inc()
		}
		f.col.Map.DiscardRun()
		return false
	}
	if tel != nil {
		tel.traps.Add(out.Traps)
		t = time.Now()
	}
	novel := f.col.Map.MergeNew()
	if tel != nil {
		tel.stCov.ObserveSince(t)
	}
	if !novel {
		f.stall++
		if f.stall >= f.cfg.LenControl && f.curLen < f.cfg.MaxLen {
			f.curLen += 4
			f.stall = 0
		}
		return false
	}
	f.stall = 0
	f.corpus = append(f.corpus, append([]byte(nil), input...))
	f.trace = append(f.trace, TracePoint{Execs: f.execs, TestCases: len(f.corpus)})
	if tel != nil {
		tel.adds.Inc()
		tel.corpusSize.Set(int64(len(f.corpus)))
		tel.covBits.Set(int64(f.col.Map.BucketBits()))
		tel.event(obs.Event{Type: "corpus_add", Execs: f.execs, Corpus: len(f.corpus)})
	}
	return true
}

func (f *Fuzzer) quarantineWarn(input []byte, detail string) {
	if err := f.quar.Save(input, detail); err != nil {
		fmt.Printf("fuzz: quarantine: %v\n", err)
	}
}

// nextInput produces the next candidate bytestream.
func (f *Fuzzer) nextInput() []byte {
	if len(f.pending) > 0 {
		next := f.pending[0]
		f.pending = f.pending[1:]
		return next
	}
	var base []byte
	if len(f.corpus) > 0 && f.rng.Intn(8) != 0 {
		base = f.corpus[f.rng.Intn(len(f.corpus))]
	}
	useCustom := !f.cfg.DisableCustomMutator && f.rng.Float64() < f.cfg.CustomMutatorProb
	if useCustom {
		return f.mut.instructionAware(base, f.curLen)
	}
	var cross []byte
	if len(f.corpus) > 1 {
		cross = f.corpus[f.rng.Intn(len(f.corpus))]
	}
	return f.mut.generic(base, cross, f.curLen)
}

// Run executes until maxExecs executions or maxDur wall time (whichever
// comes first; zero disables a bound, but at least one must be set).
func (f *Fuzzer) Run(maxExecs uint64, maxDur time.Duration) error {
	return f.RunContext(context.Background(), maxExecs, maxDur)
}

// RunContext is Run with cancellation: the loop stops cleanly between
// steps when ctx is cancelled, returning ctx.Err(). It also stops with an
// error if the foundation simulator wedged and could not be rebuilt.
func (f *Fuzzer) RunContext(ctx context.Context, maxExecs uint64, maxDur time.Duration) error {
	if maxExecs == 0 && maxDur == 0 {
		return fmt.Errorf("fuzz: Run needs an execution or duration bound")
	}
	deadline := time.Now().Add(maxDur)
	for {
		if f.broken != nil {
			return f.broken
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		if maxExecs > 0 && f.execs >= maxExecs {
			return nil
		}
		if maxDur > 0 && !time.Now().Before(deadline) {
			return nil
		}
		var remaining uint64
		if maxExecs > 0 {
			remaining = maxExecs - f.execs
		}
		f.stepN(remaining)
	}
}

// FlushTelemetry emits the fuzzer's cumulative stage-timer totals as a
// stage_summary event — the input of `rvreport -events`. Campaign calls
// it once per worker when the worker finishes; single-fuzzer drivers
// call it at the end of a run. No-op when telemetry is disabled.
func (f *Fuzzer) FlushTelemetry() {
	f.tel.emitSummary(f.execs, len(f.corpus))
}

// Corpus returns the collected test cases (the generated test suite), in
// collection order. The returned slice is the caller's: later campaign
// steps never mutate it (the case bytestreams themselves are immutable
// once collected).
func (f *Fuzzer) Corpus() [][]byte {
	return append([][]byte(nil), f.corpus...)
}

// Execs returns the number of executions performed so far.
func (f *Fuzzer) Execs() uint64 { return f.execs }

// Stats returns campaign statistics. The returned value is a snapshot:
// its Trace is copied, so sampling stats mid-campaign hands the caller
// a slice that later steps cannot mutate (the fuzzer keeps appending to
// its own trace, which previously shared the backing array).
func (f *Fuzzer) Stats() Stats {
	// The live rate covers only this session's work: a resumed campaign
	// restores cumulative execs and elapsed from the checkpoint, and
	// dividing those would dilute the printed rate with pre-interrupt
	// wall-clock.
	eps := 0.0
	if sessExecs := f.execs - f.baseExecs; f.sessElapsed > 0 {
		eps = float64(sessExecs) / f.sessElapsed.Seconds()
	}
	return Stats{
		Execs:           f.execs,
		Dropped:         f.dropped,
		TestCases:       len(f.corpus),
		Crashes:         f.crashes,
		Timeouts:        f.timeout,
		HarnessFaults:   f.hfaults,
		Duration:        f.elapsed,
		SessionDuration: f.sessElapsed,
		ExecsPerSec:     eps,
		CovPoints:       f.col.NumPoints(),
		CovBits:         f.col.Map.BucketBits(),
		Trace:           append([]TracePoint(nil), f.trace...),
		Filter:          f.fstats,
	}
}
