package fuzz

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"rvnegtest/internal/analysis"
	"rvnegtest/internal/coverage"
	"rvnegtest/internal/obs"
)

// TestStatsTraceCopy is the regression test for the aliased-trace bug:
// Stats() used to return Trace sharing the fuzzer's backing array, so
// campaign steps after the sample (or a checkpoint restore rewriting the
// trace) could mutate a snapshot the caller already held.
func TestStatsTraceCopy(t *testing.T) {
	f, err := New(smallConfig(coverage.V1(), 42))
	if err != nil {
		t.Fatal(err)
	}
	// Arrange a trace with spare capacity, exactly the state a growing
	// campaign leaves behind between appends.
	f.trace = make([]TracePoint, 1, 8)
	f.trace[0] = TracePoint{Execs: 10, TestCases: 1}

	snap := f.Stats()
	want := append([]TracePoint(nil), snap.Trace...)

	// Mutate after sampling: append into the spare capacity and rewrite
	// the shared prefix (as Resume does when loading checkpoint state).
	f.trace = append(f.trace, TracePoint{Execs: 20, TestCases: 2})
	f.trace[0] = TracePoint{Execs: 999, TestCases: 999}

	if !reflect.DeepEqual(snap.Trace, want) {
		t.Fatalf("sampled Trace mutated by later campaign activity:\n got %+v\nwant %+v", snap.Trace, want)
	}

	// Same hazard for the corpus accessor: replacing an element in the
	// fuzzer's slice must not show through an earlier Corpus() snapshot.
	f.corpus = [][]byte{{1, 2}, {3, 4}}
	cs := f.Corpus()
	f.corpus[0] = []byte{9, 9}
	if !bytes.Equal(cs[0], []byte{1, 2}) {
		t.Fatalf("Corpus() snapshot aliased the live corpus slice: %v", cs[0])
	}
}

// TestStatsTraceCopyLive repeats the regression end-to-end: sample stats
// mid-campaign, keep stepping, and require the sample to stay frozen.
func TestStatsTraceCopyLive(t *testing.T) {
	f, err := New(smallConfig(coverage.V1(), 43))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Run(3000, 0); err != nil {
		t.Fatal(err)
	}
	snap := f.Stats()
	want := append([]TracePoint(nil), snap.Trace...)
	if len(want) == 0 {
		t.Fatal("campaign collected no test cases; trace empty")
	}
	if err := f.Run(10000, 0); err != nil {
		t.Fatal(err)
	}
	if len(f.trace) <= len(want) {
		t.Fatalf("campaign did not grow the trace (%d -> %d); test is vacuous", len(want), len(f.trace))
	}
	if !reflect.DeepEqual(snap.Trace, want) {
		t.Fatalf("mid-campaign Stats().Trace mutated by later steps")
	}
}

// TestResumeSessionRate is the regression test for the diluted-rate bug:
// after -resume, ExecsPerSec used to divide cumulative execs by cumulative
// elapsed, so a campaign resumed after hours of prior wall-clock reported
// a near-zero "live" rate. The rate must cover only the current session,
// while Duration stays cumulative.
func TestResumeSessionRate(t *testing.T) {
	cfg := smallConfig(coverage.V1(), 17)
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Run(2000, 0); err != nil {
		t.Fatal(err)
	}
	// Simulate a long previous session before the checkpoint.
	const prior = 100 * time.Hour
	f.elapsed = prior

	dir := t.TempDir()
	if err := f.SaveCheckpoint(dir); err != nil {
		t.Fatal(err)
	}
	g, err := Resume(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Run(4000, 0); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Execs != 4000 {
		t.Fatalf("execs = %d, want 4000", st.Execs)
	}
	if st.Duration < prior {
		t.Errorf("Duration = %v, want cumulative (>= %v)", st.Duration, prior)
	}
	if st.SessionDuration >= time.Hour {
		t.Errorf("SessionDuration = %v, want session-local wall-clock", st.SessionDuration)
	}
	// The buggy computation yields 4000 execs / 100h ≈ 0.011/s; the real
	// session rate for 2000 executions is orders of magnitude above 10/s.
	if st.ExecsPerSec < 10 {
		t.Errorf("ExecsPerSec = %g after resume: diluted by pre-interrupt wall-clock", st.ExecsPerSec)
	}
}

// TestTelemetryCountersMatchStats: the registry's counters must agree with
// the campaign's own statistics, and the event stream must record every
// corpus add in order.
func TestTelemetryCountersMatchStats(t *testing.T) {
	cfg := smallConfig(coverage.V1(), 7)
	cfg.Obs = obs.NewRegistry()
	var buf bytes.Buffer
	cfg.Events = obs.NewEventLog(&buf)
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Run(5000, 0); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()

	if got := cfg.Obs.Counter("rvnegtest_fuzz_execs_total").Value(); got != st.Execs {
		t.Errorf("execs counter = %d, stats = %d", got, st.Execs)
	}
	if got := cfg.Obs.Counter("rvnegtest_fuzz_corpus_adds_total").Value(); got != uint64(st.TestCases) {
		t.Errorf("corpus adds counter = %d, test cases = %d", got, st.TestCases)
	}
	if got := cfg.Obs.Gauge("rvnegtest_fuzz_corpus_size").Value(); got != int64(st.TestCases) {
		t.Errorf("corpus size gauge = %d, test cases = %d", got, st.TestCases)
	}
	if got := cfg.Obs.Gauge("rvnegtest_fuzz_coverage_bits").Value(); got != int64(st.CovBits) {
		t.Errorf("coverage bits gauge = %d, stats = %d", got, st.CovBits)
	}
	var drops uint64
	for r := range st.Filter.Counts {
		name := `rvnegtest_fuzz_dropped_total{reason="` + analysis.Reason(r).Slug() + `"}`
		v := cfg.Obs.Counter(name).Value()
		if r == 0 {
			// Reason 0 is "accepted": never a drop.
			if v != 0 {
				t.Errorf("accepted inputs counted as drops: %d", v)
			}
			continue
		}
		if v != st.Filter.Counts[r] {
			t.Errorf("drop counter %s = %d, filter stats = %d", name, v, st.Filter.Counts[r])
		}
		drops += v
	}
	if drops != st.Dropped {
		t.Errorf("summed drop counters = %d, stats.Dropped = %d", drops, st.Dropped)
	}

	// Stage timers cover every execution: mutate runs once per step,
	// filter once per step (filter enabled), execute once per accepted
	// input.
	if got := cfg.Obs.Stage(obs.StageMutate).Count(); got != st.Execs {
		t.Errorf("mutate stage count = %d, execs = %d", got, st.Execs)
	}
	if got := cfg.Obs.Stage(obs.StageFilter).Count(); got != st.Execs {
		t.Errorf("filter stage count = %d, execs = %d", got, st.Execs)
	}
	if got := cfg.Obs.Stage(obs.StageExecute).Count(); got != st.Execs-st.Dropped {
		t.Errorf("execute stage count = %d, accepted = %d", got, st.Execs-st.Dropped)
	}

	if err := cfg.Events.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var adds int
	var lastSeq uint64
	for _, ev := range evs {
		if ev.Seq <= lastSeq {
			t.Fatalf("event seq not strictly increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.Type == "corpus_add" {
			adds++
			if ev.Corpus != adds {
				t.Errorf("corpus_add #%d reports corpus=%d", adds, ev.Corpus)
			}
		}
	}
	if adds != st.TestCases {
		t.Errorf("%d corpus_add events, %d test cases", adds, st.TestCases)
	}
}

// TestTelemetryDoesNotPerturbDeterminism: the same campaign with and
// without telemetry must produce byte-identical corpora and identical
// deterministic statistics — telemetry is observational only.
func TestTelemetryDoesNotPerturbDeterminism(t *testing.T) {
	run := func(withTel bool) ([][]byte, []Stats) {
		cfg := smallConfig(coverage.V1(), 99)
		if withTel {
			cfg.Obs = obs.NewRegistry()
			cfg.Events = obs.NewEventLog(&bytes.Buffer{})
		}
		corpus, stats, err := Campaign(context.Background(), cfg, CampaignConfig{Workers: 2, ExecsEach: 4000})
		if err != nil {
			t.Fatal(err)
		}
		return corpus, stats
	}
	plainCorpus, plainStats := run(false)
	telCorpus, telStats := run(true)

	if !reflect.DeepEqual(plainCorpus, telCorpus) {
		t.Fatalf("corpus differs with telemetry enabled: %d vs %d cases", len(plainCorpus), len(telCorpus))
	}
	normalize := func(ss []Stats) []byte {
		det := make([]Stats, len(ss))
		for i, s := range ss {
			det[i] = s.Deterministic()
		}
		b, err := json.Marshal(det)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := normalize(plainStats), normalize(telStats); !bytes.Equal(a, b) {
		t.Fatalf("deterministic stats differ with telemetry enabled:\n off: %s\n on:  %s", a, b)
	}
}

// TestCampaignMergedTelemetry: per-worker child registries must collapse
// into parent totals that match the per-worker stats, and the lifecycle
// events must bracket the campaign.
func TestCampaignMergedTelemetry(t *testing.T) {
	cfg := smallConfig(coverage.V1(), 3)
	cfg.Obs = obs.NewRegistry()
	var buf bytes.Buffer
	cfg.Events = obs.NewEventLog(&buf)
	_, stats, err := Campaign(context.Background(), cfg, CampaignConfig{Workers: 2, ExecsEach: 3000})
	if err != nil {
		t.Fatal(err)
	}
	var wantExecs uint64
	for _, s := range stats {
		wantExecs += s.Execs
	}
	if got := cfg.Obs.Counter("rvnegtest_fuzz_execs_total").Value(); got != wantExecs {
		t.Errorf("collapsed execs counter = %d, per-worker sum = %d", got, wantExecs)
	}
	if err := cfg.Events.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, ev := range evs {
		counts[ev.Type]++
	}
	if counts["campaign_start"] != 1 || counts["campaign_done"] != 1 {
		t.Errorf("campaign bracket events = %+v", counts)
	}
	if counts["stage_summary"] != 2 {
		t.Errorf("stage_summary events = %d, want one per worker", counts["stage_summary"])
	}
	if evs[0].Type != "campaign_start" || evs[len(evs)-1].Type != "campaign_done" {
		t.Errorf("events not bracketed: first=%s last=%s", evs[0].Type, evs[len(evs)-1].Type)
	}
}

// Benchmarks pinning the telemetry overhead budget (CI publishes these as
// BENCH_telemetry.json; enabled-vs-disabled must stay within a few
// percent on the stepping hot path).

func benchStep(b *testing.B, withTel bool) {
	cfg := smallConfig(coverage.V1(), 1)
	if withTel {
		cfg.Obs = obs.NewRegistry()
	}
	f, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the corpus so the steady-state mix of mutate/filter/execute is
	// what's measured, not the cold start.
	f.Run(2000, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Step()
	}
}

func BenchmarkStepTelemetryOff(b *testing.B) { benchStep(b, false) }
func BenchmarkStepTelemetryOn(b *testing.B)  { benchStep(b, true) }
