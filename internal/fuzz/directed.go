package fuzz

import "rvnegtest/internal/isa"

// TrapDirectedCases are hand-written trap-family probes appended to every
// generated trap suite after fuzzing. Each one drives a specific
// privileged-architecture mechanism through the recording handler so the
// corresponding seeded defect class produces a trap-record divergence even
// if the random campaign never stumbled into the exact sequence:
//
//   - mtval probe: an illegal word whose encoding must appear in mtval
//     (catches mtval-zeroing);
//   - vectored probe: sets mtvec bit 0 (vectored mode) and traps — the
//     handler's entry-path tag exposes simulators that vector synchronous
//     exceptions;
//   - MPIE probe: enables MIE, then traps twice — the second record's
//     saved mstatus shows whether MRET restored MIE from MPIE;
//   - mask probe: writes a garbage mstatus value and traps — the record
//     shows whether the WARL write mask was applied.
//
// Directed cases deliberately bypass the static filter (a generated case
// would be dropped for writing mtvec); they are appended by GenerateSuite,
// not injected into the mutation corpus.
func TrapDirectedCases() [][]byte {
	words := func(ws ...uint32) []byte {
		bs := make([]byte, 0, 4*len(ws))
		for _, w := range ws {
			bs = append(bs, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
		}
		return bs
	}
	const bad = 0xffffffff // illegal 32-bit encoding, mtval-visible
	return [][]byte{
		// mtval probe.
		words(bad),
		// vectored probe: mtvec |= 1, then trap.
		words(
			isa.MustEncode(isa.Inst{Op: isa.OpCSRRS, Rd: 5, Rs1: 0, CSR: 0x305}),
			isa.MustEncode(isa.Inst{Op: isa.OpORI, Rd: 5, Rs1: 5, Imm: 1}),
			isa.MustEncode(isa.Inst{Op: isa.OpCSRRW, Rd: 0, Rs1: 5, CSR: 0x305}),
			bad,
		),
		// MPIE probe: set mstatus.MIE, trap, trap again after the MRET.
		words(
			isa.MustEncode(isa.Inst{Op: isa.OpCSRRSI, Rd: 0, Imm: 8, CSR: 0x300}),
			bad,
			bad,
		),
		// mask probe: x16 is initialized to 0xdeadbeef by the template.
		words(
			isa.MustEncode(isa.Inst{Op: isa.OpCSRRW, Rd: 0, Rs1: 16, CSR: 0x300}),
			bad,
		),
	}
}
