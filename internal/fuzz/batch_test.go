package fuzz

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"rvnegtest/internal/coverage"
	"rvnegtest/internal/obs"
	"rvnegtest/internal/sim"
)

// TestBatchAblationBitIdentical is the campaign-level determinism
// guarantee of batched lockstep execution: for every worker count, a
// batched campaign produces exactly the corpus and deterministic stats
// of the scalar campaign — the speculation/rollback front-end preserves
// the scalar schedule bit for bit.
func TestBatchAblationBitIdentical(t *testing.T) {
	run := func(batch, workers int) ([][]byte, []string) {
		cfg := smallConfig(coverage.V1(), 41)
		cfg.Batch = batch
		corpus, stats, err := Campaign(context.Background(), cfg, CampaignConfig{Workers: workers, ExecsEach: 3000})
		if err != nil {
			t.Fatal(err)
		}
		det := make([]string, len(stats))
		for i, s := range stats {
			det[i] = mustJSON(t, s.Deterministic())
		}
		return corpus, det
	}
	for _, workers := range []int{1, 2, 8} {
		offCorpus, offStats := run(0, workers)
		if len(offCorpus) == 0 {
			t.Fatalf("workers=%d: empty corpus", workers)
		}
		for _, batch := range []int{4, 8} {
			onCorpus, onStats := run(batch, workers)
			if !reflect.DeepEqual(onCorpus, offCorpus) {
				t.Fatalf("workers=%d batch=%d: corpus differs from scalar: %d vs %d cases",
					workers, batch, len(onCorpus), len(offCorpus))
			}
			if !reflect.DeepEqual(onStats, offStats) {
				t.Fatalf("workers=%d batch=%d: deterministic stats differ from scalar:\n on:  %v\n off: %v",
					workers, batch, onStats, offStats)
			}
		}
	}
}

// TestBatchCheckpointCrossResume checks that Batch stays outside the
// checkpoint fingerprint: a campaign checkpointed scalar must resume
// cleanly batched (and vice versa) and still end bit-identical to an
// uninterrupted scalar run.
func TestBatchCheckpointCrossResume(t *testing.T) {
	const budget = 12000
	cfg := smallConfig(coverage.V1(), 43)

	base, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Run(budget, 0); err != nil {
		t.Fatal(err)
	}

	for _, firstBatch := range []int{0, 4} {
		dir := t.TempDir()
		cfgA := cfg
		cfgA.Batch = firstBatch
		f1, err := New(cfgA)
		if err != nil {
			t.Fatal(err)
		}
		if err := f1.Run(5000, 0); err != nil {
			t.Fatal(err)
		}
		if err := f1.SaveCheckpoint(dir); err != nil {
			t.Fatal(err)
		}
		cfgB := cfg
		cfgB.Batch = 4 - firstBatch
		f2, err := Resume(cfgB, dir)
		if err != nil {
			t.Fatalf("resume across batch ablation (first=%d): %v", firstBatch, err)
		}
		if err := f2.Run(budget, 0); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base.Corpus(), f2.Corpus()) {
			t.Fatalf("first=%d: cross-resumed corpus differs: %d vs %d cases",
				firstBatch, len(f2.Corpus()), len(base.Corpus()))
		}
		if want, got := mustJSON(t, base.Stats().Deterministic()), mustJSON(t, f2.Stats().Deterministic()); want != got {
			t.Fatalf("first=%d: deterministic stats differ:\n  uninterrupted: %s\n  cross-resumed: %s", firstBatch, want, got)
		}
	}
}

// TestBatchFaultFallbackBitIdentical drives a batched campaign against a
// misbehaving simulator (input-keyed panics and wedges) and proves the
// batch degradation path is invisible in the results: a poisoned batch
// is abandoned and rerun scalar, so corpus, crash/timeout/harness-fault
// counts and quarantine behaviour all match the scalar campaign exactly.
func TestBatchFaultFallbackBitIdentical(t *testing.T) {
	release := make(chan struct{})
	defer close(release) // let abandoned wedge goroutines exit at teardown
	plan := sim.SeededSchedule(99, 0.004, 0.002, 0)
	run := func(batch int) (Stats, [][]byte, *obs.Registry) {
		cfg := smallConfig(coverage.V1(), 47)
		cfg.Batch = batch
		cfg.CaseTimeout = 50 * time.Millisecond
		cfg.NewTarget = faultyFactory(plan, "exec: injected batch-era panic", release)
		cfg.Obs = obs.NewRegistry()
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Run(1500, 0); err != nil {
			t.Fatal(err)
		}
		return f.Stats(), f.Corpus(), cfg.Obs
	}
	scalar, scalarCorpus, _ := run(0)
	if scalar.HarnessFaults == 0 {
		t.Fatal("fault schedule injected nothing; the fallback path was not exercised")
	}
	batched, batchedCorpus, reg := run(4)
	if want, got := mustJSON(t, scalar.Deterministic()), mustJSON(t, batched.Deterministic()); want != got {
		t.Fatalf("deterministic stats differ across batch fault fallback:\n  scalar: %s\n  batch:  %s", want, got)
	}
	if !reflect.DeepEqual(scalarCorpus, batchedCorpus) {
		t.Fatalf("corpus differs across batch fault fallback: %d vs %d cases",
			len(scalarCorpus), len(batchedCorpus))
	}
	if reg.Counter("rvnegtest_fuzz_batch_aborts_total").Value() == 0 {
		t.Fatal("no batch aborts recorded; the degradation path did not run")
	}
	if reg.Counter("rvnegtest_fuzz_batch_runs_total").Value() == 0 {
		t.Fatal("no successful batch runs recorded around the faults")
	}
}

// TestBatchPredecodeCountersSaneAcrossFaultsAndResume is the
// counter-clamping regression test: across batched runs, watchdog
// aborts (stats never read from an abandoned runner) and a
// checkpoint/resume (counters restart from a fresh target), the
// predecode_* telemetry totals must never go backwards or underflow —
// an underflowed uint64 delta would show up as an astronomically large
// counter value.
func TestBatchPredecodeCountersSaneAcrossFaultsAndResume(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	var calls atomic.Int64 // Plan runs on guard goroutines, not the test's
	plan := func([]byte) sim.Fault {
		if calls.Add(1)%120 == 0 {
			return sim.FaultWedge
		}
		return sim.FaultNone
	}
	dir := t.TempDir()

	counters := func(reg *obs.Registry) map[string]uint64 {
		names := []string{
			"rvnegtest_fuzz_predecode_hits_total",
			"rvnegtest_fuzz_predecode_misses_total",
			"rvnegtest_fuzz_predecode_invalidations_total",
			"rvnegtest_fuzz_predecode_fused_total",
		}
		m := make(map[string]uint64, len(names))
		for _, n := range names {
			m[n] = reg.Counter(n).Value()
		}
		return m
	}
	checkSane := func(phase string, vals map[string]uint64) {
		for n, v := range vals {
			if v > 1<<60 {
				t.Fatalf("%s: %s = %d (uint64 underflow: a delta was computed from a stale or reset snapshot)", phase, n, v)
			}
		}
		if vals["rvnegtest_fuzz_predecode_hits_total"] == 0 {
			t.Fatalf("%s: predecode hit counter is zero despite batched cached execution", phase)
		}
	}

	cfg := smallConfig(coverage.V1(), 53)
	cfg.Batch = 4
	cfg.CaseTimeout = 50 * time.Millisecond
	cfg.NewTarget = faultyFactory(plan, "", release)
	cfg.Obs = obs.NewRegistry()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Run(1200, 0); err != nil {
		t.Fatal(err)
	}
	// The call-counter plan wedges batch runs, not their scalar reruns,
	// so the faults surface as batch aborts (stats stay scalar-clean).
	if cfg.Obs.Counter("rvnegtest_fuzz_batch_aborts_total").Value() == 0 {
		t.Fatal("no batch aborts observed before the checkpoint")
	}
	checkSane("pre-checkpoint", counters(cfg.Obs))
	if err := f.SaveCheckpoint(dir); err != nil {
		t.Fatal(err)
	}

	// Resume into a fresh process-equivalent: new registry, counters from
	// zero, target caches from zero — the deltas must still be computed
	// against the fresh snapshots, never against pre-resume state.
	cfg2 := cfg
	cfg2.Obs = obs.NewRegistry()
	f2, err := Resume(cfg2, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.Run(2400, 0); err != nil {
		t.Fatal(err)
	}
	checkSane("post-resume", counters(cfg2.Obs))
}
