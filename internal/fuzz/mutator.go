package fuzz

import (
	"math/bits"
	"math/rand"

	"rvnegtest/internal/analysis"
	"rvnegtest/internal/isa"
)

// mutator implements both the generic byte-level mutations (the libFuzzer
// built-ins: flip bits, change/insert/erase/shuffle bytes, splice) and the
// custom instruction-aware mutator of section IV-D: it walks the
// bytestream word by word injecting valid opcode patterns while leaving
// the remaining fields random (Fig. 3), with the operand constraints that
// keep the result filter-acceptable (loads/stores based on clean address
// registers with aligned immediates; small branch/jump offsets).
//
// Injection sites are picked against the static analysis of the base
// input: memory accesses use a register the analysis proves clean at that
// offset, and injected writes avoid clobbering registers that a later
// instruction still needs as a clean memory base — so mutation tends to
// preserve filter acceptance instead of fighting it.
type mutator struct {
	rng *rand.Rand
	// injectable is the weighted op pool for instruction injection.
	injectable []*isa.OpInfo
}

func newMutator(rng *rand.Rand) *mutator {
	m := &mutator{rng: rng}
	for i := range isa.Instructions {
		in := &isa.Instructions[i]
		if in.Flags.Is(isa.FlagForbidden) {
			continue // the filter would drop the bytestream
		}
		weight := 8
		if in.Flags.Is(isa.FlagTrap) {
			// ECALL ends the test body; inject it rarely so suites keep
			// mostly-running bodies (and Spike-style findings stay rare
			// events, as in the paper's Table I).
			weight = 1
		}
		for w := 0; w < weight; w++ {
			m.injectable = append(m.injectable, in)
		}
	}
	return m
}

// generic applies a random stack of libFuzzer-style byte mutations.
func (m *mutator) generic(base, cross []byte, maxLen int) []byte {
	out := append([]byte(nil), base...)
	n := 1 + m.rng.Intn(4)
	for i := 0; i < n; i++ {
		switch m.rng.Intn(8) {
		case 0: // erase bytes
			if len(out) > 1 {
				p := m.rng.Intn(len(out))
				k := 1 + m.rng.Intn(len(out)-p)
				out = append(out[:p], out[p+k:]...)
			}
		case 1: // insert a byte
			if len(out) < maxLen {
				p := m.rng.Intn(len(out) + 1)
				out = append(out[:p], append([]byte{byte(m.rng.Intn(256))}, out[p:]...)...)
			}
		case 2: // change a byte
			if len(out) > 0 {
				out[m.rng.Intn(len(out))] = byte(m.rng.Intn(256))
			}
		case 3: // flip a bit
			if len(out) > 0 {
				out[m.rng.Intn(len(out))] ^= 1 << m.rng.Intn(8)
			}
		case 4: // shuffle a small window
			if len(out) > 2 {
				p := m.rng.Intn(len(out) - 2)
				k := 2 + m.rng.Intn(min(len(out)-p, 8)-1)
				window := out[p : p+k]
				m.rng.Shuffle(len(window), func(i, j int) { window[i], window[j] = window[j], window[i] })
			}
		case 5: // overwrite a word with random bytes
			if len(out) >= 4 {
				p := m.rng.Intn(len(out)-3) &^ 3
				w := m.rng.Uint32()
				out[p], out[p+1], out[p+2], out[p+3] = byte(w), byte(w>>8), byte(w>>16), byte(w>>24)
			}
		case 6: // copy part of the input over another part
			if len(out) >= 2 {
				src := m.rng.Intn(len(out))
				dst := m.rng.Intn(len(out))
				k := 1 + m.rng.Intn(len(out)-max(src, dst))
				copy(out[dst:dst+k], out[src:src+k])
			}
		case 7: // splice with another corpus entry
			if len(cross) > 0 && len(out) > 0 {
				p := m.rng.Intn(len(out))
				q := m.rng.Intn(len(cross))
				spliced := append([]byte(nil), out[:p]...)
				spliced = append(spliced, cross[q:]...)
				out = spliced
			}
		}
	}
	if len(out) == 0 {
		out = []byte{byte(m.rng.Intn(256)), byte(m.rng.Intn(256)), byte(m.rng.Intn(256)), byte(m.rng.Intn(256))}
	}
	if len(out) > maxLen {
		out = out[:maxLen]
	}
	return out
}

// instructionAware injects valid opcode patterns word by word (the custom
// mutator of section IV-D). An empty base is seeded with fresh random
// instructions.
func (m *mutator) instructionAware(base []byte, maxLen int) []byte {
	var out []byte
	if len(base) == 0 {
		nWords := 1 + m.rng.Intn(max(maxLen/4, 1))
		out = make([]byte, nWords*4)
		for i := range out {
			out[i] = byte(m.rng.Intn(256))
		}
	} else {
		out = append([]byte(nil), base...)
		if len(out) > maxLen {
			out = out[:maxLen]
		}
	}
	// Analyse the base input once: per-site clean-register masks guide
	// base-register choice, and the backward base-usage scan tells each
	// site which registers a LATER memory access still needs clean. The
	// analysis goes stale as injections land, but the filter arbitrates
	// the final stream either way — this only biases mutation toward
	// acceptable results.
	a := analysis.Analyze(out)
	type baseUse struct {
		pc   int32
		base isa.Reg
	}
	var uses []baseUse
	a.EachInst(func(pc int32, inst isa.Inst, reachable bool) {
		if info := inst.Info(); reachable && info != nil && info.Flags.Any(isa.FlagLoad|isa.FlagStore) {
			uses = append(uses, baseUse{pc, inst.Rs1})
		}
	})

	// The custom mutator uses a 4-byte stride (the paper: "we use a 4
	// byte format").
	for p := 0; p+4 <= len(out); p += 4 {
		if m.rng.Intn(3) != 0 {
			continue
		}
		pos := p / 4
		limitWords := (maxLen - p) / 4 // words after this one stay in bounds
		clean := a.CleanAt(int32(p))
		var avoid uint32 // regs a memory access beyond this word still needs clean
		for _, u := range uses {
			if u.pc >= int32(p)+4 {
				avoid |= 1 << u.base
			}
		}
		w := m.validWord(pos, limitWords, clean, avoid)
		out[p], out[p+1], out[p+2], out[p+3] = byte(w), byte(w>>8), byte(w>>16), byte(w>>24)
	}
	return out
}

// pickCleanBase selects a memory-access base register from the clean
// mask, falling back to the template-initialized x30/x31 when the
// analysis has nothing cleaner to offer (empty mask, unreachable site).
func (m *mutator) pickCleanBase(clean uint32) isa.Reg {
	clean &^= 1 // x0 is never an address register
	n := bits.OnesCount32(clean)
	if n == 0 {
		return isa.Reg(30 + m.rng.Intn(2))
	}
	k := m.rng.Intn(n)
	for r := 1; r < 32; r++ {
		if clean&(1<<r) == 0 {
			continue
		}
		if k == 0 {
			return isa.Reg(r)
		}
		k--
	}
	return isa.Reg(31)
}

// steerRD rewrites the rd field of an encoded instruction word when it
// would dirty a register that a later memory access still needs clean.
func (m *mutator) steerRD(w uint32, avoid uint32) uint32 {
	inst := isa.Ref.Decode32(w)
	info := inst.Info()
	if info == nil || !info.Flags.Is(isa.FlagWritesRD) || avoid&(1<<inst.Rd) == 0 {
		return w
	}
	for try := 0; try < 4; try++ {
		rd := uint32(m.rng.Intn(32))
		if avoid&(1<<rd) == 0 {
			return w&^(0x1f<<7) | rd<<7
		}
	}
	return w &^ (0x1f << 7) // x0: discard the result rather than dirty a live base
}

// compressedHalf builds one valid computational RVC encoding (always
// filter-safe: no memory accesses, no control flow).
func (m *mutator) compressedHalf() uint16 {
	for {
		var inst isa.Inst
		switch m.rng.Intn(7) {
		case 0: // c.li
			inst = isa.Inst{Op: isa.OpADDI, Rd: isa.Reg(1 + m.rng.Intn(31)), Rs1: 0, Imm: int32(m.rng.Intn(64) - 32)}
		case 1: // c.addi
			rd := isa.Reg(1 + m.rng.Intn(31))
			inst = isa.Inst{Op: isa.OpADDI, Rd: rd, Rs1: rd, Imm: int32(1 + m.rng.Intn(31))}
		case 2: // c.lui
			inst = isa.Inst{Op: isa.OpLUI, Rd: isa.Reg(1 + m.rng.Intn(31)), Imm: int32(1+m.rng.Intn(31)) << 12}
		case 3: // c.mv / c.add
			inst = isa.Inst{Op: isa.OpADD, Rd: isa.Reg(1 + m.rng.Intn(31)), Rs2: isa.Reg(1 + m.rng.Intn(31))}
			if m.rng.Intn(2) == 0 {
				inst.Rs1 = inst.Rd
			}
		case 4: // c.sub/xor/or/and
			rd := isa.Reg(8 + m.rng.Intn(8))
			ops := []isa.Op{isa.OpSUB, isa.OpXOR, isa.OpOR, isa.OpAND}
			inst = isa.Inst{Op: ops[m.rng.Intn(4)], Rd: rd, Rs1: rd, Rs2: isa.Reg(8 + m.rng.Intn(8))}
		case 5: // shifts
			ops := []isa.Op{isa.OpSLLI, isa.OpSRLI, isa.OpSRAI}
			op := ops[m.rng.Intn(3)]
			rd := isa.Reg(1 + m.rng.Intn(31))
			if op != isa.OpSLLI {
				rd = isa.Reg(8 + m.rng.Intn(8))
			}
			inst = isa.Inst{Op: op, Rd: rd, Rs1: rd, Imm: int32(1 + m.rng.Intn(31))}
		default: // c.andi
			rd := isa.Reg(8 + m.rng.Intn(8))
			inst = isa.Inst{Op: isa.OpANDI, Rd: rd, Rs1: rd, Imm: int32(m.rng.Intn(64) - 32)}
		}
		if h, ok := isa.Compress(inst); ok {
			return h
		}
	}
}

// validWord builds one valid (though operand-randomized) instruction word.
// pos is the word index within the bytestream; limitWords bounds forward
// branch targets so the filter's bounds check passes more often. clean is
// the analysis' clean-register mask at this site (candidate memory bases)
// and avoid the registers later memory accesses still need clean.
func (m *mutator) validWord(pos, limitWords int, clean, avoid uint32) uint32 {
	if m.rng.Intn(5) == 0 {
		// A pair of valid compressed instructions in one 4-byte slot,
		// exercising the C-extension decode paths with well-formed
		// encodings (random bytes alone mostly produce reserved or
		// illegal RVC forms).
		return uint32(m.compressedHalf()) | uint32(m.compressedHalf())<<16
	}
	in := m.injectable[m.rng.Intn(len(m.injectable))]
	fl := in.Flags
	switch {
	case fl.Any(isa.FlagLoad | isa.FlagStore):
		// A provably clean address register, size-aligned immediate.
		inst := isa.Inst{Op: in.Op}
		inst.Rs1 = m.pickCleanBase(clean)
		inst.Rd = isa.Reg(m.rng.Intn(32))
		inst.Rs2 = isa.Reg(m.rng.Intn(32))
		if in.Fmt != isa.FmtAMO {
			span := 4096 / int(in.MemSize)
			inst.Imm = int32((m.rng.Intn(span) - span/2) * int(in.MemSize))
		}
		if in.Op == isa.OpLRW {
			inst.Rs2 = 0
		}
		w, err := isa.Encode(inst)
		if err != nil {
			return in.Match
		}
		return m.steerRD(w, avoid)
	case fl.Is(isa.FlagBranch) || in.Op == isa.OpJAL:
		// Small offsets keep targets inside the bytestream most of the
		// time (the filter still arbitrates).
		inst := isa.Inst{Op: in.Op}
		inst.Rd = isa.Reg(m.rng.Intn(32))
		inst.Rs1 = isa.Reg(m.rng.Intn(32))
		inst.Rs2 = isa.Reg(m.rng.Intn(32))
		// Offsets move in halfword steps: 2-mod-4 targets land between
		// word boundaries, which is legal with the C extension and the
		// interesting misaligned-jump case without it.
		maxFwd := 2 * limitWords
		if maxFwd > 12 {
			maxFwd = 12
		}
		off := 2
		if maxFwd > 1 {
			off = 2 * (1 + m.rng.Intn(maxFwd-1))
		}
		if pos > 0 && m.rng.Intn(4) == 0 {
			off = -2 * (1 + m.rng.Intn(2*pos))
		}
		inst.Imm = int32(off)
		w, err := isa.Encode(inst)
		if err != nil {
			return in.Match
		}
		return m.steerRD(w, avoid)
	default:
		// Fig. 3: opcode pattern fixed, every other field random — except
		// that a destination a later memory access depends on is steered
		// away so the injection does not break the clean-address chain.
		return m.steerRD(m.rng.Uint32()&^in.Mask|in.Match, avoid)
	}
}
