package fuzz

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rvnegtest/internal/coverage"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/template"
)

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestCheckpointResumeBitIdentical interrupts a serial campaign at a
// checkpoint and proves the resumed continuation reproduces the
// uninterrupted run exactly: same corpus bytes, same deterministic stats.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	cfg := smallConfig(coverage.V1(), 11)
	const budget = 12000

	base, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Run(budget, 0); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	f1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f1.Run(5000, 0); err != nil {
		t.Fatal(err)
	}
	if err := f1.SaveCheckpoint(dir); err != nil {
		t.Fatal(err)
	}
	f2, err := Resume(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := f2.Execs(); got != 5000 {
		t.Fatalf("resumed at %d execs, want 5000", got)
	}
	if err := f2.Run(budget, 0); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(base.Corpus(), f2.Corpus()) {
		t.Fatalf("resumed corpus differs: %d vs %d cases", len(f2.Corpus()), len(base.Corpus()))
	}
	want := mustJSON(t, base.Stats().Deterministic())
	got := mustJSON(t, f2.Stats().Deterministic())
	if want != got {
		t.Fatalf("deterministic stats differ:\n  uninterrupted: %s\n  resumed:       %s", want, got)
	}
}

// TestCampaignInterruptResumeDeterministic cancels a checkpointed campaign
// mid-run and resumes it, for 1 and 4 workers; the final merged corpus and
// per-worker stats must match an uninterrupted campaign byte for byte.
func TestCampaignInterruptResumeDeterministic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		cfg := smallConfig(coverage.V1(), 33)
		cc := CampaignConfig{Workers: workers, ExecsEach: 9000}

		wantCases, wantStats, err := Campaign(context.Background(), cfg, cc)
		if err != nil {
			t.Fatal(err)
		}

		ckpt := cc
		ckpt.CheckpointDir = t.TempDir()
		ckpt.CheckpointEvery = 1500
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		_, _, err = Campaign(ctx, cfg, ckpt)
		cancel()
		if err != nil && !errors.Is(err, ErrInterrupted) {
			t.Fatal(err)
		}
		interrupted := err != nil

		gotCases, gotStats, err := Campaign(context.Background(), cfg, ckpt)
		if err != nil {
			t.Fatal(err)
		}

		if !reflect.DeepEqual(wantCases, gotCases) {
			t.Fatalf("workers=%d: resumed corpus differs (%d vs %d cases, interrupted=%t)",
				workers, len(gotCases), len(wantCases), interrupted)
		}
		if len(gotStats) != len(wantStats) {
			t.Fatalf("workers=%d: %d stats entries, want %d", workers, len(gotStats), len(wantStats))
		}
		for w := range wantStats {
			want := mustJSON(t, wantStats[w].Deterministic())
			got := mustJSON(t, gotStats[w].Deterministic())
			if want != got {
				t.Fatalf("workers=%d worker %d: deterministic stats differ (interrupted=%t):\n  uninterrupted: %s\n  resumed:       %s",
					workers, w, interrupted, want, got)
			}
		}
		t.Logf("workers=%d: %d cases, interrupted mid-run: %t", workers, len(gotCases), interrupted)
	}
}

func TestResumeRejectsDifferentCampaign(t *testing.T) {
	cfg := smallConfig(coverage.V1(), 3)
	dir := t.TempDir()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Run(500, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.SaveCheckpoint(dir); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Seed = 4
	if _, err := Resume(other, dir); err == nil {
		t.Fatal("Resume accepted a checkpoint from a different campaign")
	}
	if _, err := Resume(cfg, t.TempDir()); err == nil {
		t.Fatal("Resume accepted an empty directory")
	}
}

func TestRunNeedsABound(t *testing.T) {
	f, err := New(smallConfig(coverage.V0(), 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Run(0, 0); err == nil {
		t.Fatal("Run without any bound did not error")
	}
}

func faultyFactory(plan sim.Schedule, msg string, release <-chan struct{}) func(template.Platform) (sim.HookedSim, error) {
	return func(p template.Platform) (sim.HookedSim, error) {
		inner, err := sim.New(sim.Reference, p)
		if err != nil {
			return nil, err
		}
		return &sim.Faulty{Inner: inner, Plan: plan, PanicMsg: msg, Release: release}, nil
	}
}

// TestPanicIsolationQuarantinesInput proves a panicking foundation
// simulator does not kill the campaign: the panic is counted as a harness
// fault and the offending input lands in quarantine with its message.
func TestPanicIsolationQuarantinesInput(t *testing.T) {
	qdir := t.TempDir()
	cfg := smallConfig(coverage.V1(), 5)
	cfg.QuarantineDir = qdir
	calls := 0
	cfg.NewTarget = faultyFactory(func([]byte) sim.Fault {
		calls++
		if calls%50 == 0 {
			return sim.FaultPanic
		}
		return sim.FaultNone
	}, "exec: unhandled operation 0xbeef", nil)

	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Run(2000, 0); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Execs != 2000 {
		t.Fatalf("campaign stopped at %d execs", st.Execs)
	}
	if st.HarnessFaults == 0 {
		t.Fatal("no harness faults recorded despite injected panics")
	}
	if st.Crashes < st.HarnessFaults {
		t.Fatalf("crashes %d < harness faults %d", st.Crashes, st.HarnessFaults)
	}
	ents, err := os.ReadDir(qdir)
	if err != nil {
		t.Fatal(err)
	}
	var sawDetail bool
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".txt") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(qdir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(data), "exec: unhandled operation 0xbeef") {
			sawDetail = true
		}
	}
	if !sawDetail {
		t.Fatalf("quarantine (%d entries) lacks the panic message", len(ents))
	}
}

// TestWatchdogReapsWedgedTarget wedges the simulator once; the watchdog
// must reap it, rebuild the target, and let the campaign finish its budget.
func TestWatchdogReapsWedgedTarget(t *testing.T) {
	release := make(chan struct{})
	defer close(release) // let the abandoned goroutine exit at teardown
	cfg := smallConfig(coverage.V1(), 6)
	cfg.CaseTimeout = 50 * time.Millisecond
	var calls atomic.Int64 // Plan runs on guard goroutines, not the test's
	cfg.NewTarget = faultyFactory(func([]byte) sim.Fault {
		if calls.Add(1) == 10 {
			return sim.FaultWedge
		}
		return sim.FaultNone
	}, "", release)

	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Run(600, 0); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Execs != 600 {
		t.Fatalf("campaign stopped at %d execs after the wedge", st.Execs)
	}
	if st.Timeouts == 0 || st.HarnessFaults == 0 {
		t.Fatalf("wedge not observed: timeouts=%d, harness faults=%d", st.Timeouts, st.HarnessFaults)
	}
	if st.TestCases == 0 {
		t.Fatal("no test cases collected after target rebuild")
	}
}
