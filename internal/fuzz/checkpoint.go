package fuzz

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"rvnegtest/internal/obs"
	"rvnegtest/internal/resilience"
	"rvnegtest/internal/template"
)

// Checkpoint layout (one directory per fuzzer):
//
//	state.json             versioned envelope referencing the blobs below
//	corpus-<execs>.hex     collected corpus, one hex line per test case
//	pending-<execs>.hex    unreplayed seed corpus (only while non-empty)
//	frontier-<execs>.bin   raw coverage bucket bitmap
//
// The blobs are written first and state.json last (each atomically), and
// blob names carry the execution counter, so a crash mid-checkpoint
// leaves the previous state.json pointing at the previous, still-intact
// blobs. Blobs from older checkpoints are pruned only after the new
// state.json is durable.

const (
	checkpointFormat  = "rvfuzz-checkpoint"
	checkpointVersion = 1
	stateFile         = "state.json"
)

// checkpointState is the state.json payload: everything Step consults
// besides the config itself, so a resumed fuzzer continues the exact
// mutation/coverage trajectory of the interrupted one.
type checkpointState struct {
	Fingerprint   string       `json:"fingerprint"`
	Execs         uint64       `json:"execs"`
	Dropped       uint64       `json:"dropped"`
	Crashes       uint64       `json:"crashes"`
	Timeouts      uint64       `json:"timeouts"`
	HarnessFaults uint64       `json:"harness_faults"`
	Stall         int          `json:"stall"`
	CurLen        int          `json:"cur_len"`
	ElapsedNS     int64        `json:"elapsed_ns"`
	RNG           [4]uint64    `json:"rng"`
	Trace         []TracePoint `json:"trace"`
	// FilterCounts holds analysis.Stats.Counts raw: the Stats JSON view is
	// a human-readable projection without an inverse.
	FilterCounts []uint64 `json:"filter_counts"`
	CovBits      int      `json:"cov_bits"`
	CorpusFile   string   `json:"corpus_file"`
	PendingFile  string   `json:"pending_file,omitempty"`
	FrontierFile string   `json:"frontier_file"`
}

// Fingerprint identifies the campaign parameters that must match between
// the checkpointing run and the resuming one for the continuation to be
// meaningful, let alone bit-identical.
func (c Config) Fingerprint() string {
	fp := fmt.Sprintf("seed=%d isa=%v maxlen=%d lencontrol=%d prob=%g nofilter=%t nocustom=%t edges=%t hash=%d rules=%t",
		c.Seed, c.ISA, c.MaxLen, c.LenControl, c.CustomMutatorProb,
		c.DisableFilter, c.DisableCustomMutator,
		c.Coverage.Edges, c.Coverage.HashN, c.Coverage.Rules != nil)
	// The family changes the template, the filter semantics and the
	// coverage trajectory, so campaigns never resume across families.
	// Only the trap family appends a marker: user-family fingerprints —
	// and therefore pre-family checkpoints — stay valid.
	if c.Family == template.FamilyTrap {
		fp += " family=trap"
	}
	return fp
}

func writeHexLines(path string, cases [][]byte) error {
	var b strings.Builder
	for _, bs := range cases {
		b.WriteString(hex.EncodeToString(bs))
		b.WriteByte('\n')
	}
	return resilience.WriteFileAtomic(path, []byte(b.String()))
}

func readHexLines(path string) ([][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out [][]byte
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		bs, err := hex.DecodeString(line)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, ln+1, err)
		}
		out = append(out, bs)
	}
	return out, nil
}

// SaveCheckpoint persists the fuzzer's full campaign state under dir.
// Telemetry state is deliberately not part of the checkpoint: metrics
// and events describe a process's lifetime, not the campaign's logical
// state, and resuming must stay bit-identical whether telemetry was on
// or off when the checkpoint was written.
func (f *Fuzzer) SaveCheckpoint(dir string) error {
	var t0 time.Time
	if f.tel != nil {
		t0 = time.Now()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	st := checkpointState{
		Fingerprint:   f.cfg.Fingerprint(),
		Execs:         f.execs,
		Dropped:       f.dropped,
		Crashes:       f.crashes,
		Timeouts:      f.timeout,
		HarnessFaults: f.hfaults,
		Stall:         f.stall,
		CurLen:        f.curLen,
		ElapsedNS:     int64(f.elapsed),
		RNG:           f.src.State(),
		Trace:         append([]TracePoint(nil), f.trace...),
		FilterCounts:  append([]uint64(nil), f.fstats.Counts[:]...),
		CovBits:       f.col.Map.BucketBits(),
		CorpusFile:    fmt.Sprintf("corpus-%016d.hex", f.execs),
		FrontierFile:  fmt.Sprintf("frontier-%016d.bin", f.execs),
	}
	if err := writeHexLines(filepath.Join(dir, st.CorpusFile), f.corpus); err != nil {
		return err
	}
	if len(f.pending) > 0 {
		st.PendingFile = fmt.Sprintf("pending-%016d.hex", f.execs)
		if err := writeHexLines(filepath.Join(dir, st.PendingFile), f.pending); err != nil {
			return err
		}
	}
	if err := resilience.WriteFileAtomic(filepath.Join(dir, st.FrontierFile), f.col.Map.Frontier()); err != nil {
		return err
	}
	if err := resilience.SaveJSON(filepath.Join(dir, stateFile), checkpointFormat, checkpointVersion, st); err != nil {
		return err
	}
	pruneBlobs(dir, st)
	if f.tel != nil {
		f.tel.stCkpt.ObserveSince(t0)
		f.tel.event(obs.Event{Type: "checkpoint", Execs: f.execs, Corpus: len(f.corpus)})
	}
	return nil
}

// pruneBlobs removes blob files not referenced by the just-written state.
// Best effort: leftover blobs waste space but never correctness.
func pruneBlobs(dir string, st checkpointState) {
	keep := map[string]bool{stateFile: true, st.CorpusFile: true, st.FrontierFile: true}
	if st.PendingFile != "" {
		keep[st.PendingFile] = true
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	var stale []string
	for _, e := range ents {
		name := e.Name()
		if keep[name] {
			continue
		}
		if strings.HasPrefix(name, "corpus-") || strings.HasPrefix(name, "pending-") ||
			strings.HasPrefix(name, "frontier-") {
			stale = append(stale, name)
		}
	}
	sort.Strings(stale)
	for _, name := range stale {
		os.Remove(filepath.Join(dir, name))
	}
}

// HasCheckpoint reports whether dir holds a checkpoint state file.
func HasCheckpoint(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, stateFile))
	return err == nil
}

// Resume reconstructs a fuzzer from a checkpoint directory. cfg must
// describe the same campaign (same fingerprint) as the run that wrote the
// checkpoint; the resumed fuzzer then continues bit-identically to an
// uninterrupted run of the same seed.
func Resume(cfg Config, dir string) (*Fuzzer, error) {
	var st checkpointState
	if _, err := resilience.LoadJSON(filepath.Join(dir, stateFile), checkpointFormat, checkpointVersion, &st); err != nil {
		return nil, err
	}
	f, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if got := f.cfg.Fingerprint(); got != st.Fingerprint {
		return nil, fmt.Errorf("fuzz: checkpoint is for a different campaign:\n  checkpoint: %s\n  requested:  %s", st.Fingerprint, got)
	}
	if err := f.src.Restore(st.RNG); err != nil {
		return nil, err
	}
	corpus, err := readHexLines(filepath.Join(dir, st.CorpusFile))
	if err != nil {
		return nil, err
	}
	f.corpus = corpus
	f.pending = nil
	if st.PendingFile != "" {
		pending, err := readHexLines(filepath.Join(dir, st.PendingFile))
		if err != nil {
			return nil, err
		}
		f.pending = pending
	}
	frontier, err := os.ReadFile(filepath.Join(dir, st.FrontierFile))
	if err != nil {
		return nil, err
	}
	if err := f.col.Map.RestoreFrontier(frontier); err != nil {
		return nil, err
	}
	if got := f.col.Map.BucketBits(); got != st.CovBits {
		return nil, fmt.Errorf("fuzz: checkpoint frontier has %d bucket bits, state records %d", got, st.CovBits)
	}
	f.execs = st.Execs
	f.dropped = st.Dropped
	f.crashes = st.Crashes
	f.timeout = st.Timeouts
	f.hfaults = st.HarnessFaults
	f.stall = st.Stall
	f.curLen = st.CurLen
	f.elapsed = time.Duration(st.ElapsedNS) // informational; excluded from Deterministic()
	// The restored elapsed time is cumulative across sessions; the live
	// execution rate must not be diluted by it. Session-local accounting
	// starts from zero here, anchored at the checkpoint's exec count.
	f.sessElapsed = 0
	f.baseExecs = st.Execs
	f.trace = st.Trace
	if len(st.FilterCounts) != len(f.fstats.Counts) {
		return nil, fmt.Errorf("fuzz: checkpoint has %d filter counters, this build has %d",
			len(st.FilterCounts), len(f.fstats.Counts))
	}
	copy(f.fstats.Counts[:], st.FilterCounts)
	return f, nil
}
