package fuzz

import (
	"testing"

	"rvnegtest/internal/isa"
)

func TestPickCleanBase(t *testing.T) {
	m := newMutator(newRng(17))
	// Empty mask (or x0-only): fall back to the template registers.
	for i := 0; i < 100; i++ {
		if r := m.pickCleanBase(0); r != 30 && r != 31 {
			t.Fatalf("empty mask picked x%d", r)
		}
		if r := m.pickCleanBase(1); r != 30 && r != 31 {
			t.Fatalf("x0-only mask picked x%d", r)
		}
	}
	// Single-register mask: deterministic.
	if r := m.pickCleanBase(1 << 5); r != 5 {
		t.Errorf("mask{x5} picked x%d", r)
	}
	// Multi-register mask: always a member.
	mask := uint32(1<<7 | 1<<30 | 1<<31)
	seen := map[isa.Reg]bool{}
	for i := 0; i < 200; i++ {
		r := m.pickCleanBase(mask)
		if mask&(1<<r) == 0 {
			t.Fatalf("picked x%d outside mask %#x", r, mask)
		}
		seen[r] = true
	}
	if len(seen) != 3 {
		t.Errorf("only %d of 3 mask members ever picked", len(seen))
	}
}

func TestSteerRD(t *testing.T) {
	m := newMutator(newRng(23))
	addi30 := isa.MustEncode(isa.Inst{Op: isa.OpADDI, Rd: 30, Rs1: 1, Imm: 4})
	// rd collides with a live base: must be steered off it.
	for i := 0; i < 100; i++ {
		w := m.steerRD(addi30, 1<<30)
		inst := isa.Ref.Decode32(w)
		if inst.Op != isa.OpADDI || inst.Rs1 != 1 || inst.Imm != 4 {
			t.Fatalf("steering changed more than rd: %+v", inst)
		}
		if inst.Rd == 30 {
			t.Fatal("rd still collides with the avoid mask")
		}
	}
	// No collision: untouched.
	if w := m.steerRD(addi30, 1<<31); w != addi30 {
		t.Error("steering rewrote a non-colliding rd")
	}
	if w := m.steerRD(addi30, 0); w != addi30 {
		t.Error("steering rewrote with an empty avoid mask")
	}
	// Stores have no rd field: untouched even with a full avoid mask.
	sw := isa.MustEncode(isa.Inst{Op: isa.OpSW, Rs1: 30, Rs2: 7, Imm: 8})
	if w := m.steerRD(sw, ^uint32(0)); w != sw {
		t.Error("steering rewrote a store")
	}
	// Everything to avoid: rd falls back to x0.
	if inst := isa.Ref.Decode32(m.steerRD(addi30, ^uint32(0))); inst.Rd != 0 {
		t.Errorf("full avoid mask gave rd=x%d, want x0", inst.Rd)
	}
}

// TestInstructionAwareKeepsAcceptedBases: on a base input with a clean
// x30 load, injected memory accesses keep using provably clean bases, so
// the mutated stream's memory ops never reference a base the analysis
// knows nothing about.
func TestInstructionAwareRs1FromCleanSet(t *testing.T) {
	m := newMutator(newRng(29))
	base := make([]byte, 16) // zero words: illegal encodings, all sites clean x30/x31
	for i := 0; i < 500; i++ {
		out := m.instructionAware(base, 64)
		for p := 0; p+4 <= len(out); p += 4 {
			w := uint32(out[p]) | uint32(out[p+1])<<8 | uint32(out[p+2])<<16 | uint32(out[p+3])<<24
			if w&3 != 3 {
				continue // compressed pair slot
			}
			inst := isa.Ref.Decode32(w)
			info := inst.Info()
			if info == nil || !info.Flags.Any(isa.FlagLoad|isa.FlagStore) {
				continue
			}
			if inst.Rs1 != 30 && inst.Rs1 != 31 {
				t.Fatalf("injected %v at %d uses base x%d; clean set was {x30,x31}", inst.Op, p, inst.Rs1)
			}
		}
	}
}
