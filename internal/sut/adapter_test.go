package sut

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"rvnegtest/internal/isa"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/template"
)

// TestMain doubles as the adapter subprocess: when the helper env var is
// set, the test binary serves the protocol on stdin/stdout instead of
// running tests — the standard helper-process pattern, so the adapter
// tests exercise real processes, real pipes, and real kills.
func TestMain(m *testing.M) {
	if os.Getenv("SUT_ADAPTER_HELPER") == "1" {
		helperMain()
		return
	}
	os.Exit(m.Run())
}

func helperMain() {
	if n, _ := strconv.Atoi(os.Getenv("SUT_STDERR_SPAM")); n > 0 {
		os.Stderr.Write(bytes.Repeat([]byte("spam-line\n"), (n+9)/10))
	}
	name := os.Getenv("SUT_VARIANT")
	if name == "" {
		name = "reference"
	}
	v, ok := sim.ByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown variant %q\n", name)
		os.Exit(2)
	}
	mode, err := ParseMisbehave(os.Getenv("SUT_MISBEHAVE"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	after, _ := strconv.Atoi(os.Getenv("SUT_AFTER"))
	if err := Serve(os.Stdin, os.Stdout, NewSimHandler(v), ServeOpts{Misbehave: mode, After: after}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// helperSpec builds a Spec that re-executes this test binary as the
// adapter, with fast timeouts so misbehaviour tests stay quick.
func helperSpec(env ...string) Spec {
	return Spec{
		Name:             "helper",
		Argv:             []string{os.Args[0]},
		Env:              append([]string{"SUT_ADAPTER_HELPER=1"}, env...),
		HandshakeTimeout: 10 * time.Second,
		RunTimeout:       10 * time.Second,
		BackoffBase:      time.Millisecond,
		BackoffMax:       4 * time.Millisecond,
		Seed:             1,
	}
}

// testCase is a small deterministic bytestream: addi x1,x0,1 then an
// all-zero word (a guaranteed illegal instruction, so the run also
// exercises the trap path).
var testCase = []byte{0x93, 0x00, 0x10, 0x00, 0x00, 0x00, 0x00, 0x00}

// TestAdapterParity: the subprocess path returns byte-identical results
// to running the same variant in-process — the core guarantee that makes
// external reference adapters trustworthy.
func TestAdapterParity(t *testing.T) {
	for _, variant := range []string{"reference", "Spike"} {
		for _, fam := range []template.Family{template.FamilyUser, template.FamilyTrap} {
			v, _ := sim.ByName(variant)
			p := template.PlatformFor(fam, mustConfig(t, "RV32IMC"))
			local, err := sim.New(v, p)
			if err != nil {
				t.Fatal(err)
			}
			want := local.Run(testCase)

			a := NewAdapter(helperSpec("SUT_VARIANT=" + variant))
			defer a.Close()
			got, f := a.Run(byte(fam), "RV32IMC", testCase)
			if f != nil {
				t.Fatalf("%s/%v: adapter fault: %s", variant, fam, f.Detail())
			}
			wantRes := RunResult{Signature: want.Signature, Crashed: want.Crashed,
				TimedOut: want.TimedOut, Msg: want.CrashMsg, Insts: want.Insts, Traps: want.Traps}
			if !reflect.DeepEqual(got, wantRes) {
				t.Fatalf("%s/%v: adapter result %+v, in-process %+v", variant, fam, got, wantRes)
			}
		}
	}
}

// TestProbe: the capability preflight reports the variant's identity; a
// NoFD variant advertises no FP capability.
func TestProbe(t *testing.T) {
	info, f := Probe(helperSpec("SUT_VARIANT=VP"))
	if f != nil {
		t.Fatalf("probe fault: %s", f.Detail())
	}
	if info.Name != "VP" || info.Proto != ProtoVersion {
		t.Fatalf("info = %+v", info)
	}
	if info.Caps&CapFP != 0 {
		t.Fatal("NoFD variant advertises CapFP")
	}
	if info.Caps&CapTrap == 0 {
		t.Fatal("built-in variant lacks CapTrap")
	}

	ref, f := Probe(helperSpec())
	if f != nil {
		t.Fatalf("probe fault: %s", f.Detail())
	}
	if ref.Caps&CapFP == 0 {
		t.Fatal("reference lacks CapFP")
	}
}

// TestAdapterHang: a wedged adapter is reaped by the run watchdog, and
// every retry hits the same wedge — the fault survives with watchdog
// context and the supervision counters add up.
func TestAdapterHang(t *testing.T) {
	spec := helperSpec("SUT_MISBEHAVE=hang")
	spec.RunTimeout = 100 * time.Millisecond
	spec.Retries = 1
	a := NewAdapter(spec)
	defer a.Close()
	_, f := a.Run(0, "RV32I", testCase)
	if f == nil {
		t.Fatal("hung adapter produced a result")
	}
	if !strings.Contains(f.Reason, "watchdog") {
		t.Fatalf("reason = %q, want watchdog", f.Reason)
	}
	if f.LastFrame != "HELLO-OK" {
		t.Fatalf("last frame = %q, want HELLO-OK (hang happens after handshake)", f.LastFrame)
	}
	if a.Stats.Faults != 2 || a.Stats.Retries != 1 || a.Stats.Restarts != 1 {
		t.Fatalf("stats = %+v, want 2 faults / 1 retry / 1 restart", a.Stats)
	}
}

// TestAdapterCrashHeals: a crash after N good runs is healed by the
// restart — the retried case succeeds on the fresh process and the final
// result is indistinguishable from an untroubled run.
func TestAdapterCrashHeals(t *testing.T) {
	a := NewAdapter(helperSpec("SUT_MISBEHAVE=crash", "SUT_AFTER=1"))
	defer a.Close()
	first, f := a.Run(0, "RV32I", testCase)
	if f != nil {
		t.Fatalf("first run fault: %s", f.Detail())
	}
	second, f := a.Run(0, "RV32I", testCase)
	if f != nil {
		t.Fatalf("second run not healed: %s", f.Detail())
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("healed run diverged: %+v vs %+v", first, second)
	}
	if a.Stats.Restarts != 1 || a.Stats.Retries != 1 || a.Stats.Faults != 1 {
		t.Fatalf("stats = %+v, want 1/1/1", a.Stats)
	}
}

// TestAdapterPermanentCrash: a crash loop exhausts the retry budget and
// surfaces an EOF fault.
func TestAdapterPermanentCrash(t *testing.T) {
	spec := helperSpec("SUT_MISBEHAVE=crash")
	spec.Retries = 2
	a := NewAdapter(spec)
	defer a.Close()
	_, f := a.Run(0, "RV32I", testCase)
	if f == nil {
		t.Fatal("crash-looping adapter produced a result")
	}
	if !strings.Contains(f.Reason, "EOF") {
		t.Fatalf("reason = %q, want EOF", f.Reason)
	}
	if a.Stats.Faults != 3 || a.Stats.Retries != 2 {
		t.Fatalf("stats = %+v, want 3 faults / 2 retries", a.Stats)
	}
}

// TestAdapterGarbage: junk bytes on the pipe are classified as protocol
// garbage (ErrProto context in the fault), not a hang.
func TestAdapterGarbage(t *testing.T) {
	spec := helperSpec("SUT_MISBEHAVE=garbage")
	spec.Retries = -1
	a := NewAdapter(spec)
	defer a.Close()
	_, f := a.Run(0, "RV32I", testCase)
	if f == nil {
		t.Fatal("garbage-writing adapter produced a result")
	}
	if !strings.Contains(f.Reason, "protocol error") {
		t.Fatalf("reason = %q, want protocol error", f.Reason)
	}
}

// TestAdapterTruncate: a frame whose payload is cut short by process
// exit is a protocol fault, not a partial result.
func TestAdapterTruncate(t *testing.T) {
	spec := helperSpec("SUT_MISBEHAVE=truncate")
	spec.Retries = -1
	a := NewAdapter(spec)
	defer a.Close()
	_, f := a.Run(0, "RV32I", testCase)
	if f == nil {
		t.Fatal("truncating adapter produced a result")
	}
	if !strings.Contains(f.Reason, "protocol error") && !strings.Contains(f.Reason, "truncated") {
		t.Fatalf("reason = %q, want truncation context", f.Reason)
	}
}

// TestAdapterStderrTail: fault details carry the adapter's stderr,
// bounded by the configured tail size.
func TestAdapterStderrTail(t *testing.T) {
	spec := helperSpec("SUT_MISBEHAVE=crash", "SUT_STDERR_SPAM=1000")
	spec.Retries = -1
	spec.StderrTail = 64
	a := NewAdapter(spec)
	defer a.Close()
	_, f := a.Run(0, "RV32I", testCase)
	if f == nil {
		t.Fatal("crashing adapter produced a result")
	}
	if f.StderrTail == "" {
		t.Fatal("fault carries no stderr tail")
	}
	if len(f.StderrTail) > 64 {
		t.Fatalf("stderr tail %d bytes, bound is 64", len(f.StderrTail))
	}
	if !strings.Contains(f.Detail(), "stderr tail") {
		t.Fatalf("detail lacks stderr section:\n%s", f.Detail())
	}
}

// TestAdapterErrPermanent: an in-protocol refusal (unsupported config)
// is permanent — no kill, no retries, and the process keeps serving.
func TestAdapterErrPermanent(t *testing.T) {
	a := NewAdapter(helperSpec())
	defer a.Close()
	_, f := a.Run(0, "BOGUS", testCase)
	if f == nil || !f.Permanent {
		t.Fatalf("refusal fault = %+v, want permanent", f)
	}
	if !strings.Contains(f.Reason, "refused") {
		t.Fatalf("reason = %q", f.Reason)
	}
	if a.Stats.Retries != 0 {
		t.Fatalf("refusal was retried %d times", a.Stats.Retries)
	}
	// The process was not killed: the next good run reuses it.
	if _, f := a.Run(0, "RV32I", testCase); f != nil {
		t.Fatalf("follow-up run failed: %s", f.Detail())
	}
	if a.Stats.Restarts != 0 {
		t.Fatalf("refusal triggered %d restarts", a.Stats.Restarts)
	}
}

// TestAdapterKillRestart: SIGKILLing the live process between runs (the
// operator's kill -9) is healed transparently by the next run's respawn.
func TestAdapterKillRestart(t *testing.T) {
	a := NewAdapter(helperSpec())
	defer a.Close()
	first, f := a.Run(0, "RV32I", testCase)
	if f != nil {
		t.Fatalf("first run: %s", f.Detail())
	}
	a.p.cmd.Process.Kill()
	second, f := a.Run(0, "RV32I", testCase)
	if f != nil {
		t.Fatalf("run after kill: %s", f.Detail())
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("post-kill run diverged: %+v vs %+v", first, second)
	}
	if a.Stats.Restarts == 0 {
		t.Fatal("kill healed without a restart?")
	}
}

func mustConfig(t *testing.T, s string) isa.Config {
	t.Helper()
	c, err := isa.ParseConfig(s)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
