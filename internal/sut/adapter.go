package sut

import (
	"bufio"
	"fmt"
	"io"
	"os/exec"
	"strings"
	"sync"
	"time"

	"rvnegtest/internal/resilience"
)

// Spec describes how to launch and supervise one external SUT adapter
// process.
type Spec struct {
	// Name is the column name in the report (defaults to the name the
	// adapter announces in its handshake when empty).
	Name string
	// Argv is the adapter command line (Argv[0] is the binary).
	Argv []string
	// Env appends to the inherited environment.
	Env []string
	// HandshakeTimeout bounds spawn-to-HELLO_OK; zero means 5s.
	HandshakeTimeout time.Duration
	// RunTimeout is the per-run wall-clock watchdog; zero means 10s. A
	// run that produces no response frame within it is declared wedged
	// and the process is killed.
	RunTimeout time.Duration
	// Retries is the number of kill-and-restart retries after a failed
	// run attempt (so Retries+1 attempts total); zero means 2. Negative
	// disables retries.
	Retries int
	// BackoffBase/BackoffMax shape the jittered exponential delay slept
	// between restarts; zeros select the resilience defaults.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed seeds the backoff jitter RNG, keeping restart delays
	// deterministic per campaign.
	Seed int64
	// StderrTail bounds the retained adapter stderr (bytes); zero means
	// 4096. The tail rides along in Fault details for triage.
	StderrTail int
}

func (s *Spec) handshakeTimeout() time.Duration {
	if s.HandshakeTimeout > 0 {
		return s.HandshakeTimeout
	}
	return 5 * time.Second
}

func (s *Spec) runTimeout() time.Duration {
	if s.RunTimeout > 0 {
		return s.RunTimeout
	}
	return 10 * time.Second
}

func (s *Spec) retries() int {
	switch {
	case s.Retries < 0:
		return 0
	case s.Retries == 0:
		return 2
	}
	return s.Retries
}

func (s *Spec) stderrTail() int {
	if s.StderrTail > 0 {
		return s.StderrTail
	}
	return 4096
}

// Fault is one adapter-level failure: the protocol exchange broke (wedge,
// crash, garbage, truncation, refusal), as opposed to a modeled
// crash/timeout the adapter reported in a FAULT frame. Adapter faults are
// infrastructure failures — the harness heals them by restart and, when
// they persist, skips the SUT's remaining work instead of polluting the
// findings.
type Fault struct {
	// Reason describes what broke ("run watchdog: no response within..",
	// "read: unexpected EOF", ..).
	Reason string
	// LastFrame names the last response frame received from the process
	// before the failure ("none" when it never answered).
	LastFrame string
	// StderrTail is the bounded tail of the adapter's stderr.
	StderrTail string
	// Permanent marks refusals that a restart cannot heal (an ERR frame:
	// the adapter is alive and deliberately rejected the request), so the
	// retry loop stops immediately.
	Permanent bool
}

// Detail renders the fault with its protocol context for quarantine
// records and report fault lines.
func (f *Fault) Detail() string {
	var b strings.Builder
	b.WriteString(f.Reason)
	fmt.Fprintf(&b, " (last frame: %s)", f.LastFrame)
	if f.StderrTail != "" {
		fmt.Fprintf(&b, "\nadapter stderr tail:\n%s", f.StderrTail)
	}
	return b.String()
}

// Stats counts the adapter's supervision activity for telemetry.
type Stats struct {
	// Restarts counts process (re)spawns after the first.
	Restarts int
	// Retries counts re-attempted runs after an adapter-level failure.
	Retries int
	// Faults counts run attempts that ended in an adapter-level failure.
	Faults int
}

// tailBuffer retains the last cap bytes written. The exec package writes
// from its own copier goroutine while the harness reads after failures,
// hence the lock.
type tailBuffer struct {
	mu  sync.Mutex
	cap int
	buf []byte
}

func (t *tailBuffer) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, p...)
	if len(t.buf) > t.cap {
		t.buf = append(t.buf[:0], t.buf[len(t.buf)-t.cap:]...)
	}
	return len(p), nil
}

func (t *tailBuffer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return string(t.buf)
}

// frameMsg is one response frame (or read failure) from the reader
// goroutine.
type frameMsg struct {
	typ     byte
	payload []byte
	err     error
}

// proc is one live adapter process: the command, its stdin, and a reader
// goroutine that turns stdout into a frame channel so response waits can
// carry a deadline (pipes have no portable read deadline; the watchdog
// selects on the channel and kills the process, which unblocks the
// reader via EOF).
type proc struct {
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	frames chan frameMsg
	quit   chan struct{}
	stderr *tailBuffer
}

// Adapter supervises one external SUT process for one harness worker:
// spawn, handshake, per-run watchdog, kill-and-restart with jittered
// exponential backoff, bounded retries per run. Not safe for concurrent
// use — the engine gives each worker its own Adapter, mirroring the
// per-worker simulator instances.
type Adapter struct {
	Spec Spec
	// OnRestart, when non-nil, observes every process (re)spawn after the
	// first.
	OnRestart func()
	// OnRetry, when non-nil, observes every re-attempted run.
	OnRetry func()

	Stats Stats

	p          *proc
	info       Info
	handshook  bool
	backoff    *resilience.Backoff
	lastFrame  string
	lastStderr string
	spawns     int
}

// NewAdapter builds an unstarted adapter; the first Run (or Handshake)
// spawns the process.
func NewAdapter(spec Spec) *Adapter {
	return &Adapter{
		Spec:      spec,
		backoff:   resilience.NewBackoff(spec.BackoffBase, spec.BackoffMax, spec.Seed),
		lastFrame: "none",
	}
}

// spawn starts the adapter process and its reader goroutine.
func (a *Adapter) spawn() error {
	cmd := exec.Command(a.Spec.Argv[0], a.Spec.Argv[1:]...)
	cmd.Env = append(cmd.Environ(), a.Spec.Env...)
	tail := &tailBuffer{cap: a.Spec.stderrTail()}
	cmd.Stderr = tail
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	p := &proc{
		cmd:    cmd,
		stdin:  stdin,
		frames: make(chan frameMsg),
		quit:   make(chan struct{}),
		stderr: tail,
	}
	go func() {
		br := bufio.NewReader(stdout)
		for {
			typ, payload, err := ReadFrame(br)
			select {
			case p.frames <- frameMsg{typ, payload, err}:
			case <-p.quit:
				return
			}
			if err != nil {
				return
			}
		}
	}()
	a.p = p
	a.handshook = false
	a.lastFrame = "none"
	a.spawns++
	if a.spawns > 1 {
		a.Stats.Restarts++
		if a.OnRestart != nil {
			a.OnRestart()
		}
	}
	return nil
}

// kill tears the process down (reader goroutine included) and reaps it.
func (a *Adapter) kill() {
	p := a.p
	if p == nil {
		return
	}
	a.p = nil
	a.handshook = false
	close(p.quit)
	p.stdin.Close()
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Kill()
	}
	_ = p.cmd.Wait()
	// Wait reaped the exec package's stderr copier, so the tail is now
	// complete; snapshot it for the fault being reported.
	a.lastStderr = p.stderr.String()
}

// failStop tears the process down and completes the fault with the
// post-mortem stderr tail (only final after the process is reaped).
func (a *Adapter) failStop(f *Fault) *Fault {
	a.kill()
	f.StderrTail = a.lastStderr
	return f
}

// stderrTail returns the bounded stderr of the current (or just-killed)
// process.
func (a *Adapter) stderrTail() string {
	if a.p == nil {
		return ""
	}
	return a.p.stderr.String()
}

// await waits for the next response frame with a wall-clock deadline.
func (a *Adapter) await(d time.Duration, what string) (byte, []byte, *Fault) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case m := <-a.p.frames:
		if m.err != nil {
			reason := fmt.Sprintf("%s: read: %v", what, m.err)
			if m.err == io.EOF {
				reason = fmt.Sprintf("%s: adapter exited (EOF)", what)
			}
			return 0, nil, a.fault(reason)
		}
		a.lastFrame = frameName(m.typ)
		return m.typ, m.payload, nil
	case <-timer.C:
		return 0, nil, a.fault(fmt.Sprintf("%s watchdog: no response within %v", what, d))
	}
}

// fault snapshots the protocol context into a Fault.
func (a *Adapter) fault(reason string) *Fault {
	return &Fault{Reason: reason, LastFrame: a.lastFrame, StderrTail: a.stderrTail()}
}

// ensure makes sure a handshaken process is up.
func (a *Adapter) ensure() *Fault {
	if a.p != nil && a.handshook {
		return nil
	}
	if a.p == nil {
		if err := a.spawn(); err != nil {
			return a.fault(fmt.Sprintf("spawn %s: %v", a.Spec.Argv[0], err))
		}
	}
	if err := a.send(FrameHello, encodeHello()); err != nil {
		return a.failStop(a.fault(fmt.Sprintf("handshake: write: %v", err)))
	}
	typ, payload, f := a.await(a.Spec.handshakeTimeout(), "handshake")
	if f != nil {
		return a.failStop(f)
	}
	switch typ {
	case FrameHelloOK:
		info, err := decodeHelloOK(payload)
		if err != nil {
			return a.failStop(a.fault(fmt.Sprintf("handshake: %v", err)))
		}
		if info.Proto != ProtoVersion {
			f := a.failStop(a.fault(fmt.Sprintf("handshake: adapter speaks protocol %d, harness %d", info.Proto, ProtoVersion)))
			f.Permanent = true
			return f
		}
		a.info = info
		a.handshook = true
		return nil
	case FrameErr:
		msg, _ := decodeErr(payload)
		f := a.failStop(a.fault(fmt.Sprintf("handshake refused: %s", msg)))
		f.Permanent = true
		return f
	default:
		return a.failStop(a.fault(fmt.Sprintf("handshake: unexpected frame %s", frameName(typ))))
	}
}

func (a *Adapter) send(typ byte, payload []byte) error {
	return WriteFrame(a.p.stdin, typ, payload)
}

// Info returns the identity from the most recent handshake (zero before
// the first successful one).
func (a *Adapter) Info() Info { return a.info }

// Handshake ensures the process is up and handshaken and returns its
// identity. Used by the engine's capability preflight.
func (a *Adapter) Handshake() (Info, *Fault) {
	if f := a.ensure(); f != nil {
		return Info{}, f
	}
	return a.info, nil
}

// Run executes one test case on the external SUT, healing adapter-level
// failures by kill-and-restart with backoff, up to the retry bound. A
// returned Fault means every attempt failed (or the adapter refused the
// request permanently); the result is then meaningless and the caller
// records the case as adapter-skipped.
func (a *Adapter) Run(family byte, config string, code []byte) (RunResult, *Fault) {
	var last *Fault
	attempts := a.Spec.retries() + 1
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			a.Stats.Retries++
			if a.OnRetry != nil {
				a.OnRetry()
			}
			time.Sleep(a.backoff.Next())
		}
		res, f := a.runOnce(family, config, code)
		if f == nil {
			a.backoff.Reset()
			return res, nil
		}
		a.Stats.Faults++
		last = f
		if f.Permanent {
			break
		}
	}
	return RunResult{}, last
}

// runOnce performs one protocol round trip (spawning first if needed).
func (a *Adapter) runOnce(family byte, config string, code []byte) (RunResult, *Fault) {
	if f := a.ensure(); f != nil {
		return RunResult{}, f
	}
	req := RunRequest{Family: family, Config: config, Code: code}
	if err := a.send(FrameRun, encodeRun(req)); err != nil {
		return RunResult{}, a.failStop(a.fault(fmt.Sprintf("run: write: %v", err)))
	}
	typ, payload, f := a.await(a.Spec.runTimeout(), "run")
	if f != nil {
		return RunResult{}, a.failStop(f)
	}
	switch typ {
	case FrameSig:
		res, err := decodeSig(payload)
		if err != nil {
			return RunResult{}, a.failStop(a.fault(fmt.Sprintf("run: %v", err)))
		}
		return res, nil
	case FrameFault:
		res, err := decodeFault(payload)
		if err != nil {
			return RunResult{}, a.failStop(a.fault(fmt.Sprintf("run: %v", err)))
		}
		return res, nil
	case FrameErr:
		// The adapter is alive and deliberately refused this request: a
		// restart cannot change its mind, so don't kill or retry.
		msg, _ := decodeErr(payload)
		f := a.fault(fmt.Sprintf("run refused: %s", msg))
		f.Permanent = true
		return RunResult{}, f
	default:
		return RunResult{}, a.failStop(a.fault(fmt.Sprintf("run: unexpected frame %s", frameName(typ))))
	}
}

// Close shuts the adapter down: an orderly SHUTDOWN frame with a short
// grace period, then a kill. Safe to call on an unstarted or
// already-closed adapter.
func (a *Adapter) Close() {
	if a.p == nil {
		return
	}
	if a.handshook {
		if err := a.send(FrameShutdown, nil); err == nil {
			// The adapter exits on SHUTDOWN, closing its stdout; the
			// reader then delivers EOF. Bound the grace period so a
			// misbehaving adapter cannot stall teardown.
			timer := time.NewTimer(500 * time.Millisecond)
			select {
			case <-a.p.frames:
			case <-timer.C:
			}
			timer.Stop()
		}
	}
	a.kill()
}

// Probe spawns the adapter once, performs the handshake, and shuts it
// down — the engine's capability preflight (which configurations the SUT
// supports, what name it announces).
func Probe(spec Spec) (Info, *Fault) {
	a := NewAdapter(spec)
	defer a.Close()
	return a.Handshake()
}
