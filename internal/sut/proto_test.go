package sut

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

// TestFrameRoundTrip: WriteFrame output parses back via ReadFrame.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xab}, 300)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, byte(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		typ, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != byte(i+1) || !bytes.Equal(got, p) {
			t.Fatalf("frame %d: typ=%d len=%d, want typ=%d len=%d", i, typ, len(got), i+1, len(p))
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("read past end = %v, want io.EOF", err)
	}
}

// TestReadFrameGarbage: malformed input is ErrProto, never a hang or a
// silent mis-parse.
func TestReadFrameGarbage(t *testing.T) {
	cases := map[string][]byte{
		"truncated header":  {0x82, 1, 0},
		"oversized length":  {0x82, 0xff, 0xff, 0xff, 0xff},
		"truncated payload": {0x82, 8, 0, 0, 0, 1, 2, 3},
		"all-ones junk":     bytes.Repeat([]byte{0xff}, 64),
	}
	for name, in := range cases {
		if _, _, err := ReadFrame(bytes.NewReader(in)); !errors.Is(err, ErrProto) {
			t.Errorf("%s: err = %v, want ErrProto", name, err)
		}
	}
}

// TestWriteFrameOversize: an oversized payload is rejected before any
// bytes hit the wire.
func TestWriteFrameOversize(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameSig, make([]byte, MaxPayload+1)); !errors.Is(err, ErrProto) {
		t.Fatalf("err = %v, want ErrProto", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes written for rejected frame", buf.Len())
	}
}

// TestCodecRoundTrips: every payload codec is lossless.
func TestCodecRoundTrips(t *testing.T) {
	v, err := decodeHello(encodeHello())
	if err != nil || v != ProtoVersion {
		t.Fatalf("hello round trip = (%d, %v)", v, err)
	}

	info := Info{Proto: ProtoVersion, Caps: CapFP | CapTrap, Name: "spike-adapter", Version: "1.2.3"}
	got, err := decodeHelloOK(encodeHelloOK(info))
	if err != nil || !reflect.DeepEqual(got, info) {
		t.Fatalf("helloOK round trip = (%+v, %v), want %+v", got, err, info)
	}

	req := RunRequest{Family: 1, Config: "RV32IMC", Code: []byte{1, 2, 3, 4}}
	gotReq, err := decodeRun(encodeRun(req))
	if err != nil || !reflect.DeepEqual(gotReq, req) {
		t.Fatalf("run round trip = (%+v, %v), want %+v", gotReq, err, req)
	}

	sig := RunResult{Signature: []uint32{0, 1, 0xdeadbeef}, Insts: 7, Traps: 2}
	gotSig, err := decodeSig(encodeSig(sig))
	if err != nil || !reflect.DeepEqual(gotSig, sig) {
		t.Fatalf("sig round trip = (%+v, %v), want %+v", gotSig, err, sig)
	}
	empty := RunResult{Signature: []uint32{}}
	gotEmpty, err := decodeSig(encodeSig(empty))
	if err != nil || len(gotEmpty.Signature) != 0 {
		t.Fatalf("empty sig round trip = (%+v, %v)", gotEmpty, err)
	}

	fault := RunResult{Crashed: true, Msg: "decoder panic", Insts: 3, Traps: 1}
	gotFault, err := decodeFault(encodeFault(fault))
	if err != nil || !reflect.DeepEqual(gotFault, fault) {
		t.Fatalf("fault round trip = (%+v, %v), want %+v", gotFault, err, fault)
	}
	to := RunResult{TimedOut: true, Insts: 20000}
	gotTO, err := decodeFault(encodeFault(to))
	if err != nil || !reflect.DeepEqual(gotTO, to) {
		t.Fatalf("timeout round trip = (%+v, %v), want %+v", gotTO, err, to)
	}

	msg, err := decodeErr(encodeErr("unsupported config"))
	if err != nil || msg != "unsupported config" {
		t.Fatalf("err round trip = (%q, %v)", msg, err)
	}
}

// TestCodecMalformed: truncated or inconsistent payloads are ErrProto.
func TestCodecMalformed(t *testing.T) {
	if _, err := decodeHelloOK([]byte{1, 0}); !errors.Is(err, ErrProto) {
		t.Errorf("short helloOK: %v", err)
	}
	long := encodeHelloOK(Info{Proto: 1, Name: "x", Version: "y"})
	if _, err := decodeHelloOK(append(long, 0)); !errors.Is(err, ErrProto) {
		t.Errorf("trailing helloOK bytes: %v", err)
	}
	if _, err := decodeRun([]byte{0, 5, 'a'}); !errors.Is(err, ErrProto) {
		t.Errorf("truncated run config: %v", err)
	}
	sig := encodeSig(RunResult{Signature: []uint32{1, 2}})
	if _, err := decodeSig(sig[:len(sig)-2]); !errors.Is(err, ErrProto) {
		t.Errorf("truncated sig words: %v", err)
	}
	if _, err := decodeFault([]byte{9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}); !errors.Is(err, ErrProto) {
		t.Errorf("unknown fault kind: %v", err)
	}
}

// stubHandler serves canned results for the serve-loop test.
type stubHandler struct {
	res RunResult
	err error
}

func (h stubHandler) Info() Info { return Info{Caps: CapTrap, Name: "stub", Version: "test"} }
func (h stubHandler) Run(req RunRequest) (RunResult, error) {
	if h.err != nil {
		return RunResult{}, h.err
	}
	res := h.res
	// Echo the code length so the test can see the request arrived intact.
	res.Insts = uint64(len(req.Code))
	return res, nil
}

// serveExchange runs one scripted harness-side conversation against
// Serve over in-memory pipes and returns the responses.
func serveExchange(t *testing.T, h Handler, script func(w io.Writer)) []frameMsg {
	t.Helper()
	hr, hw := io.Pipe() // harness → adapter
	ar, aw := io.Pipe() // adapter → harness
	done := make(chan error, 1)
	go func() { done <- Serve(hr, aw, h, ServeOpts{}); aw.Close() }()
	go func() { script(hw); hw.Close() }()
	var out []frameMsg
	for {
		typ, payload, err := ReadFrame(ar)
		if err != nil {
			if err != io.EOF {
				t.Errorf("harness read: %v", err)
			}
			break
		}
		out = append(out, frameMsg{typ: typ, payload: payload})
	}
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	return out
}

// TestServeLoop: handshake, ping, run (signature, modeled fault, and
// adapter error), shutdown.
func TestServeLoop(t *testing.T) {
	frames := serveExchange(t, stubHandler{res: RunResult{Signature: []uint32{7}}}, func(w io.Writer) {
		WriteFrame(w, FrameHello, encodeHello())
		WriteFrame(w, FramePing, nil)
		WriteFrame(w, FrameRun, encodeRun(RunRequest{Config: "RV32I", Code: []byte{1, 2}}))
		WriteFrame(w, FrameShutdown, nil)
	})
	if len(frames) != 3 {
		t.Fatalf("got %d response frames, want 3", len(frames))
	}
	info, err := decodeHelloOK(frames[0].payload)
	if frames[0].typ != FrameHelloOK || err != nil || info.Name != "stub" || info.Proto != ProtoVersion {
		t.Fatalf("handshake response = %s %+v (%v)", frameName(frames[0].typ), info, err)
	}
	if frames[1].typ != FramePong {
		t.Fatalf("ping response = %s", frameName(frames[1].typ))
	}
	res, err := decodeSig(frames[2].payload)
	if frames[2].typ != FrameSig || err != nil || res.Insts != 2 || len(res.Signature) != 1 {
		t.Fatalf("run response = %s %+v (%v)", frameName(frames[2].typ), res, err)
	}
}

// TestServeModeledFault: Crashed/TimedOut results travel as FAULT frames.
func TestServeModeledFault(t *testing.T) {
	frames := serveExchange(t, stubHandler{res: RunResult{Crashed: true, Msg: "boom"}}, func(w io.Writer) {
		WriteFrame(w, FrameRun, encodeRun(RunRequest{Config: "RV32I"}))
	})
	if len(frames) != 1 || frames[0].typ != FrameFault {
		t.Fatalf("frames = %v", frames)
	}
	res, err := decodeFault(frames[0].payload)
	if err != nil || !res.Crashed || res.Msg != "boom" {
		t.Fatalf("fault = %+v (%v)", res, err)
	}
}

// TestServeHandlerError: a handler error becomes an ERR frame and the
// loop keeps serving.
func TestServeHandlerError(t *testing.T) {
	frames := serveExchange(t, stubHandler{err: errors.New("config not built")}, func(w io.Writer) {
		WriteFrame(w, FrameRun, encodeRun(RunRequest{Config: "RV99"}))
		WriteFrame(w, FramePing, nil)
	})
	if len(frames) != 2 || frames[0].typ != FrameErr || frames[1].typ != FramePong {
		t.Fatalf("frames = %v", frames)
	}
	msg, err := decodeErr(frames[0].payload)
	if err != nil || !strings.Contains(msg, "config not built") {
		t.Fatalf("err payload = (%q, %v)", msg, err)
	}
}

// TestServeVersionMismatch: a HELLO with the wrong version gets an
// in-protocol ERR and the serve loop exits with an error.
func TestServeVersionMismatch(t *testing.T) {
	hr, hw := io.Pipe()
	ar, aw := io.Pipe()
	done := make(chan error, 1)
	go func() { done <- Serve(hr, aw, stubHandler{}, ServeOpts{}); aw.Close() }()
	go func() {
		WriteFrame(hw, FrameHello, []byte{99, 0})
		hw.Close()
	}()
	typ, payload, err := ReadFrame(ar)
	if err != nil || typ != FrameErr {
		t.Fatalf("response = %s (%v)", frameName(typ), err)
	}
	msg, _ := decodeErr(payload)
	if !strings.Contains(msg, "version") {
		t.Fatalf("mismatch message = %q", msg)
	}
	io.Copy(io.Discard, ar)
	if err := <-done; err == nil {
		t.Fatal("serve accepted a wrong-version handshake")
	}
}
