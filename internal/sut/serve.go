package sut

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"syscall"
)

// Handler implements the target side of the adapter protocol: identity
// for the handshake plus one test-case execution per RUN frame. A
// returned error becomes an ERR frame — an adapter-level refusal (e.g.
// unsupported configuration), never a modeled finding; modeled
// crash/timeout verdicts travel inside RunResult.
type Handler interface {
	Info() Info
	Run(req RunRequest) (RunResult, error)
}

// Misbehave selects a deliberate protocol violation for the reference
// adapter's fault-injection mode — the subprocess counterpart of
// sim.Faulty, so every isolation path of the harness (watchdog kill,
// restart loop, garbage rejection, truncation handling) can be exercised
// end to end against a process that actually misbehaves.
type Misbehave string

const (
	// MisbehaveNone serves the protocol faithfully.
	MisbehaveNone Misbehave = ""
	// MisbehaveHang never answers the RUN frame (wedge; only the
	// harness's wall-clock watchdog can recover).
	MisbehaveHang Misbehave = "hang"
	// MisbehaveCrash exits with a nonzero status instead of answering.
	MisbehaveCrash Misbehave = "crash"
	// MisbehaveKill SIGKILLs itself instead of answering — exactly what
	// an operator's `kill -9` mid-campaign looks like to the harness.
	MisbehaveKill Misbehave = "kill"
	// MisbehaveGarbage writes bytes that parse as no frame.
	MisbehaveGarbage Misbehave = "garbage"
	// MisbehaveTruncate writes a SIG frame header whose payload is cut
	// short, then exits.
	MisbehaveTruncate Misbehave = "truncate"
)

// ParseMisbehave validates a mode name from a CLI flag.
func ParseMisbehave(s string) (Misbehave, error) {
	switch m := Misbehave(s); m {
	case MisbehaveNone, MisbehaveHang, MisbehaveCrash, MisbehaveKill, MisbehaveGarbage, MisbehaveTruncate:
		return m, nil
	}
	return MisbehaveNone, fmt.Errorf("sut: unknown misbehave mode %q (hang|crash|kill|garbage|truncate)", s)
}

// ServeOpts configures the serve loop's fault-injection mode.
type ServeOpts struct {
	// Misbehave selects the violation; MisbehaveNone serves faithfully.
	Misbehave Misbehave
	// After is the 0-based RUN index (within this process) at which the
	// misbehaviour starts; earlier runs are served faithfully. A fresh
	// process restarts the count — a restarted adapter with After > 0
	// heals until it reaches the threshold again.
	After int
}

// Serve speaks the adapter side of the protocol over (r, w) until a
// SHUTDOWN frame, EOF (harness hung up), or a protocol violation by the
// peer. Run requests are dispatched to h one at a time; the loop is
// strictly sequential, matching the harness's one-request-in-flight
// discipline.
func Serve(r io.Reader, w io.Writer, h Handler, opts ServeOpts) error {
	br := bufio.NewReader(r)
	bw := bufio.NewWriter(w)
	runs := 0
	for {
		typ, payload, err := ReadFrame(br)
		if err != nil {
			if err == io.EOF {
				return nil // harness closed our stdin: orderly exit
			}
			return err
		}
		switch typ {
		case FrameHello:
			version, err := decodeHello(payload)
			if err != nil {
				return respondFlush(bw, FrameErr, encodeErr(err.Error()))
			}
			if version != ProtoVersion {
				// Reply in-protocol so the harness can print a precise
				// version-mismatch error instead of "garbage".
				if err := respondFlush(bw, FrameErr, encodeErr(fmt.Sprintf("unsupported protocol version %d (adapter speaks %d)", version, ProtoVersion))); err != nil {
					return err
				}
				return fmt.Errorf("sut: handshake version mismatch (peer %d)", version)
			}
			info := h.Info()
			info.Proto = ProtoVersion
			if err := respondFlush(bw, FrameHelloOK, encodeHelloOK(info)); err != nil {
				return err
			}
		case FramePing:
			if err := respondFlush(bw, FramePong, nil); err != nil {
				return err
			}
		case FrameShutdown:
			return nil
		case FrameRun:
			idx := runs
			runs++
			if opts.Misbehave != MisbehaveNone && idx >= opts.After {
				if err := misbehave(bw, opts.Misbehave); err != nil {
					return err
				}
				continue
			}
			req, err := decodeRun(payload)
			if err != nil {
				return respondFlush(bw, FrameErr, encodeErr(err.Error()))
			}
			res, err := h.Run(req)
			switch {
			case err != nil:
				err = respondFlush(bw, FrameErr, encodeErr(err.Error()))
			case res.Crashed || res.TimedOut:
				err = respondFlush(bw, FrameFault, encodeFault(res))
			default:
				err = respondFlush(bw, FrameSig, encodeSig(res))
			}
			if err != nil {
				return err
			}
		default:
			if err := respondFlush(bw, FrameErr, encodeErr(fmt.Sprintf("unexpected frame %s", frameName(typ)))); err != nil {
				return err
			}
			return protoErrf("unexpected frame %s from harness", frameName(typ))
		}
	}
}

func respondFlush(bw *bufio.Writer, typ byte, payload []byte) error {
	if err := WriteFrame(bw, typ, payload); err != nil {
		return err
	}
	return bw.Flush()
}

// misbehave performs the selected protocol violation in place of a RUN
// response. Some modes do not return.
func misbehave(bw *bufio.Writer, m Misbehave) error {
	switch m {
	case MisbehaveHang:
		select {} // wedge until the harness kills us
	case MisbehaveCrash:
		os.Exit(3)
	case MisbehaveKill:
		_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
		select {} // unreachable; SIGKILL is not deliverable to ourselves synchronously on all kernels
	case MisbehaveGarbage:
		// No valid frame starts with 0xff, and the declared length is
		// far beyond MaxPayload — the harness must classify this as
		// protocol garbage, not wait for more bytes.
		junk := make([]byte, 64)
		for i := range junk {
			junk[i] = 0xff
		}
		if _, err := bw.Write(junk); err != nil {
			return err
		}
		return bw.Flush()
	case MisbehaveTruncate:
		// A SIG header promising 32 words, followed by half of them,
		// followed by process exit: a truncated signature mid-frame.
		res := RunResult{Signature: make([]uint32, 32)}
		payload := encodeSig(res)
		var hdr [5]byte
		hdr[0] = FrameSig
		hdr[1] = byte(len(payload))
		hdr[2] = byte(len(payload) >> 8)
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := bw.Write(payload[:len(payload)/2]); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		os.Exit(0)
	}
	return nil
}
