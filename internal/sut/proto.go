// Package sut is the out-of-process SUT adapter layer: a versioned,
// length-prefixed binary protocol spoken over a subprocess's
// stdin/stdout, the harness-side Adapter that owns the subprocess's full
// lifecycle (spawn, handshake deadline, per-run watchdog, kill-and-
// restart with jittered exponential backoff, bounded per-case retries,
// bounded stderr capture), and the adapter-side Serve loop that lets any
// Go program join the comparison fleet next to the built-in behavioural
// variants.
//
// The protocol is deliberately tiny — see DESIGN.md §16 for the precise
// frame layout a third-party adapter must implement. Everything the
// harness compares flows through two frames: RUN carries (family,
// config, code bytes) to the adapter, SIG carries the signature words
// back. Modeled faults (the target crashed or did not terminate — the
// findings negative testing exists to take) travel as FAULT frames and
// are kept strictly separate from adapter-level failures (EOF, garbage,
// wedges), which the harness heals by restarting and, past its retry
// budget, surfaces as skipped cases rather than verdicts.
package sut

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ProtoVersion is the wire protocol version this package speaks. The
// handshake rejects any other version: v1 has no compatibility rules to
// negotiate yet, and failing loudly beats silently mis-parsing frames.
const ProtoVersion = 1

// Frame types. Harness→adapter types have the high bit clear,
// adapter→harness responses have it set.
const (
	FrameHello    byte = 0x01 // harness → adapter: u16 protocol version
	FrameRun      byte = 0x02 // harness → adapter: one test-case execution
	FramePing     byte = 0x03 // harness → adapter: liveness probe, empty
	FrameShutdown byte = 0x04 // harness → adapter: clean exit request, empty

	FrameHelloOK byte = 0x81 // adapter → harness: version/name/capabilities
	FrameSig     byte = 0x82 // adapter → harness: signature words
	FrameFault   byte = 0x83 // adapter → harness: modeled crash/timeout
	FramePong    byte = 0x84 // adapter → harness: liveness reply, empty
	FrameErr     byte = 0x85 // adapter → harness: adapter-level error text
)

// frameName renders a frame type for fault context ("last frame" in
// quarantine details).
func frameName(t byte) string {
	switch t {
	case FrameHello:
		return "HELLO"
	case FrameRun:
		return "RUN"
	case FramePing:
		return "PING"
	case FrameShutdown:
		return "SHUTDOWN"
	case FrameHelloOK:
		return "HELLO-OK"
	case FrameSig:
		return "SIG"
	case FrameFault:
		return "FAULT"
	case FramePong:
		return "PONG"
	case FrameErr:
		return "ERR"
	}
	return fmt.Sprintf("0x%02x", t)
}

// MaxPayload bounds a frame's payload. Signatures are a few hundred
// bytes and test cases a few dozen; a length field beyond this is
// protocol garbage, not a big message.
const MaxPayload = 1 << 20

// Capability bits advertised in the HELLO-OK frame.
const (
	// CapFP: the target implements the F/D extensions; without it the
	// harness renders "/" for floating-point configurations, exactly like
	// a built-in NoFD variant.
	CapFP uint64 = 1 << 0
	// CapTrap: the target implements the trap-rich template family
	// (machine-mode trap-record signature region).
	CapTrap uint64 = 1 << 1
)

// Info is the adapter's identity from the handshake.
type Info struct {
	Proto   uint16
	Caps    uint64
	Name    string
	Version string
}

// RunRequest is one decoded RUN frame.
type RunRequest struct {
	// Family is the template family (0 user, 1 trap), matching
	// template.Family's wire-stable values.
	Family byte
	// Config is the ISA configuration string, e.g. "RV32IMC".
	Config string
	// Code is the raw test-case bytestream.
	Code []byte
}

// RunResult is the adapter's answer to a RUN frame: either a signature
// or a modeled fault (the target's own crash/non-termination verdict).
type RunResult struct {
	Signature []uint32
	Crashed   bool
	TimedOut  bool
	Msg       string // crash detail (FAULT frames only)
	Insts     uint64 // retired instructions (telemetry)
	Traps     uint64 // traps taken (telemetry)
}

// ErrProto marks protocol-garbage conditions (malformed frames,
// oversized lengths, truncated payloads); the harness responds by
// killing and restarting the adapter.
var ErrProto = errors.New("sut: protocol error")

func protoErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrProto, fmt.Sprintf(format, args...))
}

// WriteFrame emits one frame: type byte, u32 little-endian payload
// length, payload.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxPayload {
		return protoErrf("oversized %s payload (%d bytes)", frameName(typ), len(payload))
	}
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame. A malformed header or a truncated payload
// is an ErrProto; a clean EOF before the first header byte is io.EOF.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return 0, nil, err // io.EOF: orderly close between frames
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return 0, nil, protoErrf("truncated frame header: %v", err)
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > MaxPayload {
		return 0, nil, protoErrf("frame %s declares %d-byte payload (max %d)", frameName(hdr[0]), n, MaxPayload)
	}
	if n > 0 {
		payload = make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return 0, nil, protoErrf("truncated %s payload: %v", frameName(hdr[0]), err)
		}
	}
	return hdr[0], payload, nil
}

// --- payload codecs ---
//
// All multi-byte integers are little-endian. Strings and byte blobs are
// length-prefixed; string lengths are u8 (identity fields) or u16
// (messages), code blobs u32.

func appendString8(b []byte, s string) []byte {
	if len(s) > 255 {
		s = s[:255]
	}
	return append(append(b, byte(len(s))), s...)
}

func encodeHello() []byte {
	return binary.LittleEndian.AppendUint16(nil, ProtoVersion)
}

func decodeHello(p []byte) (version uint16, err error) {
	if len(p) != 2 {
		return 0, protoErrf("HELLO payload is %d bytes, want 2", len(p))
	}
	return binary.LittleEndian.Uint16(p), nil
}

func encodeHelloOK(info Info) []byte {
	b := binary.LittleEndian.AppendUint16(nil, info.Proto)
	b = binary.LittleEndian.AppendUint64(b, info.Caps)
	b = appendString8(b, info.Name)
	b = appendString8(b, info.Version)
	return b
}

func decodeHelloOK(p []byte) (Info, error) {
	var info Info
	if len(p) < 10 {
		return info, protoErrf("HELLO-OK payload is %d bytes, want >= 10", len(p))
	}
	info.Proto = binary.LittleEndian.Uint16(p)
	info.Caps = binary.LittleEndian.Uint64(p[2:])
	rest := p[10:]
	var err error
	if info.Name, rest, err = takeString8(rest, "HELLO-OK name"); err != nil {
		return info, err
	}
	if info.Version, rest, err = takeString8(rest, "HELLO-OK version"); err != nil {
		return info, err
	}
	if len(rest) != 0 {
		return info, protoErrf("HELLO-OK has %d trailing bytes", len(rest))
	}
	return info, nil
}

func takeString8(p []byte, what string) (string, []byte, error) {
	if len(p) < 1 {
		return "", nil, protoErrf("%s length missing", what)
	}
	n := int(p[0])
	if len(p) < 1+n {
		return "", nil, protoErrf("%s truncated (%d of %d bytes)", what, len(p)-1, n)
	}
	return string(p[1 : 1+n]), p[1+n:], nil
}

func encodeRun(req RunRequest) []byte {
	b := []byte{req.Family}
	b = appendString8(b, req.Config)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(req.Code)))
	return append(b, req.Code...)
}

func decodeRun(p []byte) (RunRequest, error) {
	var req RunRequest
	if len(p) < 1 {
		return req, protoErrf("empty RUN payload")
	}
	req.Family = p[0]
	var err error
	var rest []byte
	if req.Config, rest, err = takeString8(p[1:], "RUN config"); err != nil {
		return req, err
	}
	if len(rest) < 4 {
		return req, protoErrf("RUN code length missing")
	}
	n := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	if uint32(len(rest)) != n {
		return req, protoErrf("RUN code truncated (%d of %d bytes)", len(rest), n)
	}
	req.Code = rest
	return req, nil
}

func encodeSig(res RunResult) []byte {
	b := binary.LittleEndian.AppendUint64(nil, res.Insts)
	b = binary.LittleEndian.AppendUint64(b, res.Traps)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(res.Signature)))
	for _, w := range res.Signature {
		b = binary.LittleEndian.AppendUint32(b, w)
	}
	return b
}

func decodeSig(p []byte) (RunResult, error) {
	var res RunResult
	if len(p) < 20 {
		return res, protoErrf("SIG payload is %d bytes, want >= 20", len(p))
	}
	res.Insts = binary.LittleEndian.Uint64(p)
	res.Traps = binary.LittleEndian.Uint64(p[8:])
	n := binary.LittleEndian.Uint32(p[16:])
	words := p[20:]
	if uint32(len(words)) != 4*n {
		return res, protoErrf("SIG declares %d words but carries %d bytes", n, len(words))
	}
	res.Signature = make([]uint32, n)
	for i := range res.Signature {
		res.Signature[i] = binary.LittleEndian.Uint32(words[4*i:])
	}
	return res, nil
}

// Modeled-fault kinds carried in FAULT frames.
const (
	faultCrashed  byte = 1
	faultTimedOut byte = 2
)

func encodeFault(res RunResult) []byte {
	kind := faultCrashed
	if res.TimedOut {
		kind = faultTimedOut
	}
	b := []byte{kind}
	b = binary.LittleEndian.AppendUint64(b, res.Insts)
	b = binary.LittleEndian.AppendUint64(b, res.Traps)
	msg := res.Msg
	if len(msg) > 1<<12 {
		msg = msg[:1<<12] // a panic message, not a core dump
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(msg)))
	return append(b, msg...)
}

func decodeFault(p []byte) (RunResult, error) {
	var res RunResult
	if len(p) < 19 {
		return res, protoErrf("FAULT payload is %d bytes, want >= 19", len(p))
	}
	switch p[0] {
	case faultCrashed:
		res.Crashed = true
	case faultTimedOut:
		res.TimedOut = true
	default:
		return res, protoErrf("FAULT kind %d unknown", p[0])
	}
	res.Insts = binary.LittleEndian.Uint64(p[1:])
	res.Traps = binary.LittleEndian.Uint64(p[9:])
	n := binary.LittleEndian.Uint16(p[17:])
	if len(p) != 19+int(n) {
		return res, protoErrf("FAULT message truncated (%d of %d bytes)", len(p)-19, n)
	}
	res.Msg = string(p[19:])
	return res, nil
}

func encodeErr(msg string) []byte {
	if len(msg) > 1<<12 {
		msg = msg[:1<<12]
	}
	b := binary.LittleEndian.AppendUint16(nil, uint16(len(msg)))
	return append(b, msg...)
}

func decodeErr(p []byte) (string, error) {
	if len(p) < 2 {
		return "", protoErrf("ERR payload is %d bytes, want >= 2", len(p))
	}
	n := binary.LittleEndian.Uint16(p)
	if len(p) != 2+int(n) {
		return "", protoErrf("ERR message truncated (%d of %d bytes)", len(p)-2, n)
	}
	return string(p[2:]), nil
}
