package sut

import (
	"fmt"

	"rvnegtest/internal/isa"
	"rvnegtest/internal/sim"
	"rvnegtest/internal/template"
)

// SimHandler serves a built-in simulator variant over the adapter
// protocol — the reference adapter implementation. Wrapping the
// in-process models gives an external SUT whose signatures are known
// to be byte-identical to the in-process columns, which is exactly what
// the protocol conformance tests and the CI smoke need: any divergence
// between the two paths is a harness bug, not a simulator finding.
//
// Simulators are built lazily per (family, config) pair and cached for
// the life of the process; the serve loop is sequential, so no locking.
type SimHandler struct {
	Variant *sim.Variant
	// Version is reported in the handshake; defaults to "builtin".
	Version string

	sims map[simKey]*sim.Simulator
}

type simKey struct {
	family byte
	config string
}

// NewSimHandler wraps a variant for serving.
func NewSimHandler(v *sim.Variant) *SimHandler {
	return &SimHandler{Variant: v, sims: make(map[simKey]*sim.Simulator)}
}

// Info describes the wrapped variant for the handshake.
func (h *SimHandler) Info() Info {
	version := h.Version
	if version == "" {
		version = "builtin"
	}
	caps := uint64(CapTrap)
	if !h.Variant.NoFD {
		caps |= CapFP
	}
	return Info{Caps: caps, Name: h.Variant.Name, Version: version}
}

// Run executes one test case. An unsupported or unparsable configuration
// is an adapter-level error (ERR frame); modeled crash/timeout outcomes
// travel in the RunResult as findings.
func (h *SimHandler) Run(req RunRequest) (RunResult, error) {
	s, err := h.simFor(req)
	if err != nil {
		return RunResult{}, err
	}
	out := s.Run(req.Code)
	return RunResult{
		Signature: out.Signature,
		Crashed:   out.Crashed,
		TimedOut:  out.TimedOut,
		Msg:       out.CrashMsg,
		Insts:     out.Insts,
		Traps:     out.Traps,
	}, nil
}

func (h *SimHandler) simFor(req RunRequest) (*sim.Simulator, error) {
	key := simKey{family: req.Family, config: req.Config}
	if s, ok := h.sims[key]; ok {
		return s, nil
	}
	cfg, err := isa.ParseConfig(req.Config)
	if err != nil {
		return nil, fmt.Errorf("config %q: %v", req.Config, err)
	}
	if req.Family > byte(template.FamilyTrap) {
		return nil, fmt.Errorf("unknown template family %d", req.Family)
	}
	p := template.PlatformFor(template.Family(req.Family), cfg)
	s, err := sim.New(h.Variant, p)
	if err != nil {
		return nil, err
	}
	h.sims[key] = s
	return s, nil
}
