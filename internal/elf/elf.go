// Package elf provides a minimal ELF32 (RISC-V, little-endian) executable
// writer and loader: just enough of the format for the compliance flow to
// pre-compile the test-case template into an ELF, load it into simulator
// memory and exchange test binaries between tools, mirroring how the
// paper's setup compiles each test case per platform.
package elf

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rvnegtest/internal/asm"
	"rvnegtest/internal/mem"
)

const (
	headerSize = 52
	phentSize  = 32

	machineRISCV = 243
	typeExec     = 2
	ptLoad       = 1
)

// Segment is one loadable region of an executable image.
type Segment struct {
	Addr  uint32
	Data  []byte
	Flags uint32 // PF_X|PF_W|PF_R bits
}

// Image is a parsed (or to-be-written) executable.
type Image struct {
	Entry    uint32
	Segments []Segment
}

// FromProgram converts an assembled program into an image with an
// executable text segment and a writable data segment.
func FromProgram(p *asm.Program) *Image {
	img := &Image{Entry: p.Entry}
	if len(p.Text.Data) > 0 {
		img.Segments = append(img.Segments, Segment{Addr: p.Text.Addr, Data: p.Text.Data, Flags: 0x5})
	}
	if len(p.Data.Data) > 0 {
		img.Segments = append(img.Segments, Segment{Addr: p.Data.Addr, Data: p.Data.Data, Flags: 0x6})
	}
	return img
}

// Write serializes the image as an ELF32 executable.
func (img *Image) Write() []byte {
	n := len(img.Segments)
	phoff := uint32(headerSize)
	dataOff := phoff + uint32(n*phentSize)

	var buf []byte
	le := binary.LittleEndian
	w32 := func(v uint32) { buf = le.AppendUint32(buf, v) }
	w16 := func(v uint16) { buf = le.AppendUint16(buf, v) }

	// e_ident
	buf = append(buf, 0x7f, 'E', 'L', 'F', 1 /*ELFCLASS32*/, 1 /*ELFDATA2LSB*/, 1 /*EV_CURRENT*/)
	buf = append(buf, make([]byte, 9)...)
	w16(typeExec)
	w16(machineRISCV)
	w32(1) // e_version
	w32(img.Entry)
	w32(phoff)
	w32(0) // e_shoff
	w32(1) // e_flags: EF_RISCV_RVC
	w16(headerSize)
	w16(phentSize)
	w16(uint16(n))
	w16(40) // e_shentsize
	w16(0)  // e_shnum
	w16(0)  // e_shstrndx

	off := dataOff
	for _, s := range img.Segments {
		w32(ptLoad)
		w32(off)
		w32(s.Addr) // vaddr
		w32(s.Addr) // paddr
		w32(uint32(len(s.Data)))
		w32(uint32(len(s.Data)))
		w32(s.Flags)
		w32(4) // align
		off += uint32(len(s.Data))
	}
	for _, s := range img.Segments {
		buf = append(buf, s.Data...)
	}
	return buf
}

// ErrBadELF reports a malformed or unsupported ELF file.
var ErrBadELF = errors.New("elf: malformed or unsupported file")

// Parse reads an ELF32 executable produced by Write (or a compatible
// RISC-V ELF32 with simple PT_LOAD segments).
func Parse(b []byte) (*Image, error) {
	if len(b) < headerSize || b[0] != 0x7f || b[1] != 'E' || b[2] != 'L' || b[3] != 'F' {
		return nil, fmt.Errorf("%w: bad magic", ErrBadELF)
	}
	if b[4] != 1 || b[5] != 1 {
		return nil, fmt.Errorf("%w: not ELF32 little-endian", ErrBadELF)
	}
	le := binary.LittleEndian
	if le.Uint16(b[18:]) != machineRISCV {
		return nil, fmt.Errorf("%w: not a RISC-V binary", ErrBadELF)
	}
	img := &Image{Entry: le.Uint32(b[24:])}
	phoff := le.Uint32(b[28:])
	phentsize := le.Uint16(b[42:])
	phnum := le.Uint16(b[44:])
	if phentsize < phentSize {
		return nil, fmt.Errorf("%w: bad phentsize", ErrBadELF)
	}
	for i := 0; i < int(phnum); i++ {
		off := int(phoff) + i*int(phentsize)
		if off+phentSize > len(b) {
			return nil, fmt.Errorf("%w: program header out of range", ErrBadELF)
		}
		ph := b[off:]
		if le.Uint32(ph) != ptLoad {
			continue
		}
		fileOff := le.Uint32(ph[4:])
		vaddr := le.Uint32(ph[8:])
		filesz := le.Uint32(ph[16:])
		flags := le.Uint32(ph[24:])
		if int(fileOff)+int(filesz) > len(b) {
			return nil, fmt.Errorf("%w: segment data out of range", ErrBadELF)
		}
		data := make([]byte, filesz)
		copy(data, b[fileOff:fileOff+filesz])
		img.Segments = append(img.Segments, Segment{Addr: vaddr, Data: data, Flags: flags})
	}
	return img, nil
}

// LoadInto copies all segments into memory and returns the entry point.
func (img *Image) LoadInto(m *mem.Memory) (uint32, error) {
	for _, s := range img.Segments {
		if err := m.LoadImage(s.Addr, s.Data); err != nil {
			return 0, fmt.Errorf("elf: segment at %#x: %w", s.Addr, err)
		}
	}
	return img.Entry, nil
}
