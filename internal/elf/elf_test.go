package elf

import (
	"testing"

	"rvnegtest/internal/asm"
	"rvnegtest/internal/mem"
)

func testImage() *Image {
	return &Image{
		Entry: 0x40,
		Segments: []Segment{
			{Addr: 0x0, Data: []byte{1, 2, 3, 4, 5}, Flags: 0x5},
			{Addr: 0x4000, Data: []byte{9, 8, 7}, Flags: 0x6},
		},
	}
}

func TestWriteParseRoundtrip(t *testing.T) {
	img := testImage()
	raw := img.Write()
	back, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Entry != img.Entry || len(back.Segments) != 2 {
		t.Fatalf("roundtrip: entry=%#x segments=%d", back.Entry, len(back.Segments))
	}
	for i, s := range back.Segments {
		want := img.Segments[i]
		if s.Addr != want.Addr || s.Flags != want.Flags || string(s.Data) != string(want.Data) {
			t.Errorf("segment %d: %+v, want %+v", i, s, want)
		}
	}
}

func TestHeaderFields(t *testing.T) {
	raw := testImage().Write()
	if raw[0] != 0x7f || raw[1] != 'E' || raw[2] != 'L' || raw[3] != 'F' {
		t.Error("bad magic")
	}
	if raw[4] != 1 || raw[5] != 1 {
		t.Error("not ELF32 LE")
	}
	if raw[18] != 243 { // EM_RISCV low byte
		t.Errorf("machine = %d", raw[18])
	}
	if raw[16] != 2 { // ET_EXEC
		t.Errorf("type = %d", raw[16])
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range [][]byte{
		nil,
		[]byte("hello"),
		make([]byte, 100), // zero magic
		append([]byte{0x7f, 'E', 'L', 'F', 2, 1, 1}, make([]byte, 60)...), // ELF64
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%d bytes) must fail", len(bad))
		}
	}
	// Corrupt machine field.
	raw := testImage().Write()
	raw[18] = 0x3e // EM_X86_64
	if _, err := Parse(raw); err == nil {
		t.Error("wrong machine must fail")
	}
	// Truncated segment data.
	raw = testImage().Write()
	if _, err := Parse(raw[:len(raw)-3]); err == nil {
		t.Error("truncated file must fail")
	}
}

func TestLoadInto(t *testing.T) {
	m := mem.New(0, 0x8000)
	entry, err := testImage().LoadInto(m)
	if err != nil {
		t.Fatal(err)
	}
	if entry != 0x40 {
		t.Errorf("entry = %#x", entry)
	}
	if b, _ := m.Read8(0); b != 1 {
		t.Error("text not loaded")
	}
	if b, _ := m.Read8(0x4002); b != 7 {
		t.Error("data not loaded")
	}
	// Out-of-range segment fails cleanly.
	bad := &Image{Segments: []Segment{{Addr: 0x7fff, Data: []byte{1, 2, 3}}}}
	if _, err := bad.LoadInto(m); err == nil {
		t.Error("out-of-range segment must fail")
	}
}

func TestFromProgram(t *testing.T) {
	p, err := asm.Assemble("nop\n.data\n.word 7\n", asm.Options{TextBase: 0, DataBase: 0x4000})
	if err != nil {
		t.Fatal(err)
	}
	img := FromProgram(p)
	if len(img.Segments) != 2 {
		t.Fatalf("segments = %d", len(img.Segments))
	}
	if img.Segments[0].Flags != 0x5 || img.Segments[1].Flags != 0x6 {
		t.Error("segment flags wrong")
	}
	// Empty data section is omitted.
	p2, _ := asm.Assemble("nop\n", asm.Options{DataBase: 0x4000})
	if len(FromProgram(p2).Segments) != 1 {
		t.Error("empty section must be omitted")
	}
}
