package torture

import (
	"testing"

	"rvnegtest/internal/compliance"
	"rvnegtest/internal/filter"
	"rvnegtest/internal/isa"
)

// TestAllInstructionsValid: the defining property of the positive-testing
// baseline — every emitted word decodes to a valid instruction of the
// target configuration.
func TestAllInstructionsValid(t *testing.T) {
	for _, cfg := range []isa.Config{isa.RV32I, isa.RV32IMC, isa.RV32GC} {
		g := New(7, cfg)
		for c := 0; c < 300; c++ {
			bs, err := g.TestCase(16)
			if err != nil {
				t.Fatal(err)
			}
			if len(bs)%4 != 0 {
				t.Fatalf("%v: unaligned bytestream length %d", cfg, len(bs))
			}
			for pc := 0; pc < len(bs); pc += 4 {
				w := uint32(bs[pc]) | uint32(bs[pc+1])<<8 | uint32(bs[pc+2])<<16 | uint32(bs[pc+3])<<24
				inst := isa.Ref.Decode32(w)
				if inst.Op == isa.OpIllegal {
					t.Fatalf("%v: illegal word %#08x at +%d", cfg, w, pc)
				}
				if !cfg.Has(inst.Info().Ext) {
					t.Fatalf("%v: out-of-config instruction %v", cfg, inst.Op)
				}
			}
		}
	}
}

// TestAllCasesPassFilter: baseline cases go through the same Phase B
// pipeline, so they must be filter-clean.
func TestAllCasesPassFilter(t *testing.T) {
	flt := &filter.Filter{}
	for _, cfg := range []isa.Config{isa.RV32I, isa.RV32GC} {
		g := New(11, cfg)
		for c := 0; c < 500; c++ {
			bs, err := g.TestCase(16)
			if err != nil {
				t.Fatal(err)
			}
			if res := flt.Check(bs); !res.Accepted {
				t.Fatalf("%v case %d rejected: %v (stream %x)", cfg, c, res, bs)
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Suite(3, isa.RV32GC, 50, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Suite(3, isa.RV32GC, 50, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cases) != len(b.Cases) {
		t.Fatal("case counts differ")
	}
	for i := range a.Cases {
		if string(a.Cases[i]) != string(b.Cases[i]) {
			t.Fatalf("case %d differs", i)
		}
	}
}

// TestPositiveTestingMissesNegativeBugs is the E9 experiment at unit
// scale: the torture-style suite finds (almost) none of the seeded
// negative-testing defects — the compliance gap the paper's fuzzer closes.
func TestPositiveTestingMissesNegativeBugs(t *testing.T) {
	// Positive suites are per-extension (like the official compliance
	// suite's sub-suites), so each configuration runs a suite targeting
	// exactly that configuration — unlike the fuzzer's single suite,
	// which is valid for every sub-ISA because illegal instructions must
	// trap.
	total := 0
	for _, cfg := range []isa.Config{isa.RV32I, isa.RV32IMC, isa.RV32GC} {
		suite, err := Suite(5, cfg, 400, 16)
		if err != nil {
			t.Fatal(err)
		}
		r := compliance.DefaultRunner()
		r.Configs = []isa.Config{cfg}
		rep, err := r.Run(suite)
		if err != nil {
			t.Fatal(err)
		}
		for j := range rep.Sims {
			c := rep.Cells[0][j]
			total += c.Mismatches
			if c.Crashes > 0 {
				t.Errorf("%v/%s: positive suite crashed a simulator", cfg, rep.Sims[j])
			}
		}
	}
	// The decoder-oriented defects (loose masks, reserved encodings,
	// custom opcodes, malformed patterns) are untriggerable by valid
	// instructions. The only reachable defect class is GRIFT's SC.W
	// behaviour on failed store-conditionals, which well-formed LR/SC
	// pairs exercise only when the pair straddles a truncation; allow a
	// small residue but require the bulk of the table to be zero.
	if total > 5 {
		t.Errorf("positive suite found %d mismatches; expected (near) zero — the compliance gap", total)
	}
	t.Logf("torture-style suites: %d total mismatches across the whole table (the fuzzer finds thousands)", total)
}

// TestRNGStateResume is the regression test for the serializable-source
// migration: capture RNGState mid-stream, generate a tail, then restore
// the state into a fresh generator and assert the tails are identical.
// Before the migration the generator's rand.NewSource state could not
// be exported, so a kill-and-resume forked the torture stream.
func TestRNGStateResume(t *testing.T) {
	g := New(42, isa.RV32GC)
	for i := 0; i < 10; i++ {
		if _, err := g.TestCase(16); err != nil {
			t.Fatal(err)
		}
	}
	state := g.RNGState()

	var tailA [][]byte
	for i := 0; i < 10; i++ {
		bs, err := g.TestCase(16)
		if err != nil {
			t.Fatal(err)
		}
		tailA = append(tailA, bs)
	}

	g2 := New(0, isa.RV32GC) // different seed: only the restored state matters
	if err := g2.RestoreRNG(state); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		bs, err := g2.TestCase(16)
		if err != nil {
			t.Fatal(err)
		}
		if string(bs) != string(tailA[i]) {
			t.Fatalf("resumed stream diverged at case %d", i)
		}
	}
}
