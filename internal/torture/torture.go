// Package torture implements a baseline test generator in the style of the
// RISC-V Torture Test generator the paper compares against (section II):
// test cases are built by stitching together pre-defined randomized
// sequences of *valid* instructions. It performs positive testing only —
// illegal or reserved encodings are never emitted — which is exactly the
// gap the paper's fuzzing approach closes; the baseline exists so the
// difference is measurable (experiment E9 in EXPERIMENTS.md).
//
// Unlike the real Torture generator, the emitted test cases do use the
// compliance-format template (so they can run through the same Phase B
// harness); the defining property that is preserved is the positive-only
// instruction mix.
package torture

import (
	"fmt"
	"math/rand"

	"rvnegtest/internal/compliance"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/resilience"
)

// Generator produces positive-testing bytestreams for one ISA
// configuration.
type Generator struct {
	rng *rand.Rand
	src *resilience.RNG
	cfg isa.Config
}

// New creates a deterministic generator drawing instructions from the
// given configuration's extensions. The stream is drawn through the
// serializable resilience.RNG (the repo-wide randomness rule rvlint's
// globalrand analyzer enforces), so generator state can ride in a
// checkpoint like the fuzzer's mutation stream does.
func New(seed int64, cfg isa.Config) *Generator {
	src := resilience.NewRNG(seed)
	return &Generator{rng: rand.New(src), src: src, cfg: cfg}
}

// RNGState exposes the generator's source state for checkpointing.
func (g *Generator) RNGState() [4]uint64 { return g.src.State() }

// RestoreRNG replaces the source state with a checkpointed one; the
// subsequent case stream continues bit-identically from the capture
// point.
func (g *Generator) RestoreRNG(s [4]uint64) error { return g.src.Restore(s) }

// reg returns a random register below x30 (x30/x31 are the data-window
// pointers and stay clean for memory sequences).
func (g *Generator) reg() isa.Reg { return isa.Reg(g.rng.Intn(30)) }

// base returns x30 or x31.
func (g *Generator) base() isa.Reg { return isa.Reg(30 + g.rng.Intn(2)) }

// freg returns a random floating-point register.
func (g *Generator) freg() isa.Reg { return isa.Reg(g.rng.Intn(32)) }

// rm returns a random valid static rounding mode.
func (g *Generator) rm() uint8 { return uint8(g.rng.Intn(5)) }

// A snippet appends a randomized predefined sequence.
type snippet func(g *Generator) []isa.Inst

func aluChain(g *Generator) []isa.Inst {
	ops := []isa.Op{isa.OpADD, isa.OpSUB, isa.OpXOR, isa.OpOR, isa.OpAND, isa.OpSLL, isa.OpSRL, isa.OpSRA, isa.OpSLT, isa.OpSLTU}
	n := 1 + g.rng.Intn(3)
	var out []isa.Inst
	for i := 0; i < n; i++ {
		out = append(out, isa.Inst{Op: ops[g.rng.Intn(len(ops))], Rd: g.reg(), Rs1: g.reg(), Rs2: g.reg()})
	}
	return out
}

func immChain(g *Generator) []isa.Inst {
	ops := []isa.Op{isa.OpADDI, isa.OpXORI, isa.OpORI, isa.OpANDI, isa.OpSLTI, isa.OpSLTIU}
	var out []isa.Inst
	out = append(out, isa.Inst{Op: isa.OpLUI, Rd: g.reg(), Imm: int32(g.rng.Uint32() & 0xfffff000)})
	out = append(out, isa.Inst{Op: ops[g.rng.Intn(len(ops))], Rd: g.reg(), Rs1: g.reg(), Imm: int32(g.rng.Intn(4096) - 2048)})
	if g.rng.Intn(2) == 0 {
		out = append(out, isa.Inst{Op: isa.OpSLLI, Rd: g.reg(), Rs1: g.reg(), Imm: int32(g.rng.Intn(32))})
	}
	return out
}

func memPingPong(g *Generator) []isa.Inst {
	b := g.base()
	off := int32((g.rng.Intn(1024) - 512) * 4)
	return []isa.Inst{
		{Op: isa.OpSW, Rs1: b, Rs2: g.reg(), Imm: off},
		{Op: isa.OpLW, Rd: g.reg(), Rs1: b, Imm: off},
		{Op: isa.OpLBU, Rd: g.reg(), Rs1: g.base(), Imm: int32(g.rng.Intn(256) - 128)},
	}
}

func branchSkip(g *Generator) []isa.Inst {
	// A forward branch over one instruction: always in-bounds, loop-free.
	ops := []isa.Op{isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU}
	return []isa.Inst{
		{Op: ops[g.rng.Intn(len(ops))], Rs1: g.reg(), Rs2: g.reg(), Imm: 8},
		{Op: isa.OpADDI, Rd: g.reg(), Rs1: g.reg(), Imm: int32(g.rng.Intn(64))},
	}
}

func mulDiv(g *Generator) []isa.Inst {
	ops := []isa.Op{isa.OpMUL, isa.OpMULH, isa.OpMULHU, isa.OpMULHSU, isa.OpDIV, isa.OpDIVU, isa.OpREM, isa.OpREMU}
	return []isa.Inst{
		{Op: ops[g.rng.Intn(len(ops))], Rd: g.reg(), Rs1: g.reg(), Rs2: g.reg()},
		{Op: ops[g.rng.Intn(len(ops))], Rd: g.reg(), Rs1: g.reg(), Rs2: g.reg()},
	}
}

func atomicPair(g *Generator) []isa.Inst {
	// Positive testing uses well-formed LR/SC pairs and plain AMOs.
	b := g.base()
	amos := []isa.Op{isa.OpAMOSWAPW, isa.OpAMOADDW, isa.OpAMOXORW, isa.OpAMOANDW, isa.OpAMOORW,
		isa.OpAMOMINW, isa.OpAMOMAXW, isa.OpAMOMINUW, isa.OpAMOMAXUW}
	if g.rng.Intn(2) == 0 {
		return []isa.Inst{
			{Op: isa.OpLRW, Rd: g.reg(), Rs1: b},
			{Op: isa.OpSCW, Rd: g.reg(), Rs1: b, Rs2: g.reg()},
		}
	}
	return []isa.Inst{{Op: amos[g.rng.Intn(len(amos))], Rd: g.reg(), Rs1: b, Rs2: g.reg()}}
}

func fpChain(g *Generator) []isa.Inst {
	single := []isa.Op{isa.OpFADDS, isa.OpFSUBS, isa.OpFMULS, isa.OpFDIVS, isa.OpFMINS, isa.OpFMAXS, isa.OpFSGNJS}
	double := []isa.Op{isa.OpFADDD, isa.OpFSUBD, isa.OpFMULD, isa.OpFDIVD, isa.OpFMIND, isa.OpFMAXD, isa.OpFSGNJD}
	ops := single
	if g.cfg.Has(isa.ExtD) && g.rng.Intn(2) == 0 {
		ops = double
	}
	op := ops[g.rng.Intn(len(ops))]
	inst := isa.Inst{Op: op, Rd: g.freg(), Rs1: g.freg(), Rs2: g.freg()}
	if op.Info().Flags.Is(isa.FlagHasRM) {
		inst.RM = g.rm()
	}
	out := []isa.Inst{inst}
	if g.rng.Intn(2) == 0 {
		cmp := []isa.Op{isa.OpFEQS, isa.OpFLTS, isa.OpFLES, isa.OpFCLASSS}
		out = append(out, isa.Inst{Op: cmp[g.rng.Intn(len(cmp))], Rd: g.reg(), Rs1: g.freg(), Rs2: g.freg()})
	}
	return out
}

// snippets returns the sequence pool available for the configuration.
func (g *Generator) snippets() []snippet {
	pool := []snippet{aluChain, immChain, memPingPong, branchSkip}
	if g.cfg.Has(isa.ExtM) {
		pool = append(pool, mulDiv)
	}
	if g.cfg.Has(isa.ExtA) {
		pool = append(pool, atomicPair)
	}
	if g.cfg.Has(isa.ExtF) {
		pool = append(pool, fpChain)
	}
	return pool
}

// TestCase generates one positive test case of at most maxWords
// instructions, encoded as a little-endian bytestream.
func (g *Generator) TestCase(maxWords int) ([]byte, error) {
	pool := g.snippets()
	var insts []isa.Inst
	for len(insts) < maxWords-3 {
		insts = append(insts, pool[g.rng.Intn(len(pool))](g)...)
		if g.rng.Intn(4) == 0 {
			break
		}
	}
	if len(insts) > maxWords {
		insts = insts[:maxWords]
	}
	// Branch targets were chosen for in-sequence positions; truncation
	// could leave a trailing branch pointing past the end, which is still
	// filter-legal (a jump to exactly the end falls through) as long as
	// the skipped slot exists. Ensure it does.
	if n := len(insts); n > 0 && insts[n-1].Op.Flags().Is(isa.FlagBranch) {
		insts = append(insts, isa.Inst{Op: isa.OpADDI, Rd: g.reg()})
	}
	out := make([]byte, 0, len(insts)*4)
	for _, inst := range insts {
		w, err := isa.Encode(inst)
		if err != nil {
			return nil, fmt.Errorf("torture: encoding %s: %w", inst.Op, err)
		}
		out = append(out, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return out, nil
}

// Suite generates a full positive-testing suite.
func Suite(seed int64, cfg isa.Config, cases, maxWords int) (*compliance.Suite, error) {
	g := New(seed, cfg)
	s := &compliance.Suite{
		Origin: fmt.Sprintf("torture-style positive generator seed=%d isa=%v", seed, cfg),
	}
	for i := 0; i < cases; i++ {
		bs, err := g.TestCase(maxWords)
		if err != nil {
			return nil, err
		}
		s.Cases = append(s.Cases, bs)
	}
	return s, nil
}
