package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Event is one structured campaign lifecycle record. Events are written
// as NDJSON (one JSON object per line) with a strictly monotonic
// sequence number and a monotonic-clock timestamp relative to the
// stream's start, so post-hoc tooling can order and interval-analyze
// them without trusting the wall clock.
//
// Established types: campaign_start, corpus_add, crash, quarantine,
// breaker_open, checkpoint, shard_done, cell_done, row_done,
// stage_summary, campaign_done. The field set is a union; producers
// fill what applies.
type Event struct {
	Seq  uint64 `json:"seq"`
	TNS  int64  `json:"t_ns"` // monotonic ns since the stream opened
	Type string `json:"type"`
	// Job labels the event with the campaign job that produced it. A
	// daemon (cmd/rvnegtestd) interleaves many jobs into one stream;
	// the label is what lets rvreport -events split the stream back
	// into per-job reports. Empty for single-campaign CLI streams.
	Job string `json:"job,omitempty"`
	// Worker is the campaign worker index (0 for single-worker engines,
	// -1 for events not tied to a worker).
	Worker int                     `json:"worker"`
	Sim    string                  `json:"sim,omitempty"`
	Config string                  `json:"config,omitempty"`
	Lo     int                     `json:"lo,omitempty"`
	Hi     int                     `json:"hi,omitempty"`
	Execs  uint64                  `json:"execs,omitempty"`
	Corpus int                     `json:"corpus,omitempty"`
	DurNS  int64                   `json:"dur_ns,omitempty"`
	Detail string                  `json:"detail,omitempty"`
	Stages map[string]StageSummary `json:"stages,omitempty"`
}

// EventLog is a serialized NDJSON event sink. Emission from concurrent
// workers is safe: one mutex orders sequence assignment and the write,
// so the file's line order always matches the sequence order. A nil
// *EventLog discards everything at the cost of one branch.
type EventLog struct {
	mu    sync.Mutex
	w     *bufio.Writer
	c     io.Closer // nil when the sink isn't ours to close
	enc   *json.Encoder
	seq   uint64
	start time.Time
	err   error // sticky first write error

	// fwd/job make this log a labeling view over another log (ForJob):
	// Emit stamps the job name and forwards, Close is a no-op (the
	// underlying stream outlives any one job).
	fwd *EventLog
	job string
}

// NewEventLog wraps an arbitrary writer (tests, in-memory buffers).
func NewEventLog(w io.Writer) *EventLog {
	bw := bufio.NewWriter(w)
	return &EventLog{w: bw, enc: json.NewEncoder(bw), start: time.Now()}
}

// CreateEventLog creates (truncates) path and streams events to it.
func CreateEventLog(path string) (*EventLog, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	l := NewEventLog(f)
	l.c = f
	return l, nil
}

// AppendEventLog opens (or creates) path in append mode. A restarted
// daemon keeps extending its job stream instead of erasing the history
// of already-finished jobs; sequence numbers restart at 1 per process,
// so consumers must treat (seq) as per-session, not per-file. A kill -9
// can tear the final line mid-write; the torn fragment is terminated
// with a newline here so new events never splice onto it (ReadEvents
// then skips the fragment as an unparseable line).
func AppendEventLog(path string) (*EventLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if st, err := f.Stat(); err == nil && st.Size() > 0 {
		last := make([]byte, 1)
		if _, err := f.ReadAt(last, st.Size()-1); err == nil && last[0] != '\n' {
			if _, err := f.Write([]byte("\n")); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	l := NewEventLog(f)
	l.c = f
	return l, nil
}

// ForJob returns a view of the log that stamps every emitted event with
// the job name before forwarding it. Views share the underlying stream's
// mutex, sequencing and clock, so events from concurrent jobs interleave
// in a single strict order. Closing a view is a no-op; a nil receiver
// yields nil (events stay disabled).
func (l *EventLog) ForJob(job string) *EventLog {
	if l == nil {
		return nil
	}
	return &EventLog{fwd: l, job: job}
}

// Emit assigns the next sequence number and timestamp to ev and writes
// it. Write errors are sticky (first one wins, later emissions are
// dropped) and surface from Close.
func (l *EventLog) Emit(ev Event) {
	if l == nil {
		return
	}
	if l.fwd != nil {
		if ev.Job == "" {
			ev.Job = l.job
		}
		l.fwd.Emit(ev)
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	l.seq++
	ev.Seq = l.seq
	ev.TNS = time.Since(l.start).Nanoseconds()
	if err := l.enc.Encode(ev); err != nil {
		l.err = err
	}
}

// Close flushes the stream, closes the underlying file when the log
// owns one, and returns the first error encountered over the log's
// lifetime.
func (l *EventLog) Close() error {
	if l == nil {
		return nil
	}
	if l.fwd != nil {
		return nil // views never own the stream
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil && l.err == nil {
		l.err = err
	}
	if l.c != nil {
		if err := l.c.Close(); err != nil && l.err == nil {
			l.err = err
		}
		l.c = nil
	}
	return l.err
}

// ReadEvents parses an NDJSON event stream (report tooling). Lines that
// do not parse are skipped rather than aborting the read: an append-mode
// stream that survived a kill -9 legitimately contains a torn fragment
// where the old process died (see AppendEventLog). A stream with lines
// but no parseable events still errors, so pointing the tooling at a
// non-event file fails loudly instead of reporting on nothing.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	br := bufio.NewReader(r)
	torn := 0
	for {
		line, err := br.ReadBytes('\n')
		if len(bytes.TrimSpace(line)) > 0 {
			var ev Event
			if json.Unmarshal(line, &ev) == nil {
				out = append(out, ev)
			} else {
				torn++
			}
		}
		if err == io.EOF {
			if len(out) == 0 && torn > 0 {
				return nil, fmt.Errorf("no parseable events (%d unparseable lines)", torn)
			}
			return out, nil
		}
		if err != nil {
			return out, err
		}
	}
}
