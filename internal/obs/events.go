package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// Event is one structured campaign lifecycle record. Events are written
// as NDJSON (one JSON object per line) with a strictly monotonic
// sequence number and a monotonic-clock timestamp relative to the
// stream's start, so post-hoc tooling can order and interval-analyze
// them without trusting the wall clock.
//
// Established types: campaign_start, corpus_add, crash, quarantine,
// breaker_open, checkpoint, shard_done, cell_done, row_done,
// stage_summary, campaign_done. The field set is a union; producers
// fill what applies.
type Event struct {
	Seq  uint64 `json:"seq"`
	TNS  int64  `json:"t_ns"` // monotonic ns since the stream opened
	Type string `json:"type"`
	// Worker is the campaign worker index (0 for single-worker engines,
	// -1 for events not tied to a worker).
	Worker int                     `json:"worker"`
	Sim    string                  `json:"sim,omitempty"`
	Config string                  `json:"config,omitempty"`
	Lo     int                     `json:"lo,omitempty"`
	Hi     int                     `json:"hi,omitempty"`
	Execs  uint64                  `json:"execs,omitempty"`
	Corpus int                     `json:"corpus,omitempty"`
	DurNS  int64                   `json:"dur_ns,omitempty"`
	Detail string                  `json:"detail,omitempty"`
	Stages map[string]StageSummary `json:"stages,omitempty"`
}

// EventLog is a serialized NDJSON event sink. Emission from concurrent
// workers is safe: one mutex orders sequence assignment and the write,
// so the file's line order always matches the sequence order. A nil
// *EventLog discards everything at the cost of one branch.
type EventLog struct {
	mu    sync.Mutex
	w     *bufio.Writer
	c     io.Closer // nil when the sink isn't ours to close
	enc   *json.Encoder
	seq   uint64
	start time.Time
	err   error // sticky first write error
}

// NewEventLog wraps an arbitrary writer (tests, in-memory buffers).
func NewEventLog(w io.Writer) *EventLog {
	bw := bufio.NewWriter(w)
	return &EventLog{w: bw, enc: json.NewEncoder(bw), start: time.Now()}
}

// CreateEventLog creates (truncates) path and streams events to it.
func CreateEventLog(path string) (*EventLog, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	l := NewEventLog(f)
	l.c = f
	return l, nil
}

// Emit assigns the next sequence number and timestamp to ev and writes
// it. Write errors are sticky (first one wins, later emissions are
// dropped) and surface from Close.
func (l *EventLog) Emit(ev Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	l.seq++
	ev.Seq = l.seq
	ev.TNS = time.Since(l.start).Nanoseconds()
	if err := l.enc.Encode(ev); err != nil {
		l.err = err
	}
}

// Close flushes the stream, closes the underlying file when the log
// owns one, and returns the first error encountered over the log's
// lifetime.
func (l *EventLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil && l.err == nil {
		l.err = err
	}
	if l.c != nil {
		if err := l.c.Close(); err != nil && l.err == nil {
			l.err = err
		}
		l.c = nil
	}
	return l.err
}

// ReadEvents parses an NDJSON event stream (report tooling).
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, ev)
	}
}
