package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// Server exposes one registry over HTTP:
//
//	/metrics       Prometheus text exposition
//	/debug/vars    JSON snapshot (registry + runtime memory stats)
//	/debug/pprof/  the standard net/http/pprof surface
//
// It binds its own mux, so importing this package never touches
// http.DefaultServeMux.
type Server struct {
	// Addr is the actual listen address (useful with ":0").
	Addr string
	srv  *http.Server
	ln   net.Listener
}

// Serve starts serving reg on addr in a background goroutine. The
// registry may gain metrics and children after the server starts; every
// scrape aggregates live.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: Handler(reg), ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Handler returns the telemetry surface (/metrics, /debug/vars,
// /debug/pprof/) as a mountable http.Handler, so services with their own
// mux (cmd/rvnegtestd) can expose the registry next to their API instead
// of binding a second port.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		payload := struct {
			Campaign Snapshot `json:"campaign"`
			MemStats struct {
				Alloc      uint64 `json:"alloc"`
				TotalAlloc uint64 `json:"total_alloc"`
				Sys        uint64 `json:"sys"`
				NumGC      uint32 `json:"num_gc"`
			} `json:"memstats"`
		}{Campaign: reg.TakeSnapshot()}
		payload.MemStats.Alloc = ms.Alloc
		payload.MemStats.TotalAlloc = ms.TotalAlloc
		payload.MemStats.Sys = ms.Sys
		payload.MemStats.NumGC = ms.NumGC
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(payload)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Close stops the server and releases the listener.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
