// Package obs is the campaign observability layer: dependency-free
// (standard library only) counters, gauges and fixed-bucket latency
// histograms, a per-stage timer taxonomy, a structured NDJSON event
// stream for campaign lifecycle events, and an HTTP exposition surface
// (Prometheus text /metrics, JSON /debug/vars, net/http/pprof).
//
// Design constraints, shared with the engines that embed it:
//
//   - Zero-cost when disabled. Every type is safe to use through a nil
//     pointer: a nil *Registry hands out nil *Counter/*Gauge/*Histogram,
//     and every mutating method on a nil receiver is a single branch.
//     Engines additionally skip clock reads entirely when telemetry is
//     off, so the disabled path differs from the pre-telemetry code by
//     nil checks only.
//
//   - Lock-free on the hot path. Counters, gauges and histogram buckets
//     are atomics; the only mutex in Registry guards name->metric map
//     growth (amortized to registration time — engines resolve their
//     metric pointers once, not per event).
//
//   - Out of the determinism boundary. Telemetry state never enters
//     checkpoints, Stats.Deterministic() views, or any engine decision:
//     with telemetry on or off, campaign outputs are byte-identical.
package obs

import "sync/atomic"

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; all methods are safe on a nil receiver (no-ops that
// read as zero).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (corpus size, coverage bits).
// The zero value is ready to use; all methods are safe on a nil
// receiver.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
