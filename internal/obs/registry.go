package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry is a namespace of counters, gauges, named histograms and the
// fixed per-stage timer histograms. Metric lookup takes the registry
// mutex; engines resolve their metric pointers once at construction and
// then touch only lock-free atomics on the hot path.
//
// A registry can have child registries (one per campaign worker). The
// exposition methods aggregate parent and children live, and Collapse
// folds the children into the parent deterministically — in creation
// (worker) order — when the campaign ends. All values are sums, and
// addition commutes, so the collapsed totals equal what any interleaving
// of worker updates would have produced.
//
// All methods are safe on a nil *Registry: lookups return nil metrics
// (whose methods are no-ops) and aggregations are empty.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	stages   [NumStages]*Histogram
	children []*Registry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
	for i := range r.stages {
		r.stages[i] = &Histogram{}
	}
	return r
}

// Counter returns the named counter, creating it on first use. Names
// may carry a Prometheus label suffix, e.g.
// `mismatches_total{sim="Spike"}`; the text exposition groups such
// series under their family name. Nil registries return a nil counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named latency histogram, creating it on first
// use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Stage returns the timer histogram of one taxonomy stage.
func (r *Registry) Stage(s Stage) *Histogram {
	if r == nil || s >= NumStages {
		return nil
	}
	return r.stages[s]
}

// NewChild creates a child registry whose values the parent's
// exposition aggregates live and whose contents Collapse folds into the
// parent at campaign end.
func (r *Registry) NewChild() *Registry {
	if r == nil {
		return nil
	}
	c := NewRegistry()
	r.mu.Lock()
	r.children = append(r.children, c)
	r.mu.Unlock()
	return c
}

// Merge adds o's metrics into r by name (o is left unchanged). Metric
// updates are sums and addition commutes, so merging per-worker
// registries in worker order yields totals independent of runtime
// scheduling — the deterministic-merge contract campaign stats rely on.
func (r *Registry) Merge(o *Registry) {
	if r == nil || o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	//rvlint:allow mapdet -- merge is a sum fold per name; addition commutes, render paths sort
	for name, c := range o.counters {
		r.Counter(name).Add(c.Value())
	}
	//rvlint:allow mapdet -- merge is a sum fold per name; addition commutes, render paths sort
	for name, g := range o.gauges {
		r.Gauge(name).Add(g.Value())
	}
	//rvlint:allow mapdet -- histogram merge is a per-bucket sum; addition commutes
	for name, h := range o.hists {
		r.Histogram(name).merge(h)
	}
	for i := range o.stages {
		r.stages[i].merge(o.stages[i])
	}
}

// Collapse folds every child registry into r in creation (worker)
// order and detaches them. Call once when the campaign's workers have
// finished.
func (r *Registry) Collapse() {
	if r == nil {
		return
	}
	r.mu.Lock()
	children := r.children
	r.children = nil
	r.mu.Unlock()
	for _, c := range children {
		r.Merge(c)
	}
}

// withChildren snapshots the child list and visits r plus each child.
func (r *Registry) withChildren(visit func(*Registry)) {
	r.mu.Lock()
	children := append([]*Registry(nil), r.children...)
	r.mu.Unlock()
	visit(r)
	for _, c := range children {
		visit(c)
	}
}

// StageSummary is the cumulative view of one stage timer, the payload
// of stage_summary events and of the /debug/vars snapshot.
type StageSummary struct {
	Count   uint64 `json:"count"`
	TotalNS uint64 `json:"total_ns"`
}

// StageSummaries returns the non-empty stage timers (aggregated over
// children), keyed by stage name.
func (r *Registry) StageSummaries() map[string]StageSummary {
	if r == nil {
		return nil
	}
	out := map[string]StageSummary{}
	r.withChildren(func(reg *Registry) {
		for i, h := range reg.stages {
			if n := h.Count(); n > 0 {
				s := out[Stage(i).String()]
				s.Count += n
				s.TotalNS += h.SumNS()
				out[Stage(i).String()] = s
			}
		}
	})
	if len(out) == 0 {
		return nil
	}
	return out
}

// Snapshot is the JSON view served at /debug/vars.
type Snapshot struct {
	Counters map[string]uint64       `json:"counters,omitempty"`
	Gauges   map[string]int64        `json:"gauges,omitempty"`
	Stages   map[string]StageSummary `json:"stages,omitempty"`
}

// TakeSnapshot aggregates the registry and its children into a
// Snapshot.
func (r *Registry) TakeSnapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	s.Counters = map[string]uint64{}
	s.Gauges = map[string]int64{}
	r.withChildren(func(reg *Registry) {
		reg.mu.Lock()
		for name, c := range reg.counters {
			s.Counters[name] += c.Value()
		}
		for name, g := range reg.gauges {
			s.Gauges[name] += g.Value()
		}
		reg.mu.Unlock()
	})
	s.Stages = r.StageSummaries()
	return s
}

// family splits a metric name into its family (the part before any
// label braces) for Prometheus TYPE lines.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WritePrometheus renders the registry (aggregated over children) in
// the Prometheus text exposition format: counters and gauges first,
// then named histograms, then the stage-timer histogram family keyed by
// a `stage` label. Series are sorted for stable scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.TakeSnapshot()

	cnames := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		cnames = append(cnames, name)
	}
	sort.Strings(cnames)
	lastFam := ""
	for _, name := range cnames {
		if f := family(name); f != lastFam {
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", f); err != nil {
				return err
			}
			lastFam = f
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, snap.Counters[name]); err != nil {
			return err
		}
	}

	gnames := make([]string, 0, len(snap.Gauges))
	for name := range snap.Gauges {
		gnames = append(gnames, name)
	}
	sort.Strings(gnames)
	lastFam = ""
	for _, name := range gnames {
		if f := family(name); f != lastFam {
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", f); err != nil {
				return err
			}
			lastFam = f
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, snap.Gauges[name]); err != nil {
			return err
		}
	}

	// Named histograms: aggregate each name over children, then render.
	hnames := map[string]bool{}
	r.withChildren(func(reg *Registry) {
		reg.mu.Lock()
		for name := range reg.hists {
			hnames[name] = true
		}
		reg.mu.Unlock()
	})
	sorted := make([]string, 0, len(hnames))
	for name := range hnames {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)
	for _, name := range sorted {
		agg := &Histogram{}
		r.withChildren(func(reg *Registry) {
			reg.mu.Lock()
			h := reg.hists[name]
			reg.mu.Unlock()
			agg.merge(h)
		})
		if err := writeHistogram(w, family(name), labelsOf(name), agg); err != nil {
			return err
		}
	}

	// Stage timers as one family with a stage label.
	for i := Stage(0); i < NumStages; i++ {
		agg := &Histogram{}
		r.withChildren(func(reg *Registry) { agg.merge(reg.stages[i]) })
		if agg.Count() == 0 {
			continue
		}
		labels := `stage="` + i.String() + `"`
		if err := writeHistogram(w, "rvnegtest_stage_duration_seconds", labels, agg); err != nil {
			return err
		}
	}
	return nil
}

// labelsOf extracts the label body of a metric name ("" when absent).
func labelsOf(name string) string {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return ""
	}
	return strings.TrimSuffix(name[i+1:], "}")
}

// writeHistogram renders one histogram in Prometheus text format with
// seconds-valued buckets.
func writeHistogram(w io.Writer, fam, labels string, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", fam); err != nil {
		return err
	}
	join := func(extra string) string {
		switch {
		case labels == "":
			return extra
		case extra == "":
			return labels
		default:
			return labels + "," + extra
		}
	}
	cum := uint64(0)
	for i, bound := range BucketBounds {
		cum += h.Bucket(i)
		le := strconv.FormatFloat(float64(bound)/1e9, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", fam, join(`le="`+le+`"`), cum); err != nil {
			return err
		}
	}
	cum += h.Bucket(NumBuckets - 1)
	if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", fam, join(`le="+Inf"`), cum); err != nil {
		return err
	}
	sum := strconv.FormatFloat(float64(h.SumNS())/1e9, 'g', -1, 64)
	if labels == "" {
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", fam, sum, fam, h.Count()); err != nil {
			return err
		}
		return nil
	}
	_, err := fmt.Fprintf(w, "%s_sum{%s} %s\n%s_count{%s} %d\n", fam, labels, sum, fam, labels, h.Count())
	return err
}
