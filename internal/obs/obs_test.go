package obs

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety: every operation on nil telemetry objects must be a
// no-op — the zero-cost-when-disabled contract.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must read zero")
	}
	g := r.Gauge("x")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read zero")
	}
	h := r.Stage(StageFilter)
	h.Observe(time.Second)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.SumNS() != 0 || h.Bucket(0) != 0 {
		t.Fatal("nil histogram must read zero")
	}
	r.Merge(NewRegistry())
	r.Collapse()
	if r.NewChild() != nil {
		t.Fatal("nil registry must hand out nil children")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	if s := r.StageSummaries(); s != nil {
		t.Fatalf("nil registry stage summaries = %v, want nil", s)
	}
	var l *EventLog
	l.Emit(Event{Type: "x"})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBucketBoundaries pins the histogram bucket table: exact-boundary
// observations land in the bounded bucket (le is inclusive), one past
// lands in the next, and everything above the last bound lands in +Inf.
func TestBucketBoundaries(t *testing.T) {
	if got, want := NumBuckets, len(BucketBounds)+1; got != want {
		t.Fatalf("NumBuckets = %d, want %d", got, want)
	}
	for i, b := range BucketBounds {
		var h Histogram
		h.Observe(time.Duration(b))
		if h.Bucket(i) != 1 {
			t.Errorf("observe %dns: bucket %d = %d, want 1", b, i, h.Bucket(i))
		}
		h2 := &Histogram{}
		h2.Observe(time.Duration(b + 1))
		next := i + 1
		if h2.Bucket(next) != 1 {
			t.Errorf("observe %dns: bucket %d = %d, want 1", b+1, next, h2.Bucket(next))
		}
	}
	// Spot-check the ladder shape the exposition format depends on.
	pins := map[time.Duration]int{
		0:                    0, // clamps into the first bucket
		50 * time.Nanosecond: 0,
		time.Microsecond:     3,
		2 * time.Microsecond: 4,
		time.Millisecond:     12,
		time.Second:          21,
		10 * time.Second:     24,
		time.Minute:          25, // +Inf
		-time.Second:         0,  // negative durations clamp to zero
	}
	for d, want := range pins {
		var h Histogram
		h.Observe(d)
		if h.Bucket(want) != 1 {
			got := -1
			for i := 0; i < NumBuckets; i++ {
				if h.Bucket(i) == 1 {
					got = i
				}
			}
			t.Errorf("observe %v: landed in bucket %d, want %d", d, got, want)
		}
	}
	var h Histogram
	h.Observe(3 * time.Millisecond)
	h.Observe(-time.Second)
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	if h.SumNS() != uint64(3*time.Millisecond) {
		t.Fatalf("sum = %d, want %d (negative clamps to 0)", h.SumNS(), 3*time.Millisecond)
	}
}

func TestStageNamesRoundTrip(t *testing.T) {
	for s := Stage(0); s < NumStages; s++ {
		got, ok := StageByName(s.String())
		if !ok || got != s {
			t.Errorf("StageByName(%q) = %v, %t", s.String(), got, ok)
		}
	}
	if _, ok := StageByName("nope"); ok {
		t.Error("StageByName accepted an unknown name")
	}
}

// TestWritePrometheus pins the text exposition format: TYPE lines,
// sorted series, label pass-through, cumulative le buckets in seconds.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("rv_execs_total").Add(42)
	r.Counter(`rv_mismatches_total{sim="Spike"}`).Add(7)
	r.Counter(`rv_mismatches_total{sim="GRIFT"}`).Add(9)
	r.Gauge("rv_corpus_size").Set(13)
	r.Stage(StageFilter).Observe(150 * time.Nanosecond) // bucket le=2.5e-07
	r.Stage(StageFilter).Observe(2 * time.Second)       // bucket le=2.5

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE rv_execs_total counter\nrv_execs_total 42\n",
		"# TYPE rv_mismatches_total counter\nrv_mismatches_total{sim=\"GRIFT\"} 9\nrv_mismatches_total{sim=\"Spike\"} 7\n",
		"# TYPE rv_corpus_size gauge\nrv_corpus_size 13\n",
		"# TYPE rvnegtest_stage_duration_seconds histogram\n",
		`rvnegtest_stage_duration_seconds_bucket{stage="filter",le="1e-07"} 0`,
		`rvnegtest_stage_duration_seconds_bucket{stage="filter",le="2.5e-07"} 1`,
		`rvnegtest_stage_duration_seconds_bucket{stage="filter",le="2.5"} 2`,
		`rvnegtest_stage_duration_seconds_bucket{stage="filter",le="+Inf"} 2`,
		`rvnegtest_stage_duration_seconds_sum{stage="filter"} 2.00000015`,
		`rvnegtest_stage_duration_seconds_count{stage="filter"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in exposition:\n%s", want, out)
		}
	}
	if strings.Contains(out, `stage="mutate"`) {
		t.Error("empty stage histograms must be omitted")
	}
}

// TestMergeAndCollapse: merging per-worker registries in worker order
// yields the same totals as any interleaving (sums commute), and
// Collapse folds children into the parent exactly once.
func TestMergeAndCollapse(t *testing.T) {
	parent := NewRegistry()
	parent.Counter("execs").Add(1)
	var kids []*Registry
	for w := 0; w < 4; w++ {
		k := parent.NewChild()
		k.Counter("execs").Add(uint64(10 * (w + 1)))
		k.Gauge("corpus").Add(int64(w))
		k.Stage(StageExecute).Observe(time.Duration(w+1) * time.Millisecond)
		kids = append(kids, k)
	}
	// Live aggregation sees parent + children before any collapse.
	snap := parent.TakeSnapshot()
	if snap.Counters["execs"] != 1+10+20+30+40 {
		t.Fatalf("live aggregate execs = %d", snap.Counters["execs"])
	}
	parent.Collapse()
	if got := parent.Counter("execs").Value(); got != 101 {
		t.Fatalf("collapsed execs = %d, want 101", got)
	}
	if got := parent.Gauge("corpus").Value(); got != 0+1+2+3 {
		t.Fatalf("collapsed corpus = %d", got)
	}
	if got := parent.Stage(StageExecute).Count(); got != 4 {
		t.Fatalf("collapsed stage count = %d, want 4", got)
	}
	// Children are detached: mutating one no longer shows up.
	kids[0].Counter("execs").Add(1000)
	if got := parent.TakeSnapshot().Counters["execs"]; got != 101 {
		t.Fatalf("post-collapse aggregate execs = %d, want 101", got)
	}
	// An equivalent single-registry history produces identical totals.
	ref := NewRegistry()
	ref.Counter("execs").Add(101)
	if ref.Counter("execs").Value() != parent.Counter("execs").Value() {
		t.Fatal("merge order changed counter totals")
	}
}

// TestEventLogSerialized hammers one EventLog from many goroutines and
// asserts the NDJSON stream is well-formed with strictly monotonic
// sequence numbers and non-decreasing timestamps — the serialized,
// monotonic emission contract.
func TestEventLogSerialized(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex // bytes.Buffer isn't concurrency-safe on its own
	l := NewEventLog(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	}))
	const goroutines, each = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.Emit(Event{Type: "corpus_add", Worker: g, Execs: uint64(i)})
			}
		}(g)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != goroutines*each {
		t.Fatalf("got %d events, want %d", len(evs), goroutines*each)
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d (stream must be seq-ordered)", i, ev.Seq, i+1)
		}
		if i > 0 && ev.TNS < evs[i-1].TNS {
			t.Fatalf("event %d timestamp %d precedes event %d timestamp %d", i, ev.TNS, i-1, evs[i-1].TNS)
		}
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("rv_execs_total").Add(5)
	r.Stage(StageExecute).Observe(time.Millisecond)
	s, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + s.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	metrics := get("/metrics")
	for _, want := range []string{"rv_execs_total 5", `stage="execute"`} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	vars := get("/debug/vars")
	for _, want := range []string{`"rv_execs_total": 5`, `"memstats"`, `"execute"`} {
		if !strings.Contains(vars, want) {
			t.Errorf("/debug/vars missing %q:\n%s", want, vars)
		}
	}
	if pp := get("/debug/pprof/cmdline"); pp == "" {
		t.Error("/debug/pprof/cmdline returned nothing")
	}
	// Scrapes see live updates.
	r.Counter("rv_execs_total").Add(1)
	if !strings.Contains(get("/metrics"), "rv_execs_total 6") {
		t.Error("scrape did not observe a live counter update")
	}
}

func TestEventLogFile(t *testing.T) {
	path := t.TempDir() + "/events.ndjson"
	l, err := CreateEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Emit(Event{Type: "campaign_start", Worker: -1})
	l.Emit(Event{Type: "campaign_done", Worker: -1, Detail: fmt.Sprint(123)})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := ReadEvents(bytes.NewReader(f))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Type != "campaign_start" || evs[1].Detail != "123" {
		t.Fatalf("round-trip mismatch: %+v", evs)
	}
}

// TestAppendEventLogHealsTornTail simulates a kill -9 tearing the final
// line mid-write: reopening in append mode must terminate the fragment
// so later events don't splice onto it, and ReadEvents must skip the
// fragment while keeping every intact line on both sides of it.
func TestAppendEventLogHealsTornTail(t *testing.T) {
	path := t.TempDir() + "/events.ndjson"
	l, err := CreateEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Emit(Event{Type: "campaign_start", Worker: -1})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":2,"t_ns":12,"ty`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := AppendEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l2.Emit(Event{Type: "campaign_done", Worker: -1})
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := ReadEvents(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadEvents on a healed stream: %v\n%s", err, raw)
	}
	if len(evs) != 2 || evs[0].Type != "campaign_start" || evs[1].Type != "campaign_done" {
		t.Fatalf("healed stream events = %+v", evs)
	}
	if _, err := ReadEvents(strings.NewReader("not json\nstill not\n")); err == nil {
		t.Fatal("all-garbage stream must error, not report zero events")
	}
}
