package obs

import (
	"strconv"
	"sync/atomic"
	"time"
)

// Stage names one phase of campaign work in the per-stage timer
// taxonomy. Engines observe wall-clock durations into the stage's
// histogram; reports and /metrics break campaign time down by stage.
type Stage uint8

const (
	// StageFilter is the static filter check on a candidate bytestream.
	StageFilter Stage = iota
	// StageMutate is candidate generation (generic or instruction-aware
	// mutation, or seed replay).
	StageMutate
	// StageExecute is a simulator run (fuzz target, reference or SUT).
	StageExecute
	// StageCoverageEval is coverage novelty evaluation (MergeNew and
	// corpus bookkeeping).
	StageCoverageEval
	// StageSignatureCompare is the Phase B signature diff and mismatch
	// classification.
	StageSignatureCompare
	// StageCheckpointWrite is campaign state persistence.
	StageCheckpointWrite
	// StagePredecode is decode-cache maintenance between simulator runs
	// (pristine reset and injected-range invalidation).
	StagePredecode
	// NumStages bounds the taxonomy.
	NumStages
)

var stageNames = [NumStages]string{
	"filter", "mutate", "execute", "coverage-eval",
	"signature-compare", "checkpoint-write", "predecode",
}

func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "stage-" + strconv.Itoa(int(s))
}

// StageByName resolves a stage name rendered by Stage.String (report
// tooling reading event files); ok is false for unknown names.
func StageByName(name string) (Stage, bool) {
	for s, n := range stageNames {
		if n == name {
			return Stage(s), true
		}
	}
	return NumStages, false
}

// BucketBounds are the fixed upper bounds (inclusive, in nanoseconds)
// of the latency histogram buckets, a 1-2.5-5 ladder from 100ns to 10s.
// A final implicit +Inf bucket catches everything above. The table is
// part of the telemetry contract: checkpointed campaigns, merged
// worker registries and report tooling all assume identical buckets.
var BucketBounds = [...]uint64{
	100, 250, 500, // ns
	1_000, 2_500, 5_000, // µs
	10_000, 25_000, 50_000,
	100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000, // ms
	10_000_000, 25_000_000, 50_000_000,
	100_000_000, 250_000_000, 500_000_000,
	1_000_000_000, 2_500_000_000, 5_000_000_000, // s
	10_000_000_000,
}

// NumBuckets counts the histogram buckets, including the +Inf overflow
// bucket.
const NumBuckets = len(BucketBounds) + 1

// Histogram is a fixed-bucket latency histogram with lock-free atomic
// buckets. The zero value is ready to use; all methods are safe on a
// nil receiver.
type Histogram struct {
	count   atomic.Uint64
	sumNS   atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// bucketIndex maps a duration in nanoseconds to its bucket. Most
// observations are small, so a linear scan from the low end beats a
// binary search on this table size.
func bucketIndex(ns uint64) int {
	for i, b := range BucketBounds {
		if ns <= b {
			return i
		}
	}
	return NumBuckets - 1
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.count.Add(1)
	h.sumNS.Add(ns)
	h.buckets[bucketIndex(ns)].Add(1)
}

// ObserveSince records the duration elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h != nil {
		h.Observe(time.Since(t0))
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// SumNS returns the sum of all observed durations in nanoseconds.
func (h *Histogram) SumNS() uint64 {
	if h == nil {
		return 0
	}
	return h.sumNS.Load()
}

// Bucket returns the count of bucket i (i == len(BucketBounds) is the
// +Inf bucket).
func (h *Histogram) Bucket(i int) uint64 {
	if h == nil || i < 0 || i >= NumBuckets {
		return 0
	}
	return h.buckets[i].Load()
}

// merge adds o's observations into h (registry collapse; see
// Registry.Merge for the determinism contract).
func (h *Histogram) merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	h.count.Add(o.count.Load())
	h.sumNS.Add(o.sumNS.Load())
	for i := range h.buckets {
		h.buckets[i].Add(o.buckets[i].Load())
	}
}
