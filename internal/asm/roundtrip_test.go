package asm

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"rvnegtest/internal/isa"
)

// TestDisasmReassembles is the cross-component property tying the
// disassembler and the assembler together: for every instruction in the
// database with randomized operands, the disassembler's textual output
// must assemble back to the identical machine word.
func TestDisasmReassembles(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	reg := func() isa.Reg { return isa.Reg(rng.Intn(32)) }
	for _, in := range isa.Instructions {
		for trial := 0; trial < 24; trial++ {
			inst := isa.Inst{Op: in.Op}
			switch in.Fmt {
			case isa.FmtR:
				inst.Rd, inst.Rs1, inst.Rs2 = reg(), reg(), reg()
				if in.Op == isa.OpSFENCEVMA {
					inst.Rd = 0
				}
			case isa.FmtR4:
				inst.Rd, inst.Rs1, inst.Rs2, inst.Rs3 = reg(), reg(), reg(), reg()
				inst.RM = uint8(rng.Intn(5))
			case isa.FmtRrm:
				inst.Rd, inst.Rs1, inst.Rs2 = reg(), reg(), reg()
				inst.RM = uint8(rng.Intn(5))
			case isa.FmtR2rm:
				inst.Rd, inst.Rs1 = reg(), reg()
				inst.RM = uint8(rng.Intn(5))
			case isa.FmtR2:
				inst.Rd, inst.Rs1 = reg(), reg()
			case isa.FmtI:
				inst.Rd, inst.Rs1 = reg(), reg()
				inst.Imm = int32(rng.Intn(4096) - 2048)
			case isa.FmtIShift:
				inst.Rd, inst.Rs1 = reg(), reg()
				inst.Imm = int32(rng.Intn(32))
			case isa.FmtS:
				inst.Rs1, inst.Rs2 = reg(), reg()
				inst.Imm = int32(rng.Intn(4096) - 2048)
			case isa.FmtB:
				inst.Rs1, inst.Rs2 = reg(), reg()
				inst.Imm = int32(rng.Intn(4096)-2048) &^ 1
			case isa.FmtU:
				inst.Rd = reg()
				inst.Imm = int32(rng.Uint32() & 0xfffff000)
			case isa.FmtJ:
				inst.Rd = reg()
				inst.Imm = int32(rng.Intn(1<<12)-1<<11) &^ 1
			case isa.FmtCSR:
				inst.Rd, inst.Rs1 = reg(), reg()
				inst.CSR = uint16(rng.Intn(4096))
			case isa.FmtCSRI:
				inst.Rd = reg()
				inst.CSR = uint16(rng.Intn(4096))
				inst.Imm = int32(rng.Intn(32))
			case isa.FmtAMO:
				inst.Rd, inst.Rs1, inst.Rs2 = reg(), reg(), reg()
				if in.Op == isa.OpLRW {
					inst.Rs2 = 0
				}
			}
			want, err := isa.Encode(inst)
			if err != nil {
				t.Fatalf("%s: encode: %v", in.Name, err)
			}
			text := isa.Disasm(isa.Ref.Decode32(want))
			p, err := Assemble(text, defaultOpts)
			if err != nil {
				t.Fatalf("%s: reassembling %q: %v", in.Name, text, err)
			}
			if len(p.Text.Data) != 4 {
				t.Fatalf("%s: %q assembled to %d bytes", in.Name, text, len(p.Text.Data))
			}
			got := binary.LittleEndian.Uint32(p.Text.Data)
			if got != want {
				t.Fatalf("%s: %q -> %#08x, want %#08x", in.Name, text, got, want)
			}
		}
	}
}

// TestTemplateSourceReassemblesStably: assembling the same template source
// twice (it exercises nearly every directive) yields identical images, and
// the image is insensitive to define ordering.
func TestAssembleIsPure(t *testing.T) {
	src := `
	.equ K, 3
	li t0, K*K
loop:
	addi t0, t0, -1
	bnez t0, loop
	.data
	.word K
`
	a, err := Assemble(src, defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Assemble(src, defaultOpts)
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Text.Data) != string(b.Text.Data) || string(a.Data.Data) != string(b.Data.Data) {
		t.Error("Assemble is not deterministic")
	}
}
