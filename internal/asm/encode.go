package asm

import (
	"strings"

	"rvnegtest/internal/isa"
)

// directive handles one dot-directive. Conditional directives are processed
// even inside skipped regions (they control the skipping).
func (a *assembler) directive(name string, toks []token) {
	c := &cursor{a: a, toks: toks}
	switch name {
	case ".ifdef", ".ifndef":
		t, ok := c.next()
		if !ok || t.kind != tokIdent {
			a.fail("%s needs a symbol", name)
			return
		}
		on := a.defined[t.text]
		if name == ".ifndef" {
			on = !on
		}
		a.condStk = append(a.condStk, on)
		return
	case ".else":
		if len(a.condStk) == 0 {
			a.fail(".else without .ifdef")
			return
		}
		a.condStk[len(a.condStk)-1] = !a.condStk[len(a.condStk)-1]
		return
	case ".endif":
		if len(a.condStk) == 0 {
			a.fail(".endif without .ifdef")
			return
		}
		a.condStk = a.condStk[:len(a.condStk)-1]
		return
	}
	if a.skipping() {
		return
	}

	switch name {
	case ".text":
		a.sect = sectText
	case ".data", ".rodata", ".bss":
		a.sect = sectData
	case ".section":
		t, ok := c.next()
		if !ok {
			a.fail(".section needs a name")
			return
		}
		if t.text == ".text" {
			a.sect = sectText
		} else {
			a.sect = sectData
		}
		// Flags/attributes after the name are ignored.
	case ".globl", ".global", ".option", ".attribute", ".file", ".size", ".type", ".weak":
		// Accepted and ignored (they do not affect the image).
	case ".align", ".p2align":
		n := c.expr()
		if n < 0 || n > 16 {
			a.fail("bad alignment %d", n)
			return
		}
		a.alignTo(uint32(1) << uint(n))
		c.end()
	case ".balign":
		n := c.expr()
		if n <= 0 || n&(n-1) != 0 {
			a.fail("bad byte alignment %d", n)
			return
		}
		a.alignTo(uint32(n))
		c.end()
	case ".word", ".long":
		a.dataList(c, 4)
	case ".half", ".hword", ".short":
		a.dataList(c, 2)
	case ".byte":
		a.dataList(c, 1)
	case ".dword", ".quad":
		a.dataList(c, 8)
	case ".zero", ".skip", ".space":
		n := c.expr()
		if n < 0 || n > 1<<20 {
			a.fail("bad size %d", n)
			return
		}
		a.emit(make([]byte, n)...)
		c.end()
	case ".fill":
		repeat := c.expr()
		size, value := int64(1), int64(0)
		if c.accept(",") {
			size = c.expr()
			if c.accept(",") {
				value = c.expr()
			}
		}
		if repeat < 0 || repeat > 1<<20 || size < 1 || size > 8 {
			a.fail("bad .fill")
			return
		}
		for i := int64(0); i < repeat; i++ {
			a.emitN(uint64(value), int(size))
		}
		c.end()
	case ".ascii", ".asciz", ".string":
		t, ok := c.next()
		if !ok || t.kind != tokStr {
			a.fail("%s needs a string", name)
			return
		}
		a.emit([]byte(t.text)...)
		if name != ".ascii" {
			a.emit(0)
		}
		c.end()
	case ".macro":
		t, ok := c.next()
		if !ok || t.kind != tokIdent {
			a.fail(".macro needs a name")
			return
		}
		def := &macro{name: t.text}
		for {
			p, ok := c.peek()
			if !ok {
				break
			}
			if p.is(",") {
				c.pos++
				continue
			}
			if p.kind != tokIdent {
				a.fail("bad macro parameter %q", p.text)
				return
			}
			c.pos++
			def.params = append(def.params, p.text)
		}
		a.collecting = def
	case ".endm", ".endmacro":
		a.fail(".endm without .macro")
	case ".equ", ".set":
		t, ok := c.next()
		if !ok || t.kind != tokIdent || !c.expect(",") {
			a.fail("%s needs name, value", name)
			return
		}
		v := c.expr()
		a.symbols[t.text] = v
		a.defined[t.text] = true
		c.end()
	default:
		a.fail("unknown directive %s", name)
	}
}

func (a *assembler) alignTo(n uint32) {
	for a.loc[a.sect]%n != 0 {
		a.emit(0)
	}
}

func (a *assembler) emitN(v uint64, size int) {
	for i := 0; i < size; i++ {
		a.emit(byte(v >> (8 * i)))
	}
}

func (a *assembler) dataList(c *cursor, size int) {
	for {
		v := c.expr()
		a.emitN(uint64(v), size)
		if !c.accept(",") {
			break
		}
	}
	c.end()
}

// reg parses an integer register operand.
func (c *cursor) reg() isa.Reg {
	t, ok := c.next()
	if !ok || t.kind != tokIdent {
		c.a.fail("expected register")
		return 0
	}
	r, ok := isa.ParseReg(t.text)
	if !ok {
		c.a.fail("bad register %q", t.text)
	}
	return r
}

// freg parses a floating-point register operand.
func (c *cursor) freg() isa.Reg {
	t, ok := c.next()
	if !ok || t.kind != tokIdent {
		c.a.fail("expected FP register")
		return 0
	}
	r, ok := isa.ParseFReg(t.text)
	if !ok {
		c.a.fail("bad FP register %q", t.text)
	}
	return r
}

// regFor picks integer or FP register parsing based on an operand flag.
func (c *cursor) regFor(fp bool) isa.Reg {
	if fp {
		return c.freg()
	}
	return c.reg()
}

// rm parses an optional rounding-mode operand (defaults to dynamic).
func (c *cursor) rm() uint8 {
	if c.accept(",") {
		t, ok := c.next()
		if !ok || t.kind != tokIdent {
			c.a.fail("expected rounding mode")
			return 7
		}
		switch strings.ToLower(t.text) {
		case "rne":
			return 0
		case "rtz":
			return 1
		case "rdn":
			return 2
		case "rup":
			return 3
		case "rmm":
			return 4
		case "dyn":
			return 7
		}
		c.a.fail("bad rounding mode %q", t.text)
		return 7
	}
	return 7
}

// memOperand parses "imm(reg)" (imm may be empty).
func (c *cursor) memOperand() (int32, isa.Reg) {
	var imm int64
	if t, ok := c.peek(); ok && !t.is("(") {
		imm = c.expr()
	}
	c.expect("(")
	r := c.reg()
	c.expect(")")
	return int32(imm), r
}

// csr parses a CSR operand: a known name or an expression.
func (c *cursor) csr() uint16 {
	if t, ok := c.peek(); ok && t.kind == tokIdent {
		if addr, found := isa.LookupCSRName(t.text); found {
			c.pos++
			return addr
		}
	}
	v := c.expr()
	if v < 0 || v > 0xfff {
		c.a.fail("CSR address %d out of range", v)
	}
	return uint16(v)
}

// target parses a branch/jump target and returns the PC-relative offset.
func (c *cursor) target() int32 {
	v := c.expr()
	return int32(v - int64(c.a.loc[c.a.sect]))
}

// emitInst validates and emits one machine instruction.
func (a *assembler) emitInst(inst isa.Inst) {
	if a.err != nil {
		return
	}
	if a.pass == 1 {
		a.loc[a.sect] += 4
		return
	}
	w, err := isa.Encode(inst)
	if err != nil {
		a.fail("%v", err)
		return
	}
	a.emit32(w)
}

// expand substitutes arguments into a macro body and assembles it.
func (a *assembler) expand(m *macro, args []string) {
	if a.expandDepth >= 16 {
		a.fail("macro expansion too deep (recursive macro %q?)", m.name)
		return
	}
	if len(args) > len(m.params) {
		a.fail("macro %q: %d arguments for %d parameters", m.name, len(args), len(m.params))
		return
	}
	a.expandDepth++
	defer func() { a.expandDepth-- }()
	for _, raw := range m.body {
		line := raw
		for i, p := range m.params {
			arg := ""
			if i < len(args) {
				arg = args[i]
			}
			line = strings.ReplaceAll(line, `\`+p, arg)
		}
		a.statement(line)
		if a.err != nil {
			return
		}
	}
}

// macroArgs splits an invocation's tokens at top-level commas and renders
// each group back to text for substitution.
func macroArgs(toks []token) []string {
	var args []string
	var cur []string
	flush := func() {
		if len(cur) > 0 {
			args = append(args, strings.Join(cur, " "))
			cur = nil
		}
	}
	for _, t := range toks {
		if t.is(",") {
			flush()
			continue
		}
		cur = append(cur, t.text)
	}
	flush()
	return args
}

// instruction assembles one mnemonic.
func (a *assembler) instruction(name string, toks []token) {
	if m, ok := a.macros[name]; ok {
		a.expand(m, macroArgs(toks))
		return
	}
	c := &cursor{a: a, toks: toks}
	if a.pseudo(name, c) {
		return
	}
	in := isa.LookupName(name)
	if in == nil {
		a.fail("unknown mnemonic %q", name)
		return
	}
	inst := isa.Inst{Op: in.Op}
	fl := in.Flags
	switch in.Fmt {
	case isa.FmtNone:
		// no operands
	case isa.FmtFence:
		// Optional ordering operands are ignored.
		c.pos = len(c.toks)
	case isa.FmtR:
		inst.Rd = c.regFor(fl.Is(isa.FlagFPRd))
		c.expect(",")
		inst.Rs1 = c.regFor(fl.Is(isa.FlagFPRs1))
		c.expect(",")
		inst.Rs2 = c.regFor(fl.Is(isa.FlagFPRs2))
		if in.Op == isa.OpSFENCEVMA {
			inst.Rd = 0
		}
	case isa.FmtR4:
		inst.Rd = c.freg()
		c.expect(",")
		inst.Rs1 = c.freg()
		c.expect(",")
		inst.Rs2 = c.freg()
		c.expect(",")
		inst.Rs3 = c.freg()
		inst.RM = c.rm()
	case isa.FmtRrm:
		inst.Rd = c.regFor(fl.Is(isa.FlagFPRd))
		c.expect(",")
		inst.Rs1 = c.regFor(fl.Is(isa.FlagFPRs1))
		c.expect(",")
		inst.Rs2 = c.regFor(fl.Is(isa.FlagFPRs2))
		inst.RM = c.rm()
	case isa.FmtR2rm:
		inst.Rd = c.regFor(fl.Is(isa.FlagFPRd))
		c.expect(",")
		inst.Rs1 = c.regFor(fl.Is(isa.FlagFPRs1))
		inst.RM = c.rm()
	case isa.FmtR2:
		inst.Rd = c.regFor(fl.Is(isa.FlagFPRd))
		c.expect(",")
		inst.Rs1 = c.regFor(fl.Is(isa.FlagFPRs1))
	case isa.FmtI:
		inst.Rd = c.regFor(fl.Is(isa.FlagFPRd))
		c.expect(",")
		if fl.Is(isa.FlagLoad) {
			inst.Imm, inst.Rs1 = c.memOperand()
		} else if in.Op == isa.OpJALR {
			// jalr rd, rs1, imm | jalr rd, imm(rs1)
			save := c.pos
			r, ok1 := func() (isa.Reg, bool) {
				t, ok := c.peek()
				if !ok || t.kind != tokIdent {
					return 0, false
				}
				r, ok := isa.ParseReg(t.text)
				return r, ok
			}()
			if ok1 {
				c.pos++
				inst.Rs1 = r
				if c.accept(",") {
					inst.Imm = int32(c.expr())
				}
			} else {
				c.pos = save
				inst.Imm, inst.Rs1 = c.memOperand()
			}
		} else {
			inst.Rs1 = c.reg()
			c.expect(",")
			inst.Imm = int32(c.expr())
		}
	case isa.FmtIShift:
		inst.Rd = c.reg()
		c.expect(",")
		inst.Rs1 = c.reg()
		c.expect(",")
		inst.Imm = int32(c.expr())
	case isa.FmtS:
		inst.Rs2 = c.regFor(fl.Is(isa.FlagFPRs2))
		c.expect(",")
		inst.Imm, inst.Rs1 = c.memOperand()
	case isa.FmtB:
		inst.Rs1 = c.reg()
		c.expect(",")
		inst.Rs2 = c.reg()
		c.expect(",")
		inst.Imm = c.target()
	case isa.FmtU:
		inst.Rd = c.reg()
		c.expect(",")
		inst.Imm = int32(c.expr()) << 12
	case isa.FmtJ:
		inst.Rd = c.reg()
		c.expect(",")
		inst.Imm = c.target()
	case isa.FmtCSR:
		inst.Rd = c.reg()
		c.expect(",")
		inst.CSR = c.csr()
		c.expect(",")
		inst.Rs1 = c.reg()
	case isa.FmtCSRI:
		inst.Rd = c.reg()
		c.expect(",")
		inst.CSR = c.csr()
		c.expect(",")
		inst.Imm = int32(c.expr())
	case isa.FmtAMO:
		inst.Rd = c.reg()
		c.expect(",")
		if in.Op == isa.OpLRW {
			c.expect("(")
			inst.Rs1 = c.reg()
			c.expect(")")
		} else {
			inst.Rs2 = c.reg()
			c.expect(",")
			c.expect("(")
			inst.Rs1 = c.reg()
			c.expect(")")
		}
	}
	c.end()
	a.emitInst(inst)
}

// pseudo expands pseudo-instructions; returns false if name is not one.
func (a *assembler) pseudo(name string, c *cursor) bool {
	ei := a.emitInst
	switch name {
	case "nop":
		c.end()
		ei(isa.Inst{Op: isa.OpADDI})
	case "li", "la":
		rd := c.reg()
		c.expect(",")
		v := int32(c.expr())
		c.end()
		// Always a lui+addi pair so both passes agree on size.
		hi := (v + 0x800) &^ 0xfff
		lo := v - hi
		ei(isa.Inst{Op: isa.OpLUI, Rd: rd, Imm: hi})
		ei(isa.Inst{Op: isa.OpADDI, Rd: rd, Rs1: rd, Imm: lo})
	case "mv":
		rd := c.reg()
		c.expect(",")
		rs := c.reg()
		c.end()
		ei(isa.Inst{Op: isa.OpADDI, Rd: rd, Rs1: rs})
	case "not":
		rd := c.reg()
		c.expect(",")
		rs := c.reg()
		c.end()
		ei(isa.Inst{Op: isa.OpXORI, Rd: rd, Rs1: rs, Imm: -1})
	case "neg":
		rd := c.reg()
		c.expect(",")
		rs := c.reg()
		c.end()
		ei(isa.Inst{Op: isa.OpSUB, Rd: rd, Rs2: rs})
	case "seqz":
		rd := c.reg()
		c.expect(",")
		rs := c.reg()
		c.end()
		ei(isa.Inst{Op: isa.OpSLTIU, Rd: rd, Rs1: rs, Imm: 1})
	case "snez":
		rd := c.reg()
		c.expect(",")
		rs := c.reg()
		c.end()
		ei(isa.Inst{Op: isa.OpSLTU, Rd: rd, Rs2: rs})
	case "beqz", "bnez", "blez", "bgez", "bltz", "bgtz":
		rs := c.reg()
		c.expect(",")
		off := c.target()
		c.end()
		switch name {
		case "beqz":
			ei(isa.Inst{Op: isa.OpBEQ, Rs1: rs, Imm: off})
		case "bnez":
			ei(isa.Inst{Op: isa.OpBNE, Rs1: rs, Imm: off})
		case "blez":
			ei(isa.Inst{Op: isa.OpBGE, Rs2: rs, Imm: off})
		case "bgez":
			ei(isa.Inst{Op: isa.OpBGE, Rs1: rs, Imm: off})
		case "bltz":
			ei(isa.Inst{Op: isa.OpBLT, Rs1: rs, Imm: off})
		default:
			ei(isa.Inst{Op: isa.OpBLT, Rs2: rs, Imm: off})
		}
	case "bgt", "ble", "bgtu", "bleu":
		rs := c.reg()
		c.expect(",")
		rt := c.reg()
		c.expect(",")
		off := c.target()
		c.end()
		switch name {
		case "bgt":
			ei(isa.Inst{Op: isa.OpBLT, Rs1: rt, Rs2: rs, Imm: off})
		case "ble":
			ei(isa.Inst{Op: isa.OpBGE, Rs1: rt, Rs2: rs, Imm: off})
		case "bgtu":
			ei(isa.Inst{Op: isa.OpBLTU, Rs1: rt, Rs2: rs, Imm: off})
		default:
			ei(isa.Inst{Op: isa.OpBGEU, Rs1: rt, Rs2: rs, Imm: off})
		}
	case "j":
		off := c.target()
		c.end()
		ei(isa.Inst{Op: isa.OpJAL, Imm: off})
	case "call":
		off := c.target()
		c.end()
		ei(isa.Inst{Op: isa.OpJAL, Rd: isa.RegRA, Imm: off})
	case "tail":
		off := c.target()
		c.end()
		ei(isa.Inst{Op: isa.OpJAL, Imm: off})
	case "jr":
		rs := c.reg()
		c.end()
		ei(isa.Inst{Op: isa.OpJALR, Rs1: rs})
	case "ret":
		c.end()
		ei(isa.Inst{Op: isa.OpJALR, Rs1: isa.RegRA})
	case "csrr":
		rd := c.reg()
		c.expect(",")
		csr := c.csr()
		c.end()
		ei(isa.Inst{Op: isa.OpCSRRS, Rd: rd, CSR: csr})
	case "csrw":
		csr := c.csr()
		c.expect(",")
		rs := c.reg()
		c.end()
		ei(isa.Inst{Op: isa.OpCSRRW, CSR: csr, Rs1: rs})
	case "csrs":
		csr := c.csr()
		c.expect(",")
		rs := c.reg()
		c.end()
		ei(isa.Inst{Op: isa.OpCSRRS, CSR: csr, Rs1: rs})
	case "csrc":
		csr := c.csr()
		c.expect(",")
		rs := c.reg()
		c.end()
		ei(isa.Inst{Op: isa.OpCSRRC, CSR: csr, Rs1: rs})
	case "csrwi":
		csr := c.csr()
		c.expect(",")
		v := c.expr()
		c.end()
		ei(isa.Inst{Op: isa.OpCSRRWI, CSR: csr, Imm: int32(v)})
	case "fmv.s", "fabs.s", "fneg.s", "fmv.d", "fabs.d", "fneg.d":
		rd := c.freg()
		c.expect(",")
		rs := c.freg()
		c.end()
		var op isa.Op
		switch name {
		case "fmv.s":
			op = isa.OpFSGNJS
		case "fabs.s":
			op = isa.OpFSGNJXS
		case "fneg.s":
			op = isa.OpFSGNJNS
		case "fmv.d":
			op = isa.OpFSGNJD
		case "fabs.d":
			op = isa.OpFSGNJXD
		default:
			op = isa.OpFSGNJND
		}
		ei(isa.Inst{Op: op, Rd: rd, Rs1: rs, Rs2: rs})
	default:
		return false
	}
	return true
}
