// Package asm implements a two-pass assembler for RV32GC assembly sources.
// It plays the role of the GCC cross toolchain in the paper's compliance
// flow: generated test cases are platform-independent assembler source
// files that are assembled per target configuration, with conditional
// assembly (.ifdef) standing in for compiler command-line defines such as
// __riscv_fdiv.
//
// Supported syntax: labels, the full RV32GC mnemonic set (32-bit
// encodings), common pseudo-instructions (li, la, mv, j, ret, csrr, ...),
// data directives (.word/.half/.byte/.dword/.zero/.fill/.ascii/.asciz),
// section control (.text/.data/.section), .align/.balign, .equ/.set,
// conditionals (.ifdef/.ifndef/.else/.endif) and the %hi()/%lo()
// relocation operators.
package asm

import (
	"fmt"
	"strings"
)

// Options configures one assembly run (one "platform").
type Options struct {
	// TextBase and DataBase are the load addresses of the two sections
	// (the linker-script part of the compliance flow).
	TextBase uint32
	DataBase uint32
	// Defines are the symbols visible to .ifdef, mirroring -D compiler
	// flags. Values are usable in expressions.
	Defines map[string]int64
}

// Section is a contiguous output region.
type Section struct {
	Name string
	Addr uint32
	Data []byte
}

// Program is the result of assembling a source file.
type Program struct {
	Text    Section
	Data    Section
	Symbols map[string]uint32
	Entry   uint32
}

// Symbol returns a defined symbol's address.
func (p *Program) Symbol(name string) (uint32, bool) {
	v, ok := p.Symbols[name]
	return v, ok
}

// Error is an assembly diagnostic with a source line number.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// macro is a user-defined assembler macro (.macro/.endm).
type macro struct {
	name   string
	params []string
	body   []string
}

// assembler carries the state of one run.
type assembler struct {
	opts    Options
	symbols map[string]int64 // labels and .equ values
	defined map[string]bool

	pass        int // 1 = sizing/labels, 2 = emission
	sect        int // 0 = text, 1 = data
	loc         [2]uint32
	out         [2][]byte
	condStk     []bool // .ifdef nesting; false = skipping
	line        int
	err         *Error
	macros      map[string]*macro
	collecting  *macro // non-nil while between .macro and .endm
	expandDepth int
}

const (
	sectText = 0
	sectData = 1
)

// Assemble runs both passes over the source.
func Assemble(src string, opts Options) (*Program, error) {
	a := &assembler{opts: opts, symbols: map[string]int64{}, defined: map[string]bool{}}
	for k, v := range opts.Defines {
		a.symbols[k] = v
		a.defined[k] = true
	}
	for pass := 1; pass <= 2; pass++ {
		a.pass = pass
		a.sect = sectText
		a.loc = [2]uint32{opts.TextBase, opts.DataBase}
		a.out = [2][]byte{}
		a.condStk = a.condStk[:0]
		a.macros = map[string]*macro{}
		a.collecting = nil
		lines := strings.Split(src, "\n")
		for i, line := range lines {
			a.line = i + 1
			a.statement(line)
			if a.err != nil {
				return nil, a.err
			}
		}
		if len(a.condStk) != 0 {
			return nil, &Error{a.line, "unterminated .ifdef"}
		}
		if a.collecting != nil {
			return nil, &Error{a.line, "unterminated .macro " + a.collecting.name}
		}
	}
	p := &Program{
		Text:    Section{Name: ".text", Addr: opts.TextBase, Data: a.out[sectText]},
		Data:    Section{Name: ".data", Addr: opts.DataBase, Data: a.out[sectData]},
		Symbols: map[string]uint32{},
		Entry:   opts.TextBase,
	}
	for k, v := range a.symbols {
		p.Symbols[k] = uint32(v)
	}
	if start, ok := a.symbols["_start"]; ok {
		p.Entry = uint32(start)
	}
	return p, nil
}

func (a *assembler) fail(format string, args ...any) {
	if a.err == nil {
		a.err = &Error{a.line, fmt.Sprintf(format, args...)}
	}
}

// skipping reports whether the current conditional block is inactive.
func (a *assembler) skipping() bool {
	for _, on := range a.condStk {
		if !on {
			return true
		}
	}
	return false
}

// emit appends bytes to the current section.
func (a *assembler) emit(b ...byte) {
	if a.pass == 2 {
		a.out[a.sect] = append(a.out[a.sect], b...)
	}
	a.loc[a.sect] += uint32(len(b))
}

func (a *assembler) emit32(w uint32) {
	a.emit(byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
}

// statement processes one source line.
func (a *assembler) statement(line string) {
	// Macro collection intercepts raw lines (parameters substitute
	// textually on expansion, GNU-as style).
	if a.collecting != nil {
		trimmed := strings.TrimSpace(line)
		if trimmed == ".endm" || trimmed == ".endmacro" {
			a.macros[a.collecting.name] = a.collecting
			a.collecting = nil
			return
		}
		a.collecting.body = append(a.collecting.body, line)
		return
	}
	toks, err := tokenize(line)
	if err != nil {
		a.fail("%v", err)
		return
	}
	// Labels.
	for len(toks) >= 2 && toks[0].kind == tokIdent && toks[1].is(":") {
		if !a.skipping() {
			a.defineLabel(toks[0].text)
		}
		toks = toks[2:]
	}
	if len(toks) == 0 {
		return
	}
	name := toks[0]
	if name.kind != tokIdent {
		a.fail("expected mnemonic or directive, got %q", name.text)
		return
	}
	rest := toks[1:]
	if strings.HasPrefix(name.text, ".") {
		a.directive(name.text, rest)
		return
	}
	if a.skipping() {
		return
	}
	a.instruction(name.text, rest)
}

func (a *assembler) defineLabel(name string) {
	addr := int64(a.loc[a.sect])
	if a.pass == 1 {
		if _, dup := a.symbols[name]; dup {
			a.fail("duplicate label %q", name)
			return
		}
		a.symbols[name] = addr
		return
	}
	// Pass 2 validates label convergence.
	if a.symbols[name] != addr {
		a.fail("label %q moved between passes (%#x -> %#x)", name, a.symbols[name], addr)
	}
}
