package asm

import (
	"encoding/binary"
	"strings"
	"testing"

	"rvnegtest/internal/isa"
)

var defaultOpts = Options{TextBase: 0, DataBase: 0x4000}

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src, defaultOpts)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func words(sec Section) []uint32 {
	out := make([]uint32, len(sec.Data)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(sec.Data[i*4:])
	}
	return out
}

// disasmText decodes every text word for semantic checks.
func disasmText(p *Program) []isa.Inst {
	var out []isa.Inst
	for _, w := range words(p.Text) {
		out = append(out, isa.Ref.Decode32(w))
	}
	return out
}

func TestBasicInstructions(t *testing.T) {
	p := mustAssemble(t, `
	addi x1, x2, 3
	add  a0, a1, a2
	sub  t0, t1, t2
	lw   x5, -4(x6)
	sw   x7, 8(x8)
	lui  x9, 0xfffff
	auipc x10, 1
	and  x1, x2, x3
	slli x4, x5, 31
	sltiu x6, x7, 2047
`)
	insts := disasmText(p)
	want := []struct {
		op  isa.Op
		imm int32
	}{
		{isa.OpADDI, 3}, {isa.OpADD, 0}, {isa.OpSUB, 0},
		{isa.OpLW, -4}, {isa.OpSW, 8}, {isa.OpLUI, int32(0xfffff000 - 1<<32)},
		{isa.OpAUIPC, 4096}, {isa.OpAND, 0}, {isa.OpSLLI, 31}, {isa.OpSLTIU, 2047},
	}
	if len(insts) != len(want) {
		t.Fatalf("got %d instructions", len(insts))
	}
	for i, w := range want {
		if insts[i].Op != w.op || insts[i].Imm != w.imm {
			t.Errorf("inst %d = %v imm=%d, want %v imm=%d", i, insts[i].Op, insts[i].Imm, w.op, w.imm)
		}
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAssemble(t, `
start:
	addi x1, x0, 1
loop:
	addi x1, x1, -1
	bnez x1, loop
	beq  x0, x0, end
	addi x2, x0, 99
end:
	j start
`)
	insts := disasmText(p)
	// bnez at address 8 targets loop (4): offset -4.
	if insts[2].Op != isa.OpBNE || insts[2].Imm != -4 {
		t.Errorf("bnez: %v imm=%d", insts[2].Op, insts[2].Imm)
	}
	// beq at 12 targets end (20): offset 8.
	if insts[3].Op != isa.OpBEQ || insts[3].Imm != 8 {
		t.Errorf("beq: %v imm=%d", insts[3].Op, insts[3].Imm)
	}
	// j at 20 targets start (0): offset -20.
	if insts[5].Op != isa.OpJAL || insts[5].Imm != -20 || insts[5].Rd != 0 {
		t.Errorf("j: %+v", insts[5])
	}
	if p.Symbols["loop"] != 4 || p.Symbols["end"] != 20 {
		t.Errorf("symbols: %v", p.Symbols)
	}
}

func TestPseudoInstructions(t *testing.T) {
	p := mustAssemble(t, `
	nop
	li  t0, 0x12345678
	li  t1, -1
	mv  a0, a1
	not a2, a3
	neg a4, a5
	seqz a6, a7
	snez s2, s3
	ret
	jr  t2
	csrr  t3, mscratch
	csrw  mtvec, t4
	csrwi mscratch, 5
	fmv.s  ft0, ft1
	fneg.d fa0, fa1
`)
	insts := disasmText(p)
	i := 0
	expect := func(op isa.Op, check func(isa.Inst) bool) {
		t.Helper()
		if insts[i].Op != op || (check != nil && !check(insts[i])) {
			t.Errorf("inst %d: %s (%+v), want %v", i, isa.Disasm(insts[i]), insts[i], op)
		}
		i++
	}
	expect(isa.OpADDI, func(x isa.Inst) bool { return x.Rd == 0 && x.Imm == 0 })
	expect(isa.OpLUI, func(x isa.Inst) bool { return x.Rd == 5 })
	expect(isa.OpADDI, func(x isa.Inst) bool { return x.Rd == 5 && x.Rs1 == 5 })
	expect(isa.OpLUI, func(x isa.Inst) bool { return x.Rd == 6 && x.Imm == 0 })
	expect(isa.OpADDI, func(x isa.Inst) bool { return x.Imm == -1 })
	expect(isa.OpADDI, func(x isa.Inst) bool { return x.Rd == 10 && x.Rs1 == 11 })
	expect(isa.OpXORI, func(x isa.Inst) bool { return x.Imm == -1 })
	expect(isa.OpSUB, func(x isa.Inst) bool { return x.Rs1 == 0 && x.Rs2 == 15 })
	expect(isa.OpSLTIU, func(x isa.Inst) bool { return x.Imm == 1 })
	expect(isa.OpSLTU, func(x isa.Inst) bool { return x.Rs1 == 0 })
	expect(isa.OpJALR, func(x isa.Inst) bool { return x.Rd == 0 && x.Rs1 == isa.RegRA })
	expect(isa.OpJALR, func(x isa.Inst) bool { return x.Rd == 0 && x.Rs1 == 7 })
	expect(isa.OpCSRRS, func(x isa.Inst) bool { return x.Rd == 28 && x.CSR == 0x340 && x.Rs1 == 0 })
	expect(isa.OpCSRRW, func(x isa.Inst) bool { return x.Rd == 0 && x.CSR == 0x305 })
	expect(isa.OpCSRRWI, func(x isa.Inst) bool { return x.CSR == 0x340 && x.Imm == 5 })
	expect(isa.OpFSGNJS, func(x isa.Inst) bool { return x.Rs1 == x.Rs2 })
	expect(isa.OpFSGNJND, func(x isa.Inst) bool { return x.Rd == 10 })
}

// TestLiRoundtrip verifies li materializes arbitrary constants exactly, by
// simulating the lui+addi pair.
func TestLiRoundtrip(t *testing.T) {
	for _, v := range []uint32{0, 1, 0x7ff, 0x800, 0xfff, 0x1000, 0x7fffffff,
		0x80000000, 0xffffffff, 0xfffff800, 0x12345678, 0xdeadbeef} {
		p, err := Assemble("li t0, "+itoa(v), defaultOpts)
		if err != nil {
			t.Fatalf("li %#x: %v", v, err)
		}
		insts := disasmText(p)
		if len(insts) != 2 {
			t.Fatalf("li %#x: %d instructions", v, len(insts))
		}
		got := uint32(insts[0].Imm) + uint32(insts[1].Imm)
		if got != v {
			t.Errorf("li %#x materializes %#x", v, got)
		}
	}
}

func itoa(v uint32) string {
	const hex = "0123456789abcdef"
	s := make([]byte, 0, 10)
	for i := 28; i >= 0; i -= 4 {
		s = append(s, hex[v>>uint(i)&0xf])
	}
	return "0x" + string(s)
}

func TestHiLoRelocation(t *testing.T) {
	p := mustAssemble(t, `
	lui  x1, %hi(target)
	addi x1, x1, %lo(target)
	lw   x2, %lo(target)(x1)
	.data
	.align 4
target:
	.word 42
`)
	insts := disasmText(p)
	addr := p.Symbols["target"]
	got := uint32(insts[0].Imm) + uint32(insts[1].Imm)
	if got != addr {
		t.Errorf("%%hi+%%lo = %#x, want %#x", got, addr)
	}
	if uint32(insts[2].Imm)&0xfff != addr&0xfff {
		t.Errorf("lw %%lo = %d", insts[2].Imm)
	}
}

func TestDataDirectives(t *testing.T) {
	p := mustAssemble(t, `
	.data
	.byte 1, 2, 0xff
	.half 0x1234
	.align 2
	.word 0xdeadbeef, 42
	.dword 0x1122334455667788
	.zero 3
	.byte 7
	.ascii "ab"
	.asciz "c"
	.fill 2, 2, 0xbeef
`)
	want := []byte{
		1, 2, 0xff,
		0x34, 0x12,
		0, 0, 0, // align padding to 8
		0xef, 0xbe, 0xad, 0xde, 42, 0, 0, 0,
		0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,
		0, 0, 0,
		7,
		'a', 'b',
		'c', 0,
		0xef, 0xbe, 0xef, 0xbe,
	}
	if string(p.Data.Data) != string(want) {
		t.Errorf("data = % x\nwant  % x", p.Data.Data, want)
	}
}

func TestEquAndExpressions(t *testing.T) {
	p := mustAssemble(t, `
	.equ BASE, 0x100
	.equ SIZE, 8*4
	addi x1, x0, BASE+SIZE
	addi x2, x0, (1 << 4) | 3
	addi x3, x0, ~0 & 0xff
	addi x4, x0, -((2+3)*4)
	.data
	.word BASE - SIZE, BASE / SIZE
`)
	insts := disasmText(p)
	if insts[0].Imm != 0x120 || insts[1].Imm != 0x13 || insts[2].Imm != 0xff || insts[3].Imm != -20 {
		t.Errorf("exprs: %d %d %d %d", insts[0].Imm, insts[1].Imm, insts[2].Imm, insts[3].Imm)
	}
	w := words(p.Data)
	if w[0] != 0x100-32 || w[1] != 0x100/32 {
		t.Errorf("data exprs: %v", w)
	}
}

func TestIfdefConditionals(t *testing.T) {
	src := `
	.ifdef FP
	addi x1, x0, 1
	.else
	addi x1, x0, 2
	.endif
	.ifndef FP
	addi x2, x0, 3
	.endif
`
	p1, err := Assemble(src, Options{DataBase: 0x4000, Defines: map[string]int64{"FP": 1}})
	if err != nil {
		t.Fatal(err)
	}
	i1 := disasmText(p1)
	if len(i1) != 1 || i1[0].Imm != 1 {
		t.Errorf("with FP: %+v", i1)
	}
	p2 := mustAssemble(t, src)
	i2 := disasmText(p2)
	if len(i2) != 2 || i2[0].Imm != 2 || i2[1].Imm != 3 {
		t.Errorf("without FP: %+v", i2)
	}
}

func TestNestedIfdef(t *testing.T) {
	p, err := Assemble(`
	.ifdef A
	.ifdef B
	addi x1, x0, 1
	.endif
	addi x2, x0, 2
	.endif
	addi x3, x0, 3
`, Options{DataBase: 0x4000, Defines: map[string]int64{"A": 1}})
	if err != nil {
		t.Fatal(err)
	}
	insts := disasmText(p)
	if len(insts) != 2 || insts[0].Rd != 2 || insts[1].Rd != 3 {
		t.Errorf("nested ifdef: %+v", insts)
	}
}

func TestAMOOperands(t *testing.T) {
	p := mustAssemble(t, `
	lr.w      t0, (a0)
	sc.w      t1, t2, (a0)
	amoswap.w t3, t4, (a1)
	amoadd.w  x0, x1, (x2)
`)
	insts := disasmText(p)
	if insts[0].Op != isa.OpLRW || insts[0].Rd != 5 || insts[0].Rs1 != 10 {
		t.Errorf("lr.w: %+v", insts[0])
	}
	if insts[1].Op != isa.OpSCW || insts[1].Rs2 != 7 {
		t.Errorf("sc.w: %+v", insts[1])
	}
	if insts[2].Op != isa.OpAMOSWAPW || insts[2].Rs1 != 11 {
		t.Errorf("amoswap: %+v", insts[2])
	}
}

func TestFPOperandsAndRoundingModes(t *testing.T) {
	p := mustAssemble(t, `
	flw    ft0, 0(a0)
	fsd    fa1, 8(sp)
	fadd.s ft1, ft2, ft3
	fadd.d ft1, ft2, ft3, rtz
	fmadd.s ft4, ft5, ft6, ft7, rup
	fsqrt.d  fa0, fa1, rne
	fcvt.w.s a0, fa0, rtz
	fcvt.d.w fa2, a3
	feq.s    a4, fa5, fa6
	fclass.d a5, fa7
`)
	insts := disasmText(p)
	if insts[0].Op != isa.OpFLW || insts[1].Op != isa.OpFSD {
		t.Fatalf("fp load/store: %v %v", insts[0].Op, insts[1].Op)
	}
	if insts[2].RM != 7 { // default dynamic
		t.Errorf("default rm = %d", insts[2].RM)
	}
	if insts[3].RM != 1 || insts[4].RM != 3 || insts[5].RM != 0 || insts[6].RM != 1 {
		t.Errorf("rms: %d %d %d %d", insts[3].RM, insts[4].RM, insts[5].RM, insts[6].RM)
	}
	if insts[4].Rs3 != 7 {
		t.Errorf("fmadd rs3 = %d", insts[4].Rs3)
	}
	if insts[8].Op != isa.OpFEQS || insts[8].Rd != 14 {
		t.Errorf("feq: %+v", insts[8])
	}
}

func TestSectionsAndEntry(t *testing.T) {
	p := mustAssemble(t, `
	.text
	nop
_start:
	nop
	.data
d1:
	.word 1
	.text
	nop
`)
	if p.Entry != 4 {
		t.Errorf("entry = %#x", p.Entry)
	}
	if p.Symbols["d1"] != 0x4000 {
		t.Errorf("data symbol = %#x", p.Symbols["d1"])
	}
	if len(p.Text.Data) != 12 || len(p.Data.Data) != 4 {
		t.Errorf("sizes: %d %d", len(p.Text.Data), len(p.Data.Data))
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		"bad mnemonic":       "frobnicate x1, x2",
		"bad register":       "addi q1, x0, 0",
		"imm out of range":   "addi x1, x0, 5000",
		"dup label":          "a:\na:\n nop",
		"undefined symbol":   "j nowhere",
		"unterminated ifdef": ".ifdef X\nnop",
		"stray endif":        ".endif",
		"bad directive":      ".frob 1",
		"trailing operand":   "nop nop",
		"unknown csr range":  "csrr x1, 0x1000",
		"bad shift":          "slli x1, x2, 32",
	}
	for name, src := range cases {
		if _, err := Assemble(src, defaultOpts); err == nil {
			t.Errorf("%s: expected error for %q", name, src)
		} else if !strings.Contains(err.Error(), "line") {
			t.Errorf("%s: error lacks line info: %v", name, err)
		}
	}
}

func TestCurrentLocationSymbol(t *testing.T) {
	p := mustAssemble(t, `
	nop
	j .
`)
	insts := disasmText(p)
	if insts[1].Op != isa.OpJAL || insts[1].Imm != 0 {
		t.Errorf("j . : %+v", insts[1])
	}
}

func TestCommentsAndFormatting(t *testing.T) {
	p := mustAssemble(t, `
	# full line comment
	nop          # trailing
	addi x1, x0, 1 // c++ style
lbl:  addi x2, x0, 2   # label and inst on one line
`)
	insts := disasmText(p)
	if len(insts) != 3 {
		t.Fatalf("%d instructions", len(insts))
	}
	if p.Symbols["lbl"] != 8 {
		t.Errorf("lbl = %#x", p.Symbols["lbl"])
	}
}

func TestMacros(t *testing.T) {
	p := mustAssemble(t, `
.macro HALT
	li   t0, 0x7ff0
	sw   x0, 0(t0)
.endm
.macro LOAD3 rd, base, off
	lw   \rd, \off(\base)
.endm
	LOAD3 t1, t5, -16
	LOAD3 t2, t6, 8
	HALT
`)
	insts := disasmText(p)
	if len(insts) != 5 { // 2x LOAD3 + HALT (li expands to lui+addi, then sw)
		t.Fatalf("%d instructions", len(insts))
	}
	if insts[0].Op != isa.OpLW || insts[0].Rd != 6 || insts[0].Rs1 != 30 || insts[0].Imm != -16 {
		t.Errorf("macro arg substitution: %+v", insts[0])
	}
	if insts[1].Imm != 8 || insts[1].Rs1 != 31 {
		t.Errorf("second expansion: %+v", insts[1])
	}
	if insts[2].Op != isa.OpLUI || insts[4].Op != isa.OpSW {
		t.Errorf("parameterless macro: %v %v", insts[2].Op, insts[4].Op)
	}
}

func TestMacroWithLabelsAndConditionals(t *testing.T) {
	p := mustAssemble(t, `
.macro INIT
	.ifdef FP
	addi x1, x0, 1
	.else
	addi x1, x0, 2
	.endif
.endm
	INIT
`)
	insts := disasmText(p)
	if len(insts) != 1 || insts[0].Imm != 2 {
		t.Errorf("conditional in macro: %+v", insts)
	}
}

func TestMacroErrors(t *testing.T) {
	cases := map[string]string{
		"unterminated":  ".macro FOO\nnop",
		"stray endm":    ".endm",
		"too many args": ".macro M a\nnop\n.endm\nM 1, 2",
		"recursive":     ".macro R\nR\n.endm\nR",
		"nameless":      ".macro",
	}
	for name, src := range cases {
		if _, err := Assemble(src, defaultOpts); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Redefinition overrides (GNU-as allows purge/redefine; we take last).
	p := mustAssemble(t, ".macro M\nnop\n.endm\n.macro M\naddi x1, x0, 7\n.endm\nM")
	insts := disasmText(p)
	if len(insts) != 1 || insts[0].Imm != 7 {
		t.Errorf("redefinition: %+v", insts)
	}
}
