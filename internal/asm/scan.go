package asm

import (
	"fmt"
	"strings"
)

type tokKind uint8

const (
	tokIdent tokKind = iota // identifiers, mnemonics, directives, %ops
	tokNum                  // numeric literal
	tokPunct                // ( ) , : + - * / << >> ~ etc.
	tokStr                  // quoted string
)

type token struct {
	kind tokKind
	text string
	num  int64
}

func (t token) is(s string) bool { return t.kind == tokPunct && t.text == s }

// tokenize splits one logical source line into tokens, dropping comments
// (# and // to end of line).
func tokenize(line string) ([]token, error) {
	var toks []token
	i, n := 0, len(line)
	for i < n {
		c := line[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			return toks, nil
		case c == '/' && i+1 < n && line[i+1] == '/':
			return toks, nil
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < n && line[j] != '"' {
				if line[j] == '\\' && j+1 < n {
					j++
					switch line[j] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case '0':
						sb.WriteByte(0)
					default:
						sb.WriteByte(line[j])
					}
				} else {
					sb.WriteByte(line[j])
				}
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("unterminated string")
			}
			toks = append(toks, token{kind: tokStr, text: sb.String()})
			i = j + 1
		case c == '\'':
			if i+2 < n && line[i+2] == '\'' {
				toks = append(toks, token{kind: tokNum, num: int64(line[i+1])})
				i += 3
			} else {
				return nil, fmt.Errorf("bad character literal")
			}
		case isDigit(c):
			j := i
			for j < n && (isAlnum(line[j]) || line[j] == 'x' || line[j] == 'X') {
				j++
			}
			v, err := parseNum(line[i:j])
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tokNum, num: v, text: line[i:j]})
			i = j
		case isIdentStart(c):
			j := i
			for j < n && isIdentChar(line[j]) {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: line[i:j]})
			i = j
		case c == '%':
			// %hi / %lo relocation operators.
			j := i + 1
			for j < n && isAlnum(line[j]) {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: line[i:j]})
			i = j
		case c == '<' && i+1 < n && line[i+1] == '<':
			toks = append(toks, token{kind: tokPunct, text: "<<"})
			i += 2
		case c == '>' && i+1 < n && line[i+1] == '>':
			toks = append(toks, token{kind: tokPunct, text: ">>"})
			i += 2
		case strings.IndexByte("(),:+-*/~&|^", c) >= 0:
			toks = append(toks, token{kind: tokPunct, text: string(c)})
			i++
		default:
			return nil, fmt.Errorf("unexpected character %q", c)
		}
	}
	return toks, nil
}

func parseNum(s string) (int64, error) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	base := 10
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		base = 16
		s = s[2:]
	} else if strings.HasPrefix(s, "0b") || strings.HasPrefix(s, "0B") {
		base = 2
		s = s[2:]
	}
	if s == "" {
		return 0, fmt.Errorf("bad number")
	}
	var v uint64
	for _, c := range s {
		var d int
		switch {
		case c >= '0' && c <= '9':
			d = int(c - '0')
		case c >= 'a' && c <= 'f':
			d = int(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = int(c-'A') + 10
		default:
			return 0, fmt.Errorf("bad digit %q in number", c)
		}
		if d >= base {
			return 0, fmt.Errorf("digit %q out of range for base %d", c, base)
		}
		v = v*uint64(base) + uint64(d)
	}
	r := int64(v)
	if neg {
		r = -r
	}
	return r, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlnum(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentStart(c byte) bool {
	return c == '.' || c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentChar(c byte) bool { return isIdentStart(c) || isDigit(c) }
