package asm

// cursor walks a token slice during operand and expression parsing.
type cursor struct {
	a    *assembler
	toks []token
	pos  int
}

func (c *cursor) peek() (token, bool) {
	if c.pos < len(c.toks) {
		return c.toks[c.pos], true
	}
	return token{}, false
}

func (c *cursor) next() (token, bool) {
	t, ok := c.peek()
	if ok {
		c.pos++
	}
	return t, ok
}

func (c *cursor) accept(s string) bool {
	if t, ok := c.peek(); ok && t.is(s) {
		c.pos++
		return true
	}
	return false
}

func (c *cursor) expect(s string) bool {
	if !c.accept(s) {
		c.a.fail("expected %q", s)
		return false
	}
	return true
}

func (c *cursor) done() bool { return c.pos >= len(c.toks) }

func (c *cursor) end() {
	if !c.done() && c.a.err == nil {
		t, _ := c.peek()
		c.a.fail("trailing operand %q", t.text)
	}
}

// expr evaluates a full expression with C-like precedence.
func (c *cursor) expr() int64 { return c.orExpr() }

func (c *cursor) orExpr() int64 {
	v := c.xorExpr()
	for c.accept("|") {
		v |= c.xorExpr()
	}
	return v
}

func (c *cursor) xorExpr() int64 {
	v := c.andExpr()
	for c.accept("^") {
		v ^= c.andExpr()
	}
	return v
}

func (c *cursor) andExpr() int64 {
	v := c.shiftExpr()
	for c.accept("&") {
		v &= c.shiftExpr()
	}
	return v
}

func (c *cursor) shiftExpr() int64 {
	v := c.addExpr()
	for {
		switch {
		case c.accept("<<"):
			v <<= uint64(c.addExpr()) & 63
		case c.accept(">>"):
			v >>= uint64(c.addExpr()) & 63
		default:
			return v
		}
	}
}

func (c *cursor) addExpr() int64 {
	v := c.mulExpr()
	for {
		switch {
		case c.accept("+"):
			v += c.mulExpr()
		case c.accept("-"):
			v -= c.mulExpr()
		default:
			return v
		}
	}
}

func (c *cursor) mulExpr() int64 {
	v := c.unary()
	for {
		switch {
		case c.accept("*"):
			v *= c.unary()
		case c.accept("/"):
			d := c.unary()
			if d == 0 {
				c.a.fail("division by zero in expression")
				return 0
			}
			v /= d
		default:
			return v
		}
	}
}

func (c *cursor) unary() int64 {
	switch {
	case c.accept("-"):
		return -c.unary()
	case c.accept("~"):
		return ^c.unary()
	case c.accept("+"):
		return c.unary()
	}
	return c.primary()
}

func (c *cursor) primary() int64 {
	t, ok := c.next()
	if !ok {
		c.a.fail("expected expression")
		return 0
	}
	switch {
	case t.kind == tokNum:
		return t.num
	case t.is("("):
		v := c.expr()
		c.expect(")")
		return v
	case t.kind == tokIdent && (t.text == "%hi" || t.text == "%lo"):
		c.expect("(")
		v := c.expr()
		c.expect(")")
		if t.text == "%hi" {
			// Compensated high part: %hi + sign-extended %lo reconstructs
			// the value.
			return (v + 0x800) >> 12 & 0xfffff
		}
		return int64(int32(v<<20) >> 20)
	case t.kind == tokIdent:
		if t.text == "." {
			return int64(c.a.loc[c.a.sect])
		}
		if v, ok := c.a.symbols[t.text]; ok {
			return v
		}
		if c.a.pass == 1 {
			// Forward reference: the value does not affect sizing.
			return 0
		}
		c.a.fail("undefined symbol %q", t.text)
		return 0
	}
	c.a.fail("unexpected token %q in expression", t.text)
	return 0
}
