package core

import (
	"strings"
	"testing"

	"rvnegtest/internal/compliance"
	"rvnegtest/internal/coverage"
	"rvnegtest/internal/fuzz"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/sim"
)

func quickCfg(seed int64) fuzz.Config {
	cfg := fuzz.DefaultConfig()
	cfg.Coverage = coverage.V1()
	cfg.LenControl = 500
	cfg.Seed = seed
	return cfg
}

func TestGenerateSuite(t *testing.T) {
	suite, st, err := GenerateSuite(quickCfg(3), 10000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Cases) == 0 || len(suite.Cases) != st.TestCases {
		t.Fatalf("suite: %d cases, stats %d", len(suite.Cases), st.TestCases)
	}
	if !strings.Contains(suite.Origin, "seed=3") {
		t.Errorf("origin = %q", suite.Origin)
	}
}

// TestPipelineFindsSeededBugs runs the full two-phase pipeline on a small
// budget and checks the generated suite exposes defects in every
// simulator, reproducing Table I's qualitative content.
func TestPipelineFindsSeededBugs(t *testing.T) {
	cfg := quickCfg(5)
	cfg.Coverage = coverage.V3()
	suite, rep, st, err := Pipeline(cfg, 60000, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.TestCases < 100 {
		t.Fatalf("only %d test cases generated", st.TestCases)
	}
	t.Logf("suite: %d cases from %d execs\n%s", len(suite.Cases), st.Execs, rep.Render())
	cell := func(cfgWant isa.Config, name string) compliance.Cell {
		for i, c := range rep.Configs {
			if c != cfgWant {
				continue
			}
			for j, s := range rep.Sims {
				if s == name {
					return rep.Cells[i][j]
				}
			}
		}
		t.Fatalf("cell %v/%s missing", cfgWant, name)
		return compliance.Cell{}
	}
	// Every simulator is exposed in at least one configuration even at
	// this small budget (rare cells like VP/RV32I need the full-budget
	// experiment runs; see EXPERIMENTS.md).
	for j, name := range rep.Sims {
		total := 0
		for i := range rep.Configs {
			total += rep.Cells[i][j].Mismatches
		}
		if total == 0 {
			t.Errorf("%s: fuzzed suite found no mismatches in any configuration", name)
		}
		_ = j
	}
	// Table I shape checks.
	if g := cell(isa.RV32IMC, "GRIFT"); g.Mismatches <= cell(isa.RV32I, "GRIFT").Mismatches ||
		g.Mismatches <= cell(isa.RV32GC, "GRIFT").Mismatches {
		t.Error("GRIFT mismatches must peak on RV32IMC (the misconfigured target)")
	}
	if cell(isa.RV32IMC, sim.Sail.Name).Crashes == 0 {
		t.Error("sail did not crash on the fuzzed IMC suite")
	}
	if cell(isa.RV32IMC, "VP").Mismatches == 0 {
		t.Error("VP reserved-compressed defect not exposed on RV32IMC")
	}
	if cell(isa.RV32GC, "VP").Supported || cell(isa.RV32GC, sim.Sail.Name).Supported {
		t.Error("'/' cells missing")
	}
	if cell(isa.RV32I, "GRIFT").Mismatches == 0 {
		t.Error("GRIFT misaligned-jump defect not exposed on RV32I")
	}
}

func TestGrowthExperimentOrdering(t *testing.T) {
	res, err := GrowthExperiment(15000, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("results = %d", len(res))
	}
	counts := map[string]int{}
	for _, r := range res {
		counts[r.Name] = r.Stats.TestCases
		if len(r.Stats.Trace) == 0 {
			t.Errorf("%s: empty trace", r.Name)
		}
	}
	t.Logf("growth: v0=%d v1=%d v2=%d v3=%d", counts["v0"], counts["v1"], counts["v2"], counts["v3"])
	if !(counts["v0"] < counts["v1"] && counts["v1"] < counts["v2"] && counts["v2"] <= counts["v3"]) {
		t.Errorf("Fig. 4 ordering violated: %v", counts)
	}
}

func TestPipelineCustomRunner(t *testing.T) {
	r := &compliance.Runner{
		Ref:     sim.Reference,
		SUTs:    []*sim.Variant{sim.Spike},
		Configs: []isa.Config{isa.RV32I},
	}
	_, rep, _, err := Pipeline(quickCfg(7), 3000, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RefName != "reference" || len(rep.Sims) != 1 {
		t.Errorf("runner config not honoured: %+v", rep)
	}
}

// TestContinuousAccumulates: repeated rounds with fresh seeds keep
// contributing previously unseen findings (the paper's continuous
// negative-testing claim).
func TestContinuousAccumulates(t *testing.T) {
	cfg := quickCfg(100)
	cfg.Coverage = coverage.V2()
	res, err := Continuous(cfg, 3, 15000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 3 || res.Last == nil {
		t.Fatalf("rounds: %+v", res.Rounds)
	}
	total := 0
	for i, r := range res.Rounds {
		if r.NewFindings == 0 {
			t.Errorf("round %d (seed %d) contributed nothing new", i, r.Seed)
		}
		total += r.NewFindings
	}
	if total != res.Distinct {
		t.Errorf("distinct %d != sum of new findings %d", res.Distinct, total)
	}
	// Later rounds still find new cases, but the first round dominates.
	if res.Rounds[0].NewFindings <= res.Rounds[2].NewFindings/2 {
		t.Errorf("unexpected round profile: %+v", res.Rounds)
	}
}
