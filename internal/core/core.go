// Package core orchestrates the paper's two-phase pipeline: Phase A
// generates a compliance test suite with the coverage-guided fuzzer, and
// Phase B runs it across simulators, comparing signatures against the
// reference. It also provides the drivers for the paper's experiments
// (Fig. 4 growth curves and Table I).
package core

import (
	"fmt"
	"time"

	"rvnegtest/internal/compliance"
	"rvnegtest/internal/coverage"
	"rvnegtest/internal/fuzz"
	"rvnegtest/internal/template"
)

// GenerateSuite runs Phase A: a fuzzing campaign bounded by execution
// count and/or wall time, returning the collected test suite.
func GenerateSuite(cfg fuzz.Config, maxExecs uint64, maxDur time.Duration) (*compliance.Suite, fuzz.Stats, error) {
	f, err := fuzz.New(cfg)
	if err != nil {
		return nil, fuzz.Stats{}, err
	}
	if err := f.Run(maxExecs, maxDur); err != nil {
		return nil, f.Stats(), err
	}
	f.FlushTelemetry()
	st := f.Stats()
	suite := &compliance.Suite{
		Cases:  f.Corpus(),
		Family: cfg.Family,
		Origin: fmt.Sprintf("fuzzer seed=%d isa=%v execs=%d cov-points=%d",
			cfg.Seed, cfg.ISA, st.Execs, st.CovPoints),
	}
	if cfg.Family == template.FamilyTrap {
		// The directed probes bypass the filter (they write mtvec and
		// mstatus) and guarantee each seeded privileged-defect class at
		// least one witnessing case regardless of the fuzzing budget.
		suite.Cases = append(suite.Cases, fuzz.TrapDirectedCases()...)
	}
	return suite, st, nil
}

// GrowthResult is one configuration's outcome in the Fig. 4 experiment.
type GrowthResult struct {
	Name  string
	Stats fuzz.Stats
}

// GrowthExperiment reproduces Fig. 4: the v0..v3 coverage configurations
// fuzzing with the same budget; the trace in each result is the
// test-cases-vs-executions curve.
func GrowthExperiment(maxExecs uint64, maxDur time.Duration, seed int64) ([]GrowthResult, error) {
	var out []GrowthResult
	for _, name := range []string{"v0", "v1", "v2", "v3"} {
		opts, _ := coverage.ByName(name)
		cfg := fuzz.DefaultConfig()
		cfg.Coverage = opts
		cfg.Seed = seed
		suiteless, err := fuzz.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := suiteless.Run(maxExecs, maxDur); err != nil {
			return nil, err
		}
		out = append(out, GrowthResult{Name: name, Stats: suiteless.Stats()})
	}
	return out, nil
}

// Pipeline runs both phases: suite generation with the given fuzzing
// configuration and budget, then compliance testing with the runner.
func Pipeline(cfg fuzz.Config, maxExecs uint64, maxDur time.Duration, runner *compliance.Runner) (*compliance.Suite, *compliance.Report, fuzz.Stats, error) {
	suite, st, err := GenerateSuite(cfg, maxExecs, maxDur)
	if err != nil {
		return nil, nil, st, err
	}
	if runner == nil {
		runner = compliance.DefaultRunner()
	}
	rep, err := runner.Run(suite)
	if err != nil {
		return suite, nil, st, err
	}
	return suite, rep, st, nil
}
