package core

import (
	"encoding/hex"
	"fmt"
	"math"

	"rvnegtest/internal/compliance"
	"rvnegtest/internal/fuzz"
)

// RoundResult summarizes one round of continuous testing.
type RoundResult struct {
	Seed      int64
	TestCases int
	// NewFindings is the number of previously unseen (simulator,
	// configuration, bytestream) mismatch triples this round discovered.
	NewFindings int
}

// ContinuousResult aggregates a continuous negative-testing campaign.
type ContinuousResult struct {
	Rounds []RoundResult
	// Distinct is the total number of distinct findings across rounds.
	Distinct int
	// Last is the final round's full report.
	Last *compliance.Report
}

// Continuous implements the paper's continuous testing mode: the
// generate-and-compare pipeline is repeated with fresh fuzzer seeds, and
// the randomness of each round keeps contributing previously unseen
// mismatching test cases ("we consider this randomness actually a
// strength of our approach").
func Continuous(cfg fuzz.Config, rounds int, execsPerRound uint64, runner *compliance.Runner) (*ContinuousResult, error) {
	if runner == nil {
		runner = compliance.DefaultRunner()
	}
	runner.MaxExamples = math.MaxInt // track every mismatching case
	seen := map[string]bool{}
	res := &ContinuousResult{}
	baseSeed := cfg.Seed
	for round := 0; round < rounds; round++ {
		cfg.Seed = baseSeed + int64(round)
		suite, st, err := GenerateSuite(cfg, execsPerRound, 0)
		if err != nil {
			return nil, err
		}
		rep, err := runner.Run(suite)
		if err != nil {
			return nil, err
		}
		rr := RoundResult{Seed: cfg.Seed, TestCases: st.TestCases}
		for i, cfgRow := range rep.Configs {
			for j, simName := range rep.Sims {
				for _, idx := range rep.Cells[i][j].Examples {
					key := fmt.Sprintf("%s|%v|%s", simName, cfgRow, hex.EncodeToString(suite.Cases[idx]))
					if !seen[key] {
						seen[key] = true
						rr.NewFindings++
					}
				}
			}
		}
		res.Rounds = append(res.Rounds, rr)
		res.Last = rep
	}
	res.Distinct = len(seen)
	return res, nil
}
