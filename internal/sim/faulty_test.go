package sim

import (
	"testing"

	"rvnegtest/internal/isa"
	"rvnegtest/internal/template"
)

func faultyPlatform(t *testing.T) template.Platform {
	t.Helper()
	return template.Platform{Layout: template.DefaultLayout, Cfg: isa.RV32I}
}

// A NOP passes every decoder, so the inner reference simulator produces a
// clean signature for it.
var nopCase = []byte{0x13, 0x00, 0x00, 0x00}

func TestSeededScheduleDeterministic(t *testing.T) {
	plan := SeededSchedule(42, 0.2, 0.2, 0.2)
	inputs := [][]byte{nopCase, {0xff, 0xff}, {0x01}, {0x13, 0x05, 0x00, 0x00}, nil}
	var first []Fault
	for _, in := range inputs {
		first = append(first, plan(in))
	}
	// Re-evaluating (any order) yields the same decision per input.
	for i := len(inputs) - 1; i >= 0; i-- {
		if got := plan(inputs[i]); got != first[i] {
			t.Fatalf("input %d: fault %v then %v — schedule not deterministic", i, first[i], got)
		}
	}
	// A different seed produces a different plan for at least one input of
	// a larger sample (overwhelmingly likely with 20%/fault probabilities).
	other := SeededSchedule(43, 0.2, 0.2, 0.2)
	same := true
	for i := 0; i < 64; i++ {
		in := []byte{byte(i), byte(i >> 1)}
		if plan(in) != other(in) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules over 64 inputs")
	}
}

func TestFaultyPanicMessagePreserved(t *testing.T) {
	inner, err := New(Reference, faultyPlatform(t))
	if err != nil {
		t.Fatal(err)
	}
	f := &Faulty{
		Inner:    inner,
		Plan:     func([]byte) Fault { return FaultPanic },
		PanicMsg: "sail decoder crash: illegal encoding",
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("FaultPanic did not panic")
		}
		if got, _ := r.(string); got != "sail decoder crash: illegal encoding" {
			t.Fatalf("panic value %v, want the configured message", r)
		}
	}()
	f.Run(nopCase)
}

func TestFaultyCorruptSignature(t *testing.T) {
	inner, err := New(Reference, faultyPlatform(t))
	if err != nil {
		t.Fatal(err)
	}
	clean := inner.Run(nopCase)
	if clean.Crashed || len(clean.Signature) == 0 {
		t.Fatalf("reference run not clean: %+v", clean)
	}
	f := &Faulty{Inner: inner, Plan: func([]byte) Fault { return FaultCorruptSig }}
	bad := f.Run(nopCase)
	if bad.Crashed {
		t.Fatalf("corrupt-sig run crashed: %s", bad.CrashMsg)
	}
	diff := 0
	for i := range clean.Signature {
		if clean.Signature[i] != bad.Signature[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption changed %d signature words, want exactly 1", diff)
	}
	// The corruption must not write through to the inner simulator's data.
	again := inner.Run(nopCase)
	for i := range clean.Signature {
		if clean.Signature[i] != again.Signature[i] {
			t.Fatal("corruption leaked into the wrapped simulator's signature")
		}
	}
	// Same input, same corrupted word: the wrapper itself is deterministic.
	bad2 := f.Run(nopCase)
	for i := range bad.Signature {
		if bad.Signature[i] != bad2.Signature[i] {
			t.Fatal("corrupt-sig injection not deterministic per input")
		}
	}
}

func TestFaultyNoneDelegates(t *testing.T) {
	inner, err := New(Reference, faultyPlatform(t))
	if err != nil {
		t.Fatal(err)
	}
	f := &Faulty{Inner: inner} // nil Plan: never fault
	got := f.Run(nopCase)
	want := inner.Run(nopCase)
	if got.Crashed != want.Crashed || len(got.Signature) != len(want.Signature) {
		t.Fatalf("pass-through outcome differs: %+v vs %+v", got, want)
	}
	for i := range want.Signature {
		if got.Signature[i] != want.Signature[i] {
			t.Fatal("pass-through signature differs")
		}
	}
}
