package sim

import (
	"reflect"
	"testing"

	"rvnegtest/internal/exec"
	"rvnegtest/internal/hart"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/template"
)

// batchCases is a case mix covering the outcome classes: clean bodies,
// illegal encodings, deliberate traps, a decoder-crash pattern (Sail), a
// self-loop timeout, and an empty body.
func batchCases() [][]byte {
	return [][]byte{
		stream(enc(isa.Inst{Op: isa.OpADD, Rd: 5, Rs1: 1, Rs2: 2})),
		stream(
			enc(isa.Inst{Op: isa.OpADDI, Rd: 6, Rs1: 1, Imm: 17}),
			enc(isa.Inst{Op: isa.OpSLLI, Rd: 7, Rs1: 6, Imm: 3}),
			enc(isa.Inst{Op: isa.OpXOR, Rd: 8, Rs1: 7, Rs2: 6}),
		),
		stream(0xffffffff),
		stream(0x00000073), // ECALL
		{0x00, 0x84, 0, 0}, // sail decoder-crash pattern (compressed)
		stream(enc(isa.Inst{Op: isa.OpJAL, Rd: 0, Imm: 0})), // self-loop: timeout
		{},
		stream(
			enc(isa.Inst{Op: isa.OpLW, Rd: 5, Rs1: 30, Imm: -16}),
			enc(isa.Inst{Op: isa.OpSW, Rs1: 31, Rs2: 5, Imm: 32}),
		),
	}
}

func outcomesEqual(t *testing.T, label string, want, got []Outcome) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d outcomes", label, len(want), len(got))
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Errorf("%s case %d:\nscalar %+v\nbatch  %+v", label, i, want[i], got[i])
		}
	}
}

// TestBatchMatchesScalar is the core lockstep-equivalence check: for
// every variant, configuration and suite family, a batch of N cases must
// return exactly the outcomes of N sequential scalar runs — including
// the crash, timeout and injection-failure classes — and the cumulative
// decode-cache counters must agree with the scalar total.
func TestBatchMatchesScalar(t *testing.T) {
	cases := batchCases()
	for _, v := range All {
		for _, cfg := range []isa.Config{isa.RV32I, isa.RV32IMC} {
			for _, fam := range []template.Family{template.FamilyUser, template.FamilyTrap} {
				p := template.PlatformFor(fam, cfg)
				label := v.Name + "/" + cfg.String() + "/" + fam.String()
				scalar, err := New(v, p)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				want := make([]Outcome, len(cases))
				for i, bs := range cases {
					want[i] = runIsolated(scalar, bs)
				}
				wantStats := scalar.PredecodeStats()

				batcher, err := New(v, p)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				// Batch size 3 against 8 cases: exercises lane cycling.
				r, err := batcher.NewBatch(3)
				if err != nil {
					t.Fatalf("%s: NewBatch: %v", label, err)
				}
				got := r.RunHookedBatch(cases, nil)
				outcomesEqual(t, label, want, got)
				if gotStats := r.PredecodeStats(); gotStats != wantStats {
					t.Errorf("%s: cache stats diverged: scalar %+v batch %+v", label, wantStats, gotStats)
				}
				var laneSum exec.CacheStats
				for i := 0; i < 3; i++ {
					laneSum.Add(r.LanePredecodeStats(i))
				}
				if laneSum != r.PredecodeStats() {
					t.Errorf("%s: lane fold %+v != total %+v", label, laneSum, r.PredecodeStats())
				}
			}
		}
	}
}

// runIsolated is a scalar RunHooked with panic capture matching the
// batch lane semantics (RunHooked already recovers; this is just the
// plain call, named for symmetry).
func runIsolated(s *Simulator, bs []byte) Outcome { return s.RunHooked(bs, nil) }

// TestBatchMatchesScalarUnfused repeats the equivalence check with
// predecode (and with it fusion) disabled, so the classical path is
// covered by the same harness.
func TestBatchMatchesScalarUnfused(t *testing.T) {
	cases := batchCases()
	p := template.PlatformFor(template.FamilyUser, isa.RV32IMC)
	for _, v := range []*Variant{Reference, Sail} {
		scalar, err := New(v, p)
		if err != nil {
			t.Fatal(err)
		}
		scalar.NoPredecode = true
		want := make([]Outcome, len(cases))
		for i, bs := range cases {
			want[i] = scalar.RunHooked(bs, nil)
		}
		batcher, err := New(v, p)
		if err != nil {
			t.Fatal(err)
		}
		batcher.NoPredecode = true
		r, err := batcher.NewBatch(4)
		if err != nil {
			t.Fatal(err)
		}
		outcomesEqual(t, v.Name+"/nopredecode", want, r.RunHookedBatch(cases, nil))
		if st := r.PredecodeStats(); st != (exec.CacheStats{}) {
			t.Errorf("no-predecode batch reported cache stats %+v", st)
		}
	}
}

// TestBatchHookParity runs hooked batches against hooked scalar runs:
// each lane's coverage stream (instruction ops and edge IDs) must be
// identical to the scalar run of the same case.
func TestBatchHookParity(t *testing.T) {
	cases := batchCases()
	p := template.PlatformFor(template.FamilyTrap, isa.RV32IMC)
	scalar, err := New(Reference, p)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*recordHook, len(cases))
	for i, bs := range cases {
		want[i] = &recordHook{}
		scalar.RunHooked(bs, want[i])
	}
	batcher, err := New(Reference, p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := batcher.NewBatch(3)
	if err != nil {
		t.Fatal(err)
	}
	hooks := make([]exec.Hook, len(cases))
	got := make([]*recordHook, len(cases))
	for i := range cases {
		got[i] = &recordHook{}
		hooks[i] = got[i]
	}
	r.RunHookedBatch(cases, hooks)
	for i := range cases {
		if !reflect.DeepEqual(want[i].ops, got[i].ops) || !reflect.DeepEqual(want[i].edges, got[i].edges) {
			t.Errorf("case %d: hook streams diverged (scalar %d insts/%d edges, batch %d/%d)",
				i, len(want[i].ops), len(want[i].edges), len(got[i].ops), len(got[i].edges))
		}
	}
}

// recordHook records the per-instruction observation stream (the same
// call sites a coverage collector sees).
type recordHook struct {
	ops   []isa.Op
	edges []uint32
}

func (h *recordHook) OnInst(in *isa.Inst, _ *hart.Hart) { h.ops = append(h.ops, in.Op) }
func (h *recordHook) OnEdge(edge uint32)                { h.edges = append(h.edges, edge) }
