// Batched lockstep execution: a BatchRunner owns N persistent lanes —
// cloned image, decode-cache clone, arena-allocated hart and executor —
// and runs N test cases at once through exec.Batch. Every lane
// reproduces RunHooked exactly (injection, cache maintenance, panic
// isolation, outcome classification, signature extraction), so a batch
// of N cases returns the same N outcomes as N sequential scalar runs;
// batching is purely an execution strategy.
//
// The batch path reads no clocks: the per-run predecode maintenance
// timer is a scalar-path-only observation, and batch-level watchdogs
// belong to the callers (fuzz/compliance wrap RunHookedBatch in a
// resilience.Guard scaled by the batch size).
package sim

import (
	"errors"

	"rvnegtest/internal/exec"
	"rvnegtest/internal/hart"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/template"
)

// errNotBatchable reports a wrapper whose inner simulator has no batch
// support; callers fall back to scalar runs.
var errNotBatchable = errors.New("sim: simulator does not support batching")

// Batcher is implemented by simulators that can run test cases in
// batched lockstep. A BatchRunner is single-goroutine like the
// simulator it came from; callers that abandon one (watchdog timeout)
// must drop it and build a fresh one.
type Batcher interface {
	NewBatch(n int) (BatchRunner, error)
}

// BatchRunner runs groups of test cases in lockstep.
type BatchRunner interface {
	// RunHookedBatch runs the inputs one lane each (cycling through the
	// lanes in chunks when len(inputs) exceeds the batch size) and
	// returns one outcome per input, equal to what sequential
	// RunHooked(inputs[i], hooks[i]) calls would return. hooks may be
	// nil (no coverage); otherwise hooks[i] attaches to input i.
	RunHookedBatch(inputs [][]byte, hooks []exec.Hook) []Outcome
	// PredecodeStats sums the lanes' cumulative decode-cache counters in
	// lane order (the deterministic campaign fold).
	PredecodeStats() exec.CacheStats
	// LanePredecodeStats returns lane i's cumulative counters, letting a
	// caller attribute counter growth to individual cases.
	LanePredecodeStats(i int) exec.CacheStats
}

// batchLane is the persistent per-lane state.
type batchLane struct {
	img   *template.Image
	cache *exec.DecodeCache
}

type simBatch struct {
	variant *Variant
	limit   uint64
	lanes   []batchLane
	// harts and execs are arena slices: one contiguous allocation each,
	// so the lockstep rounds walk adjacent memory.
	harts []hart.Hart
	execs []exec.Executor
	batch exec.Batch
	// idx is scratch: the input indexes whose lanes actually ran in the
	// current chunk (injection failures never start a lane).
	idx []int
}

// NewBatch builds a runner with n lanes cloned from this simulator.
// Each lane owns a private image and decode-cache clone (sharing only
// the immutable predecode and fuse table), so lanes never observe each
// other. The parent simulator stays usable for scalar runs.
func (s *Simulator) NewBatch(n int) (BatchRunner, error) {
	if n < 1 {
		n = 1
	}
	b := &simBatch{
		variant: s.Variant,
		limit:   s.Limit,
		lanes:   make([]batchLane, n),
		harts:   make([]hart.Hart, n),
		execs:   make([]exec.Executor, n),
	}
	b.batch.Lanes = make([]*exec.Executor, n)
	// Like Clone, the batch shares nothing mutable with its parent (an
	// abandoned runner's goroutine may outlive the caller's interest).
	dec := &isa.Decoder{Quirks: s.Variant.DecQuirks}
	for i := 0; i < n; i++ {
		img := s.img.Clone()
		cache := s.pre.Clone()
		if s.NoPredecode {
			cache = nil
		}
		e := img.NewExecutorCfg(s.eff, dec, s.Variant.ExecQuirks)
		b.harts[i] = *e.CPU
		b.execs[i] = *e
		b.execs[i].CPU = &b.harts[i]
		b.execs[i].Cache = cache
		b.lanes[i] = batchLane{img: img, cache: cache}
		b.batch.Lanes[i] = &b.execs[i]
	}
	return b, nil
}

func (b *simBatch) RunHookedBatch(inputs [][]byte, hooks []exec.Hook) []Outcome {
	outs := make([]Outcome, len(inputs))
	for lo := 0; lo < len(inputs); lo += len(b.lanes) {
		hi := min(lo+len(b.lanes), len(inputs))
		b.runChunk(inputs[lo:hi], hooks, lo, outs[lo:hi])
	}
	return outs
}

// runChunk runs up to len(lanes) cases in one lockstep round set.
// hookBase is the chunk's offset into the hooks slice.
func (b *simBatch) runChunk(inputs [][]byte, hooks []exec.Hook, hookBase int, outs []Outcome) {
	// Lane setup: mirror the scalar RunHooked prologue per lane.
	active := b.batch.Lanes[:0]
	b.idx = b.idx[:0]
	for i, bs := range inputs {
		lane := &b.lanes[i]
		e := &b.execs[i]
		if err := lane.img.Inject(bs); err != nil {
			outs[i] = Outcome{Crashed: true, CrashMsg: err.Error()}
			continue
		}
		if lane.cache != nil {
			lane.cache.Reset()
			if n := uint32(len(bs)+3) &^ 3; n > 0 {
				lane.cache.InvalidateRange(lane.img.InjectAddr, n)
			}
		}
		h := e.CPU
		h.Reset()
		h.PC = lane.img.Entry
		e.Halted = false
		e.InstCount = 0
		e.TrapCount = 0
		e.Hook = nil
		if hooks != nil {
			e.Hook = hooks[hookBase+i]
		}
		b.idx = append(b.idx, i)
		active = append(active, e)
	}
	if len(active) == 0 {
		return
	}
	b.batch.Lanes = active
	status := b.batch.Run(b.limit)

	// Outcome extraction: mirror the scalar RunHooked epilogue per lane.
	for si, i := range b.idx {
		outs[i] = laneOutcome(&b.lanes[i], &b.execs[i], status[si])
	}
}

// laneOutcome classifies one finished lane exactly like RunHooked.
func laneOutcome(lane *batchLane, e *exec.Executor, st exec.LaneStatus) Outcome {
	out := Outcome{Insts: e.InstCount, Traps: e.TrapCount}
	if st.Panicked {
		out.Crashed = true
		out.CrashMsg = st.PanicMsg
		return out
	}
	if st.Err != nil {
		out.TimedOut, out.CrashMsg = classifyRunError(st.Err)
		out.Crashed = !out.TimedOut
		return out
	}
	signature, err := lane.img.Signature()
	if err != nil {
		out.Crashed = true
		out.CrashMsg = err.Error()
		return out
	}
	out.Signature = signature
	return out
}

func (b *simBatch) PredecodeStats() exec.CacheStats {
	var s exec.CacheStats
	for i := range b.lanes {
		s.Add(b.lanes[i].cache.Stats())
	}
	return s
}

func (b *simBatch) LanePredecodeStats(i int) exec.CacheStats {
	return b.lanes[i].cache.Stats()
}

var _ Batcher = (*Simulator)(nil)
var _ PredecodeStatser = (*simBatch)(nil)
