package sim

import (
	"crypto/sha256"
	"encoding/binary"

	"rvnegtest/internal/exec"
)

// Fault is one injectable harness-level failure mode.
type Fault int

const (
	// FaultNone delegates to the wrapped simulator unchanged.
	FaultNone Fault = iota
	// FaultPanic panics out of Run, as a buggy decoder or executor would.
	FaultPanic
	// FaultWedge blocks until released (or forever), the infinite-loop
	// failure only a wall-clock watchdog can observe.
	FaultWedge
	// FaultCorruptSig returns the real outcome with one signature word
	// flipped — a silently-wrong simulator.
	FaultCorruptSig
)

// Schedule decides which fault, if any, to inject for a given input. It
// is keyed on the input bytes rather than a call counter so injection is
// deterministic regardless of worker count or execution order.
type Schedule func(bs []byte) Fault

// inputHash mixes the input into a uniform 64-bit key.
func inputHash(seed int64, bs []byte) uint64 {
	h := sha256.New()
	var s [8]byte
	binary.LittleEndian.PutUint64(s[:], uint64(seed))
	h.Write(s[:])
	h.Write(bs)
	return binary.LittleEndian.Uint64(h.Sum(nil)[:8])
}

// SeededSchedule injects each fault class with the given per-input
// probability (0..1), chosen deterministically from a hash of (seed,
// input). The probabilities are evaluated in order panic, wedge, corrupt
// over disjoint hash ranges, so one input triggers at most one fault.
func SeededSchedule(seed int64, pPanic, pWedge, pCorrupt float64) Schedule {
	return func(bs []byte) Fault {
		u := float64(inputHash(seed, bs)>>11) / float64(1<<53)
		switch {
		case u < pPanic:
			return FaultPanic
		case u < pPanic+pWedge:
			return FaultWedge
		case u < pPanic+pWedge+pCorrupt:
			return FaultCorruptSig
		}
		return FaultNone
	}
}

// Faulty wraps a simulator and injects faults on a schedule. It exists
// for the resilience tests: each degradation path (panic isolation,
// watchdog reaping, breaker tripping) is proved end to end against a
// simulator that actually misbehaves.
type Faulty struct {
	// Inner is the wrapped simulator.
	Inner HookedSim
	// Plan decides the fault for each input; nil means never fault.
	Plan Schedule
	// PanicMsg overrides the injected panic value (default
	// "faulty: injected panic") so tests can assert message preservation.
	PanicMsg string
	// Release, when non-nil, unblocks wedged runs at test teardown so the
	// abandoned goroutines exit instead of leaking past the test. A nil
	// Release wedges forever.
	Release <-chan struct{}
}

// Run implements Sim.
func (f *Faulty) Run(bs []byte) Outcome { return f.RunHooked(bs, nil) }

// RunHooked implements HookedSim.
func (f *Faulty) RunHooked(bs []byte, hook exec.Hook) Outcome {
	fault := FaultNone
	if f.Plan != nil {
		fault = f.Plan(bs)
	}
	switch fault {
	case FaultPanic:
		msg := f.PanicMsg
		if msg == "" {
			msg = "faulty: injected panic"
		}
		panic(msg)
	case FaultWedge:
		if f.Release != nil {
			<-f.Release
		} else {
			select {}
		}
		return Outcome{}
	case FaultCorruptSig:
		out := f.Inner.RunHooked(bs, hook)
		if len(out.Signature) > 0 {
			sig := make([]uint32, len(out.Signature))
			copy(sig, out.Signature)
			i := int(inputHash(^int64(0), bs) % uint64(len(sig)))
			sig[i] ^= 0xdeadbeef
			out.Signature = sig
		}
		return out
	}
	return f.Inner.RunHooked(bs, hook)
}

// PredecodeStats delegates to the wrapped simulator's decode-cache
// counters when it has them, keeping the fault wrapper transparent to
// telemetry.
func (f *Faulty) PredecodeStats() exec.CacheStats {
	if s, ok := f.Inner.(PredecodeStatser); ok {
		return s.PredecodeStats()
	}
	return exec.CacheStats{}
}

// NewBatch implements Batcher when the wrapped simulator does, wrapping
// its runner so batch runs misbehave too. An inner simulator without
// batch support reports itself unbatchable here the same way a plain
// scalar simulator would: by not implementing Batcher (callers type-
// assert), so this method returns an error instead.
func (f *Faulty) NewBatch(n int) (BatchRunner, error) {
	b, ok := f.Inner.(Batcher)
	if !ok {
		return nil, errNotBatchable
	}
	r, err := b.NewBatch(n)
	if err != nil {
		return nil, err
	}
	return &faultyBatch{f: f, inner: r}, nil
}

// faultyBatch injects the schedule's faults into batch runs. A faulting
// input aborts the batch mid-flight: the inputs before it execute first
// (their lanes' work is then abandoned along with the runner, exactly
// what the batch degradation paths must tolerate), and then the fault
// fires at the batch level — a panic unwinds out of RunHookedBatch, a
// wedge blocks it. Corrupt-signature faults are per-lane and
// non-aborting, applying the scalar transform to each flagged lane.
type faultyBatch struct {
	f     *Faulty
	inner BatchRunner
}

func (b *faultyBatch) RunHookedBatch(inputs [][]byte, hooks []exec.Hook) []Outcome {
	if b.f.Plan != nil {
		for i, bs := range inputs {
			switch b.f.Plan(bs) {
			case FaultPanic:
				b.runPrefix(inputs[:i], hooks)
				msg := b.f.PanicMsg
				if msg == "" {
					msg = "faulty: injected panic"
				}
				panic(msg)
			case FaultWedge:
				b.runPrefix(inputs[:i], hooks)
				if b.f.Release != nil {
					<-b.f.Release
				} else {
					select {}
				}
				return make([]Outcome, len(inputs))
			}
		}
	}
	outs := b.inner.RunHookedBatch(inputs, hooks)
	if b.f.Plan != nil {
		for i, bs := range inputs {
			if b.f.Plan(bs) != FaultCorruptSig || len(outs[i].Signature) == 0 {
				continue
			}
			sig := make([]uint32, len(outs[i].Signature))
			copy(sig, outs[i].Signature)
			w := int(inputHash(^int64(0), bs) % uint64(len(sig)))
			sig[w] ^= 0xdeadbeef
			outs[i].Signature = sig
		}
	}
	return outs
}

// runPrefix executes the inputs ahead of a faulting one, so an aborted
// batch leaves real partial work behind (results discarded — the caller
// is about to lose the whole batch).
func (b *faultyBatch) runPrefix(inputs [][]byte, hooks []exec.Hook) {
	if len(inputs) > 0 {
		if hooks != nil {
			hooks = hooks[:len(inputs)]
		}
		b.inner.RunHookedBatch(inputs, hooks)
	}
}

func (b *faultyBatch) PredecodeStats() exec.CacheStats { return b.inner.PredecodeStats() }

func (b *faultyBatch) LanePredecodeStats(i int) exec.CacheStats {
	return b.inner.LanePredecodeStats(i)
}

var _ HookedSim = (*Faulty)(nil)
var _ PredecodeStatser = (*Faulty)(nil)
var _ Batcher = (*Faulty)(nil)
