// Package sim provides the simulator models used in the paper's
// evaluation: one specification-faithful reference implementation plus
// behavioural variants of riscvOVPsim, Spike, VP, GRIFT and sail-riscv,
// each seeded with exactly the defect classes the paper reports finding in
// the real simulator (section V-B). All variants share the same executor
// and soft-float core, so signature divergence can only come from the
// seeded defects.
package sim

import (
	"errors"
	"fmt"
	"time"

	"rvnegtest/internal/analysis"
	"rvnegtest/internal/exec"
	"rvnegtest/internal/hart"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/obs"
	"rvnegtest/internal/template"
)

// Variant describes one simulator model.
type Variant struct {
	Name        string
	Description string
	DecQuirks   isa.Quirks
	ExecQuirks  exec.Quirks
	// NoFD marks simulators without floating-point support (their table
	// cells read "/" for RV32GC in the paper).
	NoFD bool
	// MisconfiguredIMC models GRIFT's compliance target: when asked for
	// RV32IMC, the hart actually enables RV32GC, so F/D/A instructions
	// are erroneously accepted.
	MisconfiguredIMC bool
}

// Supports reports whether the simulator implements the configuration.
func (v *Variant) Supports(cfg isa.Config) bool {
	if v.NoFD && cfg.HasFP() {
		return false
	}
	return true
}

// Effective returns the configuration the hart actually implements when
// asked to run the given one.
func (v *Variant) Effective(cfg isa.Config) isa.Config {
	if v.MisconfiguredIMC && cfg == isa.RV32IMC {
		return isa.RV32GC
	}
	return cfg
}

// The simulator models. Reference has no defects; the others carry the
// paper's findings.
var (
	Reference = &Variant{
		Name:        "reference",
		Description: "specification-faithful model (no seeded defects)",
	}

	// OVPSim models riscvOVPsim, the official compliance reference
	// simulator: it accepts certain custom-0/custom-1 opcode patterns as
	// legal no-ops instead of raising an illegal-instruction exception.
	OVPSim = &Variant{
		Name:        "riscvOVPsim",
		Description: "accepts reserved custom-opcode patterns as legal NOPs",
		DecQuirks:   isa.Quirks{CustomAsNOP: true},
	}

	// Spike models the UC Berkeley reference simulator: an ECALL inside
	// the test body corrupts the dumped signature, and mtval reads as zero
	// after an illegal-instruction trap (the real Spike leaves mtval at
	// zero for exceptions it considers informationless). Only the trap
	// suite can observe the mtval defect: the user-level template never
	// reads mtval into the signature.
	Spike = &Variant{
		Name:        "Spike",
		Description: "dumps an incorrect signature when the body executes ECALL; zeroes mtval on traps",
		ExecQuirks: exec.Quirks{
			EcallMarksCompletion: true,
			Priv:                 hart.Quirks{MtvalZero: true},
		},
	}

	// VP models the RISC-V VP: a too-loose ECALL decode mask, normal
	// expansion of reserved non-hint compressed instructions, and vectored
	// dispatch erroneously applied to synchronous traps when mtvec mode is
	// vectored (the spec vectors asynchronous interrupts only). The real VP
	// has no floating-point support in its 32-bit ISS configuration.
	VP = &Variant{
		Name:        "VP",
		Description: "loose ECALL decode mask; executes reserved compressed encodings; vectors synchronous traps",
		DecQuirks:   isa.Quirks{LooseEcallMask: true, AllowReservedC: true},
		ExecQuirks:  exec.Quirks{Priv: hart.Quirks{VectoredSyncTrap: true}},
		NoFD:        true,
	}

	// Grift models GRIFT: link-register update before the misaligned-jump
	// exception, an RV32IMC target misconfigured to RV32GC, reserved
	// compressed encodings accepted, SC.W succeeding without a
	// reservation, and MRET failing to restore MIE from MPIE (the
	// interrupt-enable stack is left as the trap set it).
	Grift = &Variant{
		Name:        "GRIFT",
		Description: "jump side effects before trap; IMC target enables G; reserved C; SC.W without reservation; MRET skips MPIE restore",
		DecQuirks:   isa.Quirks{AllowReservedC: true},
		ExecQuirks: exec.Quirks{
			LinkBeforeAlignCheck: true,
			SCIgnoresReservation: true,
			Priv:                 hart.Quirks{MRETIgnoresMPIE: true},
		},
		MisconfiguredIMC: true,
	}

	// Sail models sail-riscv: incomplete decoder checks accept invalid
	// encodings (loose funct7, invalid branch funct3 acting as a backward
	// branch), a malformed compressed pattern crashes the decoder, and
	// mstatus CSR writes skip the WARL field masking (reserved bits are
	// stored verbatim). The tested sail build had no F/D support.
	Sail = &Variant{
		Name:        "sail-riscv",
		Description: "incomplete decoder checks; crash on malformed compressed pattern; unmasked mstatus writes",
		DecQuirks: isa.Quirks{
			LooseFunct7:         true,
			InvalidBranchFunct3: true,
			CrashOnPattern:      true,
		},
		ExecQuirks: exec.Quirks{Priv: hart.Quirks{CSRWriteNoMask: true}},
		NoFD:       true,
	}
)

// UnderTest lists the simulators compared against riscvOVPsim in Table I.
var UnderTest = []*Variant{Spike, VP, Sail, Grift}

// All lists every modelled simulator.
var All = []*Variant{Reference, OVPSim, Spike, VP, Sail, Grift}

// ByName finds a variant.
func ByName(name string) (*Variant, bool) {
	for _, v := range All {
		if v.Name == name {
			return v, true
		}
	}
	return nil, false
}

// DefaultInstLimit bounds one test-case execution; filter-accepted test
// cases finish in well under a thousand instructions, so exhausting the
// limit indicates simulator non-termination (a sail-riscv style defect).
const DefaultInstLimit = 20000

// Outcome is the result of running one test case on one simulator.
type Outcome struct {
	Signature []uint32
	Crashed   bool
	CrashMsg  string
	TimedOut  bool
	Insts     uint64
	// Traps counts the traps the executor raised during the run (both
	// families; only the trap suite turns them into signature content).
	Traps uint64
}

// Sim is the minimal simulator interface the compliance engine drives:
// run one bytestream test case, report the outcome. Implemented by
// *Simulator and by the Faulty fault-injection wrapper.
type Sim interface {
	Run(bs []byte) Outcome
}

// HookedSim is a Sim that also supports coverage-hooked execution (the
// fuzzing phase).
type HookedSim interface {
	Sim
	RunHooked(bs []byte, hook exec.Hook) Outcome
}

// Simulator is a variant instantiated for one platform, with the test-case
// template pre-compiled and pre-loaded (the paper's fuzzing-phase setup;
// the compliance phase re-uses it because the template test suite proves
// the injected image identical to a full per-test-case compilation).
type Simulator struct {
	Variant  *Variant
	Platform template.Platform
	Limit    uint64

	// NoPredecode disables the predecoded execution core, forcing every
	// fetch through the classical decode path (the ablation/debug knob).
	// Outcomes are byte-identical either way.
	NoPredecode bool
	// PredecodeTimer, when set, observes the per-run decode-cache
	// maintenance time (reset + injected-range invalidation). Nil means
	// no clock reads on the run path.
	PredecodeTimer *obs.Histogram

	img *template.Image
	dec *isa.Decoder
	eff isa.Config
	pre *exec.DecodeCache
}

// New prepares a simulator for a platform. It fails if the variant does
// not support the platform's ISA configuration.
func New(v *Variant, p template.Platform) (*Simulator, error) {
	if !v.Supports(p.Cfg) {
		return nil, fmt.Errorf("sim: %s does not support %v", v.Name, p.Cfg)
	}
	img, err := template.Preload(p)
	if err != nil {
		return nil, err
	}
	dec := &isa.Decoder{Quirks: v.DecQuirks}
	eff := v.Effective(p.Cfg)
	return &Simulator{
		Variant:  v,
		Platform: p,
		Limit:    DefaultInstLimit,
		img:      img,
		dec:      dec,
		eff:      eff,
		pre:      predecodeImage(img, dec, eff),
	}, nil
}

// predecodeImage lowers the template's text region once per Variant;
// the decode work happens here instead of once per retired instruction.
// Clones share the immutable predecode and only copy the derived entry
// table. A layout without a text window ahead of the data base yields no
// cache (the simulator then always takes the classical path).
//
// On top of the per-slot entries, the harness's straight-line basic
// blocks (from the analysis CFG, reference decoding) are fused into
// block handlers. The extents are hints: Fuse re-validates every block
// against this variant's own quirked decode and truncates at any
// divergence, and injection-range invalidation splits fused blocks back
// to per-slot entries, so fusion is outcome-invisible.
func predecodeImage(img *template.Image, dec *isa.Decoder, eff isa.Config) *exec.DecodeCache {
	l := img.Platform.Layout
	if l.DataBase <= l.TextBase {
		return nil
	}
	code, err := img.Mem.ReadBytes(l.TextBase, l.DataBase-l.TextBase)
	if err != nil {
		return nil
	}
	c := exec.NewDecodeCache(dec.Predecode(l.TextBase, code), eff)
	c.Fuse(analysis.StraightLineExtents(code, img.Platform.Family == template.FamilyTrap))
	return c
}

// Clone returns an independent simulator for the same variant and
// platform: it shares nothing mutable with the original (own pre-loaded
// image, own decoder), so clones can run test cases concurrently — one
// clone per worker in the parallel compliance engine. Cloning copies the
// preloaded memory image instead of re-assembling the template.
func (s *Simulator) Clone() *Simulator {
	return &Simulator{
		Variant:     s.Variant,
		Platform:    s.Platform,
		Limit:       s.Limit,
		NoPredecode: s.NoPredecode,
		img:         s.img.Clone(),
		dec:         &isa.Decoder{Quirks: s.Variant.DecQuirks},
		eff:         s.eff,
		pre:         s.pre.Clone(),
	}
}

// classifyRunError maps an executor Run error to an outcome class:
// instruction-limit exhaustion means the test case did not terminate
// (TimedOut); any other executor error is a crash whose message must be
// preserved for triage.
func classifyRunError(err error) (timedOut bool, crashMsg string) {
	if errors.Is(err, exec.ErrTimeout) {
		return true, ""
	}
	return false, err.Error()
}

// Run executes one bytestream test case and extracts its signature.
// Decoder crashes (the modelled sail-riscv defect) are captured as a
// crashed outcome rather than propagating the panic.
func (s *Simulator) Run(bs []byte) Outcome { return s.RunHooked(bs, nil) }

// RunHooked is Run with a coverage hook attached (the fuzzing phase).
func (s *Simulator) RunHooked(bs []byte, hook exec.Hook) (out Outcome) {
	if err := s.img.Inject(bs); err != nil {
		return Outcome{Crashed: true, CrashMsg: err.Error()}
	}
	cache := s.pre
	if s.NoPredecode {
		cache = nil
	}
	if cache != nil {
		var t0 time.Time
		if s.PredecodeTimer != nil {
			t0 = time.Now()
		}
		// Inject restored memory to the pristine snapshot and wrote the
		// bytestream words; mirror both on the cache: roll deviated
		// slots back to the pristine predecode, then knock out the
		// freshly written injection area.
		cache.Reset()
		if n := uint32(len(bs)+3) &^ 3; n > 0 {
			cache.InvalidateRange(s.img.InjectAddr, n)
		}
		if s.PredecodeTimer != nil {
			s.PredecodeTimer.ObserveSince(t0)
		}
	}
	e := s.img.NewExecutorCfg(s.eff, s.dec, s.Variant.ExecQuirks)
	e.Cache = cache
	e.Hook = hook
	defer func() {
		if r := recover(); r != nil {
			out = Outcome{Crashed: true, CrashMsg: fmt.Sprint(r), Insts: e.InstCount, Traps: e.TrapCount}
		}
	}()
	err := e.Run(s.Limit)
	out.Insts = e.InstCount
	out.Traps = e.TrapCount
	if err != nil {
		out.TimedOut, out.CrashMsg = classifyRunError(err)
		out.Crashed = !out.TimedOut
		return out
	}
	signature, err := s.img.Signature()
	if err != nil {
		out.Crashed = true
		out.CrashMsg = err.Error()
		return out
	}
	out.Signature = signature
	return out
}

// PredecodeStats reports the cumulative decode-cache counters of this
// simulator (zero when predecode is disabled or unavailable).
func (s *Simulator) PredecodeStats() exec.CacheStats { return s.pre.Stats() }

// PredecodeStatser is implemented by simulators that expose decode-cache
// counters; telemetry reads them through this interface so wrappers stay
// transparent.
type PredecodeStatser interface {
	PredecodeStats() exec.CacheStats
}

var _ HookedSim = (*Simulator)(nil)
var _ PredecodeStatser = (*Simulator)(nil)
