package sim

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"rvnegtest/internal/exec"
	"rvnegtest/internal/isa"
	"rvnegtest/internal/template"
)

func enc(inst isa.Inst) uint32 { return isa.MustEncode(inst) }

func stream(words ...uint32) []byte {
	var out []byte
	for _, w := range words {
		out = append(out, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return out
}

func newSim(t *testing.T, v *Variant, cfg isa.Config) *Simulator {
	t.Helper()
	s, err := New(v, template.Platform{Layout: template.DefaultLayout, Cfg: cfg})
	if err != nil {
		t.Fatalf("New(%s, %v): %v", v.Name, cfg, err)
	}
	return s
}

// diffWords compares two signatures and returns differing word indexes.
func diffWords(a, b []uint32) []int {
	var out []int
	for i := range a {
		if i < len(b) && a[i] != b[i] {
			out = append(out, i)
		}
	}
	return out
}

// expectMismatch runs a bytestream on the reference and a variant and
// requires a signature divergence.
func expectMismatch(t *testing.T, v *Variant, cfg isa.Config, bs []byte) ([]uint32, []uint32) {
	t.Helper()
	ref := newSim(t, Reference, cfg).Run(bs)
	got := newSim(t, v, cfg).Run(bs)
	if ref.Crashed || ref.TimedOut {
		t.Fatalf("reference failed: %+v", ref)
	}
	if got.Crashed || got.TimedOut {
		t.Fatalf("%s crashed/timed out unexpectedly: %+v", v.Name, got)
	}
	if d := diffWords(ref.Signature, got.Signature); len(d) == 0 {
		t.Fatalf("%s: expected signature mismatch for %x", v.Name, bs)
	}
	return ref.Signature, got.Signature
}

// expectMatch requires identical signatures.
func expectMatch(t *testing.T, v *Variant, cfg isa.Config, bs []byte) {
	t.Helper()
	ref := newSim(t, Reference, cfg).Run(bs)
	got := newSim(t, v, cfg).Run(bs)
	if ref.Crashed || got.Crashed || ref.TimedOut || got.TimedOut {
		t.Fatalf("unexpected failure: ref=%+v got=%+v", ref, got)
	}
	if d := diffWords(ref.Signature, got.Signature); len(d) != 0 {
		t.Fatalf("%s: unexpected mismatch at words %v for %x", v.Name, d, bs)
	}
}

const mcauseWord = 30 // index of the mcause slot in the signature

func TestOVPSimCustomOpcodeBug(t *testing.T) {
	// custom-0 with the special funct3 pattern: reference takes an
	// illegal-instruction trap; riscvOVPsim executes it as a NOP and the
	// body completes (x26 incremented, no mcause).
	bs := stream(0x0000400b)
	ref, got := expectMismatch(t, OVPSim, isa.RV32I, bs)
	if ref[mcauseWord] != 2 {
		t.Errorf("reference mcause = %d, want 2", ref[mcauseWord])
	}
	if got[mcauseWord] != 0 || got[26] != template.XInit[26]+1 {
		t.Errorf("ovpsim outcome: mcause=%d x26=%#x", got[mcauseWord], got[26])
	}
	// Without the special pattern both treat the word as illegal.
	expectMatch(t, OVPSim, isa.RV32I, stream(0x0000000b))
}

func TestSpikeEcallBug(t *testing.T) {
	bs := stream(0x00000073)
	ref, got := expectMismatch(t, Spike, isa.RV32I, bs)
	if got[26] != ref[26]+1 {
		t.Errorf("spike x26 = %#x, reference %#x", got[26], ref[26])
	}
	// Non-ECALL test cases agree.
	expectMatch(t, Spike, isa.RV32I, stream(enc(isa.Inst{Op: isa.OpADD, Rd: 5, Rs1: 1, Rs2: 2})))
}

func TestVPEcallMaskBug(t *testing.T) {
	// "ECALL" with rd=5: invalid encoding. Reference: illegal (cause 2).
	// VP decodes it as ECALL (cause 11).
	bs := stream(0x00000073 | 5<<7)
	ref, got := expectMismatch(t, VP, isa.RV32I, bs)
	if ref[mcauseWord] != 2 || got[mcauseWord] != 11 {
		t.Errorf("mcause: ref=%d vp=%d", ref[mcauseWord], got[mcauseWord])
	}
}

func TestVPReservedCompressedBug(t *testing.T) {
	// c.lwsp x0, 0(sp): reserved. Reference: illegal trap. VP expands it;
	// the load uses sp (x2 init value 0xffffffff), faulting with a load
	// access fault — either way the signatures diverge in mcause.
	bs := []byte{0x02, 0x40, 0, 0}
	ref, got := expectMismatch(t, VP, isa.RV32IMC, bs)
	if ref[mcauseWord] != 2 {
		t.Errorf("reference mcause = %d", ref[mcauseWord])
	}
	if got[mcauseWord] == 2 {
		t.Errorf("vp mcause = %d, want non-illegal", got[mcauseWord])
	}
	// On RV32I there is no C extension: both treat the halfword as
	// illegal and the signatures agree.
	expectMatch(t, VP, isa.RV32I, bs)
}

func TestGriftMisalignedJumpBug(t *testing.T) {
	// jal x1, +6 on RV32I: misaligned target. GRIFT updates the link
	// register before trapping.
	bs := stream(enc(isa.Inst{Op: isa.OpJAL, Rd: 1, Imm: 6}))
	ref, got := expectMismatch(t, Grift, isa.RV32I, bs)
	if ref[1] == got[1] {
		t.Error("link register must differ")
	}
	if ref[mcauseWord] != 0 || got[mcauseWord] != 0 {
		t.Errorf("mcause: ref=%d grift=%d, want 0 (both trap)", ref[mcauseWord], got[mcauseWord])
	}
	// With C enabled the jump is legal on both.
	expectMatch(t, Grift, isa.RV32IMC, bs)
}

func TestGriftIMCConfigBug(t *testing.T) {
	// An FP instruction under RV32IMC: reference traps (illegal), GRIFT's
	// misconfigured target executes it.
	bs := stream(enc(isa.Inst{Op: isa.OpFADDS, Rd: 1, Rs1: 2, Rs2: 3, RM: 0}))
	ref, got := expectMismatch(t, Grift, isa.RV32IMC, bs)
	if ref[mcauseWord] != 2 || got[mcauseWord] != 0 {
		t.Errorf("mcause: ref=%d grift=%d", ref[mcauseWord], got[mcauseWord])
	}
	// Under RV32GC the instruction is legal on both: no mismatch.
	expectMatch(t, Grift, isa.RV32GC, bs)
	// An atomic under RV32IMC likewise diverges.
	expectMismatch(t, Grift, isa.RV32IMC, stream(enc(isa.Inst{Op: isa.OpLRW, Rd: 5, Rs1: 30})))
}

func TestGriftSCWithoutReservationBug(t *testing.T) {
	// sc.w x5, x1, (x30) without a prior lr.w: reference fails the SC
	// (x5 = 1, no store); GRIFT performs it (x5 = 0).
	bs := stream(enc(isa.Inst{Op: isa.OpSCW, Rd: 5, Rs1: 30, Rs2: 1}))
	ref, got := expectMismatch(t, Grift, isa.RV32GC, bs)
	if ref[5] != 1 || got[5] != 0 {
		t.Errorf("sc.w rd: ref=%d grift=%d", ref[5], got[5])
	}
	// A properly paired LR/SC agrees on both.
	expectMatch(t, Grift, isa.RV32GC, stream(
		enc(isa.Inst{Op: isa.OpLRW, Rd: 6, Rs1: 30}),
		enc(isa.Inst{Op: isa.OpSCW, Rd: 5, Rs1: 30, Rs2: 1}),
	))
}

func TestSailLooseDecodeBug(t *testing.T) {
	// ADD with garbage funct7 (bit 30 clear): reference illegal; sail
	// executes an ADD.
	w := enc(isa.Inst{Op: isa.OpADD, Rd: 5, Rs1: 1, Rs2: 2}) | 0x13<<25
	ref, got := expectMismatch(t, Sail, isa.RV32I, stream(w))
	if ref[mcauseWord] != 2 || got[mcauseWord] != 0 {
		t.Errorf("mcause: ref=%d sail=%d", ref[mcauseWord], got[mcauseWord])
	}
	if got[5] != template.XInit[1]+template.XInit[2] {
		t.Errorf("sail executed value = %#x", got[5])
	}
}

func TestSailCrashBug(t *testing.T) {
	// The malformed compressed pattern crashes the sail decoder; the
	// harness must capture it as a crash, not a panic.
	bs := []byte{0x00, 0x84, 0, 0}
	got := newSim(t, Sail, isa.RV32IMC).Run(bs)
	if !got.Crashed {
		t.Fatalf("expected crash, got %+v", got)
	}
	ref := newSim(t, Reference, isa.RV32IMC).Run(bs)
	if ref.Crashed || ref.TimedOut {
		t.Fatalf("reference must survive: %+v", ref)
	}
	// The 32-bit malformed pattern crashes it on RV32I too (Table I shows
	// "crash" for both RV32I and RV32IMC).
	bs32 := stream(0x0000505b)
	if got := newSim(t, Sail, isa.RV32I).Run(bs32); !got.Crashed {
		t.Fatalf("expected 32-bit crash on RV32I, got %+v", got)
	}
	if ref := newSim(t, Reference, isa.RV32I).Run(bs32); ref.Crashed || ref.TimedOut {
		t.Fatalf("reference must survive the 32-bit pattern: %+v", ref)
	}
}

func TestSailNonTerminationBug(t *testing.T) {
	// Invalid branch funct3 with a negative offset and equal operands:
	// sail decodes a backward BEQ and loops forever.
	w := enc(isa.Inst{Op: isa.OpBEQ, Rs1: 0, Rs2: 0, Imm: -4})
	w = w&^(uint32(7)<<12) | 2<<12
	bs := stream(enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 1, Imm: 1}), w)
	got := newSim(t, Sail, isa.RV32I).Run(bs)
	if !got.TimedOut {
		t.Fatalf("expected timeout, got %+v", got)
	}
	ref := newSim(t, Reference, isa.RV32I).Run(bs)
	if ref.TimedOut || ref.Signature[mcauseWord] != 2 {
		t.Fatalf("reference: %+v", ref)
	}
}

func TestSupportMatrix(t *testing.T) {
	// VP and sail have no floating point: RV32GC unsupported ("/" cells).
	for _, v := range []*Variant{VP, Sail} {
		if v.Supports(isa.RV32GC) {
			t.Errorf("%s must not support RV32GC", v.Name)
		}
		if !v.Supports(isa.RV32IMC) || !v.Supports(isa.RV32I) {
			t.Errorf("%s must support I and IMC", v.Name)
		}
		if _, err := New(v, template.Platform{Layout: template.DefaultLayout, Cfg: isa.RV32GC}); err == nil {
			t.Errorf("New(%s, GC) must fail", v.Name)
		}
	}
	for _, v := range []*Variant{Reference, OVPSim, Spike, Grift} {
		if !v.Supports(isa.RV32GC) {
			t.Errorf("%s must support RV32GC", v.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, v := range All {
		got, ok := ByName(v.Name)
		if !ok || got != v {
			t.Errorf("ByName(%s) failed", v.Name)
		}
	}
	if _, ok := ByName("qemu"); ok {
		t.Error("ByName(qemu) must fail")
	}
}

// TestVariantsAgreeOnCleanPrograms: for ordinary valid programs, every
// variant must agree with the reference (the defects are negative-testing
// defects; positive behaviour is shared).
func TestVariantsAgreeOnCleanPrograms(t *testing.T) {
	programs := [][]byte{
		stream(enc(isa.Inst{Op: isa.OpADD, Rd: 5, Rs1: 1, Rs2: 2})),
		stream(
			enc(isa.Inst{Op: isa.OpLW, Rd: 5, Rs1: 30, Imm: -16}),
			enc(isa.Inst{Op: isa.OpSW, Rs1: 31, Rs2: 5, Imm: 32}),
			enc(isa.Inst{Op: isa.OpLW, Rd: 6, Rs1: 31, Imm: 32}),
		),
		stream(
			enc(isa.Inst{Op: isa.OpBEQ, Rs1: 1, Rs2: 1, Imm: 8}),
			enc(isa.Inst{Op: isa.OpADDI, Rd: 7, Imm: 99}),
			enc(isa.Inst{Op: isa.OpXOR, Rd: 8, Rs1: 8, Rs2: 9}),
		),
		stream(0xffffffff),
	}
	for _, v := range UnderTest {
		for _, cfg := range []isa.Config{isa.RV32I, isa.RV32IMC} {
			for _, bs := range programs {
				expectMatch(t, v, cfg, bs)
			}
		}
	}
}

// TestClone: a clone runs independently of the original — identical
// results, no shared mutable state, usable concurrently.
func TestClone(t *testing.T) {
	orig := newSim(t, Reference, isa.RV32IMC)
	clone := orig.Clone()
	if clone.Variant != orig.Variant || clone.Platform != orig.Platform || clone.Limit != orig.Limit {
		t.Fatalf("clone metadata differs: %+v vs %+v", clone, orig)
	}
	cases := [][]byte{
		stream(enc(isa.Inst{Op: isa.OpADD, Rd: 5, Rs1: 1, Rs2: 2})),
		stream(0xffffffff),
		stream(0x00000073),
	}
	// Interleave runs on original and clone; outcomes must match a fresh
	// simulator's on every case (no cross-contamination of the images).
	fresh := newSim(t, Reference, isa.RV32IMC)
	for _, bs := range cases {
		want := fresh.Run(bs)
		a, b := orig.Run(bs), clone.Run(bs)
		for name, got := range map[string]Outcome{"orig": a, "clone": b} {
			if got.Crashed != want.Crashed || got.TimedOut != want.TimedOut ||
				len(got.Signature) != len(want.Signature) {
				t.Fatalf("%s outcome differs: %+v vs %+v", name, got, want)
			}
			for i := range want.Signature {
				if got.Signature[i] != want.Signature[i] {
					t.Fatalf("%s signature word %d differs", name, i)
				}
			}
		}
	}
}

// TestCloneConcurrent drives many clones of one simulator from separate
// goroutines (run with -race to validate the parallel-engine invariant
// that clones share no mutable state).
func TestCloneConcurrent(t *testing.T) {
	base := newSim(t, Grift, isa.RV32IMC)
	cases := [][]byte{
		stream(enc(isa.Inst{Op: isa.OpADD, Rd: 5, Rs1: 1, Rs2: 2})),
		stream(enc(isa.Inst{Op: isa.OpJAL, Rd: 1, Imm: 6})),
		stream(0xffffffff),
		{0x02, 0x40, 0, 0},
	}
	want := make([]Outcome, len(cases))
	for i, bs := range cases {
		want[i] = newSim(t, Grift, isa.RV32IMC).Run(bs)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		clone := base.Clone()
		wg.Add(1)
		go func(s *Simulator) {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				for i, bs := range cases {
					got := s.Run(bs)
					if got.Crashed != want[i].Crashed || got.TimedOut != want[i].TimedOut {
						t.Errorf("case %d: %+v vs %+v", i, got, want[i])
						return
					}
					for k := range want[i].Signature {
						if got.Signature[k] != want[i].Signature[k] {
							t.Errorf("case %d word %d differs", i, k)
							return
						}
					}
				}
			}
		}(clone)
	}
	wg.Wait()
}

// TestRunErrorClassification: instruction-limit exhaustion is a timeout;
// any other executor error is a crash with its message preserved.
func TestRunErrorClassification(t *testing.T) {
	if timedOut, msg := classifyRunError(exec.ErrTimeout); !timedOut || msg != "" {
		t.Errorf("ErrTimeout: timedOut=%v msg=%q", timedOut, msg)
	}
	wrapped := fmt.Errorf("run aborted: %w", exec.ErrTimeout)
	if timedOut, _ := classifyRunError(wrapped); !timedOut {
		t.Error("wrapped ErrTimeout must classify as timeout")
	}
	other := errors.New("bus error at 0xdead")
	if timedOut, msg := classifyRunError(other); timedOut || msg != "bus error at 0xdead" {
		t.Errorf("generic error: timedOut=%v msg=%q", timedOut, msg)
	}

	// End to end: a never-terminating body exhausts the limit and must
	// surface as TimedOut, not Crashed.
	s := newSim(t, Reference, isa.RV32I)
	loop := stream(enc(isa.Inst{Op: isa.OpJAL, Rd: 0, Imm: 0})) // jal x0, 0 — tight self-loop
	out := s.Run(loop)
	if !out.TimedOut || out.Crashed {
		t.Errorf("self-loop outcome: %+v", out)
	}
	if out.Insts < s.Limit {
		t.Errorf("timed out after %d instructions (limit %d)", out.Insts, s.Limit)
	}
}
