package analysis

// StraightLineExtents returns the [start, end) byte extents of the
// code's basic blocks with at least two instructions, in the CFG's
// deterministic discovery order — the superblock fusion candidates
// exec.DecodeCache.Fuse consumes. Extents are hints, not guarantees: they come from the
// reference decoding the CFG builder uses, so a consumer must
// re-validate them against its own (possibly quirked) decode and
// truncate at any divergence. Single-instruction blocks are omitted
// because fusing them buys nothing over per-slot dispatch. trap selects
// the suite family, exactly as for AnalyzeMode.
func StraightLineExtents(bs []byte, trap bool) [][2]int32 {
	a := AnalyzeMode(bs, trap)
	blocks := a.Blocks()
	out := make([][2]int32, 0, len(blocks))
	for i := range blocks {
		b := &blocks[i]
		if b.Insts >= 2 {
			out = append(out, [2]int32{b.Start, b.End})
		}
	}
	return out
}
