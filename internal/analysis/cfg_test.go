package analysis

import (
	"testing"

	"rvnegtest/internal/isa"
)

// half appends a raw 16-bit encoding to a bytestream.
func half(bs []byte, h uint16) []byte {
	return append(bs, byte(h), byte(h>>8))
}

func TestMixedCompressedStream(t *testing.T) {
	// c.addi x5, 1 (2 bytes) ; addi x6, x0, 2 (4 bytes) ; illegal word.
	var bs []byte
	bs = half(bs, 0x0285) // c.addi x5, 1
	w := enc(isa.Inst{Op: isa.OpADDI, Rd: 6, Rs1: 0, Imm: 2})
	bs = append(bs, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	bs = append(bs, stream(0xffffffff)...)

	a := Analyze(bs)
	if !a.Accepted() || a.Verdict.Paths != 1 {
		t.Fatalf("mixed stream: %+v", a.Verdict)
	}
	// One straight-line block: sites at 0 (2B), 2 (4B), 6 (4B).
	blocks := a.Blocks()
	if len(blocks) != 1 {
		t.Fatalf("blocks = %d, want 1 (%+v)", len(blocks), blocks)
	}
	b := blocks[0]
	if b.Start != 0 || b.End != 10 || b.Insts != 3 || !b.Reachable {
		t.Errorf("block shape wrong: %+v", b)
	}
	for _, pc := range []int32{0, 2, 6} {
		if _, ok := a.InstAt(pc); !ok {
			t.Errorf("no instruction site at %d", pc)
		}
	}
	if inst, _ := a.InstAt(0); inst.Size != 2 || inst.Op != isa.OpADDI {
		t.Errorf("site 0 = %+v, want 2-byte c.addi expansion", inst)
	}
	if inst, _ := a.InstAt(2); inst.Size != 4 {
		t.Errorf("site 2 not a 32-bit encoding: %+v", inst)
	}
}

func TestCompressedBranchSplitsBlocks(t *testing.T) {
	// c.bnez x8, +4 forks over a c.nop; both arms meet at the illegal word.
	var bs []byte
	bs = half(bs, 0xc011) // c.beqz x8, +4
	bs = half(bs, 0x0001) // c.nop
	bs = append(bs, stream(0xffffffff)...)

	a := Analyze(bs)
	if !a.Accepted() {
		t.Fatalf("compressed branch stream: %+v", a.Verdict)
	}
	if a.Verdict.Paths != 2 {
		t.Errorf("paths = %d, want 2", a.Verdict.Paths)
	}
	blocks := a.Blocks()
	if len(blocks) != 3 {
		t.Fatalf("blocks = %d, want 3 (branch, fall arm, merge): %+v", len(blocks), blocks)
	}
}

func TestJALBackEdgeLoop(t *testing.T) {
	// Forward work then an unconditional jump back to the start.
	bs := stream(
		enc(isa.Inst{Op: isa.OpADD, Rd: 1, Rs1: 1, Rs2: 2}),
		enc(isa.Inst{Op: isa.OpJAL, Rd: 0, Imm: -4}),
	)
	a := Analyze(bs)
	if a.Accepted() || a.Verdict.Reason != ReasonLoop {
		t.Fatalf("JAL back edge not dropped: %+v", a.Verdict)
	}
	if a.Verdict.PC != 0 {
		t.Errorf("loop reported at %d, want head offset 0", a.Verdict.PC)
	}
	// Self-loop JAL.
	if a := Analyze(stream(enc(isa.Inst{Op: isa.OpJAL, Imm: 0}))); a.Verdict.Reason != ReasonLoop {
		t.Errorf("self JAL: %+v", a.Verdict)
	}
}

func TestBranchBackEdgeSplitsTargetBlock(t *testing.T) {
	// The backward branch targets the middle of the leading chain: the
	// target must become a block leader and the cycle must be detected.
	bs := stream(
		enc(isa.Inst{Op: isa.OpADD, Rd: 1, Rs1: 1, Rs2: 2}),   // 0
		enc(isa.Inst{Op: isa.OpADD, Rd: 3, Rs1: 3, Rs2: 4}),   // 4: back-edge target
		enc(isa.Inst{Op: isa.OpBNE, Rs1: 1, Rs2: 2, Imm: -4}), // 8
	)
	a := Analyze(bs)
	if a.Accepted() || a.Verdict.Reason != ReasonLoop {
		t.Fatalf("branch back edge not dropped: %+v", a.Verdict)
	}
	var heads []int32
	for _, b := range a.Blocks() {
		heads = append(heads, b.Start)
	}
	if len(heads) != 2 || heads[0] != 0 || heads[1] != 4 {
		t.Errorf("block heads = %v, want [0 4] (target split)", heads)
	}
}

func TestBranchIntoPaddedTail(t *testing.T) {
	// 6-byte stream padded to 8: the branch's fall arm reaches the c.nop
	// at 4 and then the zero-padded halfword at 6 (decodes illegal: exit);
	// the taken arm targets the padding directly.
	var bs []byte
	w := enc(isa.Inst{Op: isa.OpBEQ, Rs1: 1, Rs2: 2, Imm: 6})
	bs = append(bs, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	bs = half(bs, 0x0001) // c.nop at 4

	a := Analyze(bs)
	if a.N != 8 {
		t.Fatalf("padded length = %d, want 8", a.N)
	}
	if !a.Accepted() || a.Verdict.Paths != 2 {
		t.Fatalf("branch into padding: %+v", a.Verdict)
	}
	// The zero halfword at 6 is a discovered exit site.
	if inst, ok := a.InstAt(6); !ok || inst.Op != isa.OpIllegal {
		t.Errorf("padding site at 6 = %+v (ok=%v), want illegal exit", inst, ok)
	}
}

func TestStraddleViaBranchTarget(t *testing.T) {
	// Branch to offset 10, where a 32-bit low half (0xf3f3) starts at n-2:
	// the upper half would come from outside the bytestream.
	bs := stream(
		enc(isa.Inst{Op: isa.OpBEQ, Rs1: 0, Rs2: 0, Imm: 10}),
		0x00000001,
		0xf3f3f3f3,
	)
	a := Analyze(bs)
	if a.Accepted() || a.Verdict.Reason != ReasonStraddle {
		t.Fatalf("straddle not dropped: %+v", a.Verdict)
	}
	if a.Verdict.PC != 10 {
		t.Errorf("straddle at %d, want 10", a.Verdict.PC)
	}
}

func TestUnreachableSitesNotDiscovered(t *testing.T) {
	// The Fig. 2 shape: the JAL at 4 skips offsets 8..15; no edge ever
	// targets them, so the CFG must not decode them at all.
	bs := stream(
		enc(isa.Inst{Op: isa.OpADD, Rd: 31, Rs1: 2, Rs2: 3}),    //  0
		enc(isa.Inst{Op: isa.OpJAL, Rd: 2, Imm: 20}),            //  4 -> 24
		enc(isa.Inst{Op: isa.OpWFI}),                            //  8: never decoded
		enc(isa.Inst{Op: isa.OpADD, Rd: 30, Rs1: 2, Rs2: 3}),    // 12: never decoded
		enc(isa.Inst{Op: isa.OpBLT, Rs1: 30, Rs2: 31, Imm: 12}), // 16 -> 28 / 20
		0xffffffff, // 20
		enc(isa.Inst{Op: isa.OpBEQ, Rs1: 1, Rs2: 2, Imm: -8}), // 24 -> 16 / 28
		enc(isa.Inst{Op: isa.OpLW, Rd: 5, Rs1: 30, Imm: -16}), // 28
	)
	a := Analyze(bs)
	if !a.Accepted() || a.Verdict.Paths != 3 {
		t.Fatalf("Fig. 2 program: %+v", a.Verdict)
	}
	for _, pc := range []int32{8, 12} {
		if _, ok := a.InstAt(pc); ok {
			t.Errorf("statically unreachable site %d was discovered", pc)
		}
		if a.Reachable(pc) {
			t.Errorf("site %d reported reachable", pc)
		}
	}
}

func TestOverlappingSitesAtHalfwordGranularity(t *testing.T) {
	// beq x0,x0,+6 jumps into the middle of the next word: the CFG keeps
	// two overlapping sites (4: aligned word, 6: its upper half).
	bs := stream(
		enc(isa.Inst{Op: isa.OpBEQ, Rs1: 0, Rs2: 0, Imm: 6}),
		0x8082ffff, // aligned: illegal word; halfword at 6 = 0x8082 = c.jr ra
	)
	a := Analyze(bs)
	if a.Accepted() || a.Verdict.Reason != ReasonForbidden {
		t.Fatalf("overlapping forbidden stream: %+v", a.Verdict)
	}
	if a.Verdict.PC != 6 {
		t.Errorf("forbidden at %d, want the overlapping site 6", a.Verdict.PC)
	}
	if _, ok := a.InstAt(4); !ok {
		t.Error("aligned site at 4 missing")
	}
	if inst, ok := a.InstAt(6); !ok || inst.Op != isa.OpJALR {
		t.Errorf("overlapping site at 6 = %+v (ok=%v), want c.jr expansion", inst, ok)
	}
}

func TestBlocksSuccessorsFoldedBranch(t *testing.T) {
	// A folded always-taken branch must report a single feasible successor.
	bs := stream(
		enc(isa.Inst{Op: isa.OpBEQ, Rs1: 0, Rs2: 0, Imm: 8}), // always taken -> 8
		0xffffffff, // 4: statically dead
		0xffffffff, // 8
	)
	a := Analyze(bs)
	if !a.Accepted() || a.Verdict.Paths != 1 {
		t.Fatalf("folded branch: %+v", a.Verdict)
	}
	var entry *BlockInfo
	blocks := a.Blocks()
	for i := range blocks {
		if blocks[i].Start == 0 {
			entry = &blocks[i]
		}
	}
	if entry == nil {
		t.Fatal("no entry block")
	}
	if len(entry.Succs) != 1 || entry.Succs[0] != 8 {
		t.Errorf("entry successors = %v, want [8]", entry.Succs)
	}
}
