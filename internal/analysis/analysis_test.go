package analysis

import (
	"encoding/json"
	"strings"
	"testing"

	"rvnegtest/internal/isa"
)

func enc(inst isa.Inst) uint32 { return isa.MustEncode(inst) }

func stream(words ...uint32) []byte {
	var out []byte
	for _, w := range words {
		out = append(out, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return out
}

func TestJoinLatticeLaws(t *testing.T) {
	elems := []value{bottom, clean, dirty, constant(0), constant(1), constant(0xffffffff)}
	for _, a := range elems {
		if join(a, a) != a {
			t.Errorf("join not idempotent for %v", a)
		}
		if join(a, bottom) != a || join(bottom, a) != a {
			t.Errorf("bottom not neutral for %v", a)
		}
		if join(a, dirty) != dirty || join(dirty, a) != dirty {
			t.Errorf("dirty not absorbing for %v", a)
		}
		for _, b := range elems {
			if join(a, b) != join(b, a) {
				t.Errorf("join not commutative for %v, %v", a, b)
			}
		}
	}
	if got := join(constant(1), constant(2)); got != dirty {
		t.Errorf("join of distinct constants = %v, want dirty", got)
	}
	if got := join(clean, constant(1)); got != dirty {
		t.Errorf("join(clean, const) = %v, want dirty", got)
	}
}

func TestEntryState(t *testing.T) {
	s := entryState()
	if s.get(0) != constant(0) {
		t.Error("x0 must read as constant 0")
	}
	if s.get(30) != clean || s.get(31) != clean {
		t.Error("x30/x31 must start clean")
	}
	if s.get(5) != dirty {
		t.Error("other registers must start dirty")
	}
	s.set(0, dirty)
	if s.get(0) != constant(0) {
		t.Error("writes to x0 must be discarded")
	}
}

func TestConstantFoldingChains(t *testing.T) {
	// lui x5, 0x1000; addi x5, x5, -1 -> x5 = 0xfff, verified via a branch
	// that must fold to its taken edge, skipping a forbidden instruction.
	bs := stream(
		enc(isa.Inst{Op: isa.OpLUI, Rd: 5, Imm: 0x1000}),
		enc(isa.Inst{Op: isa.OpADDI, Rd: 5, Rs1: 5, Imm: -1}),
		enc(isa.Inst{Op: isa.OpBNE, Rs1: 5, Rs2: 0, Imm: 8}), // always taken
		enc(isa.Inst{Op: isa.OpWFI}),                         // statically dead
		0xffffffff,
	)
	a := Analyze(bs)
	if !a.Accepted() {
		t.Fatalf("folded-past-forbidden stream dropped: %+v", a.Verdict)
	}
	if a.Verdict.Paths != 1 {
		t.Errorf("paths = %d, want 1 (branch folds to one edge)", a.Verdict.Paths)
	}
	if a.Reachable(12) {
		t.Error("the WFI behind an always-taken branch must be unreachable")
	}
}

func TestInfeasibleLoopAccepted(t *testing.T) {
	// addi x5, x0, 0; bne x5, x0, -4: the backward branch can never be
	// taken, so there is no loop. The path-enumeration filter dropped
	// this; the fixpoint engine folds the branch away.
	bs := stream(
		enc(isa.Inst{Op: isa.OpADDI, Rd: 5, Rs1: 0, Imm: 0}),
		enc(isa.Inst{Op: isa.OpBNE, Rs1: 5, Rs2: 0, Imm: -4}),
		0xffffffff,
	)
	a := Analyze(bs)
	if !a.Accepted() {
		t.Fatalf("statically infeasible loop dropped: %+v", a.Verdict)
	}
}

func TestInfeasibleOutOfBoundsAccepted(t *testing.T) {
	// beq x5, x0, +4096 with x5 == 1: the wild target is statically dead.
	bs := stream(
		enc(isa.Inst{Op: isa.OpADDI, Rd: 5, Rs1: 0, Imm: 1}),
		enc(isa.Inst{Op: isa.OpBEQ, Rs1: 5, Rs2: 0, Imm: 4000}),
		0xffffffff,
	)
	a := Analyze(bs)
	if !a.Accepted() {
		t.Fatalf("statically dead out-of-bounds edge dropped: %+v", a.Verdict)
	}
}

func TestFeasibleLoopStillDropped(t *testing.T) {
	// beq x0, x0, -4 after one instruction: always taken, genuine loop.
	bs := stream(
		enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 1, Imm: 1}),
		enc(isa.Inst{Op: isa.OpBEQ, Rs1: 0, Rs2: 0, Imm: -4}),
	)
	a := Analyze(bs)
	if a.Accepted() || a.Verdict.Reason != ReasonLoop {
		t.Fatalf("feasible loop not dropped: %+v", a.Verdict)
	}
}

func TestMergePointDirtyJoin(t *testing.T) {
	// Diamond: one arm dirties x30, the other leaves it clean; the load
	// after the merge must see the join (dirty) and be dropped.
	bs := stream(
		enc(isa.Inst{Op: isa.OpBLT, Rs1: 1, Rs2: 2, Imm: 8}), //  0: fork
		enc(isa.Inst{Op: isa.OpADD, Rd: 30, Rs1: 1, Rs2: 2}), //  4: dirties x30
		enc(isa.Inst{Op: isa.OpLW, Rd: 5, Rs1: 30, Imm: 0}),  //  8: merge point
	)
	a := Analyze(bs)
	if a.Accepted() || a.Verdict.Reason != ReasonDirtyAddress {
		t.Fatalf("merge-point dirty join missed: %+v", a.Verdict)
	}
	if a.Verdict.PC != 8 {
		t.Errorf("violation PC = %d, want 8", a.Verdict.PC)
	}

	// Same diamond with the write to a different register: x30 stays
	// clean on both arms, so the joined state accepts the load.
	ok := stream(
		enc(isa.Inst{Op: isa.OpBLT, Rs1: 1, Rs2: 2, Imm: 8}),
		enc(isa.Inst{Op: isa.OpADD, Rd: 7, Rs1: 1, Rs2: 2}),
		enc(isa.Inst{Op: isa.OpLW, Rd: 5, Rs1: 30, Imm: 0}),
	)
	if b := Analyze(ok); !b.Accepted() {
		t.Fatalf("clean merge dropped: %+v", b.Verdict)
	}
}

func TestBranchDenseLinearCost(t *testing.T) {
	// 30 consecutive forks would be 2^30 paths for the enumeration
	// engine; the fixpoint decides it in one pass per block.
	var words []uint32
	for i := 0; i < 30; i++ {
		words = append(words, enc(isa.Inst{Op: isa.OpBEQ, Rs1: 1, Rs2: 2, Imm: 8}))
	}
	words = append(words, 0xffffffff)
	a := Analyze(stream(words...))
	if !a.Accepted() {
		t.Fatalf("branch-dense stream dropped: %+v", a.Verdict)
	}
	if a.Verdict.Paths < 1<<20 {
		t.Errorf("paths = %d, want an exponential count (all forks live)", a.Verdict.Paths)
	}
}

func TestPathsSaturate(t *testing.T) {
	// 60 forks exceed the saturation cap without exploding the analysis.
	var words []uint32
	for i := 0; i < 60; i++ {
		words = append(words, enc(isa.Inst{Op: isa.OpBEQ, Rs1: 1, Rs2: 2, Imm: 8}))
	}
	words = append(words, 0xffffffff)
	a := Analyze(stream(words...))
	if !a.Accepted() || a.Verdict.Paths != maxPaths {
		t.Fatalf("got %+v, want acceptance with saturated path count", a.Verdict)
	}
}

func TestEmptyAndTinyStreams(t *testing.T) {
	if a := Analyze(nil); !a.Accepted() || a.Verdict.Paths != 1 {
		t.Errorf("empty stream: %+v", a.Verdict)
	}
	if a := Analyze([]byte{0x01, 0x00}); !a.Accepted() {
		t.Errorf("single c.nop: %+v", a.Verdict)
	}
}

func TestCleanAtAndEachInst(t *testing.T) {
	bs := stream(
		enc(isa.Inst{Op: isa.OpADD, Rd: 31, Rs1: 1, Rs2: 2}), // dirties x31
		enc(isa.Inst{Op: isa.OpLW, Rd: 5, Rs1: 30, Imm: 0}),
	)
	a := Analyze(bs)
	if !a.Accepted() {
		t.Fatalf("dropped: %+v", a.Verdict)
	}
	if m := a.CleanAt(0); m != 1<<30|1<<31 {
		t.Errorf("CleanAt(0) = %#x, want x30|x31", m)
	}
	if m := a.CleanAt(4); m != 1<<30 {
		t.Errorf("CleanAt(4) = %#x, want x30 only", m)
	}
	var pcs []int32
	a.EachInst(func(pc int32, inst isa.Inst, reachable bool) {
		pcs = append(pcs, pc)
		if !reachable {
			t.Errorf("straight-line inst at %d reported unreachable", pc)
		}
	})
	if len(pcs) != 2 || pcs[0] != 0 || pcs[1] != 4 {
		t.Errorf("EachInst visited %v, want [0 4]", pcs)
	}
}

func TestReasonStrings(t *testing.T) {
	want := map[Reason]string{
		ReasonNone:         "accepted",
		ReasonForbidden:    "forbidden instruction",
		ReasonLoop:         "potential loop",
		ReasonOutOfBounds:  "control flow out of bounds",
		ReasonDirtyAddress: "dirty address register",
		ReasonUnalignedImm: "unaligned immediate",
		ReasonStraddle:     "straddling encoding",
		ReasonPathBudget:   "path budget exhausted",
		ReasonTooLong:      "bytestream too long",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), s)
		}
	}
	if Reason(200).String() != "unknown" {
		t.Error("out-of-range reason must stringify as unknown")
	}
}

func TestStatsCounters(t *testing.T) {
	var s Stats
	if s.AcceptanceRate() != 0 {
		t.Error("empty stats must report 0 acceptance")
	}
	s.Record(ReasonNone)
	s.Record(ReasonNone)
	s.Record(ReasonLoop)
	s.Record(ReasonForbidden)
	if s.Total() != 4 || s.Accepted() != 2 || s.Dropped() != 2 {
		t.Fatalf("counters wrong: %+v", s)
	}
	if s.AcceptanceRate() != 0.5 {
		t.Errorf("rate = %v, want 0.5", s.AcceptanceRate())
	}
	var o Stats
	o.Record(ReasonLoop)
	s.Merge(o)
	if s.Counts[ReasonLoop] != 2 || s.Total() != 5 {
		t.Fatalf("merge wrong: %+v", s)
	}
	out := s.String()
	for _, frag := range []string{"potential loop", "forbidden instruction", "accepted"} {
		if !strings.Contains(out, frag) {
			t.Errorf("histogram missing %q:\n%s", frag, out)
		}
	}
}

func TestStatsJSON(t *testing.T) {
	var s Stats
	s.Record(ReasonNone)
	s.Record(ReasonDirtyAddress)
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Checked        uint64            `json:"checked"`
		Accepted       uint64            `json:"accepted"`
		AcceptanceRate float64           `json:"acceptance_rate"`
		Dropped        map[string]uint64 `json:"dropped"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Checked != 2 || got.Accepted != 1 || got.Dropped["dirty address register"] != 1 {
		t.Fatalf("JSON round-trip wrong: %+v", got)
	}
}
