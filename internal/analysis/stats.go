package analysis

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Stats is the per-corpus filter telemetry layer: a histogram of drop
// reasons plus the acceptance count, accumulated over a fuzzing campaign
// so reports can say WHY candidate bytestreams died before execution.
// The zero value is ready to use; Record(ReasonNone) counts an acceptance.
type Stats struct {
	Counts [NumReasons]uint64
}

// Record counts one filter decision.
func (s *Stats) Record(r Reason) {
	if r < NumReasons {
		s.Counts[r]++
	}
}

// Merge adds another campaign's counters (parallel workers).
func (s *Stats) Merge(o Stats) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
}

// Accepted returns the number of accepted bytestreams.
func (s *Stats) Accepted() uint64 { return s.Counts[ReasonNone] }

// Dropped returns the number of dropped bytestreams.
func (s *Stats) Dropped() uint64 { return s.Total() - s.Accepted() }

// Total returns the number of recorded decisions.
func (s *Stats) Total() uint64 {
	var t uint64
	for _, c := range s.Counts {
		t += c
	}
	return t
}

// AcceptanceRate returns accepted/total in [0,1] (0 when empty).
func (s *Stats) AcceptanceRate() float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	return float64(s.Accepted()) / float64(t)
}

// String renders the drop-reason histogram, most frequent reason first.
func (s *Stats) String() string {
	t := s.Total()
	if t == 0 {
		return "filter: no decisions recorded\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "filter: %d checked, %d accepted (%.1f%%), %d dropped\n",
		t, s.Accepted(), 100*s.AcceptanceRate(), s.Dropped())
	// Stable order: descending count, ties by reason value.
	order := make([]Reason, 0, NumReasons-1)
	for r := ReasonNone + 1; r < NumReasons; r++ {
		if s.Counts[r] > 0 {
			order = append(order, r)
		}
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if s.Counts[order[j]] > s.Counts[order[i]] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	for _, r := range order {
		fmt.Fprintf(&b, "  %-28s %10d (%.1f%%)\n", r.String(), s.Counts[r],
			100*float64(s.Counts[r])/float64(t))
	}
	return b.String()
}

// MarshalJSON serializes the counters with reason names as keys, plus the
// aggregate fields campaign reports consume.
func (s Stats) MarshalJSON() ([]byte, error) {
	drops := make(map[string]uint64)
	for r := ReasonNone + 1; r < NumReasons; r++ {
		if s.Counts[r] > 0 {
			drops[r.String()] = s.Counts[r]
		}
	}
	return json.Marshal(struct {
		Checked        uint64            `json:"checked"`
		Accepted       uint64            `json:"accepted"`
		AcceptanceRate float64           `json:"acceptance_rate"`
		Dropped        map[string]uint64 `json:"dropped,omitempty"`
	}{s.Total(), s.Accepted(), s.AcceptanceRate(), drops})
}
